// Frozen copy of the pre-SoA scalar cell model (array-of-structs, one
// polar-method Gaussian per cell per operation). Kept ONLY as the
// micro_cell_model baseline so the batched CellArray kernel's speedup is
// measured against the real before-state, not a synthetic strawman. Do not
// use outside the bench; the simulator and tests run on nand/cell_array.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "nand/cell_array.h"  // CellModelParams (unchanged by the port)
#include "util/rng.h"

namespace esp::bench {

/// One word line of TLC cells, scalar reference implementation.
class ScalarWordLineRef {
 public:
  ScalarWordLineRef(std::uint32_t subpages, std::uint32_t cells_per_subpage,
                    const nand::CellModelParams& params, util::Xoshiro256 rng)
      : subpages_(subpages),
        cells_(cells_per_subpage),
        bits_per_cell_(std::bit_width(params.levels) - 1),
        params_(params),
        rng_(rng),
        pe_cycles_(params.rated_pe_cycles),
        wl_(static_cast<std::size_t>(subpages) * cells_per_subpage) {
    erase();
  }

  void set_pe_cycles(std::uint32_t pe) { pe_cycles_ = pe; }

  void erase() {
    programmed_ = 0;
    for (auto& cell : wl_) {
      cell.vth = rng_.gaussian(params_.erased_mean, params_.erased_sigma);
      cell.target = 0;
      cell.programmed = false;
      cell.npp = 0;
    }
  }

  void program_subpage(std::uint32_t slot,
                       std::span<const std::uint8_t> levels) {
    if (slot >= subpages_ || slot != programmed_ || levels.size() != cells_)
      throw std::logic_error("ScalarWordLineRef: bad program");
    const double wear_ratio = static_cast<double>(pe_cycles_) /
                              static_cast<double>(params_.rated_pe_cycles);
    const double sigma_wear =
        params_.pgm_sigma *
        (1.0 + params_.wear_sigma_slope * std::max(0.0, wear_ratio - 1.0));
    const double sigma =
        std::hypot(sigma_wear, params_.stress_sigma_per_npp *
                                   static_cast<double>(programmed_));
    for (std::uint32_t sp = 0; sp < subpages_; ++sp) {
      if (sp == slot) continue;
      for (std::uint32_t i = 0; i < cells_; ++i) {
        Cell& cell = wl_[static_cast<std::size_t>(sp) * cells_ + i];
        const double shift =
            cell.programmed
                ? rng_.gaussian(params_.disturb_programmed_mean,
                                params_.disturb_programmed_sigma)
                : rng_.gaussian(params_.disturb_erased_mean,
                                params_.disturb_erased_sigma);
        cell.vth += std::max(0.0, shift);
      }
    }
    for (std::uint32_t i = 0; i < cells_; ++i) {
      Cell& cell = wl_[static_cast<std::size_t>(slot) * cells_ + i];
      cell.target = levels[i];
      cell.programmed = true;
      cell.npp = static_cast<std::uint8_t>(programmed_);
      if (levels[i] != 0)
        cell.vth = rng_.gaussian(level_mean(levels[i]), sigma);
    }
    ++programmed_;
  }

  void program_subpage_random(std::uint32_t slot) {
    // Per-call allocation kept on purpose: this was the satellite-fixed
    // inner-loop cost of the original model.
    std::vector<std::uint8_t> levels(cells_);
    for (auto& level : levels)
      level = static_cast<std::uint8_t>(rng_.below(params_.levels));
    program_subpage(slot, levels);
  }

  std::uint64_t count_bit_errors(std::uint32_t slot, double months) {
    const double wear_ratio = static_cast<double>(pe_cycles_) /
                              static_cast<double>(params_.rated_pe_cycles);
    const double wear =
        1.0 + params_.wear_retention_slope * std::max(0.0, wear_ratio - 1.0);
    std::uint64_t errors = 0;
    for (std::uint32_t i = 0; i < cells_; ++i) {
      const Cell& cell = wl_[static_cast<std::size_t>(slot) * cells_ + i];
      if (!cell.programmed) continue;
      double vth = cell.vth;
      if (cell.target != 0 && months > 0.0) {
        const double mu =
            params_.retention_rate *
            (1.0 + params_.retention_kappa * static_cast<double>(cell.npp)) *
            wear * std::log1p(months / params_.retention_tau_months);
        const double drift =
            rng_.gaussian(mu, params_.retention_noise_frac * mu);
        vth -= std::max(0.0, drift);
      }
      errors += gray_distance_bits(read_level(vth), cell.target);
    }
    return errors;
  }

  double raw_ber(std::uint32_t slot, double months) {
    return static_cast<double>(count_bit_errors(slot, months)) /
           (static_cast<double>(cells_) * bits_per_cell_);
  }

  std::uint32_t subpages() const { return subpages_; }
  std::uint32_t cells_per_subpage() const { return cells_; }
  std::uint32_t slots_programmed() const { return programmed_; }

 private:
  struct Cell {
    double vth = 0.0;
    std::uint8_t target = 0;
    bool programmed = false;
    std::uint8_t npp = 0;
  };

  static std::uint32_t to_gray(std::uint32_t v) { return v ^ (v >> 1); }
  static std::uint32_t gray_distance_bits(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::uint32_t>(std::popcount(to_gray(a) ^ to_gray(b)));
  }
  double level_mean(std::uint32_t level) const {
    if (level == 0) return params_.erased_mean;
    return static_cast<double>(level - 1) * params_.level_step;
  }
  std::uint32_t read_level(double vth) const {
    std::uint32_t level = 0;
    for (std::uint32_t l = 0; l + 1 < params_.levels; ++l) {
      const double boundary = 0.5 * (level_mean(l) + level_mean(l + 1));
      if (vth > boundary) level = l + 1;
    }
    return level;
  }

  std::uint32_t subpages_;
  std::uint32_t cells_;
  std::uint32_t bits_per_cell_;
  nand::CellModelParams params_;
  util::Xoshiro256 rng_;
  std::uint32_t pe_cycles_;
  std::uint32_t programmed_ = 0;
  std::vector<Cell> wl_;
};

}  // namespace esp::bench
