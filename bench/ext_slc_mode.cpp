// Extension bench: why prior subpage-programming work targeted SLC-mode
// pages (Zhang et al., FAST'16 -- the paper's related work [11]).
//
// The cell model explains the contrast: SLC's two levels leave ~1.5 V
// between states, so the disturbance of an erase-free reprogram barely
// registers; TLC's eight levels leave ~0.4 V, so the same stress destroys
// previously-programmed subpages (Fig. 4) -- which is why the paper's ESP
// must forbid reprogramming valid data rather than rely on margins, and
// why its contribution ("applicable to MLC/TLC") matters.
#include <cstdio>
#include <iostream>

#include "nand/cell_model.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main() {
  using namespace esp;
  std::printf(
      "Extension -- ESP stress vs cell density (related work [11])\n\n");

  constexpr std::uint32_t kCells = 20000;
  constexpr int kTrials = 10;
  const double ecc_limit = 40.0 / 8192.0;

  util::TablePrinter t({"mode", "levels", "sp1 BER after sp2 program",
                        "vs ECC limit", "verdict"});
  struct Mode {
    const char* name;
    std::uint32_t levels;
    double level_step;
  };
  // Keep the total Vth window comparable (~5.6 V) across densities.
  for (const Mode mode : {Mode{"SLC", 2, 5.6}, Mode{"MLC", 4, 1.85},
                          Mode{"TLC", 8, 0.8}}) {
    nand::CellModelParams params;
    params.levels = mode.levels;
    params.level_step = mode.level_step;
    util::RunningStats stats;
    for (int trial = 0; trial < kTrials; ++trial) {
      nand::WordLine wl(2, kCells, params, util::Xoshiro256(500 + trial));
      wl.program_subpage_random(0);
      wl.program_subpage_random(1);  // erase-free second program
      stats.add(wl.raw_ber(0, 0.0)); // damage to the FIRST subpage
    }
    t.add_row({mode.name, std::to_string(mode.levels),
               util::TablePrinter::num(stats.mean(), 6),
               util::TablePrinter::num(stats.mean() / ecc_limit, 2) + "x",
               stats.mean() <= ecc_limit ? "survives" : "DESTROYED"});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: SLC survives erase-free reprogramming next door\n"
      "(Zhang et al.'s regime); TLC is destroyed outright -- hence the\n"
      "paper's ESP rule of only programming subpages whose siblings hold\n"
      "no valid data, which works at ANY density. (The model's constant-\n"
      "voltage disturb understates MLC damage: real MLC guard bands are\n"
      "consumed by retention and read disturb, so shipping MLC parts also\n"
      "forbid erase-free reprogramming.)\n");
  return 0;
}
