// Shared configuration for the figure/table reproduction benches.
//
// All FTL-level benches run on a geometry that is the paper's platform
// (8 channels x 4 TLC chips, 16-KB pages, 4-KB subpages) scaled down in
// block count from 16 GiB to 2 GiB so that a full table regenerates in
// seconds on one core. The paper itself argues this scaling is sound:
// "this reduction of the storage capacity did not distort experimental
// results because the performance of the FTL was decided by the
// characteristics of input workloads, not by the storage capacity."
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.h"
#include "core/ssd.h"
#include "workload/profiles.h"

namespace esp::bench {

/// "j.jsonl" + "fig8/varmail/sub" -> "j.fig8-varmail-sub.jsonl": splices
/// the cell key (slashes flattened to '-') before the extension so every
/// cell of a sweep journals to its own file.
inline std::string cell_journal_path(const std::string& base,
                                     std::string key) {
  for (auto& c : key)
    if (c == '/') c = '-';
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + "." + key;
  return base.substr(0, dot) + "." + key + base.substr(dot);
}

/// Paper platform, capacity-scaled: 8ch x 4chip x 16blk x 128pg x 16KB
/// = 1 GiB raw.
inline nand::Geometry scaled_geometry() {
  nand::Geometry geo;
  geo.channels = 8;
  geo.chips_per_channel = 4;
  geo.blocks_per_chip = 16;
  geo.pages_per_block = 128;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

inline core::SsdConfig scaled_config(core::FtlKind kind) {
  core::SsdConfig cfg;
  cfg.geometry = scaled_geometry();
  cfg.ftl = kind;
  cfg.logical_fraction = 0.80;  // max fraction compatible with the 20% region
  cfg.buffer_sectors = 1024;
  cfg.gc_reserve_blocks = 16;
  cfg.queue_depth = 128;
  return cfg;
}

/// Optional device-shape overrides shared by the bench binaries and espsim:
/// a named profile (--geometry paper|prod, see nand::geometry_profile) plus
/// explicit per-dimension flags that win over whatever the profile or the
/// bench's default set. Zero / empty = "leave alone".
struct GeometryOverrides {
  std::string profile;  // "", "paper" or "prod"
  std::uint32_t channels = 0;
  std::uint32_t chips_per_channel = 0;
  std::uint32_t blocks_per_chip = 0;
  std::uint32_t pages_per_block = 0;

  bool any() const {
    return !profile.empty() || channels || chips_per_channel ||
           blocks_per_chip || pages_per_block;
  }

  /// Profile (when named) replaces `base` wholesale, then explicit
  /// dimensions are applied on top. Throws std::invalid_argument on an
  /// unknown profile or an inconsistent result.
  nand::Geometry apply(const nand::Geometry& base) const {
    nand::Geometry g =
        profile.empty() ? base : nand::geometry_profile(profile);
    if (channels) g.channels = channels;
    if (chips_per_channel) g.chips_per_channel = chips_per_channel;
    if (blocks_per_chip) g.blocks_per_chip = blocks_per_chip;
    if (pages_per_block) g.pages_per_block = pages_per_block;
    g.validate();
    return g;
  }

  /// Consumes one geometry flag from argv (advancing `i` past its value).
  /// Returns false if argv[i] is not a geometry flag; exits with usage
  /// error code 2 on a flag with a missing value.
  bool parse_flag(int argc, char** argv, int& i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    const auto u32 = [&]() {
      return static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    };
    if (arg == "--geometry") {
      profile = next();
      if (profile != "paper" && profile != "prod") {
        std::fprintf(stderr, "--geometry must be paper|prod\n");
        std::exit(2);
      }
    } else if (arg == "--channels") {
      channels = u32();
    } else if (arg == "--chips-per-channel") {
      chips_per_channel = u32();
    } else if (arg == "--blocks-per-chip") {
      blocks_per_chip = u32();
    } else if (arg == "--pages-per-block") {
      pages_per_block = u32();
    } else {
      return false;
    }
    return true;
  }

  static constexpr const char* kUsage =
      "[--geometry paper|prod] [--channels N] [--chips-per-channel N] "
      "[--blocks-per-chip N] [--pages-per-block N]";
};

/// Requests that precede every measured window so GC is in steady state
/// (the preconditioned device still has free blocks; the paper's long
/// benchmark runs burn through them before the reported numbers matter).
inline constexpr std::uint64_t kWarmupRequests = 100000;

inline void print_header(const char* what,
                         const nand::Geometry& geo = scaled_geometry()) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("device: %s\n", geo.describe().c_str());
  std::printf("==============================================================\n");
}

}  // namespace esp::bench
