// Ablation: retention management (paper Sec. 4.3).
//
// A time-dilated small-write stream ages subpage-region data. Sweeping the
// eviction threshold shows the safety/overhead trade:
//   * thresholds beyond the 1-month device horizon lose data
//     (uncorrectable reads / verify failures);
//   * tighter thresholds evict more (extra RMW traffic) but stay safe;
//   * the paper's 15 days sits comfortably inside the horizon with
//     negligible eviction overhead.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "util/table_printer.h"
#include "workload/request.h"

int main() {
  using namespace esp;
  bench::print_header(
      "Ablation -- retention-eviction threshold (paper default: 15 days)");

  util::TablePrinter t({"evict after", "retention evictions", "io errors",
                        "verify failures", "verdict"});
  for (const double days : {5.0, 10.0, 15.0, 25.0, 45.0, 1000.0}) {
    core::SsdConfig cfg = bench::scaled_config(core::FtlKind::kSub);
    cfg.retention_evict_age = days * sim_time::kDay;
    cfg.retention_scan_interval = sim_time::kDay;
    core::Ssd ssd(cfg);
    auto& drv = ssd.driver();

    // Lay down a spread of small writes, then age the device for 300
    // simulated days with a trickle of writes (each tick may scan).
    // Even an Npp^0 ESP subpage only holds ~8 months, so disabling
    // eviction must lose this data.
    for (std::uint64_t s = 0; s < 4000; s += 4)
      drv.submit({workload::Request::Type::kWrite, s, 1, true, 0.0});
    for (int step = 0; step < 60; ++step)
      drv.submit({workload::Request::Type::kWrite, 100000, 1, true,
                  5 * sim_time::kDay});

    std::uint64_t io_errors = 0;
    for (std::uint64_t s = 0; s < 4000; s += 4) {
      const auto result =
          drv.submit({workload::Request::Type::kRead, s, 1, false, 0.0});
      io_errors += !result.ok;
    }
    const auto& stats = ssd.ftl().stats();
    const bool safe = io_errors == 0 && drv.verify_failures() == 0;
    t.add_row({util::TablePrinter::num(days, 0) + " days",
               std::to_string(stats.retention_evictions),
               std::to_string(io_errors),
               std::to_string(drv.verify_failures()),
               safe ? "safe" : "DATA LOSS"});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: thresholds within the device's ~1-month subpage\n"
      "horizon are safe; disabling eviction (1000 days) loses aged data --\n"
      "the failure mode the paper's retention manager exists to prevent.\n");
  return 0;
}
