// Macro replay: production-scale end-to-end throughput of the whole stack.
//
// The figure/table benches run on a capacity-scaled device (bench_common.h)
// because the paper's *simulated-time* results are capacity-insensitive.
// Host-side replay speed is NOT: the maintenance paths the FTLs run between
// requests -- retention scans, static wear leveling, idle-block release --
// were O(device) linear scans, so wall-clock throughput collapsed once the
// geometry grew to production block counts. This bench pins the fix: it
// replays one seeded mixed workload (small sync updates + large cold writes
// + reads + trims) through all four FTLs at two geometries,
//
//   paper: 8ch x 4chip, 128 blk/chip, 256 pg/blk  (16 GiB, 4096 blocks)
//   prod:  8ch x 4chip, 2048 blk/chip, 64 pg/blk  (64 GiB, 65536 blocks)
//
// and for each cell runs BOTH maintenance implementations: the original
// O(device) scans (--maintenance scan / reference_scan_maintenance) and the
// incremental indices (retention queue, wear index, idle list). It reports
// host-ops/sec of wall-clock replay and the share of wall time spent inside
// each maintenance path (FtlStats::maint_*); the run aborts if the two
// modes' simulated-side stats diverge at all, so the committed
// BENCH_replay.json doubles as an equivalence witness.
//
// Maintenance cadence is deliberately aggressive (seconds, not the paper's
// days) plus per-request think time for dilation, so retention eviction and
// wear-leveling checks actually fire inside a minutes-long replay window;
// the *decisions* stay workload-driven, only the clock is compressed.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/parallel_runner.h"
#include "telemetry/json.h"
#include "util/table_printer.h"

namespace {

using namespace esp;

constexpr std::uint64_t kBaseSeed = 2017;

struct Mode {
  const char* name;
  bool reference_scan;
};
constexpr Mode kModes[] = {{"scan", true}, {"index", false}};

struct CellOut {
  core::RunResult r;
  double wall = 0.0;
};

double maint_share(const ftl::FtlStats& s, double wall_seconds) {
  const double ns = static_cast<double>(s.maint_retention_ns +
                                        s.maint_wear_level_ns +
                                        s.maint_release_idle_ns);
  return wall_seconds > 0.0 ? ns / (wall_seconds * 1e9) : 0.0;
}

double gc_share(const ftl::FtlStats& s, double wall_seconds) {
  return wall_seconds > 0.0
             ? static_cast<double>(s.maint_gc_ns) / (wall_seconds * 1e9)
             : 0.0;
}

/// The replayed stream: a mixed profile rather than one of the paper's five
/// benchmarks -- small hot sync updates over a confined working set, colder
/// multi-page writes, a read-heavy tail and occasional trims, so every
/// maintenance path (GC, retention, wear leveling, idle release) has work.
workload::SyntheticParams mixed_workload(std::uint32_t sectors_per_page,
                                         std::uint64_t seed) {
  workload::SyntheticParams p;
  p.sectors_per_page = sectors_per_page;
  p.r_small = 0.6;
  p.r_synch = 0.9;
  p.read_fraction = 0.35;
  p.trim_fraction = 0.02;
  p.small_sectors_min = 1;
  p.small_sectors_max = 3;
  p.large_pages_min = 1;
  p.large_pages_max = 4;
  p.large_align_prob = 0.85;
  p.small_footprint_fraction = 0.25;
  p.think_us = 400.0;  // time dilation so retention scans fire mid-replay
  p.seed = seed;
  return p;
}

core::ExperimentCell make_cell(const std::string& geom_name,
                               const nand::Geometry& geo, core::FtlKind kind,
                               const Mode& mode, double budget_scale) {
  core::ExperimentCell cell;
  cell.key = "replay/" + geom_name + "/" + core::ftl_kind_name(kind) + "/" +
             mode.name;
  core::SsdConfig& ssd = cell.spec.ssd;
  ssd.geometry = geo;
  ssd.ftl = kind;
  // A point under the 0.80 bound: quota rounding at reduced (--quick)
  // block counts can push 0.80 + the 20% region over physical capacity.
  ssd.logical_fraction = 0.79;
  ssd.buffer_sectors = 1024;
  ssd.gc_reserve_blocks = 16;
  ssd.queue_depth = 128;
  // Compressed maintenance clock (see header comment).
  ssd.retention_scan_interval = 2 * sim_time::kSecond;
  ssd.retention_evict_age = 8 * sim_time::kSecond;
  ssd.wl_check_interval = 256;
  ssd.wl_pe_threshold = 8;
  ssd.reference_scan_maintenance = mode.reference_scan;

  // Seed per GEOMETRY: every FTL and both maintenance modes of a geometry
  // replay the identical request stream.
  auto params =
      mixed_workload(geo.subpages_per_page,
                     core::stable_cell_seed("replay/" + geom_name, kBaseSeed));
  const double write_fraction =
      1.0 - params.read_fraction - params.trim_fraction;
  const double avg_write_sectors =
      params.r_small * 0.5 *
          (params.small_sectors_min + params.small_sectors_max) +
      (1.0 - params.r_small) * 0.5 *
          (params.large_pages_min + params.large_pages_max) *
          params.sectors_per_page;
  const double warmup_sectors = 200000 * budget_scale;
  const double measure_sectors = 400000 * budget_scale;
  const auto reqs_for = [&](double budget) {
    return static_cast<std::uint64_t>(budget /
                                      (write_fraction * avg_write_sectors));
  };
  cell.spec.warmup_requests = reqs_for(warmup_sectors);
  params.request_count = cell.spec.warmup_requests + reqs_for(measure_sectors);
  cell.spec.workload = params;
  return cell;
}

/// Simulated-side outcomes must be BIT-identical between scan and index
/// maintenance -- the tentpole's equivalence contract. Compares everything
/// deterministic in the result (wall times and maint_* are host-side).
bool same_decisions(const core::RunResult& a, const core::RunResult& b) {
  const ftl::FtlStats& sa = a.raw.ftl_stats;
  const ftl::FtlStats& sb = b.raw.ftl_stats;
  return a.gc_invocations == b.gc_invocations && a.erases == b.erases &&
         a.rmw_ops == b.rmw_ops && a.verify_failures == b.verify_failures &&
         a.overall_waf == b.overall_waf &&
         a.small_request_waf == b.small_request_waf &&
         a.raw.requests == b.raw.requests && a.raw.end_us == b.raw.end_us &&
         sa.host_write_sectors == sb.host_write_sectors &&
         sa.flash_prog_full == sb.flash_prog_full &&
         sa.flash_prog_sub == sb.flash_prog_sub &&
         sa.gc_copy_sectors == sb.gc_copy_sectors &&
         sa.retention_evictions == sb.retention_evictions &&
         sa.wear_level_relocations == sb.wear_level_relocations;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::string geometry_filter = "both";
  unsigned jobs = 0;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--geometry" && i + 1 < argc) {
      geometry_filter = argv[++i];
      if (geometry_filter != "paper" && geometry_filter != "prod" &&
          geometry_filter != "both") {
        std::fprintf(stderr, "--geometry must be paper|prod|both\n");
        return 2;
      }
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--jobs N] "
                   "[--geometry paper|prod|both] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  // --quick (the CI perf-smoke scale): quarter the block count of both
  // profiles and an eighth of the request budget. Shares and speedups keep
  // their shape; absolute numbers shrink.
  std::vector<std::pair<std::string, nand::Geometry>> geometries;
  for (const char* name : {"paper", "prod"}) {
    if (geometry_filter != "both" && geometry_filter != name) continue;
    nand::Geometry g = nand::geometry_profile(name);
    if (quick) g.blocks_per_chip /= 4;
    geometries.emplace_back(name, g);
  }
  const double budget_scale = quick ? 0.125 : 1.0;

  std::printf("==============================================================\n");
  std::printf("Macro replay -- wall-clock throughput, scan vs index maintenance\n");
  for (const auto& [name, geo] : geometries)
    std::printf("%-6s %s\n", name.c_str(), geo.describe().c_str());
  std::printf("==============================================================\n");

  const auto kinds = {core::FtlKind::kCgm, core::FtlKind::kFgm,
                      core::FtlKind::kSub, core::FtlKind::kSectorLog};
  std::vector<core::ExperimentCell> cells;
  for (const auto& [name, geo] : geometries)
    for (const auto kind : kinds)
      for (const auto& mode : kModes)
        cells.push_back(make_cell(name, geo, kind, mode, budget_scale));

  core::ParallelRunnerConfig runner_cfg;
  runner_cfg.jobs = jobs;
  runner_cfg.base_seed = kBaseSeed;
  runner_cfg.derive_seeds = false;  // seeds fixed per geometry above
  core::ParallelRunner runner(runner_cfg);
  const auto results = runner.run(cells);
  std::printf("ran %zu cells on %u worker(s) in %.1fs\n", cells.size(),
              runner.manifest().jobs_used, runner.manifest().wall_seconds);

  // grid[geometry][ftl][mode]
  std::map<std::string, std::map<std::string, std::map<std::string, CellOut>>>
      grid;
  {
    std::size_t i = 0;
    for (const auto& [name, geo] : geometries) {
      (void)geo;
      for (const auto kind : kinds) {
        for (const auto& mode : kModes) {
          const auto& cell = results[i++];
          if (!cell.ok) {
            std::fprintf(stderr, "FATAL: cell %s failed: %s\n",
                         cell.key.c_str(), cell.error.c_str());
            return 1;
          }
          if (cell.result.verify_failures != 0) {
            std::fprintf(stderr, "FATAL: %llu verify failures (%s)\n",
                         static_cast<unsigned long long>(
                             cell.result.verify_failures),
                         cell.key.c_str());
            return 1;
          }
          grid[name][core::ftl_kind_name(kind)][mode.name] =
              CellOut{cell.result, cell.wall_seconds};
        }
      }
    }
  }

  bool identical = true;
  for (const auto& [geom, per_ftl] : grid)
    for (const auto& [ftl, per_mode] : per_ftl)
      if (!same_decisions(per_mode.at("scan").r, per_mode.at("index").r)) {
        std::fprintf(stderr,
                     "FATAL: scan/index decisions diverged for %s/%s\n",
                     geom.c_str(), ftl.c_str());
        identical = false;
      }
  if (!identical) return 1;
  std::printf("\nscan/index simulated decisions identical for all cells\n");

  std::map<std::string, double> avg_speedup;
  for (const auto& [geom, geo] : geometries) {
    std::printf("\n%s geometry (%s)\n\n", geom.c_str(),
                geo.describe().c_str());
    util::TablePrinter t({"FTL", "scan ops/s", "index ops/s", "speedup",
                          "maint% scan", "maint% index", "gc% index"});
    double sum = 0.0;
    for (const auto kind : kinds) {
      const auto& per_mode = grid[geom][core::ftl_kind_name(kind)];
      const auto& scan = per_mode.at("scan");
      const auto& index = per_mode.at("index");
      const double scan_ops =
          scan.r.measure_wall_seconds > 0.0
              ? static_cast<double>(scan.r.raw.requests) /
                    scan.r.measure_wall_seconds
              : 0.0;
      const double index_ops =
          index.r.measure_wall_seconds > 0.0
              ? static_cast<double>(index.r.raw.requests) /
                    index.r.measure_wall_seconds
              : 0.0;
      const double speedup = scan_ops > 0.0 ? index_ops / scan_ops : 0.0;
      sum += speedup;
      t.add_row({core::ftl_kind_name(kind),
                 util::TablePrinter::num(scan_ops, 0),
                 util::TablePrinter::num(index_ops, 0),
                 util::TablePrinter::num(speedup, 2),
                 util::TablePrinter::pct(
                     maint_share(scan.r.raw.ftl_stats,
                                 scan.r.measure_wall_seconds),
                     1),
                 util::TablePrinter::pct(
                     maint_share(index.r.raw.ftl_stats,
                                 index.r.measure_wall_seconds),
                     1),
                 util::TablePrinter::pct(
                     gc_share(index.r.raw.ftl_stats,
                              index.r.measure_wall_seconds),
                     1)});
    }
    t.print(std::cout);
    avg_speedup[geom] = sum / 4.0;
    std::printf("avg host-replay speedup (index vs scan): %.2fx\n",
                sum / 4.0);
  }

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.kv("figure", "macro_replay");
    w.newline();
    // Host-side provenance AND the wall-clock measurements themselves are
    // non-deterministic -- this artifact documents the machine it ran on;
    // only "identical_decisions" is a stable invariant.
    w.key("run");
    w.begin_object();
    w.kv("jobs", static_cast<std::uint64_t>(runner.manifest().jobs_used));
    w.kv("base_seed", kBaseSeed);
    w.kv("quick", quick);
    w.kv("wall_seconds", runner.manifest().wall_seconds);
    w.kv("identical_decisions", identical);
    w.end_object();
    w.newline();
    w.key("geometries");
    w.begin_object();
    for (const auto& [name, geo] : geometries) {
      w.key(name);
      w.begin_object();
      w.kv("describe", geo.describe());
      w.kv("total_blocks", geo.total_blocks());
      w.kv("pages_per_block",
           static_cast<std::uint64_t>(geo.pages_per_block));
      w.kv("capacity_gib", static_cast<double>(geo.capacity_bytes()) /
                               (1024.0 * 1024.0 * 1024.0));
      w.end_object();
    }
    w.end_object();
    w.newline();
    w.key("cells");
    w.begin_object();
    for (const auto& [name, geo] : geometries) {
      (void)geo;
      w.newline();
      w.key(name);
      w.begin_object();
      for (const auto kind : kinds) {
        const auto& per_mode = grid[name][core::ftl_kind_name(kind)];
        w.newline();
        w.key(core::ftl_kind_name(kind));
        w.begin_object();
        for (const auto& mode : kModes) {
          const auto& c = per_mode.at(mode.name);
          const ftl::FtlStats& s = c.r.raw.ftl_stats;
          w.key(mode.name);
          w.begin_object();
          w.kv("host_ops_per_sec",
               c.r.measure_wall_seconds > 0.0
                   ? static_cast<double>(c.r.raw.requests) /
                         c.r.measure_wall_seconds
                   : 0.0);
          w.kv("measure_wall_seconds", c.r.measure_wall_seconds);
          w.kv("cell_wall_seconds", c.wall);
          w.kv("requests", c.r.raw.requests);
          w.kv("sim_host_mb_per_sec", c.r.host_mb_per_sec);
          w.kv("maintenance_share",
               maint_share(s, c.r.measure_wall_seconds));
          w.kv("retention_share",
               c.r.measure_wall_seconds > 0.0
                   ? static_cast<double>(s.maint_retention_ns) /
                         (c.r.measure_wall_seconds * 1e9)
                   : 0.0);
          w.kv("wear_level_share",
               c.r.measure_wall_seconds > 0.0
                   ? static_cast<double>(s.maint_wear_level_ns) /
                         (c.r.measure_wall_seconds * 1e9)
                   : 0.0);
          w.kv("release_idle_share",
               c.r.measure_wall_seconds > 0.0
                   ? static_cast<double>(s.maint_release_idle_ns) /
                         (c.r.measure_wall_seconds * 1e9)
                   : 0.0);
          w.kv("gc_share", gc_share(s, c.r.measure_wall_seconds));
          w.kv("maint_retention_calls", s.maint_retention_calls);
          w.kv("maint_wear_level_calls", s.maint_wear_level_calls);
          w.kv("maint_release_idle_calls", s.maint_release_idle_calls);
          w.kv("gc_invocations", c.r.gc_invocations);
          w.kv("erases", c.r.erases);
          w.kv("overall_waf", c.r.overall_waf);
          w.kv("retention_evictions", s.retention_evictions);
          w.kv("wear_level_relocations", s.wear_level_relocations);
          w.end_object();
        }
        const double scan_ops =
            per_mode.at("scan").r.measure_wall_seconds > 0.0
                ? static_cast<double>(per_mode.at("scan").r.raw.requests) /
                      per_mode.at("scan").r.measure_wall_seconds
                : 0.0;
        const double index_ops =
            per_mode.at("index").r.measure_wall_seconds > 0.0
                ? static_cast<double>(per_mode.at("index").r.raw.requests) /
                      per_mode.at("index").r.measure_wall_seconds
                : 0.0;
        w.kv("speedup_host_ops", scan_ops > 0.0 ? index_ops / scan_ops : 0.0);
        w.end_object();
      }
      w.end_object();
    }
    w.end_object();
    w.newline();
    w.key("summary");
    w.begin_object();
    for (const auto& [name, geo] : geometries) {
      (void)geo;
      w.kv("avg_speedup_" + name, avg_speedup[name]);
    }
    w.end_object();
    w.end_object();
    os << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
