// Macro replay: production-scale end-to-end throughput of the whole stack.
//
// The figure/table benches run on a capacity-scaled device (bench_common.h)
// because the paper's *simulated-time* results are capacity-insensitive.
// Host-side replay speed is NOT: the maintenance paths the FTLs run between
// requests -- retention scans, static wear leveling, idle-block release --
// were O(device) linear scans, so wall-clock throughput collapsed once the
// geometry grew to production block counts. This bench pins the fix: it
// replays one seeded mixed workload (small sync updates + large cold writes
// + reads + trims) through all four FTLs at two geometries,
//
//   paper: 8ch x 4chip, 128 blk/chip, 256 pg/blk  (16 GiB, 4096 blocks)
//   prod:  8ch x 4chip, 2048 blk/chip, 64 pg/blk  (64 GiB, 65536 blocks)
//
// and for each cell runs BOTH maintenance implementations: the original
// O(device) scans (--maintenance scan / reference_scan_maintenance) and the
// incremental indices (retention queue, wear index, idle list). It reports
// host-ops/sec of wall-clock replay and the share of wall time spent inside
// each maintenance path (FtlStats::maint_*); the run aborts if the two
// modes' simulated-side stats diverge at all, so the committed
// BENCH_replay.json doubles as an equivalence witness.
//
// Maintenance cadence is deliberately aggressive (seconds, not the paper's
// days) plus per-request think time for dilation, so retention eviction and
// wear-leveling checks actually fire inside a minutes-long replay window;
// the *decisions* stay workload-driven, only the clock is compressed.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/parallel_runner.h"
#include "core/shard.h"
#include "sim/driver.h"
#include "telemetry/forensics.h"
#include "telemetry/health.h"
#include "telemetry/json.h"
#include "telemetry/telemetry.h"
#include "util/table_printer.h"
#include "workload/splitter.h"

namespace {

using namespace esp;

constexpr std::uint64_t kBaseSeed = 2017;

struct Mode {
  std::string name;
  bool reference_scan = false;
  bool health = false;
  /// > 1: run the cell as N shared-nothing shard simulations (core/shard.h)
  /// with index maintenance; the merged result is deterministic and the
  /// wall clock is the fork-to-join measure window.
  unsigned shards = 1;
  bool forensics = false;
};

struct CellOut {
  core::RunResult r;
  double wall = 0.0;
};

double ops_per_sec(const CellOut& c) {
  return c.r.measure_wall_seconds > 0.0
             ? static_cast<double>(c.r.raw.requests) / c.r.measure_wall_seconds
             : 0.0;
}

/// CPU-time throughput: requests per CPU-second of the cell's worker
/// thread. Falls back to wall time where the platform lacks a thread CPU
/// clock. Informational in the per-cell JSON; the health gate uses the
/// in-process duel below instead.
double ops_per_cpu_sec(const CellOut& c) {
  return c.r.measure_cpu_seconds > 0.0
             ? static_cast<double>(c.r.raw.requests) / c.r.measure_cpu_seconds
             : ops_per_sec(c);
}

double maint_share(const ftl::FtlStats& s, double wall_seconds) {
  const double ns = static_cast<double>(s.maint_retention_ns +
                                        s.maint_wear_level_ns +
                                        s.maint_release_idle_ns);
  return wall_seconds > 0.0 ? ns / (wall_seconds * 1e9) : 0.0;
}

double gc_share(const ftl::FtlStats& s, double wall_seconds) {
  return wall_seconds > 0.0
             ? static_cast<double>(s.maint_gc_ns) / (wall_seconds * 1e9)
             : 0.0;
}

/// The replayed stream: a mixed profile rather than one of the paper's five
/// benchmarks -- small hot sync updates over a confined working set, colder
/// multi-page writes, a read-heavy tail and occasional trims, so every
/// maintenance path (GC, retention, wear leveling, idle release) has work.
workload::SyntheticParams mixed_workload(std::uint32_t sectors_per_page,
                                         std::uint64_t seed) {
  workload::SyntheticParams p;
  p.sectors_per_page = sectors_per_page;
  p.r_small = 0.6;
  p.r_synch = 0.9;
  p.read_fraction = 0.35;
  p.trim_fraction = 0.02;
  p.small_sectors_min = 1;
  p.small_sectors_max = 3;
  p.large_pages_min = 1;
  p.large_pages_max = 4;
  p.large_align_prob = 0.85;
  p.small_footprint_fraction = 0.25;
  p.think_us = 400.0;  // time dilation so retention scans fire mid-replay
  p.seed = seed;
  return p;
}

core::ExperimentCell make_cell(const std::string& geom_name,
                               const nand::Geometry& geo, core::FtlKind kind,
                               const Mode& mode, double budget_scale,
                               double measure_scale,
                               const std::string& health_out,
                               double health_interval_s) {
  core::ExperimentCell cell;
  cell.key = "replay/" + geom_name + "/" + core::ftl_kind_name(kind) + "/" +
             mode.name;
  if (mode.health) {
    cell.spec.health_path = bench::cell_journal_path(health_out, cell.key);
    cell.spec.health_interval_us = health_interval_s * sim_time::kSecond;
  }
  core::SsdConfig& ssd = cell.spec.ssd;
  ssd.geometry = geo;
  ssd.ftl = kind;
  // A point under the 0.80 bound: quota rounding at reduced (--quick)
  // block counts can push 0.80 + the 20% region over physical capacity.
  ssd.logical_fraction = 0.79;
  ssd.buffer_sectors = 1024;
  ssd.gc_reserve_blocks = 16;
  ssd.queue_depth = 128;
  // Compressed maintenance clock (see header comment).
  ssd.retention_scan_interval = 2 * sim_time::kSecond;
  ssd.retention_evict_age = 8 * sim_time::kSecond;
  ssd.wl_check_interval = 256;
  ssd.wl_pe_threshold = 8;
  ssd.reference_scan_maintenance = mode.reference_scan;
  cell.spec.shards = mode.shards;  // shard_jobs patched in by the caller

  // Seed per GEOMETRY: every FTL and both maintenance modes of a geometry
  // replay the identical request stream.
  auto params =
      mixed_workload(geo.subpages_per_page,
                     core::stable_cell_seed("replay/" + geom_name, kBaseSeed));
  const double write_fraction =
      1.0 - params.read_fraction - params.trim_fraction;
  const double avg_write_sectors =
      params.r_small * 0.5 *
          (params.small_sectors_min + params.small_sectors_max) +
      (1.0 - params.r_small) * 0.5 *
          (params.large_pages_min + params.large_pages_max) *
          params.sectors_per_page;
  const double warmup_sectors = 200000 * budget_scale;
  const double measure_sectors = 400000 * budget_scale * measure_scale;
  const auto reqs_for = [&](double budget) {
    return static_cast<std::uint64_t>(budget /
                                      (write_fraction * avg_write_sectors));
  };
  cell.spec.warmup_requests = reqs_for(warmup_sectors);
  params.request_count = cell.spec.warmup_requests + reqs_for(measure_sectors);
  cell.spec.workload = params;
  return cell;
}

/// Simulated-side outcomes must be BIT-identical between scan and index
/// maintenance -- the tentpole's equivalence contract. Compares everything
/// deterministic in the result (wall times and maint_* are host-side).
bool same_decisions(const core::RunResult& a, const core::RunResult& b) {
  const ftl::FtlStats& sa = a.raw.ftl_stats;
  const ftl::FtlStats& sb = b.raw.ftl_stats;
  return a.gc_invocations == b.gc_invocations && a.erases == b.erases &&
         a.rmw_ops == b.rmw_ops && a.verify_failures == b.verify_failures &&
         a.overall_waf == b.overall_waf &&
         a.small_request_waf == b.small_request_waf &&
         a.raw.requests == b.raw.requests && a.raw.end_us == b.raw.end_us &&
         sa.host_write_sectors == sb.host_write_sectors &&
         sa.flash_prog_full == sb.flash_prog_full &&
         sa.flash_prog_sub == sb.flash_prog_sub &&
         sa.gc_copy_sectors == sb.gc_copy_sectors &&
         sa.retention_evictions == sb.retention_evictions &&
         sa.wear_level_relocations == sb.wear_level_relocations;
}

/// Shard-merge reconciliation: the merged top-level counters of a sharded
/// run must equal the sums over its shard_results -- the join is pure
/// bookkeeping, never a re-simulation.
bool merged_equals_sum(const core::RunResult& m) {
  std::uint64_t requests = 0, erases = 0, gc = 0, rmw = 0, verify = 0;
  std::uint64_t host_writes = 0, prog_full = 0, prog_sub = 0;
  for (const core::RunResult& r : m.shard_results) {
    requests += r.raw.requests;
    erases += r.erases;
    gc += r.gc_invocations;
    rmw += r.rmw_ops;
    verify += r.verify_failures;
    host_writes += r.raw.ftl_stats.host_write_sectors;
    prog_full += r.raw.ftl_stats.flash_prog_full;
    prog_sub += r.raw.ftl_stats.flash_prog_sub;
  }
  return m.raw.requests == requests && m.erases == erases &&
         m.gc_invocations == gc && m.rmw_ops == rmw &&
         m.verify_failures == verify &&
         m.raw.ftl_stats.host_write_sectors == host_writes &&
         m.raw.ftl_stats.flash_prog_full == prog_full &&
         m.raw.ftl_stats.flash_prog_sub == prog_sub;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Result of one paired observer duel (see run_health_duel and
/// run_forensics_duel): cpu_index is always the stream-off side, cpu_stream
/// the stream-on side; only the counters of the stream under test are set.
struct DuelResult {
  double cpu_index = 0.0;   ///< thread-CPU seconds, stream-off side
  double cpu_health = 0.0;  ///< thread-CPU seconds, stream-on side
  std::uint64_t requests = 0;
  std::uint64_t health_epochs = 0;
  std::uint64_t health_lines = 0;
  std::uint64_t forensics_requests = 0;
  std::uint64_t forensics_exemplars = 0;
  bool same_decisions = true;
};

/// The health gate's measurement: two identical simulators -- health
/// stream off (A) and on (B) -- stepped on ONE thread in alternating
/// 1024-request chunks, accumulating each side's thread-CPU time.
///
/// Why not compare two whole cells? Per-cell CPU time on a shared,
/// frequency-scaled host wanders by far more than the 3% gate threshold
/// (the thread CPU clock counts seconds, not cycles, so it cannot see
/// DVFS), and no estimator over serially-run cells cancels drift on that
/// scale. Chunk interleaving makes both sides sample the same machine
/// state at millisecond granularity; the chunk order also flips every
/// iteration (A B | B A | ...) so linear drift cancels within each pair.
/// The ratio of accumulated CPU times then isolates what the gate is
/// actually after: the health stream's own per-op cost.
DuelResult run_health_duel(const core::ExperimentSpec& index_spec,
                           const core::ExperimentSpec& health_spec) {
  // Sink lifetimes mirror run_experiment: stream, monitor and facade must
  // outlive the Ssd (its destructor materializes the telemetry registry).
  std::ofstream health_os(health_spec.health_path,
                          std::ios::out | std::ios::trunc | std::ios::binary);
  if (!health_os)
    throw std::runtime_error("duel: cannot open health file: " +
                             health_spec.health_path);
  const auto& geo = health_spec.ssd.geometry;
  telemetry::HealthHeader hdr;
  hdr.ftl = core::ftl_kind_name(health_spec.ssd.ftl);
  hdr.chips = geo.total_chips();
  hdr.blocks_per_chip = geo.blocks_per_chip;
  hdr.pages_per_block = geo.pages_per_block;
  hdr.subpages_per_page = geo.subpages_per_page;
  hdr.seed = health_spec.workload.seed;
  hdr.interval_us = health_spec.health_interval_us;
  hdr.rated_pe = health_spec.health_rated_pe;
  telemetry::HealthMonitor health(health_os, hdr);
  telemetry::TelemetryConfig cfg;
  cfg.trace_capacity = 256;
  cfg.op_detail = false;  // the lean always-on facade run_experiment owns
  telemetry::Telemetry tel(cfg);

  core::Ssd a(index_spec.ssd);
  core::Ssd b(health_spec.ssd);
  a.precondition(index_spec.precondition_fraction);
  b.precondition(health_spec.precondition_fraction);
  tel.set_health(&health);
  b.attach_telemetry(&tel);  // epoch 0: the post-precondition baseline

  const auto stream_params = [](const core::ExperimentSpec& spec,
                                const core::Ssd& ssd) {
    // Footprint defaulting duplicated from run_experiment: the duel drives
    // the drivers directly so chunk boundaries stay under its control.
    workload::SyntheticParams p = spec.workload;
    if (p.footprint_sectors == 0) {
      const std::uint32_t subs = spec.ssd.geometry.subpages_per_page;
      p.footprint_sectors =
          static_cast<std::uint64_t>(
              spec.precondition_fraction *
              static_cast<double>(ssd.logical_sectors())) /
          subs * subs;
    }
    return p;
  };
  workload::SyntheticWorkload sa(stream_params(index_spec, a));
  workload::SyntheticWorkload sb(stream_params(health_spec, b));

  if (index_spec.warmup_requests > 0) {
    a.driver().run(sa, /*verify=*/false, index_spec.warmup_requests);
    b.driver().run(sb, /*verify=*/false, health_spec.warmup_requests);
  }
  // The end-of-warmup epoch lands outside the timed chunks.
  b.driver().close_health_epoch();

  DuelResult out;
  std::uint64_t failures_a = 0, failures_b = 0;
  SimTime end_a = 0.0, end_b = 0.0;
  std::uint64_t remaining =
      index_spec.workload.request_count > index_spec.warmup_requests
          ? index_spec.workload.request_count - index_spec.warmup_requests
          : 0;
  bool flip = false;
  while (remaining > 0) {
    const std::uint64_t n = std::min<std::uint64_t>(1024, remaining);
    const auto step = [n](core::Ssd& ssd, workload::SyntheticWorkload& stream,
                          double& cpu, std::uint64_t& failures,
                          SimTime& end_us) {
      const double t0 = core::thread_cpu_seconds();
      const sim::RunMetrics m = ssd.driver().run(stream, /*verify=*/true, n);
      cpu += core::thread_cpu_seconds() - t0;
      failures += m.verify_failures;
      end_us = m.end_us;
      return m.requests;
    };
    if (flip) {
      step(b, sb, out.cpu_health, failures_b, end_b);
      out.requests += step(a, sa, out.cpu_index, failures_a, end_a);
    } else {
      out.requests += step(a, sa, out.cpu_index, failures_a, end_a);
      step(b, sb, out.cpu_health, failures_b, end_b);
    }
    flip = !flip;
    remaining -= n;
  }

  // End-of-run snapshot is teardown I/O, outside the timed chunks -- the
  // same contract run_experiment applies to its wall/CPU window.
  b.driver().close_health_epoch();
  health.finish();
  out.health_epochs = health.epochs_written();
  out.health_lines = health.lines_written();

  // Both sides must have replayed to the same simulated end state: the
  // health stream is a passive observer even when polled mid-stream.
  const ftl::FtlStats stats_a = a.ftl().stats();
  const ftl::FtlStats stats_b = b.ftl().stats();
  out.same_decisions =
      end_a == end_b && failures_a == 0 && failures_b == 0 &&
      stats_a.host_write_sectors == stats_b.host_write_sectors &&
      stats_a.flash_prog_full == stats_b.flash_prog_full &&
      stats_a.flash_prog_sub == stats_b.flash_prog_sub &&
      stats_a.gc_copy_sectors == stats_b.gc_copy_sectors &&
      stats_a.gc_invocations == stats_b.gc_invocations &&
      stats_a.rmw_ops == stats_b.rmw_ops &&
      stats_a.retention_evictions == stats_b.retention_evictions &&
      stats_a.wear_level_relocations == stats_b.wear_level_relocations &&
      a.device().counters().erases == b.device().counters().erases;

  tel.set_health(nullptr);
  return out;
}

/// The forensics gate's measurement: the same one-thread alternating-chunk
/// duel as run_health_duel, but side B attaches the per-request latency
/// forensics collector (phase attribution + top-K exemplars). Unlike the
/// health duel, BOTH sides carry the lean always-on facade run_experiment
/// would attach anyway: the gate bounds the *marginal* cost of switching
/// --forensics-out on, which is the decision a user actually makes (the
/// facade itself is priced by the health gate's bare baseline). Proves the
/// collector is a passive observer whose per-request tax stays under the
/// gate.
DuelResult run_forensics_duel(const core::ExperimentSpec& index_spec,
                              const core::ExperimentSpec& forensics_spec) {
  std::ofstream forensics_os(
      forensics_spec.forensics_path,
      std::ios::out | std::ios::trunc | std::ios::binary);
  if (!forensics_os)
    throw std::runtime_error("duel: cannot open forensics file: " +
                             forensics_spec.forensics_path);
  const auto& geo = forensics_spec.ssd.geometry;
  telemetry::ForensicsHeader hdr;
  hdr.ftl = core::ftl_kind_name(forensics_spec.ssd.ftl);
  hdr.chips = geo.total_chips();
  hdr.blocks_per_chip = geo.blocks_per_chip;
  hdr.pages_per_block = geo.pages_per_block;
  hdr.subpages_per_page = geo.subpages_per_page;
  hdr.page_bytes = geo.page_bytes;
  hdr.seed = forensics_spec.workload.seed;
  telemetry::ForensicsCollector::Config fcfg;
  fcfg.top_k = forensics_spec.forensics_top;
  fcfg.audit = forensics_spec.audit;
  telemetry::ForensicsCollector forensics(forensics_os, hdr, fcfg);
  telemetry::TelemetryConfig cfg;
  cfg.trace_capacity = 256;
  cfg.op_detail = false;  // the lean always-on facade run_experiment owns
  telemetry::Telemetry tel_a(cfg);
  telemetry::Telemetry tel(cfg);

  core::Ssd a(index_spec.ssd);
  core::Ssd b(forensics_spec.ssd);
  a.precondition(index_spec.precondition_fraction);
  b.precondition(forensics_spec.precondition_fraction);
  a.attach_telemetry(&tel_a);
  tel.set_forensics(&forensics);
  b.attach_telemetry(&tel);

  const auto stream_params = [](const core::ExperimentSpec& spec,
                                const core::Ssd& ssd) {
    workload::SyntheticParams p = spec.workload;
    if (p.footprint_sectors == 0) {
      const std::uint32_t subs = spec.ssd.geometry.subpages_per_page;
      p.footprint_sectors =
          static_cast<std::uint64_t>(
              spec.precondition_fraction *
              static_cast<double>(ssd.logical_sectors())) /
          subs * subs;
    }
    return p;
  };
  workload::SyntheticWorkload sa(stream_params(index_spec, a));
  workload::SyntheticWorkload sb(stream_params(forensics_spec, b));

  if (index_spec.warmup_requests > 0) {
    a.driver().run(sa, /*verify=*/false, index_spec.warmup_requests);
    b.driver().run(sb, /*verify=*/false, forensics_spec.warmup_requests);
  }

  DuelResult out;
  std::uint64_t failures_a = 0, failures_b = 0;
  SimTime end_a = 0.0, end_b = 0.0;
  std::uint64_t remaining =
      index_spec.workload.request_count > index_spec.warmup_requests
          ? index_spec.workload.request_count - index_spec.warmup_requests
          : 0;
  bool flip = false;
  while (remaining > 0) {
    const std::uint64_t n = std::min<std::uint64_t>(1024, remaining);
    const auto step = [n](core::Ssd& ssd, workload::SyntheticWorkload& stream,
                          double& cpu, std::uint64_t& failures,
                          SimTime& end_us) {
      const double t0 = core::thread_cpu_seconds();
      const sim::RunMetrics m = ssd.driver().run(stream, /*verify=*/true, n);
      cpu += core::thread_cpu_seconds() - t0;
      failures += m.verify_failures;
      end_us = m.end_us;
      return m.requests;
    };
    if (flip) {
      step(b, sb, out.cpu_health, failures_b, end_b);
      out.requests += step(a, sa, out.cpu_index, failures_a, end_a);
    } else {
      out.requests += step(a, sa, out.cpu_index, failures_a, end_a);
      step(b, sb, out.cpu_health, failures_b, end_b);
    }
    flip = !flip;
    remaining -= n;
  }

  // The trailing exemplar/blame dump is teardown I/O, outside the timed
  // chunks -- same contract as the health duel's end-of-run snapshot.
  forensics.finish();
  out.forensics_requests = forensics.requests();
  out.forensics_exemplars = forensics.exemplars_retained();

  const ftl::FtlStats stats_a = a.ftl().stats();
  const ftl::FtlStats stats_b = b.ftl().stats();
  out.same_decisions =
      end_a == end_b && failures_a == 0 && failures_b == 0 &&
      stats_a.host_write_sectors == stats_b.host_write_sectors &&
      stats_a.flash_prog_full == stats_b.flash_prog_full &&
      stats_a.flash_prog_sub == stats_b.flash_prog_sub &&
      stats_a.gc_copy_sectors == stats_b.gc_copy_sectors &&
      stats_a.gc_invocations == stats_b.gc_invocations &&
      stats_a.rmw_ops == stats_b.rmw_ops &&
      stats_a.retention_evictions == stats_b.retention_evictions &&
      stats_a.wear_level_relocations == stats_b.wear_level_relocations &&
      a.device().counters().erases == b.device().counters().erases;

  tel.set_forensics(nullptr);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::string geometry_filter = "both";
  unsigned jobs = 0;
  bool quick = false;
  double health_gate_pct = -1.0;  // <0 = no health cells
  std::string health_out = "replay_health.jsonl";
  // Endpoint epochs by default: the gate bounds the ALWAYS-ON per-op tax
  // of the health stream. Snapshot cost is a separate, user-chosen knob --
  // O(blocks) per epoch at whatever cadence --health-interval picks -- and
  // this bench's deliberately compressed clock (400 us think time) would
  // make any fixed simulated-seconds cadence absurdly aggressive: 1 sim-s
  // is ~2500 requests here, vs minutes of real traffic on a device.
  double health_interval_s = 0.0;
  double forensics_gate_pct = -1.0;  // <0 = no forensics cells
  std::string forensics_out = "replay_forensics.jsonl";
  std::uint32_t forensics_top = 16;
  std::vector<unsigned> shard_counts;  // --shards 4,8: extra sharded modes
  unsigned shard_jobs = 0;             // 0 = hardware concurrency
  std::uint64_t snapshot_every = 0;    // --snapshot-every N: restart gate
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--shards" && i + 1 < argc) {
      std::stringstream ss(argv[++i]);
      std::string item;
      while (std::getline(ss, item, ',')) {
        const unsigned n =
            static_cast<unsigned>(std::strtoul(item.c_str(), nullptr, 10));
        if (n < 2) {
          std::fprintf(stderr, "--shards values must be >= 2\n");
          return 2;
        }
        shard_counts.push_back(n);
      }
    } else if (arg == "--shard-jobs" && i + 1 < argc) {
      shard_jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--geometry" && i + 1 < argc) {
      geometry_filter = argv[++i];
      if (geometry_filter != "paper" && geometry_filter != "prod" &&
          geometry_filter != "both") {
        std::fprintf(stderr, "--geometry must be paper|prod|both\n");
        return 2;
      }
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--health-gate" && i + 1 < argc) {
      health_gate_pct = std::atof(argv[++i]);
    } else if (arg == "--health-out" && i + 1 < argc) {
      health_out = argv[++i];
    } else if (arg == "--health-interval" && i + 1 < argc) {
      health_interval_s = std::atof(argv[++i]);
    } else if (arg == "--forensics-gate" && i + 1 < argc) {
      forensics_gate_pct = std::atof(argv[++i]);
    } else if (arg == "--forensics-out" && i + 1 < argc) {
      forensics_out = argv[++i];
    } else if (arg == "--forensics-top" && i + 1 < argc) {
      forensics_top =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--snapshot-every" && i + 1 < argc) {
      snapshot_every = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--jobs N] "
                   "[--geometry paper|prod|both] [--quick]\n"
                   "          [--shards N[,N...]] [--shard-jobs N]\n"
                   "          [--health-gate PCT] [--health-out PATH] "
                   "[--health-interval SIM_SECONDS]\n"
                   "--shards adds one sharded mode per listed count (index "
                   "maintenance,\nN shared-nothing shard simulations merged "
                   "deterministically; see\ndocs/PERFORMANCE.md) plus FATAL "
                   "shard-invariance gates: merged counters\nmust equal the "
                   "sum of shards, and a shard re-run alone must write a\n"
                   "byte-identical journal. --shard-jobs caps the shard "
                   "worker pool\n(0 = hardware concurrency). Measure sharded "
                   "speedup with --jobs 1.\n"
                   "--health-gate adds a third per-FTL mode (index "
                   "maintenance + health\nstream enabled) plus, per "
                   "(geometry, FTL), a paired in-process duel:\nhealth-on "
                   "vs health-off simulators stepped in alternating 1024-"
                   "request\nchunks on one thread. Fails if the avg over "
                   "FTLs of the duel's\nCPU-time overhead exceeds PCT%%.\n"
                   "--forensics-gate PCT does the same for the latency-"
                   "forensics collector\n(per-request phase attribution + "
                   "top-K exemplars): a forensics mode cell\nplus a paired "
                   "duel per (geometry, FTL). --forensics-out/--forensics-"
                   "top\nset the sidecar path and exemplar count.\n"
                   "--snapshot-every N adds a FATAL restartable-replay "
                   "gate: a subFTL\njournal cell re-run as a chain of "
                   "segments, each restoring the previous\ncheckpoint and "
                   "replaying N more measured requests, must leave a\n"
                   "byte-identical journal to the straight-through run.\n",
                   argv[0]);
      return 2;
    }
  }
  const bool with_health = health_gate_pct >= 0.0;
  const bool with_forensics = forensics_gate_pct >= 0.0;

  // --quick (the CI perf-smoke scale): quarter the block count of both
  // profiles and an eighth of the request budget. Shares and speedups keep
  // their shape; absolute numbers shrink.
  std::vector<std::pair<std::string, nand::Geometry>> geometries;
  for (const char* name : {"paper", "prod"}) {
    if (geometry_filter != "both" && geometry_filter != name) continue;
    nand::Geometry g = nand::geometry_profile(name);
    if (quick) g.blocks_per_chip /= 4;
    geometries.emplace_back(name, g);
  }
  const double budget_scale = quick ? 0.125 : 1.0;

  std::printf("==============================================================\n");
  std::printf("Macro replay -- wall-clock throughput, scan vs index maintenance\n");
  for (const auto& [name, geo] : geometries)
    std::printf("%-6s %s\n", name.c_str(), geo.describe().c_str());
  std::printf("==============================================================\n");

  const auto kinds = {core::FtlKind::kCgm, core::FtlKind::kFgm,
                      core::FtlKind::kSub, core::FtlKind::kSectorLog};
  std::vector<Mode> modes = {{"scan", true, false}, {"index", false, false}};
  for (const unsigned n : shard_counts)
    modes.push_back({"shard" + std::to_string(n), false, false, n});
  if (with_health) modes.push_back({"health", false, true});
  if (with_forensics) modes.push_back({"forensics", false, false, 1, true});
  std::vector<core::ExperimentCell> cells;
  for (const auto& [name, geo] : geometries)
    for (const auto kind : kinds)
      for (const auto& mode : modes) {
        cells.push_back(make_cell(name, geo, kind, mode, budget_scale,
                                  /*measure_scale=*/1.0, health_out,
                                  health_interval_s));
        cells.back().spec.shard_jobs = shard_jobs;
        if (mode.forensics) {
          cells.back().spec.forensics_path =
              bench::cell_journal_path(forensics_out, cells.back().key);
          cells.back().spec.forensics_top = forensics_top;
        }
      }

  core::ParallelRunnerConfig runner_cfg;
  runner_cfg.jobs = jobs;
  runner_cfg.base_seed = kBaseSeed;
  runner_cfg.derive_seeds = false;  // seeds fixed per geometry above
  core::ParallelRunner runner(runner_cfg);
  const auto results = runner.run(cells);
  std::printf("ran %zu cells on %u worker(s) in %.1fs\n", cells.size(),
              runner.manifest().jobs_used, runner.manifest().wall_seconds);

  // grid[geometry][ftl][mode] -> cell result.
  std::map<std::string, std::map<std::string, std::map<std::string, CellOut>>>
      grid;
  {
    std::size_t i = 0;
    for (const auto& [name, geo] : geometries) {
      (void)geo;
      for (const auto kind : kinds)
        for (const auto& mode : modes) {
          const auto& cell = results[i++];
          if (!cell.ok) {
            std::fprintf(stderr, "FATAL: cell %s failed: %s\n",
                         cell.key.c_str(), cell.error.c_str());
            return 1;
          }
          if (cell.result.verify_failures != 0) {
            std::fprintf(stderr, "FATAL: %llu verify failures (%s)\n",
                         static_cast<unsigned long long>(
                             cell.result.verify_failures),
                         cell.key.c_str());
            return 1;
          }
          grid[name][core::ftl_kind_name(kind)][mode.name] =
              CellOut{cell.result, cell.wall_seconds};
        }
    }
  }

  bool identical = true;
  for (const auto& [geom, per_ftl] : grid)
    for (const auto& [ftl, per_mode] : per_ftl) {
      const core::RunResult& index = per_mode.at("index").r;
      if (!same_decisions(per_mode.at("scan").r, index)) {
        std::fprintf(stderr,
                     "FATAL: scan/index decisions diverged for %s/%s\n",
                     geom.c_str(), ftl.c_str());
        identical = false;
      }
      // The health cell must make the same simulated decisions as the
      // health-off index cell: the stream is a passive observer.
      if (with_health && !same_decisions(per_mode.at("health").r, index)) {
        std::fprintf(stderr,
                     "FATAL: health observation changed decisions for %s/%s\n",
                     geom.c_str(), ftl.c_str());
        identical = false;
      }
      // Same contract for the forensics collector: per-request phase
      // attribution must never perturb the simulation it observes.
      if (with_forensics &&
          !same_decisions(per_mode.at("forensics").r, index)) {
        std::fprintf(
            stderr,
            "FATAL: forensics observation changed decisions for %s/%s\n",
            geom.c_str(), ftl.c_str());
        identical = false;
      }
      // Sharded cells are a different (reproducible) model point, so they
      // are not compared against the unsharded decisions; their gate is
      // the merge reconciliation: merged counters == sum of shards.
      for (const unsigned n : shard_counts) {
        const core::RunResult& sharded =
            per_mode.at("shard" + std::to_string(n)).r;
        if (sharded.shard_results.size() != n ||
            !merged_equals_sum(sharded)) {
          std::fprintf(stderr,
                       "FATAL: sharded merge != sum of shards for %s/%s "
                       "(shards %u)\n",
                       geom.c_str(), ftl.c_str(), n);
          identical = false;
        }
      }
    }
  if (!identical) return 1;
  std::printf("\nscan/index simulated decisions identical for all cells\n");
  if (!shard_counts.empty())
    std::printf("sharded merges reconcile (merged == sum of shards) for all "
                "cells\n");

  // Shard-invariance journal gate: one subFTL sharded cell per (geometry,
  // shard count), re-run at reduced budget with journal sidecars; shard 0
  // is then re-run ALONE through the same leaf-spec construction and must
  // write a byte-identical journal -- a shard's simulation cannot depend
  // on its siblings or the thread schedule.
  for (const auto& [geom, geo] : geometries)
    for (const unsigned n : shard_counts) {
      const Mode gate_mode{"shard" + std::to_string(n) + "-gate", false,
                           false, n};
      auto gate = make_cell(geom, geo, core::FtlKind::kSub, gate_mode,
                            budget_scale, /*measure_scale=*/0.25, health_out,
                            health_interval_s);
      gate.spec.shard_jobs = shard_jobs;
      gate.spec.journal_path =
          "replay_shard_gate_" + geom + "_s" + std::to_string(n) + ".jsonl";
      gate.spec.journal_max_events = 500000;  // per-shard cap, bounds disk
      const core::RunResult joint = core::run_experiment(gate.spec);

      core::ExperimentSpec alone_base = gate.spec;
      alone_base.journal_path = "replay_shard_gate_" + geom + "_s" +
                                std::to_string(n) + "_alone.jsonl";
      const core::ShardPlan plan = core::make_shard_plan(alone_base);
      const workload::SyntheticParams params =
          core::sharded_workload_params(alone_base, plan);
      workload::SyntheticWorkload generator(params);
      const workload::ShardSplitter splitter(
          plan.shards, plan.stripe_pages,
          alone_base.ssd.geometry.subpages_per_page, plan.shard_sectors);
      auto streams = workload::partition_stream(generator, splitter, 0,
                                                alone_base.warmup_requests);
      core::ExperimentSpec leaf = core::make_shard_spec(alone_base, plan, 0);
      leaf.warmup_requests = streams[0].warmup_requests;
      leaf.workload.request_count = streams[0].requests.size();
      workload::VectorSource source(std::move(streams[0].requests));
      leaf.stream = &source;
      const core::RunResult alone = core::run_experiment(leaf);

      const std::string joint_journal =
          slurp(core::shard_sidecar_path(gate.spec.journal_path, 0));
      const std::string alone_journal = slurp(leaf.journal_path);
      if (joint_journal.empty() || joint_journal != alone_journal ||
          !same_decisions(alone, joint.shard_results.at(0))) {
        std::fprintf(stderr,
                     "FATAL: shard 0 alone diverged from shard 0 among "
                     "siblings for %s (shards %u)\n",
                     geom.c_str(), n);
        return 1;
      }
    }
  if (!shard_counts.empty())
    std::printf("shard-invariance journal gate passed (alone == among "
                "siblings)\n");

  // Restartable-replay gate (--snapshot-every N): a replay interrupted at
  // any checkpoint and restarted from it must be indistinguishable from an
  // uninterrupted run. One subFTL journal cell per geometry runs straight
  // through as the reference, then again as a chain of segments: segment i
  // restores the previous checkpoint, replays N more measured requests,
  // checkpoints and exits (the final segment runs to the end of the
  // budget). Restores truncate the journal to the checkpoint offset and
  // append, so the chain leaves ONE journal file -- it must byte-match the
  // reference, and the cumulative simulated end state must agree.
  std::map<std::string, unsigned> restart_segments;
  if (snapshot_every > 0)
    for (const auto& [geom, geo] : geometries) {
      const Mode gate_mode{"restart-gate", false, false, 1};
      const auto cell = make_cell(geom, geo, core::FtlKind::kSub, gate_mode,
                                  budget_scale, /*measure_scale=*/0.25,
                                  health_out, health_interval_s);

      core::ExperimentSpec ref = cell.spec;
      ref.journal_path = "replay_restart_" + geom + "_ref.jsonl";
      ref.journal_max_events = 500000;
      const core::RunResult straight = core::run_experiment(ref);

      const std::string ckpt = "replay_restart_" + geom + ".snap";
      const std::string chained_path =
          "replay_restart_" + geom + "_chained.jsonl";
      const std::uint64_t measured =
          cell.spec.workload.request_count - cell.spec.warmup_requests;
      std::uint64_t done = 0;
      unsigned segments = 0;
      core::RunResult last;
      while (true) {
        core::ExperimentSpec seg = cell.spec;
        seg.journal_path = chained_path;
        seg.journal_max_events = 500000;
        if (done > 0) seg.snapshot_in = ckpt;
        const bool final_segment = measured - done <= snapshot_every;
        if (!final_segment) {
          seg.snapshot_out = ckpt;
          seg.snapshot_after_requests = snapshot_every;
          // Exhaust the stream exactly at the cut: the checkpoint leg runs
          // N requests and the post-checkpoint leg finds nothing left.
          seg.workload.request_count =
              cell.spec.warmup_requests + done + snapshot_every;
          done += snapshot_every;
        }
        last = core::run_experiment(seg);
        ++segments;
        if (final_segment) break;
      }

      const std::string ref_journal = slurp(ref.journal_path);
      const std::string chained_journal = slurp(chained_path);
      if (ref_journal.empty() || ref_journal != chained_journal ||
          last.raw.end_us != straight.raw.end_us ||
          last.raw.device_erases != straight.raw.device_erases ||
          last.verify_failures != 0 || straight.verify_failures != 0) {
        std::fprintf(stderr,
                     "FATAL: restart chain (%u segments of %llu) diverged "
                     "from straight-through replay for %s\n",
                     segments,
                     static_cast<unsigned long long>(snapshot_every),
                     geom.c_str());
        return 1;
      }
      restart_segments[geom] = segments;
      std::printf("restartable-replay gate passed for %s (%u segments, "
                  "journal byte-identical)\n",
                  geom.c_str(), segments);
    }

  std::map<std::string, double> avg_speedup;
  for (const auto& [geom, geo] : geometries) {
    std::printf("\n%s geometry (%s)\n\n", geom.c_str(),
                geo.describe().c_str());
    util::TablePrinter t({"FTL", "scan ops/s", "index ops/s", "speedup",
                          "maint% scan", "maint% index", "gc% index"});
    double sum = 0.0;
    for (const auto kind : kinds) {
      const auto& per_mode = grid[geom][core::ftl_kind_name(kind)];
      const CellOut& scan = per_mode.at("scan");
      const CellOut& index = per_mode.at("index");
      const double scan_ops = ops_per_sec(scan);
      const double index_ops = ops_per_sec(index);
      const double speedup = scan_ops > 0.0 ? index_ops / scan_ops : 0.0;
      sum += speedup;
      t.add_row({core::ftl_kind_name(kind),
                 util::TablePrinter::num(scan_ops, 0),
                 util::TablePrinter::num(index_ops, 0),
                 util::TablePrinter::num(speedup, 2),
                 util::TablePrinter::pct(
                     maint_share(scan.r.raw.ftl_stats,
                                 scan.r.measure_wall_seconds),
                     1),
                 util::TablePrinter::pct(
                     maint_share(index.r.raw.ftl_stats,
                                 index.r.measure_wall_seconds),
                     1),
                 util::TablePrinter::pct(
                     gc_share(index.r.raw.ftl_stats,
                              index.r.measure_wall_seconds),
                     1)});
    }
    t.print(std::cout);
    avg_speedup[geom] = sum / 4.0;
    std::printf("avg host-replay speedup (index vs scan): %.2fx\n",
                sum / 4.0);
  }

  // Intra-cell sharding: fork-to-join wall-clock throughput of each
  // sharded mode vs the unsharded index cell, plus shard balance (mean
  // per-chip utilization over the merged measured window).
  std::map<std::string, std::map<unsigned, double>> avg_shard_speedup;
  if (!shard_counts.empty()) {
    for (const auto& [geom, geo] : geometries) {
      std::printf("\n%s geometry -- intra-cell sharding (%s)\n\n",
                  geom.c_str(), geo.describe().c_str());
      std::vector<std::string> header = {"FTL", "index ops/s"};
      for (const unsigned n : shard_counts) {
        header.push_back("s" + std::to_string(n) + " ops/s");
        header.push_back("speedup");
        header.push_back("chip util");
      }
      util::TablePrinter t(header);
      std::map<unsigned, double> sums;
      for (const auto kind : kinds) {
        const auto& per_mode = grid[geom][core::ftl_kind_name(kind)];
        const double index_ops = ops_per_sec(per_mode.at("index"));
        std::vector<std::string> row = {
            core::ftl_kind_name(kind), util::TablePrinter::num(index_ops, 0)};
        for (const unsigned n : shard_counts) {
          const CellOut& c = per_mode.at("shard" + std::to_string(n));
          const double ops = ops_per_sec(c);
          const double speedup = index_ops > 0.0 ? ops / index_ops : 0.0;
          sums[n] += speedup;
          row.push_back(util::TablePrinter::num(ops, 0));
          row.push_back(util::TablePrinter::num(speedup, 2) + "x");
          row.push_back(
              util::TablePrinter::pct(c.r.chip_util_mean, 1));
        }
        t.add_row(row);
      }
      t.print(std::cout);
      for (const unsigned n : shard_counts) {
        avg_shard_speedup[geom][n] = sums[n] / 4.0;
        std::printf("avg sharded speedup (shards %u vs unsharded index): "
                    "%.2fx\n",
                    n, sums[n] / 4.0);
      }
    }
    if (std::thread::hardware_concurrency() <= 1)
      std::printf("single-core host: fork-to-join shard speedups are "
                  "provenance only (the JSON records host_cores; CI skips "
                  "the speedup comparison at 1 core)\n");
  }

  // Health-observability gate: one paired in-process duel per (geometry,
  // FTL) -- health-on vs health-off simulators stepped in alternating
  // 1024-request chunks on this thread (see run_health_duel), compared in
  // thread-CPU time so neither other tenants of the machine nor frequency
  // scaling can move the ratio. Overheads are averaged over the four FTLs.
  // The duel gets a 4x measure budget: a 3% ratio needs a few hundred
  // milliseconds of CPU per side to be readable at all.
  std::map<std::string, double> avg_health_overhead;
  std::map<std::string, std::map<std::string, DuelResult>> duels;
  bool health_pass = true;
  if (with_health) {
    const Mode index_mode{"index", false, false};
    const Mode health_mode{"health", false, true};
    for (const auto& [geom, geo] : geometries) {
      std::printf("\n%s geometry -- health-stream overhead (gate %.1f%%)\n\n",
                  geom.c_str(), health_gate_pct);
      util::TablePrinter t({"FTL", "index ops/cpu-s", "health ops/cpu-s",
                            "overhead", "epochs", "lines"});
      double sum = 0.0;
      for (const auto kind : kinds) {
        const auto index_cell =
            make_cell(geom, geo, kind, index_mode, budget_scale,
                      /*measure_scale=*/4.0, health_out, health_interval_s);
        auto health_cell =
            make_cell(geom, geo, kind, health_mode, budget_scale,
                      /*measure_scale=*/4.0, health_out, health_interval_s);
        // Distinct stream path: the parallel health cell above already
        // owns this key's artifact.
        health_cell.spec.health_path =
            bench::cell_journal_path(health_out, health_cell.key + "#duel");
        const DuelResult d =
            run_health_duel(index_cell.spec, health_cell.spec);
        if (!d.same_decisions) {
          std::fprintf(
              stderr,
              "FATAL: health observation changed duel decisions for %s/%s\n",
              geom.c_str(), core::ftl_kind_name(kind).c_str());
          return 1;
        }
        const double index_ops =
            d.cpu_index > 0.0
                ? static_cast<double>(d.requests) / d.cpu_index
                : 0.0;
        const double health_ops =
            d.cpu_health > 0.0
                ? static_cast<double>(d.requests) / d.cpu_health
                : 0.0;
        const double overhead =
            d.cpu_index > 0.0 ? d.cpu_health / d.cpu_index - 1.0 : 0.0;
        sum += overhead;
        duels[geom][core::ftl_kind_name(kind)] = d;
        t.add_row({core::ftl_kind_name(kind),
                   util::TablePrinter::num(index_ops, 0),
                   util::TablePrinter::num(health_ops, 0),
                   util::TablePrinter::pct(overhead, 2),
                   std::to_string(d.health_epochs),
                   std::to_string(d.health_lines)});
      }
      t.print(std::cout);
      const double avg = sum / 4.0;
      avg_health_overhead[geom] = avg;
      const bool ok = avg <= health_gate_pct / 100.0;
      health_pass &= ok;
      std::printf("avg health-stream overhead: %.2f%% -- %s\n", avg * 100.0,
                  ok ? "PASS" : "FAIL");
    }
  }

  // Forensics-overhead gate: the same paired-duel design, with the latency
  // forensics collector (phase attribution, windowed blame, top-K exemplar
  // heap) as the stream under test.
  std::map<std::string, double> avg_forensics_overhead;
  std::map<std::string, std::map<std::string, DuelResult>> forensics_duels;
  bool forensics_pass = true;
  if (with_forensics) {
    const Mode index_mode{"index", false, false};
    const Mode forensics_mode{"forensics", false, false, 1, true};
    for (const auto& [geom, geo] : geometries) {
      std::printf(
          "\n%s geometry -- forensics-stream overhead (gate %.1f%%)\n\n",
          geom.c_str(), forensics_gate_pct);
      util::TablePrinter t({"FTL", "index ops/cpu-s", "forensics ops/cpu-s",
                            "overhead", "requests", "exemplars"});
      double sum = 0.0;
      for (const auto kind : kinds) {
        const auto index_cell =
            make_cell(geom, geo, kind, index_mode, budget_scale,
                      /*measure_scale=*/4.0, health_out, health_interval_s);
        auto forensics_cell =
            make_cell(geom, geo, kind, forensics_mode, budget_scale,
                      /*measure_scale=*/4.0, health_out, health_interval_s);
        // Distinct stream path: the parallel forensics cell above already
        // owns this key's artifact.
        forensics_cell.spec.forensics_path = bench::cell_journal_path(
            forensics_out, forensics_cell.key + "#duel");
        forensics_cell.spec.forensics_top = forensics_top;
        const DuelResult d =
            run_forensics_duel(index_cell.spec, forensics_cell.spec);
        if (!d.same_decisions) {
          std::fprintf(stderr,
                       "FATAL: forensics observation changed duel decisions "
                       "for %s/%s\n",
                       geom.c_str(), core::ftl_kind_name(kind).c_str());
          return 1;
        }
        const double index_ops =
            d.cpu_index > 0.0
                ? static_cast<double>(d.requests) / d.cpu_index
                : 0.0;
        const double forensics_ops =
            d.cpu_health > 0.0
                ? static_cast<double>(d.requests) / d.cpu_health
                : 0.0;
        const double overhead =
            d.cpu_index > 0.0 ? d.cpu_health / d.cpu_index - 1.0 : 0.0;
        sum += overhead;
        forensics_duels[geom][core::ftl_kind_name(kind)] = d;
        t.add_row({core::ftl_kind_name(kind),
                   util::TablePrinter::num(index_ops, 0),
                   util::TablePrinter::num(forensics_ops, 0),
                   util::TablePrinter::pct(overhead, 2),
                   std::to_string(d.forensics_requests),
                   std::to_string(d.forensics_exemplars)});
      }
      t.print(std::cout);
      const double avg = sum / 4.0;
      avg_forensics_overhead[geom] = avg;
      const bool ok = avg <= forensics_gate_pct / 100.0;
      forensics_pass &= ok;
      std::printf("avg forensics-stream overhead: %.2f%% -- %s\n",
                  avg * 100.0, ok ? "PASS" : "FAIL");
    }
  }

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.kv("figure", "macro_replay");
    w.newline();
    // Host-side provenance AND the wall-clock measurements themselves are
    // non-deterministic -- this artifact documents the machine it ran on;
    // only "identical_decisions" is a stable invariant.
    w.key("run");
    w.begin_object();
    w.kv("jobs", static_cast<std::uint64_t>(runner.manifest().jobs_used));
    w.kv("host_cores",
         static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    w.kv("shard_jobs", static_cast<std::uint64_t>(shard_jobs));
    w.kv("base_seed", kBaseSeed);
    w.kv("quick", quick);
    w.kv("wall_seconds", runner.manifest().wall_seconds);
    w.kv("identical_decisions", identical);
    w.kv("snapshot_every", snapshot_every);
    for (const auto& [geom, segments] : restart_segments)
      w.kv("restart_gate_segments_" + geom,
           static_cast<std::uint64_t>(segments));
    w.end_object();
    w.newline();
    w.key("geometries");
    w.begin_object();
    for (const auto& [name, geo] : geometries) {
      w.key(name);
      w.begin_object();
      w.kv("describe", geo.describe());
      w.kv("total_blocks", geo.total_blocks());
      w.kv("pages_per_block",
           static_cast<std::uint64_t>(geo.pages_per_block));
      w.kv("capacity_gib", static_cast<double>(geo.capacity_bytes()) /
                               (1024.0 * 1024.0 * 1024.0));
      w.end_object();
    }
    w.end_object();
    w.newline();
    w.key("cells");
    w.begin_object();
    for (const auto& [name, geo] : geometries) {
      (void)geo;
      w.newline();
      w.key(name);
      w.begin_object();
      for (const auto kind : kinds) {
        const auto& per_mode = grid[name][core::ftl_kind_name(kind)];
        w.newline();
        w.key(core::ftl_kind_name(kind));
        w.begin_object();
        for (const auto& mode : modes) {
          const CellOut& c = per_mode.at(mode.name);
          const ftl::FtlStats& s = c.r.raw.ftl_stats;
          w.key(mode.name);
          w.begin_object();
          w.kv("host_ops_per_sec", ops_per_sec(c));
          w.kv("host_ops_per_cpu_sec", ops_per_cpu_sec(c));
          w.kv("measure_wall_seconds", c.r.measure_wall_seconds);
          w.kv("measure_cpu_seconds", c.r.measure_cpu_seconds);
          w.kv("cell_wall_seconds", c.wall);
          w.kv("requests", c.r.raw.requests);
          w.kv("sim_host_mb_per_sec", c.r.host_mb_per_sec);
          w.kv("maintenance_share",
               maint_share(s, c.r.measure_wall_seconds));
          w.kv("retention_share",
               c.r.measure_wall_seconds > 0.0
                   ? static_cast<double>(s.maint_retention_ns) /
                         (c.r.measure_wall_seconds * 1e9)
                   : 0.0);
          w.kv("wear_level_share",
               c.r.measure_wall_seconds > 0.0
                   ? static_cast<double>(s.maint_wear_level_ns) /
                         (c.r.measure_wall_seconds * 1e9)
                   : 0.0);
          w.kv("release_idle_share",
               c.r.measure_wall_seconds > 0.0
                   ? static_cast<double>(s.maint_release_idle_ns) /
                         (c.r.measure_wall_seconds * 1e9)
                   : 0.0);
          w.kv("gc_share", gc_share(s, c.r.measure_wall_seconds));
          w.kv("maint_retention_calls", s.maint_retention_calls);
          w.kv("maint_wear_level_calls", s.maint_wear_level_calls);
          w.kv("maint_release_idle_calls", s.maint_release_idle_calls);
          w.kv("gc_invocations", c.r.gc_invocations);
          w.kv("erases", c.r.erases);
          w.kv("overall_waf", c.r.overall_waf);
          w.kv("retention_evictions", s.retention_evictions);
          w.kv("wear_level_relocations", s.wear_level_relocations);
          w.kv("chip_util", c.r.chip_util_mean);
          w.kv("channel_util", c.r.channel_util_mean);
          if (mode.shards > 1)
            w.kv("shards", static_cast<std::uint64_t>(mode.shards));
          if (mode.health) {
            w.kv("health_epochs", c.r.health_epochs);
            w.kv("health_lines", c.r.health_lines);
          }
          if (mode.forensics) {
            w.kv("forensics_requests", c.r.forensics_requests);
            w.kv("forensics_exemplars", c.r.forensics_exemplars);
            w.kv("forensics_truncated", c.r.forensics_truncated);
          }
          w.end_object();
        }
        const double scan_ops = ops_per_sec(per_mode.at("scan"));
        const double index_ops = ops_per_sec(per_mode.at("index"));
        w.kv("speedup_host_ops", scan_ops > 0.0 ? index_ops / scan_ops : 0.0);
        for (const unsigned n : shard_counts) {
          const double ops =
              ops_per_sec(per_mode.at("shard" + std::to_string(n)));
          w.kv("speedup_shard" + std::to_string(n),
               index_ops > 0.0 ? ops / index_ops : 0.0);
        }
        w.end_object();
      }
      w.end_object();
    }
    w.end_object();
    if (with_health) {
      w.newline();
      // The gate's raw duel measurements (non-deterministic, documentary).
      w.key("health_gate");
      w.begin_object();
      for (const auto& [name, per_ftl] : duels) {
        w.key(name);
        w.begin_object();
        for (const auto& [ftl, d] : per_ftl) {
          w.key(ftl);
          w.begin_object();
          w.kv("cpu_index_seconds", d.cpu_index);
          w.kv("cpu_health_seconds", d.cpu_health);
          w.kv("requests", d.requests);
          w.kv("overhead",
               d.cpu_index > 0.0 ? d.cpu_health / d.cpu_index - 1.0 : 0.0);
          w.kv("health_epochs", d.health_epochs);
          w.kv("health_lines", d.health_lines);
          w.end_object();
        }
        w.end_object();
      }
      w.end_object();
    }
    if (with_forensics) {
      w.newline();
      // The gate's raw duel measurements (non-deterministic, documentary).
      w.key("forensics_gate");
      w.begin_object();
      for (const auto& [name, per_ftl] : forensics_duels) {
        w.key(name);
        w.begin_object();
        for (const auto& [ftl, d] : per_ftl) {
          w.key(ftl);
          w.begin_object();
          w.kv("cpu_index_seconds", d.cpu_index);
          w.kv("cpu_forensics_seconds", d.cpu_health);
          w.kv("requests", d.requests);
          w.kv("overhead",
               d.cpu_index > 0.0 ? d.cpu_health / d.cpu_index - 1.0 : 0.0);
          w.kv("forensics_requests", d.forensics_requests);
          w.kv("forensics_exemplars", d.forensics_exemplars);
          w.end_object();
        }
        w.end_object();
      }
      w.end_object();
    }
    w.newline();
    w.key("summary");
    w.begin_object();
    for (const auto& [name, geo] : geometries) {
      (void)geo;
      w.kv("avg_speedup_" + name, avg_speedup[name]);
      for (const unsigned n : shard_counts)
        w.kv("avg_speedup_shard" + std::to_string(n) + "_" + name,
             avg_shard_speedup[name][n]);
    }
    if (with_health) {
      for (const auto& [name, geo] : geometries) {
        (void)geo;
        w.kv("avg_health_overhead_" + name, avg_health_overhead[name]);
      }
      w.kv("health_gate_pct", health_gate_pct);
      w.kv("health_gate_pass", health_pass);
    }
    if (with_forensics) {
      for (const auto& [name, geo] : geometries) {
        (void)geo;
        w.kv("avg_forensics_overhead_" + name, avg_forensics_overhead[name]);
      }
      w.kv("forensics_gate_pct", forensics_gate_pct);
      w.kv("forensics_gate_pass", forensics_pass);
    }
    w.end_object();
    w.end_object();
    os << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  if (with_health && !health_pass) {
    std::fprintf(stderr, "FATAL: health-stream overhead above %.1f%% gate\n",
                 health_gate_pct);
    return 1;
  }
  if (with_forensics && !forensics_pass) {
    std::fprintf(stderr,
                 "FATAL: forensics-stream overhead above %.1f%% gate\n",
                 forensics_gate_pct);
    return 1;
  }
  return 0;
}
