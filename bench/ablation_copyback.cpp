// Ablation: NAND copy-back for GC page moves (a device feature beyond the
// paper, common on the 2x-nm TLC parts it characterizes).
//
// A GC page move normally costs sense + 16-KB transfer out + 16-KB
// transfer in + program; copy-back keeps the data in the chip's page
// buffer, eliminating both transfers (~40 us each at 800 MB/s) and the
// channel occupancy they cause. This matters most where GC copies are
// heavy: cgmFTL under small-write churn.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

namespace {

using namespace esp;

struct Outcome {
  double mbps = 0.0;
  std::uint64_t copies = 0;
};

Outcome run_one(core::FtlKind kind, bool copyback) {
  core::ExperimentSpec spec;
  spec.ssd = bench::scaled_config(kind);
  spec.ssd.use_copyback = copyback;
  spec.warmup_requests = 150000;
  spec.workload.request_count = spec.warmup_requests + 60000;
  spec.workload.r_small = 1.0;
  spec.workload.r_synch = 1.0;
  spec.workload.small_footprint_fraction = 0.10;  // GC-copy-heavy regime
  spec.workload.small_zipf_theta = 0.8;
  spec.workload.seed = 404;
  const auto result = core::run_experiment(spec);
  return Outcome{result.host_mb_per_sec,
                 result.raw.ftl_stats.gc_copy_sectors};
}

}  // namespace

int main() {
  bench::print_header("Ablation -- copy-back GC page moves");

  util::TablePrinter t({"FTL", "plain GC MB/s", "copyback MB/s", "gain",
                        "GC copy sectors"});
  for (const auto kind :
       {core::FtlKind::kCgm, core::FtlKind::kSub, core::FtlKind::kSectorLog}) {
    const auto plain = run_one(kind, false);
    const auto fast = run_one(kind, true);
    t.add_row({core::ftl_kind_name(kind),
               util::TablePrinter::num(plain.mbps, 1),
               util::TablePrinter::num(fast.mbps, 1),
               util::TablePrinter::pct(fast.mbps / plain.mbps - 1.0, 1),
               std::to_string(fast.copies)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: the gain tracks GC copy volume -- largest for the\n"
      "RMW-bound cgmFTL, small for FTLs whose GC copies little. (fgmFTL's\n"
      "sector-repacking GC cannot use page copy-back and is omitted.)\n");
  return 0;
}
