// Ablation: subpage-region writing-policy knobs that DESIGN.md calls out.
//
//   (a) advance_max_valid_fraction -- when a sealed block is too valid to
//       advance cheaply, GC takes it instead. 0 disables level reuse
//       entirely (every block erased after level 0, like a plain SLC-style
//       log); 1.0 reproduces the paper's unconditional advance-first
//       policy, which forwards pathologically at high region occupancy.
//   (b) gc_free_target -- erased blocks reclaimed per GC episode.
//
// Run on a Sysbench-like stream at moderate region occupancy, where the
// trade-offs are visible in both directions.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "ftl/sub_ftl.h"
#include "util/table_printer.h"
#include "workload/profiles.h"

namespace {

using namespace esp;

struct Outcome {
  double mbps;
  std::uint64_t forwards;
  std::uint64_t erases;
  std::uint64_t evictions;
};

// The knobs live below SsdConfig, so this bench builds the FTL directly.
Outcome run_one(double advance_fraction, std::uint32_t gc_free_target) {
  nand::NandDevice dev(bench::scaled_geometry());
  const auto base = bench::scaled_config(core::FtlKind::kSub);

  ftl::SubFtl::Config cfg;
  cfg.logical_sectors = base.logical_sectors();
  cfg.subpage_region_fraction = base.subpage_region_fraction;
  cfg.gc_reserve_blocks = base.gc_reserve_blocks;
  cfg.buffer_sectors = base.buffer_sectors;
  cfg.advance_max_valid_fraction = advance_fraction;
  cfg.gc_free_target = gc_free_target;
  ftl::SubFtl ftl(dev, cfg);
  sim::Driver driver(ftl, dev, base.queue_depth);

  // Precondition + sysbench-like stream at ~45% region occupancy.
  auto params = workload::benchmark_profile(workload::Benchmark::kSysbench,
                                            0, 0, 4, 2017);
  params.footprint_sectors =
      static_cast<std::uint64_t>(0.78 * ftl.logical_sectors()) / 4 * 4;
  params.small_footprint_fraction = 0.036;  // ~45% of region valid capacity
  params.request_count = 260000;
  for (std::uint64_t s = 0; s < params.footprint_sectors; s += 32)
    driver.submit({workload::Request::Type::kWrite, s,
                   static_cast<std::uint32_t>(std::min<std::uint64_t>(
                       32, params.footprint_sectors - s)),
                   false, 0.0},
                  false);
  driver.flush();

  workload::SyntheticWorkload stream(params);
  driver.run(stream, false, 200000);  // warmup
  const auto before = ftl.stats();
  const auto erases_before = dev.counters().erases;
  const SimTime t0 = driver.now();
  const auto metrics = driver.run(stream, false);
  const auto window = ftl::stats_delta(metrics.ftl_stats, before);

  Outcome outcome;
  const double host_bytes = static_cast<double>(
      (window.host_write_sectors + window.host_read_sectors) * 4096);
  outcome.mbps = host_bytes / (1024.0 * 1024.0) /
                 sim_time::to_seconds(metrics.end_us - t0);
  outcome.forwards = window.forward_migrations;
  outcome.erases = dev.counters().erases - erases_before;
  outcome.evictions = window.cold_evictions + window.retention_evictions;
  return outcome;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation -- ESP writing-policy knobs (advance threshold, GC batch)");

  std::printf("\n(a) advance_max_valid_fraction (gc_free_target = 2)\n\n");
  util::TablePrinter ta({"threshold", "MB/s", "forwards", "erases",
                         "evictions"});
  for (const double fraction : {0.0, 0.125, 0.25, 0.5, 1.0}) {
    const auto o = run_one(fraction, 2);
    ta.add_row({util::TablePrinter::num(fraction, 3),
                util::TablePrinter::num(o.mbps, 1),
                std::to_string(o.forwards), std::to_string(o.erases),
                std::to_string(o.evictions)});
  }
  ta.print(std::cout);

  std::printf("\n(b) gc_free_target (threshold = 0.25)\n\n");
  util::TablePrinter tb({"free target", "MB/s", "forwards", "erases",
                         "evictions"});
  for (const std::uint32_t target : {1u, 2u, 4u, 8u}) {
    const auto o = run_one(0.25, target);
    tb.add_row({std::to_string(target), util::TablePrinter::num(o.mbps, 1),
                std::to_string(o.forwards), std::to_string(o.erases),
                std::to_string(o.evictions)});
  }
  tb.print(std::cout);

  std::printf(
      "\nExpected shape: threshold 0 burns erases and evicts constantly (no\n"
      "level reuse), 1.0 (the paper's unconditional advance-first policy)\n"
      "forwards heavily at this occupancy; intermediate values balance\n"
      "both. gc_free_target only matters when per-chip reclamation cannot\n"
      "keep write points alive; when chip-preferred GC suffices (as here)\n"
      "the curves coincide.\n");
  return 0;
}
