// Ablation: subpage-region size (the paper fixes it at 20% of flash).
//
// Sweeps the region fraction on a sync-small-heavy (Varmail-like) workload
// and reports throughput, GC, erases and the subFTL mapping footprint.
// Expected trade-off: a tiny region thrashes (evictions + forwarding), an
// oversized one taxes the full-page region's over-provisioning and DRAM.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "util/table_printer.h"

int main() {
  using namespace esp;
  bench::print_header(
      "Ablation -- subpage-region fraction (paper default: 0.20)");

  util::TablePrinter t({"region", "MB/s", "req WAF", "GC", "erases",
                        "forwards", "evictions", "mapping KiB"});
  for (const double fraction : {0.05, 0.10, 0.20, 0.30, 0.40}) {
    core::ExperimentSpec spec;
    spec.ssd = bench::scaled_config(core::FtlKind::kSub);
    spec.ssd.subpage_region_fraction = fraction;
    // Feasibility: logical + region quota must fit (see SubFtl); trim the
    // logical space for the largest regions.
    if (fraction > 0.2)
      spec.ssd.logical_fraction = 1.0 - fraction - 0.02;
    auto params = workload::benchmark_profile(
        workload::Benchmark::kVarmail, 0, 0,
        spec.ssd.geometry.subpages_per_page, 2017);
    spec.warmup_requests = 150000;
    params.request_count = spec.warmup_requests + 80000;
    spec.workload = params;
    const auto result = core::run_experiment(spec);
    const auto& stats = result.raw.ftl_stats;
    t.add_row({util::TablePrinter::pct(fraction, 0),
               util::TablePrinter::num(result.host_mb_per_sec, 1),
               util::TablePrinter::num(result.small_request_waf, 3),
               std::to_string(result.gc_invocations),
               std::to_string(result.erases),
               std::to_string(stats.forward_migrations),
               std::to_string(stats.cold_evictions +
                              stats.retention_evictions),
               util::TablePrinter::num(
                   static_cast<double>(result.mapping_bytes) / 1024.0, 0)});
  }
  t.print(std::cout);
  std::printf(
      "\nDesign insight (DESIGN.md): 20%% gives ESP headroom (low region\n"
      "occupancy -> cheap forwarding) without starving the full-page\n"
      "region's over-provisioning or growing the hash table.\n");
  return 0;
}
