// Extension bench: device-lifetime projection (TBW).
//
// The paper reports lifetime via GC/erase counts; SSD datasheets quote
// Terabytes-Written. Both views are the same measurement: with E erases
// consumed for H host bytes at steady state, a device with B blocks rated
// R P/E cycles can absorb
//
//   TBW = H * (B * R) / E
//
// before the rated endurance is spent (wear leveling keeps per-block wear
// near the mean, which the wear ablation verifies). This bench projects
// TBW per FTL per benchmark on the scaled device; the RATIO between FTLs
// is the scale-free lifetime claim of the paper's Fig. 8(b).
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table_printer.h"

namespace {

using namespace esp;

struct Outcome {
  double host_gb = 0.0;
  std::uint64_t erases = 0;
};

Outcome run_one(workload::Benchmark bench, core::FtlKind kind) {
  core::ExperimentSpec spec;
  spec.ssd = bench::scaled_config(kind);
  auto params = workload::benchmark_profile(
      bench, 0, 0, spec.ssd.geometry.subpages_per_page, 2017);
  const double write_fraction = 1.0 - params.read_fraction;
  const double avg_large =
      0.5 * (params.large_pages_min + params.large_pages_max) *
      params.sectors_per_page;
  const double avg_small =
      0.5 * (params.small_sectors_min + params.small_sectors_max);
  const double avg_write =
      params.r_small * avg_small + (1.0 - params.r_small) * avg_large;
  const auto reqs = [&](double budget) {
    return static_cast<std::uint64_t>(budget / (write_fraction * avg_write));
  };
  spec.warmup_requests = reqs(120000);
  params.request_count = spec.warmup_requests + reqs(60000);
  spec.workload = params;
  const auto result = core::run_experiment(spec);
  Outcome outcome;
  outcome.host_gb =
      static_cast<double>(result.raw.ftl_stats.host_write_sectors) * 4096.0 /
      (1024.0 * 1024.0 * 1024.0);
  outcome.erases = result.erases;
  return outcome;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension -- lifetime projection (TBW at 1K rated P/E)");

  const auto& geo = bench::scaled_geometry();
  const double block_budget = static_cast<double>(geo.total_blocks()) * 1000;

  util::TablePrinter t({"benchmark", "cgm TBW", "fgm TBW", "sub TBW",
                        "sub/fgm lifetime"});
  for (const auto bench :
       {workload::Benchmark::kSysbench, workload::Benchmark::kVarmail,
        workload::Benchmark::kPostmark, workload::Benchmark::kYcsb,
        workload::Benchmark::kTpcc}) {
    std::map<core::FtlKind, double> tbw;
    for (const auto kind :
         {core::FtlKind::kCgm, core::FtlKind::kFgm, core::FtlKind::kSub}) {
      const auto o = run_one(bench, kind);
      tbw[kind] = o.erases
                      ? o.host_gb * block_budget /
                            static_cast<double>(o.erases) / 1024.0
                      : 0.0;  // TB
    }
    t.add_row({workload::benchmark_name(bench),
               util::TablePrinter::num(tbw[core::FtlKind::kCgm], 1) + " TB",
               util::TablePrinter::num(tbw[core::FtlKind::kFgm], 1) + " TB",
               util::TablePrinter::num(tbw[core::FtlKind::kSub], 1) + " TB",
               util::TablePrinter::num(
                   tbw[core::FtlKind::kSub] / tbw[core::FtlKind::kFgm], 2) +
                   "x"});
  }
  t.print(std::cout);
  std::printf(
      "\n(1-GiB device, 1K-cycle TLC. TBW scales linearly with capacity;\n"
      "the sub/fgm ratio is the capacity-independent lifetime improvement,\n"
      "the paper's 'up to 177%% fewer GC invocations' expressed as life.)\n");
  return 0;
}
