// Extension bench: measured device-lifetime projection (wear-out curves).
//
// The old version of this bench projected TBW with a closed form from one
// steady-state window (TBW = H * B * R / E). This version MEASURES the
// wear-out: core/lifetime.h drives each FTL from preconditioned steady
// state to rated endurance, alternating full-fidelity measurement windows
// with epoch-compressed aging (per-block synthetic P/E accrual scaled from
// the rates the preceding window observed + an analytic retention-clock
// advance). The output is a trajectory per FTL -- WAF, latency, IOPS,
// retention expiry vs P/E consumed -- instead of a single extrapolated
// number, at production geometry (65,536 blocks) in minutes of wall clock.
//
// Three committed measurements (BENCH_lifetime.json):
//   * curves:     fast-forward wear-out per FTL at --geometry, with the
//                 represented host-TB-written to rated endurance;
//   * speedup:    wall seconds per mean-P/E-cycle, fast-forward vs a
//                 full-fidelity reference resumed from the SAME snapshot
//                 anchor -- the acceptance gate is >= 25x;
//   * validation: at paper geometry, fast-forward window metrics (WAF,
//                 p99, wear rate) vs a dense full-fidelity reference over
//                 the same P/E span (docs/LIFETIME.md, methodology).
//
// End-of-life measurement legs: each curve checkpoints its aged device;
// a ParallelRunner then fans independent freshly-seeded measurement legs
// out of those anchors (ExperimentSpec::snapshot_in) -- the distribution
// across legs is the end-of-life performance claim.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/lifetime.h"
#include "core/parallel_runner.h"
#include "telemetry/json.h"
#include "util/table_printer.h"

namespace {

using namespace esp;

constexpr std::uint64_t kBaseSeed = 2017;

/// Mixed write-heavy profile (same shape as macro_replay's): small hot
/// sync updates, colder multi-page writes, reads and occasional trims, so
/// GC, eviction and wear leveling all operate while the device ages.
/// Closed-loop (no think time): wear-out wall clock is simulator-bound.
workload::SyntheticParams mixed_workload(std::uint32_t sectors_per_page) {
  workload::SyntheticParams p;
  p.sectors_per_page = sectors_per_page;
  p.r_small = 0.6;
  p.r_synch = 0.9;
  p.read_fraction = 0.35;
  p.trim_fraction = 0.02;
  p.small_sectors_min = 1;
  p.small_sectors_max = 3;
  p.large_pages_min = 1;
  p.large_pages_max = 4;
  p.large_align_prob = 0.85;
  p.small_footprint_fraction = 0.25;
  p.seed = kBaseSeed;
  return p;
}

core::LifetimeSpec base_spec(const nand::Geometry& geo, core::FtlKind kind,
                             std::uint64_t window_requests,
                             std::uint64_t warmup_requests) {
  core::LifetimeSpec spec;
  spec.ssd.geometry = geo;
  spec.ssd.ftl = kind;
  spec.ssd.logical_fraction = 0.79;
  spec.ssd.buffer_sectors = 1024;
  spec.ssd.gc_reserve_blocks = 16;
  spec.ssd.queue_depth = 128;
  // Well-filled logical space: wear-out measures a device in service, not
  // a fresh one, and windows must run at GC steady state (the epoch model
  // scales each window's erase rates -- a window with no erases cannot age
  // the device). 0.85 keeps GC active without the overfill thrash regime
  // where every victim is near-full and stalls saturate the histograms.
  spec.precondition_fraction = 0.85;
  spec.workload = mixed_workload(geo.subpages_per_page);
  spec.window_requests = window_requests;
  if (warmup_requests > 0) {
    spec.warmup_requests = warmup_requests;
  } else {
    // Auto warmup: enough random-write traffic to consume the post-fill
    // free space (with 25% slack), so GC is in steady state at window 0.
    const workload::SyntheticParams& p = spec.workload;
    const double fill_bytes = spec.precondition_fraction *
                              static_cast<double>(spec.ssd.logical_sectors()) *
                              geo.subpage_bytes();
    const double free_bytes =
        static_cast<double>(geo.capacity_bytes()) - fill_bytes;
    const double write_fraction =
        1.0 - p.read_fraction - p.trim_fraction;
    const double avg_write_sectors =
        p.r_small * 0.5 * (p.small_sectors_min + p.small_sectors_max) +
        (1.0 - p.r_small) * 0.5 * (p.large_pages_min + p.large_pages_max) *
            geo.subpages_per_page;
    spec.warmup_requests = static_cast<std::uint64_t>(
        1.25 * free_bytes / geo.subpage_bytes() /
        (write_fraction * avg_write_sectors));
  }
  return spec;
}

/// Wall seconds per mean-P/E-cycle advanced -- the rate both modes are
/// compared on (preconditioning/warmup excluded on both sides).
double seconds_per_pe(const core::LifetimeResult& r) {
  const double dpe = r.final_mean_pe - r.start_mean_pe;
  return dpe > 0.0 ? r.wall_seconds / dpe : 0.0;
}

/// Host-byte-weighted mean window WAF and request-weighted mean p99 of a
/// trajectory: the scalars the validation compares across modes.
struct TrajectorySummary {
  double waf = 0.0;
  double p99_us = 0.0;
  double cycles_per_gb = 0.0;  ///< wear rate: P/E block-cycles per host GB
};

TrajectorySummary summarize(const core::LifetimeResult& r) {
  TrajectorySummary s;
  double waf_wsum = 0.0, p99_sum = 0.0, bytes = 0.0;
  std::uint64_t cycles = 0;
  for (const core::LifetimeWindow& w : r.windows) {
    const auto b = static_cast<double>(w.host_write_bytes);
    waf_wsum += w.waf * b;
    p99_sum += w.latency_p99_us;
    bytes += b;
    cycles += w.erases;
  }
  if (bytes > 0.0) s.waf = waf_wsum / bytes;
  if (!r.windows.empty())
    s.p99_us = p99_sum / static_cast<double>(r.windows.size());
  if (bytes > 0.0)
    s.cycles_per_gb = static_cast<double>(cycles) / (bytes / 1e9);
  return s;
}

double rel_dev(double a, double ref) {
  return ref != 0.0 ? std::fabs(a - ref) / std::fabs(ref) : 0.0;
}

void write_windows_json(telemetry::JsonWriter& w,
                        const core::LifetimeResult& r) {
  w.key("windows");
  w.begin_array();
  for (const core::LifetimeWindow& win : r.windows) {
    w.begin_object();
    w.kv("index", static_cast<std::uint64_t>(win.index));
    w.kv("mean_pe_start", win.mean_pe_start);
    w.kv("max_pe_start", win.max_pe_start);
    w.kv("waf", win.waf);
    w.kv("iops", win.iops);
    w.kv("host_mb_per_sec", win.host_mb_per_sec);
    w.kv("latency_p50_us", win.latency_p50_us);
    w.kv("latency_p99_us", win.latency_p99_us);
    w.kv("response_p99_us", win.response_p99_us);
    w.kv("erases", win.erases);
    w.kv("gc_invocations", win.gc_invocations);
    w.kv("retention_evictions", win.retention_evictions);
    w.kv("host_write_bytes", win.host_write_bytes);
    w.kv("synthetic_cycles", win.synthetic_cycles);
    w.kv("epoch_scale", win.epoch_scale);
    w.kv("sim_hours_advanced", win.sim_hours_advanced);
    w.end_object();
  }
  w.end_array();
}

void write_result_json(telemetry::JsonWriter& w,
                       const core::LifetimeResult& r, bool with_windows) {
  w.kv("start_mean_pe", r.start_mean_pe);
  w.kv("final_mean_pe", r.final_mean_pe);
  w.kv("final_max_pe", r.final_max_pe);
  w.kv("target_mean_pe", r.target_mean_pe);
  w.kv("reached_target", r.reached_target);
  w.kv("window_count", static_cast<std::uint64_t>(r.windows.size()));
  w.kv("wall_seconds", r.wall_seconds);
  w.kv("host_tb_written", r.host_tb_written);
  w.kv("real_erases", r.real_erases);
  w.kv("synthetic_cycles", r.synthetic_cycles);
  w.kv("verify_failures", r.verify_failures);
  w.kv("io_errors", r.io_errors);
  if (with_windows) {
    w.newline();
    write_windows_json(w, r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::string geometry_name = "prod";
  double target_pe = 0.0;     // 0 = rated endurance
  double pe_step = 0.0;       // 0 = (target - start) / 40
  std::uint64_t window_requests = 20000;
  std::uint64_t warmup_requests = 0;  // 0 = auto (free-space budget)
  std::uint32_t reference_windows = 3;  // 0 skips the speedup baseline
  double validate_pe = 8.0;             // paper-geometry span; 0 skips
  std::uint32_t legs = 3;               // end-of-life legs per FTL; 0 skips
  bool quick = false;
  std::string snapshot_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--geometry" && i + 1 < argc) {
      geometry_name = argv[++i];
    } else if (arg == "--target-pe" && i + 1 < argc) {
      target_pe = std::atof(argv[++i]);
    } else if (arg == "--pe-step" && i + 1 < argc) {
      pe_step = std::atof(argv[++i]);
    } else if (arg == "--window" && i + 1 < argc) {
      window_requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--warmup" && i + 1 < argc) {
      warmup_requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--reference-windows" && i + 1 < argc) {
      reference_windows =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--validate-pe" && i + 1 < argc) {
      validate_pe = std::atof(argv[++i]);
    } else if (arg == "--legs" && i + 1 < argc) {
      legs = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--snapshot-dir" && i + 1 < argc) {
      snapshot_dir = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--json PATH] [--geometry paper|prod] [--quick]\n"
          "          [--target-pe N] [--pe-step N] [--window N] [--warmup N]\n"
          "          [--reference-windows N] [--validate-pe SPAN] [--legs N]\n"
          "          [--snapshot-dir DIR]\n"
          "Measured wear-out to --target-pe (0 = rated endurance) per FTL\n"
          "with epoch-compressed aging; full-fidelity speedup baseline over\n"
          "--reference-windows windows from the same snapshot anchor;\n"
          "fast-forward validation against a dense full-fidelity reference\n"
          "over --validate-pe cycles at paper geometry; --legs end-of-life\n"
          "measurement legs fanned from each aged anchor (0 skips any "
          "stage).\n",
          argv[0]);
      return 2;
    }
  }

  nand::Geometry geo = nand::geometry_profile(geometry_name);
  if (quick) {
    // CI scale: quarter block count, smaller budgets, shorter wear-out.
    geo.blocks_per_chip /= 4;
    window_requests = std::min<std::uint64_t>(window_requests, 6000);
    if (target_pe == 0.0) target_pe = 120.0;
    validate_pe = std::min(validate_pe, 3.0);
  }

  bench::print_header("Extension -- measured lifetime (epoch fast-forward)",
                      geo);
  std::printf("%s geometry: %s\n", geometry_name.c_str(),
              geo.describe().c_str());

  const auto kinds = {core::FtlKind::kCgm, core::FtlKind::kFgm,
                     core::FtlKind::kSub, core::FtlKind::kSectorLog};

  struct FtlOut {
    core::LifetimeResult curve;
    core::LifetimeResult reference;  // short full-fidelity rate baseline
    double speedup = 0.0;
    std::string anchor;  // end-of-life snapshot path
  };
  std::map<std::string, FtlOut> outs;

  // --- Wear-out curves + speedup baselines ------------------------------
  for (const auto kind : kinds) {
    const std::string name = core::ftl_kind_name(kind);
    core::LifetimeSpec prep =
        base_spec(geo, kind, window_requests, warmup_requests);
    const std::string base_anchor =
        snapshot_dir + "/lifetime_" + geometry_name + "_" + name + "_base.snap";

    // One full-fidelity window from fresh precondition + warmup, saved as
    // the shared anchor both modes resume -- they are compared from the
    // IDENTICAL device state, and neither pays preconditioning twice.
    prep.fast_forward = false;
    prep.max_windows = 1;
    prep.snapshot_out = base_anchor;
    const core::LifetimeResult prep_out = core::run_lifetime(prep);

    FtlOut out;
    core::LifetimeSpec ff =
        base_spec(geo, kind, window_requests, warmup_requests);
    ff.snapshot_in = base_anchor;
    ff.target_mean_pe =
        target_pe > 0.0
            ? target_pe
            : static_cast<double>(ff.ssd.retention.rated_pe_cycles);
    ff.pe_step = pe_step > 0.0
                     ? pe_step
                     : std::max(1.0, (ff.target_mean_pe -
                                      prep_out.final_mean_pe) /
                                         40.0);
    out.anchor = snapshot_dir + "/lifetime_" + geometry_name + "_" + name +
                 "_eol.snap";
    ff.snapshot_out = out.anchor;
    out.curve = core::run_lifetime(ff);

    if (reference_windows > 0) {
      core::LifetimeSpec ref =
          base_spec(geo, kind, window_requests, warmup_requests);
      ref.snapshot_in = base_anchor;
      ref.fast_forward = false;
      ref.max_windows = reference_windows;
      ref.target_mean_pe = ff.target_mean_pe;
      out.reference = core::run_lifetime(ref);
      const double ref_rate = seconds_per_pe(out.reference);
      const double ff_rate = seconds_per_pe(out.curve);
      out.speedup = ff_rate > 0.0 ? ref_rate / ff_rate : 0.0;
    }
    std::printf(
        "%-13s windows %3zu  P/E %.1f -> %.1f  TBW %.2f TB  wall %.1fs"
        "  speedup %.0fx\n",
        name.c_str(), out.curve.windows.size(), out.curve.start_mean_pe,
        out.curve.final_mean_pe, out.curve.host_tb_written,
        out.curve.wall_seconds, out.speedup);
    if (out.curve.verify_failures || out.curve.io_errors) {
      std::fprintf(stderr, "FATAL: %s wear-out saw %llu verify failures, "
                   "%llu io errors\n", name.c_str(),
                   static_cast<unsigned long long>(out.curve.verify_failures),
                   static_cast<unsigned long long>(out.curve.io_errors));
      return 1;
    }
    outs[name] = std::move(out);
  }

  std::printf("\nwear-out trajectories (%s geometry)\n\n",
              geometry_name.c_str());
  util::TablePrinter t({"FTL", "windows", "final P/E", "TBW", "WAF",
                        "p99 us", "wall s", "speedup"});
  double min_speedup = 0.0;
  bool first = true;
  for (const auto kind : kinds) {
    const std::string name = core::ftl_kind_name(kind);
    const FtlOut& o = outs[name];
    const TrajectorySummary s = summarize(o.curve);
    if (first || o.speedup < min_speedup) min_speedup = o.speedup;
    first = false;
    t.add_row({name, std::to_string(o.curve.windows.size()),
               util::TablePrinter::num(o.curve.final_mean_pe, 1),
               util::TablePrinter::num(o.curve.host_tb_written, 2) + " TB",
               util::TablePrinter::num(s.waf, 2),
               util::TablePrinter::num(s.p99_us, 0),
               util::TablePrinter::num(o.curve.wall_seconds, 1),
               util::TablePrinter::num(o.speedup, 0) + "x"});
  }
  t.print(std::cout);
  if (reference_windows > 0)
    std::printf("min fast-forward speedup vs full fidelity: %.0fx "
                "(gate >= 25x%s)\n", min_speedup,
                quick ? ", advisory under --quick" : "");

  // --- Fast-forward validation at paper geometry ------------------------
  // Same span of P/E consumed, two ways: epoch-compressed (sparse windows)
  // vs full fidelity (every cycle simulated). The trajectory summaries
  // must agree -- the committed deviations are the model's error bars.
  struct Validation {
    TrajectorySummary ff, ref;
    double waf_dev = 0.0, p99_dev = 0.0, wear_rate_dev = 0.0;
  };
  std::map<std::string, Validation> validations;
  if (validate_pe > 0.0) {
    nand::Geometry vgeo = nand::geometry_profile("paper");
    if (quick) vgeo.blocks_per_chip /= 4;
    std::printf("\nvalidation -- fast-forward vs full fidelity over %.1f "
                "P/E cycles (paper geometry)\n\n", validate_pe);
    util::TablePrinter vt({"FTL", "WAF ff", "WAF ref", "dev", "p99 ff",
                           "p99 ref", "dev", "wear-rate dev"});
    for (const auto kind : kinds) {
      const std::string name = core::ftl_kind_name(kind);
      core::LifetimeSpec prep =
          base_spec(vgeo, kind, window_requests, warmup_requests);
      const std::string anchor =
          snapshot_dir + "/lifetime_validate_" + name + "_base.snap";
      prep.fast_forward = false;
      prep.max_windows = 1;
      prep.snapshot_out = anchor;
      const core::LifetimeResult prep_out = core::run_lifetime(prep);
      const double vtarget = prep_out.final_mean_pe + validate_pe;

      core::LifetimeSpec ff =
          base_spec(vgeo, kind, window_requests, warmup_requests);
      ff.snapshot_in = anchor;
      ff.target_mean_pe = vtarget;
      ff.pe_step = validate_pe / 4.0;  // 4 epochs across the span

      core::LifetimeSpec ref =
          base_spec(vgeo, kind, window_requests, warmup_requests);
      ref.snapshot_in = anchor;
      ref.fast_forward = false;
      ref.target_mean_pe = vtarget;

      Validation v;
      v.ff = summarize(core::run_lifetime(ff));
      v.ref = summarize(core::run_lifetime(ref));
      v.waf_dev = rel_dev(v.ff.waf, v.ref.waf);
      v.p99_dev = rel_dev(v.ff.p99_us, v.ref.p99_us);
      v.wear_rate_dev = rel_dev(v.ff.cycles_per_gb, v.ref.cycles_per_gb);
      vt.add_row({name, util::TablePrinter::num(v.ff.waf, 3),
                  util::TablePrinter::num(v.ref.waf, 3),
                  util::TablePrinter::pct(v.waf_dev, 1),
                  util::TablePrinter::num(v.ff.p99_us, 0),
                  util::TablePrinter::num(v.ref.p99_us, 0),
                  util::TablePrinter::pct(v.p99_dev, 1),
                  util::TablePrinter::pct(v.wear_rate_dev, 1)});
      validations[name] = v;
    }
    vt.print(std::cout);
  }

  // --- End-of-life measurement legs from the aged anchors ---------------
  // The ISSUE's fan-out: one aged snapshot per FTL, N independent
  // freshly-seeded legs restored from it by the ParallelRunner (the
  // fresh-seed restore path of ExperimentSpec::snapshot_in).
  std::map<std::string, std::vector<core::RunResult>> leg_results;
  if (legs > 0) {
    std::vector<core::ExperimentCell> cells;
    for (const auto kind : kinds) {
      const std::string name = core::ftl_kind_name(kind);
      for (std::uint32_t l = 0; l < legs; ++l) {
        core::ExperimentCell cell;
        cell.key = "lifetime/leg/" + name + "/" + std::to_string(l);
        const core::LifetimeSpec base =
            base_spec(geo, kind, window_requests, warmup_requests);
        cell.spec.ssd = base.ssd;
        cell.spec.workload = base.workload;
        cell.spec.snapshot_in = outs[name].anchor;
        cell.spec.warmup_requests = window_requests / 4;
        cell.spec.workload.request_count =
            cell.spec.warmup_requests + window_requests;
        cells.push_back(std::move(cell));
      }
    }
    core::ParallelRunnerConfig runner_cfg;
    runner_cfg.base_seed = kBaseSeed;  // legs seeded from their cell keys
    core::ParallelRunner runner(runner_cfg);
    const auto results = runner.run(cells);
    std::printf("\nend-of-life legs (%u per FTL, fresh seeds from the aged "
                "anchor)\n\n", legs);
    util::TablePrinter lt({"FTL", "leg", "WAF", "IOPS", "p99 us"});
    std::size_t i = 0;
    for (const auto kind : kinds) {
      const std::string name = core::ftl_kind_name(kind);
      for (std::uint32_t l = 0; l < legs; ++l, ++i) {
        if (!results[i].ok) {
          std::fprintf(stderr, "FATAL: leg %s failed: %s\n",
                       results[i].key.c_str(), results[i].error.c_str());
          return 1;
        }
        const core::RunResult& r = results[i].result;
        leg_results[name].push_back(r);
        lt.add_row({name, std::to_string(l),
                    util::TablePrinter::num(r.overall_waf, 2),
                    util::TablePrinter::num(r.iops, 0),
                    util::TablePrinter::num(r.raw.latency_p99_us, 0)});
      }
    }
    lt.print(std::cout);
  }

  // --- JSON artifact ----------------------------------------------------
  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.kv("figure", "lifetime_fastforward");
    w.newline();
    w.key("run");
    w.begin_object();
    w.kv("geometry", geometry_name);
    w.kv("describe", geo.describe());
    w.kv("total_blocks", geo.total_blocks());
    w.kv("base_seed", kBaseSeed);
    w.kv("quick", quick);
    w.kv("window_requests", window_requests);
    w.kv("warmup_requests", warmup_requests);
    w.kv("reference_windows", static_cast<std::uint64_t>(reference_windows));
    w.kv("validate_pe", validate_pe);
    w.kv("legs", static_cast<std::uint64_t>(legs));
    w.kv("host_cores",
         static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    w.end_object();
    w.newline();
    w.key("curves");
    w.begin_object();
    for (const auto kind : kinds) {
      const std::string name = core::ftl_kind_name(kind);
      const FtlOut& o = outs[name];
      const TrajectorySummary s = summarize(o.curve);
      w.newline();
      w.key(name);
      w.begin_object();
      write_result_json(w, o.curve, /*with_windows=*/true);
      w.kv("mean_window_waf", s.waf);
      w.kv("mean_window_p99_us", s.p99_us);
      if (reference_windows > 0) {
        w.newline();
        w.key("reference");
        w.begin_object();
        write_result_json(w, o.reference, /*with_windows=*/false);
        w.kv("seconds_per_pe", seconds_per_pe(o.reference));
        w.end_object();
        w.kv("seconds_per_pe", seconds_per_pe(o.curve));
        w.kv("speedup", o.speedup);
        // What the reference would have cost run to the same target.
        w.kv("projected_full_fidelity_hours",
             seconds_per_pe(o.reference) *
                 (o.curve.final_mean_pe - o.curve.start_mean_pe) / 3600.0);
      }
      w.end_object();
    }
    w.end_object();
    if (!validations.empty()) {
      w.newline();
      w.key("validation");
      w.begin_object();
      for (const auto& [name, v] : validations) {
        w.key(name);
        w.begin_object();
        w.kv("waf_ff", v.ff.waf);
        w.kv("waf_ref", v.ref.waf);
        w.kv("waf_rel_dev", v.waf_dev);
        w.kv("p99_ff_us", v.ff.p99_us);
        w.kv("p99_ref_us", v.ref.p99_us);
        w.kv("p99_rel_dev", v.p99_dev);
        w.kv("cycles_per_gb_ff", v.ff.cycles_per_gb);
        w.kv("cycles_per_gb_ref", v.ref.cycles_per_gb);
        w.kv("wear_rate_rel_dev", v.wear_rate_dev);
        w.end_object();
      }
      w.end_object();
    }
    if (!leg_results.empty()) {
      w.newline();
      w.key("end_of_life_legs");
      w.begin_object();
      for (const auto& [name, rs] : leg_results) {
        w.key(name);
        w.begin_array();
        for (const core::RunResult& r : rs) {
          w.begin_object();
          w.kv("waf", r.overall_waf);
          w.kv("iops", r.iops);
          w.kv("latency_p99_us", r.raw.latency_p99_us);
          w.kv("erases", r.erases);
          w.kv("verify_failures", r.verify_failures);
          w.end_object();
        }
        w.end_array();
      }
      w.end_object();
    }
    w.newline();
    w.key("summary");
    w.begin_object();
    if (reference_windows > 0) {
      w.kv("min_speedup", min_speedup);
      w.kv("speedup_gate", 25.0);
      w.kv("speedup_gate_enforced", !quick);
      w.kv("speedup_pass", min_speedup >= 25.0);
    }
    w.end_object();
    w.end_object();
    os << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  // The 25x gate is calibrated for full-scale wear-out, where epochs absorb
  // hundreds of represented window repetitions. --quick runs a shallow
  // trajectory (a few dozen P/E) where the fixed window cost dominates, so
  // the speedup there is reported but not enforced.
  if (!quick && reference_windows > 0 && min_speedup < 25.0) {
    std::fprintf(stderr, "FATAL: fast-forward speedup %.1fx below 25x gate\n",
                 min_speedup);
    return 1;
  }
  return 0;
}
