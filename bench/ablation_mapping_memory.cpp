// Ablation: L2P mapping DRAM footprint (paper Sec. 1/4: subFTL
// "significantly reduced the L2P mapping memory requirement over the FGM
// scheme" by managing the two regions with different mapping methods).
//
// Reports modeled mapping bytes for the three FTLs at the bench geometry
// and extrapolates to the paper's 16-GB device and a 512-GB product, after
// populating subFTL's hash with a sync-small-heavy workload (the hash is
// bounded by one valid subpage per region page).
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "util/table_printer.h"

int main() {
  using namespace esp;
  bench::print_header("Ablation -- L2P mapping memory (CGM vs FGM vs subFTL)");

  util::TablePrinter t({"FTL", "mapping bytes @1GiB", "per logical GB",
                        "extrapolated @16GB", "@512GB"});
  double per_gb[3] = {};
  int idx = 0;
  for (const auto kind :
       {core::FtlKind::kCgm, core::FtlKind::kFgm, core::FtlKind::kSub}) {
    core::ExperimentSpec spec;
    spec.ssd = bench::scaled_config(kind);
    auto params = workload::benchmark_profile(
        workload::Benchmark::kSysbench, 0, 0,
        spec.ssd.geometry.subpages_per_page, 2017);
    spec.warmup_requests = 0;
    params.request_count = 120000;  // populate the hash to steady state
    spec.workload = params;
    spec.verify = false;
    const auto result = core::run_experiment(spec);

    const double logical_gb =
        static_cast<double>(spec.ssd.logical_sectors()) * 4096.0 /
        (1024.0 * 1024.0 * 1024.0);
    per_gb[idx] = static_cast<double>(result.mapping_bytes) / logical_gb;
    auto mb_at = [&](double gb) {
      return util::TablePrinter::num(per_gb[idx] * gb / (1024.0 * 1024.0),
                                     1) + " MiB";
    };
    t.add_row({result.ftl_name,
               std::to_string(result.mapping_bytes),
               util::TablePrinter::num(per_gb[idx] / 1024.0, 0) + " KiB",
               mb_at(16.0), mb_at(512.0)});
    ++idx;
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: FGM needs Nsub (= 4) x the CGM table; subFTL sits\n"
      "close to CGM because only the 20%% subpage region is fine-mapped and\n"
      "its hash is bounded by one valid subpage per physical page.\n"
      "ordering check (cgm < sub < fgm): %s\n",
      (per_gb[0] < per_gb[2] && per_gb[2] < per_gb[1]) ? "PASS" : "FAIL");
  return (per_gb[0] < per_gb[2] && per_gb[2] < per_gb[1]) ? 0 : 1;
}
