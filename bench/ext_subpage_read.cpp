// Extension bench: subpage READ operations (paper Sec. 7, future work).
//
// "If subpage read operations can be made faster than full-page reads, we
// believe that they can be useful for read latency-sensitive
// applications." The device model supports a reduced subpage-read array
// time (TimingSpec::read_sub_us); this bench quantifies the end-to-end
// benefit on a read-heavy small-I/O workload for subFTL (which reads 4-KB
// sectors from the subpage region) at several speedup factors.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

int main() {
  using namespace esp;
  bench::print_header(
      "Extension -- subpage reads (paper Sec. 7 future work)");

  util::TablePrinter t({"subpage tR", "MB/s", "speedup vs baseline"});
  double baseline = 0.0;
  for (const double tr_us : {90.0, 65.0, 45.0, 25.0}) {
    core::ExperimentSpec spec;
    spec.ssd = bench::scaled_config(core::FtlKind::kSub);
    spec.ssd.timing.read_sub_us = tr_us;
    auto params = workload::benchmark_profile(
        workload::Benchmark::kSysbench, 0, 0,
        spec.ssd.geometry.subpages_per_page, 2017);
    params.read_fraction = 0.7;  // read-latency-sensitive mix
    params.reads_follow_small = true;  // point reads of the hot small set
    spec.warmup_requests = 60000;
    params.request_count = spec.warmup_requests + 60000;
    spec.workload = params;
    const auto result = core::run_experiment(spec);
    if (baseline == 0.0) baseline = result.host_mb_per_sec;
    t.add_row({util::TablePrinter::num(tr_us, 0) + " us",
               util::TablePrinter::num(result.host_mb_per_sec, 1),
               util::TablePrinter::num(result.host_mb_per_sec / baseline, 2) +
                   "x"});
  }
  t.print(std::cout);
  std::printf(
      "\nBaseline (90 us) equals the full-page tR -- the paper's current\n"
      "hardware. Faster subpage sensing shortens every subpage-region read\n"
      "and the forwarding reads of the ESP writing policy.\n");
  return 0;
}
