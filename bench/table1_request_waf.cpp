// Reproduces paper Table 1: detailed analysis of subFTL.
//   row 1 -- % of small writes per benchmark
//   row 2 -- average request WAF of small writes in subFTL
//
// The paper's claim: the request WAF stays within ~1.003-1.008 of the
// ideal 1.0 -- subFTL avoids essentially all internal fragmentation, with
// only the small extra I/O of in-region migrations and cold evictions.
//
// The five cells run on the parallel experiment runner (--jobs N); the
// JSON's "benchmarks"/"pass" payload is bit-identical for every job count,
// only the "run" section (wall times) varies.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/parallel_runner.h"
#include "telemetry/json.h"
#include "util/table_printer.h"

namespace {

using namespace esp;

constexpr std::uint64_t kBaseSeed = 2017;

struct Row {
  double small_pct = 0.0;
  double request_waf = 0.0;
  std::uint64_t verify_failures = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t journal_events = 0;
  std::uint64_t journal_truncated = 0;
};

core::ExperimentCell make_cell(workload::Benchmark bench,
                               const bench::GeometryOverrides& geo) {
  core::ExperimentCell cell;
  cell.key = "table1/" + workload::benchmark_name(bench);
  cell.spec.ssd = bench::scaled_config(core::FtlKind::kSub);
  cell.spec.ssd.geometry = geo.apply(cell.spec.ssd.geometry);
  // Seed derived from the cell's stable key (matches fig8's per-benchmark
  // stream seeding), never from grid order.
  auto params = workload::benchmark_profile(
      bench, 0, 0, cell.spec.ssd.geometry.subpages_per_page,
      core::stable_cell_seed(cell.key, kBaseSeed));
  const double write_fraction = 1.0 - params.read_fraction;
  const double avg_large =
      0.5 * (params.large_pages_min + params.large_pages_max) *
      params.sectors_per_page;
  const double avg_small =
      0.5 * (params.small_sectors_min + params.small_sectors_max);
  const double avg_write =
      params.r_small * avg_small + (1.0 - params.r_small) * avg_large;
  const auto reqs = [&](double budget) {
    return static_cast<std::uint64_t>(budget / (write_fraction * avg_write));
  };
  cell.spec.warmup_requests = reqs(120000);
  params.request_count = cell.spec.warmup_requests + reqs(60000);
  cell.spec.workload = params;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::string journal_out;
  std::string forensics_out;
  std::uint32_t forensics_top = 16;
  bool audit = false;
  unsigned jobs = 0;    // 0 = hardware concurrency
  unsigned shards = 1;  // >1 = shared-nothing intra-cell sharding
  bench::GeometryOverrides geo;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--journal-out" && i + 1 < argc) {
      journal_out = argv[++i];
    } else if (arg == "--forensics-out" && i + 1 < argc) {
      forensics_out = argv[++i];
    } else if (arg == "--forensics-top" && i + 1 < argc) {
      forensics_top =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--audit") {
      audit = true;
    } else if (geo.parse_flag(argc, argv, i)) {
      // consumed a geometry override
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--jobs N] [--shards N] "
                   "[--journal-out PATH] [--forensics-out PATH] "
                   "[--forensics-top N] [--audit]\n          %s\n",
                   argv[0], bench::GeometryOverrides::kUsage);
      return 2;
    }
  }

  bench::print_header("Table 1 -- Detailed analysis of subFTL",
                      geo.apply(bench::scaled_geometry()));

  std::vector<core::ExperimentCell> cells;
  for (const auto bench : workload::all_benchmarks()) {
    auto cell = make_cell(bench, geo);
    if (!journal_out.empty())
      cell.spec.journal_path = bench::cell_journal_path(journal_out,
                                                        cell.key);
    if (!forensics_out.empty())
      cell.spec.forensics_path = bench::cell_journal_path(forensics_out,
                                                          cell.key);
    cell.spec.forensics_top = forensics_top;
    cell.spec.audit = audit;
    // Grid cells are the parallelism unit; a sharded cell runs its shards
    // serially on its own worker (results identical either way).
    cell.spec.shards = shards;
    cell.spec.shard_jobs = 1;
    cells.push_back(std::move(cell));
  }

  core::ParallelRunnerConfig runner_cfg;
  runner_cfg.jobs = jobs;
  runner_cfg.base_seed = kBaseSeed;
  runner_cfg.derive_seeds = false;  // seeds fixed per cell above
  core::ParallelRunner runner(runner_cfg);
  const auto results = runner.run(cells);
  std::printf("ran %zu cells on %u worker(s) in %.1fs\n", cells.size(),
              runner.manifest().jobs_used, runner.manifest().wall_seconds);

  util::TablePrinter t({"", "Sysbench", "Varmail", "Postmark", "YCSB",
                        "TPC-C"});
  std::vector<std::string> pct_row = {"% of small write"};
  std::vector<std::string> waf_row = {"average request WAF"};
  std::vector<std::pair<workload::Benchmark, Row>> rows;
  bool all_near_one = true;
  {
    std::size_t i = 0;
    for (const auto bench : workload::all_benchmarks()) {
      const auto& cell = results[i++];
      if (!cell.ok) {
        std::fprintf(stderr, "FATAL: cell %s failed: %s\n", cell.key.c_str(),
                     cell.error.c_str());
        return 1;
      }
      const auto& stats = cell.result.raw.ftl_stats;
      Row row;
      row.small_pct = stats.host_write_requests
                          ? static_cast<double>(stats.small_write_requests) /
                                static_cast<double>(stats.host_write_requests)
                          : 0.0;
      row.request_waf = cell.result.small_request_waf;
      row.verify_failures = cell.result.verify_failures;
      row.trace_dropped = cell.result.trace_dropped;
      row.journal_events = cell.result.journal_events;
      row.journal_truncated = cell.result.journal_truncated;
      rows.emplace_back(bench, row);
      pct_row.push_back(util::TablePrinter::pct(row.small_pct, 1));
      waf_row.push_back(util::TablePrinter::num(row.request_waf, 3));
      all_near_one &= row.request_waf < 1.25;
      if (row.verify_failures)
        std::fprintf(stderr, "WARNING: verify failures on %s\n",
                     workload::benchmark_name(bench).c_str());
    }
  }
  t.add_row(pct_row);
  t.add_row(waf_row);
  t.print(std::cout);

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.kv("table", "table1_request_waf");
    w.newline();
    // Non-deterministic provenance; determinism checks diff "benchmarks"
    // and "pass" only.
    w.key("run");
    w.begin_object();
    w.kv("jobs", static_cast<std::uint64_t>(runner.manifest().jobs_used));
    w.kv("shards", static_cast<std::uint64_t>(shards));
    w.kv("base_seed", kBaseSeed);
    w.kv("wall_seconds", runner.manifest().wall_seconds);
    w.end_object();
    w.newline();
    w.key("benchmarks");
    w.begin_object();
    for (const auto& [bench, row] : rows) {
      w.newline();
      w.key(workload::benchmark_name(bench));
      w.begin_object();
      w.kv("small_write_fraction", row.small_pct);
      w.kv("request_waf", row.request_waf);
      w.kv("verify_failures", row.verify_failures);
      // Observability health of the measurement itself: nonzero drops or
      // truncation mean the trace/journal under-reports this cell.
      w.kv("trace_dropped", row.trace_dropped);
      w.kv("journal_events", row.journal_events);
      w.kv("journal_truncated", row.journal_truncated);
      w.end_object();
    }
    w.end_object();
    w.newline();
    w.kv("pass", all_near_one);
    w.end_object();
    os << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }

  std::printf(
      "\nPaper Table 1:  %% small writes 99.7 / 95.3 / 99.9 / 19.3 / 11.8;\n"
      "request WAF 1.005 / 1.007 / 1.003 / 1.005 / 1.008.\n"
      "The WAF exceeds 1.0 only by in-region migrations of long-lived\n"
      "subpages and evictions of cold subpages to the full-page region.\n");
  std::printf("shape check (WAF ~= 1 for every benchmark): %s\n",
              all_near_one ? "PASS" : "FAIL");
  return all_near_one ? 0 : 1;
}
