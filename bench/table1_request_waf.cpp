// Reproduces paper Table 1: detailed analysis of subFTL.
//   row 1 -- % of small writes per benchmark
//   row 2 -- average request WAF of small writes in subFTL
//
// The paper's claim: the request WAF stays within ~1.003-1.008 of the
// ideal 1.0 -- subFTL avoids essentially all internal fragmentation, with
// only the small extra I/O of in-region migrations and cold evictions.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "telemetry/json.h"
#include "util/table_printer.h"

namespace {

using namespace esp;

struct Row {
  double small_pct = 0.0;
  double request_waf = 0.0;
  std::uint64_t verify_failures = 0;
};

Row run_one(workload::Benchmark bench) {
  core::ExperimentSpec spec;
  spec.ssd = bench::scaled_config(core::FtlKind::kSub);
  auto params = workload::benchmark_profile(
      bench, 0, 0, spec.ssd.geometry.subpages_per_page, /*seed=*/2017);
  const double write_fraction = 1.0 - params.read_fraction;
  const double avg_large =
      0.5 * (params.large_pages_min + params.large_pages_max) *
      params.sectors_per_page;
  const double avg_small =
      0.5 * (params.small_sectors_min + params.small_sectors_max);
  const double avg_write =
      params.r_small * avg_small + (1.0 - params.r_small) * avg_large;
  const auto reqs = [&](double budget) {
    return static_cast<std::uint64_t>(budget / (write_fraction * avg_write));
  };
  spec.warmup_requests = reqs(120000);
  params.request_count = spec.warmup_requests + reqs(60000);
  spec.workload = params;

  const auto result = core::run_experiment(spec);
  const auto& stats = result.raw.ftl_stats;
  Row row;
  row.small_pct = stats.host_write_requests
                      ? static_cast<double>(stats.small_write_requests) /
                            static_cast<double>(stats.host_write_requests)
                      : 0.0;
  row.request_waf = result.small_request_waf;
  row.verify_failures = result.verify_failures;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header("Table 1 -- Detailed analysis of subFTL");

  util::TablePrinter t({"", "Sysbench", "Varmail", "Postmark", "YCSB",
                        "TPC-C"});
  std::vector<std::string> pct_row = {"% of small write"};
  std::vector<std::string> waf_row = {"average request WAF"};
  std::vector<std::pair<workload::Benchmark, Row>> rows;
  bool all_near_one = true;
  for (const auto bench : workload::all_benchmarks()) {
    const Row row = run_one(bench);
    rows.emplace_back(bench, row);
    pct_row.push_back(util::TablePrinter::pct(row.small_pct, 1));
    waf_row.push_back(util::TablePrinter::num(row.request_waf, 3));
    all_near_one &= row.request_waf < 1.25;
    if (row.verify_failures)
      std::fprintf(stderr, "WARNING: verify failures on %s\n",
                   workload::benchmark_name(bench).c_str());
  }
  t.add_row(pct_row);
  t.add_row(waf_row);
  t.print(std::cout);

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.kv("table", "table1_request_waf");
    w.newline();
    w.key("benchmarks");
    w.begin_object();
    for (const auto& [bench, row] : rows) {
      w.newline();
      w.key(workload::benchmark_name(bench));
      w.begin_object();
      w.kv("small_write_fraction", row.small_pct);
      w.kv("request_waf", row.request_waf);
      w.kv("verify_failures", row.verify_failures);
      w.end_object();
    }
    w.end_object();
    w.newline();
    w.kv("pass", all_near_one);
    w.end_object();
    os << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }

  std::printf(
      "\nPaper Table 1:  %% small writes 99.7 / 95.3 / 99.9 / 19.3 / 11.8;\n"
      "request WAF 1.005 / 1.007 / 1.003 / 1.005 / 1.008.\n"
      "The WAF exceeds 1.0 only by in-region migrations of long-lived\n"
      "subpages and evictions of cold subpages to the full-page region.\n");
  std::printf("shape check (WAF ~= 1 for every benchmark): %s\n",
              all_near_one ? "PASS" : "FAIL");
  return all_near_one ? 0 : 1;
}
