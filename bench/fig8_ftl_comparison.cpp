// Reproduces paper Fig. 8: cgmFTL vs fgmFTL vs subFTL across the five
// evaluation benchmarks.
//   (a) normalized IOPS (per benchmark, cgmFTL = 1.0)
//   (b) normalized GC invocations (fgmFTL vs subFTL)
//
// Each benchmark profile matches the paper's reported characteristics
// (fraction of small writes, sync-heaviness -- see workload/profiles.cpp),
// and every FTL runs the identical request stream after identical
// preconditioning. The key published claims this regenerates:
//   * subFTL improves IOPS by up to 249%/74% (avg 121%/35%) over
//     cgmFTL/fgmFTL;
//   * gains are large for the sync-small-heavy Sysbench/Varmail/Postmark
//     and modest (~10-20%) for YCSB/TPC-C;
//   * subFTL's GC invocations drop dramatically vs fgmFTL.
//
// The 15-cell grid runs on the parallel experiment runner (--jobs N); the
// per-cell numbers are bit-identical for every job count (see
// docs/PARALLEL_RUNNER.md). The --json payload separates the
// NON-deterministic "run" section (wall times, worker ids) from the
// bit-stable "benchmarks"/"summary" sections that CI diffs across --jobs.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/parallel_runner.h"
#include "telemetry/json.h"
#include "util/table_printer.h"

namespace {

using namespace esp;

constexpr std::uint64_t kBaseSeed = 2017;

struct Outcome {
  double throughput = 0.0;
  std::uint64_t gc = 0;
  std::uint64_t erases = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t journal_events = 0;
  std::uint64_t journal_truncated = 0;
  double chip_util = 0.0;     ///< mean per-chip busy/elapsed, measured window
  double channel_util = 0.0;  ///< mean per-channel transfer occupancy
};

core::ExperimentCell make_cell(workload::Benchmark bench, core::FtlKind kind,
                               const bench::GeometryOverrides& geo) {
  core::ExperimentCell cell;
  cell.key = "fig8/" + workload::benchmark_name(bench) + "/" +
             core::ftl_kind_name(kind);
  cell.spec.ssd = bench::scaled_config(kind);
  cell.spec.ssd.geometry = geo.apply(cell.spec.ssd.geometry);

  // Seed per BENCHMARK, not per cell: every FTL of a benchmark must see
  // the identical request stream (the paper's comparison methodology).
  // Derived from the stable benchmark key, never from grid order.
  auto params = workload::benchmark_profile(
      bench, /*footprint=*/0, /*request_count=*/0,
      cell.spec.ssd.geometry.subpages_per_page,
      core::stable_cell_seed("fig8/" + workload::benchmark_name(bench),
                             kBaseSeed));
  // Budget-based sizing: every benchmark/FTL cell writes the same host
  // volume (~warmup then ~measure), so GC counts compare one-to-one.
  const double write_fraction = 1.0 - params.read_fraction;
  const double avg_large_sectors =
      0.5 * (params.large_pages_min + params.large_pages_max) *
      params.sectors_per_page;
  const double avg_small_sectors =
      0.5 * (params.small_sectors_min + params.small_sectors_max);
  const double avg_write_sectors =
      params.r_small * avg_small_sectors +
      (1.0 - params.r_small) * avg_large_sectors;
  constexpr double kWarmupWriteSectors = 120000;
  constexpr double kMeasureWriteSectors = 60000;
  const auto reqs_for = [&](double budget) {
    return static_cast<std::uint64_t>(budget /
                                      (write_fraction * avg_write_sectors));
  };
  cell.spec.warmup_requests = reqs_for(kWarmupWriteSectors);
  params.request_count =
      cell.spec.warmup_requests + reqs_for(kMeasureWriteSectors);
  cell.spec.workload = params;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::string journal_out;
  std::string forensics_out;
  std::uint32_t forensics_top = 16;
  bool audit = false;
  unsigned jobs = 0;    // 0 = hardware concurrency
  unsigned shards = 1;  // >1 = shared-nothing intra-cell sharding
  bench::GeometryOverrides geo;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--journal-out" && i + 1 < argc) {
      journal_out = argv[++i];
    } else if (arg == "--forensics-out" && i + 1 < argc) {
      forensics_out = argv[++i];
    } else if (arg == "--forensics-top" && i + 1 < argc) {
      forensics_top =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--audit") {
      audit = true;
    } else if (geo.parse_flag(argc, argv, i)) {
      // consumed a geometry override
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--jobs N] [--shards N] "
                   "[--journal-out PATH] [--forensics-out PATH] "
                   "[--forensics-top N] [--audit]\n          %s\n",
                   argv[0], bench::GeometryOverrides::kUsage);
      return 2;
    }
  }

  bench::print_header("Fig. 8 -- cgmFTL vs fgmFTL vs subFTL on 5 benchmarks",
                      geo.apply(bench::scaled_geometry()));

  const auto kinds = {core::FtlKind::kCgm, core::FtlKind::kFgm,
                      core::FtlKind::kSub};
  std::vector<core::ExperimentCell> cells;
  for (const auto bench : workload::all_benchmarks()) {
    for (const auto kind : kinds) {
      auto cell = make_cell(bench, kind, geo);
      if (!journal_out.empty())
        cell.spec.journal_path = bench::cell_journal_path(journal_out,
                                                          cell.key);
      if (!forensics_out.empty())
        cell.spec.forensics_path = bench::cell_journal_path(forensics_out,
                                                            cell.key);
      cell.spec.forensics_top = forensics_top;
      cell.spec.audit = audit;
      // Grid cells are the parallelism unit; a sharded cell runs its
      // shards serially on its own worker (results identical either way).
      cell.spec.shards = shards;
      cell.spec.shard_jobs = 1;
      cells.push_back(std::move(cell));
    }
  }

  core::ParallelRunnerConfig runner_cfg;
  runner_cfg.jobs = jobs;
  runner_cfg.base_seed = kBaseSeed;
  runner_cfg.derive_seeds = false;  // seeds fixed per benchmark above
  core::ParallelRunner runner(runner_cfg);
  const auto results = runner.run(cells);
  std::printf("ran %zu cells on %u worker(s) in %.1fs\n", cells.size(),
              runner.manifest().jobs_used, runner.manifest().wall_seconds);

  std::map<std::pair<workload::Benchmark, core::FtlKind>, Outcome> grid;
  {
    std::size_t i = 0;
    for (const auto bench : workload::all_benchmarks()) {
      for (const auto kind : kinds) {
        const auto& cell = results[i++];
        if (!cell.ok) {
          std::fprintf(stderr, "FATAL: cell %s failed: %s\n",
                       cell.key.c_str(), cell.error.c_str());
          return 1;
        }
        if (cell.result.verify_failures != 0)
          std::fprintf(stderr, "WARNING: %llu verify failures (%s)\n",
                       static_cast<unsigned long long>(
                           cell.result.verify_failures),
                       cell.key.c_str());
        grid[{bench, kind}] = Outcome{
            cell.result.host_mb_per_sec, cell.result.gc_invocations,
            cell.result.erases,          cell.result.trace_dropped,
            cell.result.journal_events,  cell.result.journal_truncated,
            cell.result.chip_util_mean,  cell.result.channel_util_mean};
      }
    }
  }

  std::printf("\n(a) Normalized IOPS (cgmFTL = 1.0 per benchmark)\n\n");
  util::TablePrinter iops_table(
      {"benchmark", "cgmFTL", "fgmFTL", "subFTL", "sub/fgm gain"});
  double sum_vs_cgm = 0.0, sum_vs_fgm = 0.0;
  double max_vs_cgm = 0.0, max_vs_fgm = 0.0;
  for (const auto bench : workload::all_benchmarks()) {
    const double cgm = grid[{bench, core::FtlKind::kCgm}].throughput;
    const double fgm = grid[{bench, core::FtlKind::kFgm}].throughput;
    const double sub = grid[{bench, core::FtlKind::kSub}].throughput;
    iops_table.add_row({workload::benchmark_name(bench),
                        util::TablePrinter::num(1.0, 2),
                        util::TablePrinter::num(fgm / cgm, 2),
                        util::TablePrinter::num(sub / cgm, 2),
                        util::TablePrinter::pct(sub / fgm - 1.0, 1)});
    sum_vs_cgm += sub / cgm - 1.0;
    sum_vs_fgm += sub / fgm - 1.0;
    max_vs_cgm = std::max(max_vs_cgm, sub / cgm - 1.0);
    max_vs_fgm = std::max(max_vs_fgm, sub / fgm - 1.0);
  }
  iops_table.print(std::cout);
  std::printf(
      "\nsubFTL IOPS improvement: up to %s / avg %s over cgmFTL, "
      "up to %s / avg %s over fgmFTL\n"
      "(paper: up to 249.2%% / avg 120.8%% over cgmFTL, "
      "up to 74.3%% / avg 35.1%% over fgmFTL)\n",
      util::TablePrinter::pct(max_vs_cgm, 1).c_str(),
      util::TablePrinter::pct(sum_vs_cgm / 5.0, 1).c_str(),
      util::TablePrinter::pct(max_vs_fgm, 1).c_str(),
      util::TablePrinter::pct(sum_vs_fgm / 5.0, 1).c_str());

  std::printf("\n(b) GC invocations over the measured window\n\n");
  util::TablePrinter gc_table({"benchmark", "fgmFTL", "subFTL",
                               "fgm/sub ratio", "erases fgm", "erases sub"});
  for (const auto bench : workload::all_benchmarks()) {
    const auto& fgm = grid[{bench, core::FtlKind::kFgm}];
    const auto& sub = grid[{bench, core::FtlKind::kSub}];
    const double ratio =
        sub.gc ? static_cast<double>(fgm.gc) / static_cast<double>(sub.gc)
               : 0.0;
    gc_table.add_row({workload::benchmark_name(bench),
                      std::to_string(fgm.gc), std::to_string(sub.gc),
                      util::TablePrinter::num(ratio, 2),
                      std::to_string(fgm.erases), std::to_string(sub.erases)});
  }
  gc_table.print(std::cout);
  std::printf(
      "\nExpected shape (paper): subFTL invokes GC far less than fgmFTL "
      "(up to ~2.8x fewer),\nand erases (lifetime) follow the same "
      "ordering.\n");

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.kv("figure", "fig8_ftl_comparison");
    w.newline();
    // Host-side provenance: wall times and worker ids vary run to run.
    // Determinism checks must diff "benchmarks" and "summary" only.
    w.key("run");
    w.begin_object();
    w.kv("jobs", static_cast<std::uint64_t>(runner.manifest().jobs_used));
    w.kv("shards", static_cast<std::uint64_t>(shards));
    w.kv("base_seed", kBaseSeed);
    w.kv("wall_seconds", runner.manifest().wall_seconds);
    w.end_object();
    w.newline();
    w.key("benchmarks");
    w.begin_object();
    for (const auto bench : workload::all_benchmarks()) {
      w.newline();
      w.key(workload::benchmark_name(bench));
      w.begin_object();
      const double cgm = grid[{bench, core::FtlKind::kCgm}].throughput;
      for (const auto kind : kinds) {
        const auto& o = grid[{bench, kind}];
        w.key(core::ftl_kind_name(kind));
        w.begin_object();
        w.kv("host_mb_per_sec", o.throughput);
        w.kv("normalized_iops", cgm > 0.0 ? o.throughput / cgm : 0.0);
        w.kv("gc_invocations", o.gc);
        w.kv("erases", o.erases);
        // Observability health of the measurement itself: nonzero drops or
        // truncation mean the trace/journal under-reports this cell.
        w.kv("trace_dropped", o.trace_dropped);
        w.kv("journal_events", o.journal_events);
        w.kv("journal_truncated", o.journal_truncated);
        w.kv("chip_util", o.chip_util);
        w.kv("channel_util", o.channel_util);
        w.end_object();
      }
      w.end_object();
    }
    w.end_object();
    w.newline();
    w.key("summary");
    w.begin_object();
    w.kv("iops_gain_vs_cgm_max", max_vs_cgm);
    w.kv("iops_gain_vs_cgm_avg", sum_vs_cgm / 5.0);
    w.kv("iops_gain_vs_fgm_max", max_vs_fgm);
    w.kv("iops_gain_vs_fgm_avg", sum_vs_fgm / 5.0);
    w.end_object();
    w.end_object();
    os << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
