// Ablation: wear leveling (paper Sec. 4.2: "the unbalanced wearing problem
// is solved by using existing wear-leveling algorithms" with block types
// decided at program time).
//
// Runs a hot-skewed sync-small workload on subFTL with static wear
// leveling disabled vs. enabled at several thresholds and reports the
// device P/E spread. Also compares the three FTLs at the default setting:
// subFTL's hot subpage region wears its blocks fastest, so this is where
// block-type conversion earns its keep.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "ftl/wear_metrics.h"
#include "util/table_printer.h"

namespace {

using namespace esp;

ftl::WearSummary run_one(core::FtlKind kind, std::uint32_t wl_interval,
                         std::uint32_t wl_threshold,
                         std::uint64_t* relocations,
                         std::uint64_t requests = 250000) {
  core::SsdConfig config = bench::scaled_config(kind);
  config.wl_check_interval = wl_interval;
  config.wl_pe_threshold = wl_threshold;
  core::Ssd ssd(config);
  ssd.precondition(0.78);

  workload::SyntheticParams params;
  params.footprint_sectors =
      static_cast<std::uint64_t>(0.78 * ssd.logical_sectors()) / 4 * 4;
  params.request_count = requests;
  params.r_small = 1.0;
  params.r_synch = 1.0;
  params.small_footprint_fraction = 0.015;
  params.small_zipf_theta = 0.9;
  params.seed = 77;
  workload::SyntheticWorkload stream(params);
  ssd.driver().run(stream, false);
  if (relocations)
    *relocations = ssd.ftl().stats().wear_level_relocations;
  return ftl::measure_wear(ssd.device());
}

}  // namespace

int main() {
  bench::print_header("Ablation -- wear leveling (static WL threshold)");

  std::printf("\n(a) subFTL, static WL off vs on\n\n");
  util::TablePrinter ta({"wl setting", "max P/E", "mean P/E", "spread",
                         "imbalance", "WL relocations"});
  struct Setting {
    const char* label;
    std::uint32_t interval;
    std::uint32_t threshold;
  };
  for (const Setting s : {Setting{"disabled", 0, 0},
                          Setting{"thresh 32", 1024, 32},
                          Setting{"thresh 8", 1024, 8},
                          Setting{"thresh 4, eager", 256, 4}}) {
    std::uint64_t relocations = 0;
    // Long horizon: wear effects need many erase cycles to show.
    const auto wear = run_one(core::FtlKind::kSub, s.interval, s.threshold,
                              &relocations, 1500000);
    ta.add_row({s.label, std::to_string(wear.max_pe),
                util::TablePrinter::num(wear.mean_pe, 1),
                std::to_string(wear.spread()),
                util::TablePrinter::num(wear.imbalance(), 3),
                std::to_string(relocations)});
  }
  ta.print(std::cout);

  std::printf("\n(b) all FTLs at the default setting\n\n");
  util::TablePrinter tb({"FTL", "max P/E", "mean P/E", "imbalance"});
  for (const auto kind :
       {core::FtlKind::kCgm, core::FtlKind::kFgm, core::FtlKind::kSub}) {
    const auto wear = run_one(kind, 1024, 8, nullptr);
    tb.add_row({core::ftl_kind_name(kind), std::to_string(wear.max_pe),
                util::TablePrinter::num(wear.mean_pe, 1),
                util::TablePrinter::num(wear.imbalance(), 3)});
  }
  tb.print(std::cout);

  std::printf(
      "\nExpected shape: tighter thresholds trade relocation I/O for a\n"
      "smaller P/E spread; with WL disabled the hot rotation concentrates\n"
      "wear while cold blocks stay at their preconditioning count.\n");
  return 0;
}
