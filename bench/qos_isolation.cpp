// QoS isolation: noisy-neighbor matrix over the multi-tenant namespace mux.
//
// Two tenants share one device (two page-aligned namespace slices over one
// FTL -- see docs/QOS.md):
//
//   reader -- latency-sensitive: paced (open-loop) small requests, 90%
//             reads + 10% small sync writes over a confined working set.
//             The write tail matters: its solo p99 already includes
//             program-path stalls, so the isolation gate compares like
//             with like.
//   writer -- noisy neighbor: duty-cycled bulk writer (a checkpointer's
//             arrival pattern): 4 MiB bursts of full-page writes landing
//             nearly at once, separated by gaps long enough that the
//             average rate stays under every FTL's sustainable rate.
//             Each burst plants a deep backlog whose requests all carry
//             older arrival timestamps than the reader's next request.
//
// That arrival-age inversion is exactly what separates the schedulers:
// FIFO serves the oldest arrival -- the writer's backlog -- and starves
// the reader for the length of each burst drain; round-robin alternates;
// weighted share ignores arrival age and serves by weighted virtual time,
// so the reader (weight 8 vs 1) preempts the backlog at every pick point.
// The device queue depth is kept small (16) so device slots are actually
// scarce and the scheduler's pick decides who gets them. The pressure is
// deliberately bursty rather than steady: a steady writer paced above
// device capacity collapses the device itself (reads stuck behind
// saturated chips, 5 ms erases, GC chains -- damage no submission-order
// scheduler can mask), while one paced below capacity never accumulates a
// backlog, so at most one lane is ever eligible per pick and all three
// schedulers degenerate to the same sequence.
//
// Matrix: {fifo, rr, wshare} x 4 FTLs, plus one solo-reader baseline per
// FTL (same slice-sized footprint, no writer). Gate: under wshare, every
// FTL must keep the reader's p99 RESPONSE time (arrival -> completion,
// scheduling delay included) within 2x of its solo run. The committed
// BENCH_qos.json records the full matrix; all simulated numbers in it are
// deterministic and --jobs-independent.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/parallel_runner.h"
#include "sim/qos.h"
#include "telemetry/json.h"
#include "util/table_printer.h"

namespace {

using namespace esp;

constexpr std::uint64_t kBaseSeed = 2017;
constexpr double kGate = 2.0;  // wshare reader p99 resp <= kGate x solo

struct Budget {
  std::uint64_t reader_requests;  ///< measured reader stream length
  std::uint64_t writer_requests;  ///< writer stream length (outlives reader)
  std::uint64_t warmup_requests;  ///< total warmup budget (duet cells)
};

/// Latency-sensitive tenant: paced small requests, read-mostly with a
/// 10% small-sync-write tail, confined working set.
workload::SyntheticParams reader_workload(std::uint32_t sectors_per_page,
                                          std::uint64_t requests) {
  workload::SyntheticParams p;
  p.sectors_per_page = sectors_per_page;
  p.request_count = requests;
  p.read_fraction = 0.9;
  p.r_small = 1.0;
  p.r_synch = 1.0;
  p.small_sectors_min = 1;
  p.small_sectors_max = 2;
  p.small_footprint_fraction = 0.25;
  p.reads_follow_small = true;  // re-reads its own working set
  p.think_us = 1200.0;          // ~830 IOPS demand: light, latency-bound
  p.seed = core::stable_cell_seed("qos/reader", kBaseSeed);
  return p;
}

/// Noisy neighbor: open-loop large cold writes, paced beyond device
/// capacity so a backlog (with old arrival timestamps) is always pending.
workload::SyntheticParams writer_workload(std::uint32_t sectors_per_page,
                                          std::uint64_t requests) {
  workload::SyntheticParams p;
  p.sectors_per_page = sectors_per_page;
  p.request_count = requests;
  p.read_fraction = 0.0;
  p.r_small = 0.0;
  p.large_pages_min = 1;
  p.large_pages_max = 1;  // one chip booked per write: bounded interference
  // Hot churn, not cold streaming: victims are mostly invalid, so GC stays
  // in its efficient regime (short, frequent reclaims the queue-depth
  // window absorbs). Cold near-uniform writes would instead drive every
  // victim to ~95% valid and collapse the device into multi-block
  // foreground GC -- a >1s stall no submission-level scheduler can hide.
  p.large_zipf_theta = 0.95;
  p.large_align_prob = 1.0;
  // Duty-cycled bursts, not a steady drizzle. The pressure level is a
  // razor's edge: a writer paced steadily ABOVE device capacity is a
  // device-level overload -- reads stuck behind saturated chips, 5 ms
  // erases and GC chains that no submission-order scheduler can mask --
  // while a writer paced steadily BELOW capacity never accumulates a
  // backlog at all, so at every pick at most one lane is eligible and all
  // three schedulers degenerate to the same sequence. Bursts square the
  // circle: each 256-page (4 MiB) burst arrives nearly at once, planting a
  // deep backlog of old-arrival requests that FIFO insists on draining
  // ahead of the reader, while the 45 ms gap (~93 MB/s average, under
  // every FTL's sustainable rate) lets the device drain fully so the
  // weighted-share reader's device-level service floor stays near solo.
  p.think_us = 1.0;  // intra-burst spacing: near-simultaneous arrivals
  p.burst_len = 256;
  p.burst_gap_us = 45000.0;
  p.seed = core::stable_cell_seed("qos/writer", kBaseSeed);
  return p;
}

core::SsdConfig qos_ssd(core::FtlKind kind) {
  core::SsdConfig cfg = bench::scaled_config(kind);
  // Scarce device slots: with the default 128 the device window never
  // binds and every scheduler degenerates to "submit immediately".
  cfg.queue_depth = 16;
  return cfg;
}

/// Preconditioned share of each namespace. The default 0.78 leaves the
/// device ~62% full of valid data, where greedy GC victims are mostly
/// valid and every reclaim turns into a multi-hundred-ms compaction storm
/// that books all chips solid -- device-level stalls no submission
/// scheduler can mask, drowning the signal this bench measures. Keeping
/// the preconditioned share low keeps GC in its short-burst regime.
constexpr double kPreconditionFraction = 0.22;

/// Writer hot-set size as a share of its namespace slice (see the duet
/// cell for why it must stay small).
constexpr double kWriterFootprintFraction = 0.08;

core::ExperimentCell make_duet_cell(core::FtlKind kind, sim::QosPolicy policy,
                                    const Budget& budget) {
  core::ExperimentCell cell;
  cell.key = "qos/" + core::ftl_kind_name(kind) + "/" +
             sim::qos_policy_name(policy);
  cell.spec.ssd = qos_ssd(kind);
  cell.spec.qos = policy;
  cell.spec.precondition_fraction = kPreconditionFraction;
  cell.spec.warmup_requests = budget.warmup_requests;

  core::TenantSpec reader;
  reader.name = "reader";
  reader.weight = 8.0;
  reader.queue_depth = 4;
  reader.workload = reader_workload(cell.spec.ssd.geometry.subpages_per_page,
                                    budget.reader_requests);
  core::TenantSpec writer;
  writer.name = "writer";
  writer.weight = 1.0;
  writer.queue_depth = 64;  // > device QD: never its own bottleneck
  writer.workload = writer_workload(cell.spec.ssd.geometry.subpages_per_page,
                                    budget.writer_requests);
  // Tight hot set: over a long run the zipf tail would otherwise scatter
  // long-lived valid pages across every block the writer churns, and
  // greedy victims degrade until reclaim falls behind the stream -- the
  // multi-block compaction-storm regime. Confining the writer to a small
  // region keeps its victims near-empty indefinitely.
  {
    const std::uint64_t logical = cell.spec.ssd.logical_sectors();
    const std::uint32_t subs = cell.spec.ssd.geometry.subpages_per_page;
    const std::uint64_t half_slice = logical / subs / 2 * subs;
    writer.workload.footprint_sectors =
        static_cast<std::uint64_t>(kWriterFootprintFraction *
                                   static_cast<double>(half_slice)) /
        subs * subs;
  }
  cell.spec.tenants = {std::move(reader), std::move(writer)};
  return cell;
}

/// Solo baseline: the reader alone on the device, with its footprint
/// pinned to the DUET slice share so both runs touch the same working-set
/// size (a solo tenant would otherwise get the whole logical space).
core::ExperimentCell make_solo_cell(core::FtlKind kind, const Budget& budget) {
  core::ExperimentCell cell;
  cell.key = "qos/" + core::ftl_kind_name(kind) + "/solo";
  cell.spec.ssd = qos_ssd(kind);
  cell.spec.qos = sim::QosPolicy::kFifo;  // one lane: policy is moot
  cell.spec.precondition_fraction = kPreconditionFraction;
  // Reader-only warmup at the duet's reader share.
  cell.spec.warmup_requests = std::max<std::uint64_t>(
      budget.warmup_requests / 10, 200);

  const auto& geo = cell.spec.ssd.geometry;
  core::TenantSpec reader;
  reader.name = "reader";
  reader.weight = 8.0;
  reader.queue_depth = 4;
  reader.workload =
      reader_workload(geo.subpages_per_page, budget.reader_requests);
  // Duet slice = half the logical space; footprint = preconditioned share
  // of that slice (mirrors run_experiment's default for two tenants).
  const std::uint64_t logical = cell.spec.ssd.logical_sectors();
  const std::uint32_t subs = geo.subpages_per_page;
  const std::uint64_t half_slice = logical / subs / 2 * subs;
  reader.workload.footprint_sectors =
      static_cast<std::uint64_t>(cell.spec.precondition_fraction *
                                 static_cast<double>(half_slice)) /
      subs * subs;
  cell.spec.tenants = {std::move(reader)};
  return cell;
}

const sim::TenantMetrics* find_tenant(const core::RunResult& r,
                                      const std::string& name) {
  for (const auto& t : r.tenants)
    if (t.name == name) return &t;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::string forensics_out;
  std::uint32_t forensics_top = 16;
  unsigned jobs = 0;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--forensics-out" && i + 1 < argc) {
      forensics_out = argv[++i];
    } else if (arg == "--forensics-top" && i + 1 < argc) {
      forensics_top =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--jobs N] [--quick] "
                   "[--forensics-out PATH] [--forensics-top N]\n",
                   argv[0]);
      return 2;
    }
  }

  Budget budget;
  if (quick) {
    budget = {1500, 40000, 5000};
  } else {
    budget = {6000, 160000, 20000};
  }

  bench::print_header(
      "QoS isolation -- noisy neighbor vs latency-sensitive reader");

  const auto kinds = {core::FtlKind::kCgm, core::FtlKind::kFgm,
                      core::FtlKind::kSub, core::FtlKind::kSectorLog};
  const auto policies = {sim::QosPolicy::kFifo, sim::QosPolicy::kRoundRobin,
                         sim::QosPolicy::kWeightedShare};

  std::vector<core::ExperimentCell> cells;
  for (const auto kind : kinds) {
    cells.push_back(make_solo_cell(kind, budget));
    for (const auto policy : policies)
      cells.push_back(make_duet_cell(kind, policy, budget));
  }
  if (!forensics_out.empty())
    for (auto& cell : cells) {
      cell.spec.forensics_path =
          bench::cell_journal_path(forensics_out, cell.key);
      cell.spec.forensics_top = forensics_top;
    }

  core::ParallelRunnerConfig runner_cfg;
  runner_cfg.jobs = jobs;
  runner_cfg.base_seed = kBaseSeed;
  runner_cfg.derive_seeds = false;  // tenant seeds fixed above
  core::ParallelRunner runner(runner_cfg);
  const auto results = runner.run(cells);
  std::printf("ran %zu cells on %u worker(s) in %.1fs\n\n", cells.size(),
              runner.manifest().jobs_used, runner.manifest().wall_seconds);

  // grid[ftl][mode] -> result ("solo" | "fifo" | "rr" | "wshare").
  std::map<std::string, std::map<std::string, core::RunResult>> grid;
  {
    std::size_t i = 0;
    for (const auto kind : kinds) {
      for (const char* mode :
           {"solo", "fifo", "rr", "wshare"}) {
        const auto& cell = results[i++];
        if (!cell.ok) {
          std::fprintf(stderr, "FATAL: cell %s failed: %s\n",
                       cell.key.c_str(), cell.error.c_str());
          return 1;
        }
        if (cell.result.verify_failures != 0) {
          std::fprintf(stderr, "FATAL: %llu verify failures (%s)\n",
                       static_cast<unsigned long long>(
                           cell.result.verify_failures),
                       cell.key.c_str());
          return 1;
        }
        grid[core::ftl_kind_name(kind)][mode] = cell.result;
      }
    }
  }

  bool gate_pass = true;
  util::TablePrinter t({"FTL", "solo p99", "fifo p99", "rr p99",
                        "wshare p99", "wshare/solo", "writer MB/s", "gate"});
  for (const auto kind : kinds) {
    const std::string ftl = core::ftl_kind_name(kind);
    const auto& per_mode = grid[ftl];
    const sim::TenantMetrics* solo =
        find_tenant(per_mode.at("solo"), "reader");
    const sim::TenantMetrics* fifo =
        find_tenant(per_mode.at("fifo"), "reader");
    const sim::TenantMetrics* rr = find_tenant(per_mode.at("rr"), "reader");
    const sim::TenantMetrics* ws =
        find_tenant(per_mode.at("wshare"), "reader");
    if (!solo || !fifo || !rr || !ws) {
      std::fprintf(stderr, "FATAL: missing reader tenant metrics (%s)\n",
                   ftl.c_str());
      return 1;
    }
    // Writer throughput under wshare: isolation must not idle the device.
    const core::RunResult& wshare_run = per_mode.at("wshare");
    const sim::TenantMetrics* wr = find_tenant(wshare_run, "writer");
    const double secs = sim_time::to_seconds(wshare_run.raw.elapsed_us());
    const double writer_mbps =
        wr && secs > 0.0
            ? static_cast<double>(wr->host_write_sectors) * 4096.0 /
                  (1024.0 * 1024.0) / secs
            : 0.0;
    const double ratio = solo->response_p99_us > 0.0
                             ? ws->response_p99_us / solo->response_p99_us
                             : 0.0;
    const bool ok = ratio <= kGate && solo->response_p99_us > 0.0;
    gate_pass &= ok;
    t.add_row({ftl, util::TablePrinter::num(solo->response_p99_us, 0),
               util::TablePrinter::num(fifo->response_p99_us, 0),
               util::TablePrinter::num(rr->response_p99_us, 0),
               util::TablePrinter::num(ws->response_p99_us, 0),
               util::TablePrinter::num(ratio, 2),
               util::TablePrinter::num(writer_mbps, 1),
               ok ? "PASS" : "FAIL"});
  }
  std::printf("reader p99 RESPONSE time (us) by scheduler; gate: wshare <= "
              "%.1fx solo\n\n",
              kGate);
  t.print(std::cout);

  // Per-tenant tail blame (forensics runs): which phase each tenant's
  // slowest retained requests spent their time in, per scheduler -- the
  // "who is the reader actually stalled behind" answer next to the p99s.
  if (!forensics_out.empty()) {
    std::printf("\nper-tenant tail blame (slowest %u retained per tenant):\n",
                forensics_top);
    util::TablePrinter bt({"cell", "tenant", "reqs", "tail", "worst us",
                           "dominant phase", "share"});
    for (const auto kind : kinds) {
      const std::string ftl = core::ftl_kind_name(kind);
      for (const char* mode : {"fifo", "rr", "wshare"}) {
        const core::RunResult& r = grid[ftl].at(mode);
        for (const auto& tb : r.tenant_blame) {
          double tail_total = 0.0;
          std::size_t dom = 0;
          for (std::size_t p = 0; p < telemetry::kPhaseCount; ++p) {
            tail_total += tb.tail_phase_us[p];
            if (tb.tail_phase_us[p] > tb.tail_phase_us[dom]) dom = p;
          }
          bt.add_row(
              {ftl + "/" + mode,
               r.tenants.size() > tb.tenant ? r.tenants[tb.tenant].name
                                            : std::to_string(tb.tenant),
               std::to_string(tb.requests), std::to_string(tb.tail_requests),
               util::TablePrinter::num(tb.worst_response_us, 0),
               telemetry::phase_name(static_cast<telemetry::Phase>(dom)),
               tail_total > 0.0
                   ? util::TablePrinter::num(
                         tb.tail_phase_us[dom] / tail_total * 100.0, 1) + "%"
                   : "-"});
        }
      }
    }
    bt.print(std::cout);
  }

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.kv("figure", "qos_isolation");
    w.newline();
    w.key("run");
    w.begin_object();
    w.kv("base_seed", kBaseSeed);
    w.kv("quick", quick);
    w.kv("gate", kGate);
    w.kv("gate_pass", gate_pass);
    w.kv("reader_requests", budget.reader_requests);
    w.kv("writer_requests", budget.writer_requests);
    w.kv("warmup_requests", budget.warmup_requests);
    w.end_object();
    w.newline();
    w.key("cells");
    w.begin_object();
    for (const auto kind : kinds) {
      const std::string ftl = core::ftl_kind_name(kind);
      w.newline();
      w.key(ftl);
      w.begin_object();
      for (const char* mode : {"solo", "fifo", "rr", "wshare"}) {
        const core::RunResult& r = grid[ftl].at(mode);
        w.newline();
        w.key(mode);
        w.begin_object();
        w.kv("requests", r.raw.requests);
        w.kv("elapsed_us", r.raw.elapsed_us());
        w.kv("overall_waf", r.overall_waf);
        w.kv("gc_invocations", r.gc_invocations);
        w.kv("erases", r.erases);
        for (const auto& tm : r.tenants) {
          w.key(tm.name);
          w.begin_object();
          w.kv("requests", tm.requests);
          w.kv("write_requests", tm.write_requests);
          w.kv("read_requests", tm.read_requests);
          w.kv("host_write_sectors", tm.host_write_sectors);
          w.kv("host_read_sectors", tm.host_read_sectors);
          w.kv("service_p50_us", tm.service_p50_us);
          w.kv("service_p99_us", tm.service_p99_us);
          w.kv("service_p999_us", tm.service_p999_us);
          w.kv("response_p50_us", tm.response_p50_us);
          w.kv("response_p99_us", tm.response_p99_us);
          w.kv("response_p999_us", tm.response_p999_us);
          w.kv("wait_p50_us", tm.wait_p50_us);
          w.kv("wait_p99_us", tm.wait_p99_us);
          w.kv("wait_p999_us", tm.wait_p999_us);
          w.kv("write_share",
               tm.write_share(r.raw.ftl_stats.host_write_sectors));
          w.end_object();
        }
        w.end_object();
      }
      const sim::TenantMetrics* solo = find_tenant(grid[ftl].at("solo"),
                                                   "reader");
      const sim::TenantMetrics* ws = find_tenant(grid[ftl].at("wshare"),
                                                 "reader");
      w.kv("wshare_over_solo_p99",
           solo && ws && solo->response_p99_us > 0.0
               ? ws->response_p99_us / solo->response_p99_us
               : 0.0);
      w.end_object();
    }
    w.end_object();
    w.end_object();
    os << "\n";
    std::printf("\nwrote %s\n", json_out.c_str());
  }

  if (!gate_pass) {
    std::fprintf(stderr,
                 "FATAL: wshare failed to keep the reader within %.1fx of "
                 "its solo p99 response time\n",
                 kGate);
    return 1;
  }
  return 0;
}
