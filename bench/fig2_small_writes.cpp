// Reproduces paper Fig. 2: effect of small writes on the CGM and FGM
// baselines.
//   (a) normalized IOPS vs r_small for r_synch in {0, 0.3, 0.5, 1}
//   (b) normalized number of GC invocations (FGM) over the same sweep
//
// Methodology notes:
//   * every sweep point transfers the same HOST DATA volume (the paper's
//     benchmarks run fixed working sets), so "normalized IOPS" is the
//     normalized host data rate;
//   * IOPS is normalized to the FGM scheme at r_small = r_synch = 0 (the
//     fastest point), GC invocations to FGM at r_small = r_synch = 1 (the
//     worst point), exactly as in the paper.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/table_printer.h"

namespace {

using namespace esp;

constexpr std::uint64_t kWarmupSectors = 120000;   // ~470 MB
constexpr std::uint64_t kMeasureSectors = 60000;   // ~235 MB

struct Cell {
  double throughput = 0.0;  // host MB/s
  std::uint64_t gc = 0;
};

std::uint64_t requests_for(double r_small, std::uint64_t budget_sectors) {
  const double avg_sectors = r_small * 1.0 + (1.0 - r_small) * 4.0;
  return static_cast<std::uint64_t>(
      static_cast<double>(budget_sectors) / avg_sectors);
}

Cell run_point(core::FtlKind kind, double r_small, double r_synch) {
  core::ExperimentSpec spec;
  spec.ssd = bench::scaled_config(kind);
  spec.warmup_requests = requests_for(r_small, kWarmupSectors);
  spec.workload.request_count =
      spec.warmup_requests + requests_for(r_small, kMeasureSectors);
  spec.workload.r_small = r_small;
  spec.workload.r_synch = r_synch;
  spec.workload.read_fraction = 0.0;  // Fig. 2 sweeps writes only
  spec.workload.small_zipf_theta = 0.9;
  // Sysbench-style file I/O is not page-aligned; this reproduces the CGM
  // gap at r_small = 0 explained in the paper's footnote 1.
  spec.workload.large_align_prob = 0.5;
  spec.workload.seed = 20170618;
  const auto result = core::run_experiment(spec);
  if (result.verify_failures != 0)
    std::fprintf(stderr, "WARNING: %llu verify failures at %s r_small=%.1f\n",
                 static_cast<unsigned long long>(result.verify_failures),
                 result.ftl_name.c_str(), r_small);
  return Cell{result.host_mb_per_sec, result.gc_invocations};
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 2 -- Effects of small writes (CGM vs FGM baselines)");

  const std::vector<double> r_smalls = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<double> r_synchs = {0.0, 0.3, 0.5, 1.0};

  std::map<std::pair<int, int>, Cell> fgm, cgm;
  for (std::size_t i = 0; i < r_smalls.size(); ++i) {
    for (std::size_t j = 0; j < r_synchs.size(); ++j) {
      fgm[{int(i), int(j)}] =
          run_point(core::FtlKind::kFgm, r_smalls[i], r_synchs[j]);
      cgm[{int(i), int(j)}] =
          run_point(core::FtlKind::kCgm, r_smalls[i], r_synchs[j]);
    }
  }

  const double iops_base = fgm[{0, 0}].throughput;
  const double gc_base =
      static_cast<double>(fgm[{int(r_smalls.size()) - 1,
                               int(r_synchs.size()) - 1}].gc);

  auto grid_header = [&] {
    std::vector<std::string> h = {"r_small"};
    for (const double rs : r_synchs)
      h.push_back("r_synch(" + util::TablePrinter::num(rs, 1) + ")");
    return h;
  };

  std::printf("\n(a) Normalized IOPS (1.0 = FGM @ r_small=0, r_synch=0)\n\n");
  for (const auto* scheme : {"FGM", "CGM"}) {
    auto& grid = std::string(scheme) == "FGM" ? fgm : cgm;
    std::printf("--- %s ---\n", scheme);
    util::TablePrinter t(grid_header());
    for (std::size_t i = 0; i < r_smalls.size(); ++i) {
      std::vector<std::string> row = {util::TablePrinter::num(r_smalls[i], 1)};
      for (std::size_t j = 0; j < r_synchs.size(); ++j)
        row.push_back(util::TablePrinter::num(
            grid[{int(i), int(j)}].throughput / iops_base, 3));
      t.add_row(row);
    }
    t.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "(b) Normalized GC invocations in FGM "
      "(1.0 = FGM @ r_small=1, r_synch=1)\n\n");
  util::TablePrinter t(grid_header());
  for (std::size_t i = 0; i < r_smalls.size(); ++i) {
    std::vector<std::string> row = {util::TablePrinter::num(r_smalls[i], 1)};
    for (std::size_t j = 0; j < r_synchs.size(); ++j)
      row.push_back(util::TablePrinter::num(
          static_cast<double>(fgm[{int(i), int(j)}].gc) / gc_base, 3));
    t.add_row(row);
  }
  t.print(std::cout);

  // Footnote 2 of the paper: "the result for the CGM scheme is very
  // similar" -- print it so the claim is checkable here.
  std::printf(
      "\n(b') Normalized GC invocations in CGM (same normalization)\n\n");
  util::TablePrinter tc(grid_header());
  for (std::size_t i = 0; i < r_smalls.size(); ++i) {
    std::vector<std::string> row = {util::TablePrinter::num(r_smalls[i], 1)};
    for (std::size_t j = 0; j < r_synchs.size(); ++j)
      row.push_back(util::TablePrinter::num(
          static_cast<double>(cgm[{int(i), int(j)}].gc) / gc_base, 3));
    tc.add_row(row);
  }
  tc.print(std::cout);

  std::printf(
      "\nExpected shape (paper): IOPS falls as r_small and r_synch rise;\n"
      "CGM sits well below FGM everywhere (RMW-dominated) including the\n"
      "r_small=0 gap caused by misaligned 16-KB writes; FGM GC invocations\n"
      "grow with r_small and r_synch.\n");
  return 0;
}
