// Extension bench: synchronous-write latency distributions.
//
// The paper reports IOPS and GC counts; for latency-sensitive systems
// (databases committing transactions) the distribution matters too. A
// sync 4-KB write costs:
//   cgmFTL      read 16-KB + program 16-KB (~1.8 ms) + GC stalls
//   fgmFTL      program 16-KB (~1.65 ms) + GC stalls
//   sectorLog   program 16-KB (~1.65 ms) + merge stalls
//   subFTL      program 4-KB subpage (~1.3 ms) + rare forwarding chains
// This bench measures the full percentile profile per FTL under the
// Sysbench-like sync-small stream.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

int main() {
  using namespace esp;
  bench::print_header(
      "Extension -- sync small-write latency percentiles per FTL");

  util::TablePrinter t({"FTL", "p50 us", "p95 us", "p99 us", "max-ish us",
                        "MB/s"});
  for (const auto kind :
       {core::FtlKind::kCgm, core::FtlKind::kFgm, core::FtlKind::kSectorLog,
        core::FtlKind::kSub}) {
    core::SsdConfig config = bench::scaled_config(kind);
    core::Ssd ssd(config);
    ssd.precondition(0.78);

    workload::SyntheticParams params;
    params.footprint_sectors =
        static_cast<std::uint64_t>(0.78 * ssd.logical_sectors()) / 4 * 4;
    params.request_count = 200000;
    params.r_small = 1.0;
    params.r_synch = 1.0;
    params.small_footprint_fraction = 0.018;
    params.seed = 99;
    workload::SyntheticWorkload stream(params);
    // Warmup into GC steady state, then measure the distribution of the
    // last window only (driver histogram accumulates; reset via fresh run
    // percentile deltas is overkill -- report the full-run profile, which
    // is warmup-diluted identically for every FTL).
    const auto metrics = ssd.driver().run(stream, /*verify=*/false);
    const auto& hist = ssd.driver().latency_histogram();
    const double host_mb =
        static_cast<double>(metrics.ftl_stats.host_write_sectors +
                            metrics.ftl_stats.host_read_sectors) *
        4096.0 / (1024.0 * 1024.0);
    t.add_row({core::ftl_kind_name(kind),
               util::TablePrinter::num(hist.percentile(0.50), 0),
               util::TablePrinter::num(hist.percentile(0.95), 0),
               util::TablePrinter::num(hist.percentile(0.99), 0),
               util::TablePrinter::num(hist.percentile(0.9999), 0),
               util::TablePrinter::num(
                   host_mb / sim_time::to_seconds(metrics.elapsed_us()), 1)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: subFTL's median tracks the 1300-us subpage program\n"
      "and its tail is the shortest (GC is rare and cheap); cgmFTL pays the\n"
      "extra page read at the median AND the heaviest GC tail.\n");
  return 0;
}
