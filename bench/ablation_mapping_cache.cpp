// Ablation: translation overhead under a DRAM-limited mapping cache.
//
// `ablation_mapping_memory` shows FGM's table is 4x CGM's in BYTES; this
// bench shows what that costs in TIME when DRAM is too small for the full
// table (the DFTL regime): each FTL's translation-entry stream for the
// Sysbench profile is replayed through an LRU cache of translation pages,
// and misses/writebacks are priced at the device's read/program latencies.
//
//   cgmFTL / subFTL coarse entries:  one entry per 16-KB logical page
//   subFTL hash entries:             resident in DRAM by design (tiny)
//   fgmFTL entries:                  one per 4-KB sector (4x the pages)
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "ftl/mapping_cache.h"
#include "util/table_printer.h"
#include "workload/profiles.h"

namespace {

using namespace esp;

struct Overhead {
  double hit_rate = 0.0;
  double us_per_request = 0.0;
};

/// Replays the translation accesses of `params` against a cache holding
/// `dram_fraction` of this FTL's table. `entries_per_lpn` distinguishes
/// coarse (1) from fine (Nsub) mapping.
Overhead run_one(workload::SyntheticParams params, double dram_fraction,
                 std::uint32_t entries_per_lpn) {
  const nand::TimingSpec timing;
  const std::uint32_t subs = 4;
  const std::uint64_t total_lpns = params.footprint_sectors / subs;
  const std::uint64_t table_entries = total_lpns * entries_per_lpn;
  constexpr std::uint32_t kEntriesPerFlashPage = 4096;  // 16 KB / 4 B
  const std::size_t table_pages =
      std::max<std::size_t>(1, table_entries / kEntriesPerFlashPage);
  const auto cache_pages = std::max<std::size_t>(
      1, static_cast<std::size_t>(dram_fraction * table_pages));

  ftl::MappingCache cache(cache_pages, kEntriesPerFlashPage);
  workload::SyntheticWorkload stream(params);
  std::uint64_t requests = 0;
  double overhead_us = 0.0;
  while (const auto req = stream.next()) {
    ++requests;
    const bool dirty = req->type == workload::Request::Type::kWrite;
    // One translation access per touched lpn (coarse) or sector (fine).
    const std::uint64_t step = entries_per_lpn == 1 ? subs : 1;
    for (std::uint64_t s = req->sector; s < req->sector + req->count;
         s += step) {
      const std::uint64_t entry =
          entries_per_lpn == 1 ? s / subs : s;
      const auto access = cache.access(entry, dirty);
      if (!access.hit)
        overhead_us += timing.read_full_us +
                       timing.transfer_us(16 * 1024);
      if (access.writeback)
        overhead_us += timing.prog_full_us + timing.transfer_us(16 * 1024);
    }
  }
  return Overhead{cache.hit_rate(),
                  overhead_us / static_cast<double>(requests)};
}

}  // namespace

int main() {
  using namespace esp;
  bench::print_header(
      "Ablation -- translation overhead with a DRAM-limited mapping cache");

  auto params = workload::benchmark_profile(workload::Benchmark::kSysbench,
                                            1 << 20, 300000, 4, 7);

  // Equal DRAM BYTES: the budget is expressed as a fraction of the
  // COARSE table; the fine-grained table is 4x larger, so the same bytes
  // cover a quarter of it.
  std::printf("\nTranslation overhead at EQUAL DRAM bytes (Sysbench stream)\n\n");
  util::TablePrinter t({"DRAM (of coarse table)", "coarse/subFTL us/req",
                        "fine (fgm) us/req", "fgm penalty"});
  for (const double fraction : {1.0, 0.5, 0.25}) {
    const auto coarse = run_one(params, fraction, 1);
    const auto fine = run_one(params, fraction / 4.0, 4);
    t.add_row({util::TablePrinter::pct(fraction, 0),
               util::TablePrinter::num(coarse.us_per_request, 1),
               util::TablePrinter::num(fine.us_per_request, 1),
               coarse.us_per_request > 0.05
                   ? util::TablePrinter::num(
                         fine.us_per_request / coarse.us_per_request, 1) + "x"
                   : "inf"});
  }
  t.print(std::cout);

  std::printf("\nHit rates at a fraction of each scheme's OWN table\n\n");
  util::TablePrinter t2({"DRAM / own table", "coarse hit", "fine hit"});
  for (const double fraction : {0.5, 0.25, 0.10, 0.05}) {
    const auto coarse = run_one(params, fraction, 1);
    const auto fine = run_one(params, fraction, 4);
    t2.add_row({util::TablePrinter::pct(fraction, 0),
                util::TablePrinter::pct(coarse.hit_rate, 1),
                util::TablePrinter::pct(fine.hit_rate, 1)});
  }
  t2.print(std::cout);
  std::printf(
      "\nReading: with DRAM sized for the coarse table (100%% row), the\n"
      "coarse/subFTL translation is free while fgmFTL -- whose table is 4x\n"
      "larger -- pays hundreds of microseconds per request in translation\n"
      "misses. subFTL keeps the coarse cost because its only fine-grained\n"
      "state is the small hash (one valid subpage per region page), pinned\n"
      "in DRAM by design: the paper's hybrid-mapping argument, priced in\n"
      "microseconds.\n");
  return 0;
}
