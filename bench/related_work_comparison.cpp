// Related-work comparison (paper Sec. 6): subFTL vs the sector-log hybrid
// of Jin et al. [9], plus the two Sec. 2 baselines.
//
// The paper's claim: sector-log shares subFTL's hybrid structure but
// "supports subpage programming at the logical level ... its performance
// suffers when synchronous small writes occur fairly frequently". Running
// all four FTLs on the sync-heavy and DB profiles isolates how much of
// subFTL's win comes from the hybrid STRUCTURE (sector-log has it) versus
// the ESP programming scheme (only subFTL has it).
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table_printer.h"

namespace {

using namespace esp;

double run_one(workload::Benchmark bench, core::FtlKind kind) {
  core::ExperimentSpec spec;
  spec.ssd = bench::scaled_config(kind);
  auto params = workload::benchmark_profile(
      bench, 0, 0, spec.ssd.geometry.subpages_per_page, 2017);
  const double write_fraction = 1.0 - params.read_fraction;
  const double avg_large =
      0.5 * (params.large_pages_min + params.large_pages_max) *
      params.sectors_per_page;
  const double avg_small =
      0.5 * (params.small_sectors_min + params.small_sectors_max);
  const double avg_write =
      params.r_small * avg_small + (1.0 - params.r_small) * avg_large;
  const auto reqs = [&](double budget) {
    return static_cast<std::uint64_t>(budget / (write_fraction * avg_write));
  };
  spec.warmup_requests = reqs(120000);
  params.request_count = spec.warmup_requests + reqs(60000);
  spec.workload = params;
  const auto result = core::run_experiment(spec);
  if (result.verify_failures)
    std::fprintf(stderr, "WARNING: verify failures (%s)\n",
                 result.ftl_name.c_str());
  return result.host_mb_per_sec;
}

}  // namespace

int main() {
  bench::print_header(
      "Related work -- sector-log hybrid [Jin+] vs subFTL (Sec. 6)");

  const auto kinds = {core::FtlKind::kCgm, core::FtlKind::kFgm,
                      core::FtlKind::kSectorLog, core::FtlKind::kSub};
  util::TablePrinter t({"benchmark", "cgmFTL", "fgmFTL", "sectorLogFTL",
                        "subFTL", "sub vs sectorLog"});
  for (const auto bench :
       {workload::Benchmark::kSysbench, workload::Benchmark::kVarmail,
        workload::Benchmark::kPostmark, workload::Benchmark::kTpcc}) {
    std::map<core::FtlKind, double> mbps;
    for (const auto kind : kinds) mbps[kind] = run_one(bench, kind);
    const double base = mbps[core::FtlKind::kCgm];
    t.add_row({workload::benchmark_name(bench),
               util::TablePrinter::num(1.0, 2),
               util::TablePrinter::num(mbps[core::FtlKind::kFgm] / base, 2),
               util::TablePrinter::num(
                   mbps[core::FtlKind::kSectorLog] / base, 2),
               util::TablePrinter::num(mbps[core::FtlKind::kSub] / base, 2),
               util::TablePrinter::pct(
                   mbps[core::FtlKind::kSub] /
                           mbps[core::FtlKind::kSectorLog] -
                       1.0,
                   1)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper Sec. 6): on sync-small-heavy workloads the\n"
      "sector-log hybrid performs like fgmFTL (each sync append still burns\n"
      "a padded full page) while subFTL's erase-free subpage programs pull\n"
      "ahead -- the gain isolates the ESP scheme itself.\n");
  return 0;
}
