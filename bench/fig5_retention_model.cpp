// Reproduces paper Fig. 5: impact of previous program operations on the
// retention capability of subpages.
//
// For each Npp^k type (k = number of program operations the word line saw
// before this subpage was programmed), the Monte-Carlo cell model measures
// retention BER right after 1K P/E cycles and after 1 and 2 months,
// normalized to the endurance BER (Npp^0 at t = 0) -- exactly the figure's
// axes. The behavioral RetentionModel the FTL simulator uses is printed
// alongside to show its calibration against the cell model.
//
// Published anchor points this regenerates:
//   * Npp^3 is ~41% worse than Npp^0 right after cycling;
//   * every type satisfies 1 month; Npp^3 fails at 2 months
//     ("uncorrectable errors" above the max ECC limit).
//
// Paper-scale population: defaults to 1,000 word lines per Npp type,
// fanned out over core/run_tasks. Seeds derive from stable task keys
// ("fig5/npp<k>/wl<i>"), tasks write into preallocated slots, and the
// reduction runs in input order on the joining thread, so results (and the
// --json payload) are bit-identical for any --jobs value.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/parallel_runner.h"
#include "ecc/ecc_model.h"
#include "nand/cell_model.h"
#include "nand/retention_model.h"
#include "telemetry/json.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace esp;

  constexpr std::uint32_t kSubpages = 4;
  constexpr std::uint32_t kCellsPerSubpage = 12000;
  constexpr std::uint64_t kBaseSeed = 7000;
  const std::vector<double> kMonths = {0.0, 1.0, 2.0};

  std::size_t wordlines = 1000;  // per Npp type
  unsigned jobs = 0;             // 0 = hardware concurrency
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--wordlines" && i + 1 < argc) {
      wordlines = std::strtoul(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--wordlines N] [--jobs N] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (wordlines == 0) {
    std::fprintf(stderr, "--wordlines must be > 0\n");
    return 2;
  }

  const ecc::EccModel ecc;
  const nand::RetentionModel behavioral;

  // Measure: for Npp^k, program slots 0..k and read slot k (the only one
  // with intact data) after each retention time. One task per (type, WL);
  // slot layout [((k * wordlines) + wl) * months + ti].
  const std::size_t n_months = kMonths.size();
  std::vector<double> ber(kSubpages * wordlines * n_months);
  const auto t0 = std::chrono::steady_clock::now();
  const unsigned jobs_used = core::run_tasks(
      jobs, kSubpages * wordlines, [&](std::size_t task) {
        const auto k = static_cast<std::uint32_t>(task / wordlines);
        const std::size_t wl_idx = task % wordlines;
        const auto seed = core::stable_cell_seed(
            "fig5/npp" + std::to_string(k) + "/wl" + std::to_string(wl_idx),
            kBaseSeed);
        nand::WordLine wl(kSubpages, kCellsPerSubpage, nand::CellModelParams{},
                          util::Xoshiro256(seed));
        for (std::uint32_t s = 0; s <= k; ++s) wl.program_subpage_random(s);
        for (std::size_t ti = 0; ti < n_months; ++ti)
          ber[task * n_months + ti] = wl.raw_ber(k, kMonths[ti]);
      });
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  double measured[kSubpages][3] = {};
  for (std::uint32_t k = 0; k < kSubpages; ++k) {
    for (std::size_t ti = 0; ti < n_months; ++ti) {
      util::RunningStats stats;
      for (std::size_t i = 0; i < wordlines; ++i)
        stats.add(ber[((k * wordlines) + i) * n_months + ti]);
      measured[k][ti] = stats.mean();
    }
  }

  const double endurance_ber = measured[0][0];  // Npp^0 right after 1K P/E
  const double ecc_limit_norm = ecc.spec().max_raw_ber() / endurance_ber;

  std::printf(
      "Fig. 5 -- Impact of previous program operations on subpage retention\n"
      "(cell model: %zu WLs/type, %u cells/subpage, 1K P/E, %u jobs; values "
      "normalized to the endurance BER)\n\n",
      wordlines, kCellsPerSubpage, jobs_used);

  util::TablePrinter t({"type", "right after 1K P/E", "after 1 month",
                        "after 2 months", "model @0", "model @1mo",
                        "model @2mo"});
  for (std::uint32_t k = 0; k < kSubpages; ++k) {
    std::vector<std::string> row = {"Npp^" + std::to_string(k)};
    for (int ti = 0; ti < 3; ++ti) {
      const double norm = measured[k][ti] / endurance_ber;
      row.push_back(util::TablePrinter::num(norm, 2) +
                    (norm > ecc_limit_norm ? " !" : ""));
    }
    for (const double months : kMonths)
      row.push_back(util::TablePrinter::num(
          behavioral.subpage_ber(k, months, 1000), 2));
    t.add_row(row);
  }
  t.print(std::cout);
  std::printf(
      "\nMaximum ECC limit (normalized): %.2f cell-model / %.2f behavioral; "
      "'!' marks uncorrectable.\n",
      ecc_limit_norm, behavioral.params().ecc_limit);

  const double ratio = measured[3][0] / measured[0][0];
  std::printf("Npp^3 vs Npp^0 right after 1K P/E: +%.0f%% (paper: +41%%)\n",
              (ratio - 1.0) * 100.0);

  const bool ok =
      ratio > 1.1 && ratio < 2.0 &&
      measured[3][1] / endurance_ber <= ecc_limit_norm &&  // 1 month OK
      measured[3][2] / endurance_ber > ecc_limit_norm;     // 2 months fails
  std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.kv("figure", "fig5_retention_model");
    w.newline();
    // Host-side provenance: wall time and job count vary run to run.
    // Determinism checks must diff "config" and "results" only.
    w.key("run");
    w.begin_object();
    w.kv("jobs", static_cast<std::uint64_t>(jobs_used));
    w.kv("wall_seconds", wall_seconds);
    w.end_object();
    w.newline();
    w.key("config");
    w.begin_object();
    w.kv("wordlines_per_type", static_cast<std::uint64_t>(wordlines));
    w.kv("subpages", static_cast<std::uint64_t>(kSubpages));
    w.kv("cells_per_subpage", static_cast<std::uint64_t>(kCellsPerSubpage));
    w.kv("base_seed", kBaseSeed);
    w.key("months");
    w.begin_array();
    for (const double m : kMonths) w.value(m);
    w.end_array();
    w.end_object();
    w.newline();
    w.key("results");
    w.begin_object();
    w.kv("endurance_ber", endurance_ber);
    w.kv("ecc_limit_normalized", ecc_limit_norm);
    w.kv("npp3_vs_npp0_ratio", ratio);
    w.kv("shape_check_pass", ok);
    w.newline();
    w.key("normalized_mean_ber");
    w.begin_object();
    for (std::uint32_t k = 0; k < kSubpages; ++k) {
      w.key("npp" + std::to_string(k));
      w.begin_array();
      for (int ti = 0; ti < 3; ++ti)
        w.value(measured[k][ti] / endurance_ber);
      w.end_array();
    }
    w.end_object();
    w.newline();
    w.key("per_wl_raw_ber");
    w.begin_object();
    for (std::uint32_t k = 0; k < kSubpages; ++k) {
      for (std::size_t ti = 0; ti < n_months; ++ti) {
        w.key("npp" + std::to_string(k) + "_month" + std::to_string(ti));
        w.begin_array();
        for (std::size_t i = 0; i < wordlines; ++i)
          w.value(ber[((k * wordlines) + i) * n_months + ti]);
        w.end_array();
        w.newline();
      }
    }
    w.end_object();
    w.end_object();
    w.end_object();
    os << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  return ok ? 0 : 1;
}
