// Reproduces paper Fig. 5: impact of previous program operations on the
// retention capability of subpages.
//
// For each Npp^k type (k = number of program operations the word line saw
// before this subpage was programmed), the Monte-Carlo cell model measures
// retention BER right after 1K P/E cycles and after 1 and 2 months,
// normalized to the endurance BER (Npp^0 at t = 0) -- exactly the figure's
// axes. The behavioral RetentionModel the FTL simulator uses is printed
// alongside to show its calibration against the cell model.
//
// Published anchor points this regenerates:
//   * Npp^3 is ~41% worse than Npp^0 right after cycling;
//   * every type satisfies 1 month; Npp^3 fails at 2 months
//     ("uncorrectable errors" above the max ECC limit).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ecc/ecc_model.h"
#include "nand/cell_model.h"
#include "nand/retention_model.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main() {
  using namespace esp;

  constexpr std::uint32_t kSubpages = 4;
  constexpr std::uint32_t kCellsPerSubpage = 12000;
  constexpr int kWordLinesPerType = 24;
  const std::vector<double> kMonths = {0.0, 1.0, 2.0};

  const ecc::EccModel ecc;
  const nand::RetentionModel behavioral;

  // Measure: for Npp^k, program slots 0..k and read slot k (the only one
  // with intact data) after each retention time.
  double measured[kSubpages][3] = {};
  for (std::uint32_t k = 0; k < kSubpages; ++k) {
    for (std::size_t ti = 0; ti < kMonths.size(); ++ti) {
      util::RunningStats stats;
      for (int wl_idx = 0; wl_idx < kWordLinesPerType; ++wl_idx) {
        nand::WordLine wl(kSubpages, kCellsPerSubpage, nand::CellModelParams{},
                          util::Xoshiro256(7000 + 100 * k + wl_idx));
        for (std::uint32_t s = 0; s <= k; ++s) wl.program_subpage_random(s);
        stats.add(wl.raw_ber(k, kMonths[ti]));
      }
      measured[k][ti] = stats.mean();
    }
  }

  const double endurance_ber = measured[0][0];  // Npp^0 right after 1K P/E
  const double ecc_limit_norm = ecc.spec().max_raw_ber() / endurance_ber;

  std::printf(
      "Fig. 5 -- Impact of previous program operations on subpage retention\n"
      "(cell model: %d WLs/type, %u cells/subpage, 1K P/E; values normalized "
      "to the endurance BER)\n\n",
      kWordLinesPerType, kCellsPerSubpage);

  util::TablePrinter t({"type", "right after 1K P/E", "after 1 month",
                        "after 2 months", "model @0", "model @1mo",
                        "model @2mo"});
  for (std::uint32_t k = 0; k < kSubpages; ++k) {
    std::vector<std::string> row = {"Npp^" + std::to_string(k)};
    for (int ti = 0; ti < 3; ++ti) {
      const double norm = measured[k][ti] / endurance_ber;
      row.push_back(util::TablePrinter::num(norm, 2) +
                    (norm > ecc_limit_norm ? " !" : ""));
    }
    for (const double months : kMonths)
      row.push_back(util::TablePrinter::num(
          behavioral.subpage_ber(k, months, 1000), 2));
    t.add_row(row);
  }
  t.print(std::cout);
  std::printf(
      "\nMaximum ECC limit (normalized): %.2f cell-model / %.2f behavioral; "
      "'!' marks uncorrectable.\n",
      ecc_limit_norm, behavioral.params().ecc_limit);

  const double ratio = measured[3][0] / measured[0][0];
  std::printf("Npp^3 vs Npp^0 right after 1K P/E: +%.0f%% (paper: +41%%)\n",
              (ratio - 1.0) * 100.0);

  const bool ok =
      ratio > 1.1 && ratio < 2.0 &&
      measured[3][1] / endurance_ber <= ecc_limit_norm &&  // 1 month OK
      measured[3][2] / endurance_ber > ecc_limit_norm;     // 2 months fails
  std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
