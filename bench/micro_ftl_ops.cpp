// Google-benchmark micro-benchmarks of the simulator's hot paths: these
// bound the wall-clock cost of the figure-reproduction benches and catch
// accidental complexity regressions in the FTL data structures.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/ssd.h"
#include "ftl/block_allocator.h"
#include "ftl/fullpage_pool.h"
#include "ftl/subpage_pool.h"
#include "ftl/write_buffer.h"
#include "nand/cell_model.h"
#include "nand/device.h"
#include "util/rng.h"
#include "util/zipf.h"
#include "workload/synthetic.h"

namespace {

using namespace esp;

void BM_RngDraw(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_RngDraw);

void BM_ZipfSample(benchmark::State& state) {
  util::ScatteredZipf zipf(1 << 20, 0.9);
  util::Xoshiro256 rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample);

void BM_WorkloadNext(benchmark::State& state) {
  workload::SyntheticParams params;
  params.footprint_sectors = 1 << 20;
  params.request_count = ~0ull >> 1;
  params.r_small = 0.8;
  params.read_fraction = 0.3;
  workload::SyntheticWorkload stream(params);
  for (auto _ : state) benchmark::DoNotOptimize(stream.next());
}
BENCHMARK(BM_WorkloadNext);

void BM_WriteBufferInsertExtract(benchmark::State& state) {
  ftl::WriteBuffer buffer(4096);
  util::Xoshiro256 rng(3);
  for (auto _ : state) {
    const std::uint64_t sector = rng.below(1 << 16);
    buffer.insert(sector, sector + 1, true);
    if (buffer.size() > 2048)
      benchmark::DoNotOptimize(buffer.extract_oldest_page_group(4));
  }
}
BENCHMARK(BM_WriteBufferInsertExtract);

void BM_DeviceSubpageProgram(benchmark::State& state) {
  nand::Geometry geo;
  geo.channels = 8;
  geo.chips_per_channel = 4;
  geo.blocks_per_chip = 8;
  geo.pages_per_block = 128;
  nand::NandDevice dev(geo);
  SimTime now = 0.0;
  std::uint64_t i = 0;
  const std::uint64_t slots = geo.total_subpages();
  for (auto _ : state) {
    if (i >= slots) {  // wrap: erase everything and restart
      state.PauseTiming();
      for (std::uint32_t c = 0; c < geo.total_chips(); ++c)
        for (std::uint32_t b = 0; b < geo.blocks_per_chip; ++b)
          dev.erase_block(c, b, now);
      i = 0;
      state.ResumeTiming();
    }
    const nand::AddressCodec codec(geo);
    const auto addr = codec.decode_subpage(i++);
    now = dev.program_subpage(addr, i, now).done;
  }
}
BENCHMARK(BM_DeviceSubpageProgram);

void BM_SsdSyncSmallWrite(benchmark::State& state) {
  core::SsdConfig cfg;
  nand::Geometry geo;
  geo.channels = 4;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 32;
  geo.pages_per_block = 64;
  cfg.geometry = geo;
  cfg.ftl = core::FtlKind::kSub;
  cfg.logical_fraction = 0.6;
  core::Ssd ssd(cfg);
  ssd.precondition(0.5);
  util::Xoshiro256 rng(4);
  const std::uint64_t sectors = ssd.logical_sectors() / 8;
  for (auto _ : state) {
    const std::uint64_t sector = rng.below(sectors);
    ssd.driver().submit(
        {workload::Request::Type::kWrite, sector, 1, true, 0.0}, false);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SsdSyncSmallWrite);

// ---------------------------------------------------------------------------
// Maintenance-path asymptotics (the production-scale replay work).
//
// Each BM_Maint* benchmark times ONE steady-state maintenance call --
// retention scan, static wear leveling, idle-block release -- on a device
// whose block count is the benchmark argument, in both implementations:
// Arg(1) == 1 selects the original O(device)/O(owned) reference scans
// (Config::reference_scan_maintenance), Arg(1) == 0 the incremental
// indices. The interesting read-out is the growth ACROSS the block-count
// range: the scan rows grow linearly, the index rows must stay flat.
// Decisions are bit-identical between the two modes (see
// docs/PERFORMANCE.md); here only the per-call cost differs.
//
// The harness populates a SubpagePool at level 0 with one live subpage per
// page and never expires or unbalances anything, so every timed call is the
// no-eviction fast path -- pure traversal/index overhead, no flash work.

/// A standalone subpage region on an 8-chip device: Arg blocks per chip,
/// half given to the pool. Kept small enough that setup (one write per
/// page of every owned block) stays in the low milliseconds.
struct MaintHarness {
  nand::Geometry geo;
  std::unique_ptr<nand::NandDevice> dev;
  std::unique_ptr<ftl::BlockAllocator> allocator;
  ftl::FtlStats stats;
  std::unique_ptr<ftl::SubpagePool> pool;
  SimTime now = 0.0;

  MaintHarness(std::uint32_t blocks_per_chip, bool reference_scan) {
    geo.channels = 4;
    geo.chips_per_channel = 2;
    geo.blocks_per_chip = blocks_per_chip;
    geo.pages_per_block = 64;
    dev = std::make_unique<nand::NandDevice>(geo);
    allocator = std::make_unique<ftl::BlockAllocator>(geo);
    ftl::SubpagePool::Config cfg;
    cfg.quota_blocks = geo.total_blocks() / 2;
    cfg.retention_evict_age = 15 * sim_time::kDay;
    cfg.reference_scan_maintenance = reference_scan;
    pool = std::make_unique<ftl::SubpagePool>(
        *dev, *allocator, cfg, stats, /*place=*/
        [](std::uint64_t, std::uint64_t) {},
        /*evict=*/
        [this](std::span<const ftl::SectorWrite>, SimTime t, bool) {
          return t;
        },
        /*hot=*/[](std::uint64_t) { return false; },
        /*kept=*/[](std::uint64_t) {});
    // One live subpage per page of every quota block (level 0 fills the
    // 0th slot of each page before any block advances).
    const std::uint64_t sectors = cfg.quota_blocks * geo.pages_per_block;
    for (std::uint64_t s = 0; s < sectors; ++s) {
      now = pool->write_sector(s, ftl::make_token(s, 1), now).second;
      now += 1.0;  // distinct written_at per page
    }
  }
};

void BM_MaintRetentionScan(benchmark::State& state) {
  MaintHarness h(static_cast<std::uint32_t>(state.range(0)),
                 state.range(1) != 0);
  // Well before any page's eviction age: every call scans and finds
  // nothing (the steady state between expiry waves).
  const SimTime at = h.now + sim_time::kDay;
  for (auto _ : state) benchmark::DoNotOptimize(h.pool->retention_scan(at));
  state.SetLabel(state.range(1) ? "scan" : "index");
}
BENCHMARK(BM_MaintRetentionScan)
    ->ArgsProduct({{128, 512, 2048}, {1, 0}})
    ->Unit(benchmark::kMicrosecond);

void BM_MaintStaticWearLevel(benchmark::State& state) {
  MaintHarness h(static_cast<std::uint32_t>(state.range(0)),
                 state.range(1) != 0);
  // Uniform wear, huge threshold: the call locates the least-worn sealed
  // block and decides "balanced" -- the every-wl_check_interval fast path.
  for (auto _ : state)
    benchmark::DoNotOptimize(h.pool->static_wear_level(h.now, 1u << 30));
  state.SetLabel(state.range(1) ? "scan" : "index");
}
BENCHMARK(BM_MaintStaticWearLevel)
    ->ArgsProduct({{128, 512, 2048}, {1, 0}})
    ->Unit(benchmark::kMicrosecond);

void BM_MaintReleaseIdleBlocks(benchmark::State& state) {
  MaintHarness h(static_cast<std::uint32_t>(state.range(0)),
                 state.range(1) != 0);
  // Every owned block still holds valid data: each call is the "nothing to
  // release" probe the owning FTL issues whenever free blocks run low.
  for (auto _ : state)
    benchmark::DoNotOptimize(h.pool->release_idle_blocks(h.now));
  state.SetLabel(state.range(1) ? "scan" : "index");
}
BENCHMARK(BM_MaintReleaseIdleBlocks)
    ->ArgsProduct({{128, 512, 2048}, {1, 0}})
    ->Unit(benchmark::kMicrosecond);

// GC allocation churn (FullPagePool::collect_block): steady-state greedy GC
// driven by random full-page overwrites over a small logical space. Before
// the BlockMeta arena (retire_meta_arrays/init_meta_arrays) and the pooled
// GC-token scratch, every collected block freed and re-grew its per-page
// vectors, so this benchmark's ns/op tracked the allocator; now the arrays
// recycle and the timed loop is allocation-free after warm-up.
void BM_FullPoolGcChurn(benchmark::State& state) {
  nand::Geometry geo;
  geo.channels = 4;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 64;
  geo.pages_per_block = 64;
  nand::NandDevice dev(geo);
  ftl::BlockAllocator allocator(geo);
  ftl::FtlStats stats;
  const std::uint64_t lpns =
      geo.total_pages() * 7 / 10;  // 30% over-provisioning
  std::vector<std::uint64_t> page_of(lpns, ~0ull);
  ftl::FullPagePool::Config cfg;
  cfg.reserve_free_blocks = 8;
  ftl::FullPagePool pool(
      dev, allocator, cfg, stats,
      [&page_of](std::uint64_t lpn, std::uint64_t lin) {
        page_of[lpn] = lin;
      });
  std::vector<std::uint64_t> tokens(geo.subpages_per_page);
  util::Xoshiro256 rng(6);
  SimTime now = 0.0;
  auto write = [&](std::uint64_t lpn) {
    for (std::uint32_t s = 0; s < geo.subpages_per_page; ++s)
      tokens[s] = ftl::make_token(lpn * geo.subpages_per_page + s, 1);
    if (page_of[lpn] != ~0ull) pool.invalidate(page_of[lpn]);
    const auto [lin, done] = pool.write_page(lpn, tokens, now);
    page_of[lpn] = lin;
    now = done;
  };
  for (std::uint64_t lpn = 0; lpn < lpns; ++lpn) write(lpn);  // fill
  for (auto _ : state) write(rng.below(lpns));  // steady-state GC
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPoolGcChurn);

void BM_CellModelProgram(benchmark::State& state) {
  nand::WordLine wl(4, 8192, nand::CellModelParams{}, util::Xoshiro256(5));
  for (auto _ : state) {
    if (wl.slots_programmed() == 4) wl.erase();
    wl.program_subpage_random(wl.slots_programmed());
  }
}
BENCHMARK(BM_CellModelProgram);

}  // namespace

BENCHMARK_MAIN();
