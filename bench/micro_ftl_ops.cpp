// Google-benchmark micro-benchmarks of the simulator's hot paths: these
// bound the wall-clock cost of the figure-reproduction benches and catch
// accidental complexity regressions in the FTL data structures.
#include <benchmark/benchmark.h>

#include "core/ssd.h"
#include "ftl/write_buffer.h"
#include "nand/cell_model.h"
#include "nand/device.h"
#include "util/rng.h"
#include "util/zipf.h"
#include "workload/synthetic.h"

namespace {

using namespace esp;

void BM_RngDraw(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_RngDraw);

void BM_ZipfSample(benchmark::State& state) {
  util::ScatteredZipf zipf(1 << 20, 0.9);
  util::Xoshiro256 rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample);

void BM_WorkloadNext(benchmark::State& state) {
  workload::SyntheticParams params;
  params.footprint_sectors = 1 << 20;
  params.request_count = ~0ull >> 1;
  params.r_small = 0.8;
  params.read_fraction = 0.3;
  workload::SyntheticWorkload stream(params);
  for (auto _ : state) benchmark::DoNotOptimize(stream.next());
}
BENCHMARK(BM_WorkloadNext);

void BM_WriteBufferInsertExtract(benchmark::State& state) {
  ftl::WriteBuffer buffer(4096);
  util::Xoshiro256 rng(3);
  for (auto _ : state) {
    const std::uint64_t sector = rng.below(1 << 16);
    buffer.insert(sector, sector + 1, true);
    if (buffer.size() > 2048)
      benchmark::DoNotOptimize(buffer.extract_oldest_page_group(4));
  }
}
BENCHMARK(BM_WriteBufferInsertExtract);

void BM_DeviceSubpageProgram(benchmark::State& state) {
  nand::Geometry geo;
  geo.channels = 8;
  geo.chips_per_channel = 4;
  geo.blocks_per_chip = 8;
  geo.pages_per_block = 128;
  nand::NandDevice dev(geo);
  SimTime now = 0.0;
  std::uint64_t i = 0;
  const std::uint64_t slots = geo.total_subpages();
  for (auto _ : state) {
    if (i >= slots) {  // wrap: erase everything and restart
      state.PauseTiming();
      for (std::uint32_t c = 0; c < geo.total_chips(); ++c)
        for (std::uint32_t b = 0; b < geo.blocks_per_chip; ++b)
          dev.erase_block(c, b, now);
      i = 0;
      state.ResumeTiming();
    }
    const nand::AddressCodec codec(geo);
    const auto addr = codec.decode_subpage(i++);
    now = dev.program_subpage(addr, i, now).done;
  }
}
BENCHMARK(BM_DeviceSubpageProgram);

void BM_SsdSyncSmallWrite(benchmark::State& state) {
  core::SsdConfig cfg;
  nand::Geometry geo;
  geo.channels = 4;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 32;
  geo.pages_per_block = 64;
  cfg.geometry = geo;
  cfg.ftl = core::FtlKind::kSub;
  cfg.logical_fraction = 0.6;
  core::Ssd ssd(cfg);
  ssd.precondition(0.5);
  util::Xoshiro256 rng(4);
  const std::uint64_t sectors = ssd.logical_sectors() / 8;
  for (auto _ : state) {
    const std::uint64_t sector = rng.below(sectors);
    ssd.driver().submit(
        {workload::Request::Type::kWrite, sector, 1, true, 0.0}, false);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SsdSyncSmallWrite);

void BM_CellModelProgram(benchmark::State& state) {
  nand::WordLine wl(4, 8192, nand::CellModelParams{}, util::Xoshiro256(5));
  for (auto _ : state) {
    if (wl.slots_programmed() == 4) wl.erase();
    wl.program_subpage_random(wl.slots_programmed());
  }
}
BENCHMARK(BM_CellModelProgram);

}  // namespace

BENCHMARK_MAIN();
