// Reproduces paper Fig. 4: the effect of subpage programming on NAND
// reliability, using the Monte-Carlo cell model.
//
// Two subpages sp1, sp2 on one word line:
//   (a) after programming sp1 alone, both behave normally;
//   (b) after the subsequent sp2 program WITHOUT an intervening erase,
//       sp1's data is corrupted beyond the ECC limit ("uncorrectable
//       failure") while sp2 stores data within the limit ("constrained
//       normal program") -- the asymmetry that makes ESP viable.
//
// Paper-scale population (the paper characterizes 81,920 pages over 20
// chips): defaults to 1,000 word lines, fanned out over core/run_tasks.
// Each word line's seed derives from its stable key ("fig4/wl/<i>"), tasks
// write into preallocated slots, and aggregation happens on the joining
// thread in input order -- so every number (and the --json payload) is
// bit-identical for any --jobs value.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/parallel_runner.h"
#include "ecc/ecc_model.h"
#include "nand/cell_model.h"
#include "telemetry/json.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace esp;

  constexpr std::uint32_t kCellsPerSubpage = 4096 * 8 / 3 + 1;  // ~4KB data
  constexpr std::uint64_t kBaseSeed = 1000;

  std::size_t wordlines = 1000;  // Monte-Carlo population
  unsigned jobs = 0;             // 0 = hardware concurrency
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--wordlines" && i + 1 < argc) {
      wordlines = std::strtoul(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--wordlines N] [--jobs N] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (wordlines == 0) {
    std::fprintf(stderr, "--wordlines must be > 0\n");
    return 2;
  }

  const ecc::EccModel ecc;
  const double ecc_limit_ber = ecc.spec().max_raw_ber();

  // Per-WL result slots, written by the fan-out, reduced in input order.
  std::vector<double> sp1_alone_ber(wordlines);
  std::vector<double> sp1_after_ber(wordlines);
  std::vector<double> sp2_after_ber(wordlines);

  const auto t0 = std::chrono::steady_clock::now();
  const unsigned jobs_used =
      core::run_tasks(jobs, wordlines, [&](std::size_t i) {
        const auto seed = core::stable_cell_seed(
            "fig4/wl/" + std::to_string(i), kBaseSeed);
        nand::WordLine wl(2, kCellsPerSubpage, nand::CellModelParams{},
                          util::Xoshiro256(seed));
        wl.program_subpage_random(0);            // sp1 @ t1
        sp1_alone_ber[i] = wl.raw_ber(0, 0.0);   // Fig. 4(a): normal program
        wl.program_subpage_random(1);            // sp2 @ t1 + dt, no erase
        sp1_after_ber[i] = wl.raw_ber(0, 0.0);   // Fig. 4(b): destroyed
        sp2_after_ber[i] = wl.raw_ber(1, 0.0);   // Fig. 4(b): constrained
      });
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  util::RunningStats sp1_alone, sp1_after, sp2_after;
  for (std::size_t i = 0; i < wordlines; ++i) {
    sp1_alone.add(sp1_alone_ber[i]);
    sp1_after.add(sp1_after_ber[i]);
    sp2_after.add(sp2_after_ber[i]);
  }

  std::printf(
      "Fig. 4 -- Effect of subpage programming on NAND reliability\n"
      "(%zu word lines x %u cells/subpage, TLC cell model, %u jobs; "
      "ECC limit = %.2e raw BER)\n\n",
      wordlines, kCellsPerSubpage, jobs_used, ecc_limit_ber);

  util::TablePrinter t({"state", "raw BER (mean)", "vs ECC limit", "verdict"});
  auto verdict = [&](double ber) {
    return ber <= ecc_limit_ber ? std::string("correctable")
                                : std::string("UNCORRECTABLE");
  };
  auto row = [&](const char* label, const util::RunningStats& s) {
    t.add_row({label, util::TablePrinter::num(s.mean(), 6),
               util::TablePrinter::num(s.mean() / ecc_limit_ber, 2) + "x",
               verdict(s.mean())});
  };
  row("(a) sp1 after its own program (normal)", sp1_alone);
  row("(b) sp1 after sp2's program (destroyed)", sp1_after);
  row("(b) sp2 after its program (constrained)", sp2_after);
  t.print(std::cout);

  std::printf(
      "\nExpected shape (paper): sp1's BER explodes past the ECC limit once "
      "sp2 is\nprogrammed (coupling + program disturbance), while sp2 -- "
      "inhibited during\nsp1's program -- stores data within the limit, at "
      "a reduced retention budget.\n");

  const bool ok = sp1_alone.mean() <= ecc_limit_ber &&
                  sp1_after.mean() > ecc_limit_ber &&
                  sp2_after.mean() <= ecc_limit_ber;
  std::printf("\nshape check: %s\n", ok ? "PASS" : "FAIL");

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.kv("figure", "fig4_esp_reliability");
    w.newline();
    // Host-side provenance: wall time and job count vary run to run.
    // Determinism checks must diff "config" and "results" only.
    w.key("run");
    w.begin_object();
    w.kv("jobs", static_cast<std::uint64_t>(jobs_used));
    w.kv("wall_seconds", wall_seconds);
    w.end_object();
    w.newline();
    w.key("config");
    w.begin_object();
    w.kv("wordlines", static_cast<std::uint64_t>(wordlines));
    w.kv("cells_per_subpage", static_cast<std::uint64_t>(kCellsPerSubpage));
    w.kv("base_seed", kBaseSeed);
    w.kv("ecc_limit_raw_ber", ecc_limit_ber);
    w.end_object();
    w.newline();
    w.key("results");
    w.begin_object();
    w.kv("sp1_alone_mean_ber", sp1_alone.mean());
    w.kv("sp1_after_mean_ber", sp1_after.mean());
    w.kv("sp2_after_mean_ber", sp2_after.mean());
    w.kv("shape_check_pass", ok);
    w.newline();
    auto per_wl = [&](const char* key, const std::vector<double>& v) {
      w.key(key);
      w.begin_array();
      for (const double x : v) w.value(x);
      w.end_array();
      w.newline();
    };
    per_wl("sp1_alone_ber", sp1_alone_ber);
    per_wl("sp1_after_ber", sp1_after_ber);
    per_wl("sp2_after_ber", sp2_after_ber);
    w.end_object();
    w.end_object();
    os << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  return ok ? 0 : 1;
}
