// Reproduces paper Fig. 4: the effect of subpage programming on NAND
// reliability, using the Monte-Carlo cell model.
//
// Two subpages sp1, sp2 on one word line:
//   (a) after programming sp1 alone, both behave normally;
//   (b) after the subsequent sp2 program WITHOUT an intervening erase,
//       sp1's data is corrupted beyond the ECC limit ("uncorrectable
//       failure") while sp2 stores data within the limit ("constrained
//       normal program") -- the asymmetry that makes ESP viable.
#include <cstdio>
#include <iostream>
#include <string>

#include "ecc/ecc_model.h"
#include "nand/cell_model.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main() {
  using namespace esp;

  constexpr std::uint32_t kCellsPerSubpage = 4096 * 8 / 3 + 1;  // ~4KB data
  constexpr int kWordLines = 40;  // Monte-Carlo population

  const ecc::EccModel ecc;
  const double ecc_limit_ber = ecc.spec().max_raw_ber();

  util::RunningStats sp1_alone, sp2_after, sp1_after;
  for (int wl_idx = 0; wl_idx < kWordLines; ++wl_idx) {
    nand::WordLine wl(2, kCellsPerSubpage, nand::CellModelParams{},
                      util::Xoshiro256(1000 + wl_idx));
    wl.program_subpage_random(0);         // sp1 @ t1
    sp1_alone.add(wl.raw_ber(0, 0.0));    // Fig. 4(a): normal program
    wl.program_subpage_random(1);         // sp2 @ t1 + dt, no erase
    sp1_after.add(wl.raw_ber(0, 0.0));    // Fig. 4(b): destroyed
    sp2_after.add(wl.raw_ber(1, 0.0));    // Fig. 4(b): constrained normal
  }

  std::printf(
      "Fig. 4 -- Effect of subpage programming on NAND reliability\n"
      "(%d word lines x %u cells/subpage, TLC cell model; "
      "ECC limit = %.2e raw BER)\n\n",
      kWordLines, kCellsPerSubpage, ecc_limit_ber);

  util::TablePrinter t({"state", "raw BER (mean)", "vs ECC limit", "verdict"});
  auto verdict = [&](double ber) {
    return ber <= ecc_limit_ber ? std::string("correctable")
                                : std::string("UNCORRECTABLE");
  };
  auto row = [&](const char* label, const util::RunningStats& s) {
    t.add_row({label, util::TablePrinter::num(s.mean(), 6),
               util::TablePrinter::num(s.mean() / ecc_limit_ber, 2) + "x",
               verdict(s.mean())});
  };
  row("(a) sp1 after its own program (normal)", sp1_alone);
  row("(b) sp1 after sp2's program (destroyed)", sp1_after);
  row("(b) sp2 after its program (constrained)", sp2_after);
  t.print(std::cout);

  std::printf(
      "\nExpected shape (paper): sp1's BER explodes past the ECC limit once "
      "sp2 is\nprogrammed (coupling + program disturbance), while sp2 -- "
      "inhibited during\nsp1's program -- stores data within the limit, at "
      "a reduced retention budget.\n");

  const bool ok = sp1_alone.mean() <= ecc_limit_ber &&
                  sp1_after.mean() > ecc_limit_ber &&
                  sp2_after.mean() <= ecc_limit_ber;
  std::printf("\nshape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
