// Reproduces paper Fig. 1: the historical trend of NAND page size and
// per-die capacity across technology nodes (intro motivation figure).
//
// This is published industry data (ISSCC/flash-memory-summit datasheets),
// not simulation output; the bench prints the series the figure plots and
// derives the observation the paper builds on: page size grew 64x while
// the host's dominant small-write unit stayed at 4 KB.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "util/table_printer.h"

namespace {

struct NodePoint {
  const char* node;      // technology node label
  const char* year;      // approximate volume year
  double capacity_gbit;  // per-die capacity
  double page_kb;        // physical page size
};

// Series digitized from the paper's Fig. 1 (SLC/MLC/TLC mainstream parts).
const std::vector<NodePoint> kTrend = {
    {"300nm", "~2000", 0.25, 0.25}, {"200nm", "~2002", 0.5, 0.5},
    {"130nm", "~2004", 1, 2},       {"70nm", "~2006", 8, 4},
    {"60nm", "~2007", 16, 4},       {"50nm", "~2008", 32, 8},
    {"4Xnm", "~2009", 64, 8},       {"3Xnm", "~2010", 128, 8},
    {"2Xnm", "~2012", 128, 16},     {"2Ynm", "~2013", 256, 16},
    {"1Xnm", "~2015", 384, 16},     {"1Ynm", "~2016", 512, 16},
};

}  // namespace

int main() {
  std::printf(
      "Fig. 1 -- Trend of the NAND page size and capacity\n"
      "(industry data as digitized from the paper's figure)\n\n");
  esp::util::TablePrinter t(
      {"node", "year", "capacity (Gbit)", "page size (KB)",
       "4-KB writes per page"});
  for (const auto& p : kTrend)
    t.add_row({p.node, p.year, esp::util::TablePrinter::num(p.capacity_gbit, 2),
               esp::util::TablePrinter::num(p.page_kb, 2),
               esp::util::TablePrinter::num(p.page_kb / 4.0, 2)});
  t.print(std::cout);

  const auto& first = kTrend.front();
  const auto& last = kTrend.back();
  std::printf(
      "\nPage size grew %.0fx (%.2f KB -> %.0f KB) while capacity grew "
      "%.0fx;\na 4-KB host write now fills only 1/%.0f of a physical page "
      "-- the\nlarge-page problem the ESP scheme addresses.\n",
      last.page_kb / first.page_kb, first.page_kb, last.page_kb,
      last.capacity_gbit / first.capacity_gbit, last.page_kb / 4.0);
  return 0;
}
