// Micro-benchmarks of the Monte-Carlo cell-model kernel: scalar reference
// (the pre-SoA model, frozen in scalar_cell_model_ref.h) vs the batched
// CellArray kernel, on the two paths that dominate fig4/fig5
// characterization runs:
//
//   * the program path (erase + sequential subpage programs, including the
//     within-WL disturb sweeps) -- items/sec counts every cell TOUCHED
//     (programmed or disturbed), so both models are scored on identical
//     physics work;
//   * the bit-error path (retention drift + read-level quantization + Gray
//     bit-error reduction) -- items/sec counts cells read.
//
// Also measured: the batched Gaussian primitives against the scalar
// polar-method sampler, and the parallel fan-out of a word-line population
// over core/run_tasks. Reference numbers live in BENCH_cellmodel.json; the
// acceptance bar for the SoA port is >= 10x cells/sec on both paths.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/parallel_runner.h"
#include "nand/cell_array.h"
#include "nand/cell_model.h"
#include "scalar_cell_model_ref.h"
#include "util/batch_math.h"
#include "util/rng.h"

namespace {

using namespace esp;

constexpr std::uint32_t kSubpages = 4;
constexpr std::uint32_t kCells = 8192;  // per subpage; ~TLC 4KB subpage

// Cells touched by one full-WL program sequence: each of the kSubpages
// program ops sweeps the whole word line (programmed cells + inhibited
// disturbs).
constexpr std::uint64_t kProgramTouched =
    std::uint64_t{kSubpages} * kSubpages * kCells;

void BM_ScalarProgramPath(benchmark::State& state) {
  bench::ScalarWordLineRef wl(kSubpages, kCells, nand::CellModelParams{},
                              util::Xoshiro256(11));
  for (auto _ : state) {
    wl.erase();
    for (std::uint32_t s = 0; s < kSubpages; ++s) wl.program_subpage_random(s);
    benchmark::DoNotOptimize(wl.slots_programmed());
  }
  state.SetItemsProcessed(state.iterations() * kProgramTouched);
  state.counters["cells_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kProgramTouched),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScalarProgramPath);

void BM_SoaProgramPath(benchmark::State& state) {
  nand::WordLine wl(kSubpages, kCells, nand::CellModelParams{},
                    util::Xoshiro256(11));
  for (auto _ : state) {
    wl.erase();
    for (std::uint32_t s = 0; s < kSubpages; ++s) wl.program_subpage_random(s);
    benchmark::DoNotOptimize(wl.slots_programmed());
  }
  state.SetItemsProcessed(state.iterations() * kProgramTouched);
  state.counters["cells_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kProgramTouched),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SoaProgramPath);

void BM_ScalarBitErrorPath(benchmark::State& state) {
  bench::ScalarWordLineRef wl(kSubpages, kCells, nand::CellModelParams{},
                              util::Xoshiro256(12));
  for (std::uint32_t s = 0; s < kSubpages; ++s) wl.program_subpage_random(s);
  for (auto _ : state) {
    for (std::uint32_t s = 0; s < kSubpages; ++s)
      benchmark::DoNotOptimize(wl.count_bit_errors(s, 1.0));
  }
  const std::uint64_t cells_read =
      state.iterations() * std::uint64_t{kSubpages} * kCells;
  state.SetItemsProcessed(cells_read);
  state.counters["cells_per_sec"] = benchmark::Counter(
      static_cast<double>(cells_read), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScalarBitErrorPath);

void BM_SoaBitErrorPath(benchmark::State& state) {
  nand::WordLine wl(kSubpages, kCells, nand::CellModelParams{},
                    util::Xoshiro256(12));
  for (std::uint32_t s = 0; s < kSubpages; ++s) wl.program_subpage_random(s);
  for (auto _ : state) {
    for (std::uint32_t s = 0; s < kSubpages; ++s)
      benchmark::DoNotOptimize(wl.count_bit_errors(s, 1.0));
  }
  const std::uint64_t cells_read =
      state.iterations() * std::uint64_t{kSubpages} * kCells;
  state.SetItemsProcessed(cells_read);
  state.counters["cells_per_sec"] = benchmark::Counter(
      static_cast<double>(cells_read), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SoaBitErrorPath);

void BM_ScalarGaussian(benchmark::State& state) {
  util::Xoshiro256 rng(13);
  double acc = 0.0;
  for (auto _ : state) acc += rng.gaussian();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScalarGaussian);

void BM_BatchedGaussianFill(benchmark::State& state) {
  util::Xoshiro256 rng(13);
  std::vector<float> out(16384);
  for (auto _ : state) {
    util::gaussian_fill(rng, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * out.size());
}
BENCHMARK(BM_BatchedGaussianFill);

void BM_BatchedClippedDisturb(benchmark::State& state) {
  util::Xoshiro256 rng(14);
  std::vector<float> vth(16384, -3.0f);
  for (auto _ : state) {
    util::add_clipped_gaussian(rng, vth, 0.05, 0.03);
    benchmark::DoNotOptimize(vth.data());
  }
  state.SetItemsProcessed(state.iterations() * vth.size());
}
BENCHMARK(BM_BatchedClippedDisturb);

// Whole-population program+measure fanned out over core/run_tasks: the
// fig4/fig5 shape at characterization scale. Arg = jobs.
void BM_PopulationParallel(benchmark::State& state) {
  const unsigned jobs = static_cast<unsigned>(state.range(0));
  constexpr std::uint32_t kWordLines = 32;
  for (auto _ : state) {
    std::vector<double> ber(kWordLines);
    core::run_tasks(jobs, kWordLines, [&](std::size_t i) {
      nand::WordLine wl(
          kSubpages, kCells, nand::CellModelParams{},
          util::Xoshiro256(core::stable_cell_seed(
              "micro/wl/" + std::to_string(i), 2017)));
      for (std::uint32_t s = 0; s < kSubpages; ++s)
        wl.program_subpage_random(s);
      ber[i] = wl.raw_ber(kSubpages - 1, 1.0);
    });
    benchmark::DoNotOptimize(ber.data());
  }
  state.SetItemsProcessed(state.iterations() * kWordLines *
                          (kProgramTouched + kCells));
}
// Wall-clock timing: the fan-out's work happens on run_tasks' worker
// threads, which per-process CPU-time accounting of the bench thread would
// miss entirely.
BENCHMARK(BM_PopulationParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
