#include "ftl/mapping_cache.h"

#include <gtest/gtest.h>

namespace esp::ftl {
namespace {

TEST(MappingCache, FirstAccessMissesThenHits) {
  MappingCache cache(4, 100);
  EXPECT_FALSE(cache.access(5, false).hit);
  EXPECT_TRUE(cache.access(5, false).hit);
  EXPECT_TRUE(cache.access(99, false).hit);   // same translation page
  EXPECT_FALSE(cache.access(100, false).hit);  // next page
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(MappingCache, LruEvictsColdestPage) {
  MappingCache cache(2, 10);
  cache.access(0, false);   // page 0
  cache.access(10, false);  // page 1
  cache.access(0, false);   // page 0 now MRU
  cache.access(20, false);  // page 2 evicts page 1
  EXPECT_TRUE(cache.access(0, false).hit);
  EXPECT_FALSE(cache.access(10, false).hit);  // page 1 was evicted
}

TEST(MappingCache, DirtyEvictionTriggersWriteback) {
  MappingCache cache(1, 10);
  cache.access(0, /*dirty=*/true);
  const auto second = cache.access(10, false);
  EXPECT_TRUE(second.writeback);
  EXPECT_EQ(cache.writebacks(), 1u);
  // Clean eviction has no writeback.
  const auto third = cache.access(20, false);
  EXPECT_FALSE(third.writeback);
}

TEST(MappingCache, DirtyBitSticksUntilEviction) {
  MappingCache cache(1, 10);
  cache.access(0, true);
  cache.access(1, false);  // same page, clean access must not clear dirty
  EXPECT_TRUE(cache.access(10, false).writeback);
}

TEST(MappingCache, HitRateAndCapacity) {
  MappingCache cache(8, 4096);
  for (int round = 0; round < 10; ++round)
    for (std::uint64_t e = 0; e < 8 * 4096; e += 4096)
      cache.access(e, false);
  EXPECT_GT(cache.hit_rate(), 0.85);  // everything fits after warmup
  EXPECT_LE(cache.resident_pages(), 8u);
}

TEST(MappingCache, ThrashingWhenWorkingSetExceedsCapacity) {
  MappingCache cache(2, 10);
  for (int round = 0; round < 5; ++round)
    for (std::uint64_t page = 0; page < 4; ++page)
      cache.access(page * 10, false);  // cyclic over 4 pages, cache of 2
  EXPECT_LT(cache.hit_rate(), 0.1);  // LRU worst case: ~0
}

TEST(MappingCache, ResetCountersKeepsContents) {
  MappingCache cache(2, 10);
  cache.access(0, false);
  cache.reset_counters();
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_TRUE(cache.access(0, false).hit);  // still resident
}

TEST(MappingCache, RejectsZeroCapacity) {
  EXPECT_THROW(MappingCache(0, 10), std::invalid_argument);
  EXPECT_THROW(MappingCache(1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace esp::ftl
