// WearIndex: the lazy min-heap behind the static wear levelers. Contract
// under test: peek() returns the (min pe, min idx) candidate among entries
// the freshness predicate accepts, never consumes a live candidate, and
// reproduces the original ascending-index strict-< linear scan exactly --
// including tie-breaks and requeue-after-erase cycles.
#include "ftl/wear_index.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace esp::ftl {
namespace {

TEST(WearIndexTest, EmptyPeeksNothing) {
  WearIndex w;
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.peek([](std::uint32_t, std::size_t) { return true; }));
}

TEST(WearIndexTest, ReturnsMinimumPe) {
  WearIndex w;
  w.push(7, 0);
  w.push(3, 1);
  w.push(5, 2);
  const auto e = w.peek([](std::uint32_t, std::size_t) { return true; });
  ASSERT_TRUE(e);
  EXPECT_EQ(e->pe, 3u);
  EXPECT_EQ(e->idx, 1u);
}

TEST(WearIndexTest, TieBreaksOnLowestIndex) {
  // The reference scan walks indices ascending with strict <, so among
  // equal P/E counts the LOWEST index wins. Push out of order.
  WearIndex w;
  w.push(4, 9);
  w.push(4, 2);
  w.push(4, 5);
  const auto e = w.peek([](std::uint32_t, std::size_t) { return true; });
  ASSERT_TRUE(e);
  EXPECT_EQ(e->pe, 4u);
  EXPECT_EQ(e->idx, 2u);
}

TEST(WearIndexTest, PeekDoesNotConsumeLiveCandidate) {
  WearIndex w;
  w.push(1, 3);
  const auto accept = [](std::uint32_t, std::size_t) { return true; };
  ASSERT_TRUE(w.peek(accept));
  ASSERT_TRUE(w.peek(accept));  // still there: a declined wear-level
  EXPECT_EQ(w.size(), 1u);      // check must not lose its candidate
}

TEST(WearIndexTest, LazilyDiscardsStaleEntries) {
  WearIndex w;
  w.push(1, 0);  // will be stale
  w.push(2, 1);  // will be stale
  w.push(6, 2);  // live
  const auto e =
      w.peek([](std::uint32_t, std::size_t idx) { return idx == 2; });
  ASSERT_TRUE(e);
  EXPECT_EQ(e->idx, 2u);
  EXPECT_EQ(w.size(), 1u);  // stale prefix popped for good
  EXPECT_FALSE(w.peek([](std::uint32_t, std::size_t) { return false; }));
  EXPECT_EQ(w.size(), 0u);
}

TEST(WearIndexTest, RequeueAfterEraseSupersedesStaleEntry) {
  // Block 4 sealed at pe=2, then erased+rewritten+resealed at pe=3: the
  // old entry is stale (pe mismatch) and the re-seal pushed a new one.
  // The pool's freshness check compares the entry's pe against the
  // device's current count, modeled here with a map.
  std::map<std::size_t, std::uint32_t> device_pe{{4, 2}, {8, 9}};
  WearIndex w;
  w.push(2, 4);
  w.push(9, 8);
  device_pe[4] = 3;  // erase cycle
  w.push(3, 4);      // re-seal pushes again
  const auto fresh = [&](std::uint32_t pe, std::size_t idx) {
    return device_pe.at(idx) == pe;
  };
  const auto e = w.peek(fresh);
  ASSERT_TRUE(e);
  EXPECT_EQ(e->idx, 4u);
  EXPECT_EQ(e->pe, 3u);
}

TEST(WearIndexTest, DuplicatePushesAreHarmless) {
  WearIndex w;
  w.push(5, 1);
  w.push(5, 1);
  w.push(5, 1);
  const auto accept = [](std::uint32_t, std::size_t) { return true; };
  const auto e = w.peek(accept);
  ASSERT_TRUE(e);
  EXPECT_EQ(e->idx, 1u);
  // Rejecting everything drains all duplicates without error.
  EXPECT_FALSE(w.peek([](std::uint32_t, std::size_t) { return false; }));
  EXPECT_EQ(w.size(), 0u);
}

TEST(WearIndexTest, ClearEmptiesTheHeap) {
  WearIndex w;
  for (std::size_t i = 0; i < 50; ++i) w.push(static_cast<std::uint32_t>(i), i);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.peek([](std::uint32_t, std::size_t) { return true; }));
}

// Property: against a simulated population of blocks that seal, erase and
// re-seal, peek() must always agree with the reference linear scan
// (ascending idx, strict <) over the currently-live blocks.
TEST(WearIndexTest, MatchesReferenceScanUnderChurn) {
  util::Xoshiro256 rng(7);
  constexpr std::size_t kBlocks = 64;
  std::vector<std::uint32_t> pe(kBlocks, 0);
  std::vector<bool> live(kBlocks, false);  // sealed & owned
  WearIndex w;

  const auto fresh = [&](std::uint32_t entry_pe, std::size_t idx) {
    return live[idx] && pe[idx] == entry_pe;
  };
  const auto reference = [&]() -> std::optional<WearIndex::Entry> {
    std::optional<WearIndex::Entry> best;
    for (std::size_t i = 0; i < kBlocks; ++i)
      if (live[i] && (!best || pe[i] < best->pe))
        best = WearIndex::Entry{pe[i], i};
    return best;
  };

  for (int step = 0; step < 5000; ++step) {
    const std::size_t i = rng.below(kBlocks);
    if (live[i]) {  // erase: leaves the pool, pe advances
      live[i] = false;
      ++pe[i];
    } else {  // re-seal: becomes a candidate again at its current pe
      live[i] = true;
      w.push(pe[i], i);
    }
    const auto got = w.peek(fresh);
    const auto want = reference();
    ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
    if (got) {
      EXPECT_EQ(got->pe, want->pe) << "step " << step;
      EXPECT_EQ(got->idx, want->idx) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace esp::ftl
