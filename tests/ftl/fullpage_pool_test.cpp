// Direct unit tests of the full-page (CGM) storage pool: allocation,
// striping, validity accounting, GC victim choice, quota behavior.
#include "ftl/fullpage_pool.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ftl/block_allocator.h"
#include "nand/device.h"

namespace esp::ftl {
namespace {

nand::Geometry tiny_geo() {
  nand::Geometry geo;
  geo.channels = 2;
  geo.chips_per_channel = 1;
  geo.blocks_per_chip = 8;
  geo.pages_per_block = 4;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

struct PoolFixture {
  explicit PoolFixture(FullPagePool::Config config = {~0ull, 2})
      : dev(tiny_geo()), allocator(tiny_geo()) {
    pool = std::make_unique<FullPagePool>(
        dev, allocator, config, stats,
        [this](std::uint64_t lpn, std::uint64_t new_lin) {
          relocations[lpn] = new_lin;
          mapping[lpn] = new_lin;
        });
  }

  std::pair<std::uint64_t, SimTime> write(std::uint64_t lpn, SimTime now) {
    const std::vector<std::uint64_t> tokens = {lpn * 10 + 1, lpn * 10 + 2,
                                               lpn * 10 + 3, lpn * 10 + 4};
    auto result = pool->write_page(lpn, tokens, now);
    mapping[lpn] = result.first;
    return result;
  }

  nand::NandDevice dev;
  BlockAllocator allocator;
  FtlStats stats;
  std::map<std::uint64_t, std::uint64_t> mapping;
  std::map<std::uint64_t, std::uint64_t> relocations;
  std::unique_ptr<FullPagePool> pool;
};

TEST(FullPagePool, WriteAllocatesAndTracksValidity) {
  PoolFixture fx;
  fx.write(7, 0.0);
  EXPECT_EQ(fx.pool->valid_pages(), 1u);
  EXPECT_EQ(fx.pool->blocks_in_use(), 1u);
  EXPECT_EQ(fx.stats.flash_prog_full, 1u);
}

TEST(FullPagePool, WritesStripeAcrossChips) {
  PoolFixture fx;
  fx.write(0, 0.0);
  fx.write(1, 0.0);
  const nand::AddressCodec codec(tiny_geo());
  const auto a = codec.decode_page(fx.mapping[0]);
  const auto b = codec.decode_page(fx.mapping[1]);
  EXPECT_NE(a.chip, b.chip);
}

TEST(FullPagePool, InvalidateDecrementsValidity) {
  PoolFixture fx;
  fx.write(3, 0.0);
  fx.pool->invalidate(fx.mapping[3]);
  EXPECT_EQ(fx.pool->valid_pages(), 0u);
  // Double invalidation is a logic error.
  EXPECT_THROW(fx.pool->invalidate(fx.mapping[3]), std::logic_error);
}

TEST(FullPagePool, GcRelocatesValidPagesAndUpdatesMapping) {
  PoolFixture fx;
  // Fill most of the device: 16 blocks * 4 pages = 64 pages; keep lpns
  // unique for the first pass, then overwrite to create garbage.
  SimTime now = 0.0;
  for (std::uint64_t lpn = 0; lpn < 40; ++lpn) now = fx.write(lpn, now).second;
  for (std::uint64_t lpn = 0; lpn < 40; ++lpn) {
    fx.pool->invalidate(fx.mapping[lpn]);
    now = fx.write(lpn, now).second;  // triggers GC under space pressure
  }
  EXPECT_GT(fx.stats.gc_invocations, 0u);
  EXPECT_EQ(fx.pool->valid_pages(), 40u);
  // Relocated lpns point at pages whose tokens still match.
  const nand::AddressCodec codec(tiny_geo());
  for (const auto& [lpn, lin] : fx.mapping) {
    const auto read = fx.dev.read_page(codec.decode_page(lin), now);
    EXPECT_EQ(read.token[0], lpn * 10 + 1) << "lpn " << lpn;
  }
}

TEST(FullPagePool, GcPrefersEmptiestVictim) {
  PoolFixture fx;
  SimTime now = 0.0;
  // Block-sized batches: invalidate ALL pages of the first batch so GC has
  // a zero-valid victim available.
  for (std::uint64_t lpn = 0; lpn < 60; ++lpn) now = fx.write(lpn, now).second;
  for (std::uint64_t lpn = 0; lpn < 8; ++lpn)
    fx.pool->invalidate(fx.mapping[lpn]);
  const auto copies_before = fx.stats.gc_copy_sectors;
  now = fx.pool->maybe_gc(now);
  // The victim(s) chosen should be (nearly) garbage-only: no copies needed
  // for a zero-valid block.
  EXPECT_LE(fx.stats.gc_copy_sectors - copies_before, 8u);
}

TEST(FullPagePool, QuotaBoundsBlockUsage) {
  PoolFixture fx(FullPagePool::Config{/*quota_blocks=*/4,
                                      /*reserve_free_blocks=*/2});
  SimTime now = 0.0;
  // Writing more than quota * pages_per_block live pages is impossible;
  // with churn (overwrites) the pool must stay within quota.
  for (int round = 0; round < 100; ++round) {
    const std::uint64_t lpn = round % 8;
    if (fx.mapping.contains(lpn) && round >= 8)
      fx.pool->invalidate(fx.mapping[lpn]);
    now = fx.write(lpn, now).second;
    EXPECT_LE(fx.pool->blocks_in_use(), 5u);  // quota + transient GC dest
  }
}

TEST(FullPagePool, DecliningGcWhenAllVictimsFullyValid) {
  PoolFixture fx;
  SimTime now = 0.0;
  // Fill with unique lpns only: everything stays valid.
  for (std::uint64_t lpn = 0; lpn < 56; ++lpn) now = fx.write(lpn, now).second;
  const auto gc_before = fx.stats.gc_invocations;
  now = fx.pool->maybe_gc(now);
  // Nothing reclaimable: GC must decline rather than copy fully-valid
  // blocks in a loop.
  EXPECT_EQ(fx.stats.gc_invocations, gc_before);
}

TEST(FullPagePool, ExhaustionThrowsCleanly) {
  PoolFixture fx;
  SimTime now = 0.0;
  EXPECT_THROW(
      {
        for (std::uint64_t lpn = 0; lpn < 1000; ++lpn)
          now = fx.write(lpn, now).second;  // unique lpns, no garbage
      },
      std::runtime_error);
}

TEST(FullPagePool, TimeAdvancesThroughWrites) {
  PoolFixture fx;
  const auto [lin1, t1] = fx.write(0, 100.0);
  EXPECT_GT(t1, 100.0);
  const auto [lin2, t2] = fx.write(1, t1);
  EXPECT_GT(t2, t1);
}

TEST(FullPagePool, CopybackGcPreservesDataWithoutTransfers) {
  PoolFixture fx(FullPagePool::Config{~0ull, 2, /*use_copyback=*/true});
  SimTime now = 0.0;
  // Immortal lpns (multiples of 5) stay put while the rest churn in a
  // scattered order, so GC victims on every chip carry valid pages that
  // must move (via copyback).
  for (std::uint64_t lpn = 0; lpn < 40; ++lpn) now = fx.write(lpn, now).second;
  for (int round = 0; round < 200; ++round) {
    std::uint64_t lpn = (static_cast<std::uint64_t>(round) * 7) % 40;
    if (lpn % 5 == 0) lpn = (lpn + 1) % 40;
    fx.pool->invalidate(fx.mapping[lpn]);
    now = fx.write(lpn, now).second;
  }
  EXPECT_GT(fx.stats.gc_invocations, 0u);
  EXPECT_GT(fx.stats.gc_copy_sectors, 0u);
  // All data still readable through the updated mapping.
  const nand::AddressCodec codec(tiny_geo());
  for (const auto& [lpn, lin] : fx.mapping) {
    const auto read = fx.dev.read_page(codec.decode_page(lin), now);
    EXPECT_EQ(read.token[0], lpn * 10 + 1) << "lpn " << lpn;
  }
}

TEST(FullPagePool, RequiresRelocateCallback) {
  nand::NandDevice dev(tiny_geo());
  BlockAllocator allocator(tiny_geo());
  FtlStats stats;
  EXPECT_THROW(FullPagePool(dev, allocator, FullPagePool::Config{}, stats,
                            nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace esp::ftl
