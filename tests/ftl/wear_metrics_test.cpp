// Wear-metrics tests: summary math and the dynamic wear-leveling claim
// (low-P/E-first allocation keeps wear tight even under skewed load).
#include "ftl/wear_metrics.h"

#include <gtest/gtest.h>

#include "core/ssd.h"
#include "test_common.h"
#include "workload/synthetic.h"

namespace esp::ftl {
namespace {

TEST(WearMetrics, FreshDeviceHasZeroWear) {
  nand::NandDevice dev(test::tiny_geometry());
  const auto summary = measure_wear(dev);
  EXPECT_EQ(summary.min_pe, 0u);
  EXPECT_EQ(summary.max_pe, 0u);
  EXPECT_EQ(summary.total_erases, 0u);
  EXPECT_EQ(summary.imbalance(), 0.0);
}

TEST(WearMetrics, CountsSingleErase) {
  nand::NandDevice dev(test::tiny_geometry());
  dev.erase_block(0, 0, 0.0);
  dev.erase_block(0, 0, 1.0);
  dev.erase_block(1, 3, 2.0);
  const auto summary = measure_wear(dev);
  EXPECT_EQ(summary.max_pe, 2u);
  EXPECT_EQ(summary.min_pe, 0u);
  EXPECT_EQ(summary.total_erases, 3u);
  EXPECT_EQ(summary.spread(), 2u);
  EXPECT_GT(summary.imbalance(), 0.0);
}

TEST(WearMetrics, DescribeMentionsCounts) {
  nand::NandDevice dev(test::tiny_geometry());
  dev.erase_block(0, 0, 0.0);
  const auto text = measure_wear(dev).describe();
  EXPECT_NE(text.find("max=1"), std::string::npos);
  EXPECT_NE(text.find("1 erases"), std::string::npos);
}

class DynamicWearLeveling : public ::testing::TestWithParam<core::FtlKind> {};

TEST_P(DynamicWearLeveling, SkewedChurnKeepsWearTight) {
  // A pathologically hot workload hammers a tiny LBA range; low-P/E-first
  // allocation must spread the erases over many physical blocks rather
  // than ping-ponging a few.
  auto config = test::tiny_config(GetParam());
  config.wl_check_interval = 256;  // frequent checks: the run is short
  config.wl_pe_threshold = 8;      // tight threshold: wear is shallow here
  core::Ssd ssd(config);
  ssd.precondition(1.0);
  workload::SyntheticParams params;
  params.footprint_sectors = ssd.logical_sectors();
  params.request_count = 20000;
  params.r_small = 1.0;
  params.r_synch = 1.0;
  params.small_footprint_fraction = 0.02;
  params.small_zipf_theta = 0.95;
  params.seed = 9;
  workload::SyntheticWorkload stream(params);
  const auto metrics = ssd.driver().run(stream, false);
  ASSERT_GT(metrics.erases_during_run, 50u) << "test needs GC churn";

  const auto summary = measure_wear(ssd.device());
  // Without any wear leveling the hottest blocks absorb ALL the erases
  // (max ~= total/rotating-pool >> mean) while cold blocks stay at the
  // preconditioning count forever. Static WL (relocate the coldest sealed
  // block when it lags by wl_pe_threshold) must pull cold blocks into the
  // rotation and bound the spread.
  EXPECT_LE(summary.max_pe, summary.mean_pe * 3.0 + 16.0)
      << summary.describe();
}

INSTANTIATE_TEST_SUITE_P(AllFtls, DynamicWearLeveling,
                         ::testing::Values(core::FtlKind::kCgm,
                                           core::FtlKind::kFgm,
                                           core::FtlKind::kSub),
                         [](const auto& info) {
                           return core::ftl_kind_name(info.param);
                         });

}  // namespace
}  // namespace esp::ftl
