// subFTL unit tests: data placement, ESP writing policy effects, hot/cold
// GC, extended-mapping resolution, request WAF ~= 1.
#include "ftl/sub_ftl.h"

#include <gtest/gtest.h>

#include "ftl/types.h"
#include "nand/device.h"

namespace esp::ftl {
namespace {

nand::Geometry tiny_geo() {
  nand::Geometry geo;
  geo.channels = 2;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 16;
  geo.pages_per_block = 16;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

struct SubFixture {
  explicit SubFixture(double region_fraction = 0.20) : dev(tiny_geo()) {
    SubFtl::Config cfg;
    cfg.logical_sectors = 2048;  // 8 MiB logical vs 64 MiB physical
    cfg.subpage_region_fraction = region_fraction;
    cfg.gc_reserve_blocks = 4;
    cfg.buffer_sectors = 32;
    ftl = std::make_unique<SubFtl>(dev, cfg);
  }
  nand::NandDevice dev;
  std::unique_ptr<SubFtl> ftl;
};

TEST(SubFtl, SyncSmallWriteUsesSubpageProgram) {
  SubFixture fx;
  fx.ftl->write(0, 1, true, 0.0);
  EXPECT_EQ(fx.ftl->stats().flash_prog_sub, 1u);
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 0u);
  EXPECT_EQ(fx.ftl->subpage_mapping_entries(), 1u);
}

TEST(SubFtl, SmallRequestWafIsOne) {
  SubFixture fx;
  // The paper's Table 1: request WAF of small writes ~= 1.0.
  for (std::uint64_t s = 0; s < 64; s += 4)
    fx.ftl->write(s + (s % 3), 1, true, 0.0);
  EXPECT_DOUBLE_EQ(fx.ftl->stats().avg_small_request_waf(), 1.0);
}

TEST(SubFtl, AlignedFullPageWriteGoesToFullRegion) {
  SubFixture fx;
  fx.ftl->write(0, 4, true, 0.0);
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 1u);
  EXPECT_EQ(fx.ftl->stats().flash_prog_sub, 0u);
}

TEST(SubFtl, TwentyKbWriteSplitsSixteenPlusFour) {
  // Paper Sec. 4.1: a 20-KB write sends 16 KB to the full-page region and
  // 4 KB to the subpage region.
  SubFixture fx;
  fx.ftl->write(0, 5, true, 0.0);
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 1u);
  EXPECT_EQ(fx.ftl->stats().flash_prog_sub, 1u);
}

TEST(SubFtl, MisalignedLargeWriteSplitsEdges) {
  SubFixture fx;
  fx.ftl->write(2, 8, true, 0.0);  // covers lpn0[2,3], lpn1[all], lpn2[0,1]
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 1u);   // the aligned middle
  EXPECT_EQ(fx.ftl->stats().flash_prog_sub, 4u);    // 2+2 edge sectors
}

TEST(SubFtl, ExtendedMappingPrefersSubpageRegion) {
  SubFixture fx;
  fx.ftl->write(0, 4, true, 0.0);  // full page v1
  fx.ftl->write(1, 1, true, 1.0);  // sector 1 updated into subpage region
  std::vector<std::uint64_t> tokens;
  const auto result = fx.ftl->read(0, 4, 2.0, &tokens);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(tokens[0], make_token(0, 1));
  EXPECT_EQ(tokens[1], make_token(1, 2));  // the subpage-region version
  EXPECT_EQ(tokens[2], make_token(2, 1));
}

TEST(SubFtl, FullPageWriteSupersedesSubpageCopies) {
  SubFixture fx;
  fx.ftl->write(1, 1, true, 0.0);  // subpage-region copy of sector 1
  EXPECT_EQ(fx.ftl->subpage_mapping_entries(), 1u);
  fx.ftl->write(0, 4, true, 1.0);  // full page overwrites all four
  EXPECT_EQ(fx.ftl->subpage_mapping_entries(), 0u);
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(0, 4, 2.0, &tokens);
  EXPECT_EQ(tokens[1], make_token(1, 2));
}

TEST(SubFtl, RewriteMarksSectorHotAndInvalidatesOldSubpage) {
  SubFixture fx;
  fx.ftl->write(3, 1, true, 0.0);
  const auto valid_before = fx.ftl->subpage_pool().valid_sectors();
  fx.ftl->write(3, 1, true, 1.0);
  // Still exactly one live copy.
  EXPECT_EQ(fx.ftl->subpage_pool().valid_sectors(), valid_before);
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(3, 1, 2.0, &tokens);
  EXPECT_EQ(tokens[0], make_token(3, 2));
}

TEST(SubFtl, EspWritingPolicyFillsSlotZeroFirst) {
  SubFixture fx;
  // Distinct sectors, enough to land on several pages of several blocks.
  for (std::uint64_t i = 0; i < 32; ++i)
    fx.ftl->write(i * 4, 1, true, static_cast<SimTime>(i));
  // No page should have more than one programmed slot yet: region capacity
  // in slot-0 alone is blocks*pages >> 32 writes.
  const auto& geo = fx.dev.geometry();
  for (std::uint32_t chip = 0; chip < geo.total_chips(); ++chip)
    for (std::uint32_t blk = 0; blk < geo.blocks_per_chip; ++blk)
      for (std::uint32_t page = 0; page < geo.pages_per_block; ++page)
        EXPECT_LE(fx.dev.block(chip, blk).slots_programmed(page), 1u);
}

TEST(SubFtl, SubpageChurnStaysInRegionWithWafOne) {
  SubFixture fx;
  SimTime now = 0.0;
  // Heavy re-update of a small hot set (well under region capacity, as in
  // the paper's sizing): many ESP levels get consumed, forwarding and GC
  // kick in, but correctness and WAF~1 must hold.
  for (int round = 0; round < 6000; ++round) {
    const std::uint64_t s = (round * 13) % 32;
    now = fx.ftl->write(s, 1, true, now).done;
  }
  std::vector<std::uint64_t> tokens;
  for (std::uint64_t s = 0; s < 32; ++s) {
    fx.ftl->read(s, 1, now, &tokens);
    EXPECT_NE(tokens[0], 0u) << "sector " << s;
  }
  EXPECT_LT(fx.ftl->stats().avg_small_request_waf(), 1.5);
}

TEST(SubFtl, ColdDataEvictedToFullRegionOnGc) {
  SubFixture fx(/*region_fraction=*/0.10);
  SimTime now = 0.0;
  // Mostly-cold stream: sectors written once each, wide range -> region
  // fills with cold data -> GC must evict to the full-page region.
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t s = (i * 5) % 2000;
    now = fx.ftl->write(s, 1, true, now).done;
  }
  EXPECT_GT(fx.ftl->stats().cold_evictions, 0u);
  // Every written sector (multiples of 5) still readable: eviction
  // preserved the data.
  std::vector<std::uint64_t> tokens;
  for (std::uint64_t s = 0; s < 2000; s += 5 * 19) {
    fx.ftl->read(s, 1, now, &tokens);
    EXPECT_NE(tokens[0], 0u) << "sector " << s;
  }
}

TEST(SubFtl, ForwardingMigratesValidDataAcrossLevels) {
  SubFixture fx(/*region_fraction=*/0.10);
  SimTime now = 0.0;
  // Mix: persistent valid data + churn forces level advancing with
  // forwarding (Fig. 7(c)).
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t s =
        (i % 10 == 0) ? 1500 + (i / 10) % 50  // long-lived entries
                      : (i * 3) % 200;        // churn
    now = fx.ftl->write(s, 1, true, now).done;
  }
  EXPECT_GT(fx.ftl->stats().forward_migrations, 0u);
  std::vector<std::uint64_t> tokens;
  for (std::uint64_t s = 1500; s < 1550; ++s) {
    fx.ftl->read(s, 1, now, &tokens);
    EXPECT_NE(tokens[0], 0u) << "forwarded sector " << s;
  }
}

TEST(SubFtl, BufferedFullRunMergesToFullPage) {
  SubFixture fx;
  for (std::uint64_t s = 0; s < 4; ++s) fx.ftl->write(s, 1, false, 0.0);
  fx.ftl->flush(1.0);
  // Async contiguous sectors merged: one full-page program, no subpages.
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 1u);
  EXPECT_EQ(fx.ftl->stats().flash_prog_sub, 0u);
}

TEST(SubFtl, TrimDropsBothRegions) {
  SubFixture fx;
  fx.ftl->write(0, 4, true, 0.0);  // full region
  fx.ftl->write(1, 1, true, 1.0);  // sub region shadow
  fx.ftl->trim(0, 4);
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(0, 4, 2.0, &tokens);
  for (const auto t : tokens) EXPECT_EQ(t, 0u);
  EXPECT_EQ(fx.ftl->subpage_mapping_entries(), 0u);
}

TEST(SubFtl, HashBoundedByOneValidSubpagePerPage) {
  SubFixture fx;
  SimTime now = 0.0;
  for (int i = 0; i < 3000; ++i)
    now = fx.ftl->write((i * 11) % 1024, 1, true, now).done;
  const auto& geo = fx.dev.geometry();
  const auto region_pages =
      fx.ftl->subpage_pool().blocks_in_use() * geo.pages_per_block;
  EXPECT_LE(fx.ftl->subpage_mapping_entries(), region_pages);
}

TEST(SubFtl, RejectsImpossibleConfigs) {
  nand::NandDevice dev(tiny_geo());
  SubFtl::Config cfg;
  cfg.logical_sectors = 0;
  EXPECT_THROW(SubFtl(dev, cfg), std::invalid_argument);
  cfg.logical_sectors = 2048;
  cfg.subpage_region_fraction = 0.0;
  EXPECT_THROW(SubFtl(dev, cfg), std::invalid_argument);
  // Logical space that cannot fit in the full-page region.
  cfg.subpage_region_fraction = 0.9;
  cfg.logical_sectors = dev.geometry().total_subpages() / 2;
  EXPECT_THROW(SubFtl(dev, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace esp::ftl
