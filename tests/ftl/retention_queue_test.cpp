// RetentionQueue: the age-bucketed index behind SubpagePool's incremental
// retention scan. The contract under test: collect_expired() must return
// EXACTLY the entries the reference linear walk would flag (same floating-
// point predicate, conservative bucket slack) and keep everything else
// queued, in insertion order within a bucket.
#include "ftl/retention_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace esp::ftl {
namespace {

using Entry = RetentionQueue::Entry;

std::vector<Entry> collect(RetentionQueue& q, SimTime cutoff,
                           SimTime now, SimTime age) {
  std::vector<Entry> out;
  q.collect_expired(cutoff, [&](SimTime w) { return now - w > age; }, out);
  return out;
}

TEST(RetentionQueueTest, StartsEmpty) {
  RetentionQueue q(10.0);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.bucket_count(), 0u);
  std::vector<Entry> out;
  q.collect_expired(1e9, [](SimTime) { return true; }, out);
  EXPECT_TRUE(out.empty());
}

TEST(RetentionQueueTest, CollectsOnlyExpiredEntries) {
  RetentionQueue q(10.0);
  q.push(0, 0, 5.0);     // old
  q.push(0, 1, 15.0);    // old
  q.push(1, 0, 500.0);   // young
  ASSERT_EQ(q.size(), 3u);

  const SimTime now = 600.0, age = 550.0;  // expires w < 50
  const auto out = collect(q, now - age, now, age);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].block_idx, 0u);
  EXPECT_EQ(out[0].page, 0u);
  EXPECT_EQ(out[1].page, 1u);
  EXPECT_EQ(q.size(), 1u);  // young entry still queued

  // The young entry surfaces once it crosses the age.
  const SimTime later = 2000.0;
  const auto rest = collect(q, later - age, later, age);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].block_idx, 1u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.bucket_count(), 0u);
}

TEST(RetentionQueueTest, ExactBoundaryMatchesPredicate) {
  // now - w == age is NOT expired under the reference predicate
  // (now - w > age); the bucket pre-filter must not round it in.
  RetentionQueue q(7.0);
  const SimTime age = 100.0;
  q.push(3, 2, 50.0);
  const SimTime now = 150.0;  // now - w == age exactly
  EXPECT_TRUE(collect(q, now - age, now, age).empty());
  EXPECT_EQ(q.size(), 1u);
  const auto out = collect(q, now + 1.0 - age, now + 1.0, age);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].written_at, 50.0);
}

TEST(RetentionQueueTest, KeepsUnexpiredEntriesOfDrainedBuckets) {
  // Entries sharing a bucket can straddle the cutoff: the bucket is
  // visited (conservative slack) but only truly expired entries leave.
  RetentionQueue q(100.0);
  q.push(0, 0, 10.0);
  q.push(0, 1, 90.0);  // same bucket, younger
  const SimTime age = 500.0;
  const SimTime now = 540.0;  // expires w < 40
  const auto out = collect(q, now - age, now, age);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].written_at, 10.0);
  ASSERT_EQ(q.size(), 1u);
  // The survivor is still collectable later (stayed in its bucket).
  const auto rest = collect(q, 1000.0 - age, 1000.0, age);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].written_at, 90.0);
}

TEST(RetentionQueueTest, RequeueAfterCollectIsIndependent) {
  // A page whose subpage is rewritten gets a NEW entry; collecting the old
  // one must not disturb the new one (stale filtering is the consumer's
  // job -- the queue itself treats entries as independent).
  RetentionQueue q(10.0);
  q.push(7, 4, 5.0);
  q.push(7, 4, 400.0);  // rewrite of the same page, later
  const SimTime age = 300.0;
  const SimTime now = 350.0;
  const auto out = collect(q, now - age, now, age);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].written_at, 5.0);
  ASSERT_EQ(q.size(), 1u);
  const auto rest = collect(q, 1000.0 - age, 1000.0, age);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].written_at, 400.0);
}

TEST(RetentionQueueTest, ClearDropsEverything) {
  RetentionQueue q(10.0);
  for (int i = 0; i < 100; ++i) q.push(i, 0, i * 3.0);
  EXPECT_EQ(q.size(), 100u);
  q.clear();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.bucket_count(), 0u);
  EXPECT_TRUE(collect(q, 1e9, 1e9, 0.0).empty());
}

TEST(RetentionQueueTest, NonPositiveWidthIsGuarded) {
  // Degenerate widths fall back to a sane bucket size instead of dividing
  // by zero; behavior stays correct.
  RetentionQueue q(0.0);
  q.push(1, 2, 3.0);
  const auto out = collect(q, 1e9, 1e9, 0.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].block_idx, 1u);
}

// Property: against a brute-force mirror, collect_expired returns exactly
// the expired entries (same multiset) and retains exactly the rest, across
// random pushes, ages and scan times.
TEST(RetentionQueueTest, MatchesBruteForceMirror) {
  util::Xoshiro256 rng(2017);
  const SimTime age = 1000.0;
  RetentionQueue q(age / 32.0);
  std::vector<Entry> mirror;

  SimTime now = 0.0;
  auto key = [](const Entry& e) {
    return std::tuple(e.block_idx, e.page, e.written_at);
  };
  for (int round = 0; round < 200; ++round) {
    const int pushes = static_cast<int>(rng.below(20));
    for (int i = 0; i < pushes; ++i) {
      Entry e{rng.below(64), static_cast<std::uint32_t>(rng.below(32)),
              now + static_cast<double>(rng.below(100))};
      q.push(e.block_idx, e.page, e.written_at);
      mirror.push_back(e);
    }
    now += static_cast<double>(rng.below(300));

    auto got = collect(q, now - age, now, age);
    std::vector<Entry> want, kept;
    for (const auto& e : mirror)
      (now - e.written_at > age ? want : kept).push_back(e);
    mirror = std::move(kept);

    auto lt = [&](const Entry& a, const Entry& b) { return key(a) < key(b); };
    std::sort(got.begin(), got.end(), lt);
    std::sort(want.begin(), want.end(), lt);
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(key(got[i]), key(want[i])) << "round " << round;
    ASSERT_EQ(q.size(), mirror.size()) << "round " << round;
  }
}

}  // namespace
}  // namespace esp::ftl
