// Direct unit tests of the fine-grained (sector-mapped) pool: group
// writes with padding, per-sector validity, repacking GC.
#include "ftl/fine_pool.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ftl/block_allocator.h"
#include "nand/device.h"

namespace esp::ftl {
namespace {

nand::Geometry tiny_geo() {
  nand::Geometry geo;
  geo.channels = 2;
  geo.chips_per_channel = 1;
  geo.blocks_per_chip = 8;
  geo.pages_per_block = 4;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

struct PoolFixture {
  PoolFixture() : dev(tiny_geo()), allocator(tiny_geo()) {
    pool = std::make_unique<FinePool>(
        dev, allocator, FinePool::Config{~0ull, 2}, stats,
        [this](std::uint64_t sector, std::uint64_t new_lin) {
          mapping[sector] = new_lin;
        });
  }

  SimTime write_group(std::vector<std::uint64_t> sectors, SimTime now) {
    std::vector<SectorWrite> group;
    for (const auto s : sectors) group.push_back({s, s + 1000});
    return pool->write_group(group, now);
  }

  nand::NandDevice dev;
  BlockAllocator allocator;
  FtlStats stats;
  std::map<std::uint64_t, std::uint64_t> mapping;
  std::unique_ptr<FinePool> pool;
};

TEST(FinePool, DenseGroupOccupiesOnePage) {
  PoolFixture fx;
  fx.write_group({0, 1, 2, 3}, 0.0);
  EXPECT_EQ(fx.stats.flash_prog_full, 1u);
  EXPECT_EQ(fx.pool->valid_sectors(), 4u);
  // All four sectors share a physical page.
  const nand::AddressCodec codec(tiny_geo());
  const auto page0 = codec.decode_subpage(fx.mapping[0]).page;
  for (std::uint64_t s = 1; s < 4; ++s)
    EXPECT_EQ(codec.decode_subpage(fx.mapping[s]).page, page0);
}

TEST(FinePool, SparseGroupWastesPageSpace) {
  PoolFixture fx;
  fx.write_group({42}, 0.0);  // one live sector, three padding slots
  EXPECT_EQ(fx.stats.flash_prog_full, 1u);
  EXPECT_EQ(fx.pool->valid_sectors(), 1u);
}

TEST(FinePool, RejectsOversizedOrEmptyGroups) {
  PoolFixture fx;
  EXPECT_THROW(fx.write_group({}, 0.0), std::logic_error);
  EXPECT_THROW(fx.write_group({0, 1, 2, 3, 4}, 0.0), std::logic_error);
}

TEST(FinePool, InvalidateTracksPerSector) {
  PoolFixture fx;
  fx.write_group({0, 1, 2, 3}, 0.0);
  fx.pool->invalidate(fx.mapping[2]);
  EXPECT_EQ(fx.pool->valid_sectors(), 3u);
  EXPECT_THROW(fx.pool->invalidate(fx.mapping[2]), std::logic_error);
}

TEST(FinePool, GcRepacksSparseSectorsDensely) {
  PoolFixture fx;
  SimTime now = 0.0;
  // Write 48 sparse pages (one live sector each) across 12 of 16 blocks,
  // then churn until GC repacks.
  for (std::uint64_t s = 0; s < 48; ++s) now = fx.write_group({s}, now);
  // Invalidate three quarters: victims become cheap.
  for (std::uint64_t s = 0; s < 48; ++s)
    if (s % 4 != 0) fx.pool->invalidate(fx.mapping[s]);
  // More sparse writes force GC.
  for (std::uint64_t s = 100; s < 130; ++s) now = fx.write_group({s}, now);
  EXPECT_GT(fx.stats.gc_invocations, 0u);
  // The surviving multiples of 4 must still read back via their mapping.
  const nand::AddressCodec codec(tiny_geo());
  for (std::uint64_t s = 0; s < 48; s += 4) {
    const auto ack = fx.dev.read_subpage(codec.decode_subpage(fx.mapping[s]),
                                         now);
    EXPECT_EQ(ack.token, s + 1000) << "sector " << s;
    EXPECT_EQ(ack.status, nand::ReadStatus::kOk);
  }
}

TEST(FinePool, GcCopySectorsCounted) {
  PoolFixture fx;
  SimTime now = 0.0;
  for (std::uint64_t s = 0; s < 56; ++s) now = fx.write_group({s}, now);
  for (std::uint64_t s = 0; s < 56; ++s)
    if (s % 2 == 0) fx.pool->invalidate(fx.mapping[s]);
  // Continue writing: space pressure forces GC, which must relocate the
  // surviving odd sectors (they stay readable with their tokens).
  const auto copies_before = fx.stats.gc_copy_sectors;
  for (std::uint64_t s = 100; s < 140; ++s) now = fx.write_group({s}, now);
  EXPECT_GT(fx.stats.gc_copy_sectors, copies_before);
  const nand::AddressCodec codec(tiny_geo());
  for (std::uint64_t s = 1; s < 56; s += 2) {
    const auto ack =
        fx.dev.read_subpage(codec.decode_subpage(fx.mapping[s]), now);
    EXPECT_EQ(ack.token, s + 1000) << "sector " << s;
  }
}

TEST(FinePool, PaddingSlotsNeverBecomeValid) {
  PoolFixture fx;
  fx.write_group({5}, 0.0);
  const nand::AddressCodec codec(tiny_geo());
  const auto addr = codec.decode_subpage(fx.mapping[5]);
  // Slot 1 of the same page holds padding (token 0, stored by the device
  // but never mapped).
  const auto pad = fx.dev.read_subpage(
      nand::SubpageAddr{addr.page, 1}, 1.0);
  EXPECT_EQ(pad.token, 0u);
  EXPECT_EQ(fx.pool->valid_sectors(), 1u);
}

}  // namespace
}  // namespace esp::ftl
