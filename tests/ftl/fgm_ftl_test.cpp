// fgmFTL unit tests: buffer merging, sync fragmentation, GC repacking.
#include "ftl/fgm_ftl.h"

#include <gtest/gtest.h>

#include "ftl/types.h"
#include "nand/device.h"

namespace esp::ftl {
namespace {

nand::Geometry tiny_geo() {
  nand::Geometry geo;
  geo.channels = 2;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 8;
  geo.pages_per_block = 16;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

struct FgmFixture {
  explicit FgmFixture(std::size_t buffer_sectors = 32) : dev(tiny_geo()) {
    FgmFtl::Config cfg;
    cfg.logical_sectors = 1024;
    cfg.gc_reserve_blocks = 4;
    cfg.buffer_sectors = buffer_sectors;
    ftl = std::make_unique<FgmFtl>(dev, cfg);
  }
  nand::NandDevice dev;
  std::unique_ptr<FgmFtl> ftl;
};

TEST(FgmFtl, AsyncWritesStayBufferedUntilFlush) {
  FgmFixture fx;
  fx.ftl->write(0, 2, false, 0.0);
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 0u);
  // Readable straight from the buffer.
  std::vector<std::uint64_t> tokens;
  const auto result = fx.ftl->read(0, 2, 1.0, &tokens);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(tokens[0], make_token(0, 1));
  EXPECT_GT(fx.ftl->stats().buffer_hits, 0u);
  fx.ftl->flush(2.0);
  EXPECT_GT(fx.ftl->stats().flash_prog_full, 0u);
}

TEST(FgmFtl, SyncWriteFlushesImmediately) {
  FgmFixture fx;
  fx.ftl->write(0, 1, true, 0.0);
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 1u);
}

TEST(FgmFtl, LoneSyncSmallWritePaysFullPage) {
  FgmFixture fx;
  fx.ftl->write(0, 1, true, 0.0);
  // 4-KB data in a 16-KB program: request WAF = 4 (internal fragmentation).
  EXPECT_DOUBLE_EQ(fx.ftl->stats().avg_small_request_waf(), 4.0);
}

TEST(FgmFtl, MergedAsyncSmallWritesReachWafOne) {
  FgmFixture fx;
  // Four contiguous async 4-KB writes merge into one dense page on flush.
  for (std::uint64_t s = 0; s < 4; ++s) fx.ftl->write(s, 1, false, 0.0);
  fx.ftl->flush(1.0);
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 1u);
  EXPECT_DOUBLE_EQ(fx.ftl->stats().avg_small_request_waf(), 1.0);
}

TEST(FgmFtl, SyncWriteDragsContiguousNeighborsAlong) {
  FgmFixture fx;
  fx.ftl->write(10, 1, false, 0.0);  // buffered
  fx.ftl->write(11, 1, true, 1.0);   // sync: flushes 10 and 11 together
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 1u);
  // Two sectors in one page: each paid half a page.
  EXPECT_DOUBLE_EQ(fx.ftl->stats().avg_small_request_waf(), 2.0);
}

TEST(FgmFtl, CapacityEvictionFlushesOldest) {
  FgmFixture fx(/*buffer_sectors=*/4);
  for (std::uint64_t s = 0; s < 10; s += 2)  // non-contiguous
    fx.ftl->write(s, 1, false, 0.0);
  EXPECT_GT(fx.ftl->stats().flash_prog_full, 0u);
  // Everything still readable with the latest version.
  std::vector<std::uint64_t> tokens;
  for (std::uint64_t s = 0; s < 10; s += 2) {
    fx.ftl->read(s, 1, 100.0, &tokens);
    EXPECT_EQ(tokens[0], make_token(s, 1));
  }
}

TEST(FgmFtl, OverwriteInBufferCoalesces) {
  FgmFixture fx;
  fx.ftl->write(5, 1, false, 0.0);
  fx.ftl->write(5, 1, false, 1.0);
  fx.ftl->write(5, 1, false, 2.0);
  fx.ftl->flush(3.0);
  // Three host writes, one flash program.
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 1u);
  EXPECT_EQ(fx.ftl->stats().buffer_hits, 2u);
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(5, 1, 4.0, &tokens);
  EXPECT_EQ(tokens[0], make_token(5, 3));
}

TEST(FgmFtl, GcRepacksSparsePages) {
  FgmFixture fx;
  SimTime now = 0.0;
  // Sync-heavy churn writes sparse pages; GC must repack and reclaim.
  for (int round = 0; round < 4000; ++round) {
    const std::uint64_t s = (round * 7) % 512;
    now = fx.ftl->write(s, 1, true, now).done;
  }
  EXPECT_GT(fx.ftl->stats().gc_invocations, 0u);
  EXPECT_GT(fx.ftl->stats().gc_copy_sectors, 0u);
  // Latest versions intact after repacking.
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(7, 1, now, &tokens);
  EXPECT_NE(tokens[0], 0u);
}

TEST(FgmFtl, TrimIsPageAligned) {
  // Ftl::trim discards only WHOLE logical pages inside the range; partial
  // pages at either edge keep their latest data, buffered or flashed
  // (see the contract in ftl/ftl.h). Pages hold 4 sectors here.
  FgmFixture fx;
  fx.ftl->write(0, 8, true, 0.0);    // pages 0 and 1 on flash
  fx.ftl->write(12, 2, false, 1.0);  // page 3, buffered
  fx.ftl->trim(0, 4);   // exactly page 0
  fx.ftl->trim(4, 2);   // partial: page 1 must survive
  fx.ftl->trim(12, 2);  // partial: buffered copies must survive
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(0, 8, 2.0, &tokens);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(tokens[s], 0u) << s;
  for (int s = 4; s < 8; ++s) EXPECT_NE(tokens[s], 0u) << s;
  fx.ftl->read(12, 2, 2.0, &tokens);
  EXPECT_EQ(tokens[0], make_token(12, 1));
  EXPECT_EQ(tokens[1], make_token(13, 1));
  // A range spanning the whole buffered page does discard it.
  fx.ftl->trim(12, 4);
  fx.ftl->read(12, 2, 3.0, &tokens);
  EXPECT_EQ(tokens[0], 0u);
  EXPECT_EQ(tokens[1], 0u);
}

TEST(FgmFtl, MappingMemoryIsPerSector) {
  FgmFixture fx;
  EXPECT_EQ(fx.ftl->mapping_memory_bytes(), 1024 * sizeof(std::uint32_t));
}

TEST(FgmFtl, RangeChecksEnforced) {
  FgmFixture fx;
  EXPECT_THROW(fx.ftl->write(1024, 1, false, 0.0), std::out_of_range);
  EXPECT_THROW(fx.ftl->read(0, 0, 0.0, nullptr), std::out_of_range);
}

}  // namespace
}  // namespace esp::ftl
