// Direct unit tests of the ESP subpage pool: level-ordered writing,
// forwarding, hot/cold GC with batched eviction, retention scanning,
// idle-block release.
#include "ftl/subpage_pool.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "ftl/block_allocator.h"
#include "nand/device.h"

namespace esp::ftl {
namespace {

nand::Geometry tiny_geo() {
  nand::Geometry geo;
  geo.channels = 2;
  geo.chips_per_channel = 1;
  geo.blocks_per_chip = 8;
  geo.pages_per_block = 4;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

struct PoolFixture {
  explicit PoolFixture(SubpagePool::Config config =
                           {.quota_blocks = 6,
                            .reserve_free_blocks = 2,
                            .expand_reserve_blocks = 2,
                            .retention_evict_age = 15 * sim_time::kDay})
      : dev(tiny_geo()), allocator(tiny_geo()) {
    pool = std::make_unique<SubpagePool>(
        dev, allocator, config, stats,
        [this](std::uint64_t sector, std::uint64_t new_lin) {
          mapping[sector] = new_lin;
        },
        [this](std::span<const SectorWrite> batch, SimTime now,
               bool retention) {
          for (const auto& sw : batch) {
            (retention ? retention_evicted : cold_evicted).insert(sw.sector);
            mapping.erase(sw.sector);
          }
          return now + 1.0;
        },
        [this](std::uint64_t sector) { return hot.contains(sector); },
        [this](std::uint64_t sector) { hot.erase(sector); });
  }

  SimTime write(std::uint64_t sector, SimTime now) {
    const auto it = mapping.find(sector);
    if (it != mapping.end()) {
      pool->invalidate(it->second);
      mapping.erase(it);
      hot.insert(sector);
    }
    return pool->write_sector(sector, sector + 5000, now).second;
  }

  nand::NandDevice dev;
  BlockAllocator allocator;
  FtlStats stats;
  std::map<std::uint64_t, std::uint64_t> mapping;
  std::set<std::uint64_t> hot;
  std::set<std::uint64_t> cold_evicted;
  std::set<std::uint64_t> retention_evicted;
  std::unique_ptr<SubpagePool> pool;
};

TEST(SubpagePool, FirstWritesLandInSlotZero) {
  PoolFixture fx;
  SimTime now = 0.0;
  for (std::uint64_t s = 0; s < 8; ++s) now = fx.write(s, now);
  const nand::AddressCodec codec(tiny_geo());
  for (std::uint64_t s = 0; s < 8; ++s)
    EXPECT_EQ(codec.decode_subpage(fx.mapping[s]).slot, 0u) << "sector " << s;
  EXPECT_EQ(fx.stats.flash_prog_sub, 8u);
}

TEST(SubpagePool, WritesAlternateChips) {
  PoolFixture fx;
  SimTime now = 0.0;
  now = fx.write(0, now);
  now = fx.write(1, now);
  const nand::AddressCodec codec(tiny_geo());
  EXPECT_NE(codec.decode_subpage(fx.mapping[0]).page.chip,
            codec.decode_subpage(fx.mapping[1]).page.chip);
}

TEST(SubpagePool, LevelsAdvanceAfterSlotZeroExhausts) {
  PoolFixture fx;
  SimTime now = 0.0;
  // Quota 6 blocks x 4 pages = 24 slot-0 slots; keep everything invalid by
  // rewriting a single hot sector, forcing level advances without
  // forwarding cost.
  for (int i = 0; i < 60; ++i) now = fx.write(7, now);
  const nand::AddressCodec codec(tiny_geo());
  // After 60 writes into 24 pages the pool must have reused pages at
  // higher slots.
  EXPECT_GT(codec.decode_subpage(fx.mapping[7]).slot, 0u);
  EXPECT_EQ(fx.pool->valid_sectors(), 1u);
}

TEST(SubpagePool, ForwardingPreservesDataAcrossLevels) {
  PoolFixture fx;
  SimTime now = 0.0;
  // One persistent sector + churn that exhausts slot 0 everywhere.
  now = fx.write(99, now);
  for (int i = 0; i < 80; ++i) now = fx.write(i % 7, now);
  // Sector 99 must still be mapped and readable with its token.
  ASSERT_TRUE(fx.mapping.contains(99) || fx.cold_evicted.contains(99));
  if (fx.mapping.contains(99)) {
    const nand::AddressCodec codec(tiny_geo());
    const auto ack =
        fx.dev.read_subpage(codec.decode_subpage(fx.mapping[99]), now);
    EXPECT_EQ(ack.status, nand::ReadStatus::kOk);
    EXPECT_EQ(ack.token, 99u + 5000u);
  }
}

TEST(SubpagePool, GcSplitsHotAndCold) {
  PoolFixture fx;
  SimTime now = 0.0;
  // Make sectors 0..7 resident; mark 0..3 hot (rewrite once); then churn a
  // disjoint range to force GC.
  for (std::uint64_t s = 0; s < 8; ++s) now = fx.write(s, now);
  for (std::uint64_t s = 0; s < 4; ++s) now = fx.write(s, now);  // hot now
  for (int i = 0; i < 120; ++i) now = fx.write(100 + (i % 5), now);
  // Cold sectors 4..7 must have been evicted; hot ones either still mapped
  // or (after several GC encounters with the hot flag reset) also evicted
  // -- but SOME eviction must have happened and no data may be lost.
  EXPECT_FALSE(fx.cold_evicted.empty());
  for (std::uint64_t s = 4; s < 8; ++s)
    EXPECT_TRUE(fx.mapping.contains(s) || fx.cold_evicted.contains(s))
        << "sector " << s << " lost";
  EXPECT_GT(fx.stats.gc_invocations, 0u);
}

TEST(SubpagePool, EvictionBatchesArriveSorted) {
  // (Indirectly: the fixture records sets; here we check the pool calls
  // the eviction callback at most once per GC pass by counting calls.)
  int calls = 0;
  nand::NandDevice dev(tiny_geo());
  BlockAllocator allocator(tiny_geo());
  FtlStats stats;
  std::map<std::uint64_t, std::uint64_t> mapping;
  SubpagePool pool(
      dev, allocator,
      {.quota_blocks = 4, .reserve_free_blocks = 2,
       .expand_reserve_blocks = 2},
      stats,
      [&](std::uint64_t sector, std::uint64_t lin) { mapping[sector] = lin; },
      [&](std::span<const SectorWrite> batch, SimTime now, bool) {
        ++calls;
        EXPECT_FALSE(batch.empty());
        for (const auto& sw : batch) mapping.erase(sw.sector);
        return now;
      },
      [](std::uint64_t) { return false; },  // everything cold
      [](std::uint64_t) {});
  SimTime now = 0.0;
  for (std::uint64_t s = 0; s < 120; ++s) {
    if (mapping.contains(s % 40)) {
      pool.invalidate(mapping[s % 40]);
      mapping.erase(s % 40);
    }
    now = pool.write_sector(s % 40, s, now).second;
  }
  EXPECT_GT(stats.cold_evictions, 0u);
  EXPECT_LE(calls, static_cast<int>(stats.gc_invocations));
}

TEST(SubpagePool, RetentionScanEvictsOnlyAgedData) {
  PoolFixture fx;
  SimTime now = 0.0;
  now = fx.write(1, now);
  // 20 days later write sector 2, then scan at day 20: sector 1 (age 20d)
  // exceeds the 15-day threshold, sector 2 (age 0) does not.
  now += 20 * sim_time::kDay;
  now = fx.write(2, now);
  fx.pool->retention_scan(now);
  EXPECT_TRUE(fx.retention_evicted.contains(1));
  EXPECT_FALSE(fx.retention_evicted.contains(2));
  EXPECT_EQ(fx.stats.retention_evictions, 1u);
}

TEST(SubpagePool, ReleaseIdleBlocksReturnsGarbageOnlyBlocks) {
  PoolFixture fx;
  SimTime now = 0.0;
  // Fill some blocks then invalidate everything.
  for (std::uint64_t s = 0; s < 16; ++s) now = fx.write(s, now);
  const auto blocks_before = fx.pool->blocks_in_use();
  for (std::uint64_t s = 0; s < 16; ++s) {
    fx.pool->invalidate(fx.mapping[s]);
    fx.mapping.erase(s);
  }
  const auto free_before = fx.allocator.total_free();
  fx.pool->release_idle_blocks(now);
  // Non-active garbage-only blocks are erased and released; the per-chip
  // active blocks stay.
  EXPECT_LT(fx.pool->blocks_in_use(), blocks_before);
  EXPECT_GT(fx.allocator.total_free(), free_before);
}

TEST(SubpagePool, QuotaRespectedAtRest) {
  PoolFixture fx;
  SimTime now = 0.0;
  for (int i = 0; i < 300; ++i) now = fx.write(i % 30, now);
  EXPECT_LE(fx.pool->blocks_in_use(), 6u + 1u);  // quota + GC transient
}

TEST(SubpagePool, InvalidateRejectsStaleSlotPointer) {
  PoolFixture fx;
  SimTime now = 0.0;
  now = fx.write(5, now);
  const auto stale = fx.mapping[5];
  // Rewrite: the pool's live copy moves; the stale address must be refused
  // (its page-level bookkeeping was already cleared by our write helper).
  now = fx.write(5, now);
  EXPECT_THROW(fx.pool->invalidate(stale), std::logic_error);
}

TEST(SubpagePool, RequiresAllCallbacks) {
  nand::NandDevice dev(tiny_geo());
  BlockAllocator allocator(tiny_geo());
  FtlStats stats;
  EXPECT_THROW(SubpagePool(dev, allocator, {.quota_blocks = 2}, stats,
                           nullptr, nullptr, nullptr, nullptr),
               std::invalid_argument);
}

TEST(SubpagePool, ZeroQuotaRejected) {
  nand::NandDevice dev(tiny_geo());
  BlockAllocator allocator(tiny_geo());
  FtlStats stats;
  EXPECT_THROW(
      SubpagePool(
          dev, allocator, {.quota_blocks = 0}, stats,
          [](std::uint64_t, std::uint64_t) {},
          [](std::span<const SectorWrite>, SimTime now, bool) { return now; },
          [](std::uint64_t) { return false; }, [](std::uint64_t) {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace esp::ftl
