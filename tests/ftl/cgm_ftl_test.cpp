// cgmFTL unit tests: RMW behavior, alignment splitting, GC under churn.
#include "ftl/cgm_ftl.h"

#include <gtest/gtest.h>

#include "ftl/types.h"
#include "nand/device.h"

namespace esp::ftl {
namespace {

nand::Geometry tiny_geo() {
  nand::Geometry geo;
  geo.channels = 2;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 8;
  geo.pages_per_block = 16;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

struct CgmFixture {
  CgmFixture() : dev(tiny_geo()) {
    CgmFtl::Config cfg;
    cfg.logical_sectors = 1024;  // 4 MiB logical vs 32 MiB physical
    cfg.gc_reserve_blocks = 4;
    ftl = std::make_unique<CgmFtl>(dev, cfg);
  }
  nand::NandDevice dev;
  std::unique_ptr<CgmFtl> ftl;
};

TEST(CgmFtl, WriteReadRoundTrip) {
  CgmFixture fx;
  fx.ftl->write(0, 4, false, 0.0);
  std::vector<std::uint64_t> tokens;
  const auto result = fx.ftl->read(0, 4, 1e7, &tokens);
  EXPECT_TRUE(result.ok);
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(tokens[i], make_token(i, 1));
}

TEST(CgmFtl, UnwrittenSectorsReadZeroTokens) {
  CgmFixture fx;
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(100, 4, 0.0, &tokens);
  for (const auto t : tokens) EXPECT_EQ(t, 0u);
}

TEST(CgmFtl, SmallWriteTriggersRmwOnlyWhenMapped) {
  CgmFixture fx;
  // First small write to an unmapped page: no read needed, no RMW.
  fx.ftl->write(0, 1, true, 0.0);
  EXPECT_EQ(fx.ftl->stats().rmw_ops, 0u);
  // Second small write to the SAME logical page: read-modify-write.
  fx.ftl->write(1, 1, true, 0.0);
  EXPECT_EQ(fx.ftl->stats().rmw_ops, 1u);
  // Both sectors still intact.
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(0, 2, 1.0, &tokens);
  EXPECT_EQ(tokens[0], make_token(0, 1));
  EXPECT_EQ(tokens[1], make_token(1, 1));
}

TEST(CgmFtl, SmallWritePreservesSiblingSectors) {
  CgmFixture fx;
  fx.ftl->write(0, 4, false, 0.0);  // full page
  fx.ftl->write(2, 1, true, 1.0);   // overwrite one sector
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(0, 4, 2.0, &tokens);
  EXPECT_EQ(tokens[0], make_token(0, 1));
  EXPECT_EQ(tokens[1], make_token(1, 1));
  EXPECT_EQ(tokens[2], make_token(2, 2));  // updated
  EXPECT_EQ(tokens[3], make_token(3, 1));
}

TEST(CgmFtl, MisalignedFullPageWriteSplitsIntoTwoServices) {
  CgmFixture fx;
  // Pre-write both touched pages so each partial service needs an RMW
  // (footnote 1 of the paper).
  fx.ftl->write(0, 8, false, 0.0);
  const auto rmw_before = fx.ftl->stats().rmw_ops;
  const auto progs_before = fx.ftl->stats().flash_prog_full;
  fx.ftl->write(2, 4, false, 1.0);  // 16-KB write, misaligned by 2 sectors
  EXPECT_EQ(fx.ftl->stats().rmw_ops - rmw_before, 2u);
  EXPECT_EQ(fx.ftl->stats().flash_prog_full - progs_before, 2u);
}

TEST(CgmFtl, AlignedFullPageWriteIsSingleProgram) {
  CgmFixture fx;
  const auto progs_before = fx.ftl->stats().flash_prog_full;
  fx.ftl->write(4, 4, false, 0.0);
  EXPECT_EQ(fx.ftl->stats().flash_prog_full - progs_before, 1u);
  EXPECT_EQ(fx.ftl->stats().rmw_ops, 0u);
}

TEST(CgmFtl, SmallRequestWafIsPageSized) {
  CgmFixture fx;
  fx.ftl->write(0, 1, true, 0.0);  // 4 KB -> one 16-KB program
  EXPECT_DOUBLE_EQ(fx.ftl->stats().avg_small_request_waf(), 4.0);
}

TEST(CgmFtl, GcReclaimsSpaceUnderChurn) {
  CgmFixture fx;
  SimTime now = 0.0;
  // Overwrite the same small logical range far beyond physical block count.
  for (int round = 0; round < 3000; ++round) {
    const std::uint64_t lpn = round % 64;
    now = fx.ftl->write(lpn * 4, 4, false, now).done;
  }
  EXPECT_GT(fx.ftl->stats().gc_invocations, 0u);
  EXPECT_GT(fx.ftl->stats().flash_erases, 0u);
  // Data still correct after GC.
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(0, 4, now, &tokens);
  EXPECT_NE(tokens[0], 0u);
}

TEST(CgmFtl, TrimUnmapsWholePages) {
  CgmFixture fx;
  fx.ftl->write(0, 8, false, 0.0);
  fx.ftl->trim(0, 4);
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(0, 4, 1.0, &tokens);
  for (const auto t : tokens) EXPECT_EQ(t, 0u);
  fx.ftl->read(4, 4, 1.0, &tokens);
  for (const auto t : tokens) EXPECT_NE(t, 0u);
}

TEST(CgmFtl, PartialTrimIgnored) {
  CgmFixture fx;
  fx.ftl->write(0, 4, false, 0.0);
  fx.ftl->trim(1, 2);  // interior sectors only: not page-aligned
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(0, 4, 1.0, &tokens);
  for (const auto t : tokens) EXPECT_NE(t, 0u);
}

TEST(CgmFtl, MappingMemoryIsPerPage) {
  CgmFixture fx;
  EXPECT_EQ(fx.ftl->mapping_memory_bytes(), 1024 / 4 * sizeof(std::uint32_t));
}

TEST(CgmFtl, RejectsOutOfRangeAccess) {
  CgmFixture fx;
  EXPECT_THROW(fx.ftl->write(1024, 1, false, 0.0), std::out_of_range);
  EXPECT_THROW(fx.ftl->read(1020, 8, 0.0, nullptr), std::out_of_range);
  EXPECT_THROW(fx.ftl->write(0, 0, false, 0.0), std::out_of_range);
}

TEST(CgmFtl, RejectsOversizedLogicalSpace) {
  nand::NandDevice dev(tiny_geo());
  CgmFtl::Config cfg;
  cfg.logical_sectors = dev.geometry().total_subpages() + 1;
  EXPECT_THROW(CgmFtl(dev, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace esp::ftl
