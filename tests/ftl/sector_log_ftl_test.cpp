// sectorLogFTL unit tests: log appends cost full pages (no ESP), merge
// cleaning, extended mapping, comparison hooks.
#include "ftl/sector_log_ftl.h"

#include <gtest/gtest.h>

#include "ftl/types.h"
#include "nand/device.h"

namespace esp::ftl {
namespace {

nand::Geometry tiny_geo() {
  nand::Geometry geo;
  geo.channels = 2;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 16;
  geo.pages_per_block = 16;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

struct LogFixture {
  LogFixture() : dev(tiny_geo()) {
    SectorLogFtl::Config cfg;
    cfg.logical_sectors = 2048;
    cfg.log_region_fraction = 0.2;
    cfg.gc_reserve_blocks = 4;
    cfg.buffer_sectors = 32;
    ftl = std::make_unique<SectorLogFtl>(dev, cfg);
  }
  nand::NandDevice dev;
  std::unique_ptr<SectorLogFtl> ftl;
};

TEST(SectorLogFtl, SyncSmallWriteBurnsAFullPage) {
  // THE difference from subFTL: no ESP, so a lone 4-KB sync write is a
  // padded 16-KB program (request WAF 4).
  LogFixture fx;
  fx.ftl->write(0, 1, true, 0.0);
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 1u);
  EXPECT_EQ(fx.ftl->stats().flash_prog_sub, 0u);
  EXPECT_DOUBLE_EQ(fx.ftl->stats().avg_small_request_waf(), 4.0);
}

TEST(SectorLogFtl, LogCopyShadowsDataRegion) {
  LogFixture fx;
  fx.ftl->write(0, 4, true, 0.0);  // data region v1
  fx.ftl->write(1, 1, true, 1.0);  // log append v2
  std::vector<std::uint64_t> tokens;
  const auto result = fx.ftl->read(0, 4, 2.0, &tokens);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(tokens[0], make_token(0, 1));
  EXPECT_EQ(tokens[1], make_token(1, 2));  // log version wins
  EXPECT_EQ(fx.ftl->log_mapping_entries(), 1u);
}

TEST(SectorLogFtl, FullPageWriteSupersedesLogCopies) {
  LogFixture fx;
  fx.ftl->write(1, 1, true, 0.0);
  EXPECT_EQ(fx.ftl->log_mapping_entries(), 1u);
  fx.ftl->write(0, 4, true, 1.0);
  EXPECT_EQ(fx.ftl->log_mapping_entries(), 0u);
}

TEST(SectorLogFtl, LogCleaningMergesBackToDataRegion) {
  LogFixture fx;
  SimTime now = 0.0;
  // Append far beyond the log quota (0.2 * 64 blocks = 13 blocks * 16
  // pages = 208 log appends before cleaning starts).
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t s = (i * 7) % 512;
    now = fx.ftl->write(s, 1, true, now).done;
  }
  EXPECT_GT(fx.ftl->stats().cold_evictions, 0u);  // merged sectors
  EXPECT_GT(fx.ftl->stats().rmw_ops, 0u);         // per-lpn RMW merges
  // Everything still readable at its latest version.
  std::vector<std::uint64_t> tokens;
  for (std::uint64_t s = 0; s < 512; s += 31) {
    fx.ftl->read(s, 1, now, &tokens);
    EXPECT_NE(tokens[0], 0u) << "sector " << s;
  }
}

TEST(SectorLogFtl, AsyncContiguousRunsMergeDensely) {
  LogFixture fx;
  for (std::uint64_t s = 4; s < 8; ++s) fx.ftl->write(s, 1, false, 0.0);
  fx.ftl->flush(1.0);
  // A complete logical page went straight to the data region: one dense
  // program, no log entry.
  EXPECT_EQ(fx.ftl->stats().flash_prog_full, 1u);
  EXPECT_EQ(fx.ftl->log_mapping_entries(), 0u);
}

TEST(SectorLogFtl, TrimDropsLogAndData) {
  LogFixture fx;
  fx.ftl->write(0, 4, true, 0.0);
  fx.ftl->write(2, 1, true, 1.0);
  fx.ftl->trim(0, 4);
  std::vector<std::uint64_t> tokens;
  fx.ftl->read(0, 4, 2.0, &tokens);
  for (const auto t : tokens) EXPECT_EQ(t, 0u);
  EXPECT_EQ(fx.ftl->log_mapping_entries(), 0u);
}

TEST(SectorLogFtl, MappingMemoryBetweenCgmAndFgm) {
  LogFixture fx;
  // 2048 sectors -> 512 lpns * 4B = 2 KiB coarse + log hash.
  fx.ftl->write(3, 1, true, 0.0);
  const auto bytes = fx.ftl->mapping_memory_bytes();
  EXPECT_GE(bytes, 512 * 4u);
  EXPECT_LT(bytes, 2048 * 4u);  // far below a full fine-grained table
}

TEST(SectorLogFtl, RejectsBadConfig) {
  nand::NandDevice dev(tiny_geo());
  SectorLogFtl::Config cfg;
  cfg.logical_sectors = 0;
  EXPECT_THROW(SectorLogFtl(dev, cfg), std::invalid_argument);
  cfg.logical_sectors = 2048;
  cfg.log_region_fraction = 1.0;
  EXPECT_THROW(SectorLogFtl(dev, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace esp::ftl
