#include "ftl/write_buffer.h"

#include <gtest/gtest.h>

namespace esp::ftl {
namespace {

TEST(WriteBuffer, InsertAndLookup) {
  WriteBuffer buf(8);
  EXPECT_FALSE(buf.insert(5, 100, true));
  std::uint64_t token = 0;
  EXPECT_TRUE(buf.lookup(5, &token));
  EXPECT_EQ(token, 100u);
  EXPECT_FALSE(buf.lookup(6, &token));
}

TEST(WriteBuffer, OverwriteReportsHit) {
  WriteBuffer buf(8);
  buf.insert(5, 100, true);
  EXPECT_TRUE(buf.insert(5, 200, false));
  std::uint64_t token = 0;
  buf.lookup(5, &token);
  EXPECT_EQ(token, 200u);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(WriteBuffer, ExtractRunReturnsContiguousSorted) {
  WriteBuffer buf(16);
  for (const std::uint64_t s : {3, 5, 4, 7, 10}) buf.insert(s, s * 10, true);
  const auto run = buf.extract_run(4);
  ASSERT_EQ(run.size(), 3u);
  EXPECT_EQ(run[0].sector, 3u);
  EXPECT_EQ(run[1].sector, 4u);
  EXPECT_EQ(run[2].sector, 5u);
  EXPECT_EQ(run[1].token, 40u);
  // Extracted entries are gone; others remain.
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_TRUE(buf.lookup(7, nullptr));
}

TEST(WriteBuffer, ExtractRunMissingSectorEmpty) {
  WriteBuffer buf(8);
  buf.insert(1, 1, true);
  EXPECT_TRUE(buf.extract_run(5).empty());
  EXPECT_EQ(buf.size(), 1u);
}

TEST(WriteBuffer, ExtractRunAtSectorZero) {
  WriteBuffer buf(8);
  buf.insert(0, 7, true);
  buf.insert(1, 8, true);
  const auto run = buf.extract_run(0);
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(run[0].sector, 0u);
}

TEST(WriteBuffer, OldestRunIsLeastRecentlyWritten) {
  WriteBuffer buf(16);
  buf.insert(100, 1, true);
  buf.insert(200, 2, true);
  buf.insert(100, 3, true);  // refresh 100: now 200 is oldest
  const auto run = buf.extract_oldest_run();
  ASSERT_EQ(run.size(), 1u);
  EXPECT_EQ(run[0].sector, 200u);
}

TEST(WriteBuffer, OldestRunIncludesNeighbors) {
  WriteBuffer buf(16);
  buf.insert(50, 1, true);
  buf.insert(51, 2, true);
  buf.insert(90, 3, true);
  const auto run = buf.extract_oldest_run();
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(run[0].sector, 50u);
  EXPECT_EQ(run[1].sector, 51u);
}

TEST(WriteBuffer, OverCapacityFlag) {
  WriteBuffer buf(2);
  buf.insert(1, 1, true);
  buf.insert(2, 2, true);
  EXPECT_FALSE(buf.over_capacity());
  buf.insert(3, 3, true);
  EXPECT_TRUE(buf.over_capacity());
}

TEST(WriteBuffer, EraseDropsEntry) {
  WriteBuffer buf(8);
  buf.insert(5, 1, true);
  EXPECT_TRUE(buf.erase(5));
  EXPECT_FALSE(buf.erase(5));
  EXPECT_FALSE(buf.lookup(5, nullptr));
}

TEST(WriteBuffer, DrainReturnsEverythingOnce) {
  WriteBuffer buf(16);
  for (std::uint64_t s = 0; s < 10; s += 2) buf.insert(s, s, s % 4 == 0);
  const auto all = buf.drain();
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(buf.empty());
  EXPECT_TRUE(buf.drain().empty());
}

TEST(WriteBuffer, SmallFlagPreserved) {
  WriteBuffer buf(8);
  buf.insert(1, 10, true);
  buf.insert(2, 20, false);
  const auto run = buf.extract_run(1);
  ASSERT_EQ(run.size(), 2u);
  EXPECT_TRUE(run[0].small);
  EXPECT_FALSE(run[1].small);
}

TEST(WriteBuffer, StaleAgeLogEntriesSkipped) {
  WriteBuffer buf(8);
  buf.insert(1, 1, true);
  buf.insert(2, 2, true);
  buf.extract_run(1);       // removes 1 and 2
  buf.insert(3, 3, true);
  const auto run = buf.extract_oldest_run();  // must skip stale 1, 2
  ASSERT_EQ(run.size(), 1u);
  EXPECT_EQ(run[0].sector, 3u);
}

TEST(WriteBuffer, PageGroupPullsWholePages) {
  WriteBuffer buf(16);
  // lpn 0 has sectors {1, 3}; lpn 1 has {4}; lpn 3 has {12} (gap at lpn 2).
  for (const std::uint64_t s : {1, 3, 4, 12}) buf.insert(s, s, true);
  const auto group = buf.extract_page_group(3, 4);
  ASSERT_EQ(group.size(), 3u);  // lpns 0 and 1 chain; lpn 3 does not
  EXPECT_EQ(group[0].sector, 1u);
  EXPECT_EQ(group[1].sector, 3u);
  EXPECT_EQ(group[2].sector, 4u);
  EXPECT_TRUE(buf.lookup(12, nullptr));
}

TEST(WriteBuffer, PageGroupOfMissingSectorIsEmpty) {
  WriteBuffer buf(8);
  buf.insert(0, 1, true);
  EXPECT_TRUE(buf.extract_page_group(9, 4).empty());
}

TEST(WriteBuffer, OldestPageGroupFollowsAge) {
  WriteBuffer buf(16);
  buf.insert(40, 1, true);  // lpn 10, oldest
  buf.insert(80, 2, true);  // lpn 20
  buf.insert(41, 3, true);  // lpn 10 again (same page as oldest)
  const auto group = buf.extract_oldest_page_group(4);
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0].sector, 40u);
  EXPECT_EQ(group[1].sector, 41u);
}

TEST(WriteBuffer, PageGroupSortedWithinAndAcrossPages) {
  WriteBuffer buf(16);
  for (const std::uint64_t s : {7, 5, 6, 4, 3, 0}) buf.insert(s, s, true);
  const auto group = buf.extract_page_group(5, 4);
  ASSERT_EQ(group.size(), 6u);
  for (std::size_t i = 1; i < group.size(); ++i)
    EXPECT_LT(group[i - 1].sector, group[i].sector);
}

TEST(WriteBuffer, AgeLogBoundedUnderHotOverwrites) {
  // One hot sector rewritten a million times never leaves the buffer, so
  // the age log cannot rely on lazy front-pruning; compaction must keep it
  // proportional to the LIVE entry count.
  WriteBuffer buf(64);
  for (std::uint64_t i = 0; i < 1'000'000; ++i) buf.insert(42, i + 1, true);
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_LE(buf.age_log_size(), 2 * buf.size() + 16 + 1);
  // LRU order survives compaction: an older cold sector still drains first.
  buf.insert(7, 1, true);
  for (std::uint64_t i = 0; i < 100; ++i) buf.insert(42, i, true);
  const auto oldest = buf.extract_oldest_run();
  ASSERT_EQ(oldest.size(), 1u);
  EXPECT_EQ(oldest[0].sector, 7u);
}

}  // namespace
}  // namespace esp::ftl
