#include "ftl/block_allocator.h"

#include <gtest/gtest.h>

#include <set>

namespace esp::ftl {
namespace {

nand::Geometry small_geo() {
  nand::Geometry geo;
  geo.channels = 2;
  geo.chips_per_channel = 1;
  geo.blocks_per_chip = 4;
  geo.pages_per_block = 4;
  return geo;
}

TEST(BlockAllocator, StartsWithAllBlocksFree) {
  BlockAllocator alloc(small_geo());
  EXPECT_EQ(alloc.total_free(), 8u);
  EXPECT_EQ(alloc.free_on_chip(0), 4u);
  EXPECT_EQ(alloc.chips(), 2u);
}

TEST(BlockAllocator, AllocDrainsChip) {
  BlockAllocator alloc(small_geo());
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 4; ++i) {
    const auto blk = alloc.alloc(0);
    ASSERT_TRUE(blk.has_value());
    seen.insert(*blk);
  }
  EXPECT_EQ(seen.size(), 4u);  // all distinct
  EXPECT_FALSE(alloc.alloc(0).has_value());
  EXPECT_EQ(alloc.free_on_chip(1), 4u);  // other chip untouched
}

TEST(BlockAllocator, ReleaseMakesBlockAvailableAgain) {
  BlockAllocator alloc(small_geo());
  const auto blk = alloc.alloc(0);
  ASSERT_TRUE(blk);
  alloc.release(0, *blk, 1);
  EXPECT_EQ(alloc.free_on_chip(0), 4u);
}

TEST(BlockAllocator, PrefersLowestPeBlock) {
  BlockAllocator alloc(small_geo());
  // Drain chip 0, then release with distinct wear levels.
  std::vector<std::uint32_t> blocks;
  while (const auto blk = alloc.alloc(0)) blocks.push_back(*blk);
  alloc.release(0, blocks[0], 50);
  alloc.release(0, blocks[1], 5);
  alloc.release(0, blocks[2], 500);
  EXPECT_EQ(alloc.alloc(0), blocks[1]);  // lowest P/E first
  EXPECT_EQ(alloc.alloc(0), blocks[0]);
  EXPECT_EQ(alloc.alloc(0), blocks[2]);
}

TEST(BlockAllocator, TotalFreeTracksBothChips) {
  BlockAllocator alloc(small_geo());
  alloc.alloc(0);
  alloc.alloc(1);
  EXPECT_EQ(alloc.total_free(), 6u);
}

TEST(BlockAllocator, OutOfRangeChipThrows) {
  BlockAllocator alloc(small_geo());
  EXPECT_THROW(alloc.alloc(9), std::out_of_range);
  EXPECT_THROW(alloc.release(9, 0, 0), std::out_of_range);
  EXPECT_THROW(alloc.free_on_chip(9), std::out_of_range);
}

}  // namespace
}  // namespace esp::ftl
