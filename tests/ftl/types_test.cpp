#include "ftl/types.h"

#include <gtest/gtest.h>

namespace esp::ftl {
namespace {

TEST(Token, RoundTripsSectorAndVersion) {
  for (const std::uint64_t sector : {0ull, 1ull, 12345ull, (1ull << 30)}) {
    for (const std::uint64_t version : {1ull, 2ull, 999999ull}) {
      const auto token = make_token(sector, version);
      EXPECT_EQ(token_sector(token), sector);
      EXPECT_EQ(token_version(token), version);
      EXPECT_FALSE(token_empty(token));
    }
  }
}

TEST(Token, ZeroIsReservedForEmpty) {
  EXPECT_TRUE(token_empty(0));
  // Even version 0 of sector 0 is distinguishable from empty.
  EXPECT_FALSE(token_empty(make_token(0, 0)));
}

TEST(Token, DistinctVersionsDiffer) {
  EXPECT_NE(make_token(5, 1), make_token(5, 2));
  EXPECT_NE(make_token(5, 1), make_token(6, 1));
}

TEST(Token, VersionWrapsConsistently) {
  // Versions are stored modulo 2^24. FTLs and the driver both derive
  // tokens through make_token, so a wrap is consistent on both sides;
  // this test pins the masking behavior.
  EXPECT_EQ(make_token(5, (1ull << 24) + 3), make_token(5, 3));
  EXPECT_NE(make_token(5, (1ull << 24) - 1), make_token(5, 0));
}

TEST(FtlStats, SmallRequestWafDefaultsToOne) {
  FtlStats stats;
  EXPECT_DOUBLE_EQ(stats.avg_small_request_waf(), 1.0);
}

TEST(FtlStats, SmallRequestWafComputesRatio) {
  FtlStats stats;
  stats.small_write_bytes = 4096;
  stats.small_service_flash_bytes = 16384;
  EXPECT_DOUBLE_EQ(stats.avg_small_request_waf(), 4.0);
  stats.small_extra_flash_bytes = 4096;
  EXPECT_DOUBLE_EQ(stats.avg_small_request_waf(), 5.0);
}

TEST(FtlStats, OverallWafCountsBothProgramKinds) {
  FtlStats stats;
  stats.host_write_sectors = 8;          // 32 KB host data
  stats.flash_prog_full = 2;             // 32 KB
  stats.flash_prog_sub = 4;              // 16 KB
  EXPECT_DOUBLE_EQ(stats.overall_waf(16384, 4096), 48.0 / 32.0);
}

TEST(FtlStats, OverallWafOneWithoutWrites) {
  FtlStats stats;
  EXPECT_DOUBLE_EQ(stats.overall_waf(16384, 4096), 1.0);
}

TEST(StatsDelta, SubtractsEveryCounter) {
  FtlStats before;
  before.host_write_requests = 10;
  before.flash_prog_sub = 5;
  before.gc_invocations = 2;
  before.small_write_bytes = 4096;

  FtlStats after = before;
  after.host_write_requests = 25;
  after.flash_prog_sub = 11;
  after.gc_invocations = 3;
  after.small_write_bytes = 12288;
  after.forward_migrations = 7;

  const FtlStats delta = stats_delta(after, before);
  EXPECT_EQ(delta.host_write_requests, 15u);
  EXPECT_EQ(delta.flash_prog_sub, 6u);
  EXPECT_EQ(delta.gc_invocations, 1u);
  EXPECT_EQ(delta.small_write_bytes, 8192u);
  EXPECT_EQ(delta.forward_migrations, 7u);
  EXPECT_EQ(delta.host_read_requests, 0u);
}

TEST(StatsDelta, IdenticalSnapshotsGiveZeros) {
  FtlStats snapshot;
  snapshot.flash_erases = 42;
  const FtlStats delta = stats_delta(snapshot, snapshot);
  EXPECT_EQ(delta.flash_erases, 0u);
  EXPECT_EQ(delta.rmw_ops, 0u);
}

}  // namespace
}  // namespace esp::ftl
