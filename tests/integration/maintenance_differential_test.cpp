// Scan-vs-index differential (the production-scale replay tentpole's
// safety net): the incremental maintenance indices (RetentionQueue,
// WearIndex, idle-candidate list) must make BIT-IDENTICAL decisions to the
// original O(device) linear scans they replaced. Two angles:
//
//   1. whole-stack: a seeded, audited 4-FTL sweep run twice -- once with
//      SsdConfig::reference_scan_maintenance set, once clear -- must write
//      byte-identical causal-attribution journals (every GC victim,
//      retention eviction and wear-leveling move, in order);
//   2. pool-level: one SubpagePool per mode driven with an identical
//      write/invalidate/maintenance sequence must agree on every returned
//      completion time, every mapping update, every eviction batch and
//      every deterministic counter.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/parallel_runner.h"
#include "ftl/block_allocator.h"
#include "ftl/subpage_pool.h"
#include "nand/device.h"
#include "test_common.h"
#include "util/rng.h"

namespace esp {
namespace {

using core::FtlKind;

const FtlKind kKinds[] = {FtlKind::kCgm, FtlKind::kFgm, FtlKind::kSub,
                          FtlKind::kSectorLog};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing journal " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// Maintenance clock compressed the same way macro_replay does it: seconds
// instead of days plus think-time dilation, so retention scans and wear
// checks actually fire inside a few thousand requests.
std::vector<core::ExperimentCell> make_cells(const std::string& tag,
                                             bool reference_scan) {
  std::vector<core::ExperimentCell> cells;
  for (const auto kind : kKinds) {
    core::ExperimentCell cell;
    cell.key = "maint_diff/" + core::ftl_kind_name(kind);
    cell.spec.ssd = test::tiny_config(kind);
    cell.spec.ssd.reference_scan_maintenance = reference_scan;
    cell.spec.ssd.retention_scan_interval = 0.05 * sim_time::kSecond;
    cell.spec.ssd.retention_evict_age = 0.20 * sim_time::kSecond;
    cell.spec.ssd.wl_check_interval = 64;
    cell.spec.ssd.wl_pe_threshold = 4;
    cell.spec.workload.request_count = 6000;
    cell.spec.workload.r_small = 0.8;
    cell.spec.workload.r_synch = 0.7;
    cell.spec.workload.read_fraction = 0.2;
    cell.spec.workload.trim_fraction = 0.02;
    cell.spec.workload.think_us = 200;
    cell.spec.workload.seed = 11;
    cell.spec.warmup_requests = 0;
    cell.spec.audit = true;
    cell.spec.journal_path = ::testing::TempDir() + "md-" + tag + "-" +
                             core::ftl_kind_name(kind) + ".jsonl";
    cells.push_back(std::move(cell));
  }
  return cells;
}

TEST(MaintenanceDifferential, JournalsByteIdenticalScanVsIndex) {
  const auto scan_cells = make_cells("scan", true);
  const auto index_cells = make_cells("index", false);
  core::ParallelRunnerConfig cfg;
  cfg.jobs = 1;
  cfg.derive_seeds = false;  // seeds fixed in the specs above
  core::ParallelRunner runner(cfg);
  const auto scan = runner.run(scan_cells);
  const auto index = runner.run(index_cells);
  ASSERT_EQ(scan.size(), index.size());

  for (std::size_t i = 0; i < scan.size(); ++i) {
    ASSERT_TRUE(scan[i].ok) << scan[i].key << ": " << scan[i].error;
    ASSERT_TRUE(index[i].ok) << index[i].key << ": " << index[i].error;
    const auto& a = scan[i].result;
    const auto& b = index[i].result;
    // The journal compare below subsumes these, but counter mismatches
    // give a far more readable first-divergence signal.
    EXPECT_EQ(a.raw.ftl_stats.gc_invocations, b.raw.ftl_stats.gc_invocations)
        << scan[i].key;
    EXPECT_EQ(a.raw.ftl_stats.retention_evictions,
              b.raw.ftl_stats.retention_evictions)
        << scan[i].key;
    EXPECT_EQ(a.raw.ftl_stats.wear_level_relocations,
              b.raw.ftl_stats.wear_level_relocations)
        << scan[i].key;
    EXPECT_EQ(a.raw.ftl_stats.flash_erases, b.raw.ftl_stats.flash_erases)
        << scan[i].key;
    EXPECT_EQ(a.raw.end_us, b.raw.end_us) << scan[i].key;
    EXPECT_EQ(a.verify_failures, 0u) << scan[i].key;
    EXPECT_EQ(b.verify_failures, 0u) << index[i].key;

    const std::string ja = slurp(scan_cells[i].spec.journal_path);
    const std::string jb = slurp(index_cells[i].spec.journal_path);
    ASSERT_FALSE(ja.empty()) << scan_cells[i].key;
    EXPECT_EQ(ja, jb) << "journal for " << scan_cells[i].key
                      << " differs between scan and index maintenance";
  }
  // The compressed clock must have exercised the maintenance paths in at
  // least one cell, or this test proves nothing.
  std::uint64_t evictions = 0, wl_moves = 0;
  for (const auto& r : index) {
    evictions += r.result.raw.ftl_stats.retention_evictions;
    wl_moves += r.result.raw.ftl_stats.wear_level_relocations;
  }
  EXPECT_GT(evictions, 0u) << "no retention eviction fired anywhere";
  EXPECT_GT(wl_moves, 0u) << "no wear-leveling relocation fired anywhere";
}

// --------------------------------------------------------------------------
// Pool-level differential: drive a scan-mode and an index-mode SubpagePool
// through one interleaved write/invalidate/maintenance sequence and demand
// step-by-step agreement.

struct PoolHarness {
  nand::Geometry geo = test::tiny_geometry();
  std::unique_ptr<nand::NandDevice> dev;
  std::unique_ptr<ftl::BlockAllocator> allocator;
  ftl::FtlStats stats;
  std::unique_ptr<ftl::SubpagePool> pool;
  /// sector -> live linear subpage address (the "owner FTL's" mapping).
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  /// Every eviction the pool handed back: (sector, token, retention?).
  std::vector<std::tuple<std::uint64_t, std::uint64_t, bool>> evicted;

  explicit PoolHarness(bool reference_scan) {
    dev = std::make_unique<nand::NandDevice>(geo);
    allocator = std::make_unique<ftl::BlockAllocator>(geo);
    ftl::SubpagePool::Config cfg;
    cfg.quota_blocks = geo.total_blocks() / 2;
    cfg.reserve_free_blocks = 4;
    cfg.expand_reserve_blocks = 8;
    cfg.retention_evict_age = 4000.0;  // us; writes advance now by ~2-8
    cfg.reference_scan_maintenance = reference_scan;
    pool = std::make_unique<ftl::SubpagePool>(
        *dev, *allocator, cfg, stats,
        /*place=*/
        [this](std::uint64_t sector, std::uint64_t lin) { map[sector] = lin; },
        /*evict=*/
        [this](std::span<const ftl::SectorWrite> batch, SimTime t,
               bool retention) {
          for (const auto& w : batch) {
            evicted.emplace_back(w.sector, w.token, retention);
            map.erase(w.sector);
          }
          return t;
        },
        /*hot=*/[](std::uint64_t sector) { return sector % 3 == 0; },
        /*kept=*/[](std::uint64_t) {});
  }
};

TEST(MaintenanceDifferential, SubpagePoolStepwiseAgreement) {
  PoolHarness scan(true);
  PoolHarness index(false);
  util::Xoshiro256 rng(2017);
  constexpr std::uint64_t kSectors = 600;
  constexpr std::uint32_t kWlThreshold = 2;
  std::vector<std::uint64_t> version(kSectors, 0);
  SimTime now = 0.0;
  std::uint64_t retention_calls = 0, wl_calls = 0, idle_calls = 0;

  for (int step = 0; step < 12000; ++step) {
    const std::uint64_t roll = rng.below(100);
    if (roll < 88) {  // overwrite a random sector
      const std::uint64_t sector = rng.below(kSectors);
      const std::uint64_t token = ftl::make_token(sector, ++version[sector]);
      auto write = [&](PoolHarness& h) {
        const auto it = h.map.find(sector);
        if (it != h.map.end()) h.pool->invalidate(it->second);
        return h.pool->write_sector(sector, token, now);
      };
      const auto a = write(scan);
      const auto b = write(index);
      ASSERT_EQ(a.first, b.first) << "placement diverged at step " << step;
      ASSERT_EQ(a.second, b.second) << "completion diverged at step " << step;
      now = a.second + 1.0 + static_cast<double>(rng.below(6));
    } else if (roll < 94) {
      ++retention_calls;
      const SimTime a = scan.pool->retention_scan(now);
      const SimTime b = index.pool->retention_scan(now);
      ASSERT_EQ(a, b) << "retention completion diverged at step " << step;
      now = a + 1.0;
    } else if (roll < 98) {
      ++wl_calls;
      const SimTime a = scan.pool->static_wear_level(now, kWlThreshold);
      const SimTime b = index.pool->static_wear_level(now, kWlThreshold);
      ASSERT_EQ(a, b) << "wear-level completion diverged at step " << step;
      now = a + 1.0;
    } else {
      ++idle_calls;
      const SimTime a = scan.pool->release_idle_blocks(now);
      const SimTime b = index.pool->release_idle_blocks(now);
      ASSERT_EQ(a, b) << "idle-release completion diverged at step " << step;
      now = a + 1.0;
    }
    ASSERT_EQ(scan.pool->blocks_in_use(), index.pool->blocks_in_use())
        << "step " << step;
    ASSERT_EQ(scan.pool->valid_sectors(), index.pool->valid_sectors())
        << "step " << step;
    ASSERT_EQ(scan.evicted.size(), index.evicted.size()) << "step " << step;
  }

  // Full-sequence agreement: every eviction, in order, with the same
  // retention/GC attribution; identical final mappings; identical
  // deterministic counters.
  ASSERT_EQ(scan.evicted, index.evicted);
  ASSERT_EQ(scan.map.size(), index.map.size());
  for (const auto& [sector, lin] : scan.map) {
    const auto it = index.map.find(sector);
    ASSERT_NE(it, index.map.end()) << "sector " << sector;
    EXPECT_EQ(it->second, lin) << "sector " << sector;
  }
  EXPECT_EQ(scan.stats.flash_prog_sub, index.stats.flash_prog_sub);
  EXPECT_EQ(scan.stats.flash_erases, index.stats.flash_erases);
  EXPECT_EQ(scan.stats.gc_invocations, index.stats.gc_invocations);
  EXPECT_EQ(scan.stats.gc_copy_sectors, index.stats.gc_copy_sectors);
  EXPECT_EQ(scan.stats.forward_migrations, index.stats.forward_migrations);
  EXPECT_EQ(scan.stats.cold_evictions, index.stats.cold_evictions);
  EXPECT_EQ(scan.stats.retention_evictions, index.stats.retention_evictions);
  EXPECT_EQ(scan.stats.wear_level_relocations,
            index.stats.wear_level_relocations);
  EXPECT_EQ(scan.pool->owned_pe_cycles(), index.pool->owned_pe_cycles());

  // Sanity: the sequence must have driven real maintenance work.
  EXPECT_GT(retention_calls, 0u);
  EXPECT_GT(wl_calls, 0u);
  EXPECT_GT(idle_calls, 0u);
  EXPECT_GT(scan.stats.retention_evictions, 0u)
      << "no retention eviction fired -- sequence too tame";
  EXPECT_GT(scan.stats.gc_invocations, 0u);
}

}  // namespace
}  // namespace esp
