// Geometry-generality sweep: the stack must work for any subpage count
// (the paper's platform has 4; devices with 2-KB ECC chunks would have 8
// for 16-KB pages, and 32-KB pages are on the roadmap). Parameterized over
// (subpages_per_page, ftl) with full data verification.
#include <gtest/gtest.h>

#include <tuple>

#include "core/ssd.h"
#include "workload/synthetic.h"

namespace esp {
namespace {

using core::FtlKind;

using SweepParams = std::tuple<std::uint32_t /*subpages*/, FtlKind>;

class GeometrySweep : public ::testing::TestWithParam<SweepParams> {};

core::SsdConfig config_for(std::uint32_t subpages, FtlKind kind) {
  core::SsdConfig config;
  config.geometry.channels = 2;
  config.geometry.chips_per_channel = 2;
  config.geometry.blocks_per_chip = 16;
  config.geometry.pages_per_block = 32;
  config.geometry.page_bytes = 16 * 1024;
  config.geometry.subpages_per_page = subpages;
  config.ftl = kind;
  config.logical_fraction = 0.6;
  config.gc_reserve_blocks = 4;
  config.buffer_sectors = 64;
  return config;
}

TEST_P(GeometrySweep, MixedWorkloadVerifies) {
  const auto [subpages, kind] = GetParam();
  core::Ssd ssd(config_for(subpages, kind));
  ssd.precondition(1.0);

  workload::SyntheticParams params;
  params.footprint_sectors = ssd.logical_sectors();
  params.sectors_per_page = subpages;
  params.request_count = 8000;
  params.r_small = 0.8;
  params.r_synch = 0.8;
  params.read_fraction = 0.25;
  params.small_sectors_max = std::max(1u, subpages / 2);
  params.seed = 47;
  workload::SyntheticWorkload stream(params);

  const auto metrics = ssd.driver().run(stream, /*verify=*/true);
  EXPECT_EQ(metrics.verify_failures, 0u)
      << subpages << " subpages, " << ssd.ftl().name();
  EXPECT_EQ(metrics.io_errors, 0u);
  EXPECT_GT(metrics.ftl_stats.gc_invocations, 0u);

  // Full readback.
  auto& drv = ssd.driver();
  for (std::uint64_t s = 0; s < ssd.logical_sectors(); s += subpages)
    drv.submit({workload::Request::Type::kRead, s, subpages, false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(FtlKind::kCgm, FtlKind::kFgm,
                                         FtlKind::kSub,
                                         FtlKind::kSectorLog)),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "subpages_" +
             core::ftl_kind_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace esp
