// Interplay tests: retention management, GC, forwarding and wear leveling
// acting on the same data over long simulated horizons -- the paths that
// only compose in full-system runs.
#include <gtest/gtest.h>

#include "core/ssd.h"
#include "ftl/sub_ftl.h"
#include "test_common.h"
#include "workload/request.h"

namespace esp {
namespace {

using workload::Request;

TEST(RetentionGcInterplay, ForwardedDataAgesFromItsNewProgramTime) {
  // Forwarding reprograms the subpage, which RESETS its retention clock at
  // the device (new written_at) -- and the pool must track that, otherwise
  // the retention scan would evict (or worse, miss) the wrong pages.
  auto config = test::tiny_config(core::FtlKind::kSub);
  config.retention_evict_age = 15 * sim_time::kDay;
  config.retention_scan_interval = sim_time::kDay;
  core::Ssd ssd(config);
  auto& drv = ssd.driver();

  // A persistent sector plus churn that forces level advances (forwarding
  // the persistent one) 10 days in.
  drv.submit({Request::Type::kWrite, 500, 1, true, 0.0});
  drv.advance_to(10 * sim_time::kDay);
  for (int i = 0; i < 400; ++i)
    drv.submit({Request::Type::kWrite, (i * 4) % 400, 1, true, 0.0});

  // 10 more days: if forwarding reset the clock, sector 500 is ~10 days
  // old (young); if the FTL kept the ORIGINAL age it would be 20 days and
  // evicted. Either way the data must verify.
  for (int day = 0; day < 10; ++day)
    drv.submit({Request::Type::kWrite, 900, 1, true, sim_time::kDay});
  drv.submit({Request::Type::kRead, 500, 1, false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);
}

TEST(RetentionGcInterplay, EvictedDataSurvivesIndefinitely) {
  // Once retention-evicted to the full-page region, data follows the
  // 1-year horizon: another 6 months of aging must be harmless.
  auto config = test::tiny_config(core::FtlKind::kSub);
  config.retention_evict_age = 10 * sim_time::kDay;
  config.retention_scan_interval = sim_time::kDay;
  core::Ssd ssd(config);
  auto& drv = ssd.driver();

  for (std::uint64_t s = 0; s < 32; s += 4)
    drv.submit({Request::Type::kWrite, s, 1, true, 0.0});
  for (int day = 0; day < 20; ++day)
    drv.submit({Request::Type::kWrite, 2000, 1, true, sim_time::kDay});
  ASSERT_GT(ssd.ftl().stats().retention_evictions, 0u);

  drv.advance_to(drv.now() + 180 * sim_time::kDay);
  for (std::uint64_t s = 0; s < 32; s += 4) {
    const auto result =
        drv.submit({Request::Type::kRead, s, 1, false, 0.0});
    EXPECT_TRUE(result.ok) << "sector " << s;
  }
  EXPECT_EQ(drv.verify_failures(), 0u);
}

TEST(RetentionGcInterplay, ScanIntervalThrottlesScans) {
  // With a week-long scan interval, daily ticks must not run daily scans
  // (the flash read counter tells).
  auto config = test::tiny_config(core::FtlKind::kSub);
  config.retention_evict_age = 2 * sim_time::kDay;
  config.retention_scan_interval = 7 * sim_time::kDay;
  core::Ssd ssd(config);
  auto& drv = ssd.driver();

  for (std::uint64_t s = 0; s < 16; s += 4)
    drv.submit({Request::Type::kWrite, s, 1, true, 0.0});
  // 6 days of ticks: under a 7-day interval at most one scan can fire,
  // so at most one wave of retention evictions.
  const auto evicted_before = ssd.ftl().stats().retention_evictions;
  for (int day = 0; day < 6; ++day)
    drv.submit({Request::Type::kWrite, 3000, 1, true, sim_time::kDay});
  const auto evicted = ssd.ftl().stats().retention_evictions -
                       evicted_before;
  EXPECT_LE(evicted, 4u);  // the first wave only (sectors aged > 2 days)
}

TEST(RetentionGcInterplay, GcDuringAgedDataDoesNotLoseIt) {
  // Aged-but-not-yet-scanned data hit by GC first: the GC read happens
  // before the retention deadline (device-enforced), and the move
  // refreshes it. End-to-end: no verify failures even when GC and the
  // retention scan interleave for weeks.
  auto config = test::tiny_config(core::FtlKind::kSub);
  config.retention_evict_age = 12 * sim_time::kDay;
  config.retention_scan_interval = 3 * sim_time::kDay;
  core::Ssd ssd(config);
  auto& drv = ssd.driver();

  for (int week = 0; week < 8; ++week) {
    // Burst of churn, then a quiet week.
    for (int i = 0; i < 600; ++i)
      drv.submit({Request::Type::kWrite,
                  static_cast<std::uint64_t>((i * 13) % 512), 1, true, 0.0});
    drv.submit({Request::Type::kWrite, 4000, 1, true, 7 * sim_time::kDay});
  }
  for (std::uint64_t s = 0; s < 512; s += 16)
    drv.submit({Request::Type::kRead, s, 4, false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);
}

}  // namespace
}  // namespace esp
