// Causal attribution acceptance (issue tentpole):
//   (a) for every FTL, the per-cause write decomposition sums EXACTLY
//       (bit-exact integer counts) to the device's physical program/erase
//       counters -- telemetry attaches before preconditioning so the cause
//       buckets cover the device's whole life;
//   (b) the online invariant auditor runs clean over the same window;
//   (c) the journal written alongside is well-formed (hdr first, end
//       trailer last, op lines carry causes) and its op lines reconcile
//       with the same counters.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/ssd.h"
#include "telemetry/auditor.h"
#include "telemetry/journal.h"
#include "telemetry/telemetry.h"
#include "test_common.h"
#include "workload/synthetic.h"

namespace esp {
namespace {

using core::FtlKind;
using test::tiny_config;

workload::SyntheticParams churn_params(const core::Ssd& ssd) {
  workload::SyntheticParams params;
  params.footprint_sectors = ssd.logical_sectors();
  params.request_count = 20000;
  params.r_small = 0.8;
  params.r_synch = 0.7;
  params.read_fraction = 0.2;
  params.seed = 11;
  return params;
}

class CausalAttribution : public ::testing::TestWithParam<FtlKind> {};

TEST_P(CausalAttribution, CauseSharesSumToDeviceCountersExactly) {
  const auto cfg = tiny_config(GetParam());

  telemetry::Telemetry tel;
  std::ostringstream journal_os;
  telemetry::JournalHeader hdr;
  hdr.ftl = core::ftl_kind_name(GetParam());
  hdr.chips = cfg.geometry.total_chips();
  hdr.blocks_per_chip = cfg.geometry.blocks_per_chip;
  hdr.pages_per_block = cfg.geometry.pages_per_block;
  hdr.subpages_per_page = cfg.geometry.subpages_per_page;
  hdr.page_bytes = cfg.geometry.page_bytes;
  hdr.seed = 11;
  telemetry::Journal journal(journal_os, hdr);
  telemetry::AuditorConfig acfg;
  acfg.chips = cfg.geometry.total_chips();
  acfg.blocks_per_chip = cfg.geometry.blocks_per_chip;
  acfg.pages_per_block = cfg.geometry.pages_per_block;
  acfg.subpages_per_page = cfg.geometry.subpages_per_page;
  telemetry::Auditor auditor(acfg);
  tel.set_journal(&journal);
  tel.set_auditor(&auditor);

  core::Ssd ssd(cfg);
  // Attach BEFORE preconditioning: the cause buckets then cover every
  // program/erase the device ever executed, so the sums below must equal
  // the device's lifetime counters bit-exactly.
  ssd.attach_telemetry(&tel);
  ssd.precondition(1.0);
  workload::SyntheticWorkload stream(churn_params(ssd));
  const auto metrics = ssd.driver().run(stream, /*verify=*/true);
  EXPECT_EQ(metrics.verify_failures, 0u);
  ASSERT_GT(metrics.ftl_stats.gc_invocations, 0u)
      << "workload too light to exercise GC attribution";

  // (a) exact decomposition: sum over causes == device counters.
  using telemetry::Cause;
  using telemetry::OpKind;
  std::uint64_t progs_full = 0, progs_sub = 0, erases = 0;
  for (std::size_t c = 0; c < telemetry::kCauseCount; ++c) {
    const auto cause = static_cast<Cause>(c);
    progs_full += tel.cause_count(cause, OpKind::kProgFull);
    progs_sub += tel.cause_count(cause, OpKind::kProgSub);
    erases += tel.cause_count(cause, OpKind::kErase);
  }
  const auto& dev = ssd.device().counters();
  EXPECT_EQ(progs_full, dev.progs_full);
  EXPECT_EQ(progs_sub, dev.progs_sub);
  EXPECT_EQ(erases, dev.erases);
  EXPECT_GT(progs_full + progs_sub, 0u);

  // GC ran, so non-host attribution must be non-empty.
  const std::uint64_t mech_erases =
      tel.cause_count(Cause::kGcCopy, OpKind::kErase) +
      tel.cause_count(Cause::kWearLevel, OpKind::kErase) +
      tel.cause_count(Cause::kRetentionEvict, OpKind::kErase) +
      tel.cause_count(Cause::kFlush, OpKind::kErase) +
      tel.cause_count(Cause::kRmw, OpKind::kErase);
  EXPECT_GT(mech_erases, 0u);

  // The registry mirrors the same buckets under "cause/<name>/...".
  EXPECT_EQ(tel.registry().counter_value("cause/gc_copy/erase"),
            tel.cause_count(Cause::kGcCopy, OpKind::kErase));
  EXPECT_EQ(tel.registry().counter_value("cause/host/prog_full"),
            tel.cause_count(Cause::kHost, OpKind::kProgFull));

  // (b) auditor clean across precondition + run.
  EXPECT_EQ(auditor.violation_count(), 0u);
  EXPECT_GT(auditor.ops_checked(), 0u);

  // (c) journal well-formed and op lines reconcile with the counters.
  journal.finish();
  tel.set_journal(nullptr);
  tel.set_auditor(nullptr);
  const std::string text = journal_os.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.find("{\"v\":1,\"t\":\"hdr\""), 0u);
  EXPECT_NE(text.find("\"t\":\"end\""), std::string::npos);
  EXPECT_EQ(journal.truncated(), 0u);

  std::uint64_t op_prog_full = 0, op_prog_sub = 0, op_erase = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"t\":\"op\"") == std::string::npos) continue;
    EXPECT_NE(line.find("\"cause\":\""), std::string::npos);
    if (line.find("\"op\":\"prog_full\"") != std::string::npos)
      ++op_prog_full;
    else if (line.find("\"op\":\"prog_sub\"") != std::string::npos)
      ++op_prog_sub;
    else if (line.find("\"op\":\"erase\"") != std::string::npos)
      ++op_erase;
  }
  EXPECT_EQ(op_prog_full, dev.progs_full);
  EXPECT_EQ(op_prog_sub, dev.progs_sub);
  EXPECT_EQ(op_erase, dev.erases);
}

INSTANTIATE_TEST_SUITE_P(AllFtls, CausalAttribution,
                         ::testing::Values(FtlKind::kCgm, FtlKind::kFgm,
                                           FtlKind::kSub,
                                           FtlKind::kSectorLog),
                         [](const auto& info) {
                           return core::ftl_kind_name(info.param);
                         });

}  // namespace
}  // namespace esp
