// Failure-injection integration tests: the stack must SURFACE device-level
// read failures (never silently return wrong data) and keep its internal
// bookkeeping consistent while failures occur.
#include <gtest/gtest.h>

#include "core/ssd.h"
#include "test_common.h"
#include "workload/synthetic.h"

namespace esp {
namespace {

using core::FtlKind;
using workload::Request;

class FaultInjection : public ::testing::TestWithParam<FtlKind> {};

TEST_P(FaultInjection, InjectedReadFaultsSurfaceAsIoErrors) {
  core::Ssd ssd(test::tiny_config(GetParam()));
  ssd.precondition(0.5);
  ssd.device().set_read_fault_injection(1.0, 5);
  // Every flash-backed read must now report failure.
  const auto result =
      ssd.driver().submit({Request::Type::kRead, 0, 4, false, 0.0});
  EXPECT_FALSE(result.ok);
  EXPECT_GT(ssd.device().counters().uncorrectable_reads, 0u);
}

TEST_P(FaultInjection, PartialFaultRateDegradesGracefully) {
  core::Ssd ssd(test::tiny_config(GetParam()));
  ssd.precondition(0.5);
  ssd.device().set_read_fault_injection(0.10, 6);

  int failed = 0;
  const int reads = 200;
  for (int i = 0; i < reads; ++i) {
    const auto result = ssd.driver().submit(
        {Request::Type::kRead, static_cast<std::uint64_t>(i) * 4 % 512, 4,
         false, 0.0},
        /*verify=*/false);
    failed += !result.ok;
  }
  // Roughly the injected rate (each 4-sector read touches >=1 codeword).
  EXPECT_GT(failed, 5);
  EXPECT_LT(failed, reads);
}

TEST_P(FaultInjection, WritesKeepWorkingUnderReadFaults) {
  // GC reads flow through the same fault injection; the FTL must keep its
  // accounting consistent and keep accepting writes (data integrity of the
  // *payload tokens* is preserved by construction -- the simulator models
  // the verdict, not bit destruction, for injected faults).
  core::Ssd ssd(test::tiny_config(GetParam()));
  ssd.precondition(1.0);
  ssd.device().set_read_fault_injection(0.05, 7);

  workload::SyntheticParams params;
  params.footprint_sectors = ssd.logical_sectors();
  params.request_count = 5000;
  params.r_small = 1.0;
  params.r_synch = 1.0;
  params.seed = 21;
  workload::SyntheticWorkload stream(params);
  const auto metrics = ssd.driver().run(stream, /*verify=*/false);
  EXPECT_EQ(metrics.requests, 5000u);
  EXPECT_GT(metrics.ftl_stats.gc_invocations, 0u);
  // The FTL observed and counted the failures it hit during GC/RMW.
  ssd.device().set_read_fault_injection(0.0);
  // And the data is still addressable afterwards.
  auto& drv = ssd.driver();
  for (std::uint64_t s = 0; s < 256; s += 4)
    drv.submit({Request::Type::kRead, s, 4, false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFtls, FaultInjection,
                         ::testing::Values(FtlKind::kCgm, FtlKind::kFgm,
                                           FtlKind::kSub,
                                           FtlKind::kSectorLog),
                         [](const auto& info) {
                           return core::ftl_kind_name(info.param);
                         });

TEST(FaultInjection, ProbabilisticModeEndToEnd) {
  // Run a whole FTL workload in probabilistic reliability mode: fresh data
  // (written and read within simulated seconds) must essentially never
  // fail, proving the mode does not destabilize normal operation.
  auto config = test::tiny_config(core::FtlKind::kSub);
  core::Ssd ssd(config);
  ssd.device().set_reliability_mode(
      nand::NandDevice::ReliabilityMode::kProbabilistic, 11);
  ssd.precondition(1.0);

  workload::SyntheticParams params;
  params.footprint_sectors = ssd.logical_sectors();
  params.request_count = 5000;
  params.r_small = 0.8;
  params.read_fraction = 0.3;
  params.seed = 31;
  workload::SyntheticWorkload stream(params);
  const auto metrics = ssd.driver().run(stream, true);
  EXPECT_EQ(metrics.verify_failures, 0u);
  EXPECT_EQ(metrics.io_errors, 0u);
}

}  // namespace
}  // namespace esp
