// End-to-end smoke tests: every FTL survives a mixed random workload with
// full data verification, through GC churn and buffer pressure.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/ssd.h"
#include "test_common.h"
#include "workload/synthetic.h"

namespace esp {
namespace {

using core::FtlKind;
using test::tiny_config;

class SmokeTest : public ::testing::TestWithParam<FtlKind> {};

TEST_P(SmokeTest, SequentialFillThenReadBack) {
  core::Ssd ssd(tiny_config(GetParam()));
  ssd.precondition(1.0);
  auto& drv = ssd.driver();

  const std::uint64_t sectors = ssd.logical_sectors();
  for (std::uint64_t s = 0; s < sectors; s += 16) {
    const auto n = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        16, sectors - s));
    drv.submit({workload::Request::Type::kRead, s, n, false, 0.0});
  }
  EXPECT_EQ(drv.verify_failures(), 0u);
}

TEST_P(SmokeTest, RandomMixedWorkloadVerifies) {
  core::Ssd ssd(tiny_config(GetParam()));
  ssd.precondition(1.0);

  workload::SyntheticParams params;
  params.footprint_sectors = ssd.logical_sectors();
  params.request_count = 20000;
  params.r_small = 0.8;
  params.r_synch = 0.7;
  params.read_fraction = 0.3;
  params.seed = 7;
  workload::SyntheticWorkload stream(params);

  const auto metrics = ssd.driver().run(stream, /*verify=*/true);
  EXPECT_EQ(metrics.verify_failures, 0u);
  EXPECT_EQ(metrics.io_errors, 0u);
  EXPECT_EQ(metrics.requests, params.request_count);
  EXPECT_GT(metrics.iops(), 0.0);
  // Enough churn to force garbage collection on a tiny device.
  EXPECT_GT(metrics.ftl_stats.gc_invocations, 0u);
}

TEST_P(SmokeTest, SyncOnlySmallWritesVerify) {
  core::Ssd ssd(tiny_config(GetParam()));
  ssd.precondition(1.0);

  workload::SyntheticParams params;
  params.footprint_sectors = ssd.logical_sectors();
  params.request_count = 10000;
  params.r_small = 1.0;
  params.r_synch = 1.0;
  params.seed = 11;
  workload::SyntheticWorkload stream(params);

  const auto metrics = ssd.driver().run(stream, /*verify=*/true);
  EXPECT_EQ(metrics.verify_failures, 0u);

  // Re-read everything after heavy small-write churn.
  auto& drv = ssd.driver();
  for (std::uint64_t s = 0; s < ssd.logical_sectors(); s += 4)
    drv.submit({workload::Request::Type::kRead, s, 4, false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);
}

TEST_P(SmokeTest, TrimmedRangesReadAsEmpty) {
  core::Ssd ssd(tiny_config(GetParam()));
  auto& drv = ssd.driver();
  // Write two logical pages, trim the first, verify both outcomes.
  drv.submit({workload::Request::Type::kWrite, 0, 8, true, 0.0});
  drv.submit({workload::Request::Type::kFlush, 0, 0, false, 0.0});
  drv.submit({workload::Request::Type::kTrim, 0, 4, false, 0.0});

  std::vector<std::uint64_t> tokens;
  ssd.ftl().read(0, 4, ssd.driver().now(), &tokens);
  for (const auto token : tokens) EXPECT_EQ(token, 0u);
  ssd.ftl().read(4, 4, ssd.driver().now(), &tokens);
  for (const auto token : tokens) EXPECT_NE(token, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFtls, SmokeTest,
                         ::testing::Values(FtlKind::kCgm, FtlKind::kFgm,
                                           FtlKind::kSub,
                                           FtlKind::kSectorLog),
                         [](const auto& info) {
                           return core::ftl_kind_name(info.param);
                         });

TEST(ExperimentRunner, ProducesConsistentResult) {
  core::ExperimentSpec spec;
  spec.ssd = tiny_config(FtlKind::kSub);
  spec.workload.footprint_sectors = spec.ssd.logical_sectors();
  spec.workload.request_count = 5000;
  spec.workload.r_small = 1.0;
  spec.workload.r_synch = 1.0;
  spec.workload.seed = 3;

  const auto result = core::run_experiment(spec);
  EXPECT_EQ(result.ftl_name, "subFTL");
  EXPECT_EQ(result.verify_failures, 0u);
  EXPECT_GT(result.iops, 0.0);
  EXPECT_GE(result.small_request_waf, 1.0);
}

}  // namespace
}  // namespace esp
