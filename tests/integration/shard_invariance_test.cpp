// Shard-invariance property test (issue satellite): a sharded cell is a
// deterministic function of (spec, shards, stripe) -- never of the thread
// schedule. Pins, over a seeded audited 4-FTL sweep:
//   * per-shard journals byte-identical between --jobs 1 and --jobs N runs
//     of the same sharded cell, at shards 2 and 8;
//   * merged counters and merged latency/response histograms identical
//     across job counts (bucket-by-bucket);
//   * merged counters equal to the SUM over shard_results;
//   * a shard re-run ALONE (make_shard_spec + partition_stream) writes a
//     journal byte-identical to the same shard inside the full run.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/shard.h"
#include "workload/splitter.h"
#include "workload/synthetic.h"

namespace esp {
namespace {

using core::ExperimentSpec;
using core::FtlKind;
using core::RunResult;

const FtlKind kKinds[] = {FtlKind::kCgm, FtlKind::kFgm, FtlKind::kSub,
                          FtlKind::kSectorLog};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing journal " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// 8 channels x 1 chip so the cell splits into up to 8 whole channel
/// groups; 16 blocks x 32 pages per chip keeps even a 1/8 slice big
/// enough for GC churn (2-block reserve, ~1.2k logical sectors).
nand::Geometry shard_geometry() {
  nand::Geometry geo;
  geo.channels = 8;
  geo.chips_per_channel = 1;
  geo.blocks_per_chip = 16;
  geo.pages_per_block = 32;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

ExperimentSpec make_spec(FtlKind kind, unsigned shards, unsigned jobs,
                         const std::string& tag) {
  ExperimentSpec spec;
  spec.ssd.geometry = shard_geometry();
  spec.ssd.ftl = kind;
  spec.ssd.logical_fraction = 0.60;
  spec.ssd.gc_reserve_blocks = 16;  // /8 shards -> the 2-block floor
  spec.ssd.buffer_sectors = 512;
  spec.ssd.queue_depth = 32;
  spec.workload.request_count = 3000;
  spec.workload.r_small = 0.8;
  spec.workload.r_synch = 0.7;
  spec.workload.read_fraction = 0.2;
  spec.workload.seed = 11;
  spec.warmup_requests = 200;
  spec.audit = true;
  spec.shards = shards;
  spec.shard_jobs = jobs;
  spec.shard_stripe_pages = 4;
  spec.journal_path = ::testing::TempDir() + "shard-inv-" + tag + "-" +
                      core::ftl_kind_name(kind) + ".jsonl";
  return spec;
}

void expect_same_merged(const RunResult& a, const RunResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.raw.requests, b.raw.requests) << what;
  EXPECT_EQ(a.raw.write_requests, b.raw.write_requests) << what;
  EXPECT_EQ(a.raw.read_requests, b.raw.read_requests) << what;
  EXPECT_EQ(a.erases, b.erases) << what;
  EXPECT_EQ(a.gc_invocations, b.gc_invocations) << what;
  EXPECT_EQ(a.rmw_ops, b.rmw_ops) << what;
  EXPECT_EQ(a.journal_events, b.journal_events) << what;
  EXPECT_DOUBLE_EQ(a.overall_waf, b.overall_waf) << what;
  EXPECT_DOUBLE_EQ(a.small_request_waf, b.small_request_waf) << what;
  EXPECT_DOUBLE_EQ(a.raw.latency_p99_us, b.raw.latency_p99_us) << what;
  EXPECT_DOUBLE_EQ(a.raw.response_p999_us, b.raw.response_p999_us) << what;
  ASSERT_EQ(a.raw.latency_hist.bucket_count(), b.raw.latency_hist.bucket_count())
      << what;
  for (std::size_t i = 0; i < a.raw.latency_hist.bucket_count(); ++i) {
    ASSERT_EQ(a.raw.latency_hist.bucket(i), b.raw.latency_hist.bucket(i))
        << what << ": latency bucket " << i;
    ASSERT_EQ(a.raw.response_hist.bucket(i), b.raw.response_hist.bucket(i))
        << what << ": response bucket " << i;
  }
}

void expect_merged_is_sum(const RunResult& merged, unsigned shards,
                          const std::string& what) {
  ASSERT_EQ(merged.shard_results.size(), shards) << what;
  std::uint64_t requests = 0, erases = 0, gc = 0, rmw = 0, journal = 0;
  std::uint64_t host_writes = 0, flash_writes = 0;
  for (const RunResult& r : merged.shard_results) {
    requests += r.raw.requests;
    erases += r.erases;
    gc += r.gc_invocations;
    rmw += r.rmw_ops;
    journal += r.journal_events;
    host_writes += r.raw.ftl_stats.host_write_sectors;
    flash_writes += r.raw.ftl_stats.flash_prog_sub;
  }
  EXPECT_EQ(merged.raw.requests, requests) << what;
  EXPECT_EQ(merged.erases, erases) << what;
  EXPECT_EQ(merged.gc_invocations, gc) << what;
  EXPECT_EQ(merged.rmw_ops, rmw) << what;
  EXPECT_EQ(merged.journal_events, journal) << what;
  EXPECT_EQ(merged.raw.ftl_stats.host_write_sectors, host_writes) << what;
  EXPECT_EQ(merged.raw.ftl_stats.flash_prog_sub, flash_writes) << what;
}

TEST(ShardInvariance, MergedResultsAndJournalsIdenticalAcrossJobCounts) {
  for (const auto kind : kKinds) {
    for (const unsigned shards : {2u, 8u}) {
      const std::string tag = std::to_string(shards);
      const auto spec1 = make_spec(kind, shards, 1, "j1-s" + tag);
      const auto specN = make_spec(kind, shards, 4, "jN-s" + tag);
      const RunResult r1 = core::run_experiment(spec1);
      const RunResult rN = core::run_experiment(specN);
      const std::string what =
          std::string(core::ftl_kind_name(kind)) + " shards=" + tag;

      ASSERT_GT(r1.raw.requests, 0u) << what;
      expect_same_merged(r1, rN, what);
      expect_merged_is_sum(r1, shards, what);
      expect_merged_is_sum(rN, shards, what);

      // Per-shard journals (and therefore every FTL decision each shard
      // made) are byte-identical regardless of worker count; the merged
      // journal is their shard-index-order concatenation.
      std::string concat;
      for (unsigned i = 0; i < shards; ++i) {
        const std::string a =
            slurp(core::shard_sidecar_path(spec1.journal_path, i));
        const std::string b =
            slurp(core::shard_sidecar_path(specN.journal_path, i));
        ASSERT_FALSE(a.empty()) << what << " shard " << i;
        ASSERT_EQ(a, b) << what << ": shard " << i
                        << " journal differs between job counts";
        concat += a;
      }
      EXPECT_EQ(slurp(spec1.journal_path), concat) << what;
    }
  }
}

TEST(ShardInvariance, ShardAloneMatchesShardAmongSiblings) {
  // Re-run shard 0 of the kSub shards=2 cell STANDALONE, reproducing the
  // orchestrator's leaf construction, and byte-compare its journal with
  // the sidecar the full sharded run left behind.
  const auto joint_spec = make_spec(FtlKind::kSub, 2, 2, "joint");
  const RunResult joint = core::run_experiment(joint_spec);
  ASSERT_EQ(joint.shard_results.size(), 2u);

  ExperimentSpec plan_spec = joint_spec;  // same identity, fresh sidecars
  plan_spec.journal_path = ::testing::TempDir() + "shard-inv-alone.jsonl";
  const core::ShardPlan plan = core::make_shard_plan(plan_spec);
  const workload::SyntheticParams params =
      core::sharded_workload_params(plan_spec, plan);
  workload::SyntheticWorkload generator(params);
  const workload::ShardSplitter splitter(
      plan.shards, plan.stripe_pages,
      plan_spec.ssd.geometry.subpages_per_page, plan.shard_sectors);
  auto streams = workload::partition_stream(generator, splitter, 0,
                                            plan_spec.warmup_requests);
  ASSERT_EQ(streams.size(), 2u);

  ExperimentSpec leaf = core::make_shard_spec(plan_spec, plan, 0);
  leaf.warmup_requests = streams[0].warmup_requests;
  leaf.workload.request_count = streams[0].requests.size();
  workload::VectorSource source(std::move(streams[0].requests));
  leaf.stream = &source;
  const RunResult alone = core::run_experiment(leaf);

  const std::string joint_journal =
      slurp(core::shard_sidecar_path(joint_spec.journal_path, 0));
  const std::string alone_journal = slurp(leaf.journal_path);
  ASSERT_FALSE(alone_journal.empty());
  EXPECT_EQ(alone_journal, joint_journal)
      << "shard 0 journal differs between standalone and joint runs";
  EXPECT_EQ(alone.raw.requests, joint.shard_results[0].raw.requests);
  EXPECT_EQ(alone.erases, joint.shard_results[0].erases);
  EXPECT_DOUBLE_EQ(alone.overall_waf, joint.shard_results[0].overall_waf);
}

TEST(ShardInvariance, ShardingRequiresDivisibleChannels) {
  auto spec = make_spec(FtlKind::kCgm, 3, 1, "bad");
  EXPECT_THROW(core::run_experiment(spec), std::invalid_argument);
}

}  // namespace
}  // namespace esp
