// Randomized differential test: every FTL against the driver's shadow
// model under a seeded stream of mixed writes, reads, partial and aligned
// trims and sync flushes.
//
// The driver verifies each read's tokens against its shadow map, so any
// disagreement between an FTL's trim/buffer semantics and the documented
// contract (ftl.h: trims discard whole logical pages only; partial edges
// keep their latest data) surfaces as a verify failure. This is the
// harness that catches the two historical trim bugs:
//   * fgmFTL unmapped every sector of the range, so a partial-edge trim
//     followed by a read produced a false "empty" result;
//   * subFTL/sectorLogFTL dropped write-buffer entries for partial-edge
//     sectors whose only (newest) copy lived in the buffer, so reads
//     served the stale flash copy.
#include <gtest/gtest.h>

#include "core/ssd.h"
#include "test_common.h"
#include "util/rng.h"

namespace esp {
namespace {

using core::FtlKind;
using workload::Request;

class TrimDifferential : public ::testing::TestWithParam<FtlKind> {};

TEST_P(TrimDifferential, ShadowModelAgreesUnderMixedTrims) {
  core::Ssd ssd(test::tiny_config(GetParam()));
  ssd.precondition(0.5);
  auto& drv = ssd.driver();

  const std::uint64_t sectors = ssd.logical_sectors();
  const std::uint32_t subs = ssd.config().geometry.subpages_per_page;
  util::Xoshiro256 rng(0xe5bdf00d2017ull);

  // Confine most traffic to a hot window so overwrites, buffered copies
  // and trims of the same pages actually collide.
  const std::uint64_t hot_span = std::max<std::uint64_t>(sectors / 8, 64);
  const auto pick_sector = [&](std::uint32_t count) {
    const std::uint64_t span = rng.chance(0.8) ? hot_span : sectors;
    return rng.below(span - count);
  };

  for (int i = 0; i < 20000; ++i) {
    const double roll = rng.uniform();
    if (roll < 0.45) {
      // Writes: mostly small (often unaligned), sometimes multi-page.
      const auto count = static_cast<std::uint32_t>(
          rng.chance(0.8) ? rng.range(1, subs - 1) : rng.range(subs, 3 * subs));
      const bool sync = rng.chance(0.5);
      drv.submit({Request::Type::kWrite, pick_sector(count), count, sync, 0.0});
    } else if (roll < 0.80) {
      const auto count = static_cast<std::uint32_t>(rng.range(1, 2 * subs));
      drv.submit({Request::Type::kRead, pick_sector(count), count, false, 0.0});
    } else if (roll < 0.95) {
      // Trims: aligned whole pages and ranges with partial edges, both of
      // freshly-buffered and long-flushed data.
      std::uint64_t s;
      std::uint32_t count;
      if (rng.chance(0.5)) {
        s = (pick_sector(subs) / subs) * subs;  // page-aligned
        count = subs * static_cast<std::uint32_t>(rng.range(1, 2));
      } else {
        count = static_cast<std::uint32_t>(rng.range(1, 2 * subs));
        s = pick_sector(count);
      }
      drv.submit({Request::Type::kTrim, s, count, false, 0.0});
    } else {
      drv.submit({Request::Type::kFlush, 0, 0, true, 0.0});
    }
    ASSERT_EQ(drv.verify_failures(), 0u)
        << "shadow-model divergence after request " << i << " on "
        << ssd.ftl().name();
  }

  // Sweep-read the hot window once more after a final flush: any sector
  // whose newest copy was lost to a trim shows up here.
  drv.submit({Request::Type::kFlush, 0, 0, true, 0.0});
  for (std::uint64_t s = 0; s + subs <= hot_span; s += subs)
    drv.submit({Request::Type::kRead, s, subs, false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFtls, TrimDifferential,
                         ::testing::Values(FtlKind::kCgm, FtlKind::kFgm,
                                           FtlKind::kSub,
                                           FtlKind::kSectorLog),
                         [](const auto& info) {
                           return core::ftl_kind_name(info.param);
                         });

}  // namespace
}  // namespace esp
