// Cross-FTL differential tests: the three FTLs are fed identical request
// streams; their host-visible contents must agree, and their mechanism
// counters must show the paper's qualitative ordering.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/ssd.h"
#include "test_common.h"
#include "workload/synthetic.h"

namespace esp {
namespace {

using core::FtlKind;

workload::SyntheticParams sync_small_params(std::uint64_t footprint,
                                            std::uint64_t count,
                                            std::uint64_t seed = 5) {
  workload::SyntheticParams p;
  p.footprint_sectors = footprint;
  p.request_count = count;
  p.r_small = 1.0;
  p.r_synch = 1.0;
  // Small writes confined to ~5% of the space (journal/metadata style),
  // so the working set fits the subpage region as it does on the paper's
  // platform (3.2-GB region vs. the benchmarks' hot files).
  p.small_footprint_fraction = 0.05;
  p.seed = seed;
  return p;
}

TEST(CrossFtl, IdenticalStreamsYieldIdenticalHostContents) {
  std::vector<std::unique_ptr<core::Ssd>> ssds;
  for (const auto kind : {FtlKind::kCgm, FtlKind::kFgm, FtlKind::kSub})
    ssds.push_back(std::make_unique<core::Ssd>(test::tiny_config(kind)));

  for (auto& ssd : ssds) {
    ssd->precondition(0.8);
    workload::SyntheticWorkload stream(
        sync_small_params(ssd->logical_sectors(), 8000));
    const auto metrics = ssd->driver().run(stream, true);
    ASSERT_EQ(metrics.verify_failures, 0u) << ssd->ftl().name();
    ssd->driver().flush();
  }

  // All three expose the same logical contents sector by sector.
  const std::uint64_t sectors = ssds[0]->logical_sectors();
  std::vector<std::uint64_t> a, b, c;
  for (std::uint64_t s = 0; s < sectors; s += 4) {
    ssds[0]->ftl().read(s, 4, ssds[0]->driver().now(), &a);
    ssds[1]->ftl().read(s, 4, ssds[1]->driver().now(), &b);
    ssds[2]->ftl().read(s, 4, ssds[2]->driver().now(), &c);
    ASSERT_EQ(a, b) << "cgm vs fgm at sector " << s;
    ASSERT_EQ(a, c) << "cgm vs sub at sector " << s;
  }
}

TEST(CrossFtl, SyncSmallWritesOrderFtlsAsInPaper) {
  // The paper's headline ordering on sync-small-heavy workloads:
  // subFTL out-performs fgmFTL which out-performs cgmFTL, both in IOPS and
  // in GC pressure (Fig. 8).
  struct Outcome {
    double iops;
    std::uint64_t erases;
    std::uint64_t rmw;
  };
  std::map<FtlKind, Outcome> results;
  for (const auto kind : {FtlKind::kCgm, FtlKind::kFgm, FtlKind::kSub}) {
    core::Ssd ssd(test::tiny_config(kind));
    ssd.precondition(1.0);
    workload::SyntheticWorkload stream(
        sync_small_params(ssd.logical_sectors(), 12000));
    const auto metrics = ssd.driver().run(stream, true);
    ASSERT_EQ(metrics.verify_failures, 0u) << ssd.ftl().name();
    results[kind] = {metrics.iops(), metrics.erases_during_run,
                     metrics.ftl_stats.rmw_ops};
  }

  EXPECT_GT(results[FtlKind::kSub].iops, results[FtlKind::kFgm].iops);
  EXPECT_GT(results[FtlKind::kFgm].iops, results[FtlKind::kCgm].iops);
  // Lifetime proxy: fewer erases for the same host work. At r_synch = 1
  // the paper's own Fig. 2 shows FGM degenerating to CGM levels, so only
  // subFTL's advantage is asserted strictly; FGM must merely not be worse
  // than CGM by more than noise.
  EXPECT_LT(results[FtlKind::kSub].erases, results[FtlKind::kFgm].erases / 2);
  EXPECT_LT(static_cast<double>(results[FtlKind::kFgm].erases),
            1.15 * static_cast<double>(results[FtlKind::kCgm].erases));
  // cgmFTL services nearly every small write via RMW.
  EXPECT_GT(results[FtlKind::kCgm].rmw, 10000u);
}

TEST(CrossFtl, AsyncSequentialWritesCloseTheGap) {
  // With r_small = 0 and aligned large writes, all three schemes write
  // full pages: IOPS should be within a small factor of each other.
  std::map<FtlKind, double> iops;
  for (const auto kind : {FtlKind::kCgm, FtlKind::kFgm, FtlKind::kSub}) {
    core::Ssd ssd(test::tiny_config(kind));
    ssd.precondition(1.0);
    workload::SyntheticParams p;
    p.footprint_sectors = ssd.logical_sectors();
    p.request_count = 4000;
    p.r_small = 0.0;
    p.large_align_prob = 1.0;
    p.seed = 13;
    workload::SyntheticWorkload stream(p);
    const auto metrics = ssd.driver().run(stream, true);
    ASSERT_EQ(metrics.verify_failures, 0u);
    iops[kind] = metrics.iops();
  }
  EXPECT_GT(iops[FtlKind::kCgm], 0.5 * iops[FtlKind::kFgm]);
  EXPECT_GT(iops[FtlKind::kSub], 0.5 * iops[FtlKind::kFgm]);
}

TEST(CrossFtl, MappingMemoryOrdering) {
  // FGM needs Nsub x the CGM table; subFTL sits in between (paper Sec. 4).
  std::map<FtlKind, std::uint64_t> mem;
  for (const auto kind : {FtlKind::kCgm, FtlKind::kFgm, FtlKind::kSub}) {
    core::Ssd ssd(test::tiny_config(kind));
    ssd.precondition(1.0);
    // Push small writes through so subFTL's hash table is populated.
    workload::SyntheticWorkload stream(
        sync_small_params(ssd.logical_sectors(), 4000));
    ssd.driver().run(stream, false);
    mem[kind] = ssd.ftl().mapping_memory_bytes();
  }
  EXPECT_LT(mem[FtlKind::kCgm], mem[FtlKind::kSub]);
  EXPECT_LT(mem[FtlKind::kSub], mem[FtlKind::kFgm]);
}

}  // namespace
}  // namespace esp
