// FTL interface contract: behaviors every implementation must share,
// parameterized over all four FTLs.
#include <gtest/gtest.h>

#include "core/ssd.h"
#include "test_common.h"

namespace esp {
namespace {

using core::FtlKind;
using workload::Request;

class FtlContract : public ::testing::TestWithParam<FtlKind> {
 protected:
  core::Ssd ssd_{test::tiny_config(GetParam())};
};

TEST_P(FtlContract, NameAndCapacityExposed) {
  EXPECT_FALSE(ssd_.ftl().name().empty());
  EXPECT_GT(ssd_.ftl().logical_sectors(), 0u);
  EXPECT_GT(ssd_.ftl().mapping_memory_bytes(), 0u);
}

TEST_P(FtlContract, WriteThenReadReturnsLatestVersion) {
  auto& drv = ssd_.driver();
  drv.submit({Request::Type::kWrite, 8, 4, true, 0.0});
  drv.submit({Request::Type::kWrite, 9, 1, true, 0.0});  // overwrite middle
  drv.submit({Request::Type::kRead, 8, 4, false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);
}

TEST_P(FtlContract, FlushIsIdempotent) {
  auto& drv = ssd_.driver();
  drv.submit({Request::Type::kWrite, 0, 2, false, 0.0});
  drv.flush();
  const auto progs =
      ssd_.ftl().stats().flash_prog_full + ssd_.ftl().stats().flash_prog_sub;
  drv.flush();
  drv.flush();
  EXPECT_EQ(ssd_.ftl().stats().flash_prog_full +
                ssd_.ftl().stats().flash_prog_sub,
            progs);
}

TEST_P(FtlContract, SyncWritesAreDurableImmediately) {
  auto& drv = ssd_.driver();
  drv.submit({Request::Type::kWrite, 16, 1, true, 0.0});
  // Durable = on flash, not just buffered.
  EXPECT_GT(ssd_.ftl().stats().flash_prog_full +
                ssd_.ftl().stats().flash_prog_sub,
            0u);
}

TEST_P(FtlContract, AlignedTrimThenReadIsEmpty) {
  auto& drv = ssd_.driver();
  drv.submit({Request::Type::kWrite, 0, 4, true, 0.0});
  drv.submit({Request::Type::kTrim, 0, 4, false, 0.0});
  drv.submit({Request::Type::kRead, 0, 4, false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);  // driver expects empty after trim
}

TEST_P(FtlContract, RewriteAfterTrimWorks) {
  auto& drv = ssd_.driver();
  drv.submit({Request::Type::kWrite, 0, 4, true, 0.0});
  drv.submit({Request::Type::kTrim, 0, 4, false, 0.0});
  drv.submit({Request::Type::kWrite, 1, 1, true, 0.0});
  drv.submit({Request::Type::kRead, 0, 4, false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);
}

TEST_P(FtlContract, OutOfRangeAccessesThrow) {
  auto& ftl = ssd_.ftl();
  const auto sectors = ftl.logical_sectors();
  EXPECT_THROW(ftl.write(sectors, 1, false, 0.0), std::out_of_range);
  EXPECT_THROW(ftl.write(sectors - 1, 2, false, 0.0), std::out_of_range);
  EXPECT_THROW(ftl.read(sectors, 1, 0.0, nullptr), std::out_of_range);
  EXPECT_THROW(ftl.write(0, 0, false, 0.0), std::out_of_range);
  EXPECT_THROW(ftl.trim(sectors, 1), std::out_of_range);
}

TEST_P(FtlContract, CompletionTimesAreCausal) {
  auto& ftl = ssd_.ftl();
  const auto first = ftl.write(0, 4, true, 1000.0);
  EXPECT_GT(first.done, 1000.0);
  const auto second = ftl.write(4, 4, true, first.done);
  EXPECT_GT(second.done, first.done);
}

TEST_P(FtlContract, StatsAreMonotone) {
  auto& drv = ssd_.driver();
  const auto before = ssd_.ftl().stats();
  drv.submit({Request::Type::kWrite, 0, 4, true, 0.0});
  drv.submit({Request::Type::kRead, 0, 4, false, 0.0});
  const auto after = ssd_.ftl().stats();
  EXPECT_GE(after.host_write_requests, before.host_write_requests + 1);
  EXPECT_GE(after.host_read_requests, before.host_read_requests + 1);
  // Delta must not underflow anywhere.
  const auto delta = ftl::stats_delta(after, before);
  EXPECT_LE(delta.host_write_requests, 10u);
}

INSTANTIATE_TEST_SUITE_P(AllFtls, FtlContract,
                         ::testing::Values(FtlKind::kCgm, FtlKind::kFgm,
                                           FtlKind::kSub,
                                           FtlKind::kSectorLog),
                         [](const auto& info) {
                           return core::ftl_kind_name(info.param);
                         });

}  // namespace
}  // namespace esp
