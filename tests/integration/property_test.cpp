// Property-based sweeps: invariants that must hold for every FTL across a
// grid of workload shapes and seeds (parameterized gtest).
//
// Invariants checked after every run:
//   P1  no verify failures (latest-write-wins data integrity)
//   P2  overall WAF >= 1 whenever host writes occurred
//   P3  small-request WAF >= 1
//   P4  device program/erase accounting is self-consistent
//   P5  simulated time moved forward
#include <gtest/gtest.h>

#include <tuple>

#include "core/ssd.h"
#include "ftl/sub_ftl.h"
#include "test_common.h"
#include "workload/synthetic.h"

namespace esp {
namespace {

using core::FtlKind;

using PropertyParams =
    std::tuple<FtlKind, double /*r_small*/, double /*r_synch*/,
               std::uint64_t /*seed*/>;

class FtlProperties : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(FtlProperties, InvariantsHoldUnderChurn) {
  const auto [kind, r_small, r_synch, seed] = GetParam();
  core::Ssd ssd(test::tiny_config(kind));
  ssd.precondition(1.0);

  workload::SyntheticParams params;
  params.footprint_sectors = ssd.logical_sectors();
  params.request_count = 6000;
  params.r_small = r_small;
  params.r_synch = r_synch;
  params.read_fraction = 0.25;
  params.trim_fraction = 0.03;  // exercise discard paths under churn
  params.large_align_prob = 0.7;
  params.seed = seed;
  workload::SyntheticWorkload stream(params);

  const auto metrics = ssd.driver().run(stream, /*verify=*/true);

  // P1: end-to-end integrity.
  EXPECT_EQ(metrics.verify_failures, 0u);
  EXPECT_EQ(metrics.io_errors, 0u);

  // P2/P3: write amplification can never be below 1.
  const auto& geo = ssd.config().geometry;
  EXPECT_GE(metrics.ftl_stats.overall_waf(geo.page_bytes,
                                          geo.subpage_bytes()),
            1.0 - 1e-9);
  EXPECT_GE(metrics.ftl_stats.avg_small_request_waf(), 1.0 - 1e-9);

  // P4: device counter consistency -- programs happened, and erase count
  // matches the FTL's own tally.
  const auto& dev = ssd.device().counters();
  EXPECT_EQ(dev.erases, metrics.ftl_stats.flash_erases);
  EXPECT_GT(dev.progs_full + dev.progs_sub, 0u);

  // P5: the clock advanced.
  EXPECT_GT(metrics.elapsed_us(), 0.0);

  // Post-run full readback still verifies (GC/evictions preserved data).
  auto& drv = ssd.driver();
  for (std::uint64_t s = 0; s < ssd.logical_sectors(); s += 8)
    drv.submit({workload::Request::Type::kRead, s,
                static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(8, ssd.logical_sectors() - s)),
                false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FtlProperties,
    ::testing::Combine(::testing::Values(FtlKind::kCgm, FtlKind::kFgm,
                                         FtlKind::kSub,
                                         FtlKind::kSectorLog),
                       ::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(0.0, 1.0),
                       ::testing::Values(17ull, 99ull)),
    [](const auto& info) {
      return core::ftl_kind_name(std::get<0>(info.param)) + "_small" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_sync" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100)) +
             "_seed" + std::to_string(std::get<3>(info.param));
    });

// subFTL-specific structural invariants.
class SubFtlStructure : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubFtlStructure, RegionQuotaAndHashBoundsHold) {
  auto cfg = test::tiny_config(FtlKind::kSub);
  core::Ssd ssd(cfg);
  ssd.precondition(1.0);

  workload::SyntheticParams params;
  params.footprint_sectors = ssd.logical_sectors();
  params.request_count = 8000;
  params.r_small = 0.9;
  params.r_synch = 1.0;
  params.seed = GetParam();
  workload::SyntheticWorkload stream(params);
  const auto metrics = ssd.driver().run(stream, true);
  ASSERT_EQ(metrics.verify_failures, 0u);

  const auto& sub = dynamic_cast<const ftl::SubFtl&>(ssd.ftl());
  const auto& geo = ssd.config().geometry;
  // Region quota respected (a transient +reserve during GC is allowed, but
  // at rest the region must be at or under quota).
  EXPECT_LE(sub.subpage_pool().blocks_in_use(),
            sub.subpage_pool().config().quota_blocks +
                ssd.config().gc_reserve_blocks);
  // Paper Sec. 4.2: at most one valid subpage per physical page, so the
  // hash can never exceed the region's page count.
  const std::uint64_t region_pages =
      sub.subpage_pool().blocks_in_use() * geo.pages_per_block;
  EXPECT_LE(sub.subpage_mapping_entries(), region_pages);
  EXPECT_EQ(sub.subpage_pool().valid_sectors(),
            sub.subpage_mapping_entries());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubFtlStructure,
                         ::testing::Values(1ull, 23ull, 456ull, 7890ull));

}  // namespace
}  // namespace esp
