// End-to-end telemetry acceptance: a telemetry-attached run must produce
//   (a) registry counters that reconcile exactly with the FtlStats / device
//       counter snapshots the run reports,
//   (b) a trace containing GC-copy spans (and their flash children),
//   (c) >= 2 time-series samples with monotonic sim-time,
// and attaching telemetry must not perturb simulated results.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.h"
#include "core/ssd.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "test_common.h"
#include "workload/synthetic.h"

namespace esp {
namespace {

using core::FtlKind;
using test::tiny_config;

workload::SyntheticParams churn_params(const core::Ssd& ssd) {
  workload::SyntheticParams params;
  params.footprint_sectors = ssd.logical_sectors();
  params.request_count = 20000;
  params.r_small = 0.8;
  params.r_synch = 0.7;
  params.read_fraction = 0.3;
  params.seed = 7;
  return params;
}

class TelemetryEndToEnd : public ::testing::TestWithParam<FtlKind> {};

TEST_P(TelemetryEndToEnd, CountersReconcileWithFtlStats) {
  telemetry::TelemetryConfig tcfg;
  tcfg.sample_interval_us = 0.05 * sim_time::kSecond;
  telemetry::Telemetry tel(tcfg);

  sim::RunMetrics metrics;
  std::string scope;
  {
    core::Ssd ssd(tiny_config(GetParam()));
    ssd.precondition(1.0);
    ssd.attach_telemetry(&tel);
    scope = ssd.ftl().name();

    workload::SyntheticWorkload stream(churn_params(ssd));
    metrics = ssd.driver().run(stream, /*verify=*/true);
    EXPECT_EQ(metrics.verify_failures, 0u);
    ASSERT_GT(metrics.ftl_stats.gc_invocations, 0u);
  }
  // The Ssd is gone; its destructor materialized the registry, so every
  // bound counter must still read the final live value.
  const auto& reg = tel.registry();
  const auto& stats = metrics.ftl_stats;
  EXPECT_EQ(reg.counter_value(scope + "/gc_invocations"),
            stats.gc_invocations);
  EXPECT_EQ(reg.counter_value(scope + "/gc_copy_sectors"),
            stats.gc_copy_sectors);
  EXPECT_EQ(reg.counter_value(scope + "/host_write_sectors"),
            stats.host_write_sectors);
  EXPECT_EQ(reg.counter_value(scope + "/flash_prog_full"),
            stats.flash_prog_full);
  EXPECT_EQ(reg.counter_value(scope + "/flash_prog_sub"),
            stats.flash_prog_sub);
  EXPECT_EQ(reg.counter_value("nand/erases"), metrics.device_erases);
}

TEST_P(TelemetryEndToEnd, TraceCapturesGcAndSamplesAreMonotonic) {
  telemetry::TelemetryConfig tcfg;
  tcfg.sample_interval_us = 0.05 * sim_time::kSecond;
  telemetry::Telemetry tel(tcfg);

  core::Ssd ssd(tiny_config(GetParam()));
  ssd.precondition(1.0);
  ssd.attach_telemetry(&tel);
  workload::SyntheticWorkload stream(churn_params(ssd));
  const auto metrics = ssd.driver().run(stream, /*verify=*/true);
  ASSERT_GT(metrics.ftl_stats.gc_invocations, 0u);

  // (b) the trace holds GC-copy spans alongside host and flash lanes.
  std::uint64_t gc_spans = 0, host_spans = 0, flash_spans = 0;
  for (std::size_t i = 0; i < tel.trace().size(); ++i) {
    const auto& e = tel.trace().at(i);
    EXPECT_GE(e.dur_us, 0.0);
    switch (telemetry::op_lane(e.kind)) {
      case 0: ++host_spans; break;
      case 2: ++flash_spans; break;
      default:
        if (e.kind == telemetry::OpKind::kGcCopy) ++gc_spans;
    }
  }
  EXPECT_GE(gc_spans, 1u);
  EXPECT_GT(host_spans, 0u);
  EXPECT_GT(flash_spans, 0u);

  // (c) >= 2 samples, strictly monotonic sim-time, sane windows.
  const auto& samples = tel.sampler().samples();
  ASSERT_GE(samples.size(), 2u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i) EXPECT_GT(samples[i].sim_time_s, samples[i - 1].sim_time_s);
    EXPECT_GT(samples[i].requests, 0u);
    EXPECT_GE(samples[i].iops, 0.0);
  }

  // Both dump formats serialize without I/O errors and mention gc_copy.
  std::ostringstream chrome, jsonl, csv;
  tel.trace().dump_chrome(chrome);
  tel.trace().dump_jsonl(jsonl);
  tel.sampler().write_csv(csv);
  EXPECT_NE(chrome.str().find("\"name\":\"gc_copy\""), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"op\":\"gc_copy\""), std::string::npos);
  EXPECT_EQ(csv.str().find("nan"), std::string::npos);
}

TEST_P(TelemetryEndToEnd, AttachingTelemetryDoesNotPerturbResults) {
  sim::RunMetrics with, without;
  {
    core::Ssd ssd(tiny_config(GetParam()));
    ssd.precondition(1.0);
    workload::SyntheticWorkload stream(churn_params(ssd));
    without = ssd.driver().run(stream, /*verify=*/true);
  }
  {
    telemetry::Telemetry tel;
    core::Ssd ssd(tiny_config(GetParam()));
    ssd.precondition(1.0);
    ssd.attach_telemetry(&tel);
    workload::SyntheticWorkload stream(churn_params(ssd));
    with = ssd.driver().run(stream, /*verify=*/true);
  }
  EXPECT_EQ(with.ftl_stats.gc_invocations, without.ftl_stats.gc_invocations);
  EXPECT_EQ(with.ftl_stats.host_write_sectors,
            without.ftl_stats.host_write_sectors);
  EXPECT_EQ(with.device_erases, without.device_erases);
  EXPECT_DOUBLE_EQ(with.end_us, without.end_us);
}

INSTANTIATE_TEST_SUITE_P(AllFtls, TelemetryEndToEnd,
                         ::testing::Values(FtlKind::kCgm, FtlKind::kFgm,
                                           FtlKind::kSub,
                                           FtlKind::kSectorLog),
                         [](const auto& info) {
                           return core::ftl_kind_name(info.param);
                         });

TEST(TelemetryExperiment, SpecAttachExportsMetricsJson) {
  telemetry::TelemetryConfig tcfg;
  tcfg.sample_interval_us = 0.05 * sim_time::kSecond;
  telemetry::Telemetry tel(tcfg);

  core::ExperimentSpec spec;
  spec.ssd = test::tiny_config(FtlKind::kSub);
  spec.workload.footprint_sectors = spec.ssd.logical_sectors();
  spec.workload.request_count = 10000;
  spec.workload.r_small = 1.0;
  spec.workload.r_synch = 1.0;
  spec.workload.seed = 3;
  spec.telemetry = &tel;

  const auto result = core::run_experiment(spec);
  EXPECT_EQ(result.verify_failures, 0u);

  std::ostringstream os;
  telemetry::write_metrics_json(os, tel);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '{');
  EXPECT_NE(out.find("\"counters\""), std::string::npos);
  EXPECT_NE(out.find("\"subFTL/host_write_sectors\""), std::string::npos);
  EXPECT_NE(out.find("\"op/host_write/latency_us\""), std::string::npos);
  EXPECT_NE(out.find("\"samples\":["), std::string::npos);
  ASSERT_GE(tel.sampler().samples().size(), 2u);
}

}  // namespace
}  // namespace esp
