// Retention-path integration tests: time-dilated workloads that age
// subpage-region data past its reduced ESP retention horizon.
//
// The decisive pair: WITH the paper's 15-day eviction policy, aged data
// survives (it was moved to the full-page region in time); with the policy
// disabled, reads of aged subpages come back uncorrectable -- demonstrating
// both that our device model enforces the reduced retention and that
// subFTL's retention manager is what protects the data.
#include <gtest/gtest.h>

#include "core/ssd.h"
#include "test_common.h"
#include "workload/request.h"

namespace esp {
namespace {

using workload::Request;

core::SsdConfig retention_config(SimTime evict_age, SimTime scan_interval) {
  auto cfg = test::tiny_config(core::FtlKind::kSub);
  cfg.retention_evict_age = evict_age;
  cfg.retention_scan_interval = scan_interval;
  return cfg;
}

TEST(Retention, RetentionManagerRescuesAgedSubpages) {
  core::Ssd ssd(retention_config(15 * sim_time::kDay, sim_time::kDay));
  auto& drv = ssd.driver();

  // Small sync writes land in the subpage region.
  for (std::uint64_t s = 0; s < 64; s += 4)
    drv.submit({Request::Type::kWrite, s, 1, true, 0.0});

  // Let 40 simulated days pass in daily steps; each tick may run the scan.
  for (int day = 0; day < 40; ++day)
    drv.submit({Request::Type::kWrite, 1000, 1, true, sim_time::kDay});

  // Aged sectors were evicted to the full-page region in time: reads good.
  for (std::uint64_t s = 0; s < 64; s += 4)
    drv.submit({Request::Type::kRead, s, 1, false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);
  EXPECT_GT(ssd.ftl().stats().retention_evictions, 0u);
}

TEST(Retention, DisabledRetentionManagementLosesAgedData) {
  // Eviction age far beyond the device's subpage horizons == retention
  // management effectively off. Even an Npp^0 ESP subpage only holds for
  // ~8 months under the calibrated model, so 10 months of aging must turn
  // the un-evicted subpage-region data uncorrectable.
  core::Ssd ssd(retention_config(10000 * sim_time::kDay, sim_time::kDay));
  auto& drv = ssd.driver();

  for (std::uint64_t s = 0; s < 64; s += 4)
    drv.submit({Request::Type::kWrite, s, 1, true, 0.0});

  for (int step = 0; step < 30; ++step)
    drv.submit({Request::Type::kWrite, 1000, 1, true, 10 * sim_time::kDay});

  std::uint64_t failures = 0;
  for (std::uint64_t s = 0; s < 64; s += 4) {
    const auto result = drv.submit({Request::Type::kRead, s, 1, false, 0.0});
    if (!result.ok) ++failures;
  }
  EXPECT_GT(failures, 0u)
      << "aged ESP subpages must become uncorrectable without eviction";
  EXPECT_EQ(ssd.ftl().stats().retention_evictions, 0u);
}

TEST(Retention, FullPageDataSurvivesMonths) {
  // Full-page-region data follows the JEDEC-style 1-year horizon: three
  // months of aging must be harmless.
  core::Ssd ssd(retention_config(15 * sim_time::kDay, sim_time::kDay));
  auto& drv = ssd.driver();

  drv.submit({Request::Type::kWrite, 0, 16, false, 0.0});
  drv.flush();
  drv.advance_to(drv.now() + 90 * sim_time::kDay);

  for (std::uint64_t s = 0; s < 16; s += 4) {
    const auto result = drv.submit({Request::Type::kRead, s, 4, false, 0.0});
    EXPECT_TRUE(result.ok);
  }
  EXPECT_EQ(drv.verify_failures(), 0u);
}

TEST(Retention, EvictionCountsAgeTriggeredSeparatelyFromCold) {
  core::Ssd ssd(retention_config(10 * sim_time::kDay, sim_time::kDay));
  auto& drv = ssd.driver();

  for (std::uint64_t s = 0; s < 32; s += 4)
    drv.submit({Request::Type::kWrite, s, 1, true, 0.0});
  for (int day = 0; day < 20; ++day)
    drv.submit({Request::Type::kWrite, 2000, 1, true, sim_time::kDay});

  const auto& stats = ssd.ftl().stats();
  EXPECT_GT(stats.retention_evictions, 0u);
  // Every eviction programs a full page in the full-page region (an RMW
  // read only happens when the logical page already lives there).
  EXPECT_GE(stats.flash_prog_full, stats.retention_evictions);
}

}  // namespace
}  // namespace esp
