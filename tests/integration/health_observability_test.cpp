// Health-stream consistency against the causal-attribution journal (issue
// acceptance check): the SMART wear CoV/Gini must agree with an OFFLINE
// recomputation that starts from the health stream's epoch-0 baseline and
// replays the journal's erase events. Both artifacts come from the same
// run, so any disagreement means one of the two streams misreports wear.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "test_common.h"

namespace esp {
namespace {

// Flat field scanners (the streams are flat single-line objects; same
// idiom as tools/espreport.cpp).
bool find_raw(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t start = pos + needle.size();
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(start, end - start);
  return true;
}

bool find_str(const std::string& line, const char* key, std::string* out) {
  std::string raw;
  if (!find_raw(line, key, &raw)) return false;
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') return false;
  *out = raw.substr(1, raw.size() - 2);
  return true;
}

std::uint64_t get_u64(const std::string& line, const char* key) {
  std::string raw;
  if (!find_raw(line, key, &raw)) return 0;
  return std::strtoull(raw.c_str(), nullptr, 10);
}

double get_double(const std::string& line, const char* key) {
  std::string raw;
  if (!find_raw(line, key, &raw)) return 0.0;
  return std::strtod(raw.c_str(), nullptr);
}

struct WearStats {
  double mean = 0.0, cov = 0.0, gini = 0.0;
};

WearStats wear_stats(const std::vector<std::uint32_t>& pe) {
  WearStats w;
  const double n = static_cast<double>(pe.size());
  if (pe.empty()) return w;
  double sum = 0.0;
  for (const auto v : pe) sum += v;
  w.mean = sum / n;
  double var = 0.0;
  for (const auto v : pe) var += (v - w.mean) * (v - w.mean);
  var /= n;
  w.cov = w.mean > 0.0 ? std::sqrt(var) / w.mean : 0.0;
  std::vector<std::uint32_t> sorted = pe;
  std::sort(sorted.begin(), sorted.end());
  if (sum > 0.0) {
    double weighted = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i)
      weighted += static_cast<double>(i + 1) * sorted[i];
    w.gini = 2.0 * weighted / (n * sum) - (n + 1.0) / n;
  }
  return w;
}

TEST(HealthObservability, SmartWearAgreesWithJournalRecomputation) {
  core::ExperimentSpec spec;
  spec.ssd = test::tiny_config(core::FtlKind::kSub);
  spec.workload.request_count = 6000;
  spec.workload.r_small = 0.8;
  spec.workload.r_synch = 0.7;
  spec.workload.read_fraction = 0.1;
  spec.workload.seed = 5;
  spec.audit = true;
  spec.journal_path = ::testing::TempDir() + "ho-journal.jsonl";
  spec.health_path = ::testing::TempDir() + "ho-health.jsonl";
  // Endpoint epochs only: epoch 0 = attach baseline, last = run end.
  spec.health_interval_us = 0.0;
  const auto result = core::run_experiment(spec);
  ASSERT_GE(result.health_epochs, 2u);
  ASSERT_GT(result.erases, 0u)
      << "workload too light to wear blocks; cross-check is vacuous";

  // --- reconstruct per-block wear from the HEALTH stream --------------
  std::ifstream health(spec.health_path);
  ASSERT_TRUE(health.good());
  std::vector<std::uint32_t> baseline, state;
  std::uint64_t blocks_per_chip = 0;
  double smart_cov = 0.0, smart_gini = 0.0, smart_mean = 0.0;
  std::uint64_t epochs_seen = 0;
  std::string line;
  while (std::getline(health, line)) {
    std::string t;
    if (!find_str(line, "t", &t)) continue;
    if (t == "hdr") {
      blocks_per_chip = get_u64(line, "blocks_per_chip");
      const std::uint64_t total = get_u64(line, "chips") * blocks_per_chip;
      baseline.assign(total, 0);
      state.assign(total, 0);
    } else if (t == "epoch") {
      ++epochs_seen;
      if (epochs_seen == 2) baseline = state;  // epoch 0 fully decoded
    } else if (t == "b") {
      const std::uint64_t i = get_u64(line, "i");
      ASSERT_LT(i, state.size());
      state[i] = static_cast<std::uint32_t>(get_u64(line, "pe"));
    } else if (t == "smart") {
      // Keep the LAST smart line's wear attributes.
      smart_cov = get_double(line, "wear_cov");
      smart_gini = get_double(line, "wear_gini");
      smart_mean = get_double(line, "pe_mean");
    }
  }
  ASSERT_GE(epochs_seen, 2u);

  // --- replay the JOURNAL's erases over the epoch-0 baseline ----------
  std::ifstream journal(spec.journal_path);
  ASSERT_TRUE(journal.good());
  std::vector<std::uint32_t> replayed = baseline;
  std::uint64_t journal_erases = 0;
  while (std::getline(journal, line)) {
    std::string t, op;
    if (!find_str(line, "t", &t) || t != "op") continue;
    if (!find_str(line, "op", &op) || op != "erase") continue;
    const std::uint64_t idx =
        get_u64(line, "chip") * blocks_per_chip + get_u64(line, "block");
    ASSERT_LT(idx, replayed.size());
    // "pe" is the absolute cycle count after the erase: later events
    // overwrite earlier ones, so order only has to be per-block.
    replayed[idx] = static_cast<std::uint32_t>(get_u64(line, "pe"));
    ++journal_erases;
  }
  ASSERT_GT(journal_erases, 0u);

  // The two independent reconstructions must agree block for block...
  ASSERT_EQ(replayed.size(), state.size());
  for (std::size_t i = 0; i < replayed.size(); ++i)
    ASSERT_EQ(replayed[i], state[i]) << "block " << i;

  // ...and the SMART attributes must equal recomputation from them.
  // Tolerance covers the smart line's %.10g round-trip, nothing more.
  const WearStats w = wear_stats(replayed);
  EXPECT_NEAR(w.mean, smart_mean, 1e-7);
  EXPECT_NEAR(w.cov, smart_cov, 1e-7);
  EXPECT_NEAR(w.gini, smart_gini, 1e-7);
  EXPECT_GT(w.mean, 0.0);
}

}  // namespace
}  // namespace esp
