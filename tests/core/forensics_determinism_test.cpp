// Forensics-stream determinism (issue satellite): the exemplar/blame JSONL
// a cell writes is a function of (spec, seed) only -- byte-identical
// across --jobs 1 vs 2, and a shard's sidecar byte-identical whether the
// shard runs among its siblings or standalone. Every run here is audited,
// so the online phase-sum invariant (fold == response, bit-exact) is
// asserted on every request along the way.
#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_runner.h"
#include "core/shard.h"
#include "test_common.h"
#include "workload/splitter.h"
#include "workload/synthetic.h"

namespace esp {
namespace {

using core::ExperimentSpec;
using core::FtlKind;
using core::RunResult;

const FtlKind kKinds[] = {FtlKind::kCgm, FtlKind::kFgm, FtlKind::kSub,
                          FtlKind::kSectorLog};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing forensics stream " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::vector<core::ExperimentCell> make_cells(const std::string& tag) {
  std::vector<core::ExperimentCell> cells;
  for (const auto kind : kKinds) {
    core::ExperimentCell cell;
    cell.key = "forensics_determinism/" + core::ftl_kind_name(kind);
    cell.spec.ssd = test::tiny_config(kind);
    cell.spec.workload.request_count = 4000;
    cell.spec.workload.r_small = 0.8;
    cell.spec.workload.r_synch = 0.7;
    cell.spec.workload.read_fraction = 0.2;
    cell.spec.workload.seed = 5;
    cell.spec.warmup_requests = 0;
    cell.spec.audit = true;
    cell.spec.forensics_path = ::testing::TempDir() + "fd-" + tag + "-" +
                               core::ftl_kind_name(kind) + ".jsonl";
    cell.spec.forensics_top = 8;
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<core::CellResult> run_with_jobs(
    unsigned jobs, const std::vector<core::ExperimentCell>& cells) {
  core::ParallelRunnerConfig cfg;
  cfg.jobs = jobs;
  cfg.derive_seeds = false;  // seeds fixed in the specs above
  core::ParallelRunner runner(cfg);
  return runner.run(cells);
}

TEST(ForensicsDeterminism, StreamsByteIdenticalAcrossJobCounts) {
  const auto cells1 = make_cells("j1");
  const auto cells2 = make_cells("j2");
  const auto r1 = run_with_jobs(1, cells1);
  const auto r2 = run_with_jobs(2, cells2);
  ASSERT_EQ(r1.size(), cells1.size());
  ASSERT_EQ(r2.size(), cells2.size());

  for (std::size_t i = 0; i < cells1.size(); ++i) {
    ASSERT_TRUE(r1[i].ok) << r1[i].key << ": " << r1[i].error;
    ASSERT_TRUE(r2[i].ok) << r2[i].key << ": " << r2[i].error;
    EXPECT_EQ(r1[i].result.forensics_requests, 4000u) << r1[i].key;
    EXPECT_EQ(r1[i].result.forensics_exemplars, 8u) << r1[i].key;
    EXPECT_EQ(r1[i].result.forensics_requests,
              r2[i].result.forensics_requests);
    EXPECT_EQ(r1[i].result.forensics_truncated,
              r2[i].result.forensics_truncated);
    const std::string a = slurp(cells1[i].spec.forensics_path);
    const std::string b = slurp(cells2[i].spec.forensics_path);
    ASSERT_FALSE(a.empty()) << cells1[i].key;
    EXPECT_EQ(a, b) << "forensics stream for " << cells1[i].key
                    << " differs between --jobs 1 and --jobs 2";
  }
}

/// Shard-capable spec: 8 whole channel groups (see shard_invariance_test).
ExperimentSpec make_sharded_spec(unsigned shards, unsigned jobs,
                                 const std::string& tag) {
  ExperimentSpec spec;
  nand::Geometry geo;
  geo.channels = 8;
  geo.chips_per_channel = 1;
  geo.blocks_per_chip = 16;
  geo.pages_per_block = 32;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  spec.ssd.geometry = geo;
  spec.ssd.ftl = FtlKind::kSub;
  spec.ssd.logical_fraction = 0.60;
  spec.ssd.gc_reserve_blocks = 16;
  spec.ssd.buffer_sectors = 512;
  spec.ssd.queue_depth = 32;
  spec.workload.request_count = 3000;
  spec.workload.r_small = 0.8;
  spec.workload.r_synch = 0.7;
  spec.workload.read_fraction = 0.2;
  spec.workload.seed = 11;
  spec.warmup_requests = 200;
  spec.audit = true;
  spec.shards = shards;
  spec.shard_jobs = jobs;
  spec.shard_stripe_pages = 4;
  spec.forensics_path =
      ::testing::TempDir() + "fd-shard-" + tag + ".jsonl";
  return spec;
}

TEST(ForensicsDeterminism, ShardSidecarsMergeAndMatchStandalone) {
  const auto joint_spec = make_sharded_spec(2, 2, "joint");
  const RunResult joint = core::run_experiment(joint_spec);
  ASSERT_EQ(joint.shard_results.size(), 2u);
  // Merged counters are the sum over shards, and the merged stream is the
  // shard-index-order concatenation of the sidecars.
  std::uint64_t requests = 0, exemplars = 0;
  std::string concat;
  for (unsigned i = 0; i < 2; ++i) {
    requests += joint.shard_results[i].forensics_requests;
    exemplars += joint.shard_results[i].forensics_exemplars;
    concat += slurp(core::shard_sidecar_path(joint_spec.forensics_path, i));
  }
  EXPECT_EQ(joint.forensics_requests, requests);
  EXPECT_EQ(joint.forensics_exemplars, exemplars);
  ASSERT_FALSE(concat.empty());
  EXPECT_EQ(slurp(joint_spec.forensics_path), concat);

  // Shard 0 re-run STANDALONE (the orchestrator's own leaf construction)
  // must write a byte-identical forensics sidecar.
  ExperimentSpec plan_spec = make_sharded_spec(2, 2, "alone");
  const core::ShardPlan plan = core::make_shard_plan(plan_spec);
  const workload::SyntheticParams params =
      core::sharded_workload_params(plan_spec, plan);
  workload::SyntheticWorkload generator(params);
  const workload::ShardSplitter splitter(
      plan.shards, plan.stripe_pages,
      plan_spec.ssd.geometry.subpages_per_page, plan.shard_sectors);
  auto streams = workload::partition_stream(generator, splitter, 0,
                                            plan_spec.warmup_requests);
  ASSERT_EQ(streams.size(), 2u);
  ExperimentSpec leaf = core::make_shard_spec(plan_spec, plan, 0);
  leaf.warmup_requests = streams[0].warmup_requests;
  leaf.workload.request_count = streams[0].requests.size();
  workload::VectorSource source(std::move(streams[0].requests));
  leaf.stream = &source;
  const RunResult alone = core::run_experiment(leaf);

  const std::string joint_side =
      slurp(core::shard_sidecar_path(joint_spec.forensics_path, 0));
  const std::string alone_side = slurp(leaf.forensics_path);
  ASSERT_FALSE(alone_side.empty());
  EXPECT_EQ(alone_side, joint_side)
      << "shard 0 forensics differs between standalone and joint runs";
  EXPECT_EQ(alone.forensics_requests, joint.shard_results[0].forensics_requests);
}

TEST(ForensicsDeterminism, RandomizedAuditedSweepsReconcileOnEveryFtl) {
  // Randomized workload shapes across all four FTLs, always audited with
  // a forensics stream attached: the collector's audit hook throws (and
  // fails the run) on the first request whose phase fold is not bit-exact.
  std::mt19937 rng(97u);
  std::uniform_real_distribution<double> frac(0.1, 0.9);
  std::uniform_int_distribution<std::uint64_t> seed_of(1, 1u << 20);
  for (const auto kind : kKinds) {
    for (int round = 0; round < 2; ++round) {
      ExperimentSpec spec;
      spec.ssd = test::tiny_config(kind);
      spec.workload.request_count = 2500;
      spec.workload.r_small = frac(rng);
      spec.workload.r_synch = frac(rng);
      spec.workload.read_fraction = frac(rng) * 0.5;
      spec.workload.seed = seed_of(rng);
      spec.warmup_requests = 100;
      spec.audit = true;
      spec.forensics_path = ::testing::TempDir() + "fd-rand-" +
                            std::string(core::ftl_kind_name(kind)) + "-" +
                            std::to_string(round) + ".jsonl";
      const std::string what = std::string(core::ftl_kind_name(kind)) +
                               " round " + std::to_string(round) + " seed " +
                               std::to_string(spec.workload.seed);
      RunResult result;
      ASSERT_NO_THROW(result = core::run_experiment(spec)) << what;
      EXPECT_EQ(result.forensics_requests, 2500u) << what;
      EXPECT_GT(result.forensics_exemplars, 0u) << what;
      ASSERT_EQ(result.tenant_blame.size(), 1u) << what;
      // The harvested blame totals cover every request, and its phase sums
      // are finite, non-negative times.
      EXPECT_EQ(result.tenant_blame[0].requests, 2500u) << what;
      for (const double us : result.tenant_blame[0].phase_us)
        EXPECT_GE(us, 0.0) << what;
    }
  }
}

}  // namespace
}  // namespace esp
