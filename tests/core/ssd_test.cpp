// Facade tests: SsdConfig validation and derived quantities, FTL
// construction, preconditioning.
#include "core/ssd.h"

#include <gtest/gtest.h>

#include "test_common.h"

namespace esp::core {
namespace {

TEST(SsdConfig, DefaultValidates) {
  SsdConfig config;
  EXPECT_NO_THROW(config.validate());
}

TEST(SsdConfig, LogicalSectorsPageAligned) {
  SsdConfig config;
  config.geometry = test::tiny_geometry();
  for (const double fraction : {0.3, 0.5, 0.625, 0.8}) {
    config.logical_fraction = fraction;
    EXPECT_EQ(config.logical_sectors() % config.geometry.subpages_per_page,
              0u);
    EXPECT_LE(config.logical_sectors(),
              config.geometry.total_subpages());
  }
}

TEST(SsdConfig, RejectsBadFractions) {
  SsdConfig config;
  config.logical_fraction = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.logical_fraction = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.logical_fraction = 0.5;
  config.subpage_region_fraction = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Ssd, ConstructsEveryFtlKind) {
  for (const auto kind : {FtlKind::kCgm, FtlKind::kFgm, FtlKind::kSub}) {
    Ssd ssd(test::tiny_config(kind));
    EXPECT_EQ(ssd.ftl().name(), ftl_kind_name(kind));
    EXPECT_EQ(ssd.logical_sectors(),
              test::tiny_config(kind).logical_sectors());
  }
}

TEST(Ssd, PreconditionFillsRequestedFraction) {
  Ssd ssd(test::tiny_config(FtlKind::kSub));
  ssd.precondition(0.5);
  auto& drv = ssd.driver();
  const std::uint64_t filled =
      ssd.logical_sectors() / 2 / 4 * 4;  // page-rounded
  // Everything below the fill point reads back non-empty & verified.
  for (std::uint64_t s = 0; s + 4 <= filled; s += filled / 8 / 4 * 4)
    drv.submit({workload::Request::Type::kRead, s, 4, false, 0.0});
  EXPECT_EQ(drv.verify_failures(), 0u);
  // Above the fill point nothing was written.
  std::vector<std::uint64_t> tokens;
  ssd.ftl().read(ssd.logical_sectors() - 4, 4, drv.now(), &tokens);
  for (const auto t : tokens) EXPECT_EQ(t, 0u);
}

TEST(Ssd, PreconditionZeroIsNoop) {
  Ssd ssd(test::tiny_config(FtlKind::kCgm));
  ssd.precondition(0.0);
  EXPECT_EQ(ssd.ftl().stats().host_write_sectors, 0u);
}

TEST(Ssd, DeviceAndFtlShareGeometry) {
  Ssd ssd(test::tiny_config(FtlKind::kFgm));
  EXPECT_EQ(ssd.device().geometry(), ssd.config().geometry);
}

TEST(FtlKindName, CoversAllKinds) {
  EXPECT_EQ(ftl_kind_name(FtlKind::kCgm), "cgmFTL");
  EXPECT_EQ(ftl_kind_name(FtlKind::kFgm), "fgmFTL");
  EXPECT_EQ(ftl_kind_name(FtlKind::kSub), "subFTL");
}

}  // namespace
}  // namespace esp::core
