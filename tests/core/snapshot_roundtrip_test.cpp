// Snapshot round-trip (issue satellite): checkpointing a run mid-window
// must be invisible in every output byte, and restoring the checkpoint
// must regenerate exactly the bytes the uninterrupted run would have
// written. Three runs per FTL:
//
//   reference   -- straight through, journal + health + forensics sidecars
//   checkpoint  -- same spec, snapshot written mid-window, run continues
//                  to the end (sidecars must already match the reference)
//   resume      -- restore the checkpoint against COPIES of the
//                  checkpoint run's sidecars; the restore truncates them
//                  to the checkpoint offsets and regenerates the tail
//                  (copies must end up byte-identical to the reference)
//
// The resume grid runs under --jobs 2 while the reference ran under
// --jobs 1, so worker scheduling is also shown not to leak into the
// restored bytes.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_runner.h"
#include "core/snapshot.h"
#include "test_common.h"

namespace esp {
namespace {

using core::FtlKind;

const FtlKind kKinds[] = {FtlKind::kCgm, FtlKind::kFgm, FtlKind::kSub,
                          FtlKind::kSectorLog};

constexpr std::uint64_t kRequests = 4000;
constexpr std::uint64_t kCheckpointAfter = 1500;

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing sidecar " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void copy_file(const std::string& from, const std::string& to) {
  std::ofstream os(to, std::ios::binary | std::ios::trunc);
  os << slurp(from);
  ASSERT_TRUE(os.good()) << "copy to " << to << " failed";
}

struct Sidecars {
  std::string journal, health, forensics;
};

Sidecars paths_for(const std::string& tag, FtlKind kind) {
  const std::string base =
      ::testing::TempDir() + "snap-" + tag + "-" + core::ftl_kind_name(kind);
  return {base + ".journal.jsonl", base + ".health.jsonl",
          base + ".forensics.jsonl"};
}

core::ExperimentCell make_cell(const std::string& tag, FtlKind kind) {
  core::ExperimentCell cell;
  cell.key = "snapshot_roundtrip/" + std::string(core::ftl_kind_name(kind));
  cell.spec.ssd = test::tiny_config(kind);
  cell.spec.workload.request_count = kRequests;
  cell.spec.workload.r_small = 0.8;
  cell.spec.workload.r_synch = 0.7;
  cell.spec.workload.read_fraction = 0.2;
  cell.spec.workload.seed = 11;
  cell.spec.warmup_requests = 500;
  cell.spec.audit = true;
  const Sidecars s = paths_for(tag, kind);
  cell.spec.journal_path = s.journal;
  cell.spec.health_path = s.health;
  cell.spec.health_interval_us = 0.2 * sim_time::kSecond;
  cell.spec.forensics_path = s.forensics;
  return cell;
}

std::vector<core::CellResult> run_with_jobs(
    unsigned jobs, const std::vector<core::ExperimentCell>& cells) {
  core::ParallelRunnerConfig cfg;
  cfg.jobs = jobs;
  cfg.derive_seeds = false;  // seeds fixed in the specs above
  core::ParallelRunner runner(cfg);
  return runner.run(cells);
}

TEST(SnapshotRoundtrip, RestoreRegeneratesSidecarsByteIdentical) {
  // Reference grid, --jobs 1.
  std::vector<core::ExperimentCell> ref_cells;
  for (const auto kind : kKinds) ref_cells.push_back(make_cell("ref", kind));
  const auto ref = run_with_jobs(1, ref_cells);

  // Checkpointing grid: snapshot mid-window, keep running to the end.
  std::vector<core::ExperimentCell> ck_cells;
  for (const auto kind : kKinds) {
    auto cell = make_cell("ck", kind);
    cell.spec.snapshot_out = ::testing::TempDir() + "snap-ck-" +
                             core::ftl_kind_name(kind) + ".snap";
    cell.spec.snapshot_after_requests = kCheckpointAfter;
    ck_cells.push_back(std::move(cell));
  }
  const auto ck = run_with_jobs(2, ck_cells);

  for (std::size_t i = 0; i < ref_cells.size(); ++i) {
    ASSERT_TRUE(ref[i].ok) << ref[i].key << ": " << ref[i].error;
    ASSERT_TRUE(ck[i].ok) << ck[i].key << ": " << ck[i].error;
    const Sidecars a = paths_for("ref", kKinds[i]);
    const Sidecars b = paths_for("ck", kKinds[i]);
    ASSERT_FALSE(slurp(a.journal).empty()) << ref[i].key;
    // Checkpoint transparency: writing the snapshot must not move a byte.
    EXPECT_EQ(slurp(a.journal), slurp(b.journal)) << ref[i].key;
    EXPECT_EQ(slurp(a.health), slurp(b.health)) << ref[i].key;
    EXPECT_EQ(slurp(a.forensics), slurp(b.forensics)) << ref[i].key;
  }

  // Resume grid, --jobs 2: restore each checkpoint against copies of the
  // checkpoint run's sidecars (a restore truncates them to the checkpoint
  // offsets and appends the regenerated tail in place).
  std::vector<core::ExperimentCell> rs_cells;
  for (std::size_t i = 0; i < ck_cells.size(); ++i) {
    auto cell = make_cell("rs", kKinds[i]);
    const Sidecars from = paths_for("ck", kKinds[i]);
    const Sidecars to = paths_for("rs", kKinds[i]);
    copy_file(from.journal, to.journal);
    copy_file(from.health, to.health);
    copy_file(from.forensics, to.forensics);
    cell.spec.snapshot_in = ck_cells[i].spec.snapshot_out;
    rs_cells.push_back(std::move(cell));
  }
  const auto rs = run_with_jobs(2, rs_cells);

  for (std::size_t i = 0; i < rs_cells.size(); ++i) {
    ASSERT_TRUE(rs[i].ok) << rs[i].key << ": " << rs[i].error;
    const Sidecars a = paths_for("ref", kKinds[i]);
    const Sidecars b = paths_for("rs", kKinds[i]);
    EXPECT_EQ(slurp(a.journal), slurp(b.journal))
        << "journal for " << rs[i].key
        << " diverged after restore + continue";
    EXPECT_EQ(slurp(a.health), slurp(b.health))
        << "health stream for " << rs[i].key
        << " diverged after restore + continue";
    EXPECT_EQ(slurp(a.forensics), slurp(b.forensics))
        << "forensics stream for " << rs[i].key
        << " diverged after restore + continue";
    // The resumed leg reports only its own (post-checkpoint) window; its
    // cumulative simulated end state must agree with the reference run.
    EXPECT_EQ(rs[i].result.raw.end_us, ref[i].result.raw.end_us)
        << rs[i].key;
    EXPECT_EQ(rs[i].result.raw.device_erases, ref[i].result.raw.device_erases)
        << rs[i].key;
    EXPECT_EQ(rs[i].result.verify_failures, 0u) << rs[i].key;
  }
}

TEST(SnapshotRoundtrip, FreshSeedLegStartsFromAgedStateDeterministically) {
  // A restore with a DIFFERENT workload seed starts a fresh measurement
  // leg over the aged device (fan-out anchor semantics). Two identical
  // fresh legs from the same snapshot must agree bit-exactly.
  auto anchor = make_cell("anchor", FtlKind::kSub);
  anchor.spec.journal_path.clear();
  anchor.spec.health_path.clear();
  anchor.spec.forensics_path.clear();
  anchor.spec.snapshot_out = ::testing::TempDir() + "snap-anchor.snap";
  const auto a = run_with_jobs(1, {anchor});
  ASSERT_TRUE(a[0].ok) << a[0].error;

  std::vector<core::ExperimentCell> legs;
  for (int l = 0; l < 2; ++l) {
    auto leg = make_cell("leg" + std::to_string(l), FtlKind::kSub);
    leg.spec.journal_path.clear();
    leg.spec.health_path.clear();
    leg.spec.forensics_path.clear();
    leg.spec.snapshot_in = anchor.spec.snapshot_out;
    leg.spec.workload.seed = 99;  // != 11: fresh leg, not a resume
    leg.spec.workload.request_count = 1500;
    leg.spec.warmup_requests = 200;
    legs.push_back(std::move(leg));
  }
  const auto r = run_with_jobs(2, legs);
  ASSERT_TRUE(r[0].ok) << r[0].error;
  ASSERT_TRUE(r[1].ok) << r[1].error;
  EXPECT_EQ(r[0].result.raw.end_us, r[1].result.raw.end_us);
  EXPECT_EQ(r[0].result.raw.device_erases, r[1].result.raw.device_erases);
  EXPECT_EQ(r[0].result.overall_waf, r[1].result.overall_waf);
  // And a fresh leg is not a resume: it runs on the aged clock, starting
  // at (or after) the instant the anchor snapshot was saved. The default
  // checkpoint lands at the anchor's measured-window START, so compare
  // against the snapshot's own saved_at_us, not the anchor's end.
  std::ifstream is(anchor.spec.snapshot_out, std::ios::binary);
  ASSERT_TRUE(is.good());
  const core::SnapshotMeta meta =
      core::read_snapshot_meta(is, anchor.spec.ssd);
  EXPECT_GE(r[0].result.raw.start_us, meta.saved_at_us);
  EXPECT_GT(meta.saved_at_us, 0u);
}

}  // namespace
}  // namespace esp
