// Health-snapshot determinism (issue satellite): the device-health stream
// a cell writes must be BYTE-IDENTICAL regardless of how many workers the
// parallel runner uses -- epochs are cut on simulated time and the rows
// snapshot deterministic simulator state, so --jobs must not leak in.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_runner.h"
#include "test_common.h"

namespace esp {
namespace {

using core::FtlKind;

const FtlKind kKinds[] = {FtlKind::kCgm, FtlKind::kFgm, FtlKind::kSub,
                          FtlKind::kSectorLog};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing health stream " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::vector<core::ExperimentCell> make_cells(const std::string& tag) {
  std::vector<core::ExperimentCell> cells;
  for (const auto kind : kKinds) {
    core::ExperimentCell cell;
    cell.key = "health_determinism/" + core::ftl_kind_name(kind);
    cell.spec.ssd = test::tiny_config(kind);
    cell.spec.workload.request_count = 4000;
    cell.spec.workload.r_small = 0.8;
    cell.spec.workload.r_synch = 0.7;
    cell.spec.workload.read_fraction = 0.2;
    cell.spec.workload.seed = 5;
    cell.spec.warmup_requests = 0;
    cell.spec.audit = true;
    cell.spec.health_path = ::testing::TempDir() + "hd-" + tag + "-" +
                            core::ftl_kind_name(kind) + ".jsonl";
    // A short interval so several mid-run epochs land inside the window,
    // not just the attach + end-of-run endpoints.
    cell.spec.health_interval_us = 50.0 * sim_time::kMillisecond;
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<core::CellResult> run_with_jobs(
    unsigned jobs, const std::vector<core::ExperimentCell>& cells) {
  core::ParallelRunnerConfig cfg;
  cfg.jobs = jobs;
  cfg.derive_seeds = false;  // seeds fixed in the specs above
  core::ParallelRunner runner(cfg);
  return runner.run(cells);
}

TEST(HealthDeterminism, StreamsByteIdenticalAcrossJobCounts) {
  const auto cells1 = make_cells("j1");
  const auto cells2 = make_cells("j2");
  const auto r1 = run_with_jobs(1, cells1);
  const auto r2 = run_with_jobs(2, cells2);
  ASSERT_EQ(r1.size(), cells1.size());
  ASSERT_EQ(r2.size(), cells2.size());

  for (std::size_t i = 0; i < cells1.size(); ++i) {
    ASSERT_TRUE(r1[i].ok) << r1[i].key << ": " << r1[i].error;
    ASSERT_TRUE(r2[i].ok) << r2[i].key << ": " << r2[i].error;
    EXPECT_EQ(r1[i].result.health_epochs, r2[i].result.health_epochs);
    EXPECT_EQ(r1[i].result.health_lines, r2[i].result.health_lines);
    // Epoch 0 (attach baseline) + at least the end-of-run flush.
    EXPECT_GE(r1[i].result.health_epochs, 2u) << r1[i].key;
    const std::string a = slurp(cells1[i].spec.health_path);
    const std::string b = slurp(cells2[i].spec.health_path);
    ASSERT_FALSE(a.empty()) << cells1[i].key;
    EXPECT_EQ(a, b) << "health stream for " << cells1[i].key
                    << " differs between --jobs 1 and --jobs 2";
  }
}

}  // namespace
}  // namespace esp
