// Parallel experiment runner: determinism across job counts, stable
// seeding, error isolation, manifest and merge bookkeeping.
#include "core/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "test_common.h"
#include "util/rng.h"

namespace esp::core {
namespace {

workload::SyntheticParams quick_workload() {
  workload::SyntheticParams params;
  params.request_count = 1500;
  params.sectors_per_page = 4;
  params.r_small = 0.7;
  params.r_synch = 0.5;
  params.read_fraction = 0.3;
  params.small_sectors_max = 3;
  return params;
}

ExperimentCell make_cell(const std::string& key, FtlKind kind) {
  ExperimentCell cell;
  cell.key = key;
  cell.spec.ssd = test::tiny_config(kind);
  cell.spec.workload = quick_workload();
  cell.spec.precondition_fraction = 0.5;
  cell.spec.warmup_requests = 200;
  return cell;
}

std::vector<ExperimentCell> grid() {
  return {make_cell("grid/cgm", FtlKind::kCgm),
          make_cell("grid/fgm", FtlKind::kFgm),
          make_cell("grid/sub", FtlKind::kSub),
          make_cell("grid/sectorlog", FtlKind::kSectorLog)};
}

TEST(StableCellSeed, DependsOnlyOnKeyAndBase) {
  const auto a = stable_cell_seed("fig8/varmail/subFTL", 2017);
  EXPECT_EQ(a, stable_cell_seed("fig8/varmail/subFTL", 2017));
  EXPECT_NE(a, stable_cell_seed("fig8/varmail/cgmFTL", 2017));
  EXPECT_NE(a, stable_cell_seed("fig8/varmail/subFTL", 2018));
  EXPECT_NE(stable_cell_seed("", 0), 0u);  // never a zero RNG state
}

TEST(ParallelRunner, ResultsBitIdenticalAcrossJobCounts) {
  const auto cells = grid();
  ParallelRunnerConfig seq_cfg;
  seq_cfg.jobs = 1;
  ParallelRunner seq(seq_cfg);
  const auto baseline = seq.run(cells);

  for (const unsigned jobs : {2u, 4u}) {
    ParallelRunnerConfig cfg;
    cfg.jobs = jobs;
    ParallelRunner par(cfg);
    const auto got = par.run(cells);
    ASSERT_EQ(got.size(), baseline.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE(cells[i].key + " jobs=" + std::to_string(jobs));
      ASSERT_TRUE(got[i].ok) << got[i].error;
      ASSERT_TRUE(baseline[i].ok);
      EXPECT_EQ(got[i].key, baseline[i].key);
      EXPECT_EQ(got[i].seed, baseline[i].seed);
      // Bit-identical, not approximately equal: the whole point.
      EXPECT_EQ(got[i].result.iops, baseline[i].result.iops);
      EXPECT_EQ(got[i].result.host_mb_per_sec,
                baseline[i].result.host_mb_per_sec);
      EXPECT_EQ(got[i].result.overall_waf, baseline[i].result.overall_waf);
      EXPECT_EQ(got[i].result.gc_invocations,
                baseline[i].result.gc_invocations);
      EXPECT_EQ(got[i].result.erases, baseline[i].result.erases);
      EXPECT_EQ(got[i].result.verify_failures, 0u);
      EXPECT_EQ(got[i].result.raw.latency_hist.total(),
                baseline[i].result.raw.latency_hist.total());
      EXPECT_EQ(got[i].result.raw.latency_hist.percentile(0.99),
                baseline[i].result.raw.latency_hist.percentile(0.99));
    }
    EXPECT_EQ(par.merged_latency().total(), seq.merged_latency().total());
    for (std::size_t b = 0; b < par.merged_latency().bucket_count(); ++b)
      ASSERT_EQ(par.merged_latency().bucket(b), seq.merged_latency().bucket(b));
  }
}

TEST(ParallelRunner, DerivedSeedsComeFromKeysNotOrder) {
  auto cells = grid();
  ParallelRunnerConfig cfg;
  cfg.jobs = 2;
  ParallelRunner runner(cfg);
  const auto forward = runner.run(cells);

  std::vector<ExperimentCell> reversed(cells.rbegin(), cells.rend());
  const auto backward = runner.run(reversed);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& fwd = forward[i];
    const auto& bwd = backward[cells.size() - 1 - i];
    ASSERT_EQ(fwd.key, bwd.key);
    EXPECT_EQ(fwd.seed, bwd.seed);
    EXPECT_EQ(fwd.result.iops, bwd.result.iops);
    EXPECT_EQ(fwd.result.erases, bwd.result.erases);
  }
}

TEST(ParallelRunner, TenantCellsBitIdenticalAcrossJobCounts) {
  // Multi-tenant cells add a scheduler and per-tenant streams to the
  // pipeline; their per-tenant metrics must stay byte-identical across
  // job counts, like everything else.
  std::vector<ExperimentCell> cells;
  for (const auto policy : {sim::QosPolicy::kFifo, sim::QosPolicy::kRoundRobin,
                            sim::QosPolicy::kWeightedShare}) {
    ExperimentCell cell;
    cell.key = "grid/tenants/" + sim::qos_policy_name(policy);
    cell.spec.ssd = test::tiny_config(FtlKind::kSub);
    cell.spec.qos = policy;
    cell.spec.precondition_fraction = 0.3;
    cell.spec.warmup_requests = 100;
    TenantSpec reader;
    reader.name = "reader";
    reader.weight = 4.0;
    reader.workload = quick_workload();
    reader.workload.request_count = 600;
    reader.workload.read_fraction = 0.8;
    reader.workload.think_us = 50.0;
    TenantSpec writer;
    writer.name = "writer";
    writer.workload = quick_workload();
    writer.workload.request_count = 600;
    writer.workload.r_small = 0.0;
    cell.spec.tenants = {reader, writer};
    cells.push_back(std::move(cell));
  }

  ParallelRunnerConfig seq_cfg;
  seq_cfg.jobs = 1;
  ParallelRunner seq(seq_cfg);
  const auto baseline = seq.run(cells);

  ParallelRunnerConfig par_cfg;
  par_cfg.jobs = 3;
  ParallelRunner par(par_cfg);
  const auto got = par.run(cells);
  ASSERT_EQ(got.size(), baseline.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(cells[i].key);
    ASSERT_TRUE(baseline[i].ok) << baseline[i].error;
    ASSERT_TRUE(got[i].ok) << got[i].error;
    ASSERT_EQ(got[i].result.tenants.size(), 2u);
    ASSERT_EQ(baseline[i].result.tenants.size(), 2u);
    for (std::size_t t = 0; t < 2; ++t) {
      const auto& a = baseline[i].result.tenants[t];
      const auto& b = got[i].result.tenants[t];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.requests, b.requests);
      EXPECT_EQ(a.host_write_sectors, b.host_write_sectors);
      EXPECT_EQ(a.host_read_sectors, b.host_read_sectors);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(a.service_p99_us, b.service_p99_us);
      EXPECT_EQ(a.response_p99_us, b.response_p99_us);
      EXPECT_EQ(a.response_hist.total(), b.response_hist.total());
    }
    // The runner derives distinct per-tenant seeds from the cell key, so
    // the two lanes never replay the same request sequence.
    EXPECT_NE(baseline[i].result.tenants[0].host_write_sectors,
              baseline[i].result.tenants[1].host_write_sectors);
  }
}

TEST(ParallelRunner, FailingCellIsIsolated) {
  auto cells = grid();
  ExperimentCell bad;
  bad.key = "grid/bad";
  bad.spec.ssd = test::tiny_config(FtlKind::kSub);
  bad.spec.ssd.logical_fraction = 0.999;  // infeasible with the 20% region
  bad.spec.workload = quick_workload();
  cells.insert(cells.begin() + 1, bad);

  ParallelRunnerConfig cfg;
  cfg.jobs = 3;
  ParallelRunner runner(cfg);
  const auto results = runner.run(cells);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_FALSE(results[1].ok);
  EXPECT_FALSE(results[1].error.empty());
  for (const std::size_t i : {0ul, 2ul, 3ul, 4ul})
    EXPECT_TRUE(results[i].ok) << results[i].error;
}

TEST(ParallelRunner, ManifestRecordsCellsInInputOrder) {
  const auto cells = grid();
  ParallelRunnerConfig cfg;
  cfg.jobs = 2;
  cfg.base_seed = 7;
  ParallelRunner runner(cfg);
  runner.run(cells);
  const auto& m = runner.manifest();
  EXPECT_EQ(m.jobs_requested, 2u);
  EXPECT_EQ(m.jobs_used, 2u);
  EXPECT_EQ(m.base_seed, 7u);
  ASSERT_EQ(m.cells.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(m.cells[i].key, cells[i].key);
    EXPECT_EQ(m.cells[i].seed, stable_cell_seed(cells[i].key, 7));
    EXPECT_TRUE(m.cells[i].ok);
  }
  std::ostringstream os;
  ParallelRunner::write_manifest_json(m, os);
  EXPECT_NE(os.str().find("\"cells\":"), std::string::npos);
  EXPECT_NE(os.str().find("grid/sub"), std::string::npos);
}

TEST(ParallelRunner, TelemetryRegistriesReconcileAtJoin) {
  const auto cells = grid();
  ParallelRunnerConfig cfg;
  cfg.collect_telemetry = true;
  cfg.jobs = 1;
  ParallelRunner seq(cfg);
  const auto seq_results = seq.run(cells);
  cfg.jobs = 4;
  ParallelRunner par(cfg);
  par.run(cells);

  // Each cell binds its own "nand/erases"; the merged registry must hold
  // the sum over all cells, independent of job count.
  std::uint64_t expected = 0;
  for (const auto& r : seq_results)
    expected += r.result.raw.device_erases;
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(seq.merged_registry().counter_value("nand/erases"), expected);
  EXPECT_EQ(par.merged_registry().counter_value("nand/erases"), expected);
}

TEST(RunTasks, EveryIndexRunsExactlyOnce) {
  constexpr std::size_t kCount = 97;  // not a multiple of any job count
  for (const unsigned jobs : {1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(kCount);
    run_tasks(jobs, kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
  }
}

TEST(RunTasks, MoreJobsThanTasksAndZeroTasks) {
  std::vector<std::atomic<int>> hits(3);
  const unsigned used = run_tasks(16, 3, [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  EXPECT_LE(used, 3u);  // clamped to the task count
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  run_tasks(4, 0, [&](std::size_t) { FAIL() << "no tasks to run"; });
}

TEST(RunTasks, JobsZeroMeansHardwareConcurrency) {
  std::vector<std::atomic<int>> hits(8);
  const unsigned used = run_tasks(0, 8, [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  EXPECT_GE(used, 1u);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunTasks, FirstExceptionPropagatesAfterDrain) {
  std::atomic<int> ran{0};
  try {
    run_tasks(2, 50, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 7) throw std::runtime_error("task 7 failed");
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7 failed");
  }
  // The pool drains instead of abandoning workers; most tasks still ran.
  EXPECT_GT(ran.load(), 1);
}

TEST(RunTasks, SingleJobRunsInline) {
  // jobs == 1 must execute on the calling thread (no pool), so thread-local
  // state set by the caller is visible to every task.
  const auto caller = std::this_thread::get_id();
  run_tasks(1, 5, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(RunTasks, DeterministicAggregationAcrossJobCounts) {
  // The intended fan-out pattern: stable per-task seeds, tasks write into
  // preallocated slots, aggregation in input order on the joining thread.
  const auto population = [](unsigned jobs) {
    std::vector<std::uint64_t> out(64);
    run_tasks(jobs, out.size(), [&](std::size_t i) {
      util::Xoshiro256 rng(
          stable_cell_seed("runner_test/wl" + std::to_string(i), 42));
      std::uint64_t acc = 0;
      for (int k = 0; k < 1000; ++k) acc ^= rng();
      out[i] = acc;
    });
    return out;
  };
  const auto seq = population(1);
  EXPECT_EQ(population(2), seq);
  EXPECT_EQ(population(5), seq);
}

}  // namespace
}  // namespace esp::core
