// ExperimentRunner tests: window isolation (warmup excluded), derived
// metrics, footprint defaulting.
#include "core/experiment.h"

#include <gtest/gtest.h>

#include "test_common.h"

namespace esp::core {
namespace {

ExperimentSpec base_spec() {
  ExperimentSpec spec;
  spec.ssd = test::tiny_config(FtlKind::kSub);
  spec.precondition_fraction = 0.7;
  spec.workload.request_count = 3000;
  spec.workload.r_small = 1.0;
  spec.workload.r_synch = 1.0;
  spec.workload.small_footprint_fraction = 0.2;
  spec.workload.seed = 11;
  return spec;
}

TEST(Experiment, FootprintDefaultsToPreconditionedRange) {
  auto spec = base_spec();
  ASSERT_EQ(spec.workload.footprint_sectors, 0u);
  const auto result = run_experiment(spec);
  EXPECT_EQ(result.verify_failures, 0u);
  EXPECT_GT(result.iops, 0.0);
  EXPECT_GT(result.host_mb_per_sec, 0.0);
}

TEST(Experiment, WarmupExcludedFromWindow) {
  auto spec = base_spec();
  spec.workload.request_count = 4000;
  spec.warmup_requests = 3000;
  const auto result = run_experiment(spec);
  // The measured window covers only the post-warmup requests.
  EXPECT_EQ(result.raw.requests, 1000u);
  EXPECT_EQ(result.raw.ftl_stats.host_write_requests +
                result.raw.ftl_stats.host_read_requests,
            1000u);
}

TEST(Experiment, WindowStatsConsistentWithBudget) {
  auto spec = base_spec();
  spec.workload.read_fraction = 0.0;
  const auto result = run_experiment(spec);
  // All-write small workload: window host sectors == request count.
  EXPECT_EQ(result.raw.ftl_stats.host_write_sectors, 3000u);
  EXPECT_GE(result.small_request_waf, 0.9);
  EXPECT_GE(result.overall_waf, 0.9);
}

TEST(Experiment, MappingBytesReported) {
  auto spec = base_spec();
  const auto result = run_experiment(spec);
  EXPECT_GT(result.mapping_bytes, 0u);
}

TEST(Experiment, DeterministicForSameSpec) {
  const auto a = run_experiment(base_spec());
  const auto b = run_experiment(base_spec());
  EXPECT_DOUBLE_EQ(a.iops, b.iops);
  EXPECT_EQ(a.gc_invocations, b.gc_invocations);
  EXPECT_EQ(a.erases, b.erases);
}

TEST(Experiment, DifferentSeedsDiffer) {
  auto spec = base_spec();
  spec.workload.seed = 12;
  const auto a = run_experiment(base_spec());
  const auto b = run_experiment(spec);
  EXPECT_NE(a.iops, b.iops);
}

}  // namespace
}  // namespace esp::core
