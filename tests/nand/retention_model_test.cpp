// Calibration tests for the behavioral retention model against the
// paper's published Fig. 5 anchor points.
#include "nand/retention_model.h"

#include <gtest/gtest.h>

namespace esp::nand {
namespace {

constexpr std::uint32_t kRated = 1000;

TEST(RetentionModel, EnduranceBerNormalization) {
  RetentionModel model;
  // Npp^0 right after rated cycling IS the endurance BER (= 1.0).
  EXPECT_NEAR(model.subpage_ber(0, 0.0, kRated), 1.0, 1e-9);
}

TEST(RetentionModel, Npp3Is41PercentWorseAtTimeZero) {
  RetentionModel model;
  const double ratio = model.subpage_ber(3, 0.0, kRated) /
                       model.subpage_ber(0, 0.0, kRated);
  EXPECT_NEAR(ratio, 1.41, 0.01);  // paper: "41% higher"
}

TEST(RetentionModel, BerMonotoneInNpp) {
  RetentionModel model;
  for (const double months : {0.0, 1.0, 2.0}) {
    for (std::uint32_t k = 0; k < 3; ++k)
      EXPECT_LT(model.subpage_ber(k, months, kRated),
                model.subpage_ber(k + 1, months, kRated));
  }
}

TEST(RetentionModel, BerMonotoneInTime) {
  RetentionModel model;
  for (std::uint32_t k = 0; k <= 3; ++k)
    EXPECT_LT(model.subpage_ber(k, 1.0, kRated),
              model.subpage_ber(k, 2.0, kRated));
}

TEST(RetentionModel, Npp3MeetsOneMonthFailsTwoMonths) {
  RetentionModel model;
  const double limit = model.params().ecc_limit;
  EXPECT_TRUE(model.correctable(model.subpage_ber(3, 1.0, kRated)));
  EXPECT_FALSE(model.correctable(model.subpage_ber(3, 2.0, kRated)));
  EXPECT_GT(model.subpage_ber(3, 2.0, kRated), limit);
}

TEST(RetentionModel, EveryNppTypeMeetsOneMonth) {
  RetentionModel model;
  for (std::uint32_t k = 0; k <= 3; ++k)
    EXPECT_TRUE(model.correctable(model.subpage_ber(k, 1.0, kRated)))
        << "Npp^" << k;
}

TEST(RetentionModel, HorizonsOrderedByNpp) {
  RetentionModel model;
  for (std::uint32_t k = 0; k < 3; ++k)
    EXPECT_GT(model.subpage_horizon(k, kRated),
              model.subpage_horizon(k + 1, kRated));
}

TEST(RetentionModel, ConservativeHorizonIsOneMonth) {
  RetentionModel model;
  // The paper's FTL-facing assumption: "each subpage can hold its data
  // properly for one month only".
  EXPECT_DOUBLE_EQ(model.conservative_subpage_horizon(),
                   sim_time::from_months(1.0));
  // And it must be conservative: at or below the worst true horizon.
  EXPECT_LE(model.conservative_subpage_horizon(),
            model.subpage_horizon(3, kRated));
}

TEST(RetentionModel, FullPageMeetsJedecYear) {
  RetentionModel model;
  EXPECT_TRUE(model.correctable(model.fullpage_ber(11.9, kRated)));
  EXPECT_FALSE(model.correctable(model.fullpage_ber(12.5, kRated)));
  EXPECT_NEAR(sim_time::to_days(model.fullpage_horizon(kRated)), 360.0, 1.0);
}

TEST(RetentionModel, RetentionSpecFlatThroughRatedEndurance) {
  // JEDEC-style qualification: the retention surface is guaranteed up to
  // rated endurance, so a half-worn block has the same horizon.
  RetentionModel model;
  EXPECT_DOUBLE_EQ(model.subpage_horizon(3, kRated / 2),
                   model.subpage_horizon(3, kRated));
  EXPECT_DOUBLE_EQ(model.subpage_ber(0, 0.0, 0), 1.0);
}

TEST(RetentionModel, OverCyclingShortensHorizons) {
  RetentionModel model;
  EXPECT_GT(model.subpage_horizon(3, kRated),
            model.subpage_horizon(3, 3 * kRated));
  EXPECT_GT(model.fullpage_horizon(kRated),
            model.fullpage_horizon(5 * kRated));
}

TEST(RetentionModel, RejectsBadParams) {
  RetentionModelParams params;
  params.ecc_limit = 0.5;  // below the endurance BER: nothing correctable
  EXPECT_THROW(RetentionModel{params}, std::invalid_argument);
  RetentionModelParams params2;
  params2.rated_pe_cycles = 0;
  EXPECT_THROW(RetentionModel{params2}, std::invalid_argument);
}

TEST(RetentionModel, SubpageHorizonZeroWhenWornOut) {
  RetentionModel model;
  // Extreme wear: the BER exceeds the limit even at t=0.
  EXPECT_EQ(model.subpage_horizon(3, 100 * kRated), 0.0);
}

}  // namespace
}  // namespace esp::nand
