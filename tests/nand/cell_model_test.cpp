// Shape tests for the Monte-Carlo cell model: it must reproduce the
// qualitative physics of Figs. 4 and 5 (exact constants are calibrated by
// the fig5 bench, but the orderings and crossovers are contractual).
#include "nand/cell_model.h"

#include <gtest/gtest.h>

namespace esp::nand {
namespace {

constexpr std::uint32_t kCells = 20000;  // cells per subpage (Monte Carlo)

WordLine make_wl(std::uint32_t subpages = 4, std::uint64_t seed = 1) {
  return WordLine(subpages, kCells, CellModelParams{},
                  util::Xoshiro256(seed));
}

TEST(WordLine, FreshProgramHasLowBer) {
  auto wl = make_wl();
  wl.program_subpage_random(0);
  const double ber = wl.raw_ber(0, 0.0);
  EXPECT_GT(ber, 0.0);
  EXPECT_LT(ber, 5e-3);  // around the endurance BER, well under disaster
}

TEST(WordLine, SecondProgramDestroysFirstSubpage) {
  // Fig. 4: sp1's data is corrupted beyond ECC once sp2 is programmed.
  auto wl = make_wl(2);
  wl.program_subpage_random(0);
  const double before = wl.raw_ber(0, 0.0);
  wl.program_subpage_random(1);
  const double after = wl.raw_ber(0, 0.0);
  EXPECT_GT(after, 10.0 * before);
  EXPECT_GT(after, 1e-2);  // way over any BCH limit
}

TEST(WordLine, SecondSubpageStillReadable) {
  // Fig. 4: sp2, programmed after one inhibited cycle, stores data fine.
  auto wl = make_wl(2);
  wl.program_subpage_random(0);
  wl.program_subpage_random(1);
  EXPECT_LT(wl.raw_ber(1, 0.0), 5e-3);
}

TEST(WordLine, NppTypeRecorded) {
  auto wl = make_wl();
  for (std::uint32_t s = 0; s < 4; ++s) {
    wl.program_subpage_random(s);
    EXPECT_EQ(wl.npp_of(s), s);
  }
}

TEST(WordLine, BerAtTimeZeroGrowsWithNpp) {
  // Fig. 5, "right after 1K P/E cycles" series. Averaged over several
  // word lines to tame Monte-Carlo noise.
  double ber[4] = {0, 0, 0, 0};
  const int trials = 5;
  for (int trial = 0; trial < trials; ++trial) {
    auto wl = make_wl(4, 100 + trial);
    for (std::uint32_t s = 0; s < 4; ++s) {
      wl.program_subpage_random(s);
      ber[s] += wl.raw_ber(s, 0.0) / trials;
    }
  }
  EXPECT_LT(ber[0], ber[3]);
  const double ratio = ber[3] / ber[0];
  EXPECT_GT(ratio, 1.1);
  EXPECT_LT(ratio, 2.2);  // paper's measured 1.41 sits inside
}

TEST(WordLine, RetentionGrowsBer) {
  auto wl = make_wl();
  wl.program_subpage_random(0);
  const double t0 = wl.raw_ber(0, 0.0);
  const double t1 = wl.raw_ber(0, 1.0);
  const double t2 = wl.raw_ber(0, 2.0);
  EXPECT_GT(t1, t0);
  EXPECT_GT(t2, t1);
}

TEST(WordLine, Npp3FailsBetweenOneAndTwoMonths) {
  // Paper: Npp^3 satisfies 1 month, fails 2 months. ECC limit for our
  // default spec: 40 bits / 8192 bits ~= 4.88e-3 raw BER.
  const double ecc_limit = 40.0 / 8192.0;
  double ber1 = 0.0, ber2 = 0.0;
  const int trials = 5;
  for (int trial = 0; trial < trials; ++trial) {
    auto wl = make_wl(4, 200 + trial);
    for (std::uint32_t s = 0; s < 4; ++s) wl.program_subpage_random(s);
    ber1 += wl.raw_ber(3, 1.0) / trials;
    ber2 += wl.raw_ber(3, 2.0) / trials;
  }
  EXPECT_LT(ber1, ecc_limit) << "Npp^3 must survive 1 month";
  EXPECT_GT(ber2, ecc_limit) << "Npp^3 must fail at 2 months";
}

TEST(WordLine, WearWorsensRetention) {
  auto fresh = make_wl(1, 7);
  fresh.set_pe_cycles(1000);
  fresh.program_subpage_random(0);
  auto worn = make_wl(1, 7);
  worn.set_pe_cycles(3000);
  worn.program_subpage_random(0);
  EXPECT_GT(worn.raw_ber(0, 2.0), fresh.raw_ber(0, 2.0));
}

TEST(WordLine, EraseResetsState) {
  auto wl = make_wl();
  wl.program_subpage_random(0);
  wl.erase();
  EXPECT_EQ(wl.slots_programmed(), 0u);
  EXPECT_NO_THROW(wl.program_subpage_random(0));
}

TEST(WordLine, SequentialProgrammingEnforced) {
  auto wl = make_wl();
  EXPECT_THROW(wl.program_subpage_random(1), std::logic_error);
  wl.program_subpage_random(0);
  EXPECT_THROW(wl.program_subpage_random(0), std::logic_error);
  EXPECT_THROW(wl.program_subpage_random(2), std::logic_error);
}

TEST(WordLine, RejectsBadGeometry) {
  EXPECT_THROW(WordLine(0, 10, CellModelParams{}, util::Xoshiro256(1)),
               std::invalid_argument);
  CellModelParams bad;
  bad.levels = 6;  // not a power of two
  EXPECT_THROW(WordLine(2, 10, bad, util::Xoshiro256(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace esp::nand
