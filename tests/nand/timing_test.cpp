#include "nand/timing.h"

#include <gtest/gtest.h>

namespace esp::nand {
namespace {

TEST(TimingSpec, PaperLatencies) {
  TimingSpec spec;
  EXPECT_DOUBLE_EQ(spec.prog_full_us, 1600.0);  // paper Sec. 5
  EXPECT_DOUBLE_EQ(spec.prog_sub_us, 1300.0);   // paper Sec. 5
  EXPECT_LT(spec.prog_sub_us, spec.prog_full_us);
}

TEST(TimingSpec, BaselineSubpageReadEqualsFullRead) {
  // Sec. 7: fast subpage reads are future work; the default models the
  // paper's baseline hardware.
  TimingSpec spec;
  EXPECT_DOUBLE_EQ(spec.read_sub_us, spec.read_full_us);
}

TEST(TimingSpec, TransferScalesWithBytes) {
  TimingSpec spec;
  const SimTime t4k = spec.transfer_us(4 * 1024);
  const SimTime t16k = spec.transfer_us(16 * 1024);
  EXPECT_GT(t16k, t4k);
  // Linear beyond the fixed command overhead.
  EXPECT_NEAR(t16k - spec.cmd_overhead_us,
              4.0 * (t4k - spec.cmd_overhead_us), 1e-9);
}

TEST(TimingSpec, TransferIncludesCommandOverhead) {
  TimingSpec spec;
  EXPECT_GE(spec.transfer_us(0), spec.cmd_overhead_us);
}

TEST(TimingSpec, SixteenKbAtEightHundredMbPerSec) {
  TimingSpec spec;
  // 16 KiB at 1.25 us/KiB = 20 us + overhead.
  EXPECT_NEAR(spec.transfer_us(16 * 1024), spec.cmd_overhead_us + 20.0,
              1e-9);
}

}  // namespace
}  // namespace esp::nand
