// Multi-word-line cell model tests: adjacent-WL coupling exists, is
// bounded for conventional sequential programming, and compounds under
// ESP's extra program pulses.
#include "nand/block_cells.h"

#include <gtest/gtest.h>

namespace esp::nand {
namespace {

constexpr std::uint32_t kCells = 8192;

BlockCells make_block(std::uint32_t wls = 8, std::uint64_t seed = 3) {
  return BlockCells(wls, 4, kCells, BlockCellParams{},
                    util::Xoshiro256(seed));
}

TEST(BlockCells, SequentialFullProgramsStayCorrectable) {
  // The conventional usage every shipping device must survive: program all
  // word lines in order; every page must stay well under the ECC limit.
  auto block = make_block();
  for (std::uint32_t wl = 0; wl < block.wordlines(); ++wl)
    block.program_full_random(wl);
  const double ecc_limit = 40.0 / 8192.0;
  for (std::uint32_t wl = 0; wl < block.wordlines(); ++wl)
    EXPECT_LT(block.raw_ber(wl, 3, 0.0), ecc_limit) << "WL " << wl;
}

TEST(BlockCells, NeighborCouplingMeasurable) {
  // WL 1's program must leave a trace on WL 0 -- compare against an
  // identical block where WL 1 is never programmed.
  auto coupled = make_block(4, 11);
  auto control = make_block(4, 11);
  coupled.program_full_random(0);
  control.program_full_random(0);
  coupled.program_full_random(1);  // only difference
  // One coupling event is second-order in BER (it fixes low outliers while
  // creating high ones), so assert the first-order physical signature: the
  // victim distribution shifted UP by roughly the coupling mean.
  const double delta =
      coupled.mean_vth(0, 3) - control.mean_vth(0, 3);
  EXPECT_GT(delta, 0.004);
  EXPECT_LT(delta, 0.02);
}

TEST(BlockCells, EspSubpageProgramsTaxNeighborsMore) {
  // Four subpage programs on WL 1 = four coupling events for WL 0, versus
  // one for a single full-page program.
  auto esp = make_block(3, 21);
  auto conventional = make_block(3, 21);
  esp.program_full_random(0);
  conventional.program_full_random(0);
  for (int i = 0; i < 4; ++i) esp.program_subpage_random(1);
  conventional.program_full_random(1);
  double esp_ber = 0.0, conv_ber = 0.0;
  for (int i = 0; i < 20; ++i) {
    esp_ber += esp.raw_ber(0, 3, 0.0) / 20;
    conv_ber += conventional.raw_ber(0, 3, 0.0) / 20;
  }
  EXPECT_GT(esp_ber, conv_ber);
  // ...but still within the ECC budget: the neighbor tax is part of the
  // reduced-retention story, not a data-destroying effect.
  EXPECT_LT(esp_ber, 40.0 / 8192.0);
}

TEST(BlockCells, EdgeWordLinesHaveOneNeighborOnly) {
  auto block = make_block(2, 31);
  EXPECT_NO_THROW(block.program_full_random(0));
  EXPECT_NO_THROW(block.program_full_random(1));
  EXPECT_EQ(block.slots_programmed(0), 4u);
}

TEST(BlockCells, RejectsEmptyBlock) {
  EXPECT_THROW(BlockCells(0, 4, 16, BlockCellParams{}, util::Xoshiro256(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace esp::nand
