#include "nand/geometry.h"

#include <gtest/gtest.h>

#include "nand/address.h"

namespace esp::nand {
namespace {

TEST(Geometry, PaperDefaultIs16GiB) {
  Geometry geo;  // 8ch x 4chip x 128blk x 256pg x 16KB
  geo.validate();
  EXPECT_EQ(geo.total_chips(), 32u);
  EXPECT_EQ(geo.capacity_bytes(), 16ull * 1024 * 1024 * 1024);
  EXPECT_EQ(geo.subpage_bytes(), 4096u);
  EXPECT_EQ(geo.total_subpages(), geo.total_pages() * 4);
}

TEST(Geometry, ValidateRejectsZeroCounts) {
  Geometry geo;
  geo.channels = 0;
  EXPECT_THROW(geo.validate(), std::invalid_argument);
}

TEST(Geometry, ValidateRejectsIndivisiblePage) {
  Geometry geo;
  geo.page_bytes = 1000;
  geo.subpages_per_page = 3;
  EXPECT_THROW(geo.validate(), std::invalid_argument);
}

TEST(Geometry, ValidateRejectsTooManySubpages) {
  Geometry geo;
  geo.subpages_per_page = kMaxSubpagesPerPage + 1;
  geo.page_bytes = 16 * 1024 * 2;  // keep divisible
  EXPECT_THROW(geo.validate(), std::invalid_argument);
}

TEST(Geometry, ChannelOfChip) {
  Geometry geo;
  geo.channels = 4;
  geo.chips_per_channel = 2;
  EXPECT_EQ(geo.channel_of_chip(0), 0u);
  EXPECT_EQ(geo.channel_of_chip(1), 0u);
  EXPECT_EQ(geo.channel_of_chip(2), 1u);
  EXPECT_EQ(geo.channel_of_chip(7), 3u);
}

TEST(Geometry, DescribeMentionsCapacity) {
  Geometry geo;
  EXPECT_NE(geo.describe().find("16.0 GiB"), std::string::npos);
}

TEST(AddressCodec, PageRoundTrip) {
  Geometry geo;
  AddressCodec codec(geo);
  for (const PageAddr addr : {PageAddr{0, 0, 0}, PageAddr{3, 17, 200},
                              PageAddr{31, 127, 255}}) {
    const auto lin = codec.encode_page(addr);
    EXPECT_EQ(codec.decode_page(lin), addr);
  }
}

TEST(AddressCodec, SubpageRoundTrip) {
  Geometry geo;
  AddressCodec codec(geo);
  for (std::uint32_t slot = 0; slot < geo.subpages_per_page; ++slot) {
    const SubpageAddr addr{PageAddr{5, 42, 99}, slot};
    EXPECT_EQ(codec.decode_subpage(codec.encode_subpage(addr)), addr);
  }
}

TEST(AddressCodec, SubpagesOfPageAreAdjacent) {
  Geometry geo;
  AddressCodec codec(geo);
  const PageAddr page{1, 2, 3};
  const auto first = codec.encode_subpage(SubpageAddr{page, 0});
  for (std::uint32_t slot = 1; slot < geo.subpages_per_page; ++slot)
    EXPECT_EQ(codec.encode_subpage(SubpageAddr{page, slot}), first + slot);
}

TEST(AddressCodec, LinearAddressesAreDense) {
  Geometry geo;
  geo.channels = 1;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 3;
  geo.pages_per_block = 4;
  AddressCodec codec(geo);
  std::uint64_t expect = 0;
  for (std::uint32_t chip = 0; chip < 2; ++chip)
    for (std::uint32_t blk = 0; blk < 3; ++blk)
      for (std::uint32_t page = 0; page < 4; ++page)
        EXPECT_EQ(codec.encode_page(PageAddr{chip, blk, page}), expect++);
}

}  // namespace
}  // namespace esp::nand
