// Device-level tests: retention verdicts, timing/parallelism, counters,
// fault injection.
#include "nand/device.h"

#include <gtest/gtest.h>

#include <array>

namespace esp::nand {
namespace {

Geometry tiny_geo() {
  Geometry geo;
  geo.channels = 2;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 4;
  geo.pages_per_block = 8;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

TEST(NandDevice, ReadBackAfterFullProgram) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{11, 22, 33, 44};
  dev.program_full(PageAddr{0, 0, 0}, tokens, 0.0);
  const auto ack = dev.read_page(PageAddr{0, 0, 0}, 10.0);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(ack.status[s], ReadStatus::kOk);
    EXPECT_EQ(ack.token[s], tokens[s]);
  }
}

TEST(NandDevice, SubpageReadVerdicts) {
  NandDevice dev(tiny_geo());
  const PageAddr page{1, 1, 3};
  dev.program_subpage(SubpageAddr{page, 0}, 7, 0.0);
  dev.program_subpage(SubpageAddr{page, 1}, 8, 1.0);

  EXPECT_EQ(dev.read_subpage(SubpageAddr{page, 0}, 2.0).status,
            ReadStatus::kCorrupted);
  EXPECT_EQ(dev.read_subpage(SubpageAddr{page, 1}, 2.0).status,
            ReadStatus::kOk);
  EXPECT_EQ(dev.read_subpage(SubpageAddr{page, 2}, 2.0).status,
            ReadStatus::kEmpty);
}

TEST(NandDevice, EspDataExpiresAfterHorizon) {
  NandDevice dev(tiny_geo());
  const PageAddr page{0, 0, 0};
  // Program all 4 slots: the last is Npp^3 with the shortest horizon.
  for (std::uint32_t s = 0; s < 4; ++s)
    dev.program_subpage(SubpageAddr{page, s}, s, 0.0);

  const SimTime month = sim_time::kMonth;
  EXPECT_EQ(dev.read_subpage(SubpageAddr{page, 3}, 0.9 * month).status,
            ReadStatus::kOk)
      << "Npp^3 must satisfy the 1-month requirement (Fig. 5)";
  EXPECT_EQ(dev.read_subpage(SubpageAddr{page, 3}, 2.0 * month).status,
            ReadStatus::kUncorrectable)
      << "Npp^3 must fail the 2-month requirement (Fig. 5)";
}

TEST(NandDevice, LowerNppSurvivesLonger) {
  NandDevice dev(tiny_geo());
  dev.program_subpage(SubpageAddr{PageAddr{0, 0, 0}, 0}, 1, 0.0);
  // An Npp^0 ESP subpage lasts far beyond 2 months.
  EXPECT_EQ(dev.read_subpage(SubpageAddr{PageAddr{0, 0, 0}, 0},
                             4 * sim_time::kMonth)
                .status,
            ReadStatus::kOk);
}

TEST(NandDevice, FullPageMeetsOneYear) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  dev.program_full(PageAddr{0, 0, 0}, tokens, 0.0);
  const auto ack =
      dev.read_page(PageAddr{0, 0, 0}, 11.5 * sim_time::kMonth);
  EXPECT_EQ(ack.status[0], ReadStatus::kOk);
  const auto expired =
      dev.read_page(PageAddr{0, 0, 0}, 14.0 * sim_time::kMonth);
  EXPECT_EQ(expired.status[0], ReadStatus::kUncorrectable);
}

TEST(NandDevice, TimingFullProgramLatency) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  const auto ack = dev.program_full(PageAddr{0, 0, 0}, tokens, 1000.0);
  const auto& t = dev.timing();
  EXPECT_DOUBLE_EQ(ack.done,
                   1000.0 + t.transfer_us(16 * 1024) + t.prog_full_us);
}

TEST(NandDevice, SubpageProgramFasterThanFull) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  const auto full = dev.program_full(PageAddr{0, 0, 0}, tokens, 0.0);
  const auto sub =
      dev.program_subpage(SubpageAddr{PageAddr{1, 0, 0}, 0}, 9, 0.0);
  // Paper Sec. 5: 1300 us vs 1600 us, plus smaller transfer.
  EXPECT_LT(sub.done, full.done);
}

TEST(NandDevice, SameChipOperationsSerialize) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  const auto first = dev.program_full(PageAddr{0, 0, 0}, tokens, 0.0);
  const auto second = dev.program_full(PageAddr{0, 0, 1}, tokens, 0.0);
  EXPECT_GE(second.done, first.done + dev.timing().prog_full_us);
}

TEST(NandDevice, DifferentChannelsOverlap) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  // Chips 0 and 2 are on different channels in this geometry.
  const auto a = dev.program_full(PageAddr{0, 0, 0}, tokens, 0.0);
  const auto b = dev.program_full(PageAddr{2, 0, 0}, tokens, 0.0);
  EXPECT_NEAR(a.done, b.done, 1e-9);
}

TEST(NandDevice, SameChannelTransfersContend) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  // Chips 0 and 1 share channel 0: second transfer waits for the first.
  const auto a = dev.program_full(PageAddr{0, 0, 0}, tokens, 0.0);
  const auto b = dev.program_full(PageAddr{1, 0, 0}, tokens, 0.0);
  EXPECT_GT(b.done, a.done - dev.timing().prog_full_us + 1.0);
  EXPECT_LT(b.done, a.done + dev.timing().prog_full_us);
}

TEST(NandDevice, CountersTrackOperations) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  dev.program_full(PageAddr{0, 0, 0}, tokens, 0.0);
  dev.program_subpage(SubpageAddr{PageAddr{0, 1, 0}, 0}, 5, 0.0);
  dev.read_page(PageAddr{0, 0, 0}, 1.0);
  dev.read_subpage(SubpageAddr{PageAddr{0, 1, 0}, 0}, 1.0);
  dev.erase_block(0, 0, 2.0);
  const auto& c = dev.counters();
  EXPECT_EQ(c.progs_full, 1u);
  EXPECT_EQ(c.progs_sub, 1u);
  EXPECT_EQ(c.reads_full, 1u);
  EXPECT_EQ(c.reads_sub, 1u);
  EXPECT_EQ(c.erases, 1u);
}

TEST(NandDevice, EraseRestoresProgrammability) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  dev.program_full(PageAddr{0, 0, 0}, tokens, 0.0);
  dev.erase_block(0, 0, 1.0);
  EXPECT_EQ(dev.block(0, 0).pe_cycles(), 1u);
  EXPECT_NO_THROW(dev.program_full(PageAddr{0, 0, 0}, tokens, 2.0));
}

TEST(NandDevice, FaultInjectionProducesUncorrectableReads) {
  NandDevice dev(tiny_geo());
  dev.set_read_fault_injection(1.0, 99);
  dev.program_subpage(SubpageAddr{PageAddr{0, 0, 0}, 0}, 5, 0.0);
  EXPECT_EQ(dev.read_subpage(SubpageAddr{PageAddr{0, 0, 0}, 0}, 1.0).status,
            ReadStatus::kUncorrectable);
  dev.set_read_fault_injection(0.0);
  EXPECT_EQ(dev.read_subpage(SubpageAddr{PageAddr{0, 0, 0}, 0}, 1.0).status,
            ReadStatus::kOk);
}

TEST(NandDevice, CopybackMovesDataOnChip) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{9, 8, 7, 6};
  dev.program_full(PageAddr{1, 0, 0}, tokens, 0.0);
  dev.copyback(PageAddr{1, 0, 0}, PageAddr{1, 1, 0}, 10.0);
  const auto ack = dev.read_page(PageAddr{1, 1, 0}, 20.0);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(ack.token[s], tokens[s]);
    EXPECT_EQ(ack.status[s], ReadStatus::kOk);
  }
}

TEST(NandDevice, CopybackRejectsCrossChip) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  dev.program_full(PageAddr{0, 0, 0}, tokens, 0.0);
  EXPECT_THROW(dev.copyback(PageAddr{0, 0, 0}, PageAddr{1, 0, 0}, 1.0),
               std::logic_error);
}

TEST(NandDevice, CopybackSkipsChannelTransfers) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  dev.program_full(PageAddr{0, 0, 0}, tokens, 0.0);
  const SimTime start = 100000.0;
  const auto cb = dev.copyback(PageAddr{0, 0, 0}, PageAddr{0, 1, 0}, start);
  const auto& t = dev.timing();
  // Sense + program + command overhead, but no 16-KB transfers.
  EXPECT_NEAR(cb.done - start,
              t.read_full_us + t.prog_full_us + t.cmd_overhead_us, 1e-9);
}

TEST(NandDevice, CopybackRequiresErasedDestination) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  dev.program_full(PageAddr{0, 0, 0}, tokens, 0.0);
  dev.program_full(PageAddr{0, 1, 0}, tokens, 0.0);
  EXPECT_THROW(dev.copyback(PageAddr{0, 0, 0}, PageAddr{0, 1, 0}, 1.0),
               std::logic_error);
}

TEST(NandDevice, OutOfRangeThrows) {
  NandDevice dev(tiny_geo());
  const std::array<std::uint64_t, 4> tokens{1, 2, 3, 4};
  EXPECT_THROW(dev.program_full(PageAddr{99, 0, 0}, tokens, 0.0),
               std::out_of_range);
  EXPECT_THROW(dev.erase_block(0, 99, 0.0), std::out_of_range);
}

}  // namespace
}  // namespace esp::nand
