// Probabilistic reliability mode: reads near the retention horizon fail
// stochastically with the binomial-tail probability implied by the
// RetentionModel BER and the ECC spec.
#include <gtest/gtest.h>

#include "nand/device.h"

namespace esp::nand {
namespace {

Geometry tiny_geo() {
  Geometry geo;
  geo.channels = 1;
  geo.chips_per_channel = 1;
  geo.blocks_per_chip = 4;
  geo.pages_per_block = 64;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

/// Programs `n` Npp^3 subpages and counts uncorrectable reads at `months`.
int failures_at(double months, int n = 200) {
  NandDevice dev(tiny_geo());
  dev.set_reliability_mode(NandDevice::ReliabilityMode::kProbabilistic, 42);
  int failures = 0;
  int programmed = 0;
  for (std::uint32_t blk = 0; blk < 4 && programmed < n; ++blk) {
    for (std::uint32_t page = 0; page < 64 && programmed < n; ++page) {
      for (std::uint32_t s = 0; s < 4; ++s)
        dev.program_subpage(SubpageAddr{PageAddr{0, blk, page}, s},
                            s + 1, 0.0);
      ++programmed;
      const auto ack = dev.read_subpage(
          SubpageAddr{PageAddr{0, blk, page}, 3}, months * sim_time::kMonth);
      failures += (ack.status == ReadStatus::kUncorrectable);
    }
  }
  return failures;
}

TEST(ReliabilityMode, FreshDataAlmostNeverFails) {
  EXPECT_LE(failures_at(0.0), 2);
}

TEST(ReliabilityMode, WellInsideHorizonFailsOnlySometimes) {
  // Npp^3 horizon ~1.375 months. The behavioral model equates the ECC
  // limit with the MEAN error count, so even at 0.5 months the binomial
  // tail leaves a visible (but minority) failure rate -- about 10% here.
  const int failures = failures_at(0.5);
  EXPECT_LE(failures, 60);
  EXPECT_LT(failures, failures_at(1.4));
}

TEST(ReliabilityMode, FarBeyondHorizonAlmostAlwaysFails) {
  EXPECT_GE(failures_at(4.0), 190);
}

TEST(ReliabilityMode, FailureRateMonotoneInAge) {
  const int f0 = failures_at(0.5);
  const int f1 = failures_at(1.4);
  const int f2 = failures_at(2.5);
  EXPECT_LE(f0, f1 + 5);
  EXPECT_LE(f1, f2 + 5);
  EXPECT_LT(f0, f2);
}

TEST(ReliabilityMode, DeterministicModeUnaffectedByRng) {
  // Same device twice in deterministic mode: identical verdicts.
  for (int trial = 0; trial < 2; ++trial) {
    NandDevice dev(tiny_geo());
    for (std::uint32_t s = 0; s < 4; ++s)
      dev.program_subpage(SubpageAddr{PageAddr{0, 0, 0}, s}, s, 0.0);
    EXPECT_EQ(dev.read_subpage(SubpageAddr{PageAddr{0, 0, 0}, 3},
                               1.0 * sim_time::kMonth)
                  .status,
              ReadStatus::kOk);
    EXPECT_EQ(dev.read_subpage(SubpageAddr{PageAddr{0, 0, 0}, 3},
                               2.0 * sim_time::kMonth)
                  .status,
              ReadStatus::kUncorrectable);
  }
}

TEST(ReliabilityMode, SeededStreamsReproduce) {
  const int a = failures_at(1.4);
  const int b = failures_at(1.4);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace esp::nand
