#include "nand/cell_array.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel_runner.h"
#include "util/rng.h"

namespace esp::nand {
namespace {

TEST(CellArray, RejectsEmptyGeometryAndBadLevelCounts) {
  CellModelParams p;
  EXPECT_THROW(CellArray(0, 4, 64, p, util::Xoshiro256(1)),
               std::invalid_argument);
  EXPECT_THROW(CellArray(1, 0, 64, p, util::Xoshiro256(1)),
               std::invalid_argument);
  EXPECT_THROW(CellArray(1, 4, 0, p, util::Xoshiro256(1)),
               std::invalid_argument);
  p.levels = 6;  // not a power of two
  EXPECT_THROW(CellArray(1, 4, 64, p, util::Xoshiro256(1)),
               std::invalid_argument);
}

TEST(CellArray, SlotSequencingAndRangeChecks) {
  CellArray cells(2, 4, 64, CellModelParams{}, util::Xoshiro256(2));
  EXPECT_THROW(cells.program_subpage_random(2, 0), std::out_of_range);
  EXPECT_THROW(cells.program_subpage_random(0, 4), std::out_of_range);
  EXPECT_THROW(cells.program_subpage_random(0, 1), std::logic_error);
  cells.program_subpage_random(0, 0);
  EXPECT_EQ(cells.slots_programmed(0), 1u);
  EXPECT_EQ(cells.slots_programmed(1), 0u);  // word lines are independent
  EXPECT_THROW(cells.program_subpage_random(0, 0), std::logic_error);
}

// Programmed-level placement: each level's cells land in a Gaussian at
// mean (level-1)*step with sigma = pgm_sigma at rated wear (first program
// on the word line, so no inhibited-program stress widening). Fixed
// references, not a scalar-model diff: these are the paper's nominal
// physics constants.
TEST(CellArray, ProgrammedDistributionMomentsPerLevel) {
  const CellModelParams p;  // step 0.8, pgm_sigma 0.145
  constexpr std::uint32_t kCells = 65536;
  // Cells are not individually addressable through the public API (by
  // design), so measure each level through mean_vth on a single-level
  // program of a fresh word line.
  for (std::uint32_t level = 1; level < 8; ++level) {
    CellArray one(1, 1, kCells, p, util::Xoshiro256(100 + level));
    std::vector<std::uint8_t> uniform(kCells,
                                      static_cast<std::uint8_t>(level));
    one.program_subpage(0, 0, uniform);
    const double expected = static_cast<double>(level - 1) * p.level_step;
    // MC noise on the mean: pgm_sigma/sqrt(n) ~ 6e-4; allow 5x.
    EXPECT_NEAR(one.mean_vth(0, 0), expected, 3e-3) << "level " << level;
  }
}

TEST(CellArray, ErasedDistributionMoments) {
  const CellModelParams p;  // erased_mean -3.0, erased_sigma 0.45
  constexpr std::uint32_t kCells = 65536;
  CellArray cells(1, 1, kCells, p, util::Xoshiro256(4));
  EXPECT_NEAR(cells.mean_vth(0, 0), p.erased_mean, 0.01);
}

TEST(CellArray, TargetZeroCellsKeepErasedVth) {
  // SBPI: cells whose target is the erased level stay inhibited, so a
  // subpage programmed all-zero keeps its erased distribution.
  const CellModelParams p;
  constexpr std::uint32_t kCells = 32768;
  CellArray cells(1, 1, kCells, p, util::Xoshiro256(5));
  const double before = cells.mean_vth(0, 0);
  std::vector<std::uint8_t> zeros(kCells, 0);
  cells.program_subpage(0, 0, zeros);
  EXPECT_DOUBLE_EQ(cells.mean_vth(0, 0), before);
  // Erased cells sit 3.3 sigma below the first read boundary, so readback
  // errors exist but are rare (~4e-4 per cell -> ~1.4e-4 raw BER).
  EXPECT_LT(cells.raw_ber(0, 0, 0.0), 1e-3);
}

TEST(CellArray, FreshProgramReadsBackClean) {
  CellArray cells(1, 1, 8192, CellModelParams{}, util::Xoshiro256(6));
  cells.program_subpage_random(0, 0);
  // pgm_sigma 0.145 vs a 0.4 margin to the nearest boundary: immediate
  // readback misdraws are ~P(|Z| > 2.76) per interior-level cell, which
  // works out to ~1.6e-3 raw BER; bound well above the MC noise band.
  EXPECT_LT(cells.raw_ber(0, 0, 0.0), 4e-3);
}

TEST(CellArray, DisturbAllShiftsEveryVthUp) {
  CellArray cells(2, 2, 4096, CellModelParams{}, util::Xoshiro256(7));
  const double before0 = cells.mean_vth(0, 0);
  const double before1 = cells.mean_vth(1, 0);
  cells.disturb_all(0, 0.2, 0.05);
  EXPECT_NEAR(cells.mean_vth(0, 0) - before0, 0.2, 0.01);
  EXPECT_DOUBLE_EQ(cells.mean_vth(1, 0), before1);  // other WL untouched
}

TEST(CellArray, DeterministicAcrossInstances) {
  const auto run = [] {
    CellArray cells(3, 4, 2048, CellModelParams{}, util::Xoshiro256(8));
    std::vector<std::uint64_t> errs;
    for (std::uint32_t wl = 0; wl < 3; ++wl)
      for (std::uint32_t s = 0; s < 4; ++s)
        cells.program_subpage_random(wl, s);
    for (std::uint32_t wl = 0; wl < 3; ++wl)
      for (std::uint32_t s = 0; s < 4; ++s)
        errs.push_back(cells.count_bit_errors(wl, s, 1.0));
    return errs;
  };
  EXPECT_EQ(run(), run());
}

TEST(CellArray, WordLineTrajectoriesIndependentOfSiblings) {
  // A word line's trajectory depends only on its own seed and operation
  // sequence -- the property the parallel fan-out relies on. Program WL 1
  // identically in a 4-WL array and a 2-WL array built from the same
  // parent seed: WL 1 draws from its own forked stream, so touching other
  // word lines must not perturb it.
  CellModelParams p;
  CellArray wide(4, 2, 1024, p, util::Xoshiro256(9));
  CellArray narrow(2, 2, 1024, p, util::Xoshiro256(9));
  wide.program_subpage_random(3, 0);  // extra activity on another WL
  wide.program_subpage_random(1, 0);
  narrow.program_subpage_random(1, 0);
  EXPECT_DOUBLE_EQ(wide.mean_vth(1, 0), narrow.mean_vth(1, 0));
}

// The paper's Fig. 5 invariant at characterization scale: retention BER is
// monotonically ordered by Npp (the number of inhibited program operations
// a subpage absorbed before being programmed). The Fig. 5 protocol isolates
// Npp from program disturb: the Npp^k population programs slots 0..k and
// measures slot k -- the LAST-programmed subpage, which absorbed k
// inhibited programs but no subsequent disturbs. >= 1,000 word lines per
// Npp class, fanned out over the parallel runner with stable per-task
// seeds and input-order aggregation.
TEST(CellArrayPopulation, NppOrderingMonotoneAtThousandWordLines) {
  constexpr std::uint32_t kWordLines = 1024;  // per Npp class
  constexpr std::uint32_t kSubpages = 4;
  constexpr std::uint32_t kCells = 3072;
  constexpr double kMonths = 1.0;

  std::vector<std::uint64_t> errors(kSubpages * kWordLines);
  core::run_tasks(2, errors.size(), [&](std::size_t task) {
    const auto k = static_cast<std::uint32_t>(task / kWordLines);
    const auto i = static_cast<std::uint32_t>(task % kWordLines);
    const auto seed = core::stable_cell_seed(
        "cell_array_test/npp" + std::to_string(k) + "/wl" + std::to_string(i),
        77);
    CellArray cells(1, kSubpages, kCells, CellModelParams{},
                    util::Xoshiro256(seed));
    for (std::uint32_t s = 0; s <= k; ++s) cells.program_subpage_random(0, s);
    errors[task] = cells.count_bit_errors(0, k, kMonths);
  });

  std::vector<std::uint64_t> total(kSubpages, 0);
  for (std::uint32_t k = 0; k < kSubpages; ++k)
    for (std::uint32_t i = 0; i < kWordLines; ++i)
      total[k] += errors[k * kWordLines + i];

  for (std::uint32_t k = 0; k + 1 < kSubpages; ++k)
    EXPECT_LT(total[k], total[k + 1])
        << "retention BER must grow with Npp (" << k << " -> " << k + 1 << ")";
  // And the effect must be material, not a tie-break: the paper reports
  // ~+41% for Npp=3 vs Npp=0 right after 1K P/E; after a month of
  // retention the gap stays well above 20%.
  EXPECT_GT(static_cast<double>(total[kSubpages - 1]),
            1.2 * static_cast<double>(total[0]));
}

}  // namespace
}  // namespace esp::nand
