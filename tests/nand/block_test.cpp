// Unit tests for the ESP block state machine -- the physics contract of
// Sec. 3: sequential slot programming, destroy-previous, Npp tracking.
#include "nand/block.h"

#include <gtest/gtest.h>

#include <array>

namespace esp::nand {
namespace {

constexpr std::uint32_t kPages = 8;
constexpr std::uint32_t kSubs = 4;

Block make_block() { return Block(kPages, kSubs); }

TEST(Block, StartsErased) {
  Block blk = make_block();
  EXPECT_TRUE(blk.is_erased());
  EXPECT_EQ(blk.pe_cycles(), 0u);
  EXPECT_EQ(blk.page_mode(0), PageMode::kErased);
  EXPECT_EQ(blk.slot(0, 0).state, SlotState::kEmpty);
}

TEST(Block, FullPageProgramStoresAllSlots) {
  Block blk = make_block();
  const std::array<std::uint64_t, kSubs> tokens{10, 20, 30, 40};
  blk.program_full(2, tokens, 100.0);
  EXPECT_EQ(blk.page_mode(2), PageMode::kFull);
  EXPECT_EQ(blk.slots_programmed(2), kSubs);
  for (std::uint32_t s = 0; s < kSubs; ++s) {
    const auto view = blk.slot(2, s);
    EXPECT_EQ(view.state, SlotState::kStored);
    EXPECT_EQ(view.token, tokens[s]);
    EXPECT_EQ(view.npp, 0u);
    EXPECT_EQ(view.written_at, 100.0);
  }
}

TEST(Block, FullPageProgramTwiceThrows) {
  Block blk = make_block();
  const std::array<std::uint64_t, kSubs> tokens{1, 2, 3, 4};
  blk.program_full(0, tokens, 0.0);
  EXPECT_THROW(blk.program_full(0, tokens, 1.0), std::logic_error);
}

TEST(Block, FullProgramRejectsWrongTokenCount) {
  Block blk = make_block();
  const std::array<std::uint64_t, 2> wrong{1, 2};
  EXPECT_THROW(blk.program_full(0, wrong, 0.0), std::logic_error);
}

TEST(Block, SubpageProgramSequence) {
  Block blk = make_block();
  blk.program_subpage(0, 0, 111, 1.0);
  EXPECT_EQ(blk.page_mode(0), PageMode::kEsp);
  EXPECT_EQ(blk.slots_programmed(0), 1u);
  EXPECT_EQ(blk.slot(0, 0).state, SlotState::kStored);
  EXPECT_EQ(blk.slot(0, 0).npp, 0u);
}

TEST(Block, SubpageOutOfOrderThrows) {
  Block blk = make_block();
  EXPECT_THROW(blk.program_subpage(0, 1, 5, 0.0), std::logic_error);
  blk.program_subpage(0, 0, 5, 0.0);
  EXPECT_THROW(blk.program_subpage(0, 2, 5, 0.0), std::logic_error);
  EXPECT_THROW(blk.program_subpage(0, 0, 5, 0.0), std::logic_error);
}

TEST(Block, SubpageProgramDestroysEarlierSlots) {
  // Fig. 4: programming sp2 corrupts sp1's stored data.
  Block blk = make_block();
  blk.program_subpage(0, 0, 100, 1.0);
  blk.program_subpage(0, 1, 200, 2.0);
  EXPECT_EQ(blk.slot(0, 0).state, SlotState::kCorrupted);
  EXPECT_EQ(blk.slot(0, 1).state, SlotState::kStored);
  EXPECT_EQ(blk.slot(0, 1).token, 200u);
}

TEST(Block, NppTypeTracksPriorPrograms) {
  // The k-th programmed slot is an Npp^k-type subpage (Sec. 3.3).
  Block blk = make_block();
  for (std::uint32_t s = 0; s < kSubs; ++s)
    blk.program_subpage(0, s, s, static_cast<SimTime>(s));
  for (std::uint32_t s = 0; s < kSubs; ++s)
    EXPECT_EQ(blk.slot(0, s).npp, s);
  // Only the last slot survives.
  for (std::uint32_t s = 0; s + 1 < kSubs; ++s)
    EXPECT_EQ(blk.slot(0, s).state, SlotState::kCorrupted);
  EXPECT_EQ(blk.slot(0, kSubs - 1).state, SlotState::kStored);
}

TEST(Block, SubpageProgramLeavesOtherPagesAlone) {
  Block blk = make_block();
  blk.program_subpage(0, 0, 1, 0.0);
  blk.program_subpage(1, 0, 2, 0.0);
  blk.program_subpage(0, 1, 3, 0.0);
  // Page 1's slot 0 must be untouched by page 0's second program.
  EXPECT_EQ(blk.slot(1, 0).state, SlotState::kStored);
  EXPECT_EQ(blk.slot(1, 0).token, 2u);
}

TEST(Block, MixedModesRejected) {
  Block blk = make_block();
  const std::array<std::uint64_t, kSubs> tokens{1, 2, 3, 4};
  blk.program_full(0, tokens, 0.0);
  EXPECT_THROW(blk.program_subpage(0, 0, 9, 1.0), std::logic_error);
  blk.program_subpage(1, 0, 9, 1.0);
  EXPECT_THROW(blk.program_full(1, tokens, 2.0), std::logic_error);
}

TEST(Block, EspPageExhaustsAfterAllSlots) {
  Block blk = make_block();
  for (std::uint32_t s = 0; s < kSubs; ++s) blk.program_subpage(0, s, s, 0.0);
  EXPECT_THROW(blk.program_subpage(0, kSubs, 9, 0.0), std::out_of_range);
}

TEST(Block, EraseResetsEverythingAndCountsPe) {
  Block blk = make_block();
  const std::array<std::uint64_t, kSubs> tokens{1, 2, 3, 4};
  blk.program_full(0, tokens, 0.0);
  blk.program_subpage(1, 0, 7, 0.0);
  blk.erase();
  EXPECT_EQ(blk.pe_cycles(), 1u);
  EXPECT_TRUE(blk.is_erased());
  EXPECT_EQ(blk.page_mode(0), PageMode::kErased);
  EXPECT_EQ(blk.slot(1, 0).state, SlotState::kEmpty);
  // Reusable after erase.
  blk.program_subpage(0, 0, 42, 5.0);
  EXPECT_EQ(blk.slot(0, 0).token, 42u);
}

TEST(Block, OutOfRangeAccessesThrow) {
  Block blk = make_block();
  EXPECT_THROW(blk.slot(kPages, 0), std::out_of_range);
  EXPECT_THROW(blk.slot(0, kSubs), std::out_of_range);
  EXPECT_THROW(blk.program_subpage(kPages, 0, 1, 0.0), std::out_of_range);
}

TEST(Block, RejectsBadConstruction) {
  EXPECT_THROW(Block(0, 4), std::invalid_argument);
  EXPECT_THROW(Block(8, 0), std::invalid_argument);
  EXPECT_THROW(Block(8, kMaxSubpagesPerPage + 1), std::invalid_argument);
}

}  // namespace
}  // namespace esp::nand
