// QoS layer unit tests: namespace partitioning, scheduler policy
// semantics, and the tenant mux's isolation/accounting contracts.
#include "sim/qos.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "ftl/sub_ftl.h"
#include "nand/device.h"
#include "sim/driver.h"
#include "sim/tenant_mux.h"
#include "workload/request.h"

namespace esp::sim {
namespace {

using workload::Request;

TEST(QosPolicyNames, RoundTrip) {
  for (const auto policy : {QosPolicy::kFifo, QosPolicy::kRoundRobin,
                            QosPolicy::kWeightedShare}) {
    const auto parsed = parse_qos_policy(qos_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_qos_policy("priority").has_value());
}

TEST(PartitionNamespaces, EqualPageAlignedSlices) {
  const auto ns = partition_namespaces(2048, 2, 4);
  ASSERT_EQ(ns.size(), 2u);
  EXPECT_EQ(ns[0].base, 0u);
  EXPECT_EQ(ns[0].sectors, 1024u);
  EXPECT_EQ(ns[1].base, 1024u);
  EXPECT_EQ(ns[1].sectors, 1024u);
  // A non-divisible split still yields equal page-aligned slices.
  const auto odd = partition_namespaces(2044, 3, 4);
  ASSERT_EQ(odd.size(), 3u);
  for (const auto& s : odd) {
    EXPECT_EQ(s.base % 4, 0u);
    EXPECT_EQ(s.sectors % 4, 0u);
    EXPECT_EQ(s.sectors, odd[0].sectors);
  }
}

TEST(PartitionNamespaces, RejectsDegenerateShapes) {
  EXPECT_THROW(partition_namespaces(2048, 0, 4), std::invalid_argument);
  EXPECT_THROW(partition_namespaces(2048, 2, 0), std::invalid_argument);
  // 4 logical pages cannot give 5 tenants a page each.
  EXPECT_THROW(partition_namespaces(16, 5, 4), std::invalid_argument);
}

LaneState lane(SimTime arrival, SimTime ready, std::uint32_t cost = 1,
               double weight = 1.0) {
  LaneState s;
  s.pending = true;
  s.arrival = arrival;
  s.ready = ready;
  s.cost = cost;
  s.weight = weight;
  return s;
}

TEST(QosScheduler, FifoPicksOldestEligibleArrival) {
  QosScheduler sched(QosPolicy::kFifo, 3);
  std::vector<LaneState> lanes{lane(500.0, 0.0), lane(100.0, 0.0),
                               lane(300.0, 0.0)};
  EXPECT_EQ(sched.pick(lanes, 1000.0), 1u);
  // A lane whose ready time is past the horizon is not eligible, even if
  // its arrival is the oldest.
  lanes[1].ready = 5000.0;
  EXPECT_EQ(sched.pick(lanes, 1000.0), 2u);
  // When no lane is eligible, the earliest-ready one is served (device
  // idles until it arrives) instead of deadlocking.
  for (auto& l : lanes) l.ready = 9000.0;
  lanes[0].ready = 8000.0;
  EXPECT_EQ(sched.pick(lanes, 1000.0), 0u);
}

TEST(QosScheduler, RoundRobinAlternatesOverLanesWithWork) {
  QosScheduler sched(QosPolicy::kRoundRobin, 3);
  std::vector<LaneState> lanes{lane(0.0, 0.0), lane(0.0, 0.0),
                               lane(0.0, 0.0)};
  std::vector<std::size_t> order;
  for (int i = 0; i < 6; ++i) {
    const auto picked = sched.pick(lanes, 100.0);
    sched.charge(picked, lanes[picked]);
    order.push_back(picked);
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0, 1, 2, 0}));
  // A lane without work is skipped, not waited for.
  lanes[2].pending = false;
  const auto after = sched.pick(lanes, 100.0);
  EXPECT_EQ(after, 1u);  // cursor at 0, lane 1 next with work
}

TEST(QosScheduler, WeightedShareServesProportionallyToWeight) {
  QosScheduler sched(QosPolicy::kWeightedShare, 2);
  std::vector<LaneState> lanes{lane(0.0, 0.0, 1, 8.0),
                               lane(0.0, 0.0, 1, 1.0)};
  int heavy = 0;
  for (int i = 0; i < 90; ++i) {
    const auto picked = sched.pick(lanes, 100.0);
    sched.charge(picked, lanes[picked]);
    if (picked == 0) ++heavy;
  }
  // 8:1 weights with equal cost: the heavy lane gets ~8/9 of the picks.
  EXPECT_NEAR(heavy, 80, 4);
}

TEST(QosScheduler, WeightedShareChargesByCost) {
  QosScheduler sched(QosPolicy::kWeightedShare, 2);
  // Equal weights, 4x cost difference: the cheap lane is served ~4x as
  // often (bytes-fair, not requests-fair).
  std::vector<LaneState> lanes{lane(0.0, 0.0, 4, 1.0),
                               lane(0.0, 0.0, 1, 1.0)};
  int cheap = 0;
  for (int i = 0; i < 100; ++i) {
    const auto picked = sched.pick(lanes, 100.0);
    sched.charge(picked, lanes[picked]);
    if (picked == 1) ++cheap;
  }
  EXPECT_NEAR(cheap, 80, 4);
}

TEST(QosScheduler, WeightedShareIdleLaneHoardsNoCredit) {
  QosScheduler sched(QosPolicy::kWeightedShare, 2);
  std::vector<LaneState> lanes{lane(0.0, 0.0), lane(0.0, 0.0)};
  // Lane 1 idles while lane 0 is served many times.
  lanes[1].pending = false;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(sched.pick(lanes, 100.0), 0u);
    sched.charge(0, lanes[0]);
  }
  // When lane 1 returns it re-enters at the current virtual time: it gets
  // its fair share from NOW on, not 50 back-picks of hoarded credit.
  lanes[1].pending = true;
  int one = 0;
  for (int i = 0; i < 10; ++i) {
    const auto picked = sched.pick(lanes, 100.0);
    sched.charge(picked, lanes[picked]);
    if (picked == 1) ++one;
  }
  EXPECT_LE(one, 6);
  EXPECT_GE(one, 4);
}

// ---------------------------------------------------------------------
// TenantMux integration over a real FTL.

nand::Geometry mux_geo() {
  nand::Geometry geo;
  geo.channels = 2;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 16;
  geo.pages_per_block = 32;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

class FixedSource final : public workload::RequestSource {
 public:
  explicit FixedSource(std::vector<Request> requests)
      : requests_(std::move(requests)) {}
  std::optional<Request> next() override {
    if (next_ >= requests_.size()) return std::nullopt;
    return requests_[next_++];
  }

 private:
  std::vector<Request> requests_;
  std::size_t next_ = 0;
};

struct MuxFixture {
  MuxFixture() : dev(mux_geo()) {
    ftl::SubFtl::Config cfg;
    cfg.logical_sectors = 2048;
    ftl = std::make_unique<ftl::SubFtl>(dev, cfg);
    driver = std::make_unique<sim::Driver>(*ftl, dev, 8);
  }
  TenantMux::Lane make_lane(const std::string& name,
                            const TenantNamespace& ns,
                            workload::RequestSource* source,
                            double weight = 1.0, std::uint32_t qd = 4) {
    TenantMux::Lane lane;
    lane.config.name = name;
    lane.config.weight = weight;
    lane.config.queue_depth = qd;
    lane.ns = ns;
    lane.source = source;
    return lane;
  }
  nand::NandDevice dev;
  std::unique_ptr<ftl::SubFtl> ftl;
  std::unique_ptr<sim::Driver> driver;
};

TEST(TenantMux, RebasesTenantLocalSectorsIntoSlices) {
  MuxFixture fx;
  const auto ns = partition_namespaces(2048, 2, 4);
  // Both tenants write THEIR OWN sector 0; the rebase must land them in
  // different shared-space pages.
  std::vector<Request> w{{Request::Type::kWrite, 0, 4, false, 0.0}};
  FixedSource src_a(w), src_b(w);
  TenantMux mux(*fx.driver, QosPolicy::kFifo,
                {fx.make_lane("a", ns[0], &src_a),
                 fx.make_lane("b", ns[1], &src_b)});
  const auto out = mux.run(/*verify=*/true);
  EXPECT_EQ(out.requests, 2u);
  EXPECT_NE(fx.driver->expected_token(0), 0u);
  EXPECT_NE(fx.driver->expected_token(ns[1].base), 0u);
  EXPECT_EQ(fx.driver->verify_failures(), 0u);
  ASSERT_EQ(out.tenants.size(), 2u);
  EXPECT_EQ(out.tenants[0].host_write_sectors, 4u);
  EXPECT_EQ(out.tenants[1].host_write_sectors, 4u);
}

TEST(TenantMux, RejectsRequestOutsideTenantNamespace) {
  MuxFixture fx;
  const auto ns = partition_namespaces(2048, 2, 4);
  // A tenant-local sector at its slice length is one past the end.
  std::vector<Request> bad{
      {Request::Type::kWrite, ns[0].sectors, 4, false, 0.0}};
  FixedSource src(bad);
  TenantMux mux(*fx.driver, QosPolicy::kFifo,
                {fx.make_lane("a", ns[0], &src)});
  EXPECT_THROW(mux.run(false), std::out_of_range);
}

TEST(TenantMux, PerTenantMetricsSeparateReadsAndWrites) {
  MuxFixture fx;
  const auto ns = partition_namespaces(2048, 2, 4);
  std::vector<Request> writes, reads;
  for (int i = 0; i < 8; ++i)
    writes.push_back({Request::Type::kWrite, i * 4ull, 4, false, 0.0});
  for (int i = 0; i < 8; ++i) {
    reads.push_back({Request::Type::kWrite, i * 4ull, 1, false, 0.0});
    reads.push_back({Request::Type::kRead, i * 4ull, 1, false, 0.0});
  }
  FixedSource wsrc(writes), rsrc(reads);
  TenantMux mux(*fx.driver, QosPolicy::kRoundRobin,
                {fx.make_lane("bulk", ns[0], &wsrc),
                 fx.make_lane("point", ns[1], &rsrc)});
  const auto out = mux.run(/*verify=*/true);
  ASSERT_EQ(out.tenants.size(), 2u);
  const auto& bulk = out.tenants[0];
  const auto& point = out.tenants[1];
  EXPECT_EQ(bulk.name, "bulk");
  EXPECT_EQ(bulk.write_requests, 8u);
  EXPECT_EQ(bulk.read_requests, 0u);
  EXPECT_EQ(bulk.host_write_sectors, 32u);
  EXPECT_EQ(point.write_requests, 8u);
  EXPECT_EQ(point.read_requests, 8u);
  EXPECT_EQ(point.host_read_sectors, 8u);
  EXPECT_EQ(bulk.service_hist.total(), 8u);
  EXPECT_EQ(point.response_hist.total(), 16u);
  // Response can never undercut service: arrival <= issue.
  EXPECT_GE(point.response_p99_us, point.service_p99_us);
  EXPECT_DOUBLE_EQ(bulk.write_share(out.total_host_write_sectors()),
                   32.0 / 40.0);
}

TEST(TenantMux, WarmupThenMeasureReportSeparateWindows) {
  MuxFixture fx;
  const auto ns = partition_namespaces(2048, 1, 4);
  std::vector<Request> stream;
  for (int i = 0; i < 20; ++i)
    stream.push_back({Request::Type::kWrite, (i % 8) * 4ull, 4, false, 0.0});
  FixedSource src(stream);
  TenantMux mux(*fx.driver, QosPolicy::kFifo,
                {fx.make_lane("only", ns[0], &src)});
  const auto warm = mux.run(false, 12);
  const auto meas = mux.run(false);
  EXPECT_EQ(warm.requests, 12u);
  EXPECT_EQ(meas.requests, 8u);
  // Each window's histograms hold exactly that window's requests.
  EXPECT_EQ(warm.tenants[0].service_hist.total(), 12u);
  EXPECT_EQ(meas.tenants[0].service_hist.total(), 8u);
  EXPECT_GE(meas.start_us, warm.end_us);
}

}  // namespace
}  // namespace esp::sim
