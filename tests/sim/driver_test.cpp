// Driver unit tests: queue-depth pipelining, clock semantics, verification,
// latency accounting, fault surfacing.
#include "sim/driver.h"

#include <gtest/gtest.h>

#include "ftl/cgm_ftl.h"
#include "ftl/sub_ftl.h"
#include "nand/device.h"
#include "workload/synthetic.h"

namespace esp::sim {
namespace {

using workload::Request;

nand::Geometry tiny_geo() {
  nand::Geometry geo;
  geo.channels = 4;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 16;
  geo.pages_per_block = 16;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

struct DriverFixture {
  explicit DriverFixture(std::uint32_t queue_depth = 32) : dev(tiny_geo()) {
    ftl::CgmFtl::Config cfg;
    cfg.logical_sectors = 2048;
    ftl = std::make_unique<ftl::CgmFtl>(dev, cfg);
    driver = std::make_unique<Driver>(*ftl, dev, queue_depth);
  }
  nand::NandDevice dev;
  std::unique_ptr<ftl::CgmFtl> ftl;
  std::unique_ptr<Driver> driver;
};

TEST(Driver, WriteThenReadVerifies) {
  DriverFixture fx;
  fx.driver->submit({Request::Type::kWrite, 0, 4, false, 0.0});
  fx.driver->submit({Request::Type::kRead, 0, 4, false, 0.0});
  EXPECT_EQ(fx.driver->verify_failures(), 0u);
}

TEST(Driver, DetectsMappingCorruption) {
  // Sabotage: trim behind the driver's back, then read. The shadow map
  // still expects the old token, so verification must flag it.
  DriverFixture fx;
  fx.driver->submit({Request::Type::kWrite, 0, 4, false, 0.0});
  fx.ftl->trim(0, 4);  // bypasses Driver::submit on purpose
  fx.driver->submit({Request::Type::kRead, 0, 4, false, 0.0});
  EXPECT_EQ(fx.driver->verify_failures(), 4u);
}

TEST(Driver, ExpectedTokenTracksVersions) {
  DriverFixture fx;
  EXPECT_EQ(fx.driver->expected_token(9), 0u);
  fx.driver->submit({Request::Type::kWrite, 9, 1, false, 0.0});
  const auto v1 = fx.driver->expected_token(9);
  fx.driver->submit({Request::Type::kWrite, 9, 1, false, 0.0});
  EXPECT_NE(fx.driver->expected_token(9), v1);
}

TEST(Driver, QueueDepthPipelinesIndependentChips) {
  // With QD 1, N writes serialize; with QD 32 they overlap across chips.
  auto run_with_qd = [](std::uint32_t qd) {
    DriverFixture fx(qd);
    for (std::uint64_t i = 0; i < 64; ++i)
      fx.driver->submit({Request::Type::kWrite, i * 4, 4, false, 0.0},
                        false);
    return fx.driver->now();
  };
  const SimTime serial = run_with_qd(1);
  const SimTime pipelined = run_with_qd(32);
  EXPECT_LT(pipelined, serial / 3.0);
}

TEST(Driver, ThinkTimePacesArrivals) {
  DriverFixture fx;
  fx.driver->submit({Request::Type::kWrite, 0, 1, true, 1000000.0});
  EXPECT_GE(fx.driver->now(), 1000000.0);
}

TEST(Driver, AdvanceToMovesClockForward) {
  DriverFixture fx;
  fx.driver->advance_to(5000.0);
  EXPECT_EQ(fx.driver->now(), 5000.0);
  fx.driver->advance_to(100.0);  // never backwards
  EXPECT_EQ(fx.driver->now(), 5000.0);
  // Requests issued after an idle advance start no earlier than it.
  const auto result = fx.driver->submit({Request::Type::kWrite, 0, 4,
                                         false, 0.0});
  EXPECT_GE(result.done, 5000.0);
}

TEST(Driver, RunCountsRequestTypes) {
  DriverFixture fx;
  workload::SyntheticParams params;
  params.footprint_sectors = 2048;
  params.request_count = 500;
  params.read_fraction = 0.4;
  params.seed = 3;
  workload::SyntheticWorkload stream(params);
  const auto metrics = fx.driver->run(stream, true);
  EXPECT_EQ(metrics.requests, 500u);
  EXPECT_EQ(metrics.requests,
            metrics.read_requests + metrics.write_requests);
  EXPECT_GT(metrics.read_requests, 100u);
  EXPECT_GT(metrics.iops(), 0.0);
}

TEST(Driver, RunMaxRequestsSplitsStream) {
  DriverFixture fx;
  workload::SyntheticParams params;
  params.footprint_sectors = 2048;
  params.request_count = 300;
  params.seed = 4;
  workload::SyntheticWorkload stream(params);
  const auto first = fx.driver->run(stream, false, 100);
  EXPECT_EQ(first.requests, 100u);
  const auto rest = fx.driver->run(stream, false);
  EXPECT_EQ(rest.requests, 200u);
  EXPECT_GE(rest.start_us, first.end_us);
}

TEST(Driver, LatencyPercentilesPopulated) {
  DriverFixture fx;
  for (std::uint64_t i = 0; i < 100; ++i)
    fx.driver->submit({Request::Type::kWrite, (i % 64) * 4, 4, false, 0.0},
                      false);
  const auto& hist = fx.driver->latency_histogram();
  EXPECT_EQ(hist.total(), 100u);
  EXPECT_GT(hist.percentile(0.5), 0.0);
  EXPECT_GE(hist.percentile(0.99), hist.percentile(0.5));
}

TEST(Driver, IoErrorsSurfaceInMetrics) {
  nand::NandDevice dev(tiny_geo());
  ftl::CgmFtl::Config cfg;
  cfg.logical_sectors = 2048;
  ftl::CgmFtl ftl(dev, cfg);
  Driver driver(ftl, dev);
  driver.submit({Request::Type::kWrite, 0, 4, false, 0.0});
  dev.set_read_fault_injection(1.0, 7);
  const auto result = driver.submit({Request::Type::kRead, 0, 4, false, 0.0});
  EXPECT_FALSE(result.ok);
}

TEST(Driver, FlushDrainsBufferedFtl) {
  nand::NandDevice dev(tiny_geo());
  ftl::SubFtl::Config cfg;
  cfg.logical_sectors = 2048;
  ftl::SubFtl ftl(dev, cfg);
  Driver driver(ftl, dev);
  driver.submit({Request::Type::kWrite, 0, 4, false, 0.0});
  EXPECT_EQ(ftl.stats().flash_prog_full, 0u);  // still buffered
  driver.flush();
  EXPECT_EQ(ftl.stats().flash_prog_full, 1u);
}

TEST(Driver, ZeroQueueDepthClampedToOne) {
  DriverFixture fx(0);
  EXPECT_NO_THROW(
      fx.driver->submit({Request::Type::kWrite, 0, 4, false, 0.0}));
}

/// Fixed request sequence, for tests that need exact latency populations.
class FixedSource final : public workload::RequestSource {
 public:
  explicit FixedSource(std::vector<Request> requests)
      : requests_(std::move(requests)) {}
  std::optional<Request> next() override {
    if (next_ >= requests_.size()) return std::nullopt;
    return requests_[next_++];
  }

 private:
  std::vector<Request> requests_;
  std::size_t next_ = 0;
};

TEST(Driver, WarmupDoesNotPolluteMeasurePercentiles) {
  // Regression: RunMetrics percentiles were once computed over the
  // driver's CUMULATIVE histogram, so a slow warmup shifted the measured
  // run's percentiles. Two cleanly separable service-time populations:
  // warmup full-page programs (~1.6 ms) vs measured page reads (~150 us).
  DriverFixture fx(1);  // QD 1: service times are exact, no chip queueing
  std::vector<Request> warm, meas;
  for (int i = 0; i < 300; ++i)
    warm.push_back({Request::Type::kWrite, (i % 512) * 4ull, 4, false, 0.0});
  for (int i = 0; i < 100; ++i)
    meas.push_back({Request::Type::kRead, (i % 512) * 4ull, 4, false, 0.0});
  FixedSource warm_src(std::move(warm));
  FixedSource meas_src(std::move(meas));

  const auto warmup = fx.driver->run(warm_src, false);
  const auto measure = fx.driver->run(meas_src, false);
  // Each run's histogram holds exactly its own requests...
  EXPECT_EQ(warmup.latency_hist.total(), 300u);
  EXPECT_EQ(measure.latency_hist.total(), 100u);
  // ...so the 3x-larger millisecond-class warmup population cannot drag
  // the measured p50 out of its sub-200-us bucket.
  EXPECT_GT(warmup.latency_p50_us, 1000.0);
  EXPECT_LT(measure.latency_p50_us, 200.0);
}

TEST(Driver, ResponseIncludesQueueingDelayUnderSaturation) {
  // Open-loop arrivals every 10 us against a ~1.6 ms full-page program on
  // a QD-1 window: the backlog grows linearly, so response time (arrival
  // -> done) diverges from service time (issue -> done) by design.
  DriverFixture fx(1);
  std::vector<Request> reqs(50, {Request::Type::kWrite, 0, 4, false, 10.0});
  FixedSource src(std::move(reqs));
  const auto m = fx.driver->run(src, false);
  EXPECT_GE(m.response_p50_us, m.latency_p50_us);
  EXPECT_GT(m.response_p99_us, m.latency_p99_us * 5.0);
  // Closed-loop (think 0) instead rides the window: response ~ service.
  DriverFixture closed(1);
  std::vector<Request> cl(50, {Request::Type::kWrite, 0, 4, false, 0.0});
  FixedSource cl_src(std::move(cl));
  const auto c = closed.driver->run(cl_src, false);
  EXPECT_GE(c.response_p99_us, c.latency_p99_us);
  EXPECT_LT(c.response_p99_us, c.latency_p99_us * 1.5);
}

struct BufferedRig {
  BufferedRig() : dev(tiny_geo()) {
    ftl::SubFtl::Config cfg;
    cfg.logical_sectors = 2048;
    ftl = std::make_unique<ftl::SubFtl>(dev, cfg);
    driver = std::make_unique<Driver>(*ftl, dev);
    driver->submit({Request::Type::kWrite, 0, 1, false, 0.0});
  }
  nand::NandDevice dev;
  std::unique_ptr<ftl::SubFtl> ftl;
  std::unique_ptr<Driver> driver;
};

TEST(Driver, FlushMatchesInStreamFlushRequest) {
  // Driver::flush() is routed through the submit path, so it must be
  // indistinguishable from an in-stream kFlush request: same clock, same
  // latency accounting, same FTL state.
  BufferedRig a;
  a.driver->flush();
  BufferedRig b;
  b.driver->submit({Request::Type::kFlush, 0, 0, false, 0.0}, false);

  EXPECT_EQ(a.driver->now(), b.driver->now());
  EXPECT_EQ(a.driver->latency_histogram().total(),
            b.driver->latency_histogram().total());
  EXPECT_EQ(a.driver->latency_histogram().percentile(0.99),
            b.driver->latency_histogram().percentile(0.99));
  EXPECT_EQ(a.ftl->stats().flash_prog_full, b.ftl->stats().flash_prog_full);
  EXPECT_EQ(a.ftl->stats().flash_prog_sub, b.ftl->stats().flash_prog_sub);
}

}  // namespace
}  // namespace esp::sim
