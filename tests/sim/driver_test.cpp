// Driver unit tests: queue-depth pipelining, clock semantics, verification,
// latency accounting, fault surfacing.
#include "sim/driver.h"

#include <gtest/gtest.h>

#include "ftl/cgm_ftl.h"
#include "ftl/sub_ftl.h"
#include "nand/device.h"
#include "workload/synthetic.h"

namespace esp::sim {
namespace {

using workload::Request;

nand::Geometry tiny_geo() {
  nand::Geometry geo;
  geo.channels = 4;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 16;
  geo.pages_per_block = 16;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

struct DriverFixture {
  explicit DriverFixture(std::uint32_t queue_depth = 32) : dev(tiny_geo()) {
    ftl::CgmFtl::Config cfg;
    cfg.logical_sectors = 2048;
    ftl = std::make_unique<ftl::CgmFtl>(dev, cfg);
    driver = std::make_unique<Driver>(*ftl, dev, queue_depth);
  }
  nand::NandDevice dev;
  std::unique_ptr<ftl::CgmFtl> ftl;
  std::unique_ptr<Driver> driver;
};

TEST(Driver, WriteThenReadVerifies) {
  DriverFixture fx;
  fx.driver->submit({Request::Type::kWrite, 0, 4, false, 0.0});
  fx.driver->submit({Request::Type::kRead, 0, 4, false, 0.0});
  EXPECT_EQ(fx.driver->verify_failures(), 0u);
}

TEST(Driver, DetectsMappingCorruption) {
  // Sabotage: trim behind the driver's back, then read. The shadow map
  // still expects the old token, so verification must flag it.
  DriverFixture fx;
  fx.driver->submit({Request::Type::kWrite, 0, 4, false, 0.0});
  fx.ftl->trim(0, 4);  // bypasses Driver::submit on purpose
  fx.driver->submit({Request::Type::kRead, 0, 4, false, 0.0});
  EXPECT_EQ(fx.driver->verify_failures(), 4u);
}

TEST(Driver, ExpectedTokenTracksVersions) {
  DriverFixture fx;
  EXPECT_EQ(fx.driver->expected_token(9), 0u);
  fx.driver->submit({Request::Type::kWrite, 9, 1, false, 0.0});
  const auto v1 = fx.driver->expected_token(9);
  fx.driver->submit({Request::Type::kWrite, 9, 1, false, 0.0});
  EXPECT_NE(fx.driver->expected_token(9), v1);
}

TEST(Driver, QueueDepthPipelinesIndependentChips) {
  // With QD 1, N writes serialize; with QD 32 they overlap across chips.
  auto run_with_qd = [](std::uint32_t qd) {
    DriverFixture fx(qd);
    for (std::uint64_t i = 0; i < 64; ++i)
      fx.driver->submit({Request::Type::kWrite, i * 4, 4, false, 0.0},
                        false);
    return fx.driver->now();
  };
  const SimTime serial = run_with_qd(1);
  const SimTime pipelined = run_with_qd(32);
  EXPECT_LT(pipelined, serial / 3.0);
}

TEST(Driver, ThinkTimePacesArrivals) {
  DriverFixture fx;
  fx.driver->submit({Request::Type::kWrite, 0, 1, true, 1000000.0});
  EXPECT_GE(fx.driver->now(), 1000000.0);
}

TEST(Driver, AdvanceToMovesClockForward) {
  DriverFixture fx;
  fx.driver->advance_to(5000.0);
  EXPECT_EQ(fx.driver->now(), 5000.0);
  fx.driver->advance_to(100.0);  // never backwards
  EXPECT_EQ(fx.driver->now(), 5000.0);
  // Requests issued after an idle advance start no earlier than it.
  const auto result = fx.driver->submit({Request::Type::kWrite, 0, 4,
                                         false, 0.0});
  EXPECT_GE(result.done, 5000.0);
}

TEST(Driver, RunCountsRequestTypes) {
  DriverFixture fx;
  workload::SyntheticParams params;
  params.footprint_sectors = 2048;
  params.request_count = 500;
  params.read_fraction = 0.4;
  params.seed = 3;
  workload::SyntheticWorkload stream(params);
  const auto metrics = fx.driver->run(stream, true);
  EXPECT_EQ(metrics.requests, 500u);
  EXPECT_EQ(metrics.requests,
            metrics.read_requests + metrics.write_requests);
  EXPECT_GT(metrics.read_requests, 100u);
  EXPECT_GT(metrics.iops(), 0.0);
}

TEST(Driver, RunMaxRequestsSplitsStream) {
  DriverFixture fx;
  workload::SyntheticParams params;
  params.footprint_sectors = 2048;
  params.request_count = 300;
  params.seed = 4;
  workload::SyntheticWorkload stream(params);
  const auto first = fx.driver->run(stream, false, 100);
  EXPECT_EQ(first.requests, 100u);
  const auto rest = fx.driver->run(stream, false);
  EXPECT_EQ(rest.requests, 200u);
  EXPECT_GE(rest.start_us, first.end_us);
}

TEST(Driver, LatencyPercentilesPopulated) {
  DriverFixture fx;
  for (std::uint64_t i = 0; i < 100; ++i)
    fx.driver->submit({Request::Type::kWrite, (i % 64) * 4, 4, false, 0.0},
                      false);
  const auto& hist = fx.driver->latency_histogram();
  EXPECT_EQ(hist.total(), 100u);
  EXPECT_GT(hist.percentile(0.5), 0.0);
  EXPECT_GE(hist.percentile(0.99), hist.percentile(0.5));
}

TEST(Driver, IoErrorsSurfaceInMetrics) {
  nand::NandDevice dev(tiny_geo());
  ftl::CgmFtl::Config cfg;
  cfg.logical_sectors = 2048;
  ftl::CgmFtl ftl(dev, cfg);
  Driver driver(ftl, dev);
  driver.submit({Request::Type::kWrite, 0, 4, false, 0.0});
  dev.set_read_fault_injection(1.0, 7);
  const auto result = driver.submit({Request::Type::kRead, 0, 4, false, 0.0});
  EXPECT_FALSE(result.ok);
}

TEST(Driver, FlushDrainsBufferedFtl) {
  nand::NandDevice dev(tiny_geo());
  ftl::SubFtl::Config cfg;
  cfg.logical_sectors = 2048;
  ftl::SubFtl ftl(dev, cfg);
  Driver driver(ftl, dev);
  driver.submit({Request::Type::kWrite, 0, 4, false, 0.0});
  EXPECT_EQ(ftl.stats().flash_prog_full, 0u);  // still buffered
  driver.flush();
  EXPECT_EQ(ftl.stats().flash_prog_full, 1u);
}

TEST(Driver, ZeroQueueDepthClampedToOne) {
  DriverFixture fx(0);
  EXPECT_NO_THROW(
      fx.driver->submit({Request::Type::kWrite, 0, 4, false, 0.0}));
}

}  // namespace
}  // namespace esp::sim
