// Shared helpers for the test suite: small geometries that keep runs fast
// while exercising multi-channel behavior.
#pragma once

#include "core/ssd.h"
#include "nand/geometry.h"

namespace esp::test {

/// Tiny device: 2 channels x 2 chips, 16 blocks/chip, 32 pages/block,
/// 16-KB pages, 4 subpages => 32 MiB raw. Big enough for GC churn, small
/// enough for thousands of test I/Os in milliseconds.
inline nand::Geometry tiny_geometry() {
  nand::Geometry geo;
  geo.channels = 2;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 16;
  geo.pages_per_block = 32;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

/// Mid-size device for integration runs: 4 channels x 2 chips, 64
/// blocks/chip => 512 MiB raw.
inline nand::Geometry small_geometry() {
  nand::Geometry geo;
  geo.channels = 4;
  geo.chips_per_channel = 2;
  geo.blocks_per_chip = 64;
  geo.pages_per_block = 64;
  geo.page_bytes = 16 * 1024;
  geo.subpages_per_page = 4;
  return geo;
}

inline core::SsdConfig tiny_config(core::FtlKind kind) {
  core::SsdConfig cfg;
  cfg.geometry = tiny_geometry();
  cfg.ftl = kind;
  cfg.logical_fraction = 0.60;
  cfg.gc_reserve_blocks = 4;
  cfg.buffer_sectors = 64;
  return cfg;
}

inline core::SsdConfig small_config(core::FtlKind kind) {
  core::SsdConfig cfg;
  cfg.geometry = small_geometry();
  cfg.ftl = kind;
  cfg.logical_fraction = 0.625;
  cfg.gc_reserve_blocks = 8;
  cfg.buffer_sectors = 128;
  return cfg;
}

}  // namespace esp::test
