#include "util/histogram.h"

#include <gtest/gtest.h>

namespace esp::util {
namespace {

TEST(Histogram, EmptyPercentileReturnsLo) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, CountsAndTotal) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i % 10 + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket(b), 10u);
}

TEST(Histogram, OutOfRangeClampsIntoEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, MedianOfUniform) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.percentile(0.0), 0.0, 1.5);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h(0.0, 50.0, 25);
  for (int i = 0; i < 1000; ++i) h.add((i * 7) % 50);
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, ResetClears) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(2.0);
  EXPECT_NE(h.summary().find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace esp::util
