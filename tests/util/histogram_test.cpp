#include "util/histogram.h"

#include <gtest/gtest.h>

namespace esp::util {
namespace {

TEST(Histogram, EmptyPercentileReturnsLo) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, CountsAndTotal) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i % 10 + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket(b), 10u);
}

TEST(Histogram, OutOfRangeClampsIntoEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 2u);
  // Clamping is no longer silent: both directions are counted.
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, SummaryReportsClampingOnlyWhenPresent) {
  Histogram clean(0.0, 10.0, 5);
  clean.add(5.0);
  EXPECT_EQ(clean.summary().find("clamped"), std::string::npos);
  Histogram clamped(0.0, 10.0, 5);
  clamped.add(99.0);
  EXPECT_NE(clamped.summary().find("clamped"), std::string::npos);
}

TEST(Histogram, MergeAccumulatesMatchingShape) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  for (int i = 0; i < 50; ++i) a.add(2.5);
  for (int i = 0; i < 50; ++i) b.add(7.5);
  b.add(-1.0);   // underflow
  b.add(100.0);  // overflow
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.total(), 102u);
  EXPECT_EQ(a.bucket(2), 50u);
  EXPECT_EQ(a.bucket(7), 50u);
  EXPECT_EQ(a.bucket(0), 1u);  // clamped underflow
  EXPECT_EQ(a.bucket(9), 1u);  // clamped overflow
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_NEAR(a.percentile(0.75), 7.5, 1.1);
}

TEST(Histogram, MergeRejectsShapeMismatch) {
  Histogram a(0.0, 10.0, 10);
  a.add(1.0);
  Histogram wider(0.0, 20.0, 10), finer(0.0, 10.0, 20);
  wider.add(1.0);
  EXPECT_FALSE(a.merge(wider));
  EXPECT_FALSE(a.merge(finer));
  EXPECT_EQ(a.total(), 1u);  // unchanged on rejection
}

TEST(Histogram, MedianOfUniform) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.percentile(0.0), 0.0, 1.5);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h(0.0, 50.0, 25);
  for (int i = 0; i < 1000; ++i) h.add((i * 7) % 50);
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, P999InterpolatesLinearlyWithinBucket) {
  // 990 fast samples, 10 slow ones in the last bucket [9, 10): the p999
  // rank (floor(0.999 * 999) = 998) falls 8/10 into that bucket, so the
  // interpolated value is exactly 9.8 -- not the bucket edge.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 990; ++i) h.add(0.5);
  for (int i = 0; i < 10; ++i) h.add(9.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.999), 9.8);
}

TEST(Histogram, P999InterpolatesInsideTerminalBucketWhenClamped) {
  // Overflow samples clamp into the terminal bucket; the p999 estimate
  // still interpolates within that bucket and never exceeds the range.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 990; ++i) h.add(0.5);
  for (int i = 0; i < 10; ++i) h.add(1000.0);
  EXPECT_EQ(h.overflow(), 10u);
  EXPECT_DOUBLE_EQ(h.percentile(0.999), 9.8);
  EXPECT_LE(h.percentile(0.9999), 10.0);
}

TEST(Histogram, SummaryReportsP999) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 1000; ++i) h.add(i % 10 + 0.5);
  EXPECT_NE(h.summary().find("p999="), std::string::npos);
}

TEST(Histogram, ResetClears) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(2.0);
  EXPECT_NE(h.summary().find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace esp::util
