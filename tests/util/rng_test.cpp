#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace esp::util {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, UniformStaysInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BelowRespectsBound) {
  Xoshiro256 rng(19);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256, BelowCoversAllResidues) {
  Xoshiro256 rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(29);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, ChanceMatchesProbability) {
  Xoshiro256 rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, GaussianMomentsMatch) {
  Xoshiro256 rng(41);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Xoshiro256, GaussianScaled) {
  Xoshiro256 rng(43);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Xoshiro256, ForkDecorrelates) {
  Xoshiro256 parent(53);
  Xoshiro256 child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace esp::util
