#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace esp::util {
namespace {

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, ColumnsAligned) {
  TablePrinter t({"a", "b"});
  t.add_row({"looooong", "x"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string header, rule, row;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row);
  // 'b' and 'x' start at the same column.
  EXPECT_EQ(header.find('b'), row.find('x'));
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(TablePrinter, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(TablePrinter, PctFormatsPercent) {
  EXPECT_EQ(TablePrinter::pct(0.123, 1), "12.3%");
  EXPECT_EQ(TablePrinter::pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace esp::util
