#include "util/stats.h"

#include <gtest/gtest.h>

namespace esp::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(RunningStats, ResetClears) {
  RunningStats stats;
  stats.add(42.0);
  stats.reset();
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
}

}  // namespace
}  // namespace esp::util
