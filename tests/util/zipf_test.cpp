#include "util/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace esp::util {
namespace {

TEST(ZipfSampler, UniformWhenThetaZero) {
  ZipfSampler zipf(100, 0.0);
  Xoshiro256 rng(1);
  std::vector<int> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, n / 100, n / 100 * 0.35);
}

TEST(ZipfSampler, SamplesStayInRange) {
  for (const double theta : {0.0, 0.5, 0.9, 0.99}) {
    ZipfSampler zipf(1000, theta);
    Xoshiro256 rng(2);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.sample(rng), 1000u);
  }
}

TEST(ZipfSampler, SkewConcentratesOnLowRanks) {
  ZipfSampler zipf(10000, 0.9);
  Xoshiro256 rng(3);
  int in_top_100 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) in_top_100 += (zipf.sample(rng) < 100);
  // With theta=0.9 over 10k items, the top 1% draws far more than 1%.
  EXPECT_GT(static_cast<double>(in_top_100) / n, 0.30);
}

TEST(ZipfSampler, HigherThetaMoreSkew) {
  Xoshiro256 rng(4);
  auto top_share = [&rng](double theta) {
    ZipfSampler zipf(10000, theta);
    int top = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) top += (zipf.sample(rng) < 10);
    return static_cast<double>(top) / n;
  };
  EXPECT_GT(top_share(0.95), top_share(0.5));
}

TEST(ZipfSampler, RankZeroIsHottest) {
  ZipfSampler zipf(1000, 0.9);
  Xoshiro256 rng(5);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[500]);
}

TEST(ScatteredZipf, ScattersHotSetAcrossSpace) {
  ScatteredZipf zipf(10000, 0.9);
  Xoshiro256 rng(6);
  // The hottest addresses should NOT all live below 100.
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) low += (zipf.sample(rng) < 100);
  EXPECT_LT(static_cast<double>(low) / n, 0.2);
}

TEST(ScatteredZipf, StillSkewed) {
  ScatteredZipf zipf(10000, 0.9);
  Xoshiro256 rng(7);
  std::vector<int> counts(10000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.sample(rng)];
  int max_count = 0;
  for (const int c : counts) max_count = std::max(max_count, c);
  // One address dominates far beyond the uniform expectation of 20.
  EXPECT_GT(max_count, 200);
}

}  // namespace
}  // namespace esp::util
