#include "util/batch_math.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace esp::util {
namespace {

struct Moments {
  double mean = 0.0;
  double stddev = 0.0;
  double skew = 0.0;
  double kurtosis = 0.0;  // excess
};

Moments moments_of(const std::vector<float>& v) {
  const double n = static_cast<double>(v.size());
  double sum = 0.0;
  for (const float x : v) sum += x;
  const double mean = sum / n;
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (const float x : v) {
    const double d = x - mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m3 /= n;
  m4 /= n;
  Moments m;
  m.mean = mean;
  m.stddev = std::sqrt(m2);
  m.skew = m3 / (m2 * std::sqrt(m2));
  m.kurtosis = m4 / (m2 * m2) - 3.0;
  return m;
}

double tail_fraction(const std::vector<float>& v, double cut) {
  std::size_t beyond = 0;
  for (const float x : v) beyond += std::abs(x) > cut;
  return static_cast<double>(beyond) / static_cast<double>(v.size());
}

// Population large enough that Monte-Carlo noise on the mean is ~1e-3
// (sigma/sqrt(n)) and on tail fractions is a few percent relative.
constexpr std::size_t kN = 1u << 20;

TEST(GaussianFill, StandardNormalMoments) {
  Xoshiro256 rng(101);
  std::vector<float> z(kN);
  gaussian_fill(rng, z);
  const Moments m = moments_of(z);
  EXPECT_NEAR(m.mean, 0.0, 5e-3);
  EXPECT_NEAR(m.stddev, 1.0, 5e-3);
  EXPECT_NEAR(m.skew, 0.0, 1e-2);
  EXPECT_NEAR(m.kurtosis, 0.0, 3e-2);
}

TEST(GaussianFill, TailFractionsMatchNormalLaw) {
  Xoshiro256 rng(102);
  std::vector<float> z(kN);
  gaussian_fill(rng, z);
  // P(|Z| > 1) = 0.3173, P(|Z| > 2) = 0.0455, P(|Z| > 3) = 0.0027.
  EXPECT_NEAR(tail_fraction(z, 1.0), 0.3173, 0.005);
  EXPECT_NEAR(tail_fraction(z, 2.0), 0.0455, 0.002);
  EXPECT_NEAR(tail_fraction(z, 3.0), 0.0027, 0.0005);
}

TEST(GaussianFill, ScaledMomentsMatchScalarSampler) {
  // Same distribution as Xoshiro256::gaussian(mean, sigma): compare the
  // batched kernel against the scalar polar-method sampler, moment for
  // moment. Streams differ by design; only statistics must agree.
  const double mean = -3.0, sigma = 0.45;
  Xoshiro256 batched_rng(103), scalar_rng(104);
  std::vector<float> batched(kN);
  gaussian_fill(batched_rng, batched, mean, sigma);
  std::vector<float> scalar(kN);
  for (auto& x : scalar)
    x = static_cast<float>(scalar_rng.gaussian(mean, sigma));
  const Moments mb = moments_of(batched), ms = moments_of(scalar);
  EXPECT_NEAR(mb.mean, ms.mean, 5e-3 * sigma * 3);
  EXPECT_NEAR(mb.stddev, ms.stddev, 5e-3 * sigma * 3);
  EXPECT_NEAR(mb.skew, ms.skew, 3e-2);
  EXPECT_NEAR(mb.kurtosis, ms.kurtosis, 9e-2);
}

TEST(GaussianFill, DeterministicForSameSeed) {
  std::vector<float> a(10000), b(10000);
  Xoshiro256 ra(7), rb(7);
  gaussian_fill(ra, a);
  gaussian_fill(rb, b);
  EXPECT_EQ(a, b);
}

TEST(GaussianFill, OddAndTinySizesFilledCompletely) {
  for (const std::size_t n : {1ul, 2ul, 3ul, 7ul, 2047ul, 2049ul}) {
    Xoshiro256 rng(9);
    std::vector<float> z(n, 1e30f);
    gaussian_fill(rng, z);
    for (const float x : z) EXPECT_LT(std::abs(x), 7.0f) << "n=" << n;
  }
}

TEST(AddClippedGaussian, MeanMatchesRectifiedNormal) {
  // E[max(0, N(m, s))] = m*Phi(m/s) + s*phi(m/s).
  const double m = 0.05, s = 0.03;
  const double a = m / s;
  const double phi = std::exp(-0.5 * a * a) / std::sqrt(2.0 * 3.14159265358979323846);
  const double Phi = 0.5 * std::erfc(-a / std::sqrt(2.0));
  const double expected = m * Phi + s * phi;

  Xoshiro256 rng(105);
  std::vector<float> v(kN, 0.0f);
  add_clipped_gaussian(rng, v, m, s);
  double sum = 0.0;
  float min_shift = 1.0f;
  for (const float x : v) {
    sum += x;
    min_shift = std::min(min_shift, x);
  }
  EXPECT_NEAR(sum / kN, expected, 1e-4);
  EXPECT_GE(min_shift, 0.0f);  // clipped at zero, never a down-shift
}

TEST(AddClippedGaussian, AccumulatesOntoExistingValues) {
  Xoshiro256 rng(106);
  std::vector<float> v(4096, -3.0f);
  add_clipped_gaussian(rng, v, 0.18, 0.12);
  for (const float x : v) EXPECT_GE(x, -3.0f);
  add_clipped_gaussian(rng, v, 0.18, 0.12);
  double sum = 0.0;
  for (const float x : v) sum += x;
  // Two disturb passes at mean 0.18: expect roughly -3 + 2*0.18.
  EXPECT_NEAR(sum / v.size(), -3.0 + 2 * 0.18, 0.02);
}

TEST(QuantizeToGray, MatchesNaiveQuantizerEverywhere) {
  // 8-level boundary table (matches the TLC cell model layout).
  const std::vector<float> bounds = {-1.5f, 0.4f, 1.2f, 2.0f,
                                     2.8f,  3.6f, 4.4f};
  Xoshiro256 rng(107);
  std::vector<float> vth(10001);
  for (auto& x : vth)
    x = static_cast<float>(rng.uniform() * 12.0 - 5.0);  // spans all bins
  std::vector<std::uint8_t> fast(vth.size());
  quantize_to_gray(vth, bounds, fast);
  for (std::size_t i = 0; i < vth.size(); ++i) {
    unsigned level = 0;
    for (const float b : bounds) level += vth[i] > b;
    const auto gray = static_cast<std::uint8_t>(level ^ (level >> 1));
    ASSERT_EQ(fast[i], gray) << "vth=" << vth[i];
  }
}

TEST(GrayBitErrors, MatchesPerCellPopcount) {
  Xoshiro256 rng(108);
  std::vector<std::uint8_t> a(1003), b(1003);  // odd size: exercises tail
  for (auto& x : a) x = static_cast<std::uint8_t>(rng() & 7);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng() & 7);
  std::uint64_t naive = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    naive += std::popcount(static_cast<unsigned>(a[i] ^ b[i]));
  EXPECT_EQ(gray_bit_errors(a, b), naive);
  EXPECT_EQ(gray_bit_errors(a, a), 0u);
}

TEST(UniformLevelsFill, UniformOverAllLevels) {
  Xoshiro256 rng(109);
  std::vector<std::uint8_t> lv(1u << 20);
  uniform_levels_fill(rng, lv, 8);
  std::vector<std::size_t> counts(8, 0);
  for (const std::uint8_t l : lv) {
    ASSERT_LT(l, 8);
    ++counts[l];
  }
  const double expect = static_cast<double>(lv.size()) / 8.0;
  for (const std::size_t c : counts)
    EXPECT_NEAR(static_cast<double>(c) / expect, 1.0, 0.01);
}

TEST(UniformLevelsFill, DeterministicForSameSeed) {
  std::vector<std::uint8_t> a(5000), b(5000);
  Xoshiro256 ra(11), rb(11);
  uniform_levels_fill(ra, a, 8);
  uniform_levels_fill(rb, b, 8);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace esp::util
