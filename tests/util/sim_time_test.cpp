#include "util/sim_time.h"

#include <gtest/gtest.h>

namespace esp::sim_time {
namespace {

TEST(SimTime, UnitRatios) {
  EXPECT_DOUBLE_EQ(kMillisecond, 1000.0 * kMicrosecond);
  EXPECT_DOUBLE_EQ(kSecond, 1000.0 * kMillisecond);
  EXPECT_DOUBLE_EQ(kMinute, 60.0 * kSecond);
  EXPECT_DOUBLE_EQ(kHour, 60.0 * kMinute);
  EXPECT_DOUBLE_EQ(kDay, 24.0 * kHour);
  EXPECT_DOUBLE_EQ(kMonth, 30.0 * kDay);  // the paper's month
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(2.5 * kSecond), 2.5);
  EXPECT_DOUBLE_EQ(to_days(from_days(17.0)), 17.0);
  EXPECT_DOUBLE_EQ(from_months(2.0), 60.0 * kDay);
}

TEST(SimTime, MicrosecondArithmeticIsExactAtRetentionHorizons) {
  // 15 days in microseconds is far below double's 2^53 exact-integer
  // ceiling; adding one microsecond must stay exact.
  const SimTime fifteen_days = from_days(15.0);
  EXPECT_EQ(fifteen_days + 1.0 - fifteen_days, 1.0);
  const SimTime one_year = from_days(365.0);
  EXPECT_EQ(one_year + 1.0 - one_year, 1.0);
}

}  // namespace
}  // namespace esp::sim_time
