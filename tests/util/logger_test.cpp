#include "util/logger.h"

#include <gtest/gtest.h>

namespace esp::util {
namespace {

TEST(Logger, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Logger, FilteredCallsAreCheap) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  // Must not crash or emit for any level below kOff.
  ESP_LOG_TRACE("trace %d", 1);
  ESP_LOG_DEBUG("debug %s", "x");
  ESP_LOG_INFO("info");
  ESP_LOG_WARN("warn");
  ESP_LOG_ERROR("error %f", 1.5);
  set_log_level(original);
}

TEST(Logger, EmittingDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kTrace);
  ESP_LOG_TRACE("emitted trace %d/%d", 1, 2);
  ESP_LOG_ERROR("emitted error");
  set_log_level(original);
}

}  // namespace
}  // namespace esp::util
