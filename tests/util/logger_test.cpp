#include "util/logger.h"

#include <gtest/gtest.h>

namespace esp::util {
namespace {

TEST(Logger, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Logger, FilteredCallsAreCheap) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  // Must not crash or emit for any level below kOff.
  ESP_LOG_TRACE("trace %d", 1);
  ESP_LOG_DEBUG("debug %s", "x");
  ESP_LOG_INFO("info");
  ESP_LOG_WARN("warn");
  ESP_LOG_ERROR("error %f", 1.5);
  set_log_level(original);
}

TEST(Logger, EmittingDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kTrace);
  ESP_LOG_TRACE("emitted trace %d/%d", 1, 2);
  ESP_LOG_ERROR("emitted error");
  set_log_level(original);
}

TEST(Logger, ParseLogLevelNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST(Logger, SimTimeProviderInstallAndRemove) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  set_log_sim_time_provider([] { return 1234567.0; });
  ESP_LOG_ERROR("with sim-time prefix");
  set_log_sim_time_provider(nullptr);
  ESP_LOG_ERROR("without sim-time prefix");
  set_log_level(original);
}

}  // namespace
}  // namespace esp::util
