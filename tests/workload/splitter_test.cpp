// ShardSplitter: the stable LBA -> (shard, local LBA) mapping behind
// intra-cell sharding. Pins the bijection, boundary splitting, flush
// broadcast and think-time conservation the determinism contract needs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "workload/splitter.h"

namespace esp {
namespace {

using workload::Request;
using workload::ShardSplitter;

TEST(ShardSplitter, MappingIsBijective) {
  // 4 shards, 2-page stripes, 4 sectors/page, 70 sectors of per-shard
  // capacity -> 8 stripes per shard (64 sectors), 256 usable.
  const ShardSplitter s(4, 2, 4, 70);
  EXPECT_EQ(s.stripe_sectors(), 8u);
  EXPECT_EQ(s.shard_sectors(), 64u);
  EXPECT_EQ(s.usable_sectors(), 256u);

  std::vector<std::vector<bool>> hit(4, std::vector<bool>(64, false));
  for (std::uint64_t g = 0; g < s.usable_sectors(); ++g) {
    const std::uint32_t shard = s.shard_of(g);
    const std::uint64_t local = s.to_local(g);
    ASSERT_LT(shard, 4u);
    ASSERT_LT(local, s.shard_sectors());
    ASSERT_FALSE(hit[shard][local]) << "collision at global " << g;
    hit[shard][local] = true;
  }
  for (const auto& per_shard : hit)
    for (const bool h : per_shard) EXPECT_TRUE(h);
}

TEST(ShardSplitter, SequentialFillArrivesSequentiallyPerShard) {
  const ShardSplitter s(2, 1, 4, 1024);
  std::uint64_t last[2] = {0, 0};
  bool seen[2] = {false, false};
  for (std::uint64_t g = 0; g < 64; ++g) {
    const std::uint32_t shard = s.shard_of(g);
    const std::uint64_t local = s.to_local(g);
    if (seen[shard]) EXPECT_EQ(local, last[shard] + 1);
    last[shard] = local;
    seen[shard] = true;
  }
}

TEST(ShardSplitter, SplitsAtStripeBoundaries) {
  const ShardSplitter s(2, 1, 4, 1024);  // 4-sector stripes
  Request r;
  r.type = Request::Type::kWrite;
  r.sector = 2;
  r.count = 9;  // spans sectors [2, 11): stripes 0, 1, 2
  r.sync = true;
  r.think_us = 7.0;
  std::vector<ShardSplitter::Sub> out;
  s.split(r, out);
  ASSERT_EQ(out.size(), 3u);
  // Stripe 0 -> shard 0, stripe 1 -> shard 1, stripe 2 -> shard 0.
  EXPECT_EQ(out[0].shard, 0u);
  EXPECT_EQ(out[0].request.sector, 2u);
  EXPECT_EQ(out[0].request.count, 2u);
  EXPECT_EQ(out[0].request.think_us, 7.0);
  EXPECT_EQ(out[1].shard, 1u);
  EXPECT_EQ(out[1].request.sector, 0u);
  EXPECT_EQ(out[1].request.count, 4u);
  EXPECT_EQ(out[1].request.think_us, 0.0);
  EXPECT_EQ(out[2].shard, 0u);
  EXPECT_EQ(out[2].request.sector, 4u);
  EXPECT_EQ(out[2].request.count, 3u);
  std::uint32_t total = 0;
  for (const auto& sub : out) {
    EXPECT_TRUE(sub.request.sync);
    EXPECT_EQ(sub.request.type, Request::Type::kWrite);
    total += sub.request.count;
  }
  EXPECT_EQ(total, r.count);
}

TEST(ShardSplitter, FlushBroadcasts) {
  const ShardSplitter s(3, 1, 4, 1024);
  Request r;
  r.type = Request::Type::kFlush;
  r.count = 0;
  std::vector<ShardSplitter::Sub> out;
  s.split(r, out);
  ASSERT_EQ(out.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].shard, i);
    EXPECT_EQ(out[i].request.type, Request::Type::kFlush);
  }
}

TEST(ShardSplitter, RejectsStripeLargerThanShard) {
  EXPECT_THROW(ShardSplitter(4, 64, 4, 100), std::invalid_argument);
  EXPECT_THROW(ShardSplitter(0, 1, 4, 100), std::invalid_argument);
}

TEST(PartitionStream, ConservesThinkTimePerShard) {
  // Two writes (one per shard) with think 10 each, then a broadcast flush
  // draining every shard's accumulated credit: each shard's arrival clock
  // must advance by the TOTAL stream think (20), not just its own share.
  std::vector<Request> reqs;
  Request w;
  w.type = Request::Type::kWrite;
  w.count = 4;
  w.think_us = 10.0;
  w.sector = 0;  // stripe 0 -> shard 0
  reqs.push_back(w);
  w.sector = 4;  // stripe 1 -> shard 1
  reqs.push_back(w);
  Request f;
  f.type = Request::Type::kFlush;
  reqs.push_back(f);

  workload::VectorSource source(reqs);
  const ShardSplitter s(2, 1, 4, 1024);
  const auto streams = workload::partition_stream(source, s, 0, 1);

  ASSERT_EQ(streams.size(), 2u);
  for (std::uint32_t i = 0; i < 2; ++i) {
    double think = 0.0;
    for (const Request& r : streams[i].requests) think += r.think_us;
    EXPECT_EQ(think, 20.0) << "shard " << i;
  }
  // Shard 0 received the first (warmup-prefix) original; shard 1 did not.
  EXPECT_EQ(streams[0].warmup_requests, 1u);
  EXPECT_EQ(streams[1].warmup_requests, 0u);
  // Each shard: its own write + the broadcast flush.
  EXPECT_EQ(streams[0].requests.size(), 2u);
  EXPECT_EQ(streams[1].requests.size(), 2u);
}

TEST(PartitionStream, RoutingIsOrderPreserving) {
  std::vector<Request> reqs;
  for (std::uint64_t g = 0; g < 32; g += 4) {
    Request w;
    w.type = Request::Type::kWrite;
    w.sector = g;
    w.count = 4;
    reqs.push_back(w);
  }
  workload::VectorSource source(reqs);
  const ShardSplitter s(2, 1, 4, 1024);
  const auto streams = workload::partition_stream(source, s, 0, 0);
  for (const auto& stream : streams) {
    ASSERT_EQ(stream.requests.size(), 4u);
    for (std::size_t i = 1; i < stream.requests.size(); ++i)
      EXPECT_GT(stream.requests[i].sector, stream.requests[i - 1].sector);
  }
}

}  // namespace
}  // namespace esp
