#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace esp::workload {
namespace {

TEST(Trace, ParsesAllOpcodes) {
  std::istringstream in(
      "# comment line\n"
      "W 100 4 1\n"
      "W 200 1 0 2500\n"
      "R 300 2\n"
      "T 400 8\n"
      "F\n");
  const auto reqs = read_trace(in);
  ASSERT_EQ(reqs.size(), 5u);
  EXPECT_EQ(reqs[0].type, Request::Type::kWrite);
  EXPECT_EQ(reqs[0].sector, 100u);
  EXPECT_TRUE(reqs[0].sync);
  EXPECT_EQ(reqs[1].think_us, 2500.0);
  EXPECT_FALSE(reqs[1].sync);
  EXPECT_EQ(reqs[2].type, Request::Type::kRead);
  EXPECT_EQ(reqs[3].type, Request::Type::kTrim);
  EXPECT_EQ(reqs[4].type, Request::Type::kFlush);
}

TEST(Trace, RoundTripPreservesStream) {
  std::vector<Request> original = {
      {Request::Type::kWrite, 10, 4, true, 0.0},
      {Request::Type::kWrite, 20, 1, false, 100.0},
      {Request::Type::kRead, 30, 2, false, 0.0},
      {Request::Type::kTrim, 40, 8, false, 0.0},
      {Request::Type::kFlush, 0, 0, false, 0.0},
  };
  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  const auto parsed = read_trace(in);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].type, original[i].type) << i;
    EXPECT_EQ(parsed[i].sector, original[i].sector) << i;
    EXPECT_EQ(parsed[i].count, original[i].count) << i;
    EXPECT_EQ(parsed[i].sync, original[i].sync) << i;
    EXPECT_EQ(parsed[i].think_us, original[i].think_us) << i;
  }
}

TEST(Trace, MalformedLinesReportLineNumber) {
  std::istringstream bad1("W 100\n");
  try {
    read_trace(bad1);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  std::istringstream bad2("W 1 1 1\nX 2 3\n");
  try {
    read_trace(bad2);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Trace, ZeroCountWriteRejected) {
  std::istringstream in("W 5 0 1\n");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path/trace.txt"),
               std::runtime_error);
}

TEST(TraceReplay, ServesRequestsInOrder) {
  TraceReplay replay({{Request::Type::kWrite, 1, 1, true, 0.0},
                      {Request::Type::kRead, 2, 2, false, 0.0}});
  EXPECT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay.next()->sector, 1u);
  EXPECT_EQ(replay.next()->sector, 2u);
  EXPECT_FALSE(replay.next().has_value());
  replay.reset();
  EXPECT_EQ(replay.next()->sector, 1u);
}

}  // namespace
}  // namespace esp::workload
