#include "workload/trace_stats.h"

#include <gtest/gtest.h>

#include "workload/profiles.h"
#include "workload/synthetic.h"

namespace esp::workload {
namespace {

std::vector<Request> make(const std::vector<Request>& reqs) { return reqs; }

TEST(TraceStats, EmptyTrace) {
  const auto stats = analyze_trace({}, 4);
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.r_small(), 0.0);
  EXPECT_EQ(stats.footprint_sectors, 0u);
}

TEST(TraceStats, CountsRequestTypes) {
  const auto stats = analyze_trace(
      make({{Request::Type::kWrite, 0, 4, false, 0.0},
            {Request::Type::kWrite, 8, 1, true, 0.0},
            {Request::Type::kRead, 0, 2, false, 0.0},
            {Request::Type::kTrim, 0, 4, false, 0.0},
            {Request::Type::kFlush, 0, 0, false, 0.0}}),
      4);
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.writes, 2u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.trims, 1u);
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_EQ(stats.write_sectors, 5u);
}

TEST(TraceStats, RSmallAndRSynch) {
  const auto stats = analyze_trace(
      make({{Request::Type::kWrite, 0, 4, false, 0.0},   // large
            {Request::Type::kWrite, 10, 1, true, 0.0},   // small sync
            {Request::Type::kWrite, 20, 2, false, 0.0},  // small async
            {Request::Type::kWrite, 30, 1, true, 0.0}}), // small sync
      4);
  EXPECT_DOUBLE_EQ(stats.r_small(), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(stats.r_synch(), 2.0 / 3.0);
}

TEST(TraceStats, MisalignedLargeDetected) {
  const auto stats = analyze_trace(
      make({{Request::Type::kWrite, 2, 4, false, 0.0},   // misaligned 16K
            {Request::Type::kWrite, 4, 4, false, 0.0}}), // aligned
      4);
  EXPECT_EQ(stats.misaligned_large, 1u);
}

TEST(TraceStats, FootprintAndDistinct) {
  const auto stats = analyze_trace(
      make({{Request::Type::kWrite, 0, 2, false, 0.0},
            {Request::Type::kWrite, 0, 2, false, 0.0},  // rewrite
            {Request::Type::kWrite, 98, 2, false, 0.0}}),
      4);
  EXPECT_EQ(stats.footprint_sectors, 100u);
  EXPECT_EQ(stats.distinct_write_sectors, 4u);
}

TEST(TraceStats, SkewDetectsHotSectors) {
  std::vector<Request> reqs;
  // Sector 0 hammered 100x; sectors 1..99 once each.
  for (int i = 0; i < 100; ++i)
    reqs.push_back({Request::Type::kWrite, 0, 1, true, 0.0});
  for (std::uint64_t s = 1; s < 100; ++s)
    reqs.push_back({Request::Type::kWrite, s, 1, true, 0.0});
  const auto stats = analyze_trace(reqs, 4);
  EXPECT_GT(stats.write_skew_top10, 0.5);  // top 10 sectors >> 10% traffic
}

TEST(TraceStats, ProfilesClassifyLikeThePaper) {
  // Generate each paper profile and confirm the analyzer recovers its
  // design characteristics -- the round trip the esptrace tool relies on.
  struct Expect {
    Benchmark bench;
    double r_small;
    bool sync_heavy;
  };
  for (const Expect e : {Expect{Benchmark::kSysbench, 0.997, true},
                         Expect{Benchmark::kVarmail, 0.953, true},
                         Expect{Benchmark::kYcsb, 0.193, true}}) {
    auto params = benchmark_profile(e.bench, 1 << 16, 20000, 4, 5);
    SyntheticWorkload stream(params);
    std::vector<Request> reqs;
    while (const auto req = stream.next()) reqs.push_back(*req);
    const auto stats = analyze_trace(reqs, 4);
    EXPECT_NEAR(stats.r_small(), e.r_small, 0.03)
        << benchmark_name(e.bench);
    if (e.sync_heavy) {
      EXPECT_GT(stats.r_synch(), 0.85);
    }
  }
}

TEST(TraceStats, RecommendationMatchesRegime) {
  TraceStats sync_small;
  sync_small.writes = 100;
  sync_small.small_writes = 95;
  sync_small.sync_small_writes = 90;
  EXPECT_NE(sync_small.recommendation().find("subFTL"), std::string::npos);

  TraceStats bulk;
  bulk.writes = 100;
  bulk.small_writes = 2;
  EXPECT_NE(bulk.recommendation().find("cgmFTL"), std::string::npos);

  TraceStats async_small;
  async_small.writes = 100;
  async_small.small_writes = 90;
  async_small.sync_small_writes = 10;
  EXPECT_NE(async_small.recommendation().find("fgmFTL"), std::string::npos);
}

TEST(TraceStats, ReportMentionsKeyNumbers) {
  const auto stats = analyze_trace(
      make({{Request::Type::kWrite, 0, 1, true, 0.0}}), 4);
  const auto text = stats.report(4);
  EXPECT_NE(text.find("r_small"), std::string::npos);
  EXPECT_NE(text.find("1.000"), std::string::npos);
}

}  // namespace
}  // namespace esp::workload
