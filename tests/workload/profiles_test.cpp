// The profiles must reproduce the characteristics the paper reports for
// each benchmark (Table 1 row 1 in particular).
#include "workload/profiles.h"

#include <gtest/gtest.h>

namespace esp::workload {
namespace {

struct MeasuredMix {
  double small_fraction;
  double sync_small_fraction;
};

MeasuredMix measure(Benchmark bench) {
  auto params = benchmark_profile(bench, 1 << 16, 30000, 4, 7);
  SyntheticWorkload wl(params);
  std::size_t writes = 0, small = 0, sync_small = 0;
  while (const auto req = wl.next()) {
    if (req->type != Request::Type::kWrite) continue;
    ++writes;
    if (req->count < 4) {
      ++small;
      sync_small += req->sync;
    }
  }
  return {static_cast<double>(small) / writes,
          small ? static_cast<double>(sync_small) / small : 0.0};
}

class ProfileMix
    : public ::testing::TestWithParam<std::pair<Benchmark, double>> {};

TEST_P(ProfileMix, SmallWriteFractionMatchesTable1) {
  const auto [bench, expected] = GetParam();
  const auto mix = measure(bench);
  EXPECT_NEAR(mix.small_fraction, expected, 0.02)
      << benchmark_name(bench);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, ProfileMix,
    ::testing::Values(std::pair{Benchmark::kSysbench, 0.997},
                      std::pair{Benchmark::kVarmail, 0.953},
                      std::pair{Benchmark::kPostmark, 0.999},
                      std::pair{Benchmark::kYcsb, 0.193},
                      std::pair{Benchmark::kTpcc, 0.118}),
    [](const auto& info) {
      std::string name = benchmark_name(info.param.first);
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

TEST(Profiles, FileServerProfilesAreSyncHeavy) {
  // Paper Sec. 5: sync small writes are "more than 95%" of writes for
  // Sysbench, Varmail, Postmark.
  for (const auto bench : {Benchmark::kSysbench, Benchmark::kVarmail,
                           Benchmark::kPostmark})
    EXPECT_GT(measure(bench).sync_small_fraction, 0.90)
        << benchmark_name(bench);
}

TEST(Profiles, AllBenchmarksListedInPaperOrder) {
  const auto& all = all_benchmarks();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(benchmark_name(all[0]), "Sysbench");
  EXPECT_EQ(benchmark_name(all[4]), "TPC-C");
}

TEST(Profiles, ProfilesValidateCleanly) {
  for (const auto bench : all_benchmarks())
    EXPECT_NO_THROW(
        benchmark_profile(bench, 1 << 16, 1000, 4).validate());
}

TEST(Profiles, DatabaseProfilesHaveLargeSequentialWrites) {
  const auto ycsb = benchmark_profile(Benchmark::kYcsb, 1 << 16, 1000, 4);
  EXPECT_GT(ycsb.large_pages_max, 1u);
  EXPECT_LT(ycsb.r_small, 0.25);
}

}  // namespace
}  // namespace esp::workload
