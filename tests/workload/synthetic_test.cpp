#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace esp::workload {
namespace {

SyntheticParams base_params() {
  SyntheticParams p;
  p.footprint_sectors = 4096;
  p.request_count = 10000;
  p.seed = 1;
  return p;
}

TEST(SyntheticWorkload, EmitsExactlyRequestCount) {
  SyntheticWorkload wl(base_params());
  std::size_t n = 0;
  while (wl.next()) ++n;
  EXPECT_EQ(n, 10000u);
  EXPECT_FALSE(wl.next().has_value());
}

TEST(SyntheticWorkload, DeterministicForSeed) {
  SyntheticWorkload a(base_params()), b(base_params());
  for (int i = 0; i < 1000; ++i) {
    const auto ra = a.next(), rb = b.next();
    ASSERT_TRUE(ra && rb);
    EXPECT_EQ(ra->sector, rb->sector);
    EXPECT_EQ(ra->count, rb->count);
    EXPECT_EQ(ra->sync, rb->sync);
  }
}

TEST(SyntheticWorkload, ResetReplaysSameStream) {
  SyntheticWorkload wl(base_params());
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 100; ++i) first.push_back(wl.next()->sector);
  wl.reset();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(wl.next()->sector, first[i]);
}

TEST(SyntheticWorkload, RequestsStayInFootprint) {
  auto p = base_params();
  p.r_small = 0.5;
  p.read_fraction = 0.3;
  p.large_pages_max = 4;
  p.large_align_prob = 0.5;
  SyntheticWorkload wl(p);
  while (const auto req = wl.next()) {
    EXPECT_GT(req->count, 0u);
    EXPECT_LE(req->sector + req->count, p.footprint_sectors);
  }
}

TEST(SyntheticWorkload, RSmallControlsSmallFraction) {
  for (const double r_small : {0.0, 0.3, 1.0}) {
    auto p = base_params();
    p.r_small = r_small;
    SyntheticWorkload wl(p);
    std::size_t small = 0, writes = 0;
    while (const auto req = wl.next()) {
      if (req->type != Request::Type::kWrite) continue;
      ++writes;
      small += (req->count < p.sectors_per_page);
    }
    EXPECT_NEAR(static_cast<double>(small) / writes, r_small, 0.03);
  }
}

TEST(SyntheticWorkload, RSynchControlsSyncFraction) {
  auto p = base_params();
  p.r_small = 1.0;
  p.r_synch = 0.4;
  SyntheticWorkload wl(p);
  std::size_t sync = 0, total = 0;
  while (const auto req = wl.next()) {
    ++total;
    sync += req->sync;
  }
  EXPECT_NEAR(static_cast<double>(sync) / total, 0.4, 0.03);
}

TEST(SyntheticWorkload, ReadFractionRespected) {
  auto p = base_params();
  p.read_fraction = 0.5;
  SyntheticWorkload wl(p);
  std::size_t reads = 0, total = 0;
  while (const auto req = wl.next()) {
    ++total;
    reads += (req->type == Request::Type::kRead);
  }
  EXPECT_NEAR(static_cast<double>(reads) / total, 0.5, 0.03);
}

TEST(SyntheticWorkload, AlignedLargeWritesWhenProbOne) {
  auto p = base_params();
  p.r_small = 0.0;
  p.large_align_prob = 1.0;
  SyntheticWorkload wl(p);
  while (const auto req = wl.next())
    EXPECT_EQ(req->sector % p.sectors_per_page, 0u);
}

TEST(SyntheticWorkload, MisalignedLargeWritesWhenProbZero) {
  auto p = base_params();
  p.r_small = 0.0;
  p.large_align_prob = 0.0;
  SyntheticWorkload wl(p);
  std::size_t misaligned = 0, total = 0;
  while (const auto req = wl.next()) {
    ++total;
    misaligned += (req->sector % p.sectors_per_page) != 0;
  }
  EXPECT_GT(static_cast<double>(misaligned) / total, 0.9);
}

TEST(SyntheticWorkload, SmallWritesSkewHot) {
  auto p = base_params();
  p.r_small = 1.0;
  p.small_zipf_theta = 0.95;
  SyntheticWorkload wl(p);
  std::map<std::uint64_t, int> counts;
  while (const auto req = wl.next()) ++counts[req->sector];
  int max_count = 0;
  for (const auto& [sector, count] : counts)
    max_count = std::max(max_count, count);
  // Hot sector hit far more than the uniform expectation.
  EXPECT_GT(max_count, 10000 / 4096 * 20);
}

TEST(SyntheticWorkload, ThinkTimePropagated) {
  auto p = base_params();
  p.think_us = 123.0;
  SyntheticWorkload wl(p);
  EXPECT_EQ(wl.next()->think_us, 123.0);
}

TEST(SyntheticParams, ValidationCatchesNonsense) {
  auto p = base_params();
  p.r_small = 1.5;
  EXPECT_THROW(SyntheticWorkload{p}, std::invalid_argument);
  p = base_params();
  p.small_sectors_max = p.sectors_per_page;  // not "small" any more
  EXPECT_THROW(SyntheticWorkload{p}, std::invalid_argument);
  p = base_params();
  p.request_count = 0;
  EXPECT_THROW(SyntheticWorkload{p}, std::invalid_argument);
}

TEST(SyntheticWorkload, SmallFootprintFractionBoundsDistinctTargets) {
  auto p = base_params();
  p.r_small = 1.0;
  p.small_footprint_fraction = 0.05;  // 51 of 1024 lpns
  SyntheticWorkload wl(p);
  std::set<std::uint64_t> lpns;
  while (const auto req = wl.next()) lpns.insert(req->sector / 4);
  EXPECT_LE(lpns.size(), 52u);
  // And the hot set is scattered, not the first 51 lpns.
  std::uint64_t max_lpn = 0;
  for (const auto lpn : lpns) max_lpn = std::max(max_lpn, lpn);
  EXPECT_GT(max_lpn, 100u);
}

TEST(SyntheticWorkload, ReadsFollowSmallWorkingSet) {
  auto p = base_params();
  p.r_small = 1.0;
  p.read_fraction = 0.5;
  p.small_footprint_fraction = 0.05;
  p.reads_follow_small = true;
  SyntheticWorkload wl(p);
  std::set<std::uint64_t> write_lpns, read_lpns;
  while (const auto req = wl.next()) {
    (req->type == Request::Type::kRead ? read_lpns : write_lpns)
        .insert(req->sector / 4);
  }
  // Every read target lies inside the small-write working set.
  for (const auto lpn : read_lpns)
    EXPECT_TRUE(write_lpns.contains(lpn) || read_lpns.size() < 3)
        << "read lpn " << lpn << " outside working set";
}

TEST(SyntheticWorkload, SmallWritesAlignedToTheirSize) {
  auto p = base_params();
  p.r_small = 1.0;
  p.small_sectors_min = 2;
  p.small_sectors_max = 2;
  SyntheticWorkload wl(p);
  while (const auto req = wl.next())
    EXPECT_EQ(req->sector % 2, 0u) << "8-KB append must be 8-KB aligned";
}

TEST(SyntheticWorkload, TrimFractionEmitsAlignedWholePageTrims) {
  auto p = base_params();
  p.trim_fraction = 0.2;
  SyntheticWorkload wl(p);
  std::size_t trims = 0, total = 0;
  while (const auto req = wl.next()) {
    ++total;
    if (req->type != Request::Type::kTrim) continue;
    ++trims;
    EXPECT_EQ(req->sector % p.sectors_per_page, 0u);
    EXPECT_EQ(req->count, p.sectors_per_page);
  }
  EXPECT_NEAR(static_cast<double>(trims) / total, 0.2, 0.03);
}

TEST(SyntheticParams, TrimPlusReadMustLeaveRoomForWrites) {
  auto p = base_params();
  p.read_fraction = 0.6;
  p.trim_fraction = 0.5;
  EXPECT_THROW(SyntheticWorkload{p}, std::invalid_argument);
}

}  // namespace
}  // namespace esp::workload
