#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

namespace esp::telemetry {
namespace {

OpEvent op(OpKind kind, SimTime start, SimTime end) {
  OpEvent e;
  e.kind = kind;
  e.start = start;
  e.end = end;
  return e;
}

TEST(Telemetry, RecordOpFeedsHistogramAndTrace) {
  Telemetry tel;
  tel.record_op(op(OpKind::kRead, 100.0, 180.0));
  tel.record_op(op(OpKind::kRead, 200.0, 300.0));

  const util::Histogram* h =
      tel.registry().find_histogram("op/read/latency_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total(), 2u);
  EXPECT_EQ(tel.trace().size(), 2u);
  EXPECT_EQ(tel.trace().at(0).kind, OpKind::kRead);
  EXPECT_DOUBLE_EQ(tel.trace().at(0).dur_us, 80.0);
}

TEST(Telemetry, ChildOpsTaggedWithCurrentRequest) {
  Telemetry tel;
  const std::uint32_t id = tel.begin_request(10.0);
  EXPECT_EQ(id, 1u);
  tel.record_op(op(OpKind::kProgSub, 10.0, 60.0));
  tel.end_request(OpKind::kHostWrite, 10.0, 60.0, /*arg0=*/3, /*arg1=*/128);
  // After the request closes, untagged ops carry request 0.
  tel.record_op(op(OpKind::kErase, 100.0, 2100.0));

  ASSERT_EQ(tel.trace().size(), 3u);
  EXPECT_EQ(tel.trace().at(0).request_id, id);          // child
  EXPECT_EQ(tel.trace().at(1).kind, OpKind::kHostWrite);  // span itself
  EXPECT_EQ(tel.trace().at(1).request_id, id);
  EXPECT_EQ(tel.trace().at(2).request_id, 0u);
  EXPECT_EQ(tel.requests_started(), 1u);
  EXPECT_EQ(tel.begin_request(70.0), 2u);
}

TEST(Telemetry, HarvestWindowComputesAndResets) {
  Telemetry tel;
  for (int i = 1; i <= 100; ++i)
    tel.record_op(op(OpKind::kRead, 0.0, 25.0 * i));

  Sample s;
  tel.harvest_window(s);
  const auto read = static_cast<std::size_t>(OpKind::kRead);
  EXPECT_GT(s.op_p50_us[read], 1000.0);
  EXPECT_GT(s.op_p99_us[read], s.op_p50_us[read]);
  EXPECT_GT(s.all_ops_p99_us, 0.0);

  // Window reset: a second harvest with no new ops reports zeros...
  Sample empty;
  tel.harvest_window(empty);
  EXPECT_EQ(empty.op_p50_us[read], 0.0);
  // ...while the cumulative registry histogram keeps everything.
  EXPECT_EQ(tel.registry().find_histogram("op/read/latency_us")->total(),
            100u);
}

}  // namespace
}  // namespace esp::telemetry
