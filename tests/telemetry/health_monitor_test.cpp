// HealthMonitor unit tests: stream framing (hdr/epoch/b/smart/end), delta
// encoding of block rows, GC-victim attribution from the event feed,
// epoch cadence, and trailer idempotence.
#include "telemetry/health.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace esp::telemetry {
namespace {

HealthHeader tiny_header(SimTime interval_us = 0.0) {
  HealthHeader h;
  h.ftl = "subFTL";
  h.chips = 2;
  h.blocks_per_chip = 3;
  h.pages_per_block = 4;
  h.subpages_per_page = 4;
  h.seed = 42;
  h.interval_us = interval_us;
  h.rated_pe = 100;
  return h;
}

std::vector<std::string> lines_of(const std::ostringstream& os) {
  std::vector<std::string> out;
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

OpEvent flash_event(OpKind kind, std::uint32_t chip, std::uint32_t block,
                    std::uint64_t arg0 = 0) {
  OpEvent e;
  e.kind = kind;
  e.chip = chip;
  e.block = block;
  e.arg0 = arg0;
  return e;
}

TEST(HealthMonitor, WritesHeaderOnConstruction) {
  std::ostringstream os;
  HealthMonitor hm(os, tiny_header(250.0));
  const auto lines = lines_of(os);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"t\":\"hdr\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"kind\":\"health\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ftl\":\"subFTL\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"chips\":2"), std::string::npos);
  EXPECT_NE(lines[0].find("\"blocks_per_chip\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"interval_us\":250"), std::string::npos);
  EXPECT_NE(lines[0].find("\"rated_pe\":100"), std::string::npos);
  EXPECT_EQ(hm.lines_written(), 1u);
}

TEST(HealthMonitor, DeltaEncodingEmitsOnlyChangedRows) {
  std::ostringstream os;
  HealthMonitor hm(os, tiny_header());
  hm.start(0.0);

  // Epoch 0: two blocks differ from the pristine default.
  auto rows = hm.begin_epoch();
  ASSERT_EQ(rows.size(), 6u);
  rows[1].pe = 7;
  rows[1].pool = static_cast<std::uint8_t>(HealthPool::kFull);
  rows[4].valid = 3;
  rows[4].valid_cap = 4;
  hm.commit_epoch(100.0, 5);
  std::string out = os.str();
  EXPECT_EQ(hm.epochs_written(), 1u);
  EXPECT_NE(out.find("\"t\":\"epoch\",\"i\":0"), std::string::npos);
  EXPECT_NE(out.find("\"t\":\"b\",\"i\":1,\"pe\":7,\"pool\":\"full\""),
            std::string::npos);
  EXPECT_NE(out.find("\"t\":\"b\",\"i\":4,"), std::string::npos);
  // Unchanged default blocks are never emitted.
  EXPECT_EQ(out.find("\"t\":\"b\",\"i\":0,"), std::string::npos);
  EXPECT_EQ(out.find("\"t\":\"b\",\"i\":5,"), std::string::npos);

  // Epoch 1: identical rows -> no b lines at all; only block 4 changes in
  // epoch 2 -> exactly one b line.
  const auto count_b = [&] {
    std::size_t n = 0, pos = 0;
    const std::string needle = "\"t\":\"b\"";
    while ((pos = os.str().find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  rows = hm.begin_epoch();
  rows[1].pe = 7;
  rows[1].pool = static_cast<std::uint8_t>(HealthPool::kFull);
  rows[4].valid = 3;
  rows[4].valid_cap = 4;
  hm.commit_epoch(200.0, 5);
  EXPECT_EQ(count_b(), 2u);

  rows = hm.begin_epoch();
  rows[1].pe = 7;
  rows[1].pool = static_cast<std::uint8_t>(HealthPool::kFull);
  rows[4].valid = 1;
  rows[4].valid_cap = 4;
  hm.commit_epoch(300.0, 5);
  EXPECT_EQ(count_b(), 3u);
  EXPECT_EQ(hm.epochs_written(), 3u);
}

TEST(HealthMonitor, FirstProgramFieldOmittedWhenUnset) {
  std::ostringstream os;
  HealthMonitor hm(os, tiny_header());
  hm.start(0.0);
  auto rows = hm.begin_epoch();
  rows[0].pe = 1;                  // emitted, no first program
  rows[2].pe = 1;
  rows[2].first_program_us = 55.5;  // emitted with fp
  hm.commit_epoch(100.0, 0);
  const std::string out = os.str();
  const std::size_t row0 = out.find("\"t\":\"b\",\"i\":0,");
  ASSERT_NE(row0, std::string::npos);
  const std::size_t row0_end = out.find('\n', row0);
  EXPECT_EQ(out.substr(row0, row0_end - row0).find("\"fp\":"),
            std::string::npos);
  EXPECT_NE(out.find("\"fp\":55.5"), std::string::npos);
}

TEST(HealthMonitor, GcVictimCountsFromEventFeed) {
  std::ostringstream os;
  HealthMonitor hm(os, tiny_header());
  hm.start(0.0);
  // Two GC erases of chip 1 block 2 (row index 1*3+2 = 5), one host-cause
  // erase of the same block (not a GC victim), one GC erase elsewhere.
  hm.on_op(flash_event(OpKind::kErase, 1, 2, 1), Cause::kGcCopy);
  hm.on_op(flash_event(OpKind::kErase, 1, 2, 2), Cause::kGcCopy);
  hm.on_op(flash_event(OpKind::kErase, 1, 2, 3), Cause::kHost);
  hm.on_op(flash_event(OpKind::kErase, 0, 0, 1), Cause::kGcCopy);
  auto rows = hm.begin_epoch();
  rows[5].pe = 3;
  hm.commit_epoch(100.0, 0);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"t\":\"b\",\"i\":5,\"pe\":3,"), std::string::npos);
  EXPECT_NE(out.find("\"gcv\":2"), std::string::npos);
  // Row 0 changed only via its victim count -> still emitted.
  EXPECT_NE(out.find("\"t\":\"b\",\"i\":0,"), std::string::npos);
}

TEST(HealthMonitor, SmartLineAggregatesWindowAndWear) {
  std::ostringstream os;
  HealthMonitor hm(os, tiny_header());
  hm.start(0.0);
  // Window: 8 host sectors, 1 full + 2 sub programs under host, 1 full
  // program under GC, 2 erases, 4 retention-evicted sectors.
  OpEvent host;
  host.kind = OpKind::kHostWrite;
  host.arg0 = 8;
  hm.on_op(host, Cause::kHost);
  hm.on_op(flash_event(OpKind::kProgFull, 0, 0), Cause::kHost);
  hm.on_op(flash_event(OpKind::kProgSub, 0, 0), Cause::kHost);
  hm.on_op(flash_event(OpKind::kProgSub, 0, 0), Cause::kHost);
  hm.on_op(flash_event(OpKind::kProgFull, 0, 1), Cause::kGcCopy);
  hm.on_op(flash_event(OpKind::kErase, 0, 0, 1), Cause::kGcCopy);
  hm.on_op(flash_event(OpKind::kErase, 0, 1, 1), Cause::kGcCopy);
  OpEvent evict;
  evict.kind = OpKind::kRetentionEvict;
  evict.arg0 = 4;
  hm.on_op(evict, Cause::kRetentionEvict);

  auto rows = hm.begin_epoch();
  rows[0].pe = 1;
  rows[1].pe = 3;
  hm.commit_epoch(2e6, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"t\":\"smart\""), std::string::npos);
  EXPECT_NE(out.find("\"spare_blocks\":10"), std::string::npos);
  // 6 blocks, pe = {1,3,0,0,0,0}: mean 4/6, max 3.
  EXPECT_NE(out.find("\"pe_min\":0"), std::string::npos);
  EXPECT_NE(out.find("\"pe_max\":3"), std::string::npos);
  EXPECT_NE(out.find("\"host_sectors\":8"), std::string::npos);
  // Full programs count subpages_per_page (4) sectors, sub programs 1:
  // host = 1*4 + 2 = 6, gc_copy = 4, total flash = 10, WAF = 10/8.
  EXPECT_NE(out.find("\"host\":6"), std::string::npos);
  EXPECT_NE(out.find("\"gc_copy\":4"), std::string::npos);
  EXPECT_NE(out.find("\"flash_sectors\":10"), std::string::npos);
  EXPECT_NE(out.find("\"overall_waf\":1.25"), std::string::npos);
  EXPECT_NE(out.find("\"erases\":2"), std::string::npos);
  EXPECT_NE(out.find("\"retention_evict_sectors\":4"), std::string::npos);
  // media_wear_pct = 100 * mean_pe / rated = 100 * (4/6) / 100.
  EXPECT_NE(out.find("\"media_wear_pct\":0.66"), std::string::npos);

  // The window resets: a second epoch with no events reports zero host
  // sectors and WAF 1 (the no-traffic convention).
  hm.begin_epoch();
  hm.commit_epoch(4e6, 10);
  const std::string tail = os.str().substr(out.size());
  EXPECT_NE(tail.find("\"host_sectors\":0"), std::string::npos);
  EXPECT_NE(tail.find("\"overall_waf\":1,"), std::string::npos);
}

TEST(HealthMonitor, EpochCadence) {
  std::ostringstream os;
  HealthMonitor hm(os, tiny_header(1000.0));
  hm.start(500.0);
  EXPECT_FALSE(hm.due(600.0));
  EXPECT_TRUE(hm.due(1500.0));
  hm.begin_epoch();
  hm.commit_epoch(1500.0, 0);
  EXPECT_FALSE(hm.due(2400.0));
  EXPECT_TRUE(hm.due(2500.0));
  // A long stall re-arms past `now`, not epoch-by-epoch.
  hm.begin_epoch();
  hm.commit_epoch(9800.0, 0);
  EXPECT_FALSE(hm.due(10000.0));
  EXPECT_TRUE(hm.due(10500.0));

  // Interval 0 = endpoint epochs only: never due.
  std::ostringstream os2;
  HealthMonitor endpoint(os2, tiny_header(0.0));
  endpoint.start(0.0);
  EXPECT_FALSE(endpoint.due(1e12));
}

TEST(HealthMonitor, FinishTrailerIsIdempotentAndCountsLines) {
  std::ostringstream os;
  HealthMonitor hm(os, tiny_header());
  hm.start(0.0);
  auto rows = hm.begin_epoch();
  rows[0].pe = 1;
  hm.commit_epoch(100.0, 0);
  hm.finish();
  const std::string once = os.str();
  hm.finish();
  EXPECT_EQ(os.str(), once) << "finish() must be idempotent";
  const auto lines = lines_of(os);
  // hdr + epoch + 1 b row + smart + end.
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines.back().find("\"t\":\"end\",\"epochs\":1,\"lines\":5"),
            std::string::npos);
  EXPECT_EQ(hm.lines_written(), 5u);
}

}  // namespace
}  // namespace esp::telemetry
