// ForensicsCollector unit tests (issue satellite): the interval sweep
// (overlap, priority, clipping, burst coalescing), the bit-exact
// phase-sum invariant under randomized op patterns, the slowest-N
// tie-break discipline and the windowed blame decomposition.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/forensics.h"

namespace esp::telemetry {
namespace {

constexpr std::size_t kQueueWait =
    static_cast<std::size_t>(Phase::kQueueWait);
constexpr std::size_t kMediaRead =
    static_cast<std::size_t>(Phase::kMediaRead);
constexpr std::size_t kMediaProg =
    static_cast<std::size_t>(Phase::kMediaProg);
constexpr std::size_t kRmwRead = static_cast<std::size_t>(Phase::kRmwRead);
constexpr std::size_t kStallGc = static_cast<std::size_t>(Phase::kStallGc);
constexpr std::size_t kBufferWait =
    static_cast<std::size_t>(Phase::kBufferWait);

ForensicsHeader test_header() {
  ForensicsHeader h;
  h.ftl = "testFTL";
  h.chips = 2;
  h.blocks_per_chip = 8;
  h.pages_per_block = 16;
  h.subpages_per_page = 4;
  h.page_bytes = 16384;
  h.seed = 1;
  return h;
}

OpEvent flash_op(OpKind kind, SimTime start, SimTime end,
                 std::uint32_t chip = 0, std::uint32_t block = 0) {
  OpEvent e;
  e.kind = kind;
  e.start = start;
  e.end = end;
  e.chip = chip;
  e.block = block;
  return e;
}

/// A one-frame cause chain (the driver hands the facade's live stack).
std::vector<CauseFrame> chain_of(Cause cause) {
  if (cause == Cause::kHost) return {};
  CauseFrame f;
  f.cause = cause;
  return {f};
}

void feed_op(ForensicsCollector& fc, OpKind kind, Cause cause, SimTime start,
             SimTime end, std::uint32_t chip = 0, std::uint32_t block = 0) {
  const auto chain = chain_of(cause);
  fc.on_op(flash_op(kind, start, end, chip, block), cause, chain);
}

/// Lines of type `t` ("ex", "blame", ...) from the captured stream.
std::vector<std::string> lines_of_type(const std::string& dump,
                                       const std::string& type) {
  std::vector<std::string> out;
  std::istringstream is(dump);
  std::string line;
  const std::string tag = "\"t\":\"" + type + "\"";
  while (std::getline(is, line))
    if (line.find(tag) != std::string::npos) out.push_back(line);
  return out;
}

TEST(Forensics, SingleReadDecomposesIntoQueueWaitPlusMediaRead) {
  std::ostringstream os;
  ForensicsCollector fc(os, test_header(), {});
  fc.begin_request(1, /*arrival=*/0.0, /*issue=*/16.0, /*tenant=*/0);
  feed_op(fc, OpKind::kRead, Cause::kHost, 16.0, 48.0);
  fc.end_request(OpKind::kHostRead, 48.0);

  const auto blame = fc.tenant_blame();
  ASSERT_EQ(blame.size(), 1u);
  EXPECT_EQ(blame[0].requests, 1u);
  EXPECT_EQ(blame[0].phase_us[kQueueWait], 16.0);
  EXPECT_EQ(blame[0].phase_us[kMediaRead], 32.0);
  EXPECT_EQ(blame[0].phase_us[kBufferWait], 0.0);
  EXPECT_EQ(fc.reconcile_failures(), 0u);
}

TEST(Forensics, StallOutranksOverlappingHostMediaWork) {
  std::ostringstream os;
  ForensicsCollector fc(os, test_header(), {});
  fc.begin_request(1, 0.0, 0.0, 0);
  // Host read spans [0,64); a GC program overlaps [16,32). The overlapped
  // slice must charge to stall_gc, not media_read.
  feed_op(fc, OpKind::kRead, Cause::kHost, 0.0, 64.0);
  feed_op(fc, OpKind::kProgFull, Cause::kGcCopy, 16.0, 32.0);
  fc.end_request(OpKind::kHostRead, 64.0);

  const auto blame = fc.tenant_blame();
  ASSERT_EQ(blame.size(), 1u);
  EXPECT_EQ(blame[0].phase_us[kMediaRead], 48.0);
  EXPECT_EQ(blame[0].phase_us[kStallGc], 16.0);
  EXPECT_EQ(fc.reconcile_failures(), 0u);
}

TEST(Forensics, RmwScopeSplitsReadsFromProgramHalf) {
  std::ostringstream os;
  ForensicsCollector fc(os, test_header(), {});
  fc.begin_request(1, 0.0, 0.0, 0);
  feed_op(fc, OpKind::kRead, Cause::kRmw, 0.0, 32.0);      // rmw_read
  feed_op(fc, OpKind::kProgFull, Cause::kRmw, 32.0, 48.0);  // media_prog
  fc.end_request(OpKind::kHostWrite, 48.0);

  const auto blame = fc.tenant_blame();
  EXPECT_EQ(blame[0].phase_us[kRmwRead], 32.0);
  EXPECT_EQ(blame[0].phase_us[kMediaProg], 16.0);
  EXPECT_EQ(blame[0].phase_us[kMediaRead], 0.0);
}

TEST(Forensics, UncoveredServiceTimeLandsInBufferWait) {
  std::ostringstream os;
  ForensicsCollector fc(os, test_header(), {});
  fc.begin_request(1, 0.0, 8.0, 0);
  feed_op(fc, OpKind::kProgFull, Cause::kHost, 24.0, 40.0);
  fc.end_request(OpKind::kHostWrite, 56.0);

  const auto blame = fc.tenant_blame();
  EXPECT_EQ(blame[0].phase_us[kQueueWait], 8.0);
  EXPECT_EQ(blame[0].phase_us[kMediaProg], 16.0);
  EXPECT_EQ(blame[0].phase_us[kBufferWait], 32.0);
}

TEST(Forensics, OpsClipToTheServiceWindow) {
  std::ostringstream os;
  ForensicsCollector fc(os, test_header(), {});
  // A buffered write's flush op can start before this request's issue and
  // outlive its completion; only the [issue, done) slice charges.
  fc.begin_request(1, 0.0, 32.0, 0);
  feed_op(fc, OpKind::kRead, Cause::kHost, 0.0, 100.0);
  fc.end_request(OpKind::kHostRead, 64.0);

  const auto blame = fc.tenant_blame();
  EXPECT_EQ(blame[0].phase_us[kQueueWait], 32.0);
  EXPECT_EQ(blame[0].phase_us[kMediaRead], 32.0);
}

TEST(Forensics, CoalescedBurstChargesTheExactUnion) {
  std::ostringstream os;
  ForensicsCollector::Config cfg;
  cfg.audit = true;
  ForensicsCollector fc(os, test_header(), cfg);
  fc.begin_request(1, 0.0, 0.0, 0);
  // A GC burst: 300 abutting ops, alternating reads and programs, each on
  // its own block. All classify to stall_gc and coalesce into one
  // segment; phase charge is the union [0, 300).
  for (int i = 0; i < 300; ++i)
    feed_op(fc, i % 2 ? OpKind::kProgFull : OpKind::kRead, Cause::kGcCopy,
            static_cast<double>(i), static_cast<double>(i + 1),
            /*chip=*/0, /*block=*/static_cast<std::uint32_t>(i));
  feed_op(fc, OpKind::kRead, Cause::kHost, 300.0, 350.0);
  fc.end_request(OpKind::kHostWrite, 350.0);
  fc.finish();

  const auto blame = fc.tenant_blame();
  EXPECT_EQ(blame[0].phase_us[kStallGc], 300.0);
  EXPECT_EQ(blame[0].phase_us[kMediaRead], 50.0);
  EXPECT_EQ(fc.reconcile_failures(), 0u);

  // The exemplar records both distinct chains, all 300 first contacts in
  // blocks_touched, and the bounded 16-address list.
  const auto exs = lines_of_type(os.str(), "ex");
  ASSERT_EQ(exs.size(), 1u);
  EXPECT_NE(exs[0].find("\"chains\":[\"gc_copy\",\"\"]"), std::string::npos)
      << exs[0];
  EXPECT_NE(exs[0].find("\"blocks_touched\":300"), std::string::npos)
      << exs[0];
  std::size_t addrs = 0;
  for (std::size_t pos = exs[0].find("\"0:");
       pos != std::string::npos; pos = exs[0].find("\"0:", pos + 1))
    ++addrs;
  EXPECT_EQ(addrs, 16u);
}

TEST(Forensics, RandomizedSweepsReconcileBitExactly) {
  // The online invariant under adversarial floats: random arrival/issue
  // offsets, random overlapping op intervals with irrational-ish
  // durations, every cause/kind mix. audit=true turns any reconciliation
  // miss into a throw; reconcile_failures() must stay 0.
  std::ostringstream os;
  ForensicsCollector::Config cfg;
  cfg.audit = true;
  cfg.window_requests = 256;
  ForensicsCollector fc(os, test_header(), cfg);
  std::mt19937 rng(20260808u);
  std::uniform_real_distribution<double> dur(0.001, 977.31);
  std::uniform_int_distribution<int> ops(0, 12);
  std::uniform_int_distribution<int> pick(0, 6);
  const Cause causes[] = {Cause::kHost,       Cause::kRmw,
                          Cause::kFlush,      Cause::kGcCopy,
                          Cause::kForwardMigration,
                          Cause::kRetentionEvict, Cause::kWearLevel};
  const OpKind kinds[] = {OpKind::kRead, OpKind::kProgFull, OpKind::kProgSub,
                          OpKind::kErase};
  double now = 0.0;
  for (std::uint32_t id = 1; id <= 2000; ++id) {
    const double arrival = now + dur(rng) * 0.25;
    const double issue = arrival + dur(rng) * 0.125;
    fc.begin_request(id, arrival, issue, static_cast<std::uint16_t>(id % 3));
    double done = issue + dur(rng) * 0.0625;
    const int n = ops(rng);
    for (int i = 0; i < n; ++i) {
      const double s = issue + dur(rng) * 0.5 - 100.0;  // may precede issue
      const double e = s + dur(rng);
      feed_op(fc, kinds[pick(rng) % 4], causes[pick(rng)], s, e,
              static_cast<std::uint32_t>(i % 2),
              static_cast<std::uint32_t>(i));
      done = std::max(done, e - dur(rng) * 0.01);  // ops may outlive done
    }
    ASSERT_NO_THROW(fc.end_request(OpKind::kHostWrite, done)) << id;
    now = arrival;
  }
  fc.finish();
  EXPECT_EQ(fc.requests(), 2000u);
  EXPECT_EQ(fc.reconcile_failures(), 0u);
}

TEST(Forensics, TopKTiesBreakTowardSmallerRequestId) {
  std::ostringstream os;
  ForensicsCollector::Config cfg;
  cfg.top_k = 4;
  ForensicsCollector fc(os, test_header(), cfg);
  // Eight identical-response requests, ids 1..8 arriving out of order:
  // the retained four must be ids 1,2,3,4 regardless of arrival order.
  for (const std::uint32_t id : {5u, 2u, 8u, 1u, 6u, 3u, 7u, 4u}) {
    fc.begin_request(id, 0.0, 0.0, 0);
    feed_op(fc, OpKind::kRead, Cause::kHost, 0.0, 100.0);
    fc.end_request(OpKind::kHostRead, 100.0);
  }
  fc.finish();

  const auto exs = lines_of_type(os.str(), "ex");
  ASSERT_EQ(exs.size(), 4u);
  for (std::uint32_t rank = 1; rank <= 4; ++rank) {
    const std::string want = "{\"t\":\"ex\",\"rank\":" + std::to_string(rank) +
                             ",\"req\":" + std::to_string(rank) + ",";
    EXPECT_EQ(exs[rank - 1].rfind(want, 0), 0u) << exs[rank - 1];
  }
}

TEST(Forensics, ExemplarsRankSlowestFirst) {
  std::ostringstream os;
  ForensicsCollector::Config cfg;
  cfg.top_k = 3;
  ForensicsCollector fc(os, test_header(), cfg);
  const double responses[] = {10.0, 50.0, 30.0, 20.0, 40.0};
  std::uint32_t id = 0;
  for (const double r : responses) {
    fc.begin_request(++id, 0.0, 0.0, 0);
    feed_op(fc, OpKind::kRead, Cause::kHost, 0.0, r);
    fc.end_request(OpKind::kHostRead, r);
  }
  fc.finish();
  EXPECT_EQ(fc.exemplars_retained(), 3u);
  EXPECT_EQ(fc.truncated(), 2u);

  const auto exs = lines_of_type(os.str(), "ex");
  ASSERT_EQ(exs.size(), 3u);
  EXPECT_NE(exs[0].find("\"response_us\":50"), std::string::npos) << exs[0];
  EXPECT_NE(exs[1].find("\"response_us\":40"), std::string::npos) << exs[1];
  EXPECT_NE(exs[2].find("\"response_us\":30"), std::string::npos) << exs[2];
}

TEST(Forensics, WindowBlameSumsTheSlowestOnePercent) {
  std::ostringstream os;
  ForensicsCollector::Config cfg;
  cfg.window_requests = 200;  // tail = ceil(200/100) = 2 requests
  ForensicsCollector fc(os, test_header(), cfg);
  // 198 fast reads plus two slow outliers with disjoint phase signatures:
  // the blame tail must be exactly outlier1 + outlier2.
  for (std::uint32_t id = 1; id <= 198; ++id) {
    const double base = id * 10.0;
    fc.begin_request(id, base, base, 0);
    feed_op(fc, OpKind::kRead, Cause::kHost, base, base + 5.0);
    fc.end_request(OpKind::kHostRead, base + 5.0);
  }
  fc.begin_request(199, 3000.0, 3000.0, 0);
  feed_op(fc, OpKind::kRead, Cause::kGcCopy, 3000.0, 4000.0);  // stall_gc
  fc.end_request(OpKind::kHostRead, 4000.0);
  fc.begin_request(200, 5000.0, 5000.0, 0);
  feed_op(fc, OpKind::kRead, Cause::kRmw, 5000.0, 5900.0);  // rmw_read
  fc.end_request(OpKind::kHostWrite, 5900.0);

  EXPECT_EQ(fc.windows_written(), 1u);  // closed inline at request 200
  const auto blames = lines_of_type(os.str(), "blame");
  ASSERT_EQ(blames.size(), 1u);
  EXPECT_NE(blames[0].find("\"requests\":200"), std::string::npos);
  EXPECT_NE(blames[0].find("\"tail_requests\":2"), std::string::npos);
  EXPECT_NE(blames[0].find("\"p99_us\":900"), std::string::npos)
      << blames[0];
  EXPECT_NE(blames[0].find("\"stall_gc_us\":1000"), std::string::npos);
  EXPECT_NE(blames[0].find("\"rmw_read_us\":900"), std::string::npos);
  EXPECT_NE(blames[0].find("\"media_read_us\":0,"), std::string::npos);
}

TEST(Forensics, PerTenantBlameAndTailAreSeparate) {
  std::ostringstream os;
  ForensicsCollector::Config cfg;
  cfg.top_k = 2;
  ForensicsCollector fc(os, test_header(), cfg);
  for (std::uint32_t id = 1; id <= 6; ++id) {
    const auto tenant = static_cast<std::uint16_t>(id % 2);
    const double base = id * 100.0;
    const double resp = tenant == 0 ? 40.0 : 10.0 + id;
    fc.begin_request(id, base, base, tenant);
    feed_op(fc, OpKind::kRead, Cause::kHost, base, base + resp);
    fc.end_request(OpKind::kHostRead, base + resp);
  }
  fc.finish();

  const auto blame = fc.tenant_blame();
  ASSERT_EQ(blame.size(), 2u);
  EXPECT_EQ(blame[0].requests, 3u);
  EXPECT_EQ(blame[1].requests, 3u);
  EXPECT_EQ(blame[0].phase_us[kMediaRead], 120.0);
  EXPECT_EQ(blame[0].tail_requests, 2u);
  EXPECT_EQ(blame[0].worst_response_us, 40.0);
  EXPECT_EQ(blame[1].worst_response_us, 15.0);  // id 5, tenant 1
  // Multi-tenant streams carry per-tenant tnt lines.
  EXPECT_EQ(lines_of_type(os.str(), "tnt").size(), 2u);
}

}  // namespace
}  // namespace esp::telemetry
