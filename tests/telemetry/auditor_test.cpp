#include "telemetry/auditor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace esp::telemetry {
namespace {

AuditorConfig config(bool fail_fast = true) {
  AuditorConfig cfg;
  cfg.chips = 2;
  cfg.blocks_per_chip = 4;
  cfg.pages_per_block = 4;
  cfg.subpages_per_page = 4;
  cfg.fail_fast = fail_fast;
  return cfg;
}

OpEvent prog_sub(std::uint32_t chip, std::uint32_t block, std::uint32_t page,
                 std::uint32_t slot) {
  OpEvent e;
  e.kind = OpKind::kProgSub;
  e.arg0 = slot;
  e.arg1 = page;
  e.chip = chip;
  e.block = block;
  return e;
}

OpEvent prog_full(std::uint32_t chip, std::uint32_t block,
                  std::uint32_t page) {
  OpEvent e;
  e.kind = OpKind::kProgFull;
  e.arg0 = page;
  e.chip = chip;
  e.block = block;
  return e;
}

OpEvent erase(std::uint32_t chip, std::uint32_t block) {
  OpEvent e;
  e.kind = OpKind::kErase;
  e.chip = chip;
  e.block = block;
  return e;
}

BlockLifecycleEvent alloc(std::uint32_t chip, std::uint32_t block,
                          const char* pool, std::uint32_t level = 0) {
  return {BlockEventKind::kAllocated, chip, block, pool, level, 0, 0, 0.0};
}

TEST(FormatCauseChain, EmptyChainIsHost) {
  EXPECT_EQ(format_cause_chain({}), "host");
}

TEST(FormatCauseChain, FramesJoinOutermostFirst) {
  const CauseFrame chain[] = {{Cause::kFlush, 5, 0.0},
                              {Cause::kGcCopy, 19, 0.0}};
  EXPECT_EQ(format_cause_chain(chain), "flush(5)>gc_copy(19)");
}

TEST(Auditor, CleanEspSequencePasses) {
  Auditor a(config());
  a.on_block(alloc(0, 0, "sub"), {});
  // Level 0: slot 0 of each page, sequentially.
  for (std::uint32_t page = 0; page < 4; ++page)
    a.on_op(prog_sub(0, 0, page, 0), {});
  // Frontier advances to level 1; slot 1 programs become legal.
  a.on_block({BlockEventKind::kLevelAdvanced, 0, 0, "sub", 1, 4, 0, 0.0}, {});
  for (std::uint32_t page = 0; page < 4; ++page)
    a.on_op(prog_sub(0, 0, page, 1), {});
  EXPECT_EQ(a.violation_count(), 0u);
  EXPECT_EQ(a.ops_checked(), 8u);
}

TEST(Auditor, SlotReprogramWithoutEraseThrows) {
  Auditor a(config());
  // No alloc/erase observed yet: the block is unsynced, but monotonicity
  // violations are still detectable.
  a.on_op(prog_sub(0, 1, 2, 1), {});
  EXPECT_THROW(a.on_op(prog_sub(0, 1, 2, 1), {}), std::logic_error);
}

TEST(Auditor, EraseResetsTheCycle) {
  Auditor a(config());
  a.on_op(prog_sub(0, 1, 2, 1), {});
  a.on_op(erase(0, 1), {});
  a.on_block(alloc(0, 1, "fine"), {});
  EXPECT_NO_THROW(a.on_op(prog_sub(0, 1, 2, 0), {}));
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(Auditor, NonFrontierSlotAfterSyncThrows) {
  Auditor a(config());
  a.on_block(alloc(0, 0, "fine"), {});
  // Slot 2 with no slot 0/1 programmed: frontier violation.
  EXPECT_THROW(a.on_op(prog_sub(0, 0, 0, 2), {}), std::logic_error);
}

TEST(Auditor, SubPoolSlotMustMatchEspLevel) {
  Auditor a(config());
  a.on_block(alloc(0, 0, "sub"), {});
  a.on_op(prog_sub(0, 0, 0, 0), {});
  a.on_op(prog_sub(0, 0, 1, 0), {});
  // Slot 1 while the block is still at level 0: frontier-agreement
  // violation (I3) even though the per-page slot order looks fine.
  EXPECT_THROW(a.on_op(prog_sub(0, 0, 0, 1), {}), std::logic_error);
}

TEST(Auditor, ModeMixWithinOneEraseCycleThrows) {
  Auditor a(config());
  a.on_op(erase(1, 2), {});
  a.on_block(alloc(1, 2, "full"), {});
  a.on_op(prog_full(1, 2, 0), {});
  EXPECT_THROW(a.on_op(prog_sub(1, 2, 1, 0), {}), std::logic_error);
}

TEST(Auditor, FullPageProgramsMustAppendSequentially) {
  Auditor a(config());
  a.on_op(erase(0, 3), {});
  a.on_block(alloc(0, 3, "full"), {});
  a.on_op(prog_full(0, 3, 0), {});
  EXPECT_THROW(a.on_op(prog_full(0, 3, 2), {}), std::logic_error);
}

TEST(Auditor, ProgramToUnownedBlockThrows) {
  Auditor a(config());
  a.on_op(erase(0, 0), {});  // synced, but no pool owns it
  EXPECT_THROW(a.on_op(prog_full(0, 0, 0), {}), std::logic_error);
}

TEST(Auditor, EraseOfBlockWithValidDataThrows) {
  Auditor a(config());
  const BlockLifecycleEvent bad{BlockEventKind::kErased, 0, 0, "full",
                                0,                       3, 1,  0.0};
  EXPECT_THROW(a.on_block(bad, {}), std::logic_error);
}

TEST(Auditor, ViolationMessageCarriesCauseChain) {
  Auditor a(config());
  const CauseFrame chain[] = {{Cause::kGcCopy, 42, 0.0}};
  a.on_op(prog_sub(0, 1, 0, 1), chain);
  try {
    a.on_op(prog_sub(0, 1, 0, 1), chain);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("auditor:"), std::string::npos);
    EXPECT_NE(msg.find("chip 0 block 1"), std::string::npos);
    EXPECT_NE(msg.find("gc_copy(42)"), std::string::npos);
  }
}

TEST(Auditor, NonFailFastAccumulatesBounded) {
  auto cfg = config(/*fail_fast=*/false);
  cfg.max_violations = 2;
  Auditor a(cfg);
  for (int i = 0; i < 5; ++i) a.on_op(prog_sub(0, 0, 0, 0), {});
  EXPECT_EQ(a.violation_count(), 4u);  // first program is legal
  EXPECT_EQ(a.violations().size(), 2u);
}

TEST(Auditor, DoubleAllocationWithoutRetireThrows) {
  Auditor a(config());
  a.on_block(alloc(0, 0, "full"), {});
  EXPECT_THROW(a.on_block(alloc(0, 0, "full"), {}), std::logic_error);
}

TEST(Auditor, RetireAllowsReallocation) {
  Auditor a(config());
  a.on_block(alloc(0, 0, "full"), {});
  a.on_block({BlockEventKind::kRetired, 0, 0, "full", 0, 0, 1, 0.0}, {});
  a.on_op(erase(0, 0), {});
  EXPECT_NO_THROW(a.on_block(alloc(0, 0, "sub"), {}));
  EXPECT_EQ(a.violation_count(), 0u);
}

}  // namespace
}  // namespace esp::telemetry
