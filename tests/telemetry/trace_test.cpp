#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace esp::telemetry {
namespace {

TraceEvent event(OpKind kind, double start, std::uint64_t arg0 = 0) {
  TraceEvent e;
  e.kind = kind;
  e.request_id = 1;
  e.start_us = start;
  e.dur_us = 10.0;
  e.arg0 = arg0;
  return e;
}

TEST(TraceRing, HoldsEventsUpToCapacity) {
  TraceRing ring(4);
  EXPECT_EQ(ring.size(), 0u);
  ring.push(event(OpKind::kRead, 1.0));
  ring.push(event(OpKind::kProgFull, 2.0));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.pushed(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.at(0).kind, OpKind::kRead);
  EXPECT_EQ(ring.at(1).kind, OpKind::kProgFull);
}

TEST(TraceRing, WraparoundKeepsNewestOldestFirst) {
  TraceRing ring(3);
  for (int i = 0; i < 7; ++i)
    ring.push(event(OpKind::kRead, 1.0 * i, static_cast<std::uint64_t>(i)));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.pushed(), 7u);
  EXPECT_EQ(ring.dropped(), 4u);
  // Retained events are the newest three, reported oldest first.
  EXPECT_EQ(ring.at(0).arg0, 4u);
  EXPECT_EQ(ring.at(1).arg0, 5u);
  EXPECT_EQ(ring.at(2).arg0, 6u);
}

TEST(TraceRing, ClearEmptiesButKeepsCapacity) {
  TraceRing ring(2);
  ring.push(event(OpKind::kErase, 1.0));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  ring.push(event(OpKind::kRead, 2.0));
  EXPECT_EQ(ring.size(), 1u);
}

TEST(TraceRing, JsonlOneObjectPerLine) {
  TraceRing ring(8);
  ring.push(event(OpKind::kGcCopy, 100.0, 12));
  ring.push(event(OpKind::kProgSub, 200.0, 3));
  std::ostringstream os;
  ring.dump_jsonl(os);
  const std::string out = os.str();

  std::istringstream lines(out);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(n, 2);
  EXPECT_NE(out.find("\"op\":\"gc_copy\""), std::string::npos);
  EXPECT_NE(out.find("\"op\":\"prog_sub\""), std::string::npos);
}

TEST(TraceRing, ChromeDumpIsArrayOfCompleteEvents) {
  TraceRing ring(8);
  ring.push(event(OpKind::kHostWrite, 100.0, 8));
  ring.push(event(OpKind::kProgFull, 110.0));
  std::ostringstream os;
  ring.dump_chrome(os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.find("]"), out.size() - 2);  // "]\n" tail
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"host_write\""), std::string::npos);
  // Lanes: host ops on tid 0, nand commands on tid 2.
  EXPECT_NE(out.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(out.find("\"tid\":2"), std::string::npos);
}

TEST(TraceRing, ChromeDumpNamesProcessAndLanes) {
  TraceRing ring(4);
  ring.push(event(OpKind::kProgFull, 10.0));
  std::ostringstream os;
  ring.dump_chrome(os);
  const std::string out = os.str();
  // Metadata ("M") events label the process and the three lanes so trace
  // viewers show layer names instead of bare tids.
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"espnand\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"host\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"ftl\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"nand\""), std::string::npos);
}

TEST(TraceRing, ChromeDumpEmptyRingStillValidArray) {
  TraceRing ring(4);
  std::ostringstream os;
  ring.dump_chrome(os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.find("]"), out.size() - 2);
  // Metadata still present even with no events.
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
}

TEST(TraceLane, KindsMapToLayers) {
  EXPECT_EQ(op_lane(OpKind::kHostRead), 0u);
  EXPECT_EQ(op_lane(OpKind::kGcCopy), 1u);
  EXPECT_EQ(op_lane(OpKind::kRmw), 1u);
  EXPECT_EQ(op_lane(OpKind::kProgSub), 2u);
  EXPECT_EQ(op_lane(OpKind::kErase), 2u);
}

}  // namespace
}  // namespace esp::telemetry
