#include "telemetry/sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

namespace esp::telemetry {
namespace {

TEST(TimeSeriesSampler, DisabledByDefault) {
  TimeSeriesSampler sampler;
  EXPECT_FALSE(sampler.enabled());
  EXPECT_FALSE(sampler.due(1e12));
}

TEST(TimeSeriesSampler, CadenceReArmsFromPushTime) {
  TimeSeriesSampler sampler(/*interval_us=*/100.0);
  ASSERT_TRUE(sampler.enabled());
  sampler.start(50.0);
  EXPECT_FALSE(sampler.due(100.0));
  EXPECT_TRUE(sampler.due(150.0));

  Sample s;
  s.sim_time_s = 1.0;
  // Pushed late (at 230): the next window starts from the push, not from
  // the nominal 150 boundary.
  sampler.push(s, 230.0);
  EXPECT_EQ(sampler.samples().size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.last_sample_us(), 230.0);
  EXPECT_FALSE(sampler.due(300.0));
  EXPECT_TRUE(sampler.due(330.0));
}

// The CSV schema is a published interface (docs/TELEMETRY.md): evolving it
// is append-only, so this test pins the exact header.
TEST(TimeSeriesSampler, CsvSchemaIsStable) {
  const std::string fixed =
      "sim_time_s,requests,iops,request_waf,overall_waf,gc_invocations,"
      "gc_copy_sectors,erases,prog_full,prog_sub,forward_migrations,"
      "retention_evictions,rmw_ops,region_blocks,region_valid_sectors";
  std::string ops;
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    const std::string name = op_name(static_cast<OpKind>(k));
    ops += "," + name + "_p50_us," + name + "_p99_us";
  }
  EXPECT_EQ(TimeSeriesSampler::csv_header(),
            fixed + ops + ",all_ops_p50_us,all_ops_p99_us,all_ops_p999_us");
}

TEST(TimeSeriesSampler, CsvRowsMatchHeaderArity) {
  TimeSeriesSampler sampler(10.0);
  sampler.start(0.0);
  Sample s;
  s.sim_time_s = 0.5;
  s.requests = 42;
  s.iops = 1234.5;
  sampler.push(s, 10.0);
  s.sim_time_s = 1.0;
  sampler.push(s, 20.0);

  std::ostringstream os;
  sampler.write_csv(os);
  std::istringstream lines(os.str());
  std::string line;
  std::size_t header_cols = 0;
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    const std::size_t cols =
        1 + static_cast<std::size_t>(
                std::count(line.begin(), line.end(), ','));
    if (header_cols == 0)
      header_cols = cols;
    else {
      ++rows;
      EXPECT_EQ(cols, header_cols) << line;
    }
  }
  EXPECT_EQ(rows, 2u);
  EXPECT_EQ(header_cols,
            15u + 2u * kOpKindCount + 3u);  // fixed + per-op + merged
}

TEST(TimeSeriesSampler, JsonRowsContainFixedFields) {
  TimeSeriesSampler sampler(10.0);
  Sample s;
  s.sim_time_s = 2.0;
  s.requests = 7;
  s.op_p50_us[static_cast<std::size_t>(OpKind::kRead)] = 80.0;
  s.op_p99_us[static_cast<std::size_t>(OpKind::kRead)] = 95.0;
  sampler.push(s, 10.0);

  std::ostringstream os;
  sampler.write_json(os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("\"sim_time_s\":2"), std::string::npos);
  EXPECT_NE(out.find("\"requests\":7"), std::string::npos);
  // Only ops with samples appear in the per-op latency object.
  EXPECT_NE(out.find("\"read\":{\"p50\":80"), std::string::npos);
  EXPECT_EQ(out.find("\"erase\""), std::string::npos);
}

}  // namespace
}  // namespace esp::telemetry
