#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace esp::telemetry {
namespace {

TEST(MetricsRegistry, CounterRoundTrip) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a/ops");
  EXPECT_EQ(reg.counter_value("a/ops"), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(reg.counter_value("a/ops"), 42u);
  // Same name returns the same counter.
  reg.counter("a/ops").inc();
  EXPECT_EQ(c.value(), 43u);
}

TEST(MetricsRegistry, CounterValueFallback) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter_value("missing", 7u), 7u);
  EXPECT_EQ(reg.gauge_value("missing", 1.5), 1.5);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
}

TEST(MetricsRegistry, BoundCounterTracksSource) {
  MetricsRegistry reg;
  std::uint64_t live = 5;
  reg.bind_counter("ftl/writes", &live);
  EXPECT_EQ(reg.counter_value("ftl/writes"), 5u);
  live = 99;
  EXPECT_EQ(reg.counter_value("ftl/writes"), 99u);
}

TEST(MetricsRegistry, MaterializeSeversReferences) {
  MetricsRegistry reg;
  std::uint64_t live = 10;
  reg.bind_counter("ftl/writes", &live);
  double occupancy = 0.25;
  reg.gauge("ftl/occupancy").set_provider([&occupancy] { return occupancy; });

  reg.materialize();
  // Post-materialize values are snapshots: mutating (or destroying) the
  // sources must not change what the registry reports.
  live = 0;
  occupancy = 0.0;
  EXPECT_EQ(reg.counter_value("ftl/writes"), 10u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("ftl/occupancy"), 0.25);
}

TEST(MetricsRegistry, GaugeSetAndProvider) {
  MetricsRegistry reg;
  reg.gauge("g").set(3.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 3.5);
  reg.gauge("g").set_provider([] { return 7.0; });
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 7.0);
  reg.gauge("g").set(1.0);  // set() drops the provider
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 1.0);
}

TEST(MetricsRegistry, HistogramRoundTrip) {
  MetricsRegistry reg;
  util::Histogram& h = reg.histogram("lat", 0.0, 100.0, 10);
  h.add(5.0);
  h.add(15.0);
  const util::Histogram* found = reg.find_histogram("lat");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->total(), 2u);
  // Later calls ignore the shape and return the same histogram.
  EXPECT_EQ(&reg.histogram("lat", 0.0, 1.0, 1), &h);
}

TEST(MetricsRegistry, ScopePrefixesNames) {
  MetricsRegistry reg;
  Scope scope(reg, "subFTL");
  scope.counter("gc").inc(3);
  scope.gauge("occ").set(0.5);
  EXPECT_EQ(reg.counter_value("subFTL/gc"), 3u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("subFTL/occ"), 0.5);
  // Two scopes over one registry do not collide.
  Scope other(reg, "cgmFTL");
  other.counter("gc").inc(9);
  EXPECT_EQ(reg.counter_value("subFTL/gc"), 3u);
  EXPECT_EQ(reg.counter_value("cgmFTL/gc"), 9u);
}

TEST(MetricsRegistry, VisitOrderIsSorted) {
  MetricsRegistry reg;
  reg.counter("b");
  std::uint64_t x = 1;
  reg.bind_counter("a", &x);  // bound + owned interleave in name order
  reg.counter("c");
  std::vector<std::string> names;
  reg.visit_counters(
      [&names](const std::string& name, std::uint64_t) { names.push_back(name); });
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(reg.counter_count(), 3u);
}

TEST(MetricsRegistry, ResetZeroesAndDropsBindings) {
  MetricsRegistry reg;
  reg.counter("own").inc(5);
  std::uint64_t live = 9;
  reg.bind_counter("bound", &live);
  reg.gauge("g").set(2.0);
  reg.histogram("h", 0.0, 10.0, 10).add(1.0);

  reg.reset();
  EXPECT_EQ(reg.counter_value("own"), 0u);
  EXPECT_EQ(reg.counter_value("bound", 123u), 123u);  // binding dropped
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 0.0);
  EXPECT_EQ(reg.find_histogram("h")->total(), 0u);
}

TEST(MetricsRegistry, MergeFromSumsCountersGaugesHistograms) {
  MetricsRegistry a;
  a.counter("ops").inc(10);
  a.gauge("load").set(1.5);
  a.histogram("lat", 0.0, 10.0, 10).add(1.0);

  MetricsRegistry b;
  b.counter("ops").inc(32);
  b.counter("only_b").inc(7);
  std::uint64_t live = 5;
  b.bind_counter("bound_b", &live);
  b.gauge("load").set(2.5);
  b.histogram("lat", 0.0, 10.0, 10).add(2.0);
  b.histogram("only_b_hist", 0.0, 1.0, 4).add(0.5);

  a.merge_from(b);
  EXPECT_EQ(a.counter_value("ops"), 42u);
  EXPECT_EQ(a.counter_value("only_b"), 7u);
  EXPECT_EQ(a.counter_value("bound_b"), 5u);  // bound source contributes
  EXPECT_DOUBLE_EQ(a.gauge_value("load"), 4.0);
  EXPECT_EQ(a.find_histogram("lat")->total(), 2u);
  ASSERT_NE(a.find_histogram("only_b_hist"), nullptr);
  EXPECT_EQ(a.find_histogram("only_b_hist")->total(), 1u);
}

TEST(MetricsRegistry, MergeFromCollapsesTargetBindings) {
  MetricsRegistry a;
  std::uint64_t live_a = 100;
  a.bind_counter("ops", &live_a);
  MetricsRegistry b;
  b.counter("ops").inc(1);
  a.merge_from(b);
  EXPECT_EQ(a.counter_value("ops"), 101u);
  // The binding collapsed into an owned counter: no duplicate visits.
  std::size_t visits = 0;
  a.visit_counters([&](const std::string&, std::uint64_t) { ++visits; });
  EXPECT_EQ(visits, 1u);
}

}  // namespace
}  // namespace esp::telemetry
