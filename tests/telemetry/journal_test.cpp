#include "telemetry/journal.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace esp::telemetry {
namespace {

JournalHeader header() {
  JournalHeader hdr;
  hdr.ftl = "subFTL";
  hdr.chips = 2;
  hdr.blocks_per_chip = 8;
  hdr.pages_per_block = 32;
  hdr.subpages_per_page = 4;
  hdr.page_bytes = 16384;
  hdr.seed = 42;
  return hdr;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(Journal, HeaderLineCarriesSchemaAndGeometry) {
  std::ostringstream os;
  Journal journal(os, header());
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"v\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"t\":\"hdr\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ftl\":\"subFTL\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"subs\":4"), std::string::npos);
  EXPECT_NE(lines[0].find("\"page_bytes\":16384"), std::string::npos);
  EXPECT_NE(lines[0].find("\"seed\":42"), std::string::npos);
}

TEST(Journal, FlashOpLineCarriesCauseAndChain) {
  std::ostringstream os;
  Journal journal(os, header());
  const CauseFrame chain[] = {{Cause::kFlush, 7, 1.0},
                              {Cause::kGcCopy, 3, 2.0}};
  OpEvent prog;
  prog.kind = OpKind::kProgSub;
  prog.start = 10.0;
  prog.end = 35.5;
  prog.arg0 = 2;  // slot
  prog.arg1 = 9;  // page
  prog.chip = 1;
  prog.block = 4;
  journal.on_op(prog, Cause::kGcCopy, chain, 17);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  const std::string& op = lines[1];
  EXPECT_NE(op.find("\"t\":\"op\""), std::string::npos);
  EXPECT_NE(op.find("\"op\":\"prog_sub\""), std::string::npos);
  EXPECT_NE(op.find("\"cause\":\"gc_copy\""), std::string::npos);
  EXPECT_NE(op.find("\"chain\":\"flush>gc_copy\""), std::string::npos);
  EXPECT_NE(op.find("\"req\":17"), std::string::npos);
  EXPECT_NE(op.find("\"chip\":1"), std::string::npos);
  EXPECT_NE(op.find("\"block\":4"), std::string::npos);
  EXPECT_NE(op.find("\"page\":9"), std::string::npos);
  EXPECT_NE(op.find("\"slot\":2"), std::string::npos);
  EXPECT_NE(op.find("\"dur_us\":25.5"), std::string::npos);
}

TEST(Journal, HostWritesRecordedReadsSkipped) {
  std::ostringstream os;
  Journal journal(os, header());
  OpEvent write;
  write.kind = OpKind::kHostWrite;
  write.start = 0.0;
  write.end = 4.0;
  write.arg0 = 8;    // sectors
  write.arg1 = 640;  // start sector
  journal.on_op(write, Cause::kHost, {}, 1);
  OpEvent read = write;
  read.kind = OpKind::kHostRead;
  journal.on_op(read, Cause::kHost, {}, 2);
  OpEvent flash_read = write;
  flash_read.kind = OpKind::kRead;
  journal.on_op(flash_read, Cause::kHost, {}, 2);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);  // hdr + host write only
  EXPECT_NE(lines[1].find("\"op\":\"host_write\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"sectors\":8"), std::string::npos);
  EXPECT_NE(lines[1].find("\"sector\":640"), std::string::npos);
}

TEST(Journal, ScopeLinesMatchChromePhases) {
  std::ostringstream os;
  Journal journal(os, header());
  const CauseFrame frame{Cause::kRetentionEvict, 12, 100.0};
  journal.on_scope('B', frame);
  // An op inside the scope raises the close-stamp high-water mark.
  OpEvent erase;
  erase.kind = OpKind::kErase;
  erase.start = 150.0;
  erase.end = 250.0;
  erase.arg0 = 3;
  erase.chip = 0;
  erase.block = 2;
  journal.on_op(erase, Cause::kRetentionEvict, {&frame, 1}, 0);
  journal.on_scope('E', frame);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[1].find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"cause\":\"retention_evict\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"detail\":12"), std::string::npos);
  EXPECT_NE(lines[1].find("\"us\":100"), std::string::npos);
  EXPECT_NE(lines[2].find("\"pe\":3"), std::string::npos);
  EXPECT_NE(lines[3].find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"us\":250"), std::string::npos);
}

TEST(Journal, ConvertedDerivedFromPoolChange) {
  std::ostringstream os;
  Journal journal(os, header());
  BlockLifecycleEvent alloc{BlockEventKind::kAllocated, 0, 3, "sub",
                            0,                          0, 5,  10.0};
  journal.on_block(alloc);
  BlockLifecycleEvent erased{BlockEventKind::kErased, 0, 3, "sub",
                             2,                       0, 6,  20.0};
  journal.on_block(erased);
  // Same physical block re-allocated by a different pool -> converted.
  BlockLifecycleEvent realloc{BlockEventKind::kAllocated, 0, 3, "full",
                              0,                          0, 6,  30.0};
  journal.on_block(realloc);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 5u);  // hdr, alloc, erased, converted, alloc
  EXPECT_NE(lines[1].find("\"ev\":\"allocated\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"pool\":\"sub\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"ev\":\"erased\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"ev\":\"converted\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"pool\":\"full\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"from\":\"sub\""), std::string::npos);
  EXPECT_NE(lines[4].find("\"ev\":\"allocated\""), std::string::npos);
  EXPECT_NE(lines[4].find("\"pool\":\"full\""), std::string::npos);
}

TEST(Journal, TruncationCapsEventLinesButKeepsTrailer) {
  std::ostringstream os;
  Journal journal(os, header(), /*max_events=*/2);
  OpEvent prog;
  prog.kind = OpKind::kProgFull;
  prog.start = 1.0;
  prog.end = 2.0;
  prog.chip = 0;
  prog.block = 0;
  for (int i = 0; i < 5; ++i) {
    prog.arg0 = static_cast<std::uint64_t>(i);
    journal.on_op(prog, Cause::kHost, {}, 0);
  }
  journal.finish();
  EXPECT_EQ(journal.events_written(), 2u);
  EXPECT_EQ(journal.truncated(), 3u);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 4u);  // hdr + 2 ops + end
  EXPECT_NE(lines[3].find("\"t\":\"end\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"events\":2"), std::string::npos);
  EXPECT_NE(lines[3].find("\"truncated\":3"), std::string::npos);
}

TEST(Journal, FinishIsIdempotentAndClosesTheStream) {
  std::ostringstream os;
  Journal journal(os, header());
  journal.finish();
  journal.finish();
  OpEvent prog;
  prog.kind = OpKind::kProgFull;
  prog.chip = 0;
  journal.on_op(prog, Cause::kHost, {}, 0);  // dropped after finish
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);  // hdr + one end trailer only
  EXPECT_NE(lines[1].find("\"t\":\"end\""), std::string::npos);
}

}  // namespace
}  // namespace esp::telemetry
