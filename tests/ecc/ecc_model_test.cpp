#include "ecc/ecc_model.h"

#include <gtest/gtest.h>

namespace esp::ecc {
namespace {

TEST(EccModel, DefaultSpecSane) {
  EccModel model;
  EXPECT_EQ(model.spec().codeword_bytes, 1024u);
  EXPECT_EQ(model.spec().correctable_bits, 40u);
  EXPECT_NEAR(model.spec().max_raw_ber(), 40.0 / 8192.0, 1e-12);
}

TEST(EccModel, CanCorrectAtOrBelowT) {
  EccModel model;
  EXPECT_TRUE(model.can_correct(0));
  EXPECT_TRUE(model.can_correct(40));
  EXPECT_FALSE(model.can_correct(41));
}

TEST(EccModel, UncorrectableProbabilityEdges) {
  EccModel model;
  EXPECT_EQ(model.uncorrectable_probability(0.0), 0.0);
  EXPECT_EQ(model.uncorrectable_probability(1.0), 1.0);
}

TEST(EccModel, UncorrectableProbabilityMonotone) {
  EccModel model;
  double prev = 0.0;
  for (const double ber : {1e-4, 1e-3, 3e-3, 5e-3, 1e-2, 5e-2}) {
    const double p = model.uncorrectable_probability(ber);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(EccModel, SharpTransitionAroundCapability) {
  EccModel model;
  // Expected errors = n*p; far below t -> ~0, far above -> ~1.
  EXPECT_LT(model.uncorrectable_probability(1e-3), 1e-6);   // ~8 expected
  EXPECT_GT(model.uncorrectable_probability(1.5e-2), 0.999);  // ~123 expected
}

TEST(EccModel, HalfwayBerAtCapabilityIsNearHalf) {
  EccModel model;
  // At p = t/n the binomial is centered on t: P(X > t) ~ 0.5.
  const double p = model.uncorrectable_probability(40.0 / 8192.0);
  EXPECT_GT(p, 0.3);
  EXPECT_LT(p, 0.6);
}

TEST(EccModel, CodewordsForRoundsUp) {
  EccModel model;
  EXPECT_EQ(model.codewords_for(0), 0u);
  EXPECT_EQ(model.codewords_for(1), 1u);
  EXPECT_EQ(model.codewords_for(1024), 1u);
  EXPECT_EQ(model.codewords_for(1025), 2u);
  EXPECT_EQ(model.codewords_for(4096), 4u);
}

TEST(EccModel, StrongerCodeLowersFailureProbability) {
  EccModel weak(EccSpec{1024, 20});
  EccModel strong(EccSpec{1024, 60});
  const double ber = 5e-3;
  EXPECT_GT(weak.uncorrectable_probability(ber),
            strong.uncorrectable_probability(ber));
}

TEST(EccModel, RejectsZeroCodeword) {
  EXPECT_THROW(EccModel(EccSpec{0, 10}), std::invalid_argument);
}

}  // namespace
}  // namespace esp::ecc
