// esptrace: trace utilities for the espnand simulator.
//
//   esptrace analyze <trace-file>                characterize a trace
//   esptrace generate <profile|manual-args> ...  synthesize a trace file
//
// `analyze` reports the paper's workload knobs (r_small, r_synch, skew)
// and a recommendation; `generate` materializes the synthetic profiles as
// portable trace files so runs can be reproduced outside this tool.
#include <cstdio>
#include <cstring>
#include <string>

#include "workload/profiles.h"
#include "workload/trace.h"
#include "workload/trace_stats.h"

namespace {

using namespace esp;

int analyze(const char* path) {
  const auto requests = workload::read_trace_file(path);
  const auto stats = workload::analyze_trace(requests, 4);
  std::printf("%s\n", stats.report(4).c_str());
  std::printf("recommendation  : %s\n", stats.recommendation().c_str());
  return 0;
}

int generate(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: esptrace generate <sysbench|varmail|postmark|ycsb|"
                 "tpcc> <out-file> [requests] [footprint-sectors] [seed]\n");
    return 2;
  }
  const std::string name = argv[0];
  workload::Benchmark bench;
  if (name == "sysbench") bench = workload::Benchmark::kSysbench;
  else if (name == "varmail") bench = workload::Benchmark::kVarmail;
  else if (name == "postmark") bench = workload::Benchmark::kPostmark;
  else if (name == "ycsb") bench = workload::Benchmark::kYcsb;
  else if (name == "tpcc") bench = workload::Benchmark::kTpcc;
  else {
    std::fprintf(stderr, "unknown profile '%s'\n", name.c_str());
    return 2;
  }
  const char* out = argv[1];
  const std::uint64_t count =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;
  const std::uint64_t footprint =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1 << 18;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;

  auto params = workload::benchmark_profile(bench, footprint, count, 4, seed);
  workload::SyntheticWorkload stream(params);
  std::vector<workload::Request> requests;
  requests.reserve(count);
  while (const auto req = stream.next()) requests.push_back(*req);
  workload::write_trace_file(out, requests);
  std::printf("wrote %zu requests to %s\n", requests.size(), out);

  const auto stats = workload::analyze_trace(requests, 4);
  std::printf("\n%s", stats.report(4).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "analyze") == 0)
    return analyze(argv[2]);
  if (argc >= 2 && std::strcmp(argv[1], "generate") == 0)
    return generate(argc - 2, argv + 2);
  std::fprintf(stderr,
               "usage:\n  %s analyze <trace-file>\n"
               "  %s generate <profile> <out-file> [requests] [footprint] "
               "[seed]\n",
               argv[0], argv[0]);
  return 2;
}
