// esphealth: analyzer for device-health snapshot streams (see
// docs/HEALTH.md and src/telemetry/health.h for the schema).
//
//   esphealth run_health.jsonl                    # full report
//   esphealth --heatmap age --bins 96 run_health.jsonl
//   esphealth --csv-out wear.csv --svg-out wear.svg run_health.jsonl
//   esphealth --check run_health.jsonl            # CI consistency gate
//
// Sections:
//   * blocks x epochs heatmap of a per-block metric (wear = P/E cycles,
//     valid = valid ratio, age = retention age since first program) --
//     terminal shading, optional CSV and SVG exports. Blocks are binned
//     into --bins columns; `--order pool` groups blocks by their
//     final-epoch pool so the subpage region separates visually from the
//     full-page region.
//   * per-pool wear table at the final epoch.
//   * per-epoch SMART trend table (wear %, CoV, Gini, WAF, spares,
//     horizon). CoV and Gini are RECOMPUTED from the reconstructed
//     per-block state and compared against the stream's own smart line --
//     `--check` turns any disagreement into a nonzero exit.
//   * health-trend projection: linear fit of media wear % over simulated
//     time, cross-checked against the stream's erase-rate horizon.
//
// The parser is the same flat field scanner as espreport: every line is a
// flat object with known key order and no escaped strings, so `"key":`
// substring extraction is exact. Unknown line types are counted and
// skipped (forward compat).
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] HEALTH_STREAM.jsonl\n"
      "  --heatmap wear|valid|age  per-block metric to render (wear)\n"
      "  --bins N                  heatmap columns; blocks are averaged\n"
      "                            into N spatial bins (64)\n"
      "  --order device|pool       column order: physical device order, or\n"
      "                            grouped by final-epoch pool (device)\n"
      "  --csv-out PATH            write the binned epochs x bins matrix\n"
      "  --svg-out PATH            write an SVG heatmap\n"
      "  --check                   exit 1 unless the stream is complete\n"
      "                            (end trailer) and the smart CoV/Gini\n"
      "                            match recomputation from block rows\n",
      argv0);
}

// ---- flat field extraction (same idiom as espreport) -----------------

bool find_raw(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t start = pos + needle.size();
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(start, end - start);
  return true;
}

bool find_str(const std::string& line, const char* key, std::string* out) {
  std::string raw;
  if (!find_raw(line, key, &raw)) return false;
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') return false;
  *out = raw.substr(1, raw.size() - 2);
  return true;
}

bool find_u64(const std::string& line, const char* key, std::uint64_t* out) {
  std::string raw;
  if (!find_raw(line, key, &raw)) return false;
  *out = std::strtoull(raw.c_str(), nullptr, 10);
  return true;
}

bool find_double(const std::string& line, const char* key, double* out) {
  std::string raw;
  if (!find_raw(line, key, &raw)) return false;
  *out = std::strtod(raw.c_str(), nullptr);
  return true;
}

// ---- stream reconstruction ------------------------------------------

struct Blk {
  std::uint32_t pe = 0;
  std::uint32_t pp = 0;          ///< programmed pages
  std::uint32_t valid = 0;
  std::uint32_t cap = 0;
  std::uint32_t gcv = 0;         ///< GC victim count
  double fp = -1.0;              ///< first-program timestamp, us (<0 = none)
  /// f(ree) F(ull) S(ub) L(og/fine). Default 'f': the delta encoder's
  /// baseline is the all-zero free row, so a block with no emitted rows is
  /// a free, never-programmed block.
  char pool = 'f';
  std::uint8_t lvl = 0;          ///< ESP level
};

struct Smart {
  double us = 0.0;
  double media_wear_pct = 0.0;
  std::uint64_t spare_blocks = 0;
  std::uint64_t pe_min = 0, pe_max = 0;
  double pe_mean = 0.0, pe_stddev = 0.0;
  double wear_cov = 0.0, wear_gini = 0.0;
  double overall_waf = 0.0;
  std::uint64_t erases = 0;
  double retention_evict_per_s = 0.0;
  double pe_horizon_s = -1.0;
};

struct Epoch {
  std::uint64_t index = 0;
  double us = 0.0;
  std::uint64_t rows_emitted = 0;
  std::vector<Blk> blocks;  ///< fully reconstructed state at this epoch
  Smart smart;
  bool have_smart = false;
};

struct Analysis {
  bool have_header = false;
  std::uint64_t schema = 0;
  std::string ftl;
  std::uint64_t chips = 0, blocks_per_chip = 0, pages_per_block = 0;
  std::uint64_t subs = 1, seed = 0, rated_pe = 0;
  double interval_us = 0.0;

  std::vector<Epoch> epochs;
  std::uint64_t lines = 0, unknown_lines = 0, orphan_rows = 0;
  bool have_end = false;
  std::uint64_t end_epochs = 0, end_lines = 0;

  std::uint64_t total_blocks() const { return chips * blocks_per_chip; }
};

char pool_char(const std::string& name) {
  if (name == "free") return 'f';
  if (name == "full") return 'F';
  if (name == "sub") return 'S';
  if (name == "fine") return 'L';
  return '?';
}

bool analyze(const std::string& path, Analysis* a) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "esphealth: cannot open %s\n", path.c_str());
    return false;
  }
  std::vector<Blk> state;  // carried across epochs (delta decode)
  std::string line;
  while (std::getline(is, line)) {
    ++a->lines;
    std::string t;
    if (!find_str(line, "t", &t)) {
      ++a->unknown_lines;
      continue;
    }
    if (t == "hdr") {
      a->have_header = true;
      find_u64(line, "v", &a->schema);
      find_str(line, "ftl", &a->ftl);
      find_u64(line, "chips", &a->chips);
      find_u64(line, "blocks_per_chip", &a->blocks_per_chip);
      find_u64(line, "pages_per_block", &a->pages_per_block);
      find_u64(line, "subs", &a->subs);
      find_u64(line, "seed", &a->seed);
      find_u64(line, "rated_pe", &a->rated_pe);
      find_double(line, "interval_us", &a->interval_us);
      state.assign(a->total_blocks(), Blk{});
    } else if (t == "epoch") {
      Epoch e;
      find_u64(line, "i", &e.index);
      find_double(line, "us", &e.us);
      a->epochs.push_back(std::move(e));
    } else if (t == "b") {
      if (a->epochs.empty()) {
        ++a->orphan_rows;
        continue;
      }
      std::uint64_t i = 0;
      find_u64(line, "i", &i);
      if (i >= state.size()) {
        ++a->orphan_rows;
        continue;
      }
      Blk& b = state[i];
      std::uint64_t v = 0;
      if (find_u64(line, "pe", &v)) b.pe = static_cast<std::uint32_t>(v);
      if (find_u64(line, "pp", &v)) b.pp = static_cast<std::uint32_t>(v);
      if (find_u64(line, "valid", &v)) b.valid = static_cast<std::uint32_t>(v);
      if (find_u64(line, "cap", &v)) b.cap = static_cast<std::uint32_t>(v);
      if (find_u64(line, "gcv", &v)) b.gcv = static_cast<std::uint32_t>(v);
      if (find_u64(line, "lvl", &v)) b.lvl = static_cast<std::uint8_t>(v);
      std::string pool;
      if (find_str(line, "pool", &pool)) b.pool = pool_char(pool);
      // "fp" is omitted when the block has no live first program; a row
      // line always carries the COMPLETE new state, so absence means
      // "none", not "unchanged".
      double fp = -1.0;
      b.fp = find_double(line, "fp", &fp) ? fp : -1.0;
      ++a->epochs.back().rows_emitted;
    } else if (t == "smart") {
      if (a->epochs.empty()) {
        ++a->orphan_rows;
        continue;
      }
      Epoch& e = a->epochs.back();
      Smart& s = e.smart;
      find_double(line, "us", &s.us);
      find_double(line, "media_wear_pct", &s.media_wear_pct);
      find_u64(line, "spare_blocks", &s.spare_blocks);
      find_u64(line, "pe_min", &s.pe_min);
      find_u64(line, "pe_max", &s.pe_max);
      find_double(line, "pe_mean", &s.pe_mean);
      find_double(line, "pe_stddev", &s.pe_stddev);
      find_double(line, "wear_cov", &s.wear_cov);
      find_double(line, "wear_gini", &s.wear_gini);
      find_double(line, "overall_waf", &s.overall_waf);
      find_u64(line, "erases", &s.erases);
      find_double(line, "retention_evict_per_s", &s.retention_evict_per_s);
      find_double(line, "pe_horizon_s", &s.pe_horizon_s);
      e.have_smart = true;
      // The smart line closes the epoch: snapshot reconstructed state.
      e.blocks = state;
    } else if (t == "end") {
      a->have_end = true;
      find_u64(line, "epochs", &a->end_epochs);
      find_u64(line, "lines", &a->end_lines);
    } else {
      ++a->unknown_lines;
    }
  }
  // An epoch without its smart line (truncated stream) still gets the
  // state reconstructed so far.
  for (Epoch& e : a->epochs)
    if (e.blocks.empty()) e.blocks = state;
  return true;
}

// ---- metrics, binning, rendering ------------------------------------

enum class Metric { kWear, kValid, kAge };

double metric_value(const Blk& b, Metric m, double epoch_us) {
  switch (m) {
    case Metric::kWear:
      return static_cast<double>(b.pe);
    case Metric::kValid:
      return b.cap ? static_cast<double>(b.valid) / b.cap : 0.0;
    case Metric::kAge:
      return b.fp >= 0.0 ? (epoch_us - b.fp) / 1e6 : 0.0;  // seconds
  }
  return 0.0;
}

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kWear: return "wear (P/E cycles)";
    case Metric::kValid: return "valid ratio";
    case Metric::kAge: return "retention age (s)";
  }
  return "?";
}

/// epochs x bins matrix of bin-averaged metric values, plus a per-bin
/// majority pool letter for the final epoch.
struct Heatmap {
  std::size_t bins = 0;
  std::vector<double> us;              ///< per epoch
  std::vector<std::vector<double>> rows;
  std::vector<char> final_pools;       ///< per bin
  double vmax = 0.0;
};

Heatmap build_heatmap(const Analysis& a, Metric m, std::size_t bins,
                      const std::vector<std::uint32_t>& order) {
  Heatmap h;
  const std::size_t n = order.size();
  h.bins = std::min<std::size_t>(bins, n ? n : 1);
  for (const Epoch& e : a.epochs) {
    std::vector<double> row(h.bins, 0.0);
    std::vector<std::uint32_t> count(h.bins, 0);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t bin = k * h.bins / n;
      row[bin] += metric_value(e.blocks[order[k]], m, e.us);
      ++count[bin];
    }
    for (std::size_t b = 0; b < h.bins; ++b) {
      if (count[b]) row[b] /= count[b];
      h.vmax = std::max(h.vmax, row[b]);
    }
    h.us.push_back(e.us);
    h.rows.push_back(std::move(row));
  }
  if (!a.epochs.empty()) {
    const Epoch& last = a.epochs.back();
    for (std::size_t b = 0; b < h.bins; ++b) {
      int tally[4] = {0, 0, 0, 0};  // f F S L
      const std::size_t lo = b * n / h.bins, hi = (b + 1) * n / h.bins;
      for (std::size_t k = lo; k < hi; ++k) {
        switch (last.blocks[order[k]].pool) {
          case 'f': ++tally[0]; break;
          case 'F': ++tally[1]; break;
          case 'S': ++tally[2]; break;
          case 'L': ++tally[3]; break;
        }
      }
      const int best =
          static_cast<int>(std::max_element(tally, tally + 4) - tally);
      h.final_pools.push_back("fFSL"[best]);
    }
  }
  return h;
}

void print_heatmap(const Heatmap& h, Metric m) {
  static const char kShades[] = " .:-=+*#%@";
  std::printf("\nheatmap: %s -- rows = epochs (sim time), cols = %zu block "
              "bins\nscale: ' '=0 .. '@'=%.4g\n\n",
              metric_name(m), h.bins, h.vmax);
  for (std::size_t e = 0; e < h.rows.size(); ++e) {
    std::printf("%10.3fs |", h.us[e] / 1e6);
    for (const double v : h.rows[e]) {
      const int idx =
          h.vmax > 0.0
              ? std::min(9, static_cast<int>(v / h.vmax * 9.0 + 0.5))
              : 0;
      std::putchar(kShades[idx]);
    }
    std::printf("|\n");
  }
  std::printf("%10s |", "pool");
  for (const char c : h.final_pools) std::putchar(c);
  std::printf("| (majority per bin at final epoch: f=free F=full S=sub "
              "L=fine)\n");
}

bool write_csv(const Heatmap& h, Metric m, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "esphealth: cannot open %s\n", path.c_str());
    return false;
  }
  os << "# metric: " << metric_name(m) << "\nus";
  for (std::size_t b = 0; b < h.bins; ++b) os << ",bin" << b;
  os << "\n";
  char buf[32];
  for (std::size_t e = 0; e < h.rows.size(); ++e) {
    std::snprintf(buf, sizeof buf, "%.10g", h.us[e]);
    os << buf;
    for (const double v : h.rows[e]) {
      std::snprintf(buf, sizeof buf, ",%.10g", v);
      os << buf;
    }
    os << "\n";
  }
  return os.good();
}

bool write_svg(const Heatmap& h, Metric m, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "esphealth: cannot open %s\n", path.c_str());
    return false;
  }
  const int cell_w = 4, cell_h = 12, margin = 2;
  const int w = margin * 2 + cell_w * static_cast<int>(h.bins);
  const int rows = static_cast<int>(h.rows.size()) + 1;  // + pool strip
  const int ht = margin * 2 + cell_h * rows;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
     << "\" height=\"" << ht << "\">\n<title>" << metric_name(m)
     << "</title>\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (std::size_t e = 0; e < h.rows.size(); ++e) {
    for (std::size_t b = 0; b < h.bins; ++b) {
      const double t = h.vmax > 0.0 ? h.rows[e][b] / h.vmax : 0.0;
      // Cold blue -> hot red ramp.
      const int r = static_cast<int>(255 * t);
      const int g = static_cast<int>(64 * (1.0 - t));
      const int bl = static_cast<int>(255 * (1.0 - t));
      os << "<rect x=\"" << margin + cell_w * static_cast<int>(b) << "\" y=\""
         << margin + cell_h * static_cast<int>(e) << "\" width=\"" << cell_w
         << "\" height=\"" << cell_h << "\" fill=\"rgb(" << r << "," << g
         << "," << bl << ")\"/>\n";
    }
  }
  // Pool strip under the map: free white, full green, sub orange, fine
  // purple -- the subpage region must separate visually from full-page.
  for (std::size_t b = 0; b < h.final_pools.size(); ++b) {
    const char* fill = "#ffffff";
    switch (h.final_pools[b]) {
      case 'F': fill = "#2e8b57"; break;
      case 'S': fill = "#ff8c00"; break;
      case 'L': fill = "#8a2be2"; break;
    }
    os << "<rect x=\"" << margin + cell_w * static_cast<int>(b) << "\" y=\""
       << margin + cell_h * static_cast<int>(h.rows.size()) << "\" width=\""
       << cell_w << "\" height=\"" << cell_h << "\" fill=\"" << fill
       << "\"/>\n";
  }
  os << "</svg>\n";
  return os.good();
}

// ---- SMART cross-checks and trend -----------------------------------

struct Recomputed {
  double cov = 0.0;
  double gini = 0.0;
  double mean = 0.0;
};

Recomputed recompute_wear(const std::vector<Blk>& blocks) {
  Recomputed r;
  const std::size_t n = blocks.size();
  if (!n) return r;
  std::vector<double> pe(n);
  for (std::size_t i = 0; i < n; ++i) pe[i] = blocks[i].pe;
  const double sum = std::accumulate(pe.begin(), pe.end(), 0.0);
  r.mean = sum / static_cast<double>(n);
  double var = 0.0;
  for (const double v : pe) var += (v - r.mean) * (v - r.mean);
  var /= static_cast<double>(n);
  r.cov = r.mean > 0.0 ? std::sqrt(var) / r.mean : 0.0;
  std::sort(pe.begin(), pe.end());
  double weighted = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    weighted += static_cast<double>(i + 1) * pe[i];
  r.gini = sum > 0.0 ? 2.0 * weighted / (static_cast<double>(n) * sum) -
                           (static_cast<double>(n) + 1.0) /
                               static_cast<double>(n)
                     : 0.0;
  return r;
}

struct Trend {
  bool valid = false;
  double wear_pct_per_hour = 0.0;  ///< simulated hours
  double projected_exhaustion_s = -1.0;
};

Trend fit_trend(const Analysis& a) {
  Trend t;
  // Least squares of media_wear_pct over simulated seconds.
  std::vector<std::pair<double, double>> pts;
  for (const Epoch& e : a.epochs)
    if (e.have_smart) pts.emplace_back(e.us / 1e6, e.smart.media_wear_pct);
  if (pts.size() < 2) return t;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [x, y] : pts) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(pts.size());
  const double denom = n * sxx - sx * sx;
  if (denom <= 0.0) return t;
  const double slope = (n * sxy - sx * sy) / denom;  // %/s
  t.valid = true;
  t.wear_pct_per_hour = slope * 3600.0;
  if (slope > 0.0) {
    const double last_s = pts.back().first;
    const double last_pct = pts.back().second;
    t.projected_exhaustion_s = last_s + (100.0 - last_pct) / slope;
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  Metric metric = Metric::kWear;
  std::size_t bins = 64;
  bool order_by_pool = false;
  bool check = false;
  std::string csv_out, svg_out, path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--heatmap" && i + 1 < argc) {
      const std::string m = argv[++i];
      if (m == "wear") metric = Metric::kWear;
      else if (m == "valid") metric = Metric::kValid;
      else if (m == "age") metric = Metric::kAge;
      else {
        std::fprintf(stderr, "--heatmap must be wear|valid|age\n");
        return 2;
      }
    } else if (arg == "--bins" && i + 1 < argc) {
      bins = std::strtoull(argv[++i], nullptr, 10);
      if (!bins) bins = 1;
    } else if (arg == "--order" && i + 1 < argc) {
      const std::string o = argv[++i];
      if (o == "device") order_by_pool = false;
      else if (o == "pool") order_by_pool = true;
      else {
        std::fprintf(stderr, "--order must be device|pool\n");
        return 2;
      }
    } else if (arg == "--csv-out" && i + 1 < argc) {
      csv_out = argv[++i];
    } else if (arg == "--svg-out" && i + 1 < argc) {
      svg_out = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    usage(argv[0]);
    return 2;
  }

  Analysis a;
  if (!analyze(path, &a)) return 1;
  if (!a.have_header) {
    std::fprintf(stderr, "esphealth: %s has no health header\n", path.c_str());
    return 1;
  }
  if (a.epochs.empty()) {
    std::fprintf(stderr, "esphealth: %s has no epochs\n", path.c_str());
    return 1;
  }

  std::printf("health stream: %s\n", path.c_str());
  std::printf("  ftl %s, %" PRIu64 " chips x %" PRIu64 " blocks x %" PRIu64
              " pages, %" PRIu64 " subpages, seed %" PRIu64 "\n",
              a.ftl.c_str(), a.chips, a.blocks_per_chip, a.pages_per_block,
              a.subs, a.seed);
  std::printf("  %zu epochs, interval %.6gs, rated P/E %" PRIu64 "\n",
              a.epochs.size(), a.interval_us / 1e6, a.rated_pe);

  // Column order: physical, or grouped by final-epoch pool (free, full,
  // sub, fine) with device order inside each group.
  std::vector<std::uint32_t> order(a.total_blocks());
  std::iota(order.begin(), order.end(), 0u);
  if (order_by_pool) {
    const std::vector<Blk>& last = a.epochs.back().blocks;
    const auto rank = [](char p) {
      switch (p) {
        case 'f': return 0;
        case 'F': return 1;
        case 'S': return 2;
        case 'L': return 3;
      }
      return 4;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t x, std::uint32_t y) {
                       return rank(last[x].pool) < rank(last[y].pool);
                     });
  }

  const Heatmap h = build_heatmap(a, metric, bins, order);
  print_heatmap(h, metric);

  // Per-pool wear at the final epoch.
  {
    const std::vector<Blk>& last = a.epochs.back().blocks;
    std::printf("\nper-pool wear at final epoch:\n");
    std::printf("  %-6s %8s %10s %10s %10s %12s\n", "pool", "blocks",
                "pe_mean", "pe_max", "valid%", "gc_victims");
    const char pools[] = {'f', 'F', 'S', 'L'};
    const char* names[] = {"free", "full", "sub", "fine"};
    for (int p = 0; p < 4; ++p) {
      std::uint64_t count = 0, pe_sum = 0, pe_max = 0, gcv = 0;
      std::uint64_t valid = 0, cap = 0;
      for (const Blk& b : last) {
        if (b.pool != pools[p]) continue;
        ++count;
        pe_sum += b.pe;
        pe_max = std::max<std::uint64_t>(pe_max, b.pe);
        gcv += b.gcv;
        valid += b.valid;
        cap += b.cap;
      }
      if (!count) continue;
      std::printf("  %-6s %8" PRIu64 " %10.2f %10" PRIu64 " %9.1f%% %12" PRIu64
                  "\n",
                  names[p], count,
                  static_cast<double>(pe_sum) / static_cast<double>(count),
                  pe_max,
                  cap ? 100.0 * static_cast<double>(valid) /
                            static_cast<double>(cap)
                      : 0.0,
                  gcv);
    }
  }

  // Per-epoch SMART trend with CoV/Gini recomputation.
  bool smart_consistent = true;
  std::printf("\nSMART trend (CoV/Gini recomputed from block rows):\n");
  std::printf("  %10s %8s %8s %8s %9s %9s %9s %8s %10s\n", "sim_s", "wear%",
              "pe_mean", "spare", "cov", "cov_rec", "gini", "gini_rec",
              "waf");
  for (const Epoch& e : a.epochs) {
    if (!e.have_smart) continue;
    const Recomputed r = recompute_wear(e.blocks);
    const bool cov_ok = std::fabs(r.cov - e.smart.wear_cov) < 1e-6;
    const bool gini_ok = std::fabs(r.gini - e.smart.wear_gini) < 1e-6;
    smart_consistent &= cov_ok && gini_ok;
    std::printf("  %10.3f %8.3f %8.2f %8" PRIu64 " %9.4f %9.4f %9.4f %8.4f "
                "%10.4f%s\n",
                e.us / 1e6, e.smart.media_wear_pct, e.smart.pe_mean,
                e.smart.spare_blocks, e.smart.wear_cov, r.cov,
                e.smart.wear_gini, r.gini, e.smart.overall_waf,
                cov_ok && gini_ok ? "" : "  MISMATCH");
  }

  // Trend projection vs the stream's own erase-rate horizon.
  const Trend trend = fit_trend(a);
  std::printf("\nhealth-trend projection:\n");
  if (trend.valid && trend.wear_pct_per_hour > 0.0) {
    std::printf("  media wear slope: %.4g %% per simulated hour\n",
                trend.wear_pct_per_hour);
    std::printf("  projected P/E exhaustion: %.4g simulated s\n",
                trend.projected_exhaustion_s);
  } else {
    std::printf("  (needs >= 2 epochs with increasing wear)\n");
  }
  const Smart& last_smart = a.epochs.back().smart;
  if (last_smart.pe_horizon_s >= 0.0)
    std::printf("  stream erase-rate horizon: %.4g simulated s%s\n",
                a.epochs.back().us / 1e6 + last_smart.pe_horizon_s,
                trend.valid && trend.projected_exhaustion_s > 0.0
                    ? "  (cross-check: linear fit above)"
                    : "");

  if (!csv_out.empty()) {
    if (!write_csv(h, metric, csv_out)) return 1;
    std::printf("\ncsv: wrote %s (%zu epochs x %zu bins)\n", csv_out.c_str(),
                h.rows.size(), h.bins);
  }
  if (!svg_out.empty()) {
    if (!write_svg(h, metric, svg_out)) return 1;
    std::printf("svg: wrote %s\n", svg_out.c_str());
  }

  std::printf("\nstream: %" PRIu64 " lines", a.lines);
  if (a.have_end)
    std::printf(", trailer: %" PRIu64 " epochs, %" PRIu64 " lines",
                a.end_epochs, a.end_lines);
  else
    std::printf(", NO end trailer (run did not finish cleanly)");
  if (a.unknown_lines) std::printf(", %" PRIu64 " unknown", a.unknown_lines);
  if (a.orphan_rows) std::printf(", %" PRIu64 " orphan rows", a.orphan_rows);
  std::printf("\n");

  if (check) {
    bool ok = true;
    if (!a.have_end) {
      std::fprintf(stderr, "esphealth: CHECK FAIL: missing end trailer\n");
      ok = false;
    }
    if (a.have_end && a.end_lines != a.lines) {
      std::fprintf(stderr,
                   "esphealth: CHECK FAIL: trailer says %" PRIu64
                   " lines, stream has %" PRIu64 "\n",
                   a.end_lines, a.lines);
      ok = false;
    }
    if (!smart_consistent) {
      std::fprintf(stderr,
                   "esphealth: CHECK FAIL: smart CoV/Gini disagree with "
                   "recomputation from block rows\n");
      ok = false;
    }
    if (a.orphan_rows) {
      std::fprintf(stderr, "esphealth: CHECK FAIL: %" PRIu64 " orphan rows\n",
                   a.orphan_rows);
      ok = false;
    }
    std::printf("check: %s\n", ok ? "PASS" : "FAIL");
    if (!ok) return 1;
  }
  return 0;
}
