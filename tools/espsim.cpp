// espsim: command-line experiment runner for the espnand simulator.
//
//   espsim --ftl sub --profile varmail --requests 100000
//   espsim --ftl fgm --r-small 1.0 --r-synch 0.5 --reads 0.2
//   espsim --ftl cgm,fgm,sub --profile varmail,ycsb --jobs 4   # sweep
//   espsim --help
//
// Builds an SSD per the flags, preconditions it, runs the workload and
// prints throughput, latency percentiles, WAF, GC/erase counts, wear and
// mapping-memory numbers -- everything a quick what-if needs without
// writing code against the library.
//
// SWEEP MODE: when --ftl and/or --profile carry comma-separated lists, the
// cross product of cells runs on the parallel experiment runner (--jobs N
// workers, default hardware concurrency) and prints one comparison row per
// cell. Per-cell results are bit-identical for every --jobs value; the
// --manifest-out JSON records what ran where (see docs/PARALLEL_RUNNER.md).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/build_info.h"
#include "core/experiment.h"
#include "core/parallel_runner.h"
#include "core/ssd.h"
#include "ftl/wear_metrics.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "util/table_printer.h"
#include "workload/profiles.h"

namespace {

using namespace esp;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --ftl cgm|fgm|sub|sectorlog   FTL to run (default sub); a comma\n"
      "                                list sweeps several FTLs in parallel\n"
      "  --profile NAME                sysbench|varmail|postmark|ycsb|tpcc;\n"
      "                                a comma list sweeps several profiles\n"
      "  --jobs N                      sweep worker threads (default: hw\n"
      "                                concurrency; results identical for\n"
      "                                any N)\n"
      "  --manifest-out PATH           write the sweep's run manifest JSON\n"
      "  --requests N                  measured requests (default 100000)\n"
      "  --warmup N                    unmeasured warmup requests (default N)\n"
      "  --r-small F --r-synch F       workload mix (ignored with --profile)\n"
      "  --reads F                     read fraction (ignored with --profile)\n"
      "  --small-footprint F           small-write working-set fraction\n"
      "  --capacity-gib F              raw capacity (default 1.0); scales\n"
      "                                block count, keeps the paper layout\n"
      "  --geometry paper|prod         run a full named geometry profile\n"
      "                                instead of the capacity-scaled\n"
      "                                default (paper: 16 GiB / 4096 blocks,\n"
      "                                prod: 64 GiB / 65536 blocks);\n"
      "                                incompatible with --capacity-gib\n"
      "  --channels N                  explicit device shape overrides,\n"
      "  --chips-per-channel N         applied on top of --geometry (or the\n"
      "  --blocks-per-chip N           paper channel/page layout when no\n"
      "  --pages-per-block N           profile is named)\n"
      "  --shards N                    split the cell into N shared-nothing\n"
      "                                shard simulations (channel groups +\n"
      "                                page-striped LBA slices) run in\n"
      "                                parallel and merged deterministically\n"
      "                                (default 1 = unsharded; N must divide\n"
      "                                the channel count; single-tenant only)\n"
      "  --shard-stripe-pages N        LBA-routing stripe unit in full pages\n"
      "                                (default 64; part of the sharded\n"
      "                                run's identity)\n"
      "  --maintenance scan|index      FTL maintenance implementation:\n"
      "                                original O(device) scans or the\n"
      "                                incremental indices (default index;\n"
      "                                decisions are bit-identical -- CI\n"
      "                                diffs the journals to prove it)\n"
      "  --region F                    subpage/log region fraction (0.20)\n"
      "  --queue-depth N               host queue depth (default 128)\n"
      "  --tenants N                   multi-tenant mode: N tenants, each on\n"
      "                                its own namespace slice of the shared\n"
      "                                device (see docs/QOS.md)\n"
      "  --qos fifo|rr|wshare          scheduler between tenants (fifo)\n"
      "  --tenant-profile LIST         per-tenant workload profiles (comma\n"
      "                                list, cycled over tenants; default:\n"
      "                                the run's --profile / manual mix)\n"
      "  --tenant-weights LIST         per-tenant wshare weights (cycled)\n"
      "  --tenant-qd LIST              per-tenant queue depths (cycled,\n"
      "                                default 8)\n"
      "  --tenant-think LIST           per-tenant think time us/request\n"
      "                                (cycled; paces a tenant's arrivals)\n"
      "  --precondition F              fraction of logical space pre-filled\n"
      "  --seed N                      workload seed (default 42)\n"
      "  --no-verify                   skip end-to-end data verification\n"
      "  --metrics-out PATH            write metrics JSON (counters, gauges,\n"
      "                                latency histograms, samples)\n"
      "  --trace-out PATH              write per-request op trace; Chrome\n"
      "                                trace_event if PATH ends in .json,\n"
      "                                JSONL otherwise\n"
      "  --samples-out PATH            write time-series rows (.csv or JSON)\n"
      "  --sample-interval SECONDS     time-series sampling period in\n"
      "                                simulated seconds (default 0 = off)\n"
      "  --trace-capacity N            trace ring size (default 65536)\n"
      "  --journal-out PATH            stream the causal-attribution journal\n"
      "                                (JSONL; see docs/TELEMETRY.md); in\n"
      "                                sweep mode each cell writes\n"
      "                                PATH with its cell key spliced in\n"
      "  --journal-max-events N        journal admission cap (0 = unlimited)\n"
      "  --audit                       run the online invariant auditor;\n"
      "                                violations abort with the offending\n"
      "                                cause chain\n"
      "  --health-out PATH             stream device-health snapshots (JSONL\n"
      "                                per-block deltas + SMART attributes;\n"
      "                                see docs/HEALTH.md); in sweep mode\n"
      "                                each cell writes PATH with its cell\n"
      "                                key spliced in\n"
      "  --health-interval SECONDS     health epoch period in simulated\n"
      "                                seconds (default 0 = endpoint epochs\n"
      "                                only: attach baseline + run end)\n"
      "  --health-rated-pe N           rated P/E endurance for media-wear %%\n"
      "                                and the exhaustion horizon (3000)\n"
      "  --forensics-out PATH          stream tail-latency forensics (JSONL\n"
      "                                blame windows + slowest-N exemplars;\n"
      "                                see docs/FORENSICS.md); in sweep mode\n"
      "                                each cell writes PATH with its cell\n"
      "                                key spliced in\n"
      "  --forensics-top N             slowest-N exemplars retained (16)\n"
      "  --snapshot-out PATH           write a deterministic whole-simulator\n"
      "                                snapshot during the run (see\n"
      "                                docs/LIFETIME.md; single runs only)\n"
      "  --snapshot-after N            measured requests completed before\n"
      "                                the snapshot is taken (default 0 =\n"
      "                                at the start of the measured window)\n"
      "  --snapshot-in PATH            restore from a snapshot instead of\n"
      "                                preconditioning + warmup; with the\n"
      "                                saving run's --seed the run continues\n"
      "                                it bit-identically, with a different\n"
      "                                --seed it starts a fresh measurement\n"
      "                                leg over the restored device\n"
      "  --version                     print build provenance and exit\n",
      argv0);
}

std::optional<core::FtlKind> parse_ftl(const std::string& name) {
  if (name == "cgm") return core::FtlKind::kCgm;
  if (name == "fgm") return core::FtlKind::kFgm;
  if (name == "sub") return core::FtlKind::kSub;
  if (name == "sectorlog") return core::FtlKind::kSectorLog;
  return std::nullopt;
}

std::optional<workload::Benchmark> parse_profile(const std::string& name) {
  if (name == "sysbench") return workload::Benchmark::kSysbench;
  if (name == "varmail") return workload::Benchmark::kVarmail;
  if (name == "postmark") return workload::Benchmark::kPostmark;
  if (name == "ycsb") return workload::Benchmark::kYcsb;
  if (name == "tpcc") return workload::Benchmark::kTpcc;
  return std::nullopt;
}

/// "journal.jsonl" + "espsim/varmail/sub" -> "journal.espsim-varmail-sub.jsonl"
/// (cell key spliced before the extension, '/' flattened to '-').
std::string cell_journal_path(const std::string& base, std::string key) {
  for (auto& c : key)
    if (c == '/') c = '-';
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + "." + key;
  return base.substr(0, dot) + "." + key + base.substr(dot);
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) items.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentSpec spec;
  spec.ssd.geometry.channels = 8;
  spec.ssd.geometry.chips_per_channel = 4;
  spec.ssd.geometry.blocks_per_chip = 16;
  spec.ssd.geometry.pages_per_block = 128;
  spec.ssd.logical_fraction = 0.80;
  spec.ssd.queue_depth = 128;
  spec.ssd.ftl = core::FtlKind::kSub;

  std::vector<core::FtlKind> kinds;         // empty -> default sub
  std::vector<workload::Benchmark> profiles;  // empty -> manual workload
  unsigned jobs = 0;  // 0 = hardware concurrency (sweep mode only)
  std::string manifest_out;
  std::uint64_t requests = 100000;
  std::optional<std::uint64_t> warmup;
  double capacity_gib = 1.0;
  bool capacity_set = false;
  std::string geometry_profile;
  std::uint32_t ov_channels = 0, ov_chips = 0, ov_blocks = 0, ov_pages = 0;
  workload::SyntheticParams manual;
  manual.r_small = 1.0;
  manual.r_synch = 1.0;
  manual.small_footprint_fraction = 0.02;
  std::uint64_t seed = 42;
  std::string metrics_out;
  std::string trace_out;
  std::string samples_out;
  double sample_interval_s = 0.0;
  std::size_t trace_capacity = 1 << 16;
  std::string journal_out;
  std::uint64_t journal_max_events = 0;
  bool audit = false;
  std::string health_out;
  double health_interval_s = 0.0;
  std::uint32_t health_rated_pe = 3000;
  std::string forensics_out;
  std::uint32_t forensics_top = 16;
  std::string snapshot_in;
  std::string snapshot_out;
  std::uint64_t snapshot_after = 0;
  unsigned shards = 1;
  std::uint32_t shard_stripe_pages = 64;
  std::size_t tenants = 0;
  sim::QosPolicy qos = sim::QosPolicy::kFifo;
  std::vector<workload::Benchmark> tenant_profiles;
  std::vector<double> tenant_weights;
  std::vector<std::uint32_t> tenant_qds;
  std::vector<double> tenant_thinks;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--version") {
      std::printf("%s\n", core::build_info_line().c_str());
      return 0;
    } else if (arg == "--ftl") {
      for (const auto& name : split_list(next())) {
        const auto kind = parse_ftl(name);
        if (!kind) {
          std::fprintf(stderr, "unknown --ftl value '%s'\n", name.c_str());
          return 2;
        }
        kinds.push_back(*kind);
      }
    } else if (arg == "--profile") {
      for (const auto& name : split_list(next())) {
        const auto bench = parse_profile(name);
        if (!bench) {
          std::fprintf(stderr, "unknown --profile value '%s'\n", name.c_str());
          return 2;
        }
        profiles.push_back(*bench);
      }
    } else if (arg == "--jobs") {
      jobs = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--manifest-out") {
      manifest_out = next();
    } else if (arg == "--requests") {
      requests = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--warmup") {
      warmup = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--r-small") {
      manual.r_small = std::atof(next());
    } else if (arg == "--r-synch") {
      manual.r_synch = std::atof(next());
    } else if (arg == "--reads") {
      manual.read_fraction = std::atof(next());
    } else if (arg == "--small-footprint") {
      manual.small_footprint_fraction = std::atof(next());
    } else if (arg == "--capacity-gib") {
      capacity_gib = std::atof(next());
      capacity_set = true;
    } else if (arg == "--geometry") {
      geometry_profile = next();
      if (geometry_profile != "paper" && geometry_profile != "prod") {
        std::fprintf(stderr, "--geometry must be paper|prod\n");
        return 2;
      }
    } else if (arg == "--channels") {
      ov_channels = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--chips-per-channel") {
      ov_chips = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--blocks-per-chip") {
      ov_blocks = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--pages-per-block") {
      ov_pages = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--maintenance") {
      const std::string mode = next();
      if (mode == "scan") {
        spec.ssd.reference_scan_maintenance = true;
      } else if (mode == "index") {
        spec.ssd.reference_scan_maintenance = false;
      } else {
        std::fprintf(stderr, "--maintenance must be scan|index\n");
        return 2;
      }
    } else if (arg == "--region") {
      spec.ssd.subpage_region_fraction = std::atof(next());
    } else if (arg == "--queue-depth") {
      spec.ssd.queue_depth =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--precondition") {
      spec.precondition_fraction = std::atof(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-verify") {
      spec.verify = false;
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--samples-out") {
      samples_out = next();
    } else if (arg == "--sample-interval") {
      sample_interval_s = std::atof(next());
    } else if (arg == "--trace-capacity") {
      trace_capacity = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--journal-out") {
      journal_out = next();
    } else if (arg == "--journal-max-events") {
      journal_max_events = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--health-out") {
      health_out = next();
    } else if (arg == "--health-interval") {
      health_interval_s = std::atof(next());
    } else if (arg == "--health-rated-pe") {
      health_rated_pe =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--forensics-out") {
      forensics_out = next();
    } else if (arg == "--forensics-top") {
      forensics_top =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--snapshot-in") {
      snapshot_in = next();
    } else if (arg == "--snapshot-out") {
      snapshot_out = next();
    } else if (arg == "--snapshot-after") {
      snapshot_after = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--shards") {
      shards = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
      if (shards == 0) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 2;
      }
    } else if (arg == "--shard-stripe-pages") {
      shard_stripe_pages =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--tenants") {
      tenants = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--qos") {
      const std::string name = next();
      const auto policy = sim::parse_qos_policy(name);
      if (!policy) {
        std::fprintf(stderr, "--qos must be fifo|rr|wshare, got '%s'\n",
                     name.c_str());
        return 2;
      }
      qos = *policy;
    } else if (arg == "--tenant-profile") {
      for (const auto& name : split_list(next())) {
        const auto bench = parse_profile(name);
        if (!bench) {
          std::fprintf(stderr, "unknown --tenant-profile value '%s'\n",
                       name.c_str());
          return 2;
        }
        tenant_profiles.push_back(*bench);
      }
    } else if (arg == "--tenant-weights") {
      for (const auto& v : split_list(next()))
        tenant_weights.push_back(std::atof(v.c_str()));
    } else if (arg == "--tenant-qd") {
      for (const auto& v : split_list(next()))
        tenant_qds.push_back(
            static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10)));
    } else if (arg == "--tenant-think") {
      for (const auto& v : split_list(next()))
        tenant_thinks.push_back(std::atof(v.c_str()));
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  // Device shape. An explicit geometry (named profile and/or per-dimension
  // overrides) is taken literally and bypasses the capacity scaling; the
  // default path scales block count to the requested capacity (keeping the
  // paper's channel layout and page geometry).
  const bool geometry_explicit = !geometry_profile.empty() || ov_channels ||
                                 ov_chips || ov_blocks || ov_pages;
  if (geometry_explicit) {
    if (capacity_set) {
      std::fprintf(stderr,
                   "--capacity-gib is incompatible with --geometry / "
                   "explicit device-shape overrides\n");
      return 2;
    }
    if (!geometry_profile.empty())
      spec.ssd.geometry = nand::geometry_profile(geometry_profile);
    if (ov_channels) spec.ssd.geometry.channels = ov_channels;
    if (ov_chips) spec.ssd.geometry.chips_per_channel = ov_chips;
    if (ov_blocks) spec.ssd.geometry.blocks_per_chip = ov_blocks;
    if (ov_pages) spec.ssd.geometry.pages_per_block = ov_pages;
    try {
      spec.ssd.geometry.validate();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad geometry: %s\n", e.what());
      return 2;
    }
  } else {
    const double gib_per_block_row =  // one block on every chip
        static_cast<double>(spec.ssd.geometry.total_chips()) *
        spec.ssd.geometry.block_bytes() / (1024.0 * 1024.0 * 1024.0);
    spec.ssd.geometry.blocks_per_chip = std::max(
        4u,
        static_cast<std::uint32_t>(capacity_gib / gib_per_block_row + 0.5));
  }
  // On tiny devices the region quota is floored at one block per chip,
  // which can exceed the requested fraction; shrink the logical exposure
  // so the subFTL/sectorLog feasibility bound (logical + region <= total)
  // still holds.
  {
    const double total_blocks =
        static_cast<double>(spec.ssd.geometry.total_blocks());
    const double region_fraction =
        std::max(spec.ssd.subpage_region_fraction,
                 static_cast<double>(spec.ssd.geometry.total_chips()) /
                     total_blocks);
    spec.ssd.logical_fraction =
        std::min(spec.ssd.logical_fraction, 0.97 - region_fraction);
  }

  if (kinds.empty()) kinds.push_back(core::FtlKind::kSub);
  spec.warmup_requests = warmup.value_or(requests);
  spec.shards = shards;
  spec.shard_stripe_pages = shard_stripe_pages;

  // Builds the workload for one cell. Every cell of a sweep uses the SAME
  // seed, so all FTLs of a profile replay the identical request stream
  // (the paper's comparison methodology).
  const auto workload_for =
      [&](const std::optional<workload::Benchmark>& bench) {
        workload::SyntheticParams params;
        if (bench) {
          params = workload::benchmark_profile(
              *bench, 0, 0, spec.ssd.geometry.subpages_per_page, seed);
        } else {
          params = manual;
          params.seed = seed;
        }
        params.request_count = spec.warmup_requests + requests;
        return params;
      };

  // Multi-tenant mode: replace the single stream with N tenant lanes. The
  // request budget is split evenly; per-tenant seeds derive from the run
  // seed so no two lanes replay the same sequence. List-valued flags cycle
  // over tenants (one value = all tenants).
  if (tenants > 0) {
    const std::uint64_t total = spec.warmup_requests + requests;
    const std::uint64_t per_tenant = (total + tenants - 1) / tenants;
    for (std::size_t i = 0; i < tenants; ++i) {
      core::TenantSpec t;
      std::optional<workload::Benchmark> bench;
      if (!tenant_profiles.empty())
        bench = tenant_profiles[i % tenant_profiles.size()];
      else if (!profiles.empty())
        bench = profiles.front();
      t.name = (bench ? workload::benchmark_name(*bench)
                      : std::string("manual")) +
               "-" + std::to_string(i);
      t.workload = workload_for(bench);
      t.workload.footprint_sectors = 0;  // default: the tenant's slice share
      t.workload.request_count = per_tenant;
      t.workload.seed =
          core::stable_cell_seed("tenant/" + std::to_string(i), seed);
      if (!tenant_thinks.empty())
        t.workload.think_us = tenant_thinks[i % tenant_thinks.size()];
      if (!tenant_weights.empty())
        t.weight = tenant_weights[i % tenant_weights.size()];
      if (!tenant_qds.empty()) t.queue_depth = tenant_qds[i % tenant_qds.size()];
      spec.tenants.push_back(std::move(t));
    }
    spec.qos = qos;
  }

  const std::size_t cell_count =
      kinds.size() * std::max<std::size_t>(profiles.size(), 1);
  if (cell_count > 1) {
    // ---- sweep mode: cross product of profiles x FTLs on the runner ----
    if (!snapshot_in.empty() || !snapshot_out.empty()) {
      std::fprintf(stderr,
                   "--snapshot-in/--snapshot-out only apply to single runs, "
                   "not sweeps\n");
      return 2;
    }
    if (!metrics_out.empty() || !trace_out.empty() || !samples_out.empty() ||
        sample_interval_s > 0.0) {
      std::fprintf(stderr,
                   "telemetry outputs (--metrics-out/--trace-out/"
                   "--samples-out/--sample-interval) only apply to single "
                   "runs, not sweeps\n");
      return 2;
    }
    std::vector<std::optional<workload::Benchmark>> sweep_profiles;
    if (profiles.empty()) {
      sweep_profiles.emplace_back(std::nullopt);
    } else {
      for (const auto bench : profiles) sweep_profiles.emplace_back(bench);
    }
    // Sweep workers are the parallelism unit; each sharded cell runs its
    // shards serially on its own worker (results identical either way).
    spec.shard_jobs = 1;
    std::vector<core::ExperimentCell> cells;
    for (const auto& bench : sweep_profiles) {
      for (const auto kind : kinds) {
        core::ExperimentCell cell;
        cell.key = "espsim/" +
                   (bench ? workload::benchmark_name(*bench)
                          : std::string("manual")) +
                   "/" + core::ftl_kind_name(kind);
        cell.spec = spec;
        cell.spec.ssd.ftl = kind;
        cell.spec.workload = workload_for(bench);
        if (!journal_out.empty())
          cell.spec.journal_path = cell_journal_path(journal_out, cell.key);
        cell.spec.journal_max_events = journal_max_events;
        cell.spec.audit = audit;
        if (!health_out.empty())
          cell.spec.health_path = cell_journal_path(health_out, cell.key);
        cell.spec.health_interval_us = health_interval_s * sim_time::kSecond;
        cell.spec.health_rated_pe = health_rated_pe;
        if (!forensics_out.empty())
          cell.spec.forensics_path =
              cell_journal_path(forensics_out, cell.key);
        cell.spec.forensics_top = forensics_top;
        cells.push_back(std::move(cell));
      }
    }

    std::printf("device   : %s\n", spec.ssd.geometry.describe().c_str());
    std::printf("sweep    : %zu cells (%zu workload(s) x %zu FTL(s)), "
                "seed %llu\n\n",
                cells.size(), sweep_profiles.size(), kinds.size(),
                static_cast<unsigned long long>(seed));

    core::ParallelRunnerConfig runner_cfg;
    runner_cfg.jobs = jobs;
    runner_cfg.base_seed = seed;
    runner_cfg.derive_seeds = false;  // seeds fixed per cell above
    core::ParallelRunner runner(runner_cfg);
    const auto results = runner.run(cells);
    std::printf("ran %zu cells on %u worker(s) in %.1fs\n\n", cells.size(),
                runner.manifest().jobs_used, runner.manifest().wall_seconds);

    util::TablePrinter t({"cell", "MB/s", "IOPS", "svc p50/p99",
                          "resp p50/p99", "WAF", "req WAF", "GC", "erases",
                          "chip/chan util", "verify"});
    int exit_code = 0;
    for (const auto& cell : results) {
      if (!cell.ok) {
        std::fprintf(stderr, "FAILED: %s: %s\n", cell.key.c_str(),
                     cell.error.c_str());
        exit_code = 1;
        continue;
      }
      const auto& r = cell.result;
      t.add_row({cell.key, util::TablePrinter::num(r.host_mb_per_sec, 1),
                 util::TablePrinter::num(r.iops, 0),
                 util::TablePrinter::num(r.raw.latency_p50_us, 0) + "/" +
                     util::TablePrinter::num(r.raw.latency_p99_us, 0),
                 util::TablePrinter::num(r.raw.response_p50_us, 0) + "/" +
                     util::TablePrinter::num(r.raw.response_p99_us, 0),
                 util::TablePrinter::num(r.overall_waf, 3),
                 util::TablePrinter::num(r.small_request_waf, 3),
                 std::to_string(r.gc_invocations), std::to_string(r.erases),
                 util::TablePrinter::num(r.chip_util_mean * 100.0, 1) + "/" +
                     util::TablePrinter::num(r.channel_util_mean * 100.0, 1) +
                     "%",
                 std::to_string(r.verify_failures)});
      if (r.verify_failures != 0) exit_code = 1;
    }
    t.print(std::cout);

    if (!manifest_out.empty()) {
      std::ofstream os(manifest_out);
      if (!os) {
        std::fprintf(stderr, "failed to open %s\n", manifest_out.c_str());
        return 1;
      }
      core::ParallelRunner::write_manifest_json(runner.manifest(), os);
      std::printf("\nmanifest : wrote %s\n", manifest_out.c_str());
    }
    return exit_code;
  }

  // ---- single-run mode (unchanged behavior, full telemetry support) ----
  if (!manifest_out.empty())
    std::fprintf(stderr,
                 "note: --manifest-out only applies to sweeps; ignored\n");
  spec.ssd.ftl = kinds.front();
  spec.shard_jobs = jobs;  // single run: shards are the parallelism unit
  spec.journal_path = journal_out;
  spec.journal_max_events = journal_max_events;
  spec.audit = audit;
  spec.health_path = health_out;
  spec.health_interval_us = health_interval_s * sim_time::kSecond;
  spec.health_rated_pe = health_rated_pe;
  spec.forensics_path = forensics_out;
  spec.forensics_top = forensics_top;
  spec.snapshot_in = snapshot_in;
  spec.snapshot_out = snapshot_out;
  spec.snapshot_after_requests = snapshot_after;
  const std::optional<workload::Benchmark> profile =
      profiles.empty() ? std::nullopt
                       : std::optional<workload::Benchmark>(profiles.front());
  spec.workload = workload_for(profile);

  std::printf("device   : %s\n", spec.ssd.geometry.describe().c_str());
  std::printf("ftl      : %s   queue depth %u\n",
              core::ftl_kind_name(spec.ssd.ftl).c_str(),
              spec.ssd.queue_depth);
  if (!spec.tenants.empty())
    std::printf("tenants  : %zu, qos %s\n", spec.tenants.size(),
                sim::qos_policy_name(spec.qos).c_str());
  if (spec.shards > 1)
    std::printf("shards   : %u (stripe %u pages)\n", spec.shards,
                spec.shard_stripe_pages);
  std::printf("workload : %s, %llu measured requests (+%llu warmup), "
              "r_small %.2f r_synch %.2f reads %.2f\n\n",
              profile ? workload::benchmark_name(*profile).c_str()
                      : "manual",
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(spec.warmup_requests),
              spec.workload.r_small, spec.workload.r_synch,
              spec.workload.read_fraction);

  // Telemetry is optional: only instantiated when an output or sampling
  // flag asks for it, so the default run stays sink-free.
  std::optional<telemetry::Telemetry> tel;
  if (!metrics_out.empty() || !trace_out.empty() || !samples_out.empty() ||
      sample_interval_s > 0.0) {
    telemetry::TelemetryConfig tcfg;
    tcfg.trace_capacity = trace_capacity;
    tcfg.sample_interval_us = sample_interval_s * sim_time::kSecond;
    tel.emplace(tcfg);
    spec.telemetry = &*tel;
  }

  core::RunResult result;
  try {
    result = core::run_experiment(spec);
  } catch (const std::exception& e) {
    // Auditor violations (std::logic_error) and journal I/O failures land
    // here; the message carries the offending cause chain.
    std::fprintf(stderr, "run failed: %s\n", e.what());
    return 1;
  }
  const auto& stats = result.raw.ftl_stats;

  if (!snapshot_in.empty())
    std::printf("snapshot : restored %s\n", snapshot_in.c_str());
  if (!snapshot_out.empty())
    std::printf("snapshot : wrote %s (after %llu measured requests)\n",
                snapshot_out.c_str(),
                static_cast<unsigned long long>(snapshot_after));
  if (!journal_out.empty())
    std::printf("journal  : wrote %s (%llu events, %llu truncated)\n",
                journal_out.c_str(),
                static_cast<unsigned long long>(result.journal_events),
                static_cast<unsigned long long>(result.journal_truncated));
  if (!health_out.empty())
    std::printf("health   : wrote %s (%llu epochs, %llu lines)\n",
                health_out.c_str(),
                static_cast<unsigned long long>(result.health_epochs),
                static_cast<unsigned long long>(result.health_lines));
  if (!forensics_out.empty())
    std::printf("forensics: wrote %s (%llu requests, %llu exemplars)\n",
                forensics_out.c_str(),
                static_cast<unsigned long long>(result.forensics_requests),
                static_cast<unsigned long long>(result.forensics_exemplars));

  if (tel) {
    auto emit = [](const char* what, const std::string& path, bool ok) {
      if (ok)
        std::printf("%-8s : wrote %s\n", what, path.c_str());
      else
        std::fprintf(stderr, "%s: failed to write %s\n", what, path.c_str());
      return ok;
    };
    bool io_ok = true;
    if (!metrics_out.empty())
      io_ok &= emit("metrics", metrics_out,
                    telemetry::write_metrics_file(metrics_out, *tel));
    if (!trace_out.empty())
      io_ok &= emit("trace", trace_out,
                    telemetry::write_trace_file(trace_out, *tel));
    if (!samples_out.empty())
      io_ok &= emit("samples", samples_out,
                    telemetry::write_samples_file(samples_out, *tel));
    if (!io_ok) return 1;
    std::printf("\n");
  }

  util::TablePrinter t({"metric", "value"});
  t.add_row({"host throughput", util::TablePrinter::num(
                                    result.host_mb_per_sec, 1) + " MB/s"});
  t.add_row({"IOPS", util::TablePrinter::num(result.iops, 0)});
  t.add_row({"latency p50 / p99 / p999",
             util::TablePrinter::num(result.raw.latency_p50_us, 0) + " / " +
                 util::TablePrinter::num(result.raw.latency_p99_us, 0) +
                 " / " +
                 util::TablePrinter::num(result.raw.latency_p999_us, 0) +
                 " us"});
  t.add_row({"response p50 / p99 / p999",
             util::TablePrinter::num(result.raw.response_p50_us, 0) + " / " +
                 util::TablePrinter::num(result.raw.response_p99_us, 0) +
                 " / " +
                 util::TablePrinter::num(result.raw.response_p999_us, 0) +
                 " us"});
  t.add_row({"overall WAF", util::TablePrinter::num(result.overall_waf, 3)});
  t.add_row({"small-write request WAF",
             util::TablePrinter::num(result.small_request_waf, 3)});
  t.add_row({"GC invocations", std::to_string(result.gc_invocations)});
  t.add_row({"erases (window)", std::to_string(result.erases)});
  t.add_row({"RMW operations", std::to_string(result.rmw_ops)});
  t.add_row({"forward migrations", std::to_string(stats.forward_migrations)});
  t.add_row({"evictions (cold+retention)",
             std::to_string(stats.cold_evictions +
                            stats.retention_evictions)});
  t.add_row({"chip util min/mean/max",
             util::TablePrinter::num(result.chip_util_min * 100.0, 1) + " / " +
                 util::TablePrinter::num(result.chip_util_mean * 100.0, 1) +
                 " / " +
                 util::TablePrinter::num(result.chip_util_max * 100.0, 1) +
                 " %"});
  t.add_row({"channel util min/mean/max",
             util::TablePrinter::num(result.channel_util_min * 100.0, 1) +
                 " / " +
                 util::TablePrinter::num(result.channel_util_mean * 100.0, 1) +
                 " / " +
                 util::TablePrinter::num(result.channel_util_max * 100.0, 1) +
                 " %"});
  t.add_row({"mapping memory",
             util::TablePrinter::num(
                 static_cast<double>(result.mapping_bytes) / 1024.0, 1) +
                 " KiB"});
  t.add_row({"verify failures", std::to_string(result.verify_failures)});
  if (tel || !journal_out.empty() || audit)
    t.add_row({"trace events dropped", std::to_string(result.trace_dropped)});
  if (!journal_out.empty()) {
    t.add_row({"journal events", std::to_string(result.journal_events)});
    t.add_row({"journal truncated",
               std::to_string(result.journal_truncated)});
  }
  if (!health_out.empty()) {
    t.add_row({"health epochs", std::to_string(result.health_epochs)});
    t.add_row({"health lines", std::to_string(result.health_lines)});
  }
  if (!forensics_out.empty()) {
    t.add_row({"forensics requests",
               std::to_string(result.forensics_requests)});
    t.add_row({"forensics exemplars",
               std::to_string(result.forensics_exemplars)});
    t.add_row({"forensics truncated",
               std::to_string(result.forensics_truncated)});
  }
  t.print(std::cout);

  if (!result.tenants.empty()) {
    const double secs = sim_time::to_seconds(result.raw.elapsed_us());
    const std::uint64_t total_writes = [&] {
      std::uint64_t sum = 0;
      for (const auto& tm : result.tenants) sum += tm.host_write_sectors;
      return sum;
    }();
    std::printf("\nper-tenant (%s):\n",
                sim::qos_policy_name(spec.qos).c_str());
    util::TablePrinter tt({"tenant", "reqs", "IOPS", "svc p50/p99",
                           "wait p50/p99", "resp p50/p99/p999", "wr share"});
    for (const auto& tm : result.tenants) {
      const double iops =
          secs > 0.0 ? static_cast<double>(tm.requests) / secs : 0.0;
      tt.add_row(
          {tm.name, std::to_string(tm.requests),
           util::TablePrinter::num(iops, 0),
           util::TablePrinter::num(tm.service_p50_us, 0) + "/" +
               util::TablePrinter::num(tm.service_p99_us, 0),
           util::TablePrinter::num(tm.wait_p50_us, 0) + "/" +
               util::TablePrinter::num(tm.wait_p99_us, 0),
           util::TablePrinter::num(tm.response_p50_us, 0) + "/" +
               util::TablePrinter::num(tm.response_p99_us, 0) + "/" +
               util::TablePrinter::num(tm.response_p999_us, 0),
           util::TablePrinter::num(tm.write_share(total_writes), 3)});
    }
    tt.print(std::cout);
  }

  // Per-tenant tail blame: which phase the slowest retained requests of
  // each tenant spent their time in (multi-tenant forensics runs only).
  if (!result.tenant_blame.empty() && result.tenant_blame.size() > 1) {
    std::printf("\nper-tenant tail blame (slowest %u retained):\n",
                forensics_top);
    std::vector<std::string> cols = {"tenant", "reqs", "tail", "worst us"};
    for (std::size_t p = 0; p < telemetry::kPhaseCount; ++p)
      cols.push_back(phase_name(static_cast<telemetry::Phase>(p)));
    util::TablePrinter bt(cols);
    for (const auto& tb : result.tenant_blame) {
      double tail_total = 0.0;
      for (const double us : tb.tail_phase_us) tail_total += us;
      std::vector<std::string> row = {
          result.tenants.size() > tb.tenant ? result.tenants[tb.tenant].name
                                            : std::to_string(tb.tenant),
          std::to_string(tb.requests), std::to_string(tb.tail_requests),
          util::TablePrinter::num(tb.worst_response_us, 0)};
      for (const double us : tb.tail_phase_us)
        row.push_back(
            tail_total > 0.0
                ? util::TablePrinter::num(us / tail_total * 100.0, 1) + "%"
                : "-");
      bt.add_row(std::move(row));
    }
    bt.print(std::cout);
  }
  return result.verify_failures == 0 ? 0 : 1;
}
