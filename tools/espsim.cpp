// espsim: command-line experiment runner for the espnand simulator.
//
//   espsim --ftl sub --profile varmail --requests 100000
//   espsim --ftl fgm --r-small 1.0 --r-synch 0.5 --reads 0.2
//   espsim --help
//
// Builds an SSD per the flags, preconditions it, runs the workload and
// prints throughput, latency percentiles, WAF, GC/erase counts, wear and
// mapping-memory numbers -- everything a quick what-if needs without
// writing code against the library.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "core/experiment.h"
#include "core/ssd.h"
#include "ftl/wear_metrics.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "util/table_printer.h"
#include "workload/profiles.h"

namespace {

using namespace esp;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --ftl cgm|fgm|sub|sectorlog   FTL to run (default sub)\n"
      "  --profile NAME                sysbench|varmail|postmark|ycsb|tpcc\n"
      "  --requests N                  measured requests (default 100000)\n"
      "  --warmup N                    unmeasured warmup requests (default N)\n"
      "  --r-small F --r-synch F       workload mix (ignored with --profile)\n"
      "  --reads F                     read fraction (ignored with --profile)\n"
      "  --small-footprint F           small-write working-set fraction\n"
      "  --capacity-gib F              raw capacity (default 1.0)\n"
      "  --region F                    subpage/log region fraction (0.20)\n"
      "  --queue-depth N               host queue depth (default 128)\n"
      "  --precondition F              fraction of logical space pre-filled\n"
      "  --seed N                      workload seed (default 42)\n"
      "  --no-verify                   skip end-to-end data verification\n"
      "  --metrics-out PATH            write metrics JSON (counters, gauges,\n"
      "                                latency histograms, samples)\n"
      "  --trace-out PATH              write per-request op trace; Chrome\n"
      "                                trace_event if PATH ends in .json,\n"
      "                                JSONL otherwise\n"
      "  --samples-out PATH            write time-series rows (.csv or JSON)\n"
      "  --sample-interval SECONDS     time-series sampling period in\n"
      "                                simulated seconds (default 0 = off)\n"
      "  --trace-capacity N            trace ring size (default 65536)\n",
      argv0);
}

std::optional<core::FtlKind> parse_ftl(const std::string& name) {
  if (name == "cgm") return core::FtlKind::kCgm;
  if (name == "fgm") return core::FtlKind::kFgm;
  if (name == "sub") return core::FtlKind::kSub;
  if (name == "sectorlog") return core::FtlKind::kSectorLog;
  return std::nullopt;
}

std::optional<workload::Benchmark> parse_profile(const std::string& name) {
  if (name == "sysbench") return workload::Benchmark::kSysbench;
  if (name == "varmail") return workload::Benchmark::kVarmail;
  if (name == "postmark") return workload::Benchmark::kPostmark;
  if (name == "ycsb") return workload::Benchmark::kYcsb;
  if (name == "tpcc") return workload::Benchmark::kTpcc;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentSpec spec;
  spec.ssd.geometry.channels = 8;
  spec.ssd.geometry.chips_per_channel = 4;
  spec.ssd.geometry.blocks_per_chip = 16;
  spec.ssd.geometry.pages_per_block = 128;
  spec.ssd.logical_fraction = 0.80;
  spec.ssd.queue_depth = 128;
  spec.ssd.ftl = core::FtlKind::kSub;

  std::optional<workload::Benchmark> profile;
  std::uint64_t requests = 100000;
  std::optional<std::uint64_t> warmup;
  double capacity_gib = 1.0;
  workload::SyntheticParams manual;
  manual.r_small = 1.0;
  manual.r_synch = 1.0;
  manual.small_footprint_fraction = 0.02;
  std::uint64_t seed = 42;
  std::string metrics_out;
  std::string trace_out;
  std::string samples_out;
  double sample_interval_s = 0.0;
  std::size_t trace_capacity = 1 << 16;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--ftl") {
      const auto kind = parse_ftl(next());
      if (!kind) {
        std::fprintf(stderr, "unknown --ftl\n");
        return 2;
      }
      spec.ssd.ftl = *kind;
    } else if (arg == "--profile") {
      profile = parse_profile(next());
      if (!profile) {
        std::fprintf(stderr, "unknown --profile\n");
        return 2;
      }
    } else if (arg == "--requests") {
      requests = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--warmup") {
      warmup = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--r-small") {
      manual.r_small = std::atof(next());
    } else if (arg == "--r-synch") {
      manual.r_synch = std::atof(next());
    } else if (arg == "--reads") {
      manual.read_fraction = std::atof(next());
    } else if (arg == "--small-footprint") {
      manual.small_footprint_fraction = std::atof(next());
    } else if (arg == "--capacity-gib") {
      capacity_gib = std::atof(next());
    } else if (arg == "--region") {
      spec.ssd.subpage_region_fraction = std::atof(next());
    } else if (arg == "--queue-depth") {
      spec.ssd.queue_depth =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--precondition") {
      spec.precondition_fraction = std::atof(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-verify") {
      spec.verify = false;
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--samples-out") {
      samples_out = next();
    } else if (arg == "--sample-interval") {
      sample_interval_s = std::atof(next());
    } else if (arg == "--trace-capacity") {
      trace_capacity = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  // Scale block count to the requested capacity (keep the paper's channel
  // layout and page geometry).
  const double gib_per_block_row =  // one block on every chip
      static_cast<double>(spec.ssd.geometry.total_chips()) *
      spec.ssd.geometry.block_bytes() / (1024.0 * 1024.0 * 1024.0);
  spec.ssd.geometry.blocks_per_chip = std::max(
      4u, static_cast<std::uint32_t>(capacity_gib / gib_per_block_row + 0.5));
  // On tiny devices the region quota is floored at one block per chip,
  // which can exceed the requested fraction; shrink the logical exposure
  // so the subFTL/sectorLog feasibility bound (logical + region <= total)
  // still holds.
  {
    const double total_blocks =
        static_cast<double>(spec.ssd.geometry.total_blocks());
    const double region_fraction =
        std::max(spec.ssd.subpage_region_fraction,
                 static_cast<double>(spec.ssd.geometry.total_chips()) /
                     total_blocks);
    spec.ssd.logical_fraction =
        std::min(spec.ssd.logical_fraction, 0.97 - region_fraction);
  }

  if (profile) {
    spec.workload = workload::benchmark_profile(
        *profile, 0, 0, spec.ssd.geometry.subpages_per_page, seed);
  } else {
    spec.workload = manual;
    spec.workload.seed = seed;
  }
  spec.warmup_requests = warmup.value_or(requests);
  spec.workload.request_count = spec.warmup_requests + requests;

  std::printf("device   : %s\n", spec.ssd.geometry.describe().c_str());
  std::printf("ftl      : %s   queue depth %u\n",
              core::ftl_kind_name(spec.ssd.ftl).c_str(),
              spec.ssd.queue_depth);
  std::printf("workload : %s, %llu measured requests (+%llu warmup), "
              "r_small %.2f r_synch %.2f reads %.2f\n\n",
              profile ? workload::benchmark_name(*profile).c_str()
                      : "manual",
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(spec.warmup_requests),
              spec.workload.r_small, spec.workload.r_synch,
              spec.workload.read_fraction);

  // Telemetry is optional: only instantiated when an output or sampling
  // flag asks for it, so the default run stays sink-free.
  std::optional<telemetry::Telemetry> tel;
  if (!metrics_out.empty() || !trace_out.empty() || !samples_out.empty() ||
      sample_interval_s > 0.0) {
    telemetry::TelemetryConfig tcfg;
    tcfg.trace_capacity = trace_capacity;
    tcfg.sample_interval_us = sample_interval_s * sim_time::kSecond;
    tel.emplace(tcfg);
    spec.telemetry = &*tel;
  }

  const auto result = core::run_experiment(spec);
  const auto& stats = result.raw.ftl_stats;

  if (tel) {
    auto emit = [](const char* what, const std::string& path, bool ok) {
      if (ok)
        std::printf("%-8s : wrote %s\n", what, path.c_str());
      else
        std::fprintf(stderr, "%s: failed to write %s\n", what, path.c_str());
      return ok;
    };
    bool io_ok = true;
    if (!metrics_out.empty())
      io_ok &= emit("metrics", metrics_out,
                    telemetry::write_metrics_file(metrics_out, *tel));
    if (!trace_out.empty())
      io_ok &= emit("trace", trace_out,
                    telemetry::write_trace_file(trace_out, *tel));
    if (!samples_out.empty())
      io_ok &= emit("samples", samples_out,
                    telemetry::write_samples_file(samples_out, *tel));
    if (!io_ok) return 1;
    std::printf("\n");
  }

  util::TablePrinter t({"metric", "value"});
  t.add_row({"host throughput", util::TablePrinter::num(
                                    result.host_mb_per_sec, 1) + " MB/s"});
  t.add_row({"IOPS", util::TablePrinter::num(result.iops, 0)});
  t.add_row({"latency p50 / p99",
             util::TablePrinter::num(result.raw.latency_p50_us, 0) + " / " +
                 util::TablePrinter::num(result.raw.latency_p99_us, 0) +
                 " us"});
  t.add_row({"overall WAF", util::TablePrinter::num(result.overall_waf, 3)});
  t.add_row({"small-write request WAF",
             util::TablePrinter::num(result.small_request_waf, 3)});
  t.add_row({"GC invocations", std::to_string(result.gc_invocations)});
  t.add_row({"erases (window)", std::to_string(result.erases)});
  t.add_row({"RMW operations", std::to_string(result.rmw_ops)});
  t.add_row({"forward migrations", std::to_string(stats.forward_migrations)});
  t.add_row({"evictions (cold+retention)",
             std::to_string(stats.cold_evictions +
                            stats.retention_evictions)});
  t.add_row({"mapping memory",
             util::TablePrinter::num(
                 static_cast<double>(result.mapping_bytes) / 1024.0, 1) +
                 " KiB"});
  t.add_row({"verify failures", std::to_string(result.verify_failures)});
  t.print(std::cout);
  return result.verify_failures == 0 ? 0 : 1;
}
