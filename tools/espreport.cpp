// espreport: analyzer for causal-attribution journals (see
// docs/TELEMETRY.md and src/telemetry/journal.h for the schema).
//
//   espreport run.jsonl                     # full report
//   espreport --waf-table run1.jsonl ...    # per-cause WAF tables only
//   espreport --chrome-out gc.json run.jsonl
//
// Sections:
//   * per-cause WAF decomposition -- integer program/erase counts per
//     cause, the flash bytes they imply, and each cause's share of the
//     write amplification. The total row's WAF equals flash/host bytes.
//     `--waf-table` prints ONLY this section, with byte-stable formatting
//     (pure integer arithmetic plus one deterministic division), so CI can
//     diff it against a committed golden file.
//   * block lifecycle -- event counts, per-pool erases, sub<->full
//     conversions, ending P/E spread.
//   * mechanism episodes -- cause-scope (B/E) spans paired into episodes
//     (GC, RMW, flush, ...): count, total and max simulated duration.
//   * journal accounting -- line counts and the end trailer's truncation.
//
// The parser is a flat field scanner, not a general JSON parser: every
// line is a single flat object written by telemetry::Journal with known
// key order and no escaped strings, so `"key":` substring extraction is
// exact. Unknown line types are counted and skipped (forward compat).
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "telemetry/causes.h"
#include "telemetry/forensics.h"
#include "telemetry/json.h"

namespace {

using namespace esp;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--waf-table] [--chrome-out PATH] JOURNAL...\n"
               "       %s --blame-table FORENSICS...\n"
               "  --waf-table        print only the per-cause WAF table(s)\n"
               "                     (byte-stable; used for golden diffs)\n"
               "  --blame-table      analyze tail-latency forensics streams\n"
               "                     (docs/FORENSICS.md) instead of journals:\n"
               "                     p99 phase-blame shares + the slowest-N\n"
               "                     exemplars, re-ranked deterministically\n"
               "                     across concatenated shard sidecars\n"
               "                     (byte-stable; used for golden diffs)\n"
               "  --chrome-out PATH  export mechanism episodes of the LAST\n"
               "                     journal as a Chrome trace_event file\n",
               argv0, argv0);
}

// ---- flat field extraction ------------------------------------------

bool find_raw(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t start = pos + needle.size();
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(start, end - start);
  return true;
}

bool find_str(const std::string& line, const char* key, std::string* out) {
  std::string raw;
  if (!find_raw(line, key, &raw)) return false;
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') return false;
  *out = raw.substr(1, raw.size() - 2);
  return true;
}

bool find_u64(const std::string& line, const char* key, std::uint64_t* out) {
  std::string raw;
  if (!find_raw(line, key, &raw)) return false;
  *out = std::strtoull(raw.c_str(), nullptr, 10);
  return true;
}

bool find_double(const std::string& line, const char* key, double* out) {
  std::string raw;
  if (!find_raw(line, key, &raw)) return false;
  *out = std::strtod(raw.c_str(), nullptr);
  return true;
}

// ---- per-journal analysis -------------------------------------------

struct CauseTally {
  std::uint64_t prog_full = 0;
  std::uint64_t prog_sub = 0;
  std::uint64_t erase = 0;
};

struct Episode {
  std::string cause;
  std::uint64_t detail = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
  int depth = 0;  ///< nesting level at open (0 = outermost)
};

struct EpisodeStats {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

struct Analysis {
  // Header.
  bool have_header = false;
  std::uint64_t schema = 0;
  std::string ftl;
  std::uint64_t chips = 0, blocks_per_chip = 0, pages_per_block = 0;
  std::uint64_t subs = 1, page_bytes = 0, seed = 0;

  // Host lane.
  std::uint64_t host_write_requests = 0;
  std::uint64_t host_write_sectors = 0;
  std::uint64_t host_trims = 0, host_flushes = 0;

  // Flash ops by cause (insertion-ordered by the canonical taxonomy).
  std::map<std::string, CauseTally> by_cause;

  // Block lifecycle.
  std::map<std::string, std::uint64_t> blk_events;  ///< by event name
  std::map<std::string, std::uint64_t> erases_by_pool;
  std::map<std::string, std::uint64_t> conversions;  ///< "from->to"
  std::uint64_t max_pe = 0;

  // Mechanism episodes from scope B/E pairing.
  std::vector<Episode> episodes;
  std::map<std::string, EpisodeStats> episode_stats;
  std::uint64_t unmatched_scopes = 0;

  // Accounting.
  std::uint64_t lines = 0, unknown_lines = 0;
  bool have_end = false;
  std::uint64_t end_events = 0, end_truncated = 0;
};

bool analyze(const std::string& path, Analysis* a) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "espreport: cannot open %s\n", path.c_str());
    return false;
  }
  // Seed the cause map in taxonomy order so table rows are stably ordered
  // even for causes a run never exercised.
  for (std::size_t c = 0; c < telemetry::kCauseCount; ++c)
    a->by_cause[telemetry::cause_name(static_cast<telemetry::Cause>(c))];

  std::vector<Episode> open;  // scope stack
  std::string line;
  while (std::getline(is, line)) {
    ++a->lines;
    std::string t;
    if (!find_str(line, "t", &t)) {
      ++a->unknown_lines;
      continue;
    }
    if (t == "hdr") {
      a->have_header = true;
      find_u64(line, "v", &a->schema);
      find_str(line, "ftl", &a->ftl);
      find_u64(line, "chips", &a->chips);
      find_u64(line, "blocks_per_chip", &a->blocks_per_chip);
      find_u64(line, "pages_per_block", &a->pages_per_block);
      find_u64(line, "subs", &a->subs);
      find_u64(line, "page_bytes", &a->page_bytes);
      find_u64(line, "seed", &a->seed);
    } else if (t == "host") {
      std::string op;
      find_str(line, "op", &op);
      if (op == "host_write") {
        ++a->host_write_requests;
        std::uint64_t sectors = 0;
        find_u64(line, "sectors", &sectors);
        a->host_write_sectors += sectors;
      } else if (op == "host_trim") {
        ++a->host_trims;
      } else if (op == "host_flush") {
        ++a->host_flushes;
      }
    } else if (t == "op") {
      std::string op, cause;
      find_str(line, "op", &op);
      find_str(line, "cause", &cause);
      CauseTally& tally = a->by_cause[cause];
      if (op == "prog_full") ++tally.prog_full;
      else if (op == "prog_sub") ++tally.prog_sub;
      else if (op == "erase") {
        ++tally.erase;
        std::uint64_t pe = 0;
        find_u64(line, "pe", &pe);
        a->max_pe = std::max(a->max_pe, pe);
      }
    } else if (t == "mech") {
      // Mechanism spans are summarized via their enclosing scopes; the
      // raw lines need no standalone tally here.
    } else if (t == "scope") {
      std::string ph, cause;
      find_str(line, "ph", &ph);
      find_str(line, "cause", &cause);
      double us = 0.0;
      find_double(line, "us", &us);
      if (ph == "B") {
        Episode e;
        e.cause = cause;
        find_u64(line, "detail", &e.detail);
        e.start_us = us;
        e.depth = static_cast<int>(open.size());
        open.push_back(e);
      } else if (ph == "E") {
        if (open.empty() || open.back().cause != cause) {
          ++a->unmatched_scopes;
          continue;
        }
        Episode e = open.back();
        open.pop_back();
        e.dur_us = us - e.start_us;
        EpisodeStats& s = a->episode_stats[e.cause];
        ++s.count;
        s.total_us += e.dur_us;
        s.max_us = std::max(s.max_us, e.dur_us);
        a->episodes.push_back(std::move(e));
      }
    } else if (t == "blk") {
      std::string ev, pool;
      find_str(line, "ev", &ev);
      find_str(line, "pool", &pool);
      ++a->blk_events[ev];
      if (ev == "erased") {
        ++a->erases_by_pool[pool];
        std::uint64_t pe = 0;
        find_u64(line, "pe", &pe);
        a->max_pe = std::max(a->max_pe, pe);
      } else if (ev == "converted") {
        std::string from;
        find_str(line, "from", &from);
        ++a->conversions[from + "->" + pool];
      }
    } else if (t == "end") {
      a->have_end = true;
      find_u64(line, "events", &a->end_events);
      find_u64(line, "truncated", &a->end_truncated);
    } else {
      ++a->unknown_lines;
    }
  }
  a->unmatched_scopes += open.size();  // still-open scopes at EOF
  return true;
}

// ---- report sections ------------------------------------------------

/// Per-cause WAF decomposition. Byte-stable: integer counts, integer
/// flash bytes, and one division printed with fixed precision.
void print_waf_table(const Analysis& a, const std::string& path) {
  // Basename only: golden files must not depend on where CI puts the
  // journal.
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  std::printf("# %s  ftl=%s  seed=%" PRIu64 "\n", base.c_str(),
              a.ftl.c_str(), a.seed);
  const std::uint64_t sub_bytes = a.subs ? a.page_bytes / a.subs : 0;
  const std::uint64_t host_bytes = a.host_write_sectors * sub_bytes;
  std::printf("host writes: %" PRIu64 " requests, %" PRIu64
              " sectors, %" PRIu64 " bytes\n",
              a.host_write_requests, a.host_write_sectors, host_bytes);
  std::printf("%-18s %10s %10s %8s %14s %10s\n", "cause", "prog_full",
              "prog_sub", "erase", "flash_bytes", "waf_share");
  CauseTally total;
  for (const auto& [cause, tally] : a.by_cause) {
    const std::uint64_t bytes =
        tally.prog_full * a.page_bytes + tally.prog_sub * sub_bytes;
    std::printf("%-18s %10" PRIu64 " %10" PRIu64 " %8" PRIu64 " %14" PRIu64
                " %10.6f\n",
                cause.c_str(), tally.prog_full, tally.prog_sub, tally.erase,
                bytes,
                host_bytes ? static_cast<double>(bytes) /
                                 static_cast<double>(host_bytes)
                           : 0.0);
    total.prog_full += tally.prog_full;
    total.prog_sub += tally.prog_sub;
    total.erase += tally.erase;
  }
  const std::uint64_t total_bytes =
      total.prog_full * a.page_bytes + total.prog_sub * sub_bytes;
  std::printf("%-18s %10" PRIu64 " %10" PRIu64 " %8" PRIu64 " %14" PRIu64
              " %10.6f\n",
              "total", total.prog_full, total.prog_sub, total.erase,
              total_bytes,
              host_bytes ? static_cast<double>(total_bytes) /
                               static_cast<double>(host_bytes)
                         : 0.0);
}

void print_full(const Analysis& a, const std::string& path) {
  print_waf_table(a, path);

  std::printf("\nblock lifecycle:\n");
  for (const auto& [ev, count] : a.blk_events)
    std::printf("  %-16s %10" PRIu64 "\n", ev.c_str(), count);
  for (const auto& [pool, count] : a.erases_by_pool)
    std::printf("  erases in pool %-8s %8" PRIu64 "\n", pool.c_str(), count);
  for (const auto& [conv, count] : a.conversions)
    std::printf("  conversions %-12s %7" PRIu64 "\n", conv.c_str(), count);
  std::printf("  max P/E cycles   %10" PRIu64 "\n", a.max_pe);

  std::printf("\nmechanism episodes (cause scopes):\n");
  if (a.episode_stats.empty()) std::printf("  (none)\n");
  for (const auto& [cause, s] : a.episode_stats)
    std::printf("  %-18s %8" PRIu64 " episodes, total %.1f us, max %.1f us\n",
                cause.c_str(), s.count, s.total_us, s.max_us);
  if (a.unmatched_scopes)
    std::printf("  unmatched scope lines: %" PRIu64
                " (journal truncated mid-episode?)\n",
                a.unmatched_scopes);

  std::printf("\njournal: %" PRIu64 " lines", a.lines);
  if (a.have_end)
    std::printf(", trailer: %" PRIu64 " events, %" PRIu64 " truncated",
                a.end_events, a.end_truncated);
  else
    std::printf(", NO end trailer (run did not finish cleanly)");
  if (a.unknown_lines)
    std::printf(", %" PRIu64 " unknown lines", a.unknown_lines);
  std::printf("\n");
}

// ---- forensics blame tables -----------------------------------------

/// One retained exemplar parsed off an "ex" line. The raw response string
/// is kept verbatim so re-printing it is byte-exact regardless of
/// float-formatting round trips.
struct BlameExemplar {
  std::uint64_t req = 0;
  std::string op;
  std::string response_raw;
  double response = 0.0;
  std::array<double, telemetry::kPhaseCount> phase_us{};
};

struct BlameAnalysis {
  bool have_header = false;
  std::string ftl;
  std::uint64_t seed = 0;
  std::uint64_t top_k = 0;
  std::uint64_t sections = 0;  ///< hdr count (> 1 for shard sidecar concats)
  std::uint64_t windows = 0;
  std::uint64_t requests = 0;
  std::uint64_t tail_requests = 0;
  /// Summed per-phase tail microseconds across every blame window, in
  /// file order (deterministic accumulation).
  std::array<double, telemetry::kPhaseCount> tail_phase_us{};
  std::vector<BlameExemplar> exemplars;
  std::uint64_t reconcile_failures = 0;
  std::uint64_t lines = 0, unknown_lines = 0;
};

/// Extracts the eight "<phase>_us" fields of a blame/ex line (they live in
/// a flat nested object, so substring extraction still works).
void find_phases(const std::string& line,
                 std::array<double, telemetry::kPhaseCount>* out) {
  for (std::size_t p = 0; p < telemetry::kPhaseCount; ++p) {
    const std::string key =
        std::string(telemetry::phase_name(static_cast<telemetry::Phase>(p))) +
        "_us";
    find_double(line, key.c_str(), &(*out)[p]);
  }
}

bool analyze_blame(const std::string& path, BlameAnalysis* a) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "espreport: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(is, line)) {
    ++a->lines;
    std::string t;
    if (!find_str(line, "t", &t)) {
      ++a->unknown_lines;
      continue;
    }
    if (t == "hdr") {
      std::string stream;
      if (!find_str(line, "stream", &stream) || stream != "forensics") {
        std::fprintf(stderr,
                     "espreport: %s is not a forensics stream (use "
                     "--blame-table on --forensics-out files)\n",
                     path.c_str());
        return false;
      }
      ++a->sections;
      if (!a->have_header) {
        a->have_header = true;
        find_str(line, "ftl", &a->ftl);
        find_u64(line, "seed", &a->seed);
        find_u64(line, "top_k", &a->top_k);
      }
    } else if (t == "blame") {
      std::uint64_t n = 0;
      find_u64(line, "requests", &n);
      a->requests += n;
      n = 0;
      find_u64(line, "tail_requests", &n);
      a->tail_requests += n;
      ++a->windows;
      std::array<double, telemetry::kPhaseCount> phases{};
      find_phases(line, &phases);
      for (std::size_t p = 0; p < telemetry::kPhaseCount; ++p)
        a->tail_phase_us[p] += phases[p];
    } else if (t == "ex") {
      BlameExemplar ex;
      find_u64(line, "req", &ex.req);
      find_str(line, "op", &ex.op);
      find_raw(line, "response_us", &ex.response_raw);
      ex.response = std::strtod(ex.response_raw.c_str(), nullptr);
      find_phases(line, &ex.phase_us);
      a->exemplars.push_back(std::move(ex));
    } else if (t == "end") {
      std::uint64_t n = 0;
      find_u64(line, "reconcile_failures", &n);
      a->reconcile_failures += n;
    } else if (t != "tnt") {
      ++a->unknown_lines;
    }
  }
  // Deterministic merged ranking: concatenated shard sidecars contribute
  // their per-shard top-Ks; re-sort slowest-first with the stream's own
  // tie-break (response desc, request id asc) and keep the global top-K.
  std::sort(a->exemplars.begin(), a->exemplars.end(),
            [](const BlameExemplar& x, const BlameExemplar& y) {
              if (x.response != y.response) return x.response > y.response;
              return x.req < y.req;
            });
  if (a->top_k > 0 && a->exemplars.size() > a->top_k)
    a->exemplars.resize(a->top_k);
  return true;
}

/// Byte-stable blame report: integer counts plus fixed-precision shares.
void print_blame_table(const BlameAnalysis& a, const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  std::printf("# %s  ftl=%s  seed=%" PRIu64 "\n", base.c_str(), a.ftl.c_str(),
              a.seed);
  std::printf("sections: %" PRIu64 ", windows: %" PRIu64 ", requests: %" PRIu64
              ", tail requests: %" PRIu64 "\n",
              a.sections, a.windows, a.requests, a.tail_requests);
  double tail_total = 0.0;
  for (const double us : a.tail_phase_us) tail_total += us;
  std::printf("%-12s %10s\n", "phase", "p99_share");
  for (std::size_t p = 0; p < telemetry::kPhaseCount; ++p)
    std::printf("%-12s %10.6f\n",
                telemetry::phase_name(static_cast<telemetry::Phase>(p)),
                tail_total > 0.0 ? a.tail_phase_us[p] / tail_total : 0.0);
  std::printf("slowest %zu:\n", a.exemplars.size());
  std::printf("%4s %10s %-12s %14s %-12s\n", "rank", "req", "op",
              "response_us", "dominant");
  for (std::size_t i = 0; i < a.exemplars.size(); ++i) {
    const BlameExemplar& ex = a.exemplars[i];
    // Dominant phase: largest share of the exemplar's breakdown; ties
    // resolve to the first phase in enum order.
    std::size_t dom = 0;
    for (std::size_t p = 1; p < telemetry::kPhaseCount; ++p)
      if (ex.phase_us[p] > ex.phase_us[dom]) dom = p;
    std::printf("%4zu %10" PRIu64 " %-12s %14s %-12s\n", i + 1, ex.req,
                ex.op.c_str(), ex.response_raw.c_str(),
                telemetry::phase_name(static_cast<telemetry::Phase>(dom)));
  }
  if (a.reconcile_failures)
    std::printf("RECONCILE FAILURES: %" PRIu64 "\n", a.reconcile_failures);
}

// ---- Chrome trace export --------------------------------------------

bool write_chrome(const Analysis& a, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "espreport: cannot open %s\n", path.c_str());
    return false;
  }
  os << "[\n";
  {
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", std::uint64_t{0});
    w.kv("tid", std::uint64_t{0});
    w.key("args");
    w.begin_object();
    w.kv("name", "espreport: " + a.ftl + " mechanism episodes");
    w.end_object();
    w.end_object();
  }
  for (const Episode& e : a.episodes) {
    os << ",\n";
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.kv("name", e.cause);
    w.kv("cat", "cause");
    w.kv("ph", "X");
    w.kv("ts", e.start_us);
    w.kv("dur", e.dur_us);
    w.kv("pid", std::uint64_t{0});
    // One lane per nesting depth keeps parent/child episodes (e.g. a GC
    // inside a flush) visually stacked.
    w.kv("tid", static_cast<std::uint64_t>(e.depth));
    w.key("args");
    w.begin_object();
    w.kv("detail", e.detail);
    w.end_object();
    w.end_object();
  }
  os << "\n]\n";
  return os.good();
}

}  // namespace

int main(int argc, char** argv) {
  bool waf_only = false;
  bool blame = false;
  std::string chrome_out;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--waf-table") {
      waf_only = true;
    } else if (arg == "--blame-table") {
      blame = true;
    } else if (arg == "--chrome-out" && i + 1 < argc) {
      chrome_out = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    usage(argv[0]);
    return 2;
  }

  if (blame) {
    bool first_blame = true;
    int exit_code = 0;
    for (const auto& path : paths) {
      BlameAnalysis a;
      if (!analyze_blame(path, &a)) return 1;
      if (!a.have_header) {
        std::fprintf(stderr, "espreport: %s has no forensics header\n",
                     path.c_str());
        return 1;
      }
      if (!first_blame) std::printf("\n");
      first_blame = false;
      print_blame_table(a, path);
      if (a.reconcile_failures) exit_code = 1;
    }
    return exit_code;
  }

  bool first = true;
  Analysis last;
  for (const auto& path : paths) {
    Analysis a;
    if (!analyze(path, &a)) return 1;
    if (!a.have_header) {
      std::fprintf(stderr, "espreport: %s has no journal header\n",
                   path.c_str());
      return 1;
    }
    if (!first) std::printf("\n");
    first = false;
    if (waf_only)
      print_waf_table(a, path);
    else
      print_full(a, path);
    last = std::move(a);
  }

  if (!chrome_out.empty()) {
    if (!write_chrome(last, chrome_out)) return 1;
    if (!waf_only)
      std::printf("\nchrome trace: wrote %s (%zu episodes)\n",
                  chrome_out.c_str(), last.episodes.size());
  }
  return 0;
}
