// OLTP scenario (TPC-C-like): a database mixing synchronous redo-log
// writes (small, latency-critical) with page-cleaner bulk writes and a
// read-heavy buffer pool. Shows where ESP helps (commit latency) and what
// it costs on bulk traffic, with per-FTL latency percentiles.
//
//   $ ./oltp_database [requests]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/ssd.h"
#include "util/table_printer.h"
#include "workload/profiles.h"

int main(int argc, char** argv) {
  using namespace esp;

  const std::uint64_t requests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;

  core::SsdConfig base;
  base.geometry.channels = 8;
  base.geometry.chips_per_channel = 4;
  base.geometry.blocks_per_chip = 16;
  base.geometry.pages_per_block = 128;
  base.logical_fraction = 0.80;
  base.queue_depth = 128;

  std::printf("OLTP workload (TPC-C profile) on %s\n",
              base.geometry.describe().c_str());
  std::printf(
      "%llu requests per FTL; ~12%% small sync redo writes, 50%% reads\n\n",
      static_cast<unsigned long long>(requests));

  util::TablePrinter t({"FTL", "host MB/s", "p50 us", "p99 us",
                        "GC invocations", "req WAF (small)"});
  for (const auto kind :
       {core::FtlKind::kCgm, core::FtlKind::kFgm, core::FtlKind::kSub}) {
    core::SsdConfig config = base;
    config.ftl = kind;
    core::Ssd ssd(config);
    ssd.precondition(0.78);  // tablespaces

    auto params = workload::benchmark_profile(
        workload::Benchmark::kTpcc,
        static_cast<std::uint64_t>(0.78 * ssd.logical_sectors()) / 4 * 4,
        requests, config.geometry.subpages_per_page);
    workload::SyntheticWorkload stream(params);
    const auto metrics = ssd.driver().run(stream, /*verify=*/true);
    if (metrics.verify_failures)
      std::fprintf(stderr, "verify failures on %s!\n",
                   ssd.ftl().name().c_str());

    const double host_mb =
        static_cast<double>(metrics.ftl_stats.host_write_sectors +
                            metrics.ftl_stats.host_read_sectors) *
        4096.0 / (1024 * 1024);
    t.add_row(
        {ssd.ftl().name(),
         util::TablePrinter::num(
             host_mb / sim_time::to_seconds(metrics.elapsed_us()), 1),
         util::TablePrinter::num(metrics.latency_p50_us, 0),
         util::TablePrinter::num(metrics.latency_p99_us, 0),
         std::to_string(metrics.ftl_stats.gc_invocations),
         util::TablePrinter::num(
             metrics.ftl_stats.avg_small_request_waf(), 3)});
  }
  t.print(std::cout);
  std::printf(
      "\nThe redo-log fsyncs dominate commit latency: under ESP each one is\n"
      "a single 4-KB subpage program instead of a 16-KB read-modify-write\n"
      "(cgm) or a padded 16-KB page (fgm) -- compare the request WAF.\n");
  return 0;
}
