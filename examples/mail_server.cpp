// Mail-server scenario (the paper's Varmail motivation): fsync-heavy small
// appends are the worst case for large-page NAND. Runs the same mail-spool
// workload through all three FTLs and reports throughput, latency, and a
// lifetime estimate from erase counts.
//
//   $ ./mail_server [requests]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/ssd.h"
#include "util/table_printer.h"
#include "workload/profiles.h"

int main(int argc, char** argv) {
  using namespace esp;

  const std::uint64_t requests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120000;

  core::SsdConfig base;
  base.geometry.channels = 8;
  base.geometry.chips_per_channel = 4;
  base.geometry.blocks_per_chip = 16;
  base.geometry.pages_per_block = 128;
  base.logical_fraction = 0.80;
  base.queue_depth = 128;

  std::printf("Mail-server workload (Varmail profile) on %s\n",
              base.geometry.describe().c_str());
  std::printf("%llu requests per FTL; ~95%% small writes, ~99%% fsync'd\n\n",
              static_cast<unsigned long long>(requests));

  util::TablePrinter t({"FTL", "host MB/s", "p50 us", "p99 us", "erases",
                        "est. lifetime vs cgm"});
  double cgm_erases = 0.0;
  for (const auto kind :
       {core::FtlKind::kCgm, core::FtlKind::kFgm, core::FtlKind::kSub}) {
    core::SsdConfig config = base;
    config.ftl = kind;
    core::Ssd ssd(config);
    ssd.precondition(0.78);  // the mail spool + cold files

    auto params = workload::benchmark_profile(
        workload::Benchmark::kVarmail,
        static_cast<std::uint64_t>(0.78 * ssd.logical_sectors()) / 4 * 4,
        requests, config.geometry.subpages_per_page);
    workload::SyntheticWorkload stream(params);
    const auto metrics = ssd.driver().run(stream, /*verify=*/true);
    if (metrics.verify_failures)
      std::fprintf(stderr, "verify failures on %s!\n",
                   ssd.ftl().name().c_str());

    const double host_mb =
        static_cast<double>(metrics.ftl_stats.host_write_sectors +
                            metrics.ftl_stats.host_read_sectors) *
        4096.0 / (1024 * 1024);
    const double mbps = host_mb / sim_time::to_seconds(metrics.elapsed_us());
    if (kind == core::FtlKind::kCgm)
      cgm_erases = static_cast<double>(metrics.erases_during_run);
    const double lifetime =
        metrics.erases_during_run
            ? cgm_erases / static_cast<double>(metrics.erases_during_run)
            : 0.0;
    t.add_row({ssd.ftl().name(), util::TablePrinter::num(mbps, 1),
               util::TablePrinter::num(metrics.latency_p50_us, 0),
               util::TablePrinter::num(metrics.latency_p99_us, 0),
               std::to_string(metrics.erases_during_run),
               util::TablePrinter::num(lifetime, 2) + "x"});
  }
  t.print(std::cout);
  std::printf(
      "\nLifetime proxy: flash wears out by erases; fewer erases for the\n"
      "same mail traffic means proportionally longer device life.\n");
  return 0;
}
