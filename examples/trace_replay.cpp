// Trace replay: run a block trace through any of the three FTLs.
//
//   $ ./trace_replay <cgm|fgm|sub> [trace-file]
//
// The trace format is one request per line ('W sector count sync',
// 'R sector count', 'T sector count', 'F'; see workload/trace.h). Without
// a file, a small demonstration trace is generated and replayed.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/ssd.h"
#include "workload/trace.h"

namespace {

using namespace esp;

std::vector<workload::Request> demo_trace() {
  using workload::Request;
  std::vector<Request> trace;
  // A filesystem-ish episode: journal commits (small sync), data writeback
  // (large async), reads, and a discard.
  for (int txn = 0; txn < 200; ++txn) {
    const std::uint64_t journal = 64 + (txn % 16);
    trace.push_back({Request::Type::kWrite, journal, 1, true, 0.0});
    const std::uint64_t data = 1024 + static_cast<std::uint64_t>(txn) * 8;
    trace.push_back({Request::Type::kWrite, data, 8, false, 0.0});
    if (txn % 4 == 0)
      trace.push_back({Request::Type::kRead, data, 8, false, 0.0});
  }
  trace.push_back({Request::Type::kFlush, 0, 0, false, 0.0});
  trace.push_back({Request::Type::kTrim, 1024, 256, false, 0.0});
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <cgm|fgm|sub> [trace-file]\n", argv[0]);
    return 2;
  }
  core::FtlKind kind;
  if (std::strcmp(argv[1], "cgm") == 0) kind = core::FtlKind::kCgm;
  else if (std::strcmp(argv[1], "fgm") == 0) kind = core::FtlKind::kFgm;
  else if (std::strcmp(argv[1], "sub") == 0) kind = core::FtlKind::kSub;
  else {
    std::fprintf(stderr, "unknown FTL '%s'\n", argv[1]);
    return 2;
  }

  core::SsdConfig config;
  config.geometry.channels = 4;
  config.geometry.chips_per_channel = 2;
  config.geometry.blocks_per_chip = 64;
  config.geometry.pages_per_block = 64;
  config.ftl = kind;
  core::Ssd ssd(config);

  std::vector<workload::Request> requests =
      argc > 2 ? workload::read_trace_file(argv[2]) : demo_trace();
  std::printf("replaying %zu requests (%s) on %s, %s\n\n", requests.size(),
              argc > 2 ? argv[2] : "built-in demo trace",
              ssd.ftl().name().c_str(), config.geometry.describe().c_str());

  workload::TraceReplay replay(std::move(requests));
  const auto metrics = ssd.driver().run(replay, /*verify=*/true);

  const auto& stats = metrics.ftl_stats;
  std::printf("requests        : %llu (%llu writes, %llu reads)\n",
              (unsigned long long)metrics.requests,
              (unsigned long long)metrics.write_requests,
              (unsigned long long)metrics.read_requests);
  std::printf("simulated time  : %.3f s  (IOPS %.0f)\n",
              sim_time::to_seconds(metrics.elapsed_us()), metrics.iops());
  std::printf("latency p50/p99 : %.0f / %.0f us\n", metrics.latency_p50_us,
              metrics.latency_p99_us);
  std::printf("flash programs  : %llu full-page, %llu subpage\n",
              (unsigned long long)stats.flash_prog_full,
              (unsigned long long)stats.flash_prog_sub);
  std::printf("GC / erases     : %llu / %llu\n",
              (unsigned long long)stats.gc_invocations,
              (unsigned long long)stats.flash_erases);
  std::printf("small-write WAF : %.3f\n", stats.avg_small_request_waf());
  std::printf("verify failures : %llu, io errors: %llu\n",
              (unsigned long long)metrics.verify_failures,
              (unsigned long long)metrics.io_errors);
  return metrics.verify_failures == 0 ? 0 : 1;
}
