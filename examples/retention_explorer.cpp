// Retention explorer: interactively probe the two NAND reliability models
// (the Monte-Carlo cell model and the behavioral RetentionModel) the way
// the paper's characterization study does.
//
//   $ ./retention_explorer [pe_cycles] [months...]
//
// Prints the normalized retention-BER surface for every Npp type at the
// given wear and retention times, plus the derived safe horizons the FTL
// uses (including the conservative 1-month bound of Sec. 3.3).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "nand/cell_model.h"
#include "nand/retention_model.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace esp;

  const auto pe = argc > 1
                      ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                      : 1000u;
  std::vector<double> months = {0.0, 0.5, 1.0, 2.0};
  if (argc > 2) {
    months.clear();
    for (int i = 2; i < argc; ++i) months.push_back(std::atof(argv[i]));
  }

  const nand::RetentionModel model;
  std::printf("Behavioral retention model @ %u P/E cycles "
              "(normalized BER; ECC limit = %.2f)\n\n",
              pe, model.params().ecc_limit);
  {
    util::TablePrinter t([&] {
      std::vector<std::string> h = {"type"};
      for (const double m : months)
        h.push_back(util::TablePrinter::num(m, 1) + " mo");
      h.push_back("safe horizon (days)");
      return h;
    }());
    for (std::uint32_t k = 0; k <= 3; ++k) {
      std::vector<std::string> row = {"Npp^" + std::to_string(k)};
      for (const double m : months) {
        const double ber = model.subpage_ber(k, m, pe);
        row.push_back(util::TablePrinter::num(ber, 2) +
                      (model.correctable(ber) ? "" : " !"));
      }
      row.push_back(util::TablePrinter::num(
          sim_time::to_days(model.subpage_horizon(k, pe)), 0));
      t.add_row(row);
    }
    std::vector<std::string> full_row = {"full-page"};
    for (const double m : months) {
      const double ber = model.fullpage_ber(m, pe);
      full_row.push_back(util::TablePrinter::num(ber, 2) +
                         (model.correctable(ber) ? "" : " !"));
    }
    full_row.push_back(util::TablePrinter::num(
        sim_time::to_days(model.fullpage_horizon(pe)), 0));
    t.add_row(full_row);
    t.print(std::cout);
  }
  std::printf("\nFTL-facing conservative subpage horizon: %.0f days "
              "(paper: 'one month only')\n",
              sim_time::to_days(model.conservative_subpage_horizon()));

  // Cross-check against the Monte-Carlo cell model at the same wear.
  std::printf("\nMonte-Carlo cell model cross-check (raw BER, 8 word "
              "lines x 8192 cells):\n\n");
  util::TablePrinter t([&] {
    std::vector<std::string> h = {"type"};
    for (const double m : months)
      h.push_back(util::TablePrinter::num(m, 1) + " mo");
    return h;
  }());
  for (std::uint32_t k = 0; k <= 3; ++k) {
    std::vector<std::string> row = {"Npp^" + std::to_string(k)};
    for (const double m : months) {
      util::RunningStats stats;
      for (int wl_idx = 0; wl_idx < 8; ++wl_idx) {
        nand::WordLine wl(4, 8192, nand::CellModelParams{},
                          util::Xoshiro256(31 * k + wl_idx));
        wl.set_pe_cycles(pe);
        for (std::uint32_t s = 0; s <= k; ++s) wl.program_subpage_random(s);
        stats.add(wl.raw_ber(k, m));
      }
      row.push_back(util::TablePrinter::num(stats.mean() * 1000.0, 3) +
                    "e-3");
    }
    t.add_row(row);
  }
  t.print(std::cout);
  return 0;
}
