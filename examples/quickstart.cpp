// Quickstart: build an ESP-enabled SSD with subFTL, write and read data,
// and inspect what the FTL did.
//
//   $ ./quickstart
//
// Walks through the public API top to bottom: SsdConfig -> Ssd -> Driver
// (host interface with data verification) -> FtlStats/device counters.
#include <cstdio>

#include "core/ssd.h"
#include "workload/request.h"

int main() {
  using namespace esp;
  using workload::Request;

  // 1. Configure a small SSD: 4 channels x 2 chips, 16-KB pages split into
  //    four 4-KB ESP subpages (the default geometry is the paper's 16-GiB
  //    platform; this one keeps the example instant).
  core::SsdConfig config;
  config.geometry.channels = 4;
  config.geometry.chips_per_channel = 2;
  config.geometry.blocks_per_chip = 32;
  config.geometry.pages_per_block = 64;
  config.ftl = core::FtlKind::kSub;  // the paper's ESP-aware FTL
  core::Ssd ssd(config);
  std::printf("device : %s\n", config.geometry.describe().c_str());
  std::printf("ftl    : %s, %llu logical 4-KB sectors\n\n",
              ssd.ftl().name().c_str(),
              static_cast<unsigned long long>(ssd.logical_sectors()));

  auto& driver = ssd.driver();

  // 2. A large aligned write: goes to the full-page region as one 16-KB
  //    program.
  driver.submit({Request::Type::kWrite, /*sector=*/0, /*count=*/4,
                 /*sync=*/false, /*think_us=*/0.0});
  driver.flush();

  // 3. A small synchronous write (a 4-KB fsync): with ESP this is ONE
  //    subpage program into the subpage region -- no read-modify-write, no
  //    internal fragmentation.
  driver.submit({Request::Type::kWrite, 1, 1, true, 0.0});

  // 4. Read everything back; the driver verifies content tokens
  //    end-to-end (any FTL bug would show up as a verify failure).
  driver.submit({Request::Type::kRead, 0, 4, false, 0.0});

  const auto& stats = ssd.ftl().stats();
  const auto& dev = ssd.device().counters();
  std::printf("after 2 writes + 1 read:\n");
  std::printf("  full-page programs : %llu (the 16-KB write)\n",
              static_cast<unsigned long long>(stats.flash_prog_full));
  std::printf("  subpage programs   : %llu (the 4-KB sync write, ESP)\n",
              static_cast<unsigned long long>(stats.flash_prog_sub));
  std::printf("  read-modify-writes : %llu\n",
              static_cast<unsigned long long>(stats.rmw_ops));
  std::printf("  flash reads        : %llu\n",
              static_cast<unsigned long long>(dev.reads_full +
                                              dev.reads_sub));
  std::printf("  verify failures    : %llu\n",
              static_cast<unsigned long long>(driver.verify_failures()));
  std::printf("  simulated time     : %.1f us\n", driver.now());

  // 5. The same small write under a conventional page-mapped FTL costs a
  //    full read-modify-write -- run the comparison yourself:
  core::SsdConfig cgm_config = config;
  cgm_config.ftl = core::FtlKind::kCgm;
  core::Ssd cgm(cgm_config);
  cgm.driver().submit({Request::Type::kWrite, 0, 4, false, 0.0});
  cgm.driver().submit({Request::Type::kWrite, 1, 1, true, 0.0});
  std::printf("\ncgmFTL servicing the same 4-KB update: %llu RMW, "
              "%llu full-page programs\n",
              static_cast<unsigned long long>(cgm.ftl().stats().rmw_ops),
              static_cast<unsigned long long>(
                  cgm.ftl().stats().flash_prog_full));
  return 0;
}
