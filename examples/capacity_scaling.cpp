// Capacity-scaling check: the paper limits its 512-GB-capable platform to
// 16 GB and argues "this reduction of the storage capacity did not distort
// experimental results because the performance of the FTL was decided by
// the characteristics of input workloads, not by the storage capacity."
//
// This example puts that claim to the test on OUR stack: the same
// (proportionally scaled) workload runs on 1/4x, 1x and 4x devices; the
// normalized subFTL-vs-fgmFTL gain should be capacity-invariant.
//
//   $ ./capacity_scaling
#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "util/table_printer.h"

int main() {
  using namespace esp;

  std::printf(
      "Capacity-scaling check (paper Sec. 5): sync-small workload, \n"
      "working set and request volume scaled with capacity.\n\n");

  util::TablePrinter t({"capacity", "fgm MB/s", "sub MB/s", "sub/fgm",
                        "fgm GC", "sub GC"});
  for (const std::uint32_t blocks_per_chip : {8u, 16u, 64u}) {
    double mbps[2] = {0, 0};
    std::uint64_t gc[2] = {0, 0};
    int idx = 0;
    core::SsdConfig base;
    base.geometry.channels = 8;
    base.geometry.chips_per_channel = 4;
    base.geometry.blocks_per_chip = blocks_per_chip;
    base.geometry.pages_per_block = 128;
    base.logical_fraction = 0.75;
    base.queue_depth = 128;
    const double scale = blocks_per_chip / 16.0;
    for (const auto kind : {core::FtlKind::kFgm, core::FtlKind::kSub}) {
      core::ExperimentSpec spec;
      spec.ssd = base;
      spec.ssd.ftl = kind;
      spec.warmup_requests =
          static_cast<std::uint64_t>(150000 * scale);
      spec.workload.request_count =
          spec.warmup_requests +
          static_cast<std::uint64_t>(60000 * scale);
      spec.workload.r_small = 1.0;
      spec.workload.r_synch = 1.0;
      spec.workload.small_footprint_fraction = 0.018;
      spec.workload.seed = 2017;
      const auto result = core::run_experiment(spec);
      mbps[idx] = result.host_mb_per_sec;
      gc[idx] = result.gc_invocations;
      ++idx;
    }
    t.add_row({util::TablePrinter::num(scale * 1.0, 2) + " GiB",
               util::TablePrinter::num(mbps[0], 1),
               util::TablePrinter::num(mbps[1], 1),
               util::TablePrinter::num(mbps[1] / mbps[0], 2) + "x",
               std::to_string(gc[0]), std::to_string(gc[1])});
  }
  t.print(std::cout);
  std::printf(
      "\nThe paper's argument holds from 1 GiB up (sub/fgm stays ~1.8-2x as\n"
      "capacity quadruples). The 0.5-GiB row shows where it breaks down:\n"
      "with only 8 blocks per chip the subpage region cannot keep an ESP\n"
      "write point alive on every chip, so parallelism collapses -- scale\n"
      "the device down by shrinking CHIP COUNT, not blocks per chip.\n");
  return 0;
}
