#include "util/logger.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace esp::util {
namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("ESP_LOG_LEVEL"))
    if (const auto parsed = parse_log_level(env)) return *parsed;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};

// Thread-local: each simulation runs single-threaded, but the parallel
// experiment runner drives one simulation per worker thread, and each must
// see its own Ssd's clock (a shared provider would race on install and
// report another cell's time).
thread_local std::function<double()> g_sim_time_us;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower(name);
  for (char& c : lower)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_sim_time_provider(std::function<double()> now_us) {
  g_sim_time_us = std::move(now_us);
}

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  if (g_sim_time_us)
    std::fprintf(stderr, "[esp:%s t=%.6fs] ", level_tag(level),
                 g_sim_time_us() / 1e6);
  else
    std::fprintf(stderr, "[esp:%s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace esp::util
