#include "util/logger.h"

#include <atomic>
#include <cstdio>

namespace esp::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[esp:%s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace esp::util
