// Deterministic pseudo-random number generation for simulation.
//
// All stochastic components of the simulator (workload generators, the
// Monte-Carlo cell model, GC tie-breaking) draw from an explicitly seeded
// Xoshiro256** instance so that every experiment is reproducible from its
// configuration alone. No component may use std::rand or a global engine.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace esp::util {

/// Xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
///
/// Small, fast (sub-ns per draw), passes BigCrush, and -- unlike
/// std::mt19937 -- cheap to copy, which the workload generators exploit to
/// fork reproducible sub-streams.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 random bits. Defined inline: the batched Monte-Carlo kernels
  /// fill whole blocks of draws, and a call through the .cpp would cost
  /// more than the state update itself.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl_(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl_(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform integer in [0, bound) using Lemire's unbiased multiply-shift
  /// rejection method. bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Standard normal deviate (Marsaglia polar method, cached spare).
  double gaussian() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// Forks an independent sub-stream: hashes this stream's next output into
  /// a fresh engine. Used to give each workload component its own stream.
  Xoshiro256 fork() noexcept;

  /// Full serialized engine state: the four 256-bit state words plus the
  /// Marsaglia spare cache, so a restored stream continues bit-identically
  /// even mid-gaussian-pair. Order: s[0..3], bit-cast spare, has_spare.
  struct State {
    std::uint64_t s[4];
    std::uint64_t spare_bits;
    std::uint64_t has_spare;
  };

  State state() const noexcept;
  void set_state(const State& st) noexcept;

  /// Compact provenance string ("s0:s1:s2:s3:spare:has", hex) for RNG
  /// stream stamping in run manifests.
  std::string describe_state() const;

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace esp::util
