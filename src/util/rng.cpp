#include "util/rng.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace esp::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // The all-zero state is the one invalid state for xoshiro; splitmix64
  // cannot produce four consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection in the biased zone.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Xoshiro256::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Xoshiro256::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Xoshiro256::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

Xoshiro256 Xoshiro256::fork() noexcept { return Xoshiro256((*this)()); }

Xoshiro256::State Xoshiro256::state() const noexcept {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof spare_);
  std::memcpy(&bits, &spare_, sizeof bits);
  st.spare_bits = bits;
  st.has_spare = has_spare_ ? 1 : 0;
  return st;
}

void Xoshiro256::set_state(const State& st) noexcept {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  std::memcpy(&spare_, &st.spare_bits, sizeof spare_);
  has_spare_ = st.has_spare != 0;
}

std::string Xoshiro256::describe_state() const {
  const State st = state();
  char buf[128];
  std::snprintf(buf, sizeof buf, "%016llx:%016llx:%016llx:%016llx:%016llx:%llu",
                static_cast<unsigned long long>(st.s[0]),
                static_cast<unsigned long long>(st.s[1]),
                static_cast<unsigned long long>(st.s[2]),
                static_cast<unsigned long long>(st.s[3]),
                static_cast<unsigned long long>(st.spare_bits),
                static_cast<unsigned long long>(st.has_spare));
  return buf;
}

}  // namespace esp::util
