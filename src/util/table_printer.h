// Aligned-column table rendering for the benchmark harnesses.
//
// Every bench binary prints the rows/series of the paper table or figure it
// reproduces; this helper keeps that output uniform and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace esp::util {

/// Collects rows of string cells and renders them with padded columns.
///
///   TablePrinter t({"benchmark", "IOPS", "WAF"});
///   t.add_row({"varmail", "1234", "1.007"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Formats as percent ("12.3%").
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace esp::util
