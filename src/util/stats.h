// Streaming statistics accumulators used by the metrics layer and benches.
#pragma once

#include <cstdint>
#include <limits>

namespace esp::util {

/// Welford-style running mean / variance / min / max accumulator.
/// O(1) memory, numerically stable, mergeable.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace esp::util
