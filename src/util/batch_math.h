// Batched math kernels for the Monte-Carlo cell model.
//
// The scalar cell model draws one Gaussian per cell per operation through
// Xoshiro256::gaussian() (Marsaglia polar: data-dependent rejection loop,
// libm log/sqrt, a cached-spare branch). That shape defeats both the
// vectorizer and the branch predictor and is the dominant cost of the
// fig4/fig5 characterization benches.
//
// This layer replaces it with block operations over contiguous arrays:
//
//   * gaussian_fill      -- Box-Muller over a block of Xoshiro outputs.
//                           The RNG advance is the only serial dependency;
//                           uniforms are buffered first, then the
//                           branch-free transform (polynomial log / sincos,
//                           no libm calls) runs as a vectorizable loop.
//   * add_clipped_gaussian / vth update helpers -- fused "draw, clip at
//                           zero, accumulate" passes for disturb shifts
//                           and retention drift.
//   * quantize_to_gray   -- branchless read-level quantization against a
//                           precomputed boundary table, emitting Gray
//                           codes directly.
//   * gray_bit_errors    -- popcount reduction of packed Gray codes over
//                           a whole subpage (8 cells per popcount).
//   * uniform_levels_fill -- batched power-of-two level sampling (21
//                           3-bit lanes per 64-bit draw for TLC).
//
// The kernels work in single precision: vth excursions span ~[-6, 7] volts
// with sigmas >= 0.014, so float's ~1e-7 relative error is 4+ orders of
// magnitude below the physical noise being modeled and vanishes entirely
// in Monte-Carlo averages. Float doubles the SIMD lane count and halves
// the memory traffic of every plane sweep.
//
// Distributional contract: every sampler here produces the SAME
// distribution as the scalar path (exact clipped/scaled Gaussians; the
// polynomial transforms are accurate to ~1e-6 absolute, far below
// Monte-Carlo noise), but a DIFFERENT stream of deviates for the same
// seed -- callers must treat results as statistically, not bitwise,
// equivalent to the scalar model. Within one binary the kernels are fully
// deterministic: outputs depend only on the RNG state passed in, never on
// scheduling, so parallel fan-outs that give each task its own seeded
// stream stay bit-identical across --jobs (see docs/CELL_MODEL.md).
#pragma once

#include <cstdint>
#include <span>

#include "util/rng.h"

namespace esp::util {

/// Fills `out` with independent standard-normal deviates drawn from `rng`.
/// Consumes kLanes seeding draws plus one 64-bit draw per deviate pair.
void gaussian_fill(Xoshiro256& rng, std::span<float> out);

/// Fills `out` with N(mean, stddev) deviates.
void gaussian_fill(Xoshiro256& rng, std::span<float> out, double mean,
                   double stddev);

/// vth[i] += max(0, N(mean, stddev)) for a fresh deviate per element --
/// the clipped disturb shift of the cell model, fused into one pass.
void add_clipped_gaussian(Xoshiro256& rng, std::span<float> vth, double mean,
                          double stddev);

/// Branchless read-level quantization + Gray encoding: for each cell,
/// level = #(boundaries strictly below vth[i]) and out[i] = level ^
/// (level >> 1). `boundaries` must be sorted ascending (size = levels-1,
/// so results fit any power-of-two level count <= 256).
void quantize_to_gray(std::span<const float> vth,
                      std::span<const float> boundaries,
                      std::span<std::uint8_t> out);

/// Total bit errors between two Gray-coded level arrays: popcount of the
/// XOR, reduced 8 bytes at a time. Sizes must match.
std::uint64_t gray_bit_errors(std::span<const std::uint8_t> read_gray,
                              std::span<const std::uint8_t> target_gray);

/// Fills `out` with uniform levels in [0, levels); `levels` must be a
/// power of two <= 256. For TLC (8 levels) this packs 21 lanes of 3 bits
/// out of each 64-bit draw, so it consumes ~n/21 draws instead of n.
void uniform_levels_fill(Xoshiro256& rng, std::span<std::uint8_t> out,
                         std::uint32_t levels);

}  // namespace esp::util
