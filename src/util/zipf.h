// Zipfian sampling for skewed (hot/cold) access patterns.
//
// Workload generators use this to reproduce the paper's observation that
// "small writes are likely to have higher update frequencies than large
// writes": a Zipf-distributed LBA picker concentrates updates on a hot set.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace esp::util {

/// Zipf(N, theta) sampler over ranks {0, ..., n-1} where rank 0 is hottest.
///
/// Uses the Gray et al. (YCSB-style) rejection-inversion-free analytic
/// approximation: draws in O(1) after O(1) setup, accurate for the
/// 0 < theta < 1 range used by the workloads here. theta = 0 degenerates
/// to uniform.
class ZipfSampler {
 public:
  /// @param n      population size (> 0)
  /// @param theta  skew in [0, 1); 0 = uniform, 0.99 = YCSB-default skew
  ZipfSampler(std::uint64_t n, double theta);

  /// Draws a rank in [0, n); lower ranks are exponentially more likely.
  std::uint64_t sample(Xoshiro256& rng) const;

  std::uint64_t population() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_ = 0.0;
  double zetan_ = 0.0;
  double eta_ = 0.0;
  double zeta2theta_ = 0.0;
};

/// Maps Zipf ranks onto LBAs so that the hot set is *scattered* across the
/// logical space (real filesystems do not place hot files contiguously).
/// A fixed multiplicative permutation (odd multiplier mod n) preserves
/// determinism while decorrelating rank from address.
class ScatteredZipf {
 public:
  ScatteredZipf(std::uint64_t n, double theta);

  std::uint64_t sample(Xoshiro256& rng) const;
  std::uint64_t population() const noexcept { return sampler_.population(); }

 private:
  ZipfSampler sampler_;
  std::uint64_t multiplier_;
};

}  // namespace esp::util
