#include "util/batch_math.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace esp::util {
namespace {

// Pairs per transform block; buffers live on the stack so the RNG fill and
// the vectorizable transform stay separate loops.
constexpr std::size_t kPairs = 1024;

// Interleaved xoshiro lanes per block generator. Eight independent streams
// advance side by side so the state update vectorizes (one 64-bit draw has a
// ~4-cycle serial dependency chain; eight lanes amortize it to ~0.5
// cycles/draw on AVX-512, and still help at narrower vector widths).
constexpr std::size_t kLanes = 8;

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl64(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// A block source of uniform pairs: eight xoshiro256** streams in
// structure-of-arrays form, each seeded via SplitMix64 from one draw of the
// parent stream. Construction consumes exactly kLanes parent draws, so the
// parent stream position after a batched call is well defined and every
// sequence is reproducible from the parent seed alone.
class PairSource {
 public:
  explicit PairSource(Xoshiro256& parent) noexcept {
    for (std::size_t l = 0; l < kLanes; ++l) {
      std::uint64_t sm = parent();
      s0_[l] = splitmix64(sm);
      s1_[l] = splitmix64(sm);
      s2_[l] = splitmix64(sm);
      s3_[l] = splitmix64(sm);
      if ((s0_[l] | s1_[l] | s2_[l] | s3_[l]) == 0) s0_[l] = 1;
    }
  }

  // Fills hi/lo with the 31-bit halves of `pairs` draws (lane-interleaved
  // order). pairs <= kPairs; draws beyond the last full lane group are
  // generated and discarded so lane states stay in lockstep.
  void fill(std::int32_t* hi, std::int32_t* lo, std::size_t pairs) noexcept {
    std::uint64_t raw[kPairs];
    const std::size_t rounded = (pairs + kLanes - 1) & ~(kLanes - 1);
    for (std::size_t i = 0; i < rounded; i += kLanes) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        const std::uint64_t x = rotl64(s1_[l] * 5, 7) * 9;
        const std::uint64_t t = s1_[l] << 17;
        s2_[l] ^= s0_[l];
        s3_[l] ^= s1_[l];
        s1_[l] ^= s2_[l];
        s0_[l] ^= s3_[l];
        s2_[l] ^= t;
        s3_[l] = rotl64(s3_[l], 45);
        raw[i + l] = x;
      }
    }
    for (std::size_t i = 0; i < pairs; ++i) {
      hi[i] = static_cast<std::int32_t>(raw[i] >> 33);
      lo[i] = static_cast<std::int32_t>(raw[i] & 0x7fffffff);
    }
  }

 private:
  std::uint64_t s0_[kLanes], s1_[kLanes], s2_[kLanes], s3_[kLanes];
};

// Box-Muller transform of one buffered block: one 64-bit draw yields one
// deviate pair (31-bit uniforms, pre-split into int32 halves by the RNG
// fill loop), written split as z0[i] = r*cos, z1[i] = r*sin so every load
// and store is contiguous.
//
// Written to auto-vectorize on anything >= SSE2 (and well on AVX2+): the
// whole loop is int32 loads and float arithmetic (matching lane widths, so
// lanes never narrow), ln via exponent split + atanh series in
// t = (m-1)/(m+1), sincos via branch-free quadrant fold + odd/even Taylor
// polynomials -- no libm calls, every select is a blend. Polynomial
// absolute error < ~1e-6 (float rounding dominates), orders of magnitude
// below Monte-Carlo noise. 31-bit uniforms truncate the Gaussian tail at
// ~6.5 sigma (P < 1e-10 per draw) -- irrelevant at characterization
// populations, documented in docs/CELL_MODEL.md.
inline void transform_block(const std::int32_t* hi, const std::int32_t* lo,
                            std::size_t pairs, float mean, float stddev,
                            float* z0, float* z1) {
  constexpr float kSqrt2 = 1.41421356f;
  constexpr float kLn2 = 0.6931471805599453f;
  constexpr float kHalfPi = 1.5707963267948966f;
  for (std::size_t i = 0; i < pairs; ++i) {
    const float u1 = (static_cast<float>(hi[i]) + 1.0f) * 0x1.0p-31f;  // (0,1]
    const float u2 = static_cast<float>(lo[i]) * 0x1.0p-31f;           // [0,1)

    // ln(u1): u1 = m * 2^e, fold m into [sqrt2/2, sqrt2].
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(u1);
    const std::int32_t ebits = static_cast<std::int32_t>(bits >> 23);
    float e = static_cast<float>(ebits) - 127.0f;
    float m = std::bit_cast<float>((bits & 0x7fffffu) | 0x3f800000u);  // [1,2)
    const bool high = m > kSqrt2;
    m = high ? 0.5f * m : m;
    e = high ? e + 1.0f : e;
    const float t = (m - 1.0f) / (m + 1.0f);
    const float t2 = t * t;
    const float series =
        1.0f +
        t2 * (1.0f / 3.0f +
              t2 * (1.0f / 5.0f + t2 * (1.0f / 7.0f + t2 * (1.0f / 9.0f))));
    const float ln_u1 = e * kLn2 + 2.0f * t * series;
    // Clamp away exact zero (u1 == 1) so a reciprocal-sqrt expansion of
    // std::sqrt (x * rsqrt(x)) can never see 0 * inf.
    const float r = std::sqrt(std::max(-2.0f * ln_u1, 1e-30f));

    // sin/cos of 2*pi*u2: quadrant fold to phi in [-pi/4, pi/4], all in
    // the float domain so the lanes never narrow.
    const float a = u2 * 4.0f;              // [0, 4)
    const float j = std::floor(a + 0.5f);   // {0..4}; 4 folds back to q=0
    const float phi = (a - j) * kHalfPi;    // [-pi/4, pi/4]
    const float q = j - 4.0f * std::floor(j * 0.25f);  // {0, 1, 2, 3}
    const float x2 = phi * phi;
    const float sp =
        phi * (1.0f +
               x2 * (-1.0f / 6.0f +
                     x2 * (1.0f / 120.0f + x2 * (-1.0f / 5040.0f))));
    const float cp =
        1.0f +
        x2 * (-1.0f / 2.0f +
              x2 * (1.0f / 24.0f +
                    x2 * (-1.0f / 720.0f + x2 * (1.0f / 40320.0f))));
    const bool swap = q == 1.0f || q == 3.0f;
    const float sa = swap ? cp : sp;
    const float ca = swap ? sp : cp;
    const float s = q >= 2.0f ? -sa : sa;
    const float c = (q == 1.0f || q == 2.0f) ? -ca : ca;

    z0[i] = mean + stddev * (r * c);
    z1[i] = mean + stddev * (r * s);
  }
}

void gaussian_fill_scaled(Xoshiro256& rng, std::span<float> out, double mean,
                          double stddev) {
  std::int32_t hi[kPairs], lo[kPairs];
  float z0[kPairs], z1[kPairs];
  PairSource src(rng);
  const auto fmean = static_cast<float>(mean);
  const auto fsigma = static_cast<float>(stddev);
  std::size_t done = 0;
  const std::size_t n = out.size();
  while (done < n) {
    const std::size_t want = n - done;
    const std::size_t pairs = std::min(kPairs, (want + 1) / 2);
    src.fill(hi, lo, pairs);
    transform_block(hi, lo, pairs, fmean, fsigma, z0, z1);
    const std::size_t n0 = std::min(want, pairs);
    const std::size_t n1 = std::min(want - n0, pairs);
    std::memcpy(out.data() + done, z0, n0 * sizeof(float));
    std::memcpy(out.data() + done + n0, z1, n1 * sizeof(float));
    done += n0 + n1;
  }
}

}  // namespace

void gaussian_fill(Xoshiro256& rng, std::span<float> out) {
  gaussian_fill_scaled(rng, out, 0.0, 1.0);
}

void gaussian_fill(Xoshiro256& rng, std::span<float> out, double mean,
                   double stddev) {
  gaussian_fill_scaled(rng, out, mean, stddev);
}

void add_clipped_gaussian(Xoshiro256& rng, std::span<float> vth, double mean,
                          double stddev) {
  std::int32_t hi[kPairs], lo[kPairs];
  float z0[kPairs], z1[kPairs];
  PairSource src(rng);
  const auto fmean = static_cast<float>(mean);
  const auto fsigma = static_cast<float>(stddev);
  std::size_t done = 0;
  const std::size_t n = vth.size();
  while (done < n) {
    const std::size_t want = n - done;
    const std::size_t pairs = std::min(kPairs, (want + 1) / 2);
    src.fill(hi, lo, pairs);
    transform_block(hi, lo, pairs, fmean, fsigma, z0, z1);
    const std::size_t n0 = std::min(want, pairs);
    const std::size_t n1 = std::min(want - n0, pairs);
    float* v = vth.data() + done;
    for (std::size_t i = 0; i < n0; ++i) v[i] += std::max(0.0f, z0[i]);
    v += n0;
    for (std::size_t i = 0; i < n1; ++i) v[i] += std::max(0.0f, z1[i]);
    done += n0 + n1;
  }
}

void quantize_to_gray(std::span<const float> vth,
                      std::span<const float> boundaries,
                      std::span<std::uint8_t> out) {
  constexpr std::size_t kChunk = 4096;
  const std::size_t n = vth.size();
  int acc[kChunk];
  for (std::size_t off = 0; off < n; off += kChunk) {
    const std::size_t len = std::min(kChunk, n - off);
    const float* v = vth.data() + off;
    for (std::size_t i = 0; i < len; ++i) acc[i] = 0;
    for (const float b : boundaries)
      for (std::size_t i = 0; i < len; ++i) acc[i] += v[i] > b;
    std::uint8_t* o = out.data() + off;
    for (std::size_t i = 0; i < len; ++i) {
      const unsigned level = static_cast<unsigned>(acc[i]);
      o[i] = static_cast<std::uint8_t>(level ^ (level >> 1));
    }
  }
}

std::uint64_t gray_bit_errors(std::span<const std::uint8_t> read_gray,
                              std::span<const std::uint8_t> target_gray) {
  const std::size_t n = read_gray.size();
  std::uint64_t errors = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, read_gray.data() + i, 8);
    std::memcpy(&b, target_gray.data() + i, 8);
    errors += static_cast<std::uint64_t>(std::popcount(a ^ b));
  }
  for (; i < n; ++i)
    errors += static_cast<std::uint64_t>(
        std::popcount(static_cast<unsigned>(read_gray[i] ^ target_gray[i])));
  return errors;
}

void uniform_levels_fill(Xoshiro256& rng, std::span<std::uint8_t> out,
                         std::uint32_t levels) {
  // levels is a power of two <= 256, so one random byte per cell masks down
  // to a uniform level. Draws fill a block buffer (the only serial chain),
  // then the byte extraction is a single vectorizable mask sweep.
  const auto mask = static_cast<std::uint8_t>(levels - 1);
  constexpr std::size_t kBlock = 512;  // 64-bit draws per block
  std::uint64_t buf[kBlock];
  std::size_t i = 0;
  const std::size_t n = out.size();
  while (i < n) {
    const std::size_t bytes = std::min(n - i, kBlock * 8);
    const std::size_t draws = (bytes + 7) / 8;
    for (std::size_t d = 0; d < draws; ++d) buf[d] = rng();
    const auto* src = reinterpret_cast<const std::uint8_t*>(buf);
    std::uint8_t* dst = out.data() + i;
    for (std::size_t j = 0; j < bytes; ++j) dst[j] = src[j] & mask;
    i += bytes;
  }
}

}  // namespace esp::util
