#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace esp::util {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::add(double x) noexcept {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
    ++underflow_;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
    ++overflow_;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

bool Histogram::merge(const Histogram& other) noexcept {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  return true;
}

Histogram Histogram::delta_since(const Histogram& earlier) const {
  Histogram out = *this;
  if (earlier.lo_ != lo_ || earlier.hi_ != hi_ ||
      earlier.counts_.size() != counts_.size()) {
    return out;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    assert(counts_[i] >= earlier.counts_[i]);
    out.counts_[i] -= earlier.counts_[i];
  }
  out.total_ -= earlier.total_;
  out.underflow_ -= earlier.underflow_;
  out.overflow_ -= earlier.overflow_;
  return out;
}

double Histogram::percentile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (cum + counts_[i] > target) {
      const double frac =
          static_cast<double>(target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum += counts_[i];
  }
  return hi_;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu p50=%.3g p95=%.3g p99=%.3g p999=%.3g",
                static_cast<unsigned long long>(total_), percentile(0.50),
                percentile(0.95), percentile(0.99), percentile(0.999));
  std::string out = buf;
  if (underflow_ || overflow_) {
    // Clamped samples distort the edge buckets; surface them instead of
    // letting the clamp pass silently.
    std::snprintf(buf, sizeof(buf), " clamped=[uf=%llu of=%llu]",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += buf;
  }
  return out;
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  underflow_ = 0;
  overflow_ = 0;
}

void Histogram::save_state(StateWriter& w) const {
  w.tag("HIST");
  w.f64(lo_);
  w.f64(hi_);
  w.pod_vec(counts_);
  w.u64(total_);
  w.u64(underflow_);
  w.u64(overflow_);
}

void Histogram::load_state(StateReader& r) {
  r.tag("HIST");
  const double lo = r.f64();
  const double hi = r.f64();
  std::vector<std::uint64_t> counts;
  r.pod_vec(counts);
  if (lo != lo_ || hi != hi_ || counts.size() != counts_.size())
    throw std::runtime_error("Histogram::load_state: shape mismatch");
  counts_ = std::move(counts);
  total_ = r.u64();
  underflow_ = r.u64();
  overflow_ = r.u64();
}

}  // namespace esp::util
