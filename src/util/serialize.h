// Binary state archive primitives for snapshot/restore.
//
// StateWriter/StateReader stream fixed-width little-endian scalars, POD
// vectors and strings, plus 4-byte section tags that catch format drift
// loudly instead of deserializing garbage. Every stateful layer of the
// simulator (nand, ftl, sim, telemetry) implements
//
//   void save_state(util::StateWriter& w) const;
//   void load_state(util::StateReader& r);
//
// against these primitives; core/snapshot.h composes them into the
// versioned whole-simulator snapshot format (docs/LIFETIME.md).
//
// The format is NOT an interchange format: it is only guaranteed to load
// in a binary built from the same source tree (the snapshot header's
// format version gates cross-version loads). Values are written raw, so a
// restored simulator is bit-identical to the saved one -- including the
// doubles that carry simulated time.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <iosfwd>
#include <istream>
#include <ostream>
#include <queue>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace esp::util {

class StateWriter {
 public:
  explicit StateWriter(std::ostream& os) : os_(os) {}

  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  /// 4-character section tag, e.g. "BLK0"; the reader requires an exact
  /// match, so a save/load mismatch fails at the tag instead of silently
  /// misinterpreting the bytes that follow.
  void tag(const char (&t)[5]) { raw(t, 4); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  /// Trivially copyable element vectors are written as one raw span.
  template <typename T>
  void pod_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    if (!v.empty()) raw(v.data(), v.size() * sizeof(T));
  }

  void bool_vec(const std::vector<bool>& v) {
    u64(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) u8(v[i] ? 1 : 0);
  }

  template <typename T>
  void pod_deque(const std::deque<T>& d) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(d.size());
    for (const T& v : d) raw(&v, sizeof(T));
  }

  /// std::pair is not trivially copyable; its members are written
  /// field-by-field (also skips any padding between them).
  template <typename A, typename B>
  void pair_vec(const std::vector<std::pair<A, B>>& v) {
    static_assert(std::is_trivially_copyable_v<A> &&
                  std::is_trivially_copyable_v<B>);
    u64(v.size());
    for (const auto& [a, b] : v) {
      raw(&a, sizeof(A));
      raw(&b, sizeof(B));
    }
  }

  template <typename A, typename B>
  void pair_deque(const std::deque<std::pair<A, B>>& d) {
    static_assert(std::is_trivially_copyable_v<A> &&
                  std::is_trivially_copyable_v<B>);
    u64(d.size());
    for (const auto& [a, b] : d) {
      raw(&a, sizeof(A));
      raw(&b, sizeof(B));
    }
  }

  void raw(const void* data, std::size_t n) {
    os_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    if (!os_) throw std::runtime_error("StateWriter: write failed");
  }

 private:
  std::ostream& os_;
};

class StateReader {
 public:
  explicit StateReader(std::istream& is) : is_(is) {}

  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, sizeof v);
    return v;
  }
  bool b() { return u8() != 0; }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    raw(&v, sizeof v);
    return v;
  }

  /// Requires the next four bytes to equal `t`; throws otherwise.
  void tag(const char (&t)[5]) {
    char got[5] = {};
    raw(got, 4);
    if (std::memcmp(got, t, 4) != 0)
      throw std::runtime_error(std::string("StateReader: expected section '") +
                               t + "', found '" + got + "'");
  }

  std::string str() {
    std::string s(checked_count(u64(), 1), '\0');
    raw(s.data(), s.size());
    return s;
  }

  template <typename T>
  void pod_vec(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    v.resize(checked_count(u64(), sizeof(T)));
    if (!v.empty()) raw(v.data(), v.size() * sizeof(T));
  }

  void bool_vec(std::vector<bool>& v) {
    v.assign(checked_count(u64(), 1), false);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = u8() != 0;
  }

  template <typename T>
  void pod_deque(std::deque<T>& d) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = checked_count(u64(), sizeof(T));
    d.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      T v;
      raw(&v, sizeof(T));
      d.push_back(v);
    }
  }

  template <typename A, typename B>
  void pair_vec(std::vector<std::pair<A, B>>& v) {
    static_assert(std::is_trivially_copyable_v<A> &&
                  std::is_trivially_copyable_v<B>);
    v.resize(checked_count(u64(), sizeof(A) + sizeof(B)));
    for (auto& [a, b] : v) {
      raw(&a, sizeof(A));
      raw(&b, sizeof(B));
    }
  }

  template <typename A, typename B>
  void pair_deque(std::deque<std::pair<A, B>>& d) {
    static_assert(std::is_trivially_copyable_v<A> &&
                  std::is_trivially_copyable_v<B>);
    const std::uint64_t n = checked_count(u64(), sizeof(A) + sizeof(B));
    d.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      std::pair<A, B> v;
      raw(&v.first, sizeof(A));
      raw(&v.second, sizeof(B));
      d.push_back(v);
    }
  }

  void raw(void* data, std::size_t n) {
    is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (is_.gcount() != static_cast<std::streamsize>(n))
      throw std::runtime_error("StateReader: unexpected end of snapshot");
  }

 private:
  /// Caps element counts so a corrupt length prefix fails with a clear
  /// error instead of a bad_alloc.
  static std::uint64_t checked_count(std::uint64_t n, std::size_t elem) {
    constexpr std::uint64_t kMaxBytes = 1ull << 36;  // 64 GiB
    if (n > kMaxBytes / (elem == 0 ? 1 : elem))
      throw std::runtime_error("StateReader: implausible element count");
    return n;
  }

  std::istream& is_;
};

/// Serializes a std::priority_queue by exposing its protected underlying
/// container, preserving the exact heap array layout -- a restored queue
/// is indistinguishable from the saved one under any later push/pop
/// sequence.
template <typename T, typename S, typename C>
const S& heap_container(const std::priority_queue<T, S, C>& q) {
  struct Exposer : std::priority_queue<T, S, C> {
    static const S& get(const std::priority_queue<T, S, C>& pq) {
      return pq.*&Exposer::c;
    }
  };
  return Exposer::get(q);
}

template <typename T, typename S, typename C>
S& heap_container(std::priority_queue<T, S, C>& q) {
  struct Exposer : std::priority_queue<T, S, C> {
    static S& get(std::priority_queue<T, S, C>& pq) {
      return pq.*&Exposer::c;
    }
  };
  return Exposer::get(q);
}

}  // namespace esp::util
