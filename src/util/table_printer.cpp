#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace esp::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace esp::util
