// Simulated-time representation shared by every layer.
//
// SimTime is a double count of simulated *microseconds* since simulation
// start. A double keeps exact integer microsecond arithmetic up to 2^53 us
// (~285 simulated years), far beyond the 15-day retention horizons the FTL
// reasons about, while staying trivially convertible to latencies.
#pragma once

namespace esp {

using SimTime = double;  ///< microseconds of simulated time

namespace sim_time {

constexpr SimTime kMicrosecond = 1.0;
constexpr SimTime kMillisecond = 1e3;
constexpr SimTime kSecond = 1e6;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;
constexpr SimTime kMonth = 30 * kDay;  ///< paper uses 1 month = 30 days

constexpr double to_seconds(SimTime t) { return t / kSecond; }
constexpr double to_days(SimTime t) { return t / kDay; }
constexpr SimTime from_days(double days) { return days * kDay; }
constexpr SimTime from_months(double months) { return months * kMonth; }

}  // namespace sim_time
}  // namespace esp
