// Fixed-bucket histogram with percentile queries.
//
// Used for latency distributions (per-request service time) and for the
// cell model's bit-error-count distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/serialize.h"

namespace esp::util {

/// Linear-bucket histogram over [lo, hi); out-of-range samples clamp into
/// the first/last bucket so totals are never lost.
class Histogram {
 public:
  /// @param lo       lower bound of the first bucket
  /// @param hi       upper bound of the last bucket (must be > lo)
  /// @param buckets  number of buckets (must be > 0)
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  /// Accumulates `other` into this histogram. Both must have identical
  /// shape (lo, hi, bucket count); returns false (and leaves this
  /// unchanged) on a shape mismatch.
  bool merge(const Histogram& other) noexcept;

  /// Per-bucket difference against an EARLIER SNAPSHOT of this histogram:
  /// returns a histogram holding only the samples added since `earlier`
  /// was copied. `earlier` must have the same shape and bucket counts
  /// <= this one's (it was this histogram at some earlier point); on a
  /// shape mismatch a copy of *this is returned unchanged.
  Histogram delta_since(const Histogram& earlier) const;

  std::uint64_t total() const noexcept { return total_; }

  /// Samples that fell below lo() and were clamped into the first bucket.
  std::uint64_t underflow() const noexcept { return underflow_; }
  /// Samples at/above hi() that were clamped into the last bucket.
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Value at the given quantile q in [0, 1] (bucket lower edge +
  /// within-bucket linear interpolation). Returns lo() for an empty
  /// histogram.
  double percentile(double q) const noexcept;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }

  /// Compact one-line rendering ("p50=... p99=... max-bucket=[a,b)").
  std::string summary() const;

  void reset() noexcept;

  /// Snapshot support. Shape (lo, hi, bucket count) is saved and checked
  /// on load so a histogram restored into a differently configured owner
  /// fails loudly.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace esp::util
