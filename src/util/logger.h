// Minimal leveled logging.
//
// The simulator is a library first: logging defaults to Warn so that tests
// and benches stay quiet, and callers (examples, debugging sessions) can
// raise verbosity globally. The `ESP_LOG_LEVEL` environment variable
// (trace|debug|info|warn|error|off, case-insensitive) overrides the
// default at process start, so any binary can be made chatty without a
// rebuild.
#pragma once

#include <cstdarg>
#include <functional>
#include <optional>
#include <string_view>

namespace esp::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the process-wide minimum level that is emitted.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parses a level name ("trace".."error", "off"; case-insensitive).
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Installs a simulated-clock source; when set, every log line is prefixed
/// with the current simulated time ("t=12.345678s"). Pass nullptr to
/// remove. The provider must be cheap and safe to call from any log site.
/// The installation is THREAD-LOCAL: each worker of the parallel experiment
/// runner sees only the provider its own simulation installed.
void set_log_sim_time_provider(std::function<double()> now_us);

/// printf-style log emission to stderr; filtered by the global level.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace esp::util

// Convenience macros: compile to a level check + call.
#define ESP_LOG_TRACE(...) \
  ::esp::util::logf(::esp::util::LogLevel::kTrace, __VA_ARGS__)
#define ESP_LOG_DEBUG(...) \
  ::esp::util::logf(::esp::util::LogLevel::kDebug, __VA_ARGS__)
#define ESP_LOG_INFO(...) \
  ::esp::util::logf(::esp::util::LogLevel::kInfo, __VA_ARGS__)
#define ESP_LOG_WARN(...) \
  ::esp::util::logf(::esp::util::LogLevel::kWarn, __VA_ARGS__)
#define ESP_LOG_ERROR(...) \
  ::esp::util::logf(::esp::util::LogLevel::kError, __VA_ARGS__)
