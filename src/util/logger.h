// Minimal leveled logging.
//
// The simulator is a library first: logging defaults to Warn so that tests
// and benches stay quiet, and callers (examples, debugging sessions) can
// raise verbosity globally.
#pragma once

#include <cstdarg>

namespace esp::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the process-wide minimum level that is emitted.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// printf-style log emission to stderr; filtered by the global level.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace esp::util

// Convenience macros: compile to a level check + call.
#define ESP_LOG_TRACE(...) \
  ::esp::util::logf(::esp::util::LogLevel::kTrace, __VA_ARGS__)
#define ESP_LOG_DEBUG(...) \
  ::esp::util::logf(::esp::util::LogLevel::kDebug, __VA_ARGS__)
#define ESP_LOG_INFO(...) \
  ::esp::util::logf(::esp::util::LogLevel::kInfo, __VA_ARGS__)
#define ESP_LOG_WARN(...) \
  ::esp::util::logf(::esp::util::LogLevel::kWarn, __VA_ARGS__)
#define ESP_LOG_ERROR(...) \
  ::esp::util::logf(::esp::util::LogLevel::kError, __VA_ARGS__)
