#include "util/zipf.h"

#include <cassert>
#include <cmath>

namespace esp::util {

double ZipfSampler::zeta(std::uint64_t n, double theta) {
  // Exact sum for small n; two-term Euler-Maclaurin tail for large n keeps
  // setup O(1)-ish without visible sampling error at our population sizes.
  constexpr std::uint64_t kExactLimit = 1u << 20;
  if (n <= kExactLimit) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) sum += std::pow(i, -theta);
    return sum;
  }
  double sum = zeta(kExactLimit, theta);
  const double a = static_cast<double>(kExactLimit);
  const double b = static_cast<double>(n);
  // integral of x^-theta from a to b plus trapezoid correction
  sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) / (1.0 - theta);
  sum += 0.5 * (std::pow(b, -theta) - std::pow(a, -theta));
  return sum;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta >= 0.0 && theta < 1.0);
  if (theta_ > 0.0) {
    alpha_ = 1.0 / (1.0 - theta_);
    zetan_ = zeta(n_, theta_);
    zeta2theta_ = zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2theta_ / zetan_);
  }
}

std::uint64_t ZipfSampler::sample(Xoshiro256& rng) const {
  if (theta_ == 0.0) return rng.below(n_);
  const double u = rng.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

ScatteredZipf::ScatteredZipf(std::uint64_t n, double theta)
    : sampler_(n, theta),
      // Any odd multiplier is a bijection mod 2^k; for general n we use
      // (rank * multiplier) % n with a multiplier coprime-ish to typical n.
      multiplier_(0x9e3779b97f4a7c15ull | 1ull) {}

std::uint64_t ScatteredZipf::sample(Xoshiro256& rng) const {
  const std::uint64_t rank = sampler_.sample(rng);
  return (rank * multiplier_) % sampler_.population();
}

}  // namespace esp::util
