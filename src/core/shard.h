// Shared-nothing intra-cell sharding: one experiment cell split into N
// independent sub-simulations so a single prod-scale replay saturates
// every core.
//
// A shard owns a CHANNEL GROUP of the device -- its own NandDevice slice
// (geometry.channels / N channels, same chips/channel, blocks and pages),
// its own FTL instance and its own Driver -- plus a page-striped slice of
// the LBA space (workload/splitter.h). Shards share NO mutable state, so
// they run as tasks on the existing work-stealing pool (run_tasks) and
// the whole cell uses the machine.
//
// Determinism contract (docs/PERFORMANCE.md "Intra-cell sharding"):
//   * LBA -> shard routing depends only on (shards, shard_stripe_pages) --
//     never on thread schedule;
//   * per-shard seeds derive from the cell's seed + shard index
//     (stable_cell_seed over "shard/<i>"), stamped into each shard's
//     journal/health headers;
//   * the join merges everything in fixed shard-index order on the joining
//     thread -- FtlStats sums, histogram merges, metrics-registry
//     reconciliation, journal/health sidecar concatenation -- so merged
//     results are bit-identical for every --jobs value;
//   * a shard's simulation depends only on its own spec + stream, so its
//     journal is byte-identical whether it ran alone or alongside
//     siblings (the shard-invariance gate re-runs one shard standalone
//     through make_shard_spec and byte-compares).
//
// What sharding changes: shards cannot interact, so cross-shard GC/wear
// coupling present in the unsharded device (a GC-busy channel group
// stalling traffic that the unsharded FTL would have absorbed elsewhere,
// device-wide wear-leveling candidate choice) is simulated per group.
// Sharded results are a different -- reproducible -- point in model space,
// compared against the unsharded baseline by the macro-replay bench.
#pragma once

#include <cstdint>
#include <string>

#include "core/experiment.h"

namespace esp::core {

/// Resolved routing parameters of a sharded cell.
struct ShardPlan {
  std::uint32_t shards = 1;
  std::uint32_t stripe_pages = 0;
  std::uint64_t stripe_sectors = 0;   ///< stripe_pages * subpages_per_page
  std::uint64_t shard_sectors = 0;    ///< per-shard addressed LBA sectors
  std::uint64_t usable_sectors = 0;   ///< global addressed LBA sectors
};

/// Validates a sharded spec (shards >= 2, channels divisible by shards,
/// single-tenant, no stream override) and resolves the routing plan.
/// Throws std::invalid_argument on violation.
ShardPlan make_shard_plan(const ExperimentSpec& spec);

/// Device slice + scaled per-shard knobs: channels / shards, and the
/// aggregate-preserving division of queue depth, write buffer, GC reserve
/// and the (host-write-counted) wear-leveling check interval.
SsdConfig shard_ssd_config(const SsdConfig& full, std::uint32_t shards);

/// Deterministic per-shard seed: derives from the cell's workload seed
/// (itself derived from the cell key by the parallel runner) + the shard
/// index. Stamped into the shard's journal/health headers.
std::uint64_t shard_seed(const ExperimentSpec& spec, std::uint32_t index);

/// Sidecar path of shard `index`'s journal/health stream: ".shard<i>" is
/// spliced in front of the extension ("j.jsonl" -> "j.shard0.jsonl").
std::string shard_sidecar_path(const std::string& path, std::uint32_t index);

/// Generator parameters of the full (pre-split) stream: the cell's
/// workload with its footprint defaulted/clamped to the plan's usable
/// striped space.
workload::SyntheticParams sharded_workload_params(const ExperimentSpec& spec,
                                                  const ShardPlan& plan);

/// Standalone leaf spec of shard `index`: sliced geometry, scaled knobs,
/// derived seed, shard-tagged headers and sidecar stream paths. The
/// caller attaches the shard's request slice (partition_stream over the
/// full generator) via spec.stream -- and that caller can be a test or
/// the macro-replay invariance gate re-running ONE shard alone: the
/// result is byte-identical to the same shard inside the full sharded
/// run.
ExperimentSpec make_shard_spec(const ExperimentSpec& spec,
                               const ShardPlan& plan, std::uint32_t index);

/// Runs a sharded cell: partitions the generated stream, runs every shard
/// as a task on the work-stealing pool (spec.shard_jobs workers), merges
/// in shard-index order. Called by run_experiment when spec.shards > 1.
RunResult run_sharded_experiment(const ExperimentSpec& spec);

}  // namespace esp::core
