#include "core/build_info.h"

#include "core/version_info.h"

namespace esp::core {

const char* build_version() { return ESPNAND_VERSION; }

const char* build_git_describe() { return ESPNAND_GIT_DESCRIBE; }

const char* build_geometry_profiles() {
  // Keep in sync with nand::geometry_profile() -- there is no registry to
  // enumerate, and the tests pin this list against the profiles compiling.
  return "paper,prod";
}

std::string build_info_line() {
  std::string line = "espnand ";
  line += build_version();
  line += " (";
  line += build_git_describe();
  line += ") geometries=";
  line += build_geometry_profiles();
  return line;
}

}  // namespace esp::core
