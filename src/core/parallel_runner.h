// Parallel deterministic experiment runner.
//
// Bench grids (figure reproductions, parameter sweeps) are embarrassingly
// parallel: every cell is an independent single-threaded simulation. This
// runner executes a list of ExperimentCells on a work-stealing thread pool
// while keeping every per-cell result BIT-IDENTICAL to a sequential run:
//
//   * determinism by construction -- each cell's workload seed is derived
//     from the cell's stable key (never from schedule order, thread id, or
//     completion order), and a simulation shares no mutable state with its
//     siblings (the one historical global, the logger's sim-time provider,
//     is thread-local);
//   * results are returned in input order, and cross-cell aggregation
//     (metrics-registry reconciliation, latency-histogram merging) happens
//     on the joining thread in input order, so floating-point accumulation
//     order is fixed regardless of --jobs;
//   * a machine-readable RunManifest records what ran where (key, seed,
//     worker, wall time) for provenance and CI determinism diffs.
//
// See docs/PARALLEL_RUNNER.md for the full contract.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "telemetry/metrics.h"
#include "util/histogram.h"

namespace esp::core {

/// One unit of work: a stable key naming the cell plus the spec to run.
/// Keys should be path-like and unique within a run ("fig8/varmail/subFTL");
/// the key is the cell's identity for seeding and in the manifest.
struct ExperimentCell {
  std::string key;
  ExperimentSpec spec;
};

/// Outcome of one cell. `ok == false` means the cell threw; `error` carries
/// the exception message and `result` is default-constructed.
struct CellResult {
  std::string key;
  std::uint64_t seed = 0;  ///< workload seed the cell actually ran with
  bool ok = false;
  std::string error;
  double wall_seconds = 0.0;  ///< host wall-clock spent on this cell
  unsigned worker = 0;        ///< pool worker that executed the cell
  /// Every independent request stream the cell drove, with the seed it
  /// actually ran with: "workload" plus one "tenantN" entry per tenant
  /// lane. RNG provenance for the manifest -- a stream's full initial
  /// engine state is derivable from its seed alone (SplitMix64 expansion).
  std::vector<std::pair<std::string, std::uint64_t>> stream_seeds;
  RunResult result;
};

struct ParallelRunnerConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). The pool
  /// never spawns more workers than cells.
  unsigned jobs = 0;
  /// Attach a per-cell telemetry facade and reconcile the materialized
  /// registries into merged_registry() at join time.
  bool collect_telemetry = false;
  /// Base seed mixed into every derived per-cell seed; change it to get an
  /// independent but equally deterministic replication of the whole grid.
  std::uint64_t base_seed = 2017;
  /// When true (default), each cell's spec.workload.seed is overwritten
  /// with stable_cell_seed(key, base_seed). When false, specs run with the
  /// seeds they carry.
  bool derive_seeds = true;
};

/// Deterministic seed for a cell: FNV-1a over the key, mixed with the base
/// seed through a splitmix64 finalizer. Depends ONLY on (key, base_seed) --
/// never on schedule order -- and is never 0 (Xoshiro rejects 0 states).
std::uint64_t stable_cell_seed(std::string_view key, std::uint64_t base_seed);

/// Generic deterministic fan-out on the same work-stealing pool the
/// experiment grids use: runs fn(0) .. fn(count - 1), each exactly once,
/// across `jobs` workers (0 = hardware_concurrency; never more workers
/// than tasks; jobs == 1 runs inline with no thread overhead).
///
/// The determinism contract is the caller's to uphold, same as for
/// experiment grids: tasks share no mutable state, any randomness inside a
/// task is seeded from the task's stable identity (stable_cell_seed over a
/// key naming it -- never from the schedule), and each task writes only to
/// its own pre-allocated result slot so aggregation can happen on the
/// joining thread in index order. The Monte-Carlo characterization benches
/// (fig4/fig5) fan word-line populations out through this.
///
/// If any task throws, the first exception (in completion order) is
/// rethrown on the calling thread after all workers drain. Returns the
/// number of workers actually used.
unsigned run_tasks(unsigned jobs, std::size_t count,
                   const std::function<void(std::size_t)>& fn);

/// Provenance record of one run() call.
struct RunManifest {
  unsigned jobs_requested = 0;
  unsigned jobs_used = 0;
  std::uint64_t base_seed = 0;
  bool derive_seeds = true;
  double wall_seconds = 0.0;  ///< whole-grid wall time (fork to join)
  struct Cell {
    std::string key;
    std::uint64_t seed = 0;
    bool ok = false;
    std::string error;
    double wall_seconds = 0.0;
    unsigned worker = 0;
    /// Sidecar-stream write/truncation accounting, copied from the cell's
    /// RunResult so sweep manifests answer "did any stream drop data?"
    /// without re-reading the JSONL files. All zero (and omitted from the
    /// JSON) when the cell ran without streams.
    std::uint64_t trace_dropped = 0;
    std::uint64_t journal_events = 0;
    std::uint64_t journal_truncated = 0;
    std::uint64_t health_epochs = 0;
    std::uint64_t health_lines = 0;
    std::uint64_t forensics_requests = 0;
    std::uint64_t forensics_exemplars = 0;
    std::uint64_t forensics_truncated = 0;
    /// Per-stream RNG provenance: (stream name, seed) for the workload
    /// stream and every tenant lane. The manifest JSON stamps each with
    /// the initial Xoshiro256** engine state so an exact replay can be
    /// asserted against a foreign implementation, not just a seed match.
    std::vector<std::pair<std::string, std::uint64_t>> stream_seeds;
  };
  std::vector<Cell> cells;  ///< input order
};

class ParallelRunner {
 public:
  explicit ParallelRunner(const ParallelRunnerConfig& config = {});

  /// Runs every cell; returns results in input order. Cells that throw
  /// come back with ok == false instead of aborting the grid. Callable
  /// repeatedly; merged state and the manifest cover the LAST run only.
  std::vector<CellResult> run(const std::vector<ExperimentCell>& cells);

  /// Reconciled per-cell telemetry registries (input cell order), populated
  /// when config.collect_telemetry is set.
  const telemetry::MetricsRegistry& merged_registry() const {
    return merged_registry_;
  }
  /// All cells' request service-time distributions merged in input order.
  const util::Histogram& merged_latency() const { return merged_latency_; }
  /// All cells' response-time (arrival -> done) distributions, ditto.
  const util::Histogram& merged_response() const { return merged_response_; }

  const RunManifest& manifest() const { return manifest_; }

  /// Serializes a manifest as a stable, diff-friendly JSON object. Wall
  /// times are host-side and NOT deterministic; CI determinism checks
  /// should compare the "cells" seeds/keys and bench payloads, not timings.
  static void write_manifest_json(const RunManifest& manifest,
                                  std::ostream& os);

 private:
  ParallelRunnerConfig config_;
  telemetry::MetricsRegistry merged_registry_;
  util::Histogram merged_latency_{0.0, 200000.0, 2000};
  util::Histogram merged_response_{0.0, 200000.0, 2000};
  RunManifest manifest_;
};

}  // namespace esp::core
