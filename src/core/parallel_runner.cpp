#include "core/parallel_runner.h"

#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <ostream>
#include <thread>

#include "core/build_info.h"
#include "telemetry/json.h"
#include "telemetry/telemetry.h"
#include "util/logger.h"
#include "util/rng.h"

namespace esp::core {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Per-worker work queue. Owners pop from the front (cache-friendly for
/// the round-robin initial partition); thieves steal from the back so they
/// contend with the owner as little as possible. A mutex per deque is
/// plenty here: cells run for seconds, steals happen a handful of times
/// per grid.
struct WorkQueue {
  std::mutex mu;
  std::deque<std::size_t> items;

  bool pop_front(std::size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (items.empty()) return false;
    *out = items.front();
    items.pop_front();
    return true;
  }
  bool steal_back(std::size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (items.empty()) return false;
    *out = items.back();
    items.pop_back();
    return true;
  }
};

/// Shared work-stealing drive: round-robin initial partition, owners pop
/// front, thieves steal back, jobs == 1 runs inline. `body(index, worker)`
/// must not throw (callers wrap their work to capture errors).
void drive_work_stealing(
    unsigned jobs, std::size_t count,
    const std::function<void(std::size_t, unsigned)>& body) {
  std::vector<WorkQueue> queues(jobs);
  for (std::size_t i = 0; i < count; ++i)
    queues[i % jobs].items.push_back(i);

  const auto worker_main = [&](unsigned w) {
    std::size_t item = 0;
    for (;;) {
      if (queues[w].pop_front(&item)) {
        body(item, w);
        continue;
      }
      bool stole = false;
      for (unsigned off = 1; off < jobs; ++off) {
        if (queues[(w + off) % jobs].steal_back(&item)) {
          stole = true;
          break;
        }
      }
      if (!stole) return;  // every queue drained: done
      body(item, w);
    }
  };

  if (jobs == 1) {
    worker_main(0);  // inline: no thread overhead for sequential runs
  } else {
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) workers.emplace_back(worker_main, w);
    for (auto& t : workers) t.join();
  }
}

}  // namespace

std::uint64_t stable_cell_seed(std::string_view key, std::uint64_t base_seed) {
  // FNV-1a 64-bit over the key bytes.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  const std::uint64_t mixed = splitmix64(h ^ splitmix64(base_seed));
  return mixed != 0 ? mixed : 0x9e3779b97f4a7c15ull;
}

unsigned run_tasks(unsigned jobs, std::size_t count,
                   const std::function<void(std::size_t)>& fn) {
  if (count == 0) return 0;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  jobs = std::min<unsigned>(jobs, static_cast<unsigned>(count));

  std::mutex error_mu;
  std::exception_ptr first_error;
  drive_work_stealing(jobs, count, [&](std::size_t i, unsigned) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  });
  if (first_error) std::rethrow_exception(first_error);
  return jobs;
}

ParallelRunner::ParallelRunner(const ParallelRunnerConfig& config)
    : config_(config) {}

std::vector<CellResult> ParallelRunner::run(
    const std::vector<ExperimentCell>& cells) {
  using Clock = std::chrono::steady_clock;

  merged_registry_ = telemetry::MetricsRegistry{};
  merged_latency_.reset();
  merged_response_.reset();
  manifest_ = RunManifest{};
  manifest_.jobs_requested = config_.jobs;
  manifest_.base_seed = config_.base_seed;
  manifest_.derive_seeds = config_.derive_seeds;

  std::vector<CellResult> results(cells.size());
  std::vector<telemetry::MetricsRegistry> cell_registries(
      config_.collect_telemetry ? cells.size() : 0);
  if (cells.empty()) return results;

  unsigned jobs = config_.jobs;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  jobs = std::min<unsigned>(jobs, static_cast<unsigned>(cells.size()));
  manifest_.jobs_used = jobs;

  const auto run_cell = [&](std::size_t i, unsigned worker) {
    const auto cell_start = Clock::now();
    CellResult& out = results[i];
    out.key = cells[i].key;
    out.worker = worker;
    ExperimentSpec spec = cells[i].spec;
    if (config_.derive_seeds) {
      spec.workload.seed = stable_cell_seed(cells[i].key, config_.base_seed);
      // Tenants get independent streams: seed each from the cell key plus
      // the tenant index, so no two lanes replay the same sequence.
      for (std::size_t t = 0; t < spec.tenants.size(); ++t)
        spec.tenants[t].workload.seed = stable_cell_seed(
            cells[i].key + "#tenant" + std::to_string(t), config_.base_seed);
    }
    out.seed = spec.workload.seed;
    out.stream_seeds.emplace_back("workload", spec.workload.seed);
    for (std::size_t t = 0; t < spec.tenants.size(); ++t)
      out.stream_seeds.emplace_back("tenant" + std::to_string(t),
                                    spec.tenants[t].workload.seed);
    telemetry::Telemetry tel;
    if (config_.collect_telemetry) spec.telemetry = &tel;
    try {
      out.result = run_experiment(spec);
      out.ok = true;
    } catch (const std::exception& e) {
      out.error = e.what();
      ESP_LOG_ERROR("cell '%s' failed: %s", out.key.c_str(), e.what());
    } catch (...) {
      out.error = "unknown exception";
      ESP_LOG_ERROR("cell '%s' failed: unknown exception", out.key.c_str());
    }
    if (config_.collect_telemetry) {
      // Snapshot now: bound counters reference the (already destroyed by
      // run_experiment) Ssd internals unless materialized -- run_experiment
      // materializes via ~Ssd, but materialize() is idempotent, so be safe.
      tel.registry().materialize();
      cell_registries[i] = tel.registry();
    }
    out.wall_seconds =
        std::chrono::duration<double>(Clock::now() - cell_start).count();
  };

  const auto grid_start = Clock::now();
  drive_work_stealing(jobs, cells.size(), run_cell);
  manifest_.wall_seconds =
      std::chrono::duration<double>(Clock::now() - grid_start).count();

  // Aggregation strictly in INPUT order on this (joining) thread: summed
  // doubles and merged histograms come out bit-identical for any --jobs.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = results[i];
    if (r.ok) {
      merged_latency_.merge(r.result.raw.latency_hist);
      merged_response_.merge(r.result.raw.response_hist);
    }
    if (config_.collect_telemetry)
      merged_registry_.merge_from(cell_registries[i]);
    RunManifest::Cell cell;
    cell.key = r.key;
    cell.seed = r.seed;
    cell.ok = r.ok;
    cell.error = r.error;
    cell.wall_seconds = r.wall_seconds;
    cell.worker = r.worker;
    cell.trace_dropped = r.result.trace_dropped;
    cell.journal_events = r.result.journal_events;
    cell.journal_truncated = r.result.journal_truncated;
    cell.health_epochs = r.result.health_epochs;
    cell.health_lines = r.result.health_lines;
    cell.forensics_requests = r.result.forensics_requests;
    cell.forensics_exemplars = r.result.forensics_exemplars;
    cell.forensics_truncated = r.result.forensics_truncated;
    cell.stream_seeds = r.stream_seeds;
    manifest_.cells.push_back(std::move(cell));
  }
  return results;
}

void ParallelRunner::write_manifest_json(const RunManifest& manifest,
                                         std::ostream& os) {
  telemetry::JsonWriter w(os);
  w.begin_object();
  w.kv("version", build_version());
  w.kv("git", build_git_describe());
  w.kv("geometry_profiles", build_geometry_profiles());
  w.newline();
  w.kv("jobs_requested", static_cast<std::uint64_t>(manifest.jobs_requested));
  w.kv("jobs_used", static_cast<std::uint64_t>(manifest.jobs_used));
  w.kv("base_seed", manifest.base_seed);
  w.kv("derive_seeds", manifest.derive_seeds);
  w.kv("wall_seconds", manifest.wall_seconds);
  w.newline();
  w.key("cells");
  w.begin_array();
  for (const auto& cell : manifest.cells) {
    w.newline();
    w.begin_object();
    w.kv("key", cell.key);
    w.kv("seed", cell.seed);
    w.kv("ok", cell.ok);
    if (!cell.error.empty()) w.kv("error", cell.error);
    w.kv("wall_seconds", cell.wall_seconds);
    w.kv("worker", static_cast<std::uint64_t>(cell.worker));
    // RNG provenance: the exact starting engine state of every request
    // stream. Redundant with the seed by construction (SplitMix64
    // expansion), stamped so replay equivalence can be checked against
    // an independent implementation without re-deriving the expansion.
    if (!cell.stream_seeds.empty()) {
      w.key("rng");
      w.begin_object();
      for (const auto& [name, seed] : cell.stream_seeds) {
        w.key(name);
        w.begin_object();
        w.kv("seed", seed);
        w.kv("xoshiro256ss_state", util::Xoshiro256(seed).describe_state());
        w.end_object();
      }
      w.end_object();
    }
    // Sidecar accounting appears uniformly whenever the cell ran with any
    // stream attached; stream-less sweeps keep the legacy cell bytes.
    if (cell.trace_dropped != 0 || cell.journal_events != 0 ||
        cell.health_lines != 0 || cell.forensics_requests != 0) {
      w.key("sidecars");
      w.begin_object();
      w.kv("trace_dropped", cell.trace_dropped);
      w.kv("journal_events", cell.journal_events);
      w.kv("journal_truncated", cell.journal_truncated);
      w.kv("health_epochs", cell.health_epochs);
      w.kv("health_lines", cell.health_lines);
      w.kv("forensics_requests", cell.forensics_requests);
      w.kv("forensics_exemplars", cell.forensics_exemplars);
      w.kv("forensics_truncated", cell.forensics_truncated);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

}  // namespace esp::core
