#include "core/snapshot.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "telemetry/auditor.h"
#include "telemetry/forensics.h"
#include "telemetry/health.h"
#include "telemetry/journal.h"
#include "telemetry/telemetry.h"
#include "util/serialize.h"

namespace esp::core {

namespace {

// FNV-1a 64-bit over a byte buffer.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void write_meta(util::StateWriter& w, const SnapshotMeta& m) {
  w.tag("META");
  w.u64(m.workload_seed);
  w.u64(m.source_consumed);
  w.u64(m.measured_done);
  w.f64(m.saved_at_us);
  w.u64(m.journal_offset);
  w.u64(m.health_offset);
  w.u64(m.forensics_offset);
  w.b(m.has_telemetry);
  w.b(m.has_journal);
  w.b(m.has_auditor);
  w.b(m.has_health);
  w.b(m.has_forensics);
}

SnapshotMeta read_meta(util::StateReader& r) {
  SnapshotMeta m;
  r.tag("META");
  m.workload_seed = r.u64();
  m.source_consumed = r.u64();
  m.measured_done = r.u64();
  m.saved_at_us = r.f64();
  m.journal_offset = r.u64();
  m.health_offset = r.u64();
  m.forensics_offset = r.u64();
  m.has_telemetry = r.b();
  m.has_journal = r.b();
  m.has_auditor = r.b();
  m.has_health = r.b();
  m.has_forensics = r.b();
  return m;
}

// Optional sections are buffered and written behind a byte-length prefix,
// so a reader without the matching consumer can skip the section whole.
template <typename SaveFn>
void write_section(std::ostream& os, util::StateWriter& w, SaveFn&& save) {
  std::ostringstream buf(std::ios::binary);
  util::StateWriter sw(buf);
  save(sw);
  const std::string bytes = buf.str();
  w.u64(bytes.size());
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error("write_snapshot: write failed");
}

// Reads one length-prefixed section: dispatches to `load` when a consumer
// exists, skips the bytes otherwise. Verifies the consumer ate exactly the
// recorded length -- a drifted layer fails here instead of corrupting the
// next section.
template <typename LoadFn>
void read_section(std::istream& is, util::StateReader& r, const char* name,
                  bool has_consumer, LoadFn&& load) {
  const std::uint64_t len = r.u64();
  if (!has_consumer) {
    is.seekg(static_cast<std::streamoff>(len), std::ios::cur);
    if (!is)
      throw std::runtime_error(std::string("read_snapshot_state: cannot "
                                           "skip section ") +
                               name);
    return;
  }
  const std::streampos before = is.tellg();
  load(r);
  const std::streampos after = is.tellg();
  if (after - before != static_cast<std::streamoff>(len))
    throw std::runtime_error(
        std::string("read_snapshot_state: section ") + name + " consumed " +
        std::to_string(static_cast<long long>(after - before)) +
        " bytes, recorded " + std::to_string(len));
}

}  // namespace

std::uint64_t config_fingerprint(const SsdConfig& c) {
  std::ostringstream buf(std::ios::binary);
  util::StateWriter w(buf);
  // Canonical field-by-field serialization: never hash struct memory
  // (padding bytes), and keep the order append-only so the fingerprint is
  // stable across builds of the same source tree.
  w.u32(c.geometry.channels);
  w.u32(c.geometry.chips_per_channel);
  w.u32(c.geometry.blocks_per_chip);
  w.u32(c.geometry.pages_per_block);
  w.u32(c.geometry.page_bytes);
  w.u32(c.geometry.subpages_per_page);
  w.f64(c.timing.read_full_us);
  w.f64(c.timing.read_sub_us);
  w.f64(c.timing.prog_full_us);
  w.f64(c.timing.prog_sub_us);
  w.f64(c.timing.erase_us);
  w.f64(c.timing.xfer_us_per_kb);
  w.f64(c.timing.cmd_overhead_us);
  w.f64(c.retention.npp_base_slope);
  w.f64(c.retention.time_slope);
  w.f64(c.retention.npp_time_factor);
  w.f64(c.retention.ecc_limit);
  w.u32(c.retention.rated_pe_cycles);
  w.f64(c.retention.overwear_slope);
  w.f64(c.retention.wear_exponent);
  w.f64(c.retention.fullpage_rated_months);
  w.u8(static_cast<std::uint8_t>(c.ftl));
  w.f64(c.logical_fraction);
  w.f64(c.subpage_region_fraction);
  w.f64(c.retention_evict_age);
  w.f64(c.retention_scan_interval);
  w.u64(c.buffer_sectors);
  w.u64(c.gc_reserve_blocks);
  w.u32(c.queue_depth);
  w.u32(c.wl_pe_threshold);
  w.u32(c.wl_check_interval);
  w.b(c.use_copyback);
  w.b(c.reference_scan_maintenance);
  return fnv1a(buf.str());
}

void write_snapshot(std::ostream& os, const SnapshotMeta& meta,
                    const Ssd& ssd, const SnapshotSinks& sinks) {
  util::StateWriter w(os);
  w.raw(kSnapshotMagic, sizeof kSnapshotMagic);
  w.u32(kSnapshotFormatVersion);
  w.u64(config_fingerprint(ssd.config()));

  SnapshotMeta m = meta;
  m.has_telemetry = sinks.telemetry != nullptr;
  m.has_journal = sinks.journal != nullptr;
  m.has_auditor = sinks.auditor != nullptr;
  m.has_health = sinks.health != nullptr;
  m.has_forensics = sinks.forensics != nullptr;
  write_meta(w, m);

  ssd.save_state(w);

  if (sinks.telemetry)
    write_section(os, w,
                  [&](util::StateWriter& sw) { sinks.telemetry->save_state(sw); });
  if (sinks.journal)
    write_section(os, w,
                  [&](util::StateWriter& sw) { sinks.journal->save_state(sw); });
  if (sinks.auditor)
    write_section(os, w,
                  [&](util::StateWriter& sw) { sinks.auditor->save_state(sw); });
  if (sinks.health)
    write_section(os, w,
                  [&](util::StateWriter& sw) { sinks.health->save_state(sw); });
  if (sinks.forensics)
    write_section(os, w, [&](util::StateWriter& sw) {
      sinks.forensics->save_state(sw);
    });
  os.flush();
  if (!os) throw std::runtime_error("write_snapshot: flush failed");
}

SnapshotMeta read_snapshot_meta(std::istream& is, const SsdConfig& config) {
  util::StateReader r(is);
  char magic[sizeof kSnapshotMagic];
  r.raw(magic, sizeof magic);
  if (std::memcmp(magic, kSnapshotMagic, sizeof magic) != 0)
    throw std::runtime_error("read_snapshot_meta: not an ESP snapshot file");
  const std::uint32_t version = r.u32();
  if (version != kSnapshotFormatVersion)
    throw std::runtime_error(
        "read_snapshot_meta: snapshot format version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(kSnapshotFormatVersion));
  const std::uint64_t fp = r.u64();
  const std::uint64_t want = config_fingerprint(config);
  if (fp != want)
    throw std::runtime_error(
        "read_snapshot_meta: config fingerprint mismatch (snapshot " +
        std::to_string(fp) + ", current config " + std::to_string(want) +
        ") -- a snapshot only restores into the exact SsdConfig that "
        "produced it");
  return read_meta(r);
}

void read_snapshot_state(std::istream& is, const SnapshotMeta& meta, Ssd& ssd,
                         const SnapshotSinks& sinks) {
  util::StateReader r(is);
  ssd.load_state(r);
  if (meta.has_telemetry)
    read_section(is, r, "TELM", sinks.telemetry != nullptr,
                 [&](util::StateReader& sr) { sinks.telemetry->load_state(sr); });
  if (meta.has_journal)
    read_section(is, r, "JRNL", sinks.journal != nullptr,
                 [&](util::StateReader& sr) { sinks.journal->load_state(sr); });
  if (meta.has_auditor)
    read_section(is, r, "AUDT", sinks.auditor != nullptr,
                 [&](util::StateReader& sr) { sinks.auditor->load_state(sr); });
  if (meta.has_health)
    read_section(is, r, "HLTH", sinks.health != nullptr,
                 [&](util::StateReader& sr) { sinks.health->load_state(sr); });
  if (meta.has_forensics)
    read_section(is, r, "FRNS", sinks.forensics != nullptr,
                 [&](util::StateReader& sr) { sinks.forensics->load_state(sr); });
}

void save_snapshot_file(const std::string& path, const SnapshotMeta& meta,
                        const Ssd& ssd, const SnapshotSinks& sinks) {
  std::ofstream os(path, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!os)
    throw std::runtime_error("save_snapshot_file: cannot open " + path);
  write_snapshot(os, meta, ssd, sinks);
}

}  // namespace esp::core
