// Top-level facade: one configured SSD = NAND device + FTL + driver.
//
// This is the public entry point a downstream user starts from:
//
//   esp::core::SsdConfig cfg;                 // paper-default 16-GiB SSD
//   cfg.ftl = esp::core::FtlKind::kSub;       // ESP-aware subFTL
//   esp::core::Ssd ssd(cfg);
//   ssd.driver().submit({...});               // or run a whole workload
//
// See examples/quickstart.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ftl/ftl.h"
#include "nand/device.h"
#include "nand/geometry.h"
#include "nand/retention_model.h"
#include "nand/timing.h"
#include "sim/driver.h"
#include "telemetry/telemetry.h"
#include "util/serialize.h"

namespace esp::core {

enum class FtlKind {
  kCgm,        ///< coarse-grained baseline (RMW for small writes)
  kFgm,        ///< fine-grained baseline (merge buffer, padded pages)
  kSub,        ///< the paper's ESP-aware subFTL
  kSectorLog,  ///< related-work hybrid (log region, no ESP) [Jin et al.]
};

std::string ftl_kind_name(FtlKind kind);

struct SsdConfig {
  nand::Geometry geometry;  ///< default: 8ch x 4chip, 16-KB pages, 16 GiB
  nand::TimingSpec timing;
  nand::RetentionModelParams retention;
  FtlKind ftl = FtlKind::kSub;

  /// Host-visible capacity as a fraction of raw flash; the rest is
  /// over-provisioning. 0.80 is the largest fraction subFTL can guarantee
  /// with a 20% subpage region (worst case: all data cold in the full-page
  /// region). The paper's 10-GB fill on the 16-GB device corresponds to
  /// preconditioning 62.5% of physical = 78% of this logical space.
  double logical_fraction = 0.80;

  // subFTL knobs (ignored by the baselines).
  double subpage_region_fraction = 0.20;
  SimTime retention_evict_age = 15 * sim_time::kDay;
  SimTime retention_scan_interval = 1 * sim_time::kDay;

  // Shared FTL knobs.
  std::size_t buffer_sectors = 512;
  std::size_t gc_reserve_blocks = 8;

  /// Host queue depth (outstanding requests). High enough by default that
  /// throughput is flash-bound, as on the paper's multithreaded platform.
  std::uint32_t queue_depth = 64;

  /// Static wear leveling: every wl_check_interval host writes the FTL
  /// relocates its coldest sealed block if it lags the device's most-worn
  /// block by more than wl_pe_threshold erase cycles (0 interval disables).
  std::uint32_t wl_pe_threshold = 64;
  std::uint32_t wl_check_interval = 1024;

  /// GC page moves in the coarse-mapped pools use NAND copy-back when the
  /// destination stays on the source chip (saves both channel transfers).
  bool use_copyback = false;

  /// Debug/differential mode: run FTL maintenance paths (retention scan,
  /// static wear leveling, idle-block release) with the original O(device)
  /// linear scans instead of the incrementally maintained indices.
  /// Decisions are bit-identical either way -- pinned by the journal
  /// byte-compare in tests and CI (see docs/PERFORMANCE.md).
  bool reference_scan_maintenance = false;

  std::uint64_t logical_sectors() const;

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

class Ssd {
 public:
  explicit Ssd(const SsdConfig& config);
  ~Ssd();

  // Non-copyable, non-movable: driver/ftl hold references into the device.
  Ssd(const Ssd&) = delete;
  Ssd& operator=(const Ssd&) = delete;

  const SsdConfig& config() const { return config_; }
  nand::NandDevice& device() { return *device_; }
  const nand::NandDevice& device() const { return *device_; }
  ftl::Ftl& ftl() { return *ftl_; }
  const ftl::Ftl& ftl() const { return *ftl_; }
  sim::Driver& driver() { return *driver_; }

  std::uint64_t logical_sectors() const { return ftl_->logical_sectors(); }

  /// Sequentially fills `fraction` of the logical space with full-page
  /// writes and flushes -- the paper's preconditioning step (10 GB onto the
  /// 16-GB device) that puts the FTL into steady state before measuring.
  void precondition(double fraction = 1.0);

  /// Wires the telemetry facade through every layer: the device and FTL
  /// bind their counters/gauges and start recording op events, the driver
  /// opens request spans and runs the time-series sampler. Pass nullptr to
  /// detach. The facade must outlive the Ssd OR outlive it gracefully: the
  /// destructor materializes the registry, so metric exports remain valid
  /// after this Ssd is gone.
  ///
  /// With `resume` set, the driver attaches WITHOUT re-baselining its
  /// sampling cursors and without the epoch-0 health snapshot -- used when
  /// restoring from a snapshot, where the cursors arrive via load_state.
  void attach_telemetry(telemetry::Telemetry* telemetry, bool resume = false);

  /// Snapshot support (core/snapshot.h): archives device -> FTL -> driver
  /// under one "SSD0" section. Restore order: construct from the identical
  /// SsdConfig, attach_telemetry(tel, /*resume=*/true) if telemetry is
  /// wanted, then load_state. Must be called between host requests.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  SsdConfig config_;
  std::unique_ptr<nand::NandDevice> device_;
  std::unique_ptr<ftl::Ftl> ftl_;
  std::unique_ptr<sim::Driver> driver_;
  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace esp::core
