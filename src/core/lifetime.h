// Device-lifetime fast-forward: epoch-compressed aging to rated endurance.
//
// A full-fidelity wear-out simulation at production geometry needs billions
// of host requests -- hours of wall clock per FTL. This runner alternates
//
//   * full-fidelity MEASUREMENT WINDOWS: W host requests driven through the
//     unmodified simulator (every latency sample, GC decision and retention
//     scan is real), and
//   * compressed AGING EPOCHS: the per-pool P/E accrual rates measured in
//     the preceding window are scaled up and applied analytically --
//     apply_synthetic_wear() spread uniformly within each pool, plus a
//     retention-clock advance -- as if the window's traffic had repeated
//     S times.
//
// Scaling per POOL preserves the wear asymmetry the lifetime claim is
// about (the ESP subpage pool ages faster than the full-page pool) while
// spreading each pool's budget evenly over its blocks -- the long-horizon
// outcome GC victim rotation and wear leveling produce, which a sparse
// one-window erase sample scaled per block would grossly overshoot.
// Cycles measured on the free pool (blocks erased late in the window,
// still on the free list at snapshot time) are folded into the whole
// device: free is a waypoint between pools, not a residence. The
// FTL's own wear leveler still sees and reacts to the accrued cross-pool
// imbalance in the next window, so the feedback loop between wear and
// placement stays closed. See docs/LIFETIME.md for the model and its
// validation against full-fidelity references.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ssd.h"
#include "workload/synthetic.h"

namespace esp::core {

struct LifetimeSpec {
  SsdConfig ssd;
  /// Workload template. Each measurement window derives its own seed from
  /// `workload.seed` (stable_cell_seed over "lifetime/window/<i>"), so the
  /// wear-out replays a fresh but reproducible stream per window;
  /// request_count is ignored (window_requests governs).
  workload::SyntheticParams workload;
  double precondition_fraction = 0.78;
  /// Unmeasured requests once, before window 0 (GC steady state).
  std::uint64_t warmup_requests = 0;
  /// Host requests per full-fidelity measurement window.
  std::uint64_t window_requests = 20000;

  /// false = full-fidelity reference: windows only, no aging epochs. The
  /// speedup and validation baselines in BENCH_lifetime.json run this way.
  bool fast_forward = true;
  /// Mean device P/E cycles accrued per aging epoch. The epoch scale S is
  /// chosen per epoch so the window's per-block deltas sum to
  /// pe_step * total_blocks. 0 falls back to the fixed `compression`.
  double pe_step = 0.0;
  /// Fixed epoch scale when pe_step == 0: every block receives
  /// compression x its measured window delta (epoch represents the
  /// window's traffic repeated `compression` more times).
  double compression = 49.0;
  /// Stop once mean P/E over all blocks reaches this. 0 = the retention
  /// model's rated_pe_cycles (the device's rated endurance).
  double target_mean_pe = 0.0;
  /// Hard bound on measurement windows run by THIS call (0 = unlimited);
  /// also the knob the reference-rate measurement uses to stay bounded.
  std::uint32_t max_windows = 0;
  /// Cap on one epoch's retention-clock advance. The analytic advance is
  /// S x the window's simulated span; the cap keeps a single jump below
  /// retention-scan cadences so no FTL's scan-before-expiry contract is
  /// broken by time passing "instantly".
  SimTime epoch_advance_cap_us = 4 * sim_time::kHour;
  bool verify = true;

  /// Resume a previous wear-out from its checkpoint (snapshot_out of an
  /// earlier call; SsdConfig fingerprint-checked). Precondition + warmup
  /// are skipped and window numbering continues where it left off.
  std::string snapshot_in;
  /// Write a checkpoint of the aged device after the last window -- the
  /// shared anchor end-of-life measurement legs restore (see
  /// ExperimentSpec::snapshot_in), and the resume point for snapshot_in.
  std::string snapshot_out;
};

/// One full-fidelity measurement window plus the aging epoch that followed
/// it: a point on the wear-out trajectory.
struct LifetimeWindow {
  std::uint32_t index = 0;         ///< global window number (resume-aware)
  double mean_pe_start = 0.0;      ///< device mean P/E entering the window
  double max_pe_start = 0.0;
  double waf = 1.0;                ///< window-local write amplification
  double iops = 0.0;
  double host_mb_per_sec = 0.0;
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  double response_p99_us = 0.0;
  std::uint64_t erases = 0;        ///< real erases inside the window
  std::uint64_t gc_invocations = 0;
  std::uint64_t retention_evictions = 0;
  std::uint64_t host_write_bytes = 0;
  /// Aging epoch that followed this window (all zero on the final window
  /// and in full-fidelity mode).
  std::uint64_t synthetic_cycles = 0;  ///< block-cycles applied analytically
  double epoch_scale = 0.0;            ///< S: represented window repetitions
  double sim_hours_advanced = 0.0;     ///< retention-clock jump, sim hours
};

struct LifetimeResult {
  std::string ftl_name;
  std::vector<LifetimeWindow> windows;
  double start_mean_pe = 0.0;
  double final_mean_pe = 0.0;
  double final_max_pe = 0.0;
  double target_mean_pe = 0.0;
  bool reached_target = false;
  /// Wall clock over the window/epoch loop (not preconditioning/warmup).
  double wall_seconds = 0.0;
  /// Host terabytes the trajectory REPRESENTS: each window's host write
  /// bytes x (1 + its epoch scale). The TBW-to-wear-out figure.
  double host_tb_written = 0.0;
  std::uint64_t real_erases = 0;
  std::uint64_t synthetic_cycles = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t io_errors = 0;
};

/// Runs the wear-out loop to target_mean_pe (or max_windows). Throws
/// std::runtime_error on snapshot/config mismatches and when fast-forward
/// stalls (three consecutive windows without a single erase).
LifetimeResult run_lifetime(const LifetimeSpec& spec);

}  // namespace esp::core
