// Experiment runner: precondition + workload + metrics, one call.
//
// All bench binaries are thin wrappers around this: build an SsdConfig per
// FTL, run the same request stream through each, compare RunResults.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ssd.h"
#include "sim/qos.h"
#include "sim/tenant_mux.h"
#include "telemetry/forensics.h"
#include "workload/synthetic.h"

namespace esp::core {

struct RunResult {
  std::string ftl_name;
  double iops = 0.0;
  /// Host data rate (reads + writes) over the measured window, MB/s. The
  /// paper's "normalized IOPS" compares runs of equal host data volume, so
  /// this is the quantity its Figs. 2(a)/8(a) normalize.
  double host_mb_per_sec = 0.0;
  double overall_waf = 1.0;
  double small_request_waf = 1.0;
  std::uint64_t gc_invocations = 0;
  std::uint64_t erases = 0;  ///< during the measured run (lifetime proxy)
  std::uint64_t rmw_ops = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t mapping_bytes = 0;
  /// Host wall-clock seconds spent simulating the measured window (not
  /// preconditioning or warmup). NOT deterministic -- feeds the replay
  /// bench's host-ops/sec and maintenance-share numbers only; determinism
  /// checks must never compare it.
  double measure_wall_seconds = 0.0;
  /// CPU seconds of the calling thread over the same window. Unlike wall
  /// time this excludes involuntary descheduling, so overhead *ratios*
  /// between two cells (e.g. the replay bench's health gate) stay readable
  /// on a loaded machine. 0 when the platform lacks a thread CPU clock.
  double measure_cpu_seconds = 0.0;
  /// Trace-ring evictions during the run (0 when no telemetry attached).
  std::uint64_t trace_dropped = 0;
  /// Journal lines written / admission-capped (0 when no journal).
  std::uint64_t journal_events = 0;
  std::uint64_t journal_truncated = 0;
  /// Health-stream epochs / total lines written (0 when no health stream).
  std::uint64_t health_epochs = 0;
  std::uint64_t health_lines = 0;
  /// Forensics stream: requests decomposed / exemplar lines written /
  /// requests that produced no exemplar line (the stream's admission-cap
  /// analogue of journal_truncated). 0 when no forensics stream.
  std::uint64_t forensics_requests = 0;
  std::uint64_t forensics_exemplars = 0;
  std::uint64_t forensics_truncated = 0;
  /// Per-tenant phase-blame summaries (empty without a forensics stream;
  /// one entry for tenant 0 on single-tenant runs). Sharded runs keep the
  /// per-shard summaries inside shard_results.
  std::vector<telemetry::TenantBlame> tenant_blame;
  /// Device busy-time utilization over the measured window: per-chip
  /// (array + transfer occupancy) and per-channel (transfer occupancy)
  /// busy time divided by elapsed simulated time. Shows shard balance and
  /// device idle headroom without a journal pass. Sharded runs aggregate
  /// across every shard's chips/channels in shard-index order.
  std::uint32_t chips = 0;
  std::uint32_t channels = 0;
  double chip_util_min = 0.0;
  double chip_util_mean = 0.0;
  double chip_util_max = 0.0;
  double channel_util_min = 0.0;
  double channel_util_mean = 0.0;
  double channel_util_max = 0.0;
  /// Host-side steady-clock stamps (seconds since the clock's epoch) of
  /// the measured window; the shard orchestrator derives the merged
  /// fork-to-join measure wall from them. Non-deterministic -- never
  /// compared by determinism checks.
  double measure_wall_start_s = 0.0;
  double measure_wall_end_s = 0.0;
  sim::RunMetrics raw;
  /// Per-tenant metrics for the measured window (empty on single-tenant
  /// runs). Order matches ExperimentSpec::tenants.
  std::vector<sim::TenantMetrics> tenants;
  /// Per-shard standalone results of a sharded run, in shard-index order
  /// (empty when shards == 1). The merged top-level counters equal the
  /// sums over this vector -- the shard-invariance reconciliation tests
  /// pin that.
  std::vector<RunResult> shard_results;
};

/// One tenant of a multi-tenant experiment: its own workload stream over
/// its own namespace slice, plus its QoS parameters.
struct TenantSpec {
  std::string name;
  /// Tenant-local workload; sector addresses are namespace-relative.
  /// footprint_sectors == 0 defaults to the preconditioned share of the
  /// tenant's slice; larger values are clamped to the slice.
  workload::SyntheticParams workload;
  double weight = 1.0;            ///< weighted-share allocation
  std::uint32_t queue_depth = 8;  ///< per-tenant in-flight window
};

struct ExperimentSpec {
  SsdConfig ssd;
  workload::SyntheticParams workload;
  /// Multi-tenant mode: when non-empty, `workload` above is ignored and
  /// each tenant drives its own stream over a page-aligned equal slice of
  /// the logical space, scheduled by `qos` (see sim/tenant_mux.h).
  /// warmup_requests and the run budget count requests across all tenants.
  std::vector<TenantSpec> tenants;
  /// Scheduling policy between tenants (multi-tenant mode only).
  sim::QosPolicy qos = sim::QosPolicy::kFifo;
  /// Fraction of logical space filled before measuring. The default
  /// reproduces the paper's methodology: 10 GB of data on the 16-GB
  /// device: 62.5% of physical = 0.78 of the 80% logical space.
  double precondition_fraction = 0.78;
  /// Requests run unmeasured after preconditioning so GC reaches steady
  /// state before the measured window starts.
  std::uint64_t warmup_requests = 0;
  bool verify = true;
  /// Optional telemetry facade, attached after preconditioning so metrics,
  /// traces and time-series samples cover warmup + the measured window but
  /// not the sequential fill. Must outlive the call.
  telemetry::Telemetry* telemetry = nullptr;
  /// When non-empty, streams a causal-attribution journal (JSONL) of every
  /// flash op, cause scope and block-lifecycle event to this path. Works
  /// with or without an external `telemetry` facade: if none is supplied,
  /// the runner owns a private one for the duration of the call.
  std::string journal_path;
  /// Journal admission cap (0 = unlimited); excess events are counted as
  /// truncated rather than written.
  std::uint64_t journal_max_events = 0;
  /// Runs the online invariant auditor over the post-precondition window;
  /// violations throw std::logic_error with the offending cause chain.
  bool audit = false;
  /// When non-empty, streams a device-health snapshot stream (JSONL) to
  /// this path: per-block delta rows plus a SMART-style attribute line per
  /// epoch. Shares the private-facade fallback with journal_path.
  std::string health_path;
  /// Health epoch period in simulated microseconds; 0 = endpoint epochs
  /// only (attach baseline + end of each run).
  SimTime health_interval_us = 0.0;
  /// Rated P/E endurance for the health stream's media-wear % and
  /// exhaustion-horizon attributes.
  std::uint32_t health_rated_pe = 3000;
  /// When non-empty, streams tail-latency forensics (JSONL) to this path:
  /// per-window p99/p999 blame rows plus slowest-N exemplars with full
  /// phase breakdowns (see telemetry/forensics.h). Shares the
  /// private-facade fallback with journal_path; with `audit` set, a
  /// request whose phase fold fails to reconcile with its response time
  /// throws.
  std::string forensics_path;
  /// Slowest-N exemplars retained by the forensics stream.
  std::uint32_t forensics_top = 16;

  // --- Intra-cell sharding (core/shard.h; docs/PERFORMANCE.md) ----------
  /// Shards > 1 partitions this cell into `shards` shared-nothing
  /// sub-simulations -- each owns a channel group of the device and a
  /// page-striped slice of the LBA space -- run in parallel and merged
  /// deterministically. Requires single-tenant mode and a channel count
  /// divisible by `shards`. 1 = the unsharded path, bit-identical to
  /// before this knob existed.
  unsigned shards = 1;
  /// Worker threads for the shard tasks (0 = hardware concurrency; the
  /// pool never spawns more workers than shards). Any value yields
  /// bit-identical merged results.
  unsigned shard_jobs = 0;
  /// LBA-routing stripe unit in full pages. Part of the sharded run's
  /// identity: changing it changes which shard serves which LBA.
  std::uint32_t shard_stripe_pages = 64;
  /// Stream override: when set, replaces the synthetic generator (single-
  /// tenant only; `workload` then only contributes its seed to headers).
  /// warmup_requests counts against this stream. The shard orchestrator
  /// feeds each shard its pre-split slice through this; public so tests
  /// can re-run one shard standalone and byte-compare its journal.
  workload::RequestSource* stream = nullptr;
  /// Shard identity stamped into journal/health headers ((0, 1) =
  /// unsharded, headers keep their legacy bytes). Set by the shard
  /// orchestrator on each leaf shard spec.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;

  // --- Snapshot / restore (core/snapshot.h; docs/LIFETIME.md) -----------
  /// Restore path: when non-empty the run starts from this snapshot
  /// instead of preconditioning + warming up (single-tenant, unsharded
  /// only). The SsdConfig must be identical to the saving run's
  /// (fingerprint-checked). When `workload.seed` matches the snapshot's,
  /// the request stream resumes exactly where the saved run left off (the
  /// consumed prefix is replayed and discarded) and any journal/health/
  /// forensics sidecars at their spec'd paths are truncated to the
  /// checkpoint offsets and appended to in resume mode -- the finished
  /// files are byte-identical to an uninterrupted run's. A different seed
  /// starts a fresh stream over the restored device: the lifetime
  /// projection fans independent measurement legs out of one aged
  /// snapshot this way.
  std::string snapshot_in;
  /// Checkpoint path: when non-empty a snapshot is written during the run
  /// (single-tenant, unsharded only).
  std::string snapshot_out;
  /// Measured requests completed before the checkpoint is written. 0
  /// takes the checkpoint at the start of the measured window, right
  /// after warmup -- the shared aged-state anchor lifetime legs restore.
  /// Non-zero splits the measured run into two legs around the
  /// checkpoint; the merged RunResult is identical in every deterministic
  /// field to the unsplit run's.
  std::uint64_t snapshot_after_requests = 0;
};

/// Builds the SSD, preconditions it, runs the workload, returns metrics.
RunResult run_experiment(const ExperimentSpec& spec);

/// CPU seconds consumed by the calling thread (0.0 where unsupported).
/// The clock behind RunResult::measure_cpu_seconds, exported for benches
/// that time sub-run work (e.g. the replay bench's paired health duel).
double thread_cpu_seconds();

}  // namespace esp::core
