#include "core/shard.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/parallel_runner.h"
#include "telemetry/telemetry.h"
#include "workload/splitter.h"

namespace esp::core {
namespace {

/// Appends every shard's sidecar stream to `dest` in shard-index order.
/// The sidecars stay on disk: the invariance gates byte-compare them
/// against standalone re-runs.
void concat_sidecars(const std::string& dest,
                     const std::vector<std::string>& sidecars) {
  std::ofstream os(dest, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!os)
    throw std::runtime_error("run_sharded_experiment: cannot open " + dest);
  for (const std::string& path : sidecars) {
    std::ifstream is(path, std::ios::in | std::ios::binary);
    if (!is)
      throw std::runtime_error("run_sharded_experiment: cannot read " + path);
    os << is.rdbuf();
  }
}

}  // namespace

ShardPlan make_shard_plan(const ExperimentSpec& spec) {
  if (spec.shards < 2)
    throw std::invalid_argument("make_shard_plan: shards must be >= 2");
  if (!spec.tenants.empty())
    throw std::invalid_argument(
        "make_shard_plan: sharding is single-tenant only");
  if (spec.stream != nullptr)
    throw std::invalid_argument(
        "make_shard_plan: sharding generates its own split streams; "
        "stream override is for leaf shard specs");
  if (spec.ssd.geometry.channels % spec.shards != 0)
    throw std::invalid_argument(
        "make_shard_plan: shards must divide the channel count (each "
        "shard owns a whole channel group)");

  ShardPlan plan;
  plan.shards = spec.shards;
  plan.stripe_pages = spec.shard_stripe_pages;
  const std::uint32_t subs = spec.ssd.geometry.subpages_per_page;
  const std::uint64_t shard_capacity =
      shard_ssd_config(spec.ssd, spec.shards).logical_sectors();
  const workload::ShardSplitter splitter(plan.shards, plan.stripe_pages, subs,
                                         shard_capacity);
  plan.stripe_sectors = splitter.stripe_sectors();
  plan.shard_sectors = splitter.shard_sectors();
  plan.usable_sectors = splitter.usable_sectors();
  return plan;
}

SsdConfig shard_ssd_config(const SsdConfig& full, std::uint32_t shards) {
  if (shards == 0 || full.geometry.channels % shards != 0)
    throw std::invalid_argument(
        "shard_ssd_config: shards must divide the channel count");
  SsdConfig cfg = full;
  cfg.geometry.channels /= shards;
  // Aggregate-preserving split of the host/FTL resources. Floors keep
  // degenerate divisions functional (a 1-deep window, a one-page buffer,
  // a 2-block GC reserve).
  cfg.queue_depth = std::max(1u, full.queue_depth / shards);
  cfg.buffer_sectors =
      std::max<std::size_t>(full.geometry.subpages_per_page,
                            full.buffer_sectors / shards);
  cfg.gc_reserve_blocks =
      std::max<std::size_t>(2, full.gc_reserve_blocks / shards);
  // The wear-leveling check counts HOST WRITES, and a shard sees ~1/N of
  // them: divide the interval so cadence relative to global traffic
  // holds. Sim-time cadences (retention scans) stay untouched -- the
  // splitter's think-time conservation keeps shard clocks on the global
  // arrival timeline.
  if (full.wl_check_interval > 0)
    cfg.wl_check_interval = std::max(1u, full.wl_check_interval / shards);
  return cfg;
}

std::uint64_t shard_seed(const ExperimentSpec& spec, std::uint32_t index) {
  return stable_cell_seed("shard/" + std::to_string(index),
                          spec.workload.seed);
}

std::string shard_sidecar_path(const std::string& path, std::uint32_t index) {
  const std::string tag = ".shard" + std::to_string(index);
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return path + tag;
  return path.substr(0, dot) + tag + path.substr(dot);
}

workload::SyntheticParams sharded_workload_params(const ExperimentSpec& spec,
                                                  const ShardPlan& plan) {
  workload::SyntheticParams params = spec.workload;
  const std::uint32_t subs = spec.ssd.geometry.subpages_per_page;
  if (params.footprint_sectors == 0) {
    params.footprint_sectors =
        static_cast<std::uint64_t>(
            spec.precondition_fraction *
            static_cast<double>(plan.usable_sectors)) /
        subs * subs;
  }
  // Every global LBA must land inside its shard's addressed slice.
  params.footprint_sectors =
      std::min(params.footprint_sectors, plan.usable_sectors);
  return params;
}

ExperimentSpec make_shard_spec(const ExperimentSpec& spec,
                               const ShardPlan& plan, std::uint32_t index) {
  ExperimentSpec leaf = spec;
  leaf.shards = 1;
  leaf.shard_jobs = 0;
  leaf.stream = nullptr;     // the caller attaches the shard's slice
  leaf.telemetry = nullptr;  // ditto (per-shard facades, merged at join)
  leaf.ssd = shard_ssd_config(spec.ssd, plan.shards);
  leaf.workload.seed = shard_seed(spec, index);
  leaf.workload.footprint_sectors = plan.shard_sectors;
  leaf.shard_index = index;
  leaf.shard_count = plan.shards;
  if (!spec.journal_path.empty())
    leaf.journal_path = shard_sidecar_path(spec.journal_path, index);
  if (!spec.health_path.empty())
    leaf.health_path = shard_sidecar_path(spec.health_path, index);
  if (!spec.forensics_path.empty())
    leaf.forensics_path = shard_sidecar_path(spec.forensics_path, index);
  return leaf;
}

RunResult run_sharded_experiment(const ExperimentSpec& spec) {
  const ShardPlan plan = make_shard_plan(spec);
  const std::uint32_t n = plan.shards;
  const auto& geo = spec.ssd.geometry;

  // One serial pass generates the global stream and deals it across
  // shards -- routing depends only on the splitter's mapping, never on
  // the schedule the shards will later run under.
  const workload::SyntheticParams params = sharded_workload_params(spec, plan);
  workload::SyntheticWorkload generator(params);
  const workload::ShardSplitter splitter(n, plan.stripe_pages,
                                         geo.subpages_per_page,
                                         plan.shard_sectors);
  std::vector<workload::ShardStream> streams = workload::partition_stream(
      generator, splitter, /*max_requests=*/0, spec.warmup_requests);

  std::vector<ExperimentSpec> leaves;
  std::vector<workload::VectorSource> sources;
  std::vector<std::unique_ptr<telemetry::Telemetry>> shard_tels(n);
  leaves.reserve(n);
  sources.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    leaves.push_back(make_shard_spec(spec, plan, i));
    leaves.back().warmup_requests = streams[i].warmup_requests;
    leaves.back().workload.request_count = streams[i].requests.size();
    sources.emplace_back(std::move(streams[i].requests));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    leaves[i].stream = &sources[i];
    if (spec.telemetry != nullptr) {
      // Per-shard facades, reconciled into the caller's registry at join.
      // The small trace ring bounds memory; op-detail histograms stay on
      // so per-op metric sets merge like the parallel runner's cells do.
      telemetry::TelemetryConfig cfg;
      cfg.trace_capacity = 256;
      shard_tels[i] = std::make_unique<telemetry::Telemetry>(cfg);
      leaves[i].telemetry = shard_tels[i].get();
    }
  }

  // Fan out on the work-stealing pool. Each task writes only its own
  // pre-allocated slot; the first exception (if any) rethrows after all
  // workers drain.
  std::vector<RunResult> shard_results(n);
  run_tasks(spec.shard_jobs, n,
            [&](std::size_t i) { shard_results[i] = run_experiment(leaves[i]); });

  // ---- join: everything merges in shard-index order ---------------------
  if (spec.telemetry != nullptr)
    for (std::uint32_t i = 0; i < n; ++i) {
      shard_tels[i]->registry().materialize();
      spec.telemetry->registry().merge_from(shard_tels[i]->registry());
    }
  if (!spec.journal_path.empty()) {
    std::vector<std::string> sidecars;
    for (const ExperimentSpec& leaf : leaves)
      sidecars.push_back(leaf.journal_path);
    concat_sidecars(spec.journal_path, sidecars);
  }
  if (!spec.health_path.empty()) {
    std::vector<std::string> sidecars;
    for (const ExperimentSpec& leaf : leaves)
      sidecars.push_back(leaf.health_path);
    concat_sidecars(spec.health_path, sidecars);
  }
  if (!spec.forensics_path.empty()) {
    std::vector<std::string> sidecars;
    for (const ExperimentSpec& leaf : leaves)
      sidecars.push_back(leaf.forensics_path);
    concat_sidecars(spec.forensics_path, sidecars);
  }

  RunResult merged;
  merged.ftl_name = shard_results.front().ftl_name;
  sim::RunMetrics& m = merged.raw;
  ftl::FtlStats stats;
  SimTime min_start_us = std::numeric_limits<double>::infinity();
  SimTime max_elapsed_us = 0.0;
  double min_wall_start = std::numeric_limits<double>::infinity();
  double max_wall_end = 0.0;
  double chip_mean_weighted = 0.0;
  double channel_mean_weighted = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const RunResult& r = shard_results[i];
    m.requests += r.raw.requests;
    m.write_requests += r.raw.write_requests;
    m.read_requests += r.raw.read_requests;
    m.verify_failures += r.raw.verify_failures;
    m.io_errors += r.raw.io_errors;
    m.latency_hist.merge(r.raw.latency_hist);
    m.response_hist.merge(r.raw.response_hist);
    m.device_erases += r.raw.device_erases;
    m.erases_during_run += r.raw.erases_during_run;
    stats = ftl::stats_sum(stats, r.raw.ftl_stats);
    min_start_us = std::min(min_start_us, r.raw.start_us);
    max_elapsed_us = std::max(max_elapsed_us, r.raw.elapsed_us());
    merged.gc_invocations += r.gc_invocations;
    merged.erases += r.erases;
    merged.rmw_ops += r.rmw_ops;
    merged.verify_failures += r.verify_failures;
    merged.mapping_bytes += r.mapping_bytes;
    merged.trace_dropped += r.trace_dropped;
    merged.journal_events += r.journal_events;
    merged.journal_truncated += r.journal_truncated;
    merged.health_epochs += r.health_epochs;
    merged.health_lines += r.health_lines;
    merged.forensics_requests += r.forensics_requests;
    merged.forensics_exemplars += r.forensics_exemplars;
    merged.forensics_truncated += r.forensics_truncated;
    merged.measure_cpu_seconds += r.measure_cpu_seconds;
    min_wall_start = std::min(min_wall_start, r.measure_wall_start_s);
    max_wall_end = std::max(max_wall_end, r.measure_wall_end_s);
    chip_mean_weighted += r.chip_util_mean * r.chips;
    channel_mean_weighted += r.channel_util_mean * r.channels;
    merged.chip_util_min =
        i == 0 ? r.chip_util_min
               : std::min(merged.chip_util_min, r.chip_util_min);
    merged.chip_util_max = std::max(merged.chip_util_max, r.chip_util_max);
    merged.channel_util_min =
        i == 0 ? r.channel_util_min
               : std::min(merged.channel_util_min, r.channel_util_min);
    merged.channel_util_max =
        std::max(merged.channel_util_max, r.channel_util_max);
    merged.chips += r.chips;
    merged.channels += r.channels;
  }
  m.ftl_stats = stats;
  // The merged window models N channel groups running concurrently: it
  // spans the slowest shard's measured window.
  m.start_us = min_start_us;
  m.end_us = min_start_us + max_elapsed_us;
  m.latency_p50_us = m.latency_hist.percentile(0.50);
  m.latency_p99_us = m.latency_hist.percentile(0.99);
  m.latency_p999_us = m.latency_hist.percentile(0.999);
  m.response_p50_us = m.response_hist.percentile(0.50);
  m.response_p99_us = m.response_hist.percentile(0.99);
  m.response_p999_us = m.response_hist.percentile(0.999);

  merged.iops = m.iops();
  const double secs = sim_time::to_seconds(max_elapsed_us);
  const double host_bytes = static_cast<double>(
      (stats.host_write_sectors + stats.host_read_sectors) *
      geo.subpage_bytes());
  merged.host_mb_per_sec =
      secs > 0.0 ? host_bytes / (1024.0 * 1024.0) / secs : 0.0;
  // Merged WAFs recompute from the SUMMED window counters, so they are by
  // construction the sum-of-shards reconciliation the invariance tests pin.
  merged.overall_waf = stats.overall_waf(geo.page_bytes, geo.subpage_bytes());
  merged.small_request_waf = stats.avg_small_request_waf();
  // Fork-to-join wall of the measured phase: first shard entering its
  // window to last shard leaving its own. With workers >= shards this is
  // the parallel measure wall; serialized it degrades honestly toward the
  // sum (plus any sibling setup interleaved between windows).
  merged.measure_wall_seconds = max_wall_end - min_wall_start;
  merged.measure_wall_start_s = min_wall_start;
  merged.measure_wall_end_s = max_wall_end;
  if (merged.chips > 0) chip_mean_weighted /= merged.chips;
  if (merged.channels > 0) channel_mean_weighted /= merged.channels;
  merged.chip_util_mean = chip_mean_weighted;
  merged.channel_util_mean = channel_mean_weighted;
  merged.shard_results = std::move(shard_results);
  return merged;
}

}  // namespace esp::core
