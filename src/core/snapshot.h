// Whole-simulator snapshot/restore: the versioned on-disk format that
// composes every layer's save_state/load_state (util/serialize.h) into one
// deterministic checkpoint, and the device-lifetime fast-forward built on
// top of it (docs/LIFETIME.md).
//
// A snapshot captures the complete simulation state -- NAND block/page/
// wear/retention state, FTL mapping + pool + buffer + RNG state, driver
// clocks and shadow maps, and (optionally) the telemetry facade plus every
// attached streaming sink -- such that a run restored from the snapshot
// continues BIT-IDENTICALLY to the uninterrupted run: same request
// sequence, same flash ops, same journal/health/forensics bytes.
//
// File layout (little-endian, see docs/LIFETIME.md for the contract):
//
//   magic "ESPSNAP1" | u32 format version | u64 config fingerprint
//   META  seed, request cursors, sidecar byte offsets, section flags
//   SSD0  device -> ftl -> driver (always present)
//   then, per optional section flagged in META, in this order:
//   u64 length | TELM / JRNL / AUDT / HLTH / FRNS section body
//
// Optional sections carry a byte-length prefix so a reader without the
// matching consumer (e.g. restoring without an auditor) can skip them.
//
// Sidecar resume: streaming sinks (journal/health/forensics) write JSONL
// to plain files the snapshot cannot contain. META instead records each
// sidecar's byte offset at checkpoint time; restore truncates the sidecar
// to that offset and reopens it in append mode with the sink in resume
// mode (header suppressed), so the final file is byte-identical to an
// uninterrupted run's.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/ssd.h"

namespace esp::telemetry {
class Auditor;
class ForensicsCollector;
class HealthMonitor;
class Journal;
}  // namespace esp::telemetry

namespace esp::core {

/// First 8 bytes of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'E', 'S', 'P', 'S',
                                           'N', 'A', 'P', '1'};

/// Bumped on any incompatible change to the archive layout (including any
/// layer's save_state). Loads of a different version fail loudly.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// FNV-1a over a canonical field-by-field serialization of the SsdConfig.
/// Two configs with equal fingerprints build byte-identical simulators, so
/// a snapshot only restores into the exact configuration that produced it.
std::uint64_t config_fingerprint(const SsdConfig& config);

/// Everything the META section carries besides the config fingerprint.
struct SnapshotMeta {
  /// Offset value meaning "this sidecar was not attached at save time".
  static constexpr std::uint64_t kNoSidecar = ~0ull;

  std::uint64_t workload_seed = 0;    ///< seed of the saved run's stream
  /// Requests consumed from the request source before the checkpoint
  /// (warmup + measured). Restore replays and discards exactly this many
  /// generator calls when resuming the same stream.
  std::uint64_t source_consumed = 0;
  /// Measured (post-warmup) requests completed before the checkpoint.
  std::uint64_t measured_done = 0;
  double saved_at_us = 0.0;  ///< simulated clock at checkpoint

  std::uint64_t journal_offset = kNoSidecar;    ///< sidecar bytes written
  std::uint64_t health_offset = kNoSidecar;
  std::uint64_t forensics_offset = kNoSidecar;

  // Section presence flags (filled by write_snapshot from the sinks it is
  // handed; read back by read_snapshot_meta).
  bool has_telemetry = false;
  bool has_journal = false;
  bool has_auditor = false;
  bool has_health = false;
  bool has_forensics = false;
};

/// The optional snapshot participants beyond the Ssd itself. Null members
/// are simply not saved (their sections are omitted) / not restored (their
/// sections are skipped via the length prefix).
struct SnapshotSinks {
  telemetry::Telemetry* telemetry = nullptr;
  telemetry::Journal* journal = nullptr;
  telemetry::Auditor* auditor = nullptr;
  telemetry::HealthMonitor* health = nullptr;
  telemetry::ForensicsCollector* forensics = nullptr;
};

/// Writes a complete snapshot of `ssd` (+ the non-null sinks) to `os`.
/// `meta`'s has_* flags are overwritten from `sinks`; fill the cursors and
/// sidecar offsets before calling. Must be called between host requests
/// with no open cause scope (the telemetry facade enforces this).
void write_snapshot(std::ostream& os, const SnapshotMeta& meta,
                    const Ssd& ssd, const SnapshotSinks& sinks);

/// Validates magic/version/fingerprint against `config` and returns the
/// META section, leaving `is` positioned at the SSD0 section for
/// read_snapshot_state. Callers truncate sidecars to the returned offsets
/// BEFORE constructing resume-mode sinks. Throws std::runtime_error on a
/// foreign file, version drift or a config fingerprint mismatch.
SnapshotMeta read_snapshot_meta(std::istream& is, const SsdConfig& config);

/// Restores `ssd` and the non-null sinks from the stream positioned by
/// read_snapshot_meta. Restore order contract: the Ssd must already have
/// its telemetry attached in resume mode (attach_telemetry(tel, true))
/// and the sinks constructed in resume mode and set on the facade before
/// this call. Sections present in the file but without a consumer here
/// are skipped; a consumer whose section is absent is left freshly
/// constructed.
void read_snapshot_state(std::istream& is, const SnapshotMeta& meta, Ssd& ssd,
                         const SnapshotSinks& sinks);

/// Convenience wrappers over whole files. save_snapshot_file overwrites;
/// both throw std::runtime_error on I/O failure.
void save_snapshot_file(const std::string& path, const SnapshotMeta& meta,
                        const Ssd& ssd, const SnapshotSinks& sinks);

}  // namespace esp::core
