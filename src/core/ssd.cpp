#include "core/ssd.h"

#include <algorithm>
#include <stdexcept>

#include "ftl/cgm_ftl.h"
#include "ftl/fgm_ftl.h"
#include "ftl/sector_log_ftl.h"
#include "ftl/sub_ftl.h"
#include "util/logger.h"

namespace esp::core {

std::string ftl_kind_name(FtlKind kind) {
  switch (kind) {
    case FtlKind::kCgm: return "cgmFTL";
    case FtlKind::kFgm: return "fgmFTL";
    case FtlKind::kSub: return "subFTL";
    case FtlKind::kSectorLog: return "sectorLogFTL";
  }
  throw std::invalid_argument("ftl_kind_name: unknown kind");
}

std::uint64_t SsdConfig::logical_sectors() const {
  const auto physical = geometry.total_subpages();
  auto sectors = static_cast<std::uint64_t>(
      logical_fraction * static_cast<double>(physical));
  // Round down to a whole logical page so trims/preconditioning align.
  sectors -= sectors % geometry.subpages_per_page;
  return std::max<std::uint64_t>(sectors, geometry.subpages_per_page);
}

void SsdConfig::validate() const {
  geometry.validate();
  if (logical_fraction <= 0.0 || logical_fraction >= 1.0)
    throw std::invalid_argument(
        "SsdConfig: logical_fraction must be in (0, 1) -- flash needs "
        "over-provisioning headroom");
  if (subpage_region_fraction <= 0.0 || subpage_region_fraction >= 1.0)
    throw std::invalid_argument(
        "SsdConfig: subpage_region_fraction must be in (0, 1)");
}

Ssd::Ssd(const SsdConfig& config) : config_(config) {
  config_.validate();
  device_ = std::make_unique<nand::NandDevice>(
      config_.geometry, config_.timing,
      nand::RetentionModel(config_.retention));
  const std::uint64_t sectors = config_.logical_sectors();
  switch (config_.ftl) {
    case FtlKind::kCgm: {
      ftl::CgmFtl::Config c;
      c.logical_sectors = sectors;
      c.gc_reserve_blocks = config_.gc_reserve_blocks;
      c.wl_pe_threshold = config_.wl_pe_threshold;
      c.wl_check_interval = config_.wl_check_interval;
      c.use_copyback = config_.use_copyback;
      c.reference_scan_maintenance = config_.reference_scan_maintenance;
      ftl_ = std::make_unique<ftl::CgmFtl>(*device_, c);
      break;
    }
    case FtlKind::kFgm: {
      ftl::FgmFtl::Config c;
      c.logical_sectors = sectors;
      c.gc_reserve_blocks = config_.gc_reserve_blocks;
      c.buffer_sectors = config_.buffer_sectors;
      c.wl_pe_threshold = config_.wl_pe_threshold;
      c.wl_check_interval = config_.wl_check_interval;
      c.reference_scan_maintenance = config_.reference_scan_maintenance;
      ftl_ = std::make_unique<ftl::FgmFtl>(*device_, c);
      break;
    }
    case FtlKind::kSub: {
      ftl::SubFtl::Config c;
      c.logical_sectors = sectors;
      c.subpage_region_fraction = config_.subpage_region_fraction;
      c.gc_reserve_blocks = config_.gc_reserve_blocks;
      c.buffer_sectors = config_.buffer_sectors;
      c.retention_evict_age = config_.retention_evict_age;
      c.retention_scan_interval = config_.retention_scan_interval;
      c.wl_pe_threshold = config_.wl_pe_threshold;
      c.wl_check_interval = config_.wl_check_interval;
      c.use_copyback = config_.use_copyback;
      c.reference_scan_maintenance = config_.reference_scan_maintenance;
      ftl_ = std::make_unique<ftl::SubFtl>(*device_, c);
      break;
    }
    case FtlKind::kSectorLog: {
      ftl::SectorLogFtl::Config c;
      c.logical_sectors = sectors;
      c.log_region_fraction = config_.subpage_region_fraction;
      c.gc_reserve_blocks = config_.gc_reserve_blocks;
      c.buffer_sectors = config_.buffer_sectors;
      c.wl_pe_threshold = config_.wl_pe_threshold;
      c.wl_check_interval = config_.wl_check_interval;
      c.use_copyback = config_.use_copyback;
      c.reference_scan_maintenance = config_.reference_scan_maintenance;
      ftl_ = std::make_unique<ftl::SectorLogFtl>(*device_, c);
      break;
    }
  }
  driver_ = std::make_unique<sim::Driver>(*ftl_, *device_, config_.queue_depth);
  // Stamp log lines with this SSD's simulated clock. Last constructed wins
  // when several coexist; the destructor clears it, so the provider never
  // outlives a driver.
  util::set_log_sim_time_provider(
      [driver = driver_.get()] { return driver->now(); });
}

Ssd::~Ssd() {
  util::set_log_sim_time_provider(nullptr);
  // Sever the registry's references into device/FTL state before it dies:
  // bound counters and provider gauges become owned snapshots, so the
  // caller can still export metrics after this Ssd is destroyed.
  if (telemetry_) telemetry_->registry().materialize();
}

void Ssd::attach_telemetry(telemetry::Telemetry* telemetry, bool resume) {
  telemetry_ = telemetry;
  device_->set_telemetry(telemetry);
  ftl_->set_telemetry(telemetry);
  driver_->set_telemetry(telemetry, resume);
}

void Ssd::save_state(util::StateWriter& w) const {
  w.tag("SSD0");
  device_->save_state(w);
  ftl_->save_state(w);
  driver_->save_state(w);
}

void Ssd::load_state(util::StateReader& r) {
  r.tag("SSD0");
  device_->load_state(r);
  ftl_->load_state(r);
  driver_->load_state(r);
}

void Ssd::precondition(double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const std::uint32_t subs = config_.geometry.subpages_per_page;
  const std::uint64_t sectors = logical_sectors();
  const auto fill_sectors = static_cast<std::uint64_t>(
                                fraction * static_cast<double>(sectors)) /
                            subs * subs;
  // Large aligned sequential writes: fastest path on every FTL and the
  // same preconditioning the paper applies before each measurement.
  const std::uint32_t chunk = subs * 8;
  for (std::uint64_t s = 0; s < fill_sectors; s += chunk) {
    const auto n =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(chunk,
                                                           fill_sectors - s));
    driver_->submit(workload::Request{workload::Request::Type::kWrite, s, n,
                                      /*sync=*/false, /*think_us=*/0.0});
  }
  driver_->flush();
}

}  // namespace esp::core
