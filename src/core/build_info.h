// Build provenance for artifact self-description: version, git describe,
// and the geometry profiles this binary knows. Printed by `espsim
// --version` and embedded in every run manifest so sweep outputs can be
// traced back to the exact tree that produced them.
#pragma once

#include <string>

namespace esp::core {

/// Project version (CMake PROJECT_VERSION).
const char* build_version();

/// `git describe --always --dirty` at configure time; "unknown" when the
/// tree was built outside git.
const char* build_git_describe();

/// Comma-separated list of named geometry profiles compiled in.
const char* build_geometry_profiles();

/// One-line summary: "espnand <version> (<git>) geometries=<profiles>".
std::string build_info_line();

}  // namespace esp::core
