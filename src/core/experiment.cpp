#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/shard.h"
#include "core/snapshot.h"
#include "telemetry/auditor.h"
#include "telemetry/forensics.h"
#include "telemetry/health.h"
#include "telemetry/journal.h"

namespace esp::core {

// Each experiment cell runs single-threaded on its worker, so the thread
// CPU clock is exactly the cell's compute cost, immune to preemption.
double thread_cpu_seconds() {
#ifdef CLOCK_THREAD_CPUTIME_ID
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
  return 0.0;
}

namespace {

// Joins the two measured legs of a checkpointed run back into the metrics
// the unsplit run would have reported: counters sum, histograms merge,
// the window spans leg 1's start to leg 2's end, and cumulative end-of-run
// snapshots (ftl_stats, device_erases) come from the later leg.
sim::RunMetrics merge_legs(const sim::RunMetrics& a, const sim::RunMetrics& b) {
  sim::RunMetrics m = b;
  m.requests += a.requests;
  m.write_requests += a.write_requests;
  m.read_requests += a.read_requests;
  m.start_us = a.start_us;
  m.verify_failures += a.verify_failures;
  m.io_errors += a.io_errors;
  m.latency_hist = a.latency_hist;
  m.latency_hist.merge(b.latency_hist);
  m.response_hist = a.response_hist;
  m.response_hist.merge(b.response_hist);
  m.latency_p50_us = m.latency_hist.percentile(0.50);
  m.latency_p99_us = m.latency_hist.percentile(0.99);
  m.latency_p999_us = m.latency_hist.percentile(0.999);
  m.response_p50_us = m.response_hist.percentile(0.50);
  m.response_p99_us = m.response_hist.percentile(0.99);
  m.response_p999_us = m.response_hist.percentile(0.999);
  m.erases_during_run += a.erases_during_run;
  return m;
}

// Truncates a sidecar back to its checkpoint-time byte offset so the
// resumed sink appends exactly where the saved run left off.
void truncate_sidecar(const std::string& path, std::uint64_t offset,
                      const char* what) {
  std::error_code ec;
  std::filesystem::resize_file(path, offset, ec);
  if (ec)
    throw std::runtime_error(std::string("run_experiment: cannot truncate ") +
                             what + " sidecar for resume: " + path + ": " +
                             ec.message());
}

}  // namespace

RunResult run_experiment(const ExperimentSpec& spec) {
  // Sharded cells take the orchestrated path: N shared-nothing leaf runs
  // (each back through this function with shards == 1) merged in
  // shard-index order. See core/shard.h.
  if (spec.shards > 1) {
    if (!spec.snapshot_in.empty() || !spec.snapshot_out.empty())
      throw std::invalid_argument(
          "run_experiment: snapshots are unsharded-only (fan restored legs "
          "out with ParallelRunner instead)");
    return run_sharded_experiment(spec);
  }
  if (spec.stream != nullptr && !spec.tenants.empty())
    throw std::invalid_argument(
        "run_experiment: stream override is single-tenant only");
  const bool restoring = !spec.snapshot_in.empty();
  const bool checkpointing = !spec.snapshot_out.empty();
  if ((restoring || checkpointing) && !spec.tenants.empty())
    throw std::invalid_argument(
        "run_experiment: snapshots are single-tenant only");

  // Declared before the Ssd: the Ssd destructor materializes the telemetry
  // registry, so every sink it may reach must still be alive then.
  std::optional<telemetry::Telemetry> owned_tel;
  std::optional<std::ofstream> journal_os;
  std::optional<telemetry::Journal> journal;
  std::optional<telemetry::Auditor> auditor;
  std::optional<std::ofstream> health_os;
  std::optional<telemetry::HealthMonitor> health;
  std::optional<std::ofstream> forensics_os;
  std::optional<telemetry::ForensicsCollector> forensics;

  Ssd ssd(spec.ssd);

  // Restore path: validate the snapshot header up front (fingerprint gate)
  // and skip preconditioning -- the restored state replaces it. The state
  // itself loads after the telemetry facade and sinks exist.
  std::ifstream snap_is;
  SnapshotMeta snap_meta;
  if (restoring) {
    snap_is.open(spec.snapshot_in, std::ios::in | std::ios::binary);
    if (!snap_is)
      throw std::runtime_error("run_experiment: cannot open snapshot: " +
                               spec.snapshot_in);
    snap_meta = read_snapshot_meta(snap_is, spec.ssd);
  } else {
    ssd.precondition(spec.precondition_fraction);
  }
  // A matching workload seed continues the saved run: telemetry and the
  // sidecar streams resume where they left off and the consumed request
  // prefix is skip-replayed. A different seed is a fresh measurement leg
  // over the restored device: fresh streams, fresh baselines, request 0.
  const bool resume_stream =
      restoring && spec.workload.seed == snap_meta.workload_seed;

  telemetry::Telemetry* tel = spec.telemetry;
  const bool want_journal = !spec.journal_path.empty();
  const bool want_health = !spec.health_path.empty();
  const bool want_forensics = !spec.forensics_path.empty();
  if ((want_journal || spec.audit || want_health || want_forensics) &&
      tel == nullptr) {
    // Journal/audit/health requested without an external facade: own a
    // private one. A tiny trace ring keeps memory bounded; the streams do
    // their own I/O. Per-op latency detail is off — nothing reads the
    // histograms of a facade that exists only to feed streaming sinks,
    // and an always-on health stream must not pay for them.
    telemetry::TelemetryConfig cfg;
    cfg.trace_capacity = 256;
    cfg.op_detail = false;
    owned_tel.emplace(cfg);
    tel = &*owned_tel;
  }

  const auto& geo = spec.ssd.geometry;
  // Resume-mode sinks: the snapshot carried this sink's state and the
  // restored run continues the saved stream, so the sidecar is truncated
  // to its checkpoint offset and reopened for append, header suppressed.
  const bool journal_resume = resume_stream && snap_meta.has_journal &&
                              snap_meta.journal_offset !=
                                  SnapshotMeta::kNoSidecar;
  const bool health_resume = resume_stream && snap_meta.has_health &&
                             snap_meta.health_offset !=
                                 SnapshotMeta::kNoSidecar;
  const bool forensics_resume = resume_stream && snap_meta.has_forensics &&
                                snap_meta.forensics_offset !=
                                    SnapshotMeta::kNoSidecar;
  if (tel && want_journal) {
    if (journal_resume) {
      truncate_sidecar(spec.journal_path, snap_meta.journal_offset,
                       "journal");
      journal_os.emplace(spec.journal_path,
                         std::ios::out | std::ios::app | std::ios::binary);
    } else {
      journal_os.emplace(spec.journal_path,
                         std::ios::out | std::ios::trunc | std::ios::binary);
    }
    if (!*journal_os)
      throw std::runtime_error("run_experiment: cannot open journal file: " +
                               spec.journal_path);
    telemetry::JournalHeader hdr;
    hdr.ftl = ftl_kind_name(spec.ssd.ftl);
    hdr.chips = geo.total_chips();
    hdr.blocks_per_chip = geo.blocks_per_chip;
    hdr.pages_per_block = geo.pages_per_block;
    hdr.subpages_per_page = geo.subpages_per_page;
    hdr.page_bytes = geo.page_bytes;
    hdr.seed = spec.workload.seed;
    hdr.shard = spec.shard_index;
    hdr.shards = spec.shard_count;
    journal.emplace(*journal_os, hdr, spec.journal_max_events, journal_resume);
    tel->set_journal(&*journal);
  }
  if (tel && spec.audit) {
    telemetry::AuditorConfig cfg;
    cfg.chips = geo.total_chips();
    cfg.blocks_per_chip = geo.blocks_per_chip;
    cfg.pages_per_block = geo.pages_per_block;
    cfg.subpages_per_page = geo.subpages_per_page;
    auditor.emplace(cfg);
    tel->set_auditor(&*auditor);
  }
  if (tel && want_health) {
    if (health_resume) {
      truncate_sidecar(spec.health_path, snap_meta.health_offset, "health");
      health_os.emplace(spec.health_path,
                        std::ios::out | std::ios::app | std::ios::binary);
    } else {
      health_os.emplace(spec.health_path,
                        std::ios::out | std::ios::trunc | std::ios::binary);
    }
    if (!*health_os)
      throw std::runtime_error("run_experiment: cannot open health file: " +
                               spec.health_path);
    telemetry::HealthHeader hdr;
    hdr.ftl = ftl_kind_name(spec.ssd.ftl);
    hdr.chips = geo.total_chips();
    hdr.blocks_per_chip = geo.blocks_per_chip;
    hdr.pages_per_block = geo.pages_per_block;
    hdr.subpages_per_page = geo.subpages_per_page;
    hdr.seed = spec.workload.seed;
    hdr.interval_us = spec.health_interval_us;
    hdr.rated_pe = spec.health_rated_pe;
    hdr.shard = spec.shard_index;
    hdr.shards = spec.shard_count;
    health.emplace(*health_os, hdr, health_resume);
    tel->set_health(&*health);
  }
  if (tel && want_forensics) {
    if (forensics_resume) {
      truncate_sidecar(spec.forensics_path, snap_meta.forensics_offset,
                       "forensics");
      forensics_os.emplace(spec.forensics_path,
                           std::ios::out | std::ios::app | std::ios::binary);
    } else {
      forensics_os.emplace(spec.forensics_path,
                           std::ios::out | std::ios::trunc | std::ios::binary);
    }
    if (!*forensics_os)
      throw std::runtime_error(
          "run_experiment: cannot open forensics file: " +
          spec.forensics_path);
    telemetry::ForensicsHeader hdr;
    hdr.ftl = ftl_kind_name(spec.ssd.ftl);
    hdr.chips = geo.total_chips();
    hdr.blocks_per_chip = geo.blocks_per_chip;
    hdr.pages_per_block = geo.pages_per_block;
    hdr.subpages_per_page = geo.subpages_per_page;
    hdr.page_bytes = geo.page_bytes;
    hdr.seed = spec.workload.seed;
    hdr.shard = spec.shard_index;
    hdr.shards = spec.shard_count;
    telemetry::ForensicsCollector::Config cfg;
    cfg.top_k = spec.forensics_top;
    cfg.audit = spec.audit;
    cfg.tenant_hists = spec.tenants.size() > 1;
    forensics.emplace(*forensics_os, hdr, cfg, forensics_resume);
    tel->set_forensics(&*forensics);
  }
  // Restoring attaches AFTER load_state below: a fresh attach baselines
  // sampling cursors and the health epoch-0 from the restored (not blank)
  // state, and a resume attach only needs the facade pointer wired.
  if (tel && !restoring) ssd.attach_telemetry(tel);

  if (restoring) {
    SnapshotSinks sinks;
    // The auditor's model mirrors device state, not stream position, so a
    // fresh-seed leg still loads it for full-strictness checking.
    if (auditor) sinks.auditor = &*auditor;
    if (resume_stream) {
      if (snap_meta.has_telemetry) sinks.telemetry = tel;
      if (journal_resume) sinks.journal = &*journal;
      if (health_resume) sinks.health = &*health;
      if (forensics_resume) sinks.forensics = &*forensics;
    }
    read_snapshot_state(snap_is, snap_meta, ssd, sinks);
    snap_is.close();
    if (tel)
      ssd.attach_telemetry(tel, /*resume=*/resume_stream &&
                                    snap_meta.has_telemetry);
  }

  const std::uint32_t subs = spec.ssd.geometry.subpages_per_page;

  // Single-tenant: one stream over the whole logical space. Default the
  // workload footprint to the preconditioned LBA range -- the paper's
  // benchmarks run over the files laid down during preconditioning.
  std::optional<workload::SyntheticWorkload> stream;
  // Stream override (shard slices, recorded traces) replaces the
  // generator; the synthetic params then only stamp headers.
  workload::RequestSource* source = spec.stream;
  // Multi-tenant: each tenant's stream over its namespace slice, muxed by
  // the QoS scheduler.
  std::vector<workload::SyntheticWorkload> tenant_streams;
  std::optional<sim::TenantMux> mux;
  if (spec.tenants.empty()) {
    if (source == nullptr) {
      workload::SyntheticParams params = spec.workload;
      if (params.footprint_sectors == 0) {
        params.footprint_sectors =
            static_cast<std::uint64_t>(
                spec.precondition_fraction *
                static_cast<double>(ssd.logical_sectors())) /
            subs * subs;
      }
      stream.emplace(params);
      source = &*stream;
    }
  } else {
    const std::vector<sim::TenantNamespace> slices = sim::partition_namespaces(
        ssd.logical_sectors(), spec.tenants.size(), subs);
    tenant_streams.reserve(spec.tenants.size());
    std::vector<sim::TenantMux::Lane> lanes;
    lanes.reserve(spec.tenants.size());
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
      const TenantSpec& t = spec.tenants[i];
      workload::SyntheticParams params = t.workload;
      if (params.footprint_sectors == 0) {
        params.footprint_sectors =
            static_cast<std::uint64_t>(
                spec.precondition_fraction *
                static_cast<double>(slices[i].sectors)) /
            subs * subs;
      }
      params.footprint_sectors =
          std::min(params.footprint_sectors, slices[i].sectors);
      tenant_streams.emplace_back(params);
      sim::TenantMux::Lane lane;
      lane.config.name = t.name.empty() ? "t" + std::to_string(i) : t.name;
      lane.config.weight = t.weight;
      lane.config.queue_depth = t.queue_depth;
      lane.ns = slices[i];
      lane.source = &tenant_streams.back();
      lanes.push_back(std::move(lane));
    }
    mux.emplace(ssd.driver(), spec.qos, std::move(lanes));
    if (tel) mux->set_registry(&tel->registry());
  }

  // Requests pulled from the active source / completed in the measured
  // window so far -- the checkpoint cursors a later restore resumes from.
  std::uint64_t source_consumed = resume_stream ? snap_meta.source_consumed : 0;
  std::uint64_t measured_done = resume_stream ? snap_meta.measured_done : 0;
  if (resume_stream) {
    // Fast-forward the deterministic generator past the prefix the saved
    // run already consumed; the next next() continues the saved sequence.
    for (std::uint64_t i = 0; i < snap_meta.source_consumed; ++i)
      if (!source->next())
        throw std::runtime_error(
            "run_experiment: snapshot consumed more requests than the "
            "stream provides -- wrong stream for this snapshot?");
  }

  // A resumed stream restarts mid-measured-window: warmup already happened
  // before the checkpoint and its closing health epoch is part of the
  // restored state (repeating either would fork the sidecar bytes).
  if (!resume_stream) {
    if (spec.warmup_requests > 0) {
      if (mux) {
        mux->run(/*verify=*/false, spec.warmup_requests);
      } else {
        const sim::RunMetrics warm =
            ssd.driver().run(*source, /*verify=*/false, spec.warmup_requests);
        source_consumed += warm.requests;
      }
    }
    // End-of-warmup health epoch lands before the wall clock starts.
    ssd.driver().close_health_epoch();
  }

  // Measured-window-start checkpoint (snapshot_after_requests == 0): the
  // shared aged-state anchor independent lifetime legs restore from.
  // Written outside the measured wall-clock window, like other teardown
  // I/O.
  const auto write_checkpoint = [&] {
    SnapshotMeta m;
    m.workload_seed = spec.workload.seed;
    m.source_consumed = source_consumed;
    m.measured_done = measured_done;
    m.saved_at_us = ssd.driver().now();
    SnapshotSinks sinks;
    sinks.telemetry = tel;
    if (auditor) sinks.auditor = &*auditor;
    if (journal) {
      journal_os->flush();
      m.journal_offset = static_cast<std::uint64_t>(journal_os->tellp());
      sinks.journal = &*journal;
    }
    if (health) {
      health_os->flush();
      m.health_offset = static_cast<std::uint64_t>(health_os->tellp());
      sinks.health = &*health;
    }
    if (forensics) {
      forensics_os->flush();
      m.forensics_offset = static_cast<std::uint64_t>(forensics_os->tellp());
      sinks.forensics = &*forensics;
    }
    save_snapshot_file(spec.snapshot_out, m, ssd, sinks);
  };
  if (checkpointing && spec.snapshot_after_requests == 0) write_checkpoint();

  // Measure only the steady-state window: diff against a post-warmup
  // snapshot so preconditioning/warmup traffic is excluded.
  const ftl::FtlStats before = ssd.ftl().stats();
  std::vector<SimTime> chip_busy_before(geo.total_chips());
  for (std::uint32_t c = 0; c < geo.total_chips(); ++c)
    chip_busy_before[c] = ssd.device().chip_busy_us(c);
  std::vector<SimTime> channel_busy_before(geo.channels);
  for (std::uint32_t c = 0; c < geo.channels; ++c)
    channel_busy_before[c] = ssd.device().channel_busy_us(c);

  sim::MuxRunMetrics mux_metrics;
  sim::RunMetrics metrics;
  const auto wall_start = std::chrono::steady_clock::now();
  const double cpu_start = thread_cpu_seconds();
  if (mux) {
    // The mux reports per-tenant windows; reconstruct the aggregate
    // RunMetrics the same way Driver::run does -- snapshot/delta of the
    // driver's cumulative state around the measured window.
    const util::Histogram latency_before = ssd.driver().latency_histogram();
    const util::Histogram response_before = ssd.driver().response_histogram();
    const std::uint64_t failures_before = ssd.driver().verify_failures();
    const std::uint64_t erases_before = ssd.device().counters().erases;
    mux_metrics = mux->run(spec.verify);
    metrics.requests = mux_metrics.requests;
    for (const sim::TenantMetrics& t : mux_metrics.tenants) {
      metrics.write_requests += t.write_requests;
      metrics.read_requests += t.read_requests;
    }
    metrics.start_us = mux_metrics.start_us;
    metrics.end_us = mux_metrics.end_us;
    metrics.latency_hist =
        ssd.driver().latency_histogram().delta_since(latency_before);
    metrics.response_hist =
        ssd.driver().response_histogram().delta_since(response_before);
    metrics.latency_p50_us = metrics.latency_hist.percentile(0.50);
    metrics.latency_p99_us = metrics.latency_hist.percentile(0.99);
    metrics.latency_p999_us = metrics.latency_hist.percentile(0.999);
    metrics.response_p50_us = metrics.response_hist.percentile(0.50);
    metrics.response_p99_us = metrics.response_hist.percentile(0.99);
    metrics.response_p999_us = metrics.response_hist.percentile(0.999);
    metrics.verify_failures = ssd.driver().verify_failures() - failures_before;
    metrics.ftl_stats = ssd.ftl().stats();
    metrics.device_erases = ssd.device().counters().erases;
    metrics.erases_during_run = metrics.device_erases - erases_before;
  } else if (checkpointing && spec.snapshot_after_requests > 0) {
    // Mid-window checkpoint: run up to the cut (leaving the sampling
    // window open, exactly as the uninterrupted run would), snapshot, then
    // finish the stream. The merged metrics match the unsplit run's.
    const sim::RunMetrics leg1 =
        ssd.driver().run(*source, spec.verify, spec.snapshot_after_requests,
                         /*final_sample=*/false);
    source_consumed += leg1.requests;
    measured_done += leg1.requests;
    write_checkpoint();
    const sim::RunMetrics leg2 = ssd.driver().run(*source, spec.verify);
    metrics = merge_legs(leg1, leg2);
  } else {
    metrics = ssd.driver().run(*source, spec.verify);
  }
  const double cpu_seconds = thread_cpu_seconds() - cpu_start;
  const auto wall_end = std::chrono::steady_clock::now();
  const double wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  // The end-of-run snapshot is teardown I/O (one O(blocks) dump), not
  // steady-state work -- cut it after the wall clock stops, like the
  // journal/health trailers below.
  ssd.driver().close_health_epoch();
  const ftl::FtlStats window = ftl::stats_delta(metrics.ftl_stats, before);
  metrics.ftl_stats = window;

  RunResult result;
  result.ftl_name = ssd.ftl().name();
  result.iops = metrics.iops();
  const double host_bytes =
      static_cast<double>((window.host_write_sectors +
                           window.host_read_sectors) *
                          geo.subpage_bytes());
  const double secs = sim_time::to_seconds(metrics.elapsed_us());
  result.host_mb_per_sec = secs > 0.0 ? host_bytes / (1024.0 * 1024.0) / secs
                                      : 0.0;
  result.overall_waf = window.overall_waf(geo.page_bytes, geo.subpage_bytes());
  result.small_request_waf = window.avg_small_request_waf();
  result.gc_invocations = window.gc_invocations;
  result.erases = metrics.erases_during_run;
  result.rmw_ops = window.rmw_ops;
  result.verify_failures = metrics.verify_failures;
  result.measure_wall_seconds = wall_seconds;
  result.measure_cpu_seconds = cpu_seconds;
  result.measure_wall_start_s =
      std::chrono::duration<double>(wall_start.time_since_epoch()).count();
  result.measure_wall_end_s =
      std::chrono::duration<double>(wall_end.time_since_epoch()).count();
  result.mapping_bytes = ssd.ftl().mapping_memory_bytes();

  // Device utilization over the measured window: busy-time delta divided
  // by the window's simulated duration.
  const SimTime elapsed_us = metrics.elapsed_us();
  const auto util_stats = [elapsed_us](const std::vector<SimTime>& before_v,
                                       const auto& busy_of, double& lo,
                                       double& mean, double& hi) {
    if (elapsed_us <= 0.0 || before_v.empty()) return;
    double sum = 0.0;
    lo = 0.0;
    hi = 0.0;
    for (std::uint32_t c = 0; c < before_v.size(); ++c) {
      const double u = (busy_of(c) - before_v[c]) / elapsed_us;
      sum += u;
      if (c == 0 || u < lo) lo = u;
      if (c == 0 || u > hi) hi = u;
    }
    mean = sum / static_cast<double>(before_v.size());
  };
  result.chips = geo.total_chips();
  result.channels = geo.channels;
  util_stats(
      chip_busy_before,
      [&ssd](std::uint32_t c) { return ssd.device().chip_busy_us(c); },
      result.chip_util_min, result.chip_util_mean, result.chip_util_max);
  util_stats(
      channel_busy_before,
      [&ssd](std::uint32_t c) { return ssd.device().channel_busy_us(c); },
      result.channel_util_min, result.channel_util_mean,
      result.channel_util_max);
  if (tel) result.trace_dropped = tel->trace().dropped();
  if (journal) {
    journal->finish();
    result.journal_events = journal->events_written();
    result.journal_truncated = journal->truncated();
  }
  if (health) {
    health->finish();
    result.health_epochs = health->epochs_written();
    result.health_lines = health->lines_written();
  }
  if (forensics) {
    forensics->finish();
    result.forensics_requests = forensics->requests();
    result.forensics_exemplars = forensics->exemplars_retained();
    result.forensics_truncated = forensics->truncated();
    result.tenant_blame = forensics->tenant_blame();
  }
  // Detach downstream sinks before the optionals above are destroyed:
  // the Ssd destructor still records registry materialization through tel.
  if (tel) {
    tel->set_journal(nullptr);
    tel->set_auditor(nullptr);
    tel->set_health(nullptr);
    tel->set_forensics(nullptr);
  }
  result.raw = metrics;
  if (mux) result.tenants = std::move(mux_metrics.tenants);
  return result;
}

}  // namespace esp::core
