#include "core/experiment.h"

namespace esp::core {

RunResult run_experiment(const ExperimentSpec& spec) {
  Ssd ssd(spec.ssd);
  ssd.precondition(spec.precondition_fraction);
  if (spec.telemetry) ssd.attach_telemetry(spec.telemetry);

  // Default the workload footprint to the preconditioned LBA range -- the
  // paper's benchmarks run over the files laid down during preconditioning.
  workload::SyntheticParams params = spec.workload;
  if (params.footprint_sectors == 0) {
    const std::uint32_t subs = spec.ssd.geometry.subpages_per_page;
    params.footprint_sectors =
        static_cast<std::uint64_t>(spec.precondition_fraction *
                                   static_cast<double>(ssd.logical_sectors())) /
        subs * subs;
  }
  workload::SyntheticWorkload stream(params);

  if (spec.warmup_requests > 0)
    ssd.driver().run(stream, /*verify=*/false, spec.warmup_requests);

  // Measure only the steady-state window: diff against a post-warmup
  // snapshot so preconditioning/warmup traffic is excluded.
  const ftl::FtlStats before = ssd.ftl().stats();

  auto metrics = ssd.driver().run(stream, spec.verify);
  const ftl::FtlStats window = ftl::stats_delta(metrics.ftl_stats, before);
  metrics.ftl_stats = window;

  RunResult result;
  result.ftl_name = ssd.ftl().name();
  result.iops = metrics.iops();
  const auto& geo = spec.ssd.geometry;
  const double host_bytes =
      static_cast<double>((window.host_write_sectors +
                           window.host_read_sectors) *
                          geo.subpage_bytes());
  const double secs = sim_time::to_seconds(metrics.elapsed_us());
  result.host_mb_per_sec = secs > 0.0 ? host_bytes / (1024.0 * 1024.0) / secs
                                      : 0.0;
  result.overall_waf = window.overall_waf(geo.page_bytes, geo.subpage_bytes());
  result.small_request_waf = window.avg_small_request_waf();
  result.gc_invocations = window.gc_invocations;
  result.erases = metrics.erases_during_run;
  result.rmw_ops = window.rmw_ops;
  result.verify_failures = metrics.verify_failures;
  result.mapping_bytes = ssd.ftl().mapping_memory_bytes();
  result.raw = metrics;
  return result;
}

}  // namespace esp::core
