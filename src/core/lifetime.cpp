#include "core/lifetime.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/parallel_runner.h"
#include "core/snapshot.h"
#include "ftl/types.h"
#include "sim/driver.h"
#include "telemetry/health.h"

namespace esp::core {

namespace {

/// Per-block P/E counts in (chip-major, block-minor) order.
void snapshot_wear(const nand::NandDevice& dev, const nand::Geometry& geo,
                   std::vector<std::uint32_t>& out) {
  out.resize(geo.total_blocks());
  std::size_t i = 0;
  for (std::uint32_t chip = 0; chip < geo.total_chips(); ++chip)
    for (std::uint32_t blk = 0; blk < geo.blocks_per_chip; ++blk)
      out[i++] = dev.pe_cycles(chip, blk);
}

double mean_of(const std::vector<std::uint32_t>& pe) {
  std::uint64_t sum = 0;
  for (const std::uint32_t v : pe) sum += v;
  return pe.empty() ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(pe.size());
}

}  // namespace

LifetimeResult run_lifetime(const LifetimeSpec& spec) {
  Ssd ssd(spec.ssd);
  const nand::Geometry& geo = spec.ssd.geometry;
  const std::uint32_t subpage_bytes = geo.subpage_bytes();

  std::uint32_t windows_done = 0;
  if (!spec.snapshot_in.empty()) {
    std::ifstream is(spec.snapshot_in, std::ios::binary);
    if (!is)
      throw std::runtime_error("run_lifetime: cannot open snapshot: " +
                               spec.snapshot_in);
    const SnapshotMeta meta = read_snapshot_meta(is, spec.ssd);
    read_snapshot_state(is, meta, ssd, SnapshotSinks{});
    windows_done = static_cast<std::uint32_t>(meta.measured_done);
  } else {
    ssd.precondition(spec.precondition_fraction);
    if (spec.warmup_requests > 0) {
      workload::SyntheticParams p = spec.workload;
      p.seed = stable_cell_seed("lifetime/warmup", spec.workload.seed);
      p.request_count = spec.warmup_requests;
      if (p.footprint_sectors == 0) {
        p.footprint_sectors =
            static_cast<std::uint64_t>(
                spec.precondition_fraction *
                static_cast<double>(ssd.logical_sectors())) /
            geo.subpages_per_page * geo.subpages_per_page;
      }
      workload::SyntheticWorkload warm(p);
      ssd.driver().run(warm, /*verify=*/false);
    }
  }

  LifetimeResult result;
  result.ftl_name = ftl_kind_name(spec.ssd.ftl);
  result.target_mean_pe = spec.target_mean_pe > 0.0
                              ? spec.target_mean_pe
                              : static_cast<double>(
                                    spec.ssd.retention.rated_pe_cycles);

  std::vector<std::uint32_t> pe_before, pe_after;
  snapshot_wear(ssd.device(), geo, pe_before);
  result.start_mean_pe = mean_of(pe_before);

  std::uint32_t stalled_windows = 0;
  const auto wall0 = std::chrono::steady_clock::now();
  while (true) {
    const double mean_pe = mean_of(pe_before);
    if (mean_pe >= result.target_mean_pe) {
      result.reached_target = true;
      break;
    }
    if (spec.max_windows > 0 && result.windows.size() >= spec.max_windows)
      break;

    // --- Full-fidelity measurement window -----------------------------
    workload::SyntheticParams p = spec.workload;
    p.seed = stable_cell_seed("lifetime/window/" + std::to_string(windows_done),
                              spec.workload.seed);
    p.request_count = spec.window_requests;
    if (p.footprint_sectors == 0) {
      p.footprint_sectors =
          static_cast<std::uint64_t>(
              spec.precondition_fraction *
              static_cast<double>(ssd.logical_sectors())) /
          geo.subpages_per_page * geo.subpages_per_page;
    }
    workload::SyntheticWorkload stream(p);
    const ftl::FtlStats s0 = ssd.ftl().stats();
    const sim::RunMetrics m = ssd.driver().run(stream, spec.verify);
    const ftl::FtlStats d = stats_delta(ssd.ftl().stats(), s0);

    LifetimeWindow win;
    win.index = windows_done;
    win.mean_pe_start = mean_pe;
    win.max_pe_start = static_cast<double>(ssd.device().max_pe_cycles());
    win.waf = d.overall_waf(geo.page_bytes, subpage_bytes);
    win.iops = m.iops();
    const double elapsed_s = sim_time::to_seconds(m.elapsed_us());
    win.host_mb_per_sec =
        elapsed_s > 0.0
            ? static_cast<double>(
                  (d.host_write_sectors + d.host_read_sectors) *
                  static_cast<std::uint64_t>(subpage_bytes)) /
                  (1e6 * elapsed_s)
            : 0.0;
    win.latency_p50_us = m.latency_p50_us;
    win.latency_p99_us = m.latency_p99_us;
    win.response_p99_us = m.response_p99_us;
    win.erases = m.erases_during_run;
    win.gc_invocations = d.gc_invocations;
    win.retention_evictions = d.retention_evictions;
    win.host_write_bytes =
        d.host_write_sectors * static_cast<std::uint64_t>(subpage_bytes);
    result.real_erases += m.erases_during_run;
    result.verify_failures += m.verify_failures;
    result.io_errors += m.io_errors;

    // --- Compressed aging epoch ---------------------------------------
    snapshot_wear(ssd.device(), geo, pe_after);
    std::uint64_t window_cycles = 0;
    for (std::size_t i = 0; i < pe_after.size(); ++i)
      window_cycles += pe_after[i] - pe_before[i];
    if (std::getenv("ESP_LIFETIME_DEBUG"))
      std::fprintf(stderr,
                   "[lifetime] win %u: reqs=%llu erases=%llu cycles=%llu "
                   "mean_pe=%.2f max_pe=%llu io_err=%llu evict=%llu\n",
                   windows_done, static_cast<unsigned long long>(m.requests),
                   static_cast<unsigned long long>(m.erases_during_run),
                   static_cast<unsigned long long>(window_cycles), mean_pe,
                   static_cast<unsigned long long>(
                       ssd.device().max_pe_cycles()),
                   static_cast<unsigned long long>(m.io_errors),
                   static_cast<unsigned long long>(d.retention_evictions));
    if (spec.fast_forward) {
      if (window_cycles == 0) {
        if (++stalled_windows >= 3)
          throw std::runtime_error(
              "run_lifetime: fast-forward stalled -- three consecutive "
              "windows without an erase; the workload writes too little to "
              "age the device");
      } else {
        stalled_windows = 0;
        const double scale =
            spec.pe_step > 0.0
                ? spec.pe_step * static_cast<double>(pe_after.size()) /
                      static_cast<double>(window_cycles)
                : spec.compression;
        // Scale each POOL's measured accrual and spread it uniformly over
        // the pool's blocks. One window's erase pattern is a sparse sample
        // of the rate distribution -- scaling it per block by S (often
        // 100s-1000s) would pile the whole epoch onto the few blocks that
        // happened to erase, a wear spike no real device shows (GC and
        // wear leveling rotate victims over the represented horizon).
        // Per-pool totals keep the asymmetry the lifetime claim is about:
        // the subpage pool ages faster than the full-page pool.
        std::vector<telemetry::BlockHealth> rows(pe_after.size());
        ssd.device().fill_block_health(rows);
        ssd.ftl().collect_health(rows);
        constexpr std::size_t kPools = 4;  // telemetry::HealthPool values
        std::array<std::uint64_t, kPools> pool_cycles{};
        std::array<std::vector<std::uint32_t>, kPools> pool_blocks;
        for (std::size_t i = 0; i < pe_after.size(); ++i) {
          const auto pool = std::min<std::size_t>(rows[i].pool, kPools - 1);
          pool_cycles[pool] += pe_after[i] - pe_before[i];
          pool_blocks[pool].push_back(static_cast<std::uint32_t>(i));
        }
        // The free pool is a waypoint, not a residence: a block erased late
        // in the window sits on the free list at snapshot time, but over
        // the represented horizon it is immediately reallocated. Leaving
        // those cycles on the (tiny, ~reserve-sized) free pool would focus
        // an entire epoch's budget onto a handful of blocks -- a wear spike
        // past the retention cliff that no steady-state device shows. Fold
        // the free pool's accrual into the whole-device population instead.
        constexpr std::size_t kFreePool =
            static_cast<std::size_t>(telemetry::HealthPool::kFree);
        if (pool_cycles[kFreePool] > 0) {
          pool_blocks[kFreePool].resize(pe_after.size());
          for (std::size_t i = 0; i < pe_after.size(); ++i)
            pool_blocks[kFreePool][i] = static_cast<std::uint32_t>(i);
        }
        if (std::getenv("ESP_LIFETIME_DEBUG"))
          for (std::size_t pool = 0; pool < kPools; ++pool)
            std::fprintf(stderr,
                         "[lifetime]   pool %zu: blocks=%zu cycles=%llu\n",
                         pool, pool_blocks[pool].size(),
                         static_cast<unsigned long long>(pool_cycles[pool]));
        std::uint64_t applied = 0;
        for (std::size_t pool = 0; pool < kPools; ++pool) {
          if (pool_cycles[pool] == 0 || pool_blocks[pool].empty()) continue;
          const auto budget = static_cast<std::uint64_t>(std::llround(
              scale * static_cast<double>(pool_cycles[pool])));
          const std::uint64_t n = pool_blocks[pool].size();
          const std::uint64_t per = budget / n;
          const std::uint64_t rem = budget % n;
          for (std::uint64_t j = 0; j < n; ++j) {
            const auto cycles =
                static_cast<std::uint32_t>(per + (j < rem ? 1 : 0));
            if (cycles == 0) continue;
            const std::uint32_t idx = pool_blocks[pool][j];
            ssd.device().apply_synthetic_wear(idx / geo.blocks_per_chip,
                                              idx % geo.blocks_per_chip,
                                              cycles);
            applied += cycles;
          }
        }
        win.synthetic_cycles = applied;
        win.epoch_scale = scale;
        const SimTime advance = std::min<SimTime>(
            scale * m.elapsed_us(), spec.epoch_advance_cap_us);
        ssd.driver().advance_to(ssd.driver().now() + advance);
        win.sim_hours_advanced = advance / sim_time::kHour;
        result.synthetic_cycles += applied;
        // The epoch shifted every block's wear; re-read rather than add.
        snapshot_wear(ssd.device(), geo, pe_after);
      }
    }
    result.host_tb_written +=
        static_cast<double>(win.host_write_bytes) * (1.0 + win.epoch_scale) /
        1e12;
    ++windows_done;
    result.windows.push_back(win);
    pe_before.swap(pe_after);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  result.final_mean_pe = mean_of(pe_before);
  result.final_max_pe = static_cast<double>(ssd.device().max_pe_cycles());

  if (!spec.snapshot_out.empty()) {
    SnapshotMeta meta;
    meta.workload_seed = spec.workload.seed;
    meta.source_consumed = 0;
    meta.measured_done = windows_done;
    meta.saved_at_us = ssd.driver().now();
    save_snapshot_file(spec.snapshot_out, meta, ssd, SnapshotSinks{});
  }
  return result;
}

}  // namespace esp::core
