#include "workload/profiles.h"

#include <stdexcept>

namespace esp::workload {

const std::vector<Benchmark>& all_benchmarks() {
  static const std::vector<Benchmark> kAll = {
      Benchmark::kSysbench, Benchmark::kVarmail, Benchmark::kPostmark,
      Benchmark::kYcsb, Benchmark::kTpcc};
  return kAll;
}

std::string benchmark_name(Benchmark bench) {
  switch (bench) {
    case Benchmark::kSysbench: return "Sysbench";
    case Benchmark::kVarmail: return "Varmail";
    case Benchmark::kPostmark: return "Postmark";
    case Benchmark::kYcsb: return "YCSB";
    case Benchmark::kTpcc: return "TPC-C";
  }
  throw std::invalid_argument("benchmark_name: unknown benchmark");
}

// Small-write working sets are scaled to the device: on the paper's
// 16-GB platform the benchmarks' hot small-write sets (mail spools,
// Postmark's file pool, commit/redo logs -- tens to hundreds of MB) fit
// comfortably inside the 3.2-GB subpage region's valid capacity (0.8 GB
// at one subpage per page). The fractions below preserve that
// working-set-to-region ratio on scaled-down devices.
SyntheticParams benchmark_profile(Benchmark bench,
                                  std::uint64_t footprint_sectors,
                                  std::uint64_t request_count,
                                  std::uint32_t sectors_per_page,
                                  std::uint64_t seed) {
  SyntheticParams p;
  p.footprint_sectors = footprint_sectors;
  p.request_count = request_count;
  p.sectors_per_page = sectors_per_page;
  p.seed = seed;
  switch (bench) {
    case Benchmark::kSysbench:
      // System-performance tester doing 4-KB random O_DIRECT-style writes;
      // paper: 99.7% small writes, >95% of them synchronous.
      p.r_small = 0.997;
      p.r_synch = 0.97;
      p.read_fraction = 0.20;
      p.small_zipf_theta = 0.90;
      p.small_footprint_fraction = 0.018;  // the Sysbench test-file set
      break;
    case Benchmark::kVarmail:
      // Mail-server file set: fsync-heavy small appends plus occasional
      // whole-file writes; paper: 95.3% small writes.
      p.r_small = 0.953;
      p.r_synch = 0.99;
      p.read_fraction = 0.30;
      p.small_sectors_max = 2;  // some 8-KB appends
      p.small_zipf_theta = 0.85;
      p.small_footprint_fraction = 0.015;  // mail spool directories
      break;
    case Benchmark::kPostmark:
      // Small-file churn, nearly everything is a small sync write;
      // paper: 99.9% small writes.
      p.r_small = 0.999;
      p.r_synch = 0.95;
      p.read_fraction = 0.20;
      p.small_zipf_theta = 0.80;
      p.small_footprint_fraction = 0.015;  // Postmark's small-file pool
      break;
    case Benchmark::kYcsb:
      // Cassandra: commit-log fsyncs are small, SSTable flushes are large
      // sequential multi-page writes; paper: 19.3% small writes.
      p.r_small = 0.193;
      p.r_synch = 0.90;
      p.read_fraction = 0.45;
      p.large_pages_min = 2;
      p.large_pages_max = 8;  // up to 128-KB sequential flush chunks
      p.large_align_prob = 0.98;  // direct-I/O SSTable writes
      p.small_zipf_theta = 0.95;
      p.small_footprint_fraction = 0.003;  // commit-log segments
      break;
    case Benchmark::kTpcc:
      // OLTP: redo-log small sync writes, page cleaner writes full pages;
      // paper: 11.8% small writes.
      p.r_small = 0.118;
      p.r_synch = 0.95;
      p.read_fraction = 0.50;
      p.large_pages_min = 1;
      p.large_pages_max = 4;
      p.large_align_prob = 0.98;  // page-aligned tablespace I/O
      p.small_zipf_theta = 0.95;
      p.small_footprint_fraction = 0.002;  // redo-log ring
      break;
  }
  return p;
}

}  // namespace esp::workload
