#include "workload/splitter.h"

#include <algorithm>
#include <stdexcept>

namespace esp::workload {

ShardSplitter::ShardSplitter(std::uint32_t shards, std::uint32_t stripe_pages,
                             std::uint32_t sectors_per_page,
                             std::uint64_t shard_capacity_sectors)
    : shards_(shards),
      stripe_pages_(stripe_pages),
      stripe_sectors_(static_cast<std::uint64_t>(stripe_pages) *
                      sectors_per_page) {
  if (shards == 0) throw std::invalid_argument("ShardSplitter: shards == 0");
  if (stripe_pages == 0 || sectors_per_page == 0)
    throw std::invalid_argument("ShardSplitter: zero stripe/page size");
  const std::uint64_t stripes_per_shard =
      shard_capacity_sectors / stripe_sectors_;
  if (stripes_per_shard == 0)
    throw std::invalid_argument(
        "ShardSplitter: stripe larger than a shard's logical space "
        "(lower shard_stripe_pages or the shard count)");
  shard_sectors_ = stripes_per_shard * stripe_sectors_;
  usable_sectors_ = shard_sectors_ * shards_;
}

void ShardSplitter::split(const Request& request,
                          std::vector<Sub>& out) const {
  out.clear();
  if (request.type == Request::Type::kFlush) {
    for (std::uint32_t i = 0; i < shards_; ++i) {
      Sub sub;
      sub.shard = i;
      sub.request = request;
      if (i != 0) sub.request.think_us = 0.0;
      out.push_back(sub);
    }
    return;
  }
  std::uint64_t sector = request.sector;
  std::uint64_t remaining = request.count;
  bool first = true;
  while (remaining > 0) {
    const std::uint64_t stripe_end =
        (sector / stripe_sectors_ + 1) * stripe_sectors_;
    const std::uint64_t take = std::min(remaining, stripe_end - sector);
    Sub sub;
    sub.shard = shard_of(sector);
    sub.request = request;
    sub.request.sector = to_local(sector);
    sub.request.count = static_cast<std::uint32_t>(take);
    if (!first) sub.request.think_us = 0.0;
    out.push_back(sub);
    sector += take;
    remaining -= take;
    first = false;
  }
}

std::vector<ShardStream> partition_stream(RequestSource& source,
                                          const ShardSplitter& splitter,
                                          std::uint64_t max_requests,
                                          std::uint64_t warmup_requests) {
  const std::uint32_t n = splitter.shards();
  std::vector<ShardStream> streams(n);
  std::vector<SimTime> pending_think(n, 0.0);
  std::vector<ShardSplitter::Sub> scratch;
  std::uint64_t emitted = 0;
  while (max_requests == 0 || emitted < max_requests) {
    const std::optional<Request> request = source.next();
    if (!request) break;
    for (std::uint32_t i = 0; i < n; ++i)
      pending_think[i] += request->think_us;
    splitter.split(*request, scratch);
    for (ShardSplitter::Sub& sub : scratch) {
      sub.request.think_us = pending_think[sub.shard];
      pending_think[sub.shard] = 0.0;
      streams[sub.shard].requests.push_back(sub.request);
      if (emitted < warmup_requests) ++streams[sub.shard].warmup_requests;
    }
    ++emitted;
  }
  return streams;
}

}  // namespace esp::workload
