#include "workload/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace esp::workload {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("trace line " + std::to_string(line_no) + ": " +
                           what);
}

}  // namespace

std::vector<Request> read_trace(std::istream& in) {
  std::vector<Request> requests;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char op = 0;
    ls >> op;
    Request req;
    switch (op) {
      case 'W': {
        int sync = 0;
        ls >> req.sector >> req.count >> sync;
        if (ls.fail()) fail(line_no, "expected 'W sector count sync'");
        ls >> req.think_us;  // optional
        req.type = Request::Type::kWrite;
        req.sync = sync != 0;
        if (req.count == 0) fail(line_no, "write count must be > 0");
        break;
      }
      case 'R':
        ls >> req.sector >> req.count;
        if (ls.fail()) fail(line_no, "expected 'R sector count'");
        req.type = Request::Type::kRead;
        if (req.count == 0) fail(line_no, "read count must be > 0");
        break;
      case 'T':
        ls >> req.sector >> req.count;
        if (ls.fail()) fail(line_no, "expected 'T sector count'");
        req.type = Request::Type::kTrim;
        break;
      case 'F':
        req.type = Request::Type::kFlush;
        break;
      default:
        fail(line_no, std::string("unknown opcode '") + op + "'");
    }
    requests.push_back(req);
  }
  return requests;
}

std::vector<Request> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, const std::vector<Request>& requests) {
  for (const Request& req : requests) {
    switch (req.type) {
      case Request::Type::kWrite:
        out << "W " << req.sector << ' ' << req.count << ' '
            << (req.sync ? 1 : 0);
        if (req.think_us > 0.0) out << ' ' << req.think_us;
        out << '\n';
        break;
      case Request::Type::kRead:
        out << "R " << req.sector << ' ' << req.count << '\n';
        break;
      case Request::Type::kTrim:
        out << "T " << req.sector << ' ' << req.count << '\n';
        break;
      case Request::Type::kFlush:
        out << "F\n";
        break;
    }
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<Request>& requests) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  write_trace(out, requests);
}

}  // namespace esp::workload
