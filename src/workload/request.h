// Host request model shared by workload generators, traces and the driver.
#pragma once

#include <cstdint>
#include <optional>

#include "util/sim_time.h"

namespace esp::workload {

struct Request {
  enum class Type : std::uint8_t { kWrite, kRead, kTrim, kFlush };

  Type type = Type::kWrite;
  std::uint64_t sector = 0;  ///< first 4-KB sector
  std::uint32_t count = 0;   ///< sectors (0 allowed only for kFlush)
  bool sync = false;         ///< writes: must be durable at completion
  SimTime think_us = 0.0;    ///< host think time before issuing this request
  /// Originating namespace (tenant). 0 for single-tenant streams; the
  /// multi-tenant mux stamps it when it rebases a tenant-local request
  /// into the shared LBA space (see sim/tenant_mux.h).
  std::uint16_t tenant = 0;

  std::uint64_t bytes(std::uint32_t sector_bytes) const {
    return static_cast<std::uint64_t>(count) * sector_bytes;
  }
};

/// Pull-based request source consumed by the closed-loop driver.
class RequestSource {
 public:
  virtual ~RequestSource() = default;
  /// Next request, or nullopt at end of stream.
  virtual std::optional<Request> next() = 0;
};

}  // namespace esp::workload
