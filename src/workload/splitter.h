// Workload splitter for shared-nothing intra-cell sharding.
//
// A sharded experiment partitions one simulated device into N independent
// sub-simulations (see core/shard.h); this file owns the host-side half of
// that split: a STABLE mapping from global LBA to (shard, local LBA) and
// the machinery to partition one generated request stream into N per-shard
// streams.
//
// Routing is page-striped: the global logical space is divided into
// stripes of `stripe_pages` full pages, dealt round-robin across shards --
//
//   stripe(g)       = g / stripe_pages            (g = global page number)
//   shard(g)        = stripe(g) % shards
//   local_page(g)   = (stripe(g) / shards) * stripe_pages + g % stripe_pages
//
// -- so the mapping depends only on (shards, stripe_pages), never on
// thread schedule or request order, and a sequential global fill arrives
// at every shard as a sequential local fill. Stripe boundaries are
// page-aligned, so page-granular semantics (trim alignment, RMW edges)
// are preserved verbatim inside each sub-request.
//
// Requests that span a stripe boundary are split into per-shard
// sub-requests in ascending address order; flushes broadcast to every
// shard. Host think time is conserved per shard: every shard's arrival
// clock advances by the think time of EVERY original request (accumulated
// and attached to the shard's next sub-request), so each shard's simulated
// clock tracks the global stream's arrival timeline and sim-time-driven
// maintenance (retention scans) keeps its cadence.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/request.h"

namespace esp::workload {

class ShardSplitter {
 public:
  /// One routed piece of a global request.
  struct Sub {
    std::uint32_t shard = 0;
    Request request;  ///< shard-local addresses
  };

  /// @param shards           number of shards (>= 1)
  /// @param stripe_pages     stripe unit in full pages (>= 1)
  /// @param sectors_per_page subpages per page (Nsub)
  /// @param shard_capacity_sectors  logical sectors each shard can address;
  ///        the usable global space is the largest whole number of stripe
  ///        rounds that fits (throws std::invalid_argument if none does)
  ShardSplitter(std::uint32_t shards, std::uint32_t stripe_pages,
                std::uint32_t sectors_per_page,
                std::uint64_t shard_capacity_sectors);

  std::uint32_t shards() const { return shards_; }
  std::uint32_t stripe_pages() const { return stripe_pages_; }
  std::uint64_t stripe_sectors() const { return stripe_sectors_; }
  /// Global sectors the split stream may address: shards() whole stripes
  /// per round, every round fully resident on every shard.
  std::uint64_t usable_sectors() const { return usable_sectors_; }
  /// Shard-local sectors actually addressed (uniform across shards).
  std::uint64_t shard_sectors() const { return shard_sectors_; }

  std::uint32_t shard_of(std::uint64_t sector) const {
    return static_cast<std::uint32_t>((sector / stripe_sectors_) % shards_);
  }
  std::uint64_t to_local(std::uint64_t sector) const {
    const std::uint64_t stripe = sector / stripe_sectors_;
    return (stripe / shards_) * stripe_sectors_ + sector % stripe_sectors_;
  }

  /// Splits one global request into per-shard sub-requests, appended to
  /// `out` (cleared first) in ascending global-address order. Flushes
  /// produce one sub-request per shard. The original think time rides on
  /// the FIRST sub-request (later pieces of the same request arrive at the
  /// same host instant); partition_stream() below re-assigns think times
  /// with the per-shard conservation rule.
  void split(const Request& request, std::vector<Sub>& out) const;

 private:
  std::uint32_t shards_;
  std::uint32_t stripe_pages_;
  std::uint64_t stripe_sectors_;
  std::uint64_t shard_sectors_;
  std::uint64_t usable_sectors_;
};

/// One shard's slice of a partitioned stream.
struct ShardStream {
  std::vector<Request> requests;
  /// Sub-requests produced by the global warmup prefix (the first
  /// `warmup_requests` ORIGINAL requests): the shard's own warmup budget.
  std::uint64_t warmup_requests = 0;
};

/// Drains `source` (up to `max_requests` originals; 0 = to exhaustion) and
/// deals every request across shards with think-time conservation: each
/// original request's think time is credited to ALL shards, and a shard's
/// accumulated credit is attached to its next sub-request. Deterministic:
/// depends only on the source's sequence and the splitter's mapping.
std::vector<ShardStream> partition_stream(RequestSource& source,
                                          const ShardSplitter& splitter,
                                          std::uint64_t max_requests,
                                          std::uint64_t warmup_requests);

/// Replays a pre-materialized request vector (a ShardStream, a recorded
/// trace slice) through the RequestSource interface.
class VectorSource final : public RequestSource {
 public:
  explicit VectorSource(std::vector<Request> requests)
      : requests_(std::move(requests)) {}

  std::optional<Request> next() override {
    if (next_ >= requests_.size()) return std::nullopt;
    return requests_[next_++];
  }
  void reset() { next_ = 0; }
  std::size_t size() const { return requests_.size(); }

 private:
  std::vector<Request> requests_;
  std::size_t next_ = 0;
};

}  // namespace esp::workload
