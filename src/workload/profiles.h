// Named benchmark profiles matched to the paper's five evaluation
// workloads (Sec. 5, Table 1).
//
// We do not run the original applications; instead each profile is a
// SyntheticParams preset whose *reported characteristics* match the paper:
// the fraction of small (< Sfull) writes -- Table 1 row 1 -- and the
// sync-heaviness the paper cites ("more than 95%" sync small writes for
// Sysbench/Varmail/Postmark, large sequential flushes for YCSB/Cassandra
// and TPC-C). See DESIGN.md "Substitutions".
#pragma once

#include <string>
#include <vector>

#include "workload/synthetic.h"

namespace esp::workload {

enum class Benchmark { kSysbench, kVarmail, kPostmark, kYcsb, kTpcc };

/// All five paper benchmarks, in the order of Fig. 8 / Table 1.
const std::vector<Benchmark>& all_benchmarks();

std::string benchmark_name(Benchmark bench);

/// Builds the profile scaled to a device: `footprint_sectors` bounds the
/// touched LBA range and `request_count` the stream length.
SyntheticParams benchmark_profile(Benchmark bench,
                                  std::uint64_t footprint_sectors,
                                  std::uint64_t request_count,
                                  std::uint32_t sectors_per_page,
                                  std::uint64_t seed = 42);

}  // namespace esp::workload
