// Trace characterization: the paper's workload-analysis methodology
// (Sec. 2/5) as a library. Given any request stream, compute the knobs
// the ESP design reasons about -- the fraction of small writes (r_small),
// the sync fraction of those (r_synch), footprint, alignment, skew -- so a
// user can classify their own traces before predicting which FTL wins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/request.h"

namespace esp::workload {

struct TraceStats {
  std::uint64_t requests = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t trims = 0;
  std::uint64_t flushes = 0;

  std::uint64_t write_sectors = 0;
  std::uint64_t read_sectors = 0;

  std::uint64_t small_writes = 0;        ///< shorter than one full page
  std::uint64_t sync_small_writes = 0;
  std::uint64_t misaligned_large = 0;    ///< >= page but not page-aligned

  std::uint64_t footprint_sectors = 0;   ///< span: max touched sector + 1
  std::uint64_t distinct_write_sectors = 0;
  double write_skew_top10 = 0.0;  ///< traffic share of the hottest 10% sectors

  /// r_small: small writes / total writes (paper Sec. 2).
  double r_small() const {
    return writes ? static_cast<double>(small_writes) / writes : 0.0;
  }
  /// r_synch: sync small writes / small writes (paper Sec. 2).
  double r_synch() const {
    return small_writes
               ? static_cast<double>(sync_small_writes) / small_writes
               : 0.0;
  }
  double read_fraction() const {
    return requests ? static_cast<double>(reads) / requests : 0.0;
  }

  /// Human-readable multi-line report.
  std::string report(std::uint32_t sectors_per_page) const;

  /// Paper-style verdict: which FTL the characteristics favor and why.
  std::string recommendation() const;
};

/// Analyzes a request vector (e.g. from read_trace_file).
/// @param sectors_per_page  the device's Nsub (4 for the paper platform)
TraceStats analyze_trace(const std::vector<Request>& requests,
                         std::uint32_t sectors_per_page);

}  // namespace esp::workload
