#include "workload/synthetic.h"

#include <algorithm>
#include <stdexcept>

namespace esp::workload {

void SyntheticParams::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok)
      throw std::invalid_argument(std::string("SyntheticParams: ") + what);
  };
  require(footprint_sectors >= sectors_per_page,
          "footprint smaller than one page");
  require(request_count > 0, "request_count must be > 0");
  require(sectors_per_page > 0, "sectors_per_page must be > 0");
  require(r_small >= 0.0 && r_small <= 1.0, "r_small out of [0,1]");
  require(r_synch >= 0.0 && r_synch <= 1.0, "r_synch out of [0,1]");
  require(read_fraction >= 0.0 && read_fraction < 1.0,
          "read_fraction out of [0,1)");
  require(trim_fraction >= 0.0 && trim_fraction + read_fraction < 1.0,
          "trim_fraction + read_fraction must stay below 1");
  require(small_sectors_min >= 1 && small_sectors_min <= small_sectors_max,
          "bad small size range");
  require(small_sectors_max < sectors_per_page,
          "small requests must be shorter than a page");
  require(large_pages_min >= 1 && large_pages_min <= large_pages_max,
          "bad large size range");
  require(large_align_prob >= 0.0 && large_align_prob <= 1.0,
          "large_align_prob out of [0,1]");
  require(small_footprint_fraction > 0.0 && small_footprint_fraction <= 1.0,
          "small_footprint_fraction out of (0,1]");
  require(burst_gap_us >= 0.0, "burst_gap_us must be >= 0");
  require(burst_len == 0 || think_us > 0.0,
          "burst pacing requires open-loop arrivals (think_us > 0)");
}

SyntheticWorkload::SyntheticWorkload(const SyntheticParams& params)
    : params_(params),
      rng_(params.seed),
      small_picker_(
          std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(
                     params.small_footprint_fraction *
                     static_cast<double>(params.footprint_sectors /
                                         params.sectors_per_page))),
          params.small_zipf_theta),
      large_picker_(params.footprint_sectors / params.sectors_per_page,
                    params.large_zipf_theta),
      read_picker_(params.footprint_sectors / params.sectors_per_page,
                   params.read_zipf_theta) {
  params_.validate();
}

void SyntheticWorkload::reset() {
  rng_ = util::Xoshiro256(params_.seed);
  emitted_ = 0;
}

Request SyntheticWorkload::make_small_write() {
  Request req;
  req.type = Request::Type::kWrite;
  req.sync = rng_.chance(params_.r_synch);
  req.count = static_cast<std::uint32_t>(
      rng_.range(params_.small_sectors_min, params_.small_sectors_max));
  // The picker draws within the (possibly reduced) small-write working
  // set; a multiplicative hash scatters that set across the whole device.
  const std::uint64_t total_lpns =
      params_.footprint_sectors / params_.sectors_per_page;
  std::uint64_t lpn = small_picker_.sample(rng_);
  if (params_.small_footprint_fraction < 1.0)
    lpn = (lpn * (0xd1b54a32d192ed03ull | 1ull)) % total_lpns;
  // Offset within the page, aligned to the request size: filesystems
  // allocate small-file extents on natural boundaries, so an 8-KB append
  // lands on an 8-KB boundary rather than straddling two older writes.
  const std::uint32_t max_offset = params_.sectors_per_page - req.count;
  auto offset = static_cast<std::uint32_t>(rng_.below(max_offset + 1));
  offset = offset / req.count * req.count;
  req.sector = lpn * params_.sectors_per_page + offset;
  return req;
}

Request SyntheticWorkload::make_large_write() {
  Request req;
  req.type = Request::Type::kWrite;
  req.sync = params_.large_sync;
  const auto pages = static_cast<std::uint32_t>(
      rng_.range(params_.large_pages_min, params_.large_pages_max));
  req.count = pages * params_.sectors_per_page;
  const std::uint64_t total_lpns =
      params_.footprint_sectors / params_.sectors_per_page;
  std::uint64_t lpn = large_picker_.sample(rng_);
  lpn = std::min(lpn, total_lpns - pages);  // keep the request in range
  req.sector = lpn * params_.sectors_per_page;
  if (!rng_.chance(params_.large_align_prob)) {
    // Misaligned large write (footnote 1): shift by a sub-page offset; the
    // CGM scheme must split it into two partial-page services.
    const std::uint64_t limit = params_.footprint_sectors - req.count;
    const auto shift = 1 + rng_.below(params_.sectors_per_page - 1);
    req.sector = std::min(req.sector + shift, limit);
  }
  return req;
}

Request SyntheticWorkload::make_read() {
  Request req;
  req.type = Request::Type::kRead;
  req.count = 1 + static_cast<std::uint32_t>(
                      rng_.below(params_.sectors_per_page));
  const std::uint64_t total_lpns =
      params_.footprint_sectors / params_.sectors_per_page;
  std::uint64_t lpn;
  if (params_.reads_follow_small) {
    req.count = 1;  // latency-sensitive point reads of the hot set
    lpn = small_picker_.sample(rng_);
    if (params_.small_footprint_fraction < 1.0)
      lpn = (lpn * (0xd1b54a32d192ed03ull | 1ull)) % total_lpns;
  } else {
    lpn = read_picker_.sample(rng_);
  }
  lpn = std::min(lpn, total_lpns - 1);
  req.sector = lpn * params_.sectors_per_page;
  const std::uint64_t limit = params_.footprint_sectors - req.count;
  req.sector = std::min(req.sector, limit);
  return req;
}

Request SyntheticWorkload::make_trim() {
  // Page-aligned whole-page discards (files deleted by the filesystem).
  Request req;
  req.type = Request::Type::kTrim;
  const std::uint64_t total_lpns =
      params_.footprint_sectors / params_.sectors_per_page;
  const std::uint64_t lpn = std::min(large_picker_.sample(rng_),
                                     total_lpns - 1);
  req.sector = lpn * params_.sectors_per_page;
  req.count = params_.sectors_per_page;
  return req;
}

std::optional<Request> SyntheticWorkload::next() {
  if (emitted_ >= params_.request_count) return std::nullopt;
  ++emitted_;
  Request req;
  if (rng_.chance(params_.trim_fraction)) {
    req = make_trim();
  } else if (rng_.chance(params_.read_fraction)) {
    req = make_read();
  } else if (rng_.chance(params_.r_small)) {
    req = make_small_write();
  } else {
    req = make_large_write();
  }
  req.think_us = params_.think_us;
  if (params_.burst_len > 0 && (emitted_ - 1) % params_.burst_len == 0)
    req.think_us += params_.burst_gap_us;
  return req;
}

}  // namespace esp::workload
