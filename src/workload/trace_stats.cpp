#include "workload/trace_stats.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace esp::workload {

TraceStats analyze_trace(const std::vector<Request>& requests,
                         std::uint32_t sectors_per_page) {
  TraceStats stats;
  std::unordered_map<std::uint64_t, std::uint64_t> write_counts;
  std::uint64_t max_sector = 0;
  bool touched = false;

  for (const Request& req : requests) {
    ++stats.requests;
    switch (req.type) {
      case Request::Type::kWrite: {
        ++stats.writes;
        stats.write_sectors += req.count;
        if (req.count < sectors_per_page) {
          ++stats.small_writes;
          if (req.sync) ++stats.sync_small_writes;
        } else if (req.sector % sectors_per_page != 0) {
          ++stats.misaligned_large;
        }
        for (std::uint32_t i = 0; i < req.count; ++i)
          ++write_counts[req.sector + i];
        break;
      }
      case Request::Type::kRead:
        ++stats.reads;
        stats.read_sectors += req.count;
        break;
      case Request::Type::kTrim:
        ++stats.trims;
        break;
      case Request::Type::kFlush:
        ++stats.flushes;
        break;
    }
    if (req.count > 0) {
      max_sector = std::max(max_sector, req.sector + req.count - 1);
      touched = true;
    }
  }

  stats.footprint_sectors = touched ? max_sector + 1 : 0;
  stats.distinct_write_sectors = write_counts.size();

  // Traffic share of the hottest 10% of written sectors.
  if (!write_counts.empty()) {
    std::vector<std::uint64_t> counts;
    counts.reserve(write_counts.size());
    for (const auto& [sector, count] : write_counts)
      counts.push_back(count);
    std::sort(counts.begin(), counts.end(), std::greater<>());
    const std::size_t top = std::max<std::size_t>(1, counts.size() / 10);
    std::uint64_t top_traffic = 0, total_traffic = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      total_traffic += counts[i];
      if (i < top) top_traffic += counts[i];
    }
    stats.write_skew_top10 =
        total_traffic ? static_cast<double>(top_traffic) / total_traffic
                      : 0.0;
  }
  return stats;
}

std::string TraceStats::report(std::uint32_t sectors_per_page) const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "requests        : %llu (%llu writes, %llu reads, %llu trims, "
      "%llu flushes)\n"
      "write volume    : %.1f MiB over %llu distinct sectors "
      "(footprint %.1f MiB)\n"
      "r_small         : %.3f  (< %u sectors per request)\n"
      "r_synch         : %.3f  (sync fraction of small writes)\n"
      "misaligned bulk : %llu requests\n"
      "write skew      : hottest 10%% of sectors take %.0f%% of write "
      "traffic\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(writes),
      static_cast<unsigned long long>(reads),
      static_cast<unsigned long long>(trims),
      static_cast<unsigned long long>(flushes),
      static_cast<double>(write_sectors) * 4096.0 / (1024.0 * 1024.0),
      static_cast<unsigned long long>(distinct_write_sectors),
      static_cast<double>(footprint_sectors) * 4096.0 / (1024.0 * 1024.0),
      r_small(), sectors_per_page, r_synch(),
      static_cast<unsigned long long>(misaligned_large),
      write_skew_top10 * 100.0);
  return buf;
}

std::string TraceStats::recommendation() const {
  // The paper's decision logic: ESP pays off when sync small writes
  // dominate; a plain fine-grained scheme suffices when small writes are
  // mostly asynchronous; coarse mapping only survives bulk-sequential use.
  const double small = r_small();
  const double sync = r_synch();
  if (small > 0.5 && sync > 0.5)
    return "sync-small dominated: subFTL (ESP) -- expect large IOPS and "
           "lifetime gains over FGM/CGM";
  if (small > 0.5)
    return "async-small dominated: fgmFTL's merge buffer handles this; "
           "subFTL helps moderately";
  if (small > 0.1)
    return "mixed: subFTL or fgmFTL, within ~10-20% of each other";
  return "bulk dominated: all schemes comparable; pick cgmFTL for its "
         "minimal mapping memory";
}

}  // namespace esp::workload
