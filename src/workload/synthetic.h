// Synthetic workload generator parameterized the way the paper reasons
// about workloads: r_small (fraction of writes that are small), r_synch
// (fraction of small writes that are synchronous), update skew, alignment.
//
// The generator is deterministic given its seed, and generates:
//   * SMALL writes: shorter than one full page, LBA drawn from a scattered
//     Zipf distribution (small writes skew hot -- paper Sec. 4.1);
//   * LARGE writes: one or more full pages, colder and mostly aligned
//     (`large_align_prob` reproduces the misalignment that hurts CGM in
//     the paper's footnote 1);
//   * READS over the same footprint.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/zipf.h"
#include "workload/request.h"

namespace esp::workload {

struct SyntheticParams {
  std::uint64_t footprint_sectors = 0;  ///< LBA space touched (required)
  std::uint64_t request_count = 0;      ///< stream length (required)
  std::uint32_t sectors_per_page = 4;   ///< Nsub (full-page size in sectors)

  double r_small = 1.0;        ///< small writes / total writes
  double r_synch = 1.0;        ///< sync small writes / small writes
  double read_fraction = 0.0;  ///< reads / total requests
  double trim_fraction = 0.0;  ///< discards / total requests (page-aligned)

  std::uint32_t small_sectors_min = 1;  ///< small request size range
  std::uint32_t small_sectors_max = 1;
  std::uint32_t large_pages_min = 1;    ///< large request size in full pages
  std::uint32_t large_pages_max = 1;
  double large_align_prob = 1.0;  ///< P(large write starts page-aligned)
  bool large_sync = false;        ///< large writes synchronous too?

  double small_zipf_theta = 0.9;  ///< hot small-update skew
  double large_zipf_theta = 0.2;  ///< large writes much colder
  double read_zipf_theta = 0.6;

  /// Fraction of the footprint that small writes are confined to
  /// (scattered across the LBA space, not contiguous). Real workloads
  /// issue small writes against dedicated structures -- journals, redo
  /// logs, mail spools, metadata -- that cover a minority of the device.
  double small_footprint_fraction = 1.0;
  /// Draw reads from the small-write working set instead of the whole
  /// footprint (read-latency-sensitive services re-read what they just
  /// wrote; used by the subpage-read extension bench).
  bool reads_follow_small = false;

  SimTime think_us = 0.0;  ///< host think time per request (time dilation)

  /// Burst pacing (0 = steady stream): requests arrive in bursts of
  /// `burst_len`, spaced `think_us` apart WITHIN a burst, with
  /// `burst_gap_us` of host idle before each burst. Models duty-cycled
  /// bulk writers -- checkpoints, log segment flushes, compactions --
  /// whose arrival pattern is a deep backlog followed by silence, rather
  /// than a steady drizzle. Requires think_us > 0: intra-burst arrivals
  /// must stay open-loop (think 0 would flip the driver into closed-loop
  /// arrival clamping and erase the backlog's arrival ages).
  std::uint64_t burst_len = 0;
  SimTime burst_gap_us = 0.0;

  std::uint64_t seed = 42;

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

class SyntheticWorkload final : public RequestSource {
 public:
  explicit SyntheticWorkload(const SyntheticParams& params);

  std::optional<Request> next() override;

  const SyntheticParams& params() const { return params_; }
  std::uint64_t emitted() const { return emitted_; }
  /// Restarts the stream from the beginning (same sequence).
  void reset();

 private:
  Request make_small_write();
  Request make_large_write();
  Request make_read();
  Request make_trim();

  SyntheticParams params_;
  util::Xoshiro256 rng_;
  util::ScatteredZipf small_picker_;
  util::ScatteredZipf large_picker_;
  util::ScatteredZipf read_picker_;
  std::uint64_t emitted_ = 0;
};

}  // namespace esp::workload
