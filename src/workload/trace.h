// Trace file I/O: record and replay request streams.
//
// Text format, one request per line:
//   W <sector> <count> <sync 0|1> [think_us]
//   R <sector> <count>
//   T <sector> <count>
//   F
// '#'-prefixed lines are comments. The format is deliberately trivial so
// real block traces can be converted with a one-line awk script.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/request.h"

namespace esp::workload {

/// Parses a trace stream; throws std::runtime_error with a line number on
/// malformed input.
std::vector<Request> read_trace(std::istream& in);
std::vector<Request> read_trace_file(const std::string& path);

void write_trace(std::ostream& out, const std::vector<Request>& requests);
void write_trace_file(const std::string& path,
                      const std::vector<Request>& requests);

/// Replays a pre-recorded request vector as a RequestSource.
class TraceReplay final : public RequestSource {
 public:
  explicit TraceReplay(std::vector<Request> requests)
      : requests_(std::move(requests)) {}

  std::optional<Request> next() override {
    if (pos_ >= requests_.size()) return std::nullopt;
    return requests_[pos_++];
  }

  void reset() { pos_ = 0; }
  std::size_t size() const { return requests_.size(); }

 private:
  std::vector<Request> requests_;
  std::size_t pos_ = 0;
};

}  // namespace esp::workload
