#include "nand/geometry.h"

#include <cstdio>
#include <stdexcept>

namespace esp::nand {

void Geometry::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("Geometry: ") + what);
  };
  require(channels > 0, "channels must be > 0");
  require(chips_per_channel > 0, "chips_per_channel must be > 0");
  require(blocks_per_chip > 0, "blocks_per_chip must be > 0");
  require(pages_per_block > 0, "pages_per_block must be > 0");
  require(page_bytes > 0, "page_bytes must be > 0");
  require(subpages_per_page > 0, "subpages_per_page must be > 0");
  require(subpages_per_page <= kMaxSubpagesPerPage,
          "subpages_per_page exceeds kMaxSubpagesPerPage");
  require(page_bytes % subpages_per_page == 0,
          "page_bytes must be divisible by subpages_per_page");
}

Geometry paper_geometry() { return Geometry{}; }

Geometry prod_geometry() {
  Geometry g;
  g.blocks_per_chip = 2048;
  g.pages_per_block = 64;
  return g;
}

Geometry geometry_profile(const std::string& name) {
  if (name == "paper") return paper_geometry();
  if (name == "prod") return prod_geometry();
  throw std::invalid_argument("geometry_profile: unknown profile '" + name +
                              "' (expected paper|prod)");
}

std::string Geometry::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%uch x %uchip, %u blk/chip, %u pg/blk, %u KiB page, "
                "%u subpages, %.1f GiB",
                channels, chips_per_channel, blocks_per_chip, pages_per_block,
                page_bytes / 1024, subpages_per_page,
                static_cast<double>(capacity_bytes()) / (1024.0 * 1024 * 1024));
  return buf;
}

}  // namespace esp::nand
