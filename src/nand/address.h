// Physical addressing: strongly-typed page and subpage addresses.
//
// FTLs store *linear* sub-PPAs (one uint32/uint64 per mapping entry) and
// decode on demand; the device API takes structured addresses so bugs in
// arithmetic fail loudly at the boundary.
#pragma once

#include <cstdint>
#include <functional>

#include "nand/geometry.h"

namespace esp::nand {

/// Address of one physical full page (a word line's worth of data).
struct PageAddr {
  std::uint32_t chip = 0;
  std::uint32_t block = 0;
  std::uint32_t page = 0;

  bool operator==(const PageAddr&) const = default;
};

/// Address of one subpage slot within a physical page.
struct SubpageAddr {
  PageAddr page;
  std::uint32_t slot = 0;

  bool operator==(const SubpageAddr&) const = default;
};

/// Linear encodings. A linear sub-PPA enumerates subpages chip-major:
///   ((chip * blocks + block) * pages + page) * subs + slot
/// so that consecutive slots of a page are adjacent.
class AddressCodec {
 public:
  explicit AddressCodec(const Geometry& geo) : geo_(geo) {}

  std::uint64_t encode_page(const PageAddr& a) const {
    return (static_cast<std::uint64_t>(a.chip) * geo_.blocks_per_chip +
            a.block) * geo_.pages_per_block + a.page;
  }

  PageAddr decode_page(std::uint64_t lin) const {
    PageAddr a;
    a.page = static_cast<std::uint32_t>(lin % geo_.pages_per_block);
    lin /= geo_.pages_per_block;
    a.block = static_cast<std::uint32_t>(lin % geo_.blocks_per_chip);
    a.chip = static_cast<std::uint32_t>(lin / geo_.blocks_per_chip);
    return a;
  }

  std::uint64_t encode_subpage(const SubpageAddr& a) const {
    return encode_page(a.page) * geo_.subpages_per_page + a.slot;
  }

  SubpageAddr decode_subpage(std::uint64_t lin) const {
    SubpageAddr a;
    a.slot = static_cast<std::uint32_t>(lin % geo_.subpages_per_page);
    a.page = decode_page(lin / geo_.subpages_per_page);
    return a;
  }

  const Geometry& geometry() const { return geo_; }

 private:
  Geometry geo_;
};

/// Sentinel for "unmapped" entries in FTL tables.
inline constexpr std::uint64_t kUnmapped = ~0ull;

}  // namespace esp::nand
