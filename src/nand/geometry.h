// Physical organization of the simulated NAND subsystem.
//
// Mirrors the paper's evaluation platform: 8 channels x 4 TLC chips,
// 16-KB physical pages split into four 4-KB subpages. All counts are
// configurable; Geometry::validate() rejects inconsistent setups.
#pragma once

#include <cstdint>
#include <string>

namespace esp::nand {

/// Static shape of the flash array. Plain aggregate: no invariant beyond
/// what validate() checks, so members are public (CG C.2).
struct Geometry {
  std::uint32_t channels = 8;
  std::uint32_t chips_per_channel = 4;
  std::uint32_t blocks_per_chip = 128;
  std::uint32_t pages_per_block = 256;
  std::uint32_t page_bytes = 16 * 1024;
  std::uint32_t subpages_per_page = 4;

  // ---- derived quantities ----
  std::uint32_t total_chips() const { return channels * chips_per_channel; }
  std::uint64_t total_blocks() const {
    return static_cast<std::uint64_t>(total_chips()) * blocks_per_chip;
  }
  std::uint64_t pages_per_chip() const {
    return static_cast<std::uint64_t>(blocks_per_chip) * pages_per_block;
  }
  std::uint64_t total_pages() const {
    return total_blocks() * pages_per_block;
  }
  std::uint64_t total_subpages() const {
    return total_pages() * subpages_per_page;
  }
  std::uint32_t subpage_bytes() const { return page_bytes / subpages_per_page; }
  std::uint64_t block_bytes() const {
    return static_cast<std::uint64_t>(pages_per_block) * page_bytes;
  }
  std::uint64_t capacity_bytes() const {
    return total_blocks() * block_bytes();
  }

  std::uint32_t channel_of_chip(std::uint32_t chip) const {
    return chip / chips_per_channel;
  }

  /// Throws std::invalid_argument on zero counts, page size not divisible
  /// by subpage count, or more than kMaxSubpagesPerPage subpages.
  void validate() const;

  /// Human-readable one-liner ("8ch x 4chip, 128 blk/chip, ... 16 GiB").
  std::string describe() const;

  bool operator==(const Geometry&) const = default;
};

/// Upper bound baked into per-slot state arrays. Real large-page devices
/// top out at 16-KB pages / 4-KB ECC chunks; 8 leaves headroom.
inline constexpr std::uint32_t kMaxSubpagesPerPage = 8;

/// The paper's evaluation platform: 8 channels x 4 TLC chips, 128 blocks
/// per chip, 256 pages per block, 16-KB pages, 4 subpages = 16 GiB. This
/// is Geometry's default -- provided by name so callers can be explicit.
Geometry paper_geometry();

/// Production-scale profile for asymptotic/maintenance-path evaluation:
/// same channel/chip topology, 2048 blocks per chip with 64 pages per
/// block = 65,536 blocks, ~16.8M subpage slots, 64 GiB. The block count is
/// what stresses the per-scan maintenance paths (AERO, arXiv:2404.10355,
/// argues lifetime mechanisms must be evaluated at full-capacity
/// geometry); fewer pages per block keeps preconditioning runtimes sane.
Geometry prod_geometry();

/// Profile lookup by name ("paper" or "prod"); throws std::invalid_argument
/// on anything else. Shared by espsim / bench --geometry flags.
Geometry geometry_profile(const std::string& name);

}  // namespace esp::nand
