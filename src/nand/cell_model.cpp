#include "nand/cell_model.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace esp::nand {
namespace {

// Gray code: adjacent TLC levels differ in exactly one bit, so a one-level
// misread costs one bit error.
std::uint32_t to_gray(std::uint32_t v) { return v ^ (v >> 1); }

}  // namespace

WordLine::WordLine(std::uint32_t subpages, std::uint32_t cells_per_subpage,
                   const CellModelParams& params, util::Xoshiro256 rng)
    : subpages_(subpages),
      cells_(cells_per_subpage),
      bits_per_cell_(std::bit_width(params.levels) - 1),
      params_(params),
      rng_(rng),
      pe_cycles_(params.rated_pe_cycles),
      wl_(static_cast<std::size_t>(subpages) * cells_per_subpage) {
  if (subpages == 0 || cells_per_subpage == 0)
    throw std::invalid_argument("WordLine: empty geometry");
  if (params.levels < 2 || (params.levels & (params.levels - 1)) != 0)
    throw std::invalid_argument("WordLine: levels must be a power of two >= 2");
  erase();
}

void WordLine::set_pe_cycles(std::uint32_t pe) { pe_cycles_ = pe; }

void WordLine::erase() {
  programmed_ = 0;
  for (auto& cell : wl_) {
    cell.vth = rng_.gaussian(params_.erased_mean, params_.erased_sigma);
    cell.target = 0;
    cell.programmed = false;
    cell.npp = 0;
  }
}

double WordLine::level_mean(std::uint32_t level) const {
  // Level 0 is the erased state; program levels sit at 0, step, 2*step, ...
  if (level == 0) return params_.erased_mean;
  return static_cast<double>(level - 1) * params_.level_step;
}

std::uint32_t WordLine::read_level(double vth) const {
  // Read thresholds at midpoints between adjacent level means.
  std::uint32_t level = 0;
  for (std::uint32_t l = 0; l + 1 < params_.levels; ++l) {
    const double boundary = 0.5 * (level_mean(l) + level_mean(l + 1));
    if (vth > boundary) level = l + 1;
  }
  return level;
}

std::uint32_t WordLine::gray_distance_bits(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::uint32_t>(std::popcount(to_gray(a) ^ to_gray(b)));
}

void WordLine::program_subpage(std::uint32_t slot,
                               std::span<const std::uint8_t> levels) {
  if (slot >= subpages_)
    throw std::out_of_range("WordLine::program_subpage: slot out of range");
  if (slot != programmed_)
    throw std::logic_error(
        "WordLine::program_subpage: slots must be programmed sequentially");
  if (levels.size() != cells_)
    throw std::logic_error("WordLine::program_subpage: level count mismatch");

  const double wear_ratio = static_cast<double>(pe_cycles_) /
                            static_cast<double>(params_.rated_pe_cycles);
  const double sigma_wear =
      params_.pgm_sigma *
      (1.0 + params_.wear_sigma_slope * std::max(0.0, wear_ratio - 1.0));

  // The cells being programmed absorbed `programmed_` prior high-Vpgm
  // operations while inhibited; that stress widens their final placement.
  const double sigma = std::hypot(
      sigma_wear, params_.stress_sigma_per_npp * static_cast<double>(programmed_));

  // 1. Disturb every *other* cell on the word line (they are inhibited
  //    while this subpage's ISPP pulses run).
  for (std::uint32_t sp = 0; sp < subpages_; ++sp) {
    if (sp == slot) continue;
    for (std::uint32_t i = 0; i < cells_; ++i) {
      Cell& cell = wl_[static_cast<std::size_t>(sp) * cells_ + i];
      const double shift =
          cell.programmed
              ? rng_.gaussian(params_.disturb_programmed_mean,
                              params_.disturb_programmed_sigma)
              : rng_.gaussian(params_.disturb_erased_mean,
                              params_.disturb_erased_sigma);
      cell.vth += std::max(0.0, shift);
    }
  }

  // 2. Program the target cells. Cells whose target is the erased level
  //    stay inhibited (they keep their current, possibly soft-programmed,
  //    Vth) -- the SBPI scheme of Fig. 3.
  for (std::uint32_t i = 0; i < cells_; ++i) {
    Cell& cell = wl_[static_cast<std::size_t>(slot) * cells_ + i];
    cell.target = levels[i];
    cell.programmed = true;
    cell.npp = static_cast<std::uint8_t>(programmed_);
    if (levels[i] != 0)
      cell.vth = rng_.gaussian(level_mean(levels[i]), sigma);
  }
  ++programmed_;
}

void WordLine::program_subpage_random(std::uint32_t slot) {
  std::vector<std::uint8_t> levels(cells_);
  for (auto& level : levels)
    level = static_cast<std::uint8_t>(rng_.below(params_.levels));
  program_subpage(slot, levels);
}

void WordLine::disturb_all(double shift_mean, double shift_sigma) {
  for (auto& cell : wl_)
    cell.vth += std::max(0.0, rng_.gaussian(shift_mean, shift_sigma));
}

std::uint64_t WordLine::count_bit_errors(std::uint32_t slot, double months) {
  if (slot >= subpages_)
    throw std::out_of_range("WordLine::count_bit_errors: slot out of range");
  const double wear_ratio = static_cast<double>(pe_cycles_) /
                            static_cast<double>(params_.rated_pe_cycles);
  const double wear =
      1.0 + params_.wear_retention_slope * std::max(0.0, wear_ratio - 1.0);

  std::uint64_t errors = 0;
  for (std::uint32_t i = 0; i < cells_; ++i) {
    const Cell& cell = wl_[static_cast<std::size_t>(slot) * cells_ + i];
    if (!cell.programmed) continue;
    double vth = cell.vth;
    // Retention drift: charge loss pulls programmed (non-erased) cells
    // down; stress absorbed while inhibited accelerates detrapping.
    if (cell.target != 0 && months > 0.0) {
      const double mu =
          params_.retention_rate *
          (1.0 + params_.retention_kappa * static_cast<double>(cell.npp)) *
          wear * std::log1p(months / params_.retention_tau_months);
      const double drift =
          rng_.gaussian(mu, params_.retention_noise_frac * mu);
      vth -= std::max(0.0, drift);
    }
    errors += gray_distance_bits(read_level(vth), cell.target);
  }
  return errors;
}

double WordLine::raw_ber(std::uint32_t slot, double months) {
  const auto errors = count_bit_errors(slot, months);
  return static_cast<double>(errors) /
         (static_cast<double>(cells_) * bits_per_cell_);
}

double WordLine::mean_vth(std::uint32_t slot) const {
  if (slot >= subpages_)
    throw std::out_of_range("WordLine::mean_vth: slot out of range");
  double sum = 0.0;
  for (std::uint32_t i = 0; i < cells_; ++i)
    sum += wl_[static_cast<std::size_t>(slot) * cells_ + i].vth;
  return sum / cells_;
}

std::uint32_t WordLine::npp_of(std::uint32_t slot) const {
  if (slot >= subpages_)
    throw std::out_of_range("WordLine::npp_of: slot out of range");
  const Cell& cell = wl_[static_cast<std::size_t>(slot) * cells_];
  if (!cell.programmed)
    throw std::logic_error("WordLine::npp_of: slot not programmed");
  return cell.npp;
}

}  // namespace esp::nand
