#include "nand/retention_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esp::nand {

namespace {
// Npp types beyond this are not characterized by the paper (4 subpages per
// page -> at most 3 prior programs); the model extrapolates linearly but the
// conservative horizon only considers characterized types.
constexpr std::uint32_t kCharacterizedMaxNpp = 3;
}  // namespace

RetentionModel::RetentionModel(const RetentionModelParams& params)
    : params_(params), max_npp_(kCharacterizedMaxNpp) {
  if (params_.ecc_limit <= 1.0)
    throw std::invalid_argument(
        "RetentionModel: ecc_limit must exceed the endurance BER (1.0)");
  if (params_.rated_pe_cycles == 0)
    throw std::invalid_argument("RetentionModel: rated_pe_cycles must be > 0");
  // Full-page slope calibrated so rated-wear data hits the ECC limit exactly
  // at the JEDEC horizon: wear(rated)=1, base=1.
  fullpage_time_slope_ =
      (params_.ecc_limit - 1.0) / params_.fullpage_rated_months;
}

double RetentionModel::wear_factor(std::uint32_t pe_cycles) const {
  if (pe_cycles <= params_.rated_pe_cycles) return 1.0;
  const double excess = static_cast<double>(pe_cycles -
                                            params_.rated_pe_cycles) /
                        static_cast<double>(params_.rated_pe_cycles);
  return 1.0 + params_.overwear_slope * std::pow(excess, params_.wear_exponent);
}

double RetentionModel::subpage_ber(std::uint32_t npp, double months,
                                   std::uint32_t pe_cycles) const {
  const double base = 1.0 + params_.npp_base_slope * npp;
  const double growth =
      params_.time_slope * (1.0 + params_.npp_time_factor * npp) * months;
  return wear_factor(pe_cycles) * (base + growth);
}

double RetentionModel::fullpage_ber(double months,
                                    std::uint32_t pe_cycles) const {
  return wear_factor(pe_cycles) * (1.0 + fullpage_time_slope_ * months);
}

SimTime RetentionModel::subpage_horizon(std::uint32_t npp,
                                        std::uint32_t pe_cycles) const {
  const double wear = wear_factor(pe_cycles);
  const double base = 1.0 + params_.npp_base_slope * npp;
  const double headroom = params_.ecc_limit / wear - base;
  if (headroom <= 0.0) return 0.0;
  const double months =
      headroom / (params_.time_slope * (1.0 + params_.npp_time_factor * npp));
  return sim_time::from_months(months);
}

SimTime RetentionModel::fullpage_horizon(std::uint32_t pe_cycles) const {
  const double headroom = params_.ecc_limit / wear_factor(pe_cycles) - 1.0;
  if (headroom <= 0.0) return 0.0;
  return sim_time::from_months(headroom / fullpage_time_slope_);
}

SimTime RetentionModel::conservative_subpage_horizon() const {
  SimTime worst = subpage_horizon(0, params_.rated_pe_cycles);
  for (std::uint32_t k = 1; k <= max_npp_; ++k)
    worst = std::min(worst, subpage_horizon(k, params_.rated_pe_cycles));
  // The paper rounds its measured worst case down to exactly one month.
  return std::min(worst, sim_time::from_months(1.0));
}

}  // namespace esp::nand
