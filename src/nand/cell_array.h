// Structure-of-arrays Monte-Carlo cell kernel.
//
// This is the compute core behind WordLine/BlockCells (which are thin
// views over it). Physics identical to the original scalar model -- 8-level
// TLC Vth layout, Gray-coded bit mapping, ISPP placement spread widened by
// wear and inhibited-program stress, asymmetric program disturb, Npp- and
// wear-accelerated retention drift -- but stored and computed for paper-
// scale populations (the paper characterizes 81,920 pages across 20 chips):
//
//   * separate contiguous planes (vth / target / Gray-coded target) instead
//     of an array-of-structs, so every operation is a linear sweep;
//   * per-(word line, slot) npp/programmed state: both are uniform across a
//     subpage's cells by construction, which turns the per-cell retention
//     mean into a per-subpage scalar;
//   * all randomness drawn through util/batch_math block kernels (batched
//     Box-Muller, fused clipped-Gaussian adds, branchless boundary-table
//     quantization, popcount Gray reduction) -- one pass per subpage
//     instead of one scalar Gaussian per cell;
//   * one RNG stream PER WORD LINE, forked deterministically at
//     construction, so a word line's trajectory depends only on its seed
//     and its own operation sequence -- the property the parallel
//     characterization fan-out relies on (docs/CELL_MODEL.md).
//
// Distribution-equivalent to the scalar model, not stream-equivalent: the
// same seed yields different deviates than the old per-cell polar sampler.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace esp::nand {

struct CellModelParams {
  std::uint32_t levels = 8;        ///< TLC: 3 bits/cell
  double level_step = 0.8;         ///< Vth spacing between program levels
  double erased_mean = -3.0;
  double erased_sigma = 0.45;
  double pgm_sigma = 0.145;        ///< ISPP placement spread at rated wear
  double stress_sigma_per_npp = 0.014;  ///< widening per inhibited program
  // Disturb shifts applied to inhibited cells per program operation.
  double disturb_programmed_mean = 0.18;
  double disturb_programmed_sigma = 0.12;
  double disturb_erased_mean = 0.05;
  double disturb_erased_sigma = 0.03;
  // Retention drift: mu(t) = rate * (1 + kappa*npp) * wear * log1p(t/tau).
  double retention_rate = 0.0296;
  double retention_kappa = 0.35;
  double retention_tau_months = 0.5;
  double retention_noise_frac = 0.4;  ///< per-cell drift spread / mean drift
  // Wear scaling, relative to the rated 1K P/E cycles.
  std::uint32_t rated_pe_cycles = 1000;
  double wear_sigma_slope = 0.3;      ///< pgm_sigma *= 1 + slope*(pe/rated-1)
  double wear_retention_slope = 0.6;  ///< drift rate *= 1 + slope*(pe/rated-1)
};

/// `wordlines x subpages x cells_per_subpage` TLC cells in SoA planes.
class CellArray {
 public:
  CellArray(std::uint32_t wordlines, std::uint32_t subpages,
            std::uint32_t cells_per_subpage, const CellModelParams& params,
            util::Xoshiro256 rng);

  /// Applies P/E wear to the whole array (the paper pre-cycles to 1K).
  void set_pe_cycles(std::uint32_t pe);

  /// Erases word line `wl` (all cells back to the erased distribution).
  void erase(std::uint32_t wl);

  /// Programs one subpage of `wl` with the given per-cell target levels
  /// (values in [0, levels)). Must be the next unprogrammed slot. All
  /// other cells on the word line receive disturb shifts.
  void program_subpage(std::uint32_t wl, std::uint32_t slot,
                       std::span<const std::uint8_t> levels);

  /// Convenience: program a subpage with uniform-random data (reuses an
  /// internal scratch buffer -- no per-call allocation).
  void program_subpage_random(std::uint32_t wl, std::uint32_t slot);

  /// External disturbance on one word line: every cell receives a
  /// clipped-Gaussian Vth up-shift (adjacent-WL coupling).
  void disturb_all(std::uint32_t wl, double shift_mean, double shift_sigma);

  /// Raw bit errors in (wl, slot) after `months` of retention since that
  /// subpage was programmed. Monte-Carlo: each call draws fresh per-cell
  /// retention noise from the word line's stream.
  std::uint64_t count_bit_errors(std::uint32_t wl, std::uint32_t slot,
                                 double months);

  /// Raw BER = bit errors / (cells * bits_per_cell).
  double raw_ber(std::uint32_t wl, std::uint32_t slot, double months);

  std::uint32_t npp_of(std::uint32_t wl, std::uint32_t slot) const;
  /// Mean threshold voltage of a subpage's cells (characterization aid).
  double mean_vth(std::uint32_t wl, std::uint32_t slot) const;

  std::uint32_t wordlines() const { return wordlines_; }
  std::uint32_t subpages() const { return subpages_; }
  std::uint32_t cells_per_subpage() const { return cells_; }
  std::uint32_t bits_per_cell() const { return bits_per_cell_; }
  std::uint32_t slots_programmed(std::uint32_t wl) const;

 private:
  std::size_t slot_index(std::uint32_t wl, std::uint32_t slot) const {
    return static_cast<std::size_t>(wl) * subpages_ + slot;
  }
  std::size_t cell_base(std::uint32_t wl, std::uint32_t slot) const {
    return slot_index(wl, slot) * cells_;
  }
  void check_slot(std::uint32_t wl, std::uint32_t slot,
                  const char* what) const;

  std::uint32_t wordlines_;
  std::uint32_t subpages_;
  std::uint32_t cells_;
  std::uint32_t bits_per_cell_;
  CellModelParams params_;
  std::uint32_t pe_cycles_;

  // SoA planes, indexed [((wl * subpages) + slot) * cells + i]. vth is
  // single precision: float error (~1e-7 relative over a [-6, 7] V range)
  // is 4+ orders of magnitude below every modeled sigma, and halving the
  // plane footprint doubles SIMD lanes and keeps subpage sweeps in L1.
  std::vector<float> vth_;
  std::vector<std::uint8_t> target_;       ///< written level (if programmed)
  std::vector<std::uint8_t> target_gray_;  ///< Gray(target), for popcount

  // Per-(wl, slot) state: uniform across a subpage's cells by construction.
  std::vector<std::uint8_t> npp_;         ///< WL programs before this program
  std::vector<std::uint8_t> programmed_;  ///< 0/1
  std::vector<std::uint32_t> slots_programmed_;  ///< per wl

  std::vector<util::Xoshiro256> rng_;  ///< one stream per word line

  // Precomputed tables.
  std::vector<double> level_mean_;  ///< [levels]
  std::vector<float> boundaries_;   ///< read thresholds, [levels - 1]

  // Reused scratch (sized cells_): no allocation on any hot path.
  std::vector<float> z_scratch_;
  std::vector<float> vth_scratch_;
  std::vector<std::uint8_t> levels_scratch_;
  std::vector<std::uint8_t> gray_scratch_;
};

}  // namespace esp::nand
