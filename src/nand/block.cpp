#include "nand/block.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace esp::nand {

Block::Block(std::uint32_t pages_per_block, std::uint32_t subpages_per_page)
    : pages_(pages_per_block),
      subs_(subpages_per_page),
      mode_(pages_per_block, PageMode::kErased),
      programmed_(pages_per_block, 0),
      state_(static_cast<std::size_t>(pages_per_block) * subpages_per_page,
             SlotState::kEmpty),
      npp_(state_.size(), 0),
      token_(state_.size(), 0),
      written_at_(state_.size(), 0.0) {
  if (pages_ == 0 || subs_ == 0 || subs_ > kMaxSubpagesPerPage)
    throw std::invalid_argument("Block: bad page/subpage counts");
}

void Block::erase() {
  ++pe_cycles_;
  programmed_pages_ = 0;
  first_program_us_ = -1.0;
  std::fill(mode_.begin(), mode_.end(), PageMode::kErased);
  std::fill(programmed_.begin(), programmed_.end(), 0);
  std::fill(state_.begin(), state_.end(), SlotState::kEmpty);
  std::fill(npp_.begin(), npp_.end(), 0);
  std::fill(token_.begin(), token_.end(), 0);
  std::fill(written_at_.begin(), written_at_.end(), 0.0);
}

void Block::check_page(std::uint32_t page) const {
  if (page >= pages_)
    throw std::out_of_range("Block: page " + std::to_string(page) +
                            " out of range");
}

void Block::program_full(std::uint32_t page,
                         std::span<const std::uint64_t> tokens, SimTime now) {
  check_page(page);
  if (tokens.size() != subs_)
    throw std::logic_error("Block::program_full: token count != subpages");
  if (mode_[page] != PageMode::kErased)
    throw std::logic_error(
        "Block::program_full: page already programmed this erase cycle");
  mode_[page] = PageMode::kFull;
  programmed_[page] = static_cast<std::uint8_t>(subs_);
  if (programmed_pages_++ == 0) first_program_us_ = now;
  for (std::uint32_t s = 0; s < subs_; ++s) {
    const std::size_t i = idx(page, s);
    state_[i] = SlotState::kStored;
    npp_[i] = 0;
    token_[i] = tokens[s];
    written_at_[i] = now;
  }
}

void Block::program_subpage(std::uint32_t page, std::uint32_t slot,
                            std::uint64_t token, SimTime now) {
  check_page(page);
  if (slot >= subs_)
    throw std::out_of_range("Block::program_subpage: slot out of range");
  if (mode_[page] == PageMode::kFull)
    throw std::logic_error(
        "Block::program_subpage: page holds a full-page program");
  if (slot != programmed_[page])
    throw std::logic_error(
        "Block::program_subpage: slots must be programmed sequentially "
        "(next=" + std::to_string(programmed_[page]) +
        ", got=" + std::to_string(slot) + ")");
  // The physics of Fig. 4: the new program pulse destroys data in every
  // previously programmed slot of this word line.
  for (std::uint32_t s = 0; s < slot; ++s) {
    const std::size_t i = idx(page, s);
    if (state_[i] == SlotState::kStored) state_[i] = SlotState::kCorrupted;
  }
  const std::size_t i = idx(page, slot);
  state_[i] = SlotState::kStored;
  npp_[i] = programmed_[page];  // k prior program ops -> Npp^k type
  token_[i] = token;
  written_at_[i] = now;
  if (programmed_[page] == 0) {
    mode_[page] = PageMode::kEsp;
    if (programmed_pages_++ == 0) first_program_us_ = now;
  }
  ++programmed_[page];
}

SlotView Block::slot(std::uint32_t page, std::uint32_t slot) const {
  check_page(page);
  if (slot >= subs_)
    throw std::out_of_range("Block::slot: slot out of range");
  const std::size_t i = idx(page, slot);
  return SlotView{state_[i], token_[i], written_at_[i], npp_[i]};
}

bool Block::is_erased() const { return programmed_pages_ == 0; }

void Block::save_state(util::StateWriter& w) const {
  w.tag("BLK0");
  w.u32(pages_);
  w.u32(subs_);
  w.u32(pe_cycles_);
  w.u32(programmed_pages_);
  w.f64(first_program_us_);
  w.pod_vec(mode_);
  w.pod_vec(programmed_);
  w.pod_vec(state_);
  w.pod_vec(npp_);
  w.pod_vec(token_);
  w.pod_vec(written_at_);
}

void Block::load_state(util::StateReader& r) {
  r.tag("BLK0");
  const std::uint32_t pages = r.u32();
  const std::uint32_t subs = r.u32();
  if (pages != pages_ || subs != subs_)
    throw std::runtime_error("Block::load_state: geometry mismatch");
  pe_cycles_ = r.u32();
  programmed_pages_ = r.u32();
  first_program_us_ = r.f64();
  r.pod_vec(mode_);
  r.pod_vec(programmed_);
  r.pod_vec(state_);
  r.pod_vec(npp_);
  r.pod_vec(token_);
  r.pod_vec(written_at_);
  if (mode_.size() != pages_ || programmed_.size() != pages_ ||
      state_.size() != static_cast<std::size_t>(pages_) * subs_ ||
      npp_.size() != state_.size() || token_.size() != state_.size() ||
      written_at_.size() != state_.size())
    throw std::runtime_error("Block::load_state: corrupt slot arrays");
}

}  // namespace esp::nand
