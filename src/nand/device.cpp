#include "nand/device.h"

#include <algorithm>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace esp::nand {

NandDevice::NandDevice(const Geometry& geo, const TimingSpec& timing,
                       const RetentionModel& retention)
    : geo_(geo),
      timing_(timing),
      retention_(retention),
      channel_busy_until_(geo.channels, 0.0),
      chip_busy_until_(geo.total_chips(), 0.0),
      chip_busy_accum_(geo.total_chips(), 0.0),
      channel_busy_accum_(geo.channels, 0.0) {
  geo_.validate();
  blocks_.reserve(static_cast<std::size_t>(geo_.total_chips()) *
                  geo_.blocks_per_chip);
  for (std::uint32_t c = 0; c < geo_.total_chips(); ++c)
    for (std::uint32_t b = 0; b < geo_.blocks_per_chip; ++b)
      blocks_.emplace_back(geo_.pages_per_block, geo_.subpages_per_page);
}

Block& NandDevice::block_ref(std::uint32_t chip, std::uint32_t blk) {
  if (chip >= geo_.total_chips() || blk >= geo_.blocks_per_chip)
    throw std::out_of_range("NandDevice: chip/block out of range");
  return blocks_[static_cast<std::size_t>(chip) * geo_.blocks_per_chip + blk];
}

const Block& NandDevice::block(std::uint32_t chip, std::uint32_t blk) const {
  if (chip >= geo_.total_chips() || blk >= geo_.blocks_per_chip)
    throw std::out_of_range("NandDevice: chip/block out of range");
  return blocks_[static_cast<std::size_t>(chip) * geo_.blocks_per_chip + blk];
}

SimTime NandDevice::schedule(std::uint32_t chip, SimTime array_us,
                             std::uint64_t xfer_bytes, bool transfer_first,
                             SimTime now) {
  const std::uint32_t ch = geo_.channel_of_chip(chip);
  const SimTime xfer = xfer_bytes ? timing_.transfer_us(xfer_bytes)
                                  : timing_.cmd_overhead_us;
  const SimTime start =
      std::max({now, channel_busy_until_[ch], chip_busy_until_[chip]});
  SimTime done;
  if (transfer_first) {
    // Write path: data moves over the channel, then the array programs.
    channel_busy_until_[ch] = start + xfer;
    done = start + xfer + array_us;
  } else {
    // Read path: array senses first, then data moves over the channel.
    channel_busy_until_[ch] = start + array_us + xfer;
    done = start + array_us + xfer;
  }
  chip_busy_until_[chip] = done;
  chip_busy_accum_[chip] += done - start;
  channel_busy_accum_[ch] += xfer;
  return done;
}

OpAck NandDevice::program_full(const PageAddr& addr,
                               std::span<const std::uint64_t> tokens,
                               SimTime now) {
  Block& blk = block_ref(addr.chip, addr.block);
  blk.program_full(addr.page, tokens, now);
  ++counters_.progs_full;
  OpAck ack{schedule(addr.chip, timing_.prog_full_us, geo_.page_bytes,
                     /*transfer_first=*/true, now)};
  if (sink_)
    sink_->record_op({telemetry::OpKind::kProgFull, now, ack.done, addr.page,
                      0, addr.chip, addr.block});
  return ack;
}

OpAck NandDevice::program_subpage(const SubpageAddr& addr, std::uint64_t token,
                                  SimTime now) {
  Block& blk = block_ref(addr.page.chip, addr.page.block);
  blk.program_subpage(addr.page.page, addr.slot, token, now);
  ++counters_.progs_sub;
  OpAck ack{schedule(addr.page.chip, timing_.prog_sub_us,
                     geo_.subpage_bytes(), /*transfer_first=*/true, now)};
  if (sink_)
    sink_->record_op({telemetry::OpKind::kProgSub, now, ack.done, addr.slot,
                      addr.page.page, addr.page.chip, addr.page.block});
  return ack;
}

ReadStatus NandDevice::verdict(const Block& blk, std::uint32_t page,
                               std::uint32_t slot, SimTime now) {
  const SlotView view = blk.slot(page, slot);
  switch (view.state) {
    case SlotState::kEmpty:
      return ReadStatus::kEmpty;
    case SlotState::kCorrupted:
      ++counters_.corrupted_reads;
      return ReadStatus::kCorrupted;
    case SlotState::kStored:
      break;
  }
  const SimTime age = now - view.written_at;
  if (reliability_mode_ == ReliabilityMode::kDeterministic) {
    const SimTime horizon =
        blk.page_mode(page) == PageMode::kFull
            ? retention_.fullpage_horizon(blk.pe_cycles())
            : retention_.subpage_horizon(view.npp, blk.pe_cycles());
    if (age > horizon) {
      ++counters_.uncorrectable_reads;
      return ReadStatus::kUncorrectable;
    }
  } else {
    // Probabilistic: map the normalized model BER to a raw BER such that
    // the normalized ECC limit coincides with the code's capability, then
    // draw each of the subpage's codewords from the binomial tail.
    const double months = age / sim_time::kMonth;
    const double norm_ber =
        blk.page_mode(page) == PageMode::kFull
            ? retention_.fullpage_ber(months, blk.pe_cycles())
            : retention_.subpage_ber(view.npp, months, blk.pe_cycles());
    const double raw_ber = norm_ber * ecc_.spec().max_raw_ber() /
                           retention_.params().ecc_limit;
    const double p_codeword = ecc_.uncorrectable_probability(raw_ber);
    const auto codewords = ecc_.codewords_for(geo_.subpage_bytes());
    double p_ok = 1.0;
    for (std::uint32_t i = 0; i < codewords; ++i) p_ok *= 1.0 - p_codeword;
    if (fault_rng_.chance(1.0 - p_ok)) {
      ++counters_.uncorrectable_reads;
      return ReadStatus::kUncorrectable;
    }
  }
  if (fault_prob_ > 0.0 && fault_rng_.chance(fault_prob_)) {
    ++counters_.uncorrectable_reads;
    return ReadStatus::kUncorrectable;
  }
  return ReadStatus::kOk;
}

ReadAck NandDevice::read_subpage(const SubpageAddr& addr, SimTime now) {
  const Block& blk = block(addr.page.chip, addr.page.block);
  ReadAck ack;
  ack.status = verdict(blk, addr.page.page, addr.slot, now);
  ack.token = blk.slot(addr.page.page, addr.slot).token;
  ++counters_.reads_sub;
  ack.done = schedule(addr.page.chip, timing_.read_sub_us,
                      geo_.subpage_bytes(), /*transfer_first=*/false, now);
  if (sink_ && sink_->wants_op(telemetry::OpKind::kRead))
    sink_->record_op({telemetry::OpKind::kRead, now, ack.done, 1, 0,
                      addr.page.chip, addr.page.block});
  return ack;
}

PageReadAck NandDevice::read_page(const PageAddr& addr, SimTime now) {
  const Block& blk = block(addr.chip, addr.block);
  PageReadAck ack;
  for (std::uint32_t s = 0; s < geo_.subpages_per_page; ++s) {
    ack.status[s] = verdict(blk, addr.page, s, now);
    ack.token[s] = blk.slot(addr.page, s).token;
  }
  ++counters_.reads_full;
  ack.done = schedule(addr.chip, timing_.read_full_us, geo_.page_bytes,
                      /*transfer_first=*/false, now);
  if (sink_ && sink_->wants_op(telemetry::OpKind::kRead))
    sink_->record_op({telemetry::OpKind::kRead, now, ack.done,
                      geo_.subpages_per_page, 0, addr.chip, addr.block});
  return ack;
}

OpAck NandDevice::copyback(const PageAddr& src, const PageAddr& dst,
                           SimTime now) {
  if (src.chip != dst.chip)
    throw std::logic_error("NandDevice::copyback: pages must share a chip");
  const Block& src_blk = block(src.chip, src.block);
  std::vector<std::uint64_t> tokens(geo_.subpages_per_page);
  for (std::uint32_t s = 0; s < geo_.subpages_per_page; ++s)
    tokens[s] = src_blk.slot(src.page, s).token;
  Block& dst_blk = block_ref(dst.chip, dst.block);
  dst_blk.program_full(dst.page, tokens, now);
  ++counters_.reads_full;
  ++counters_.progs_full;
  // Chip busy for sense + program; only command overhead on the channel.
  OpAck ack{schedule(src.chip, timing_.read_full_us + timing_.prog_full_us,
                     /*xfer_bytes=*/0, /*transfer_first=*/true, now)};
  if (sink_)
    sink_->record_op({telemetry::OpKind::kProgFull, now, ack.done, dst.page,
                      0, dst.chip, dst.block});
  return ack;
}

OpAck NandDevice::erase_block(std::uint32_t chip, std::uint32_t block,
                              SimTime now) {
  Block& blk = block_ref(chip, block);
  blk.erase();
  ++counters_.erases;
  max_pe_cycles_ = std::max(max_pe_cycles_, blk.pe_cycles());
  OpAck ack{schedule(chip, timing_.erase_us, /*xfer_bytes=*/0,
                     /*transfer_first=*/true, now)};
  if (sink_)
    sink_->record_op({telemetry::OpKind::kErase, now, ack.done,
                      blk.pe_cycles(), 0, chip, block});
  return ack;
}

void NandDevice::set_telemetry(telemetry::Sink* sink) {
  sink_ = sink;
  if (!sink_) return;
  telemetry::MetricsRegistry& reg = sink_->registry();
  reg.bind_counter("nand/reads_full", &counters_.reads_full);
  reg.bind_counter("nand/reads_sub", &counters_.reads_sub);
  reg.bind_counter("nand/progs_full", &counters_.progs_full);
  reg.bind_counter("nand/progs_sub", &counters_.progs_sub);
  reg.bind_counter("nand/erases", &counters_.erases);
  reg.bind_counter("nand/uncorrectable_reads", &counters_.uncorrectable_reads);
  reg.bind_counter("nand/corrupted_reads", &counters_.corrupted_reads);
}

void NandDevice::fill_block_health(
    std::span<telemetry::BlockHealth> out) const {
  const std::size_t n = std::min(out.size(), blocks_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Block& blk = blocks_[i];
    out[i].pe = blk.pe_cycles();
    out[i].programmed_pages = blk.programmed_pages();
    out[i].first_program_us = blk.first_program_us();
  }
}

void NandDevice::apply_synthetic_wear(std::uint32_t chip, std::uint32_t block,
                                      std::uint32_t cycles) {
  if (cycles == 0) return;
  Block& blk = block_ref(chip, block);
  blk.add_wear(cycles);
  synthetic_erases_ += cycles;
  max_pe_cycles_ = std::max(max_pe_cycles_, blk.pe_cycles());
}

void NandDevice::save_state(util::StateWriter& w) const {
  w.tag("NAND");
  w.u64(blocks_.size());
  for (const Block& blk : blocks_) blk.save_state(w);
  w.pod_vec(channel_busy_until_);
  w.pod_vec(chip_busy_until_);
  w.pod_vec(chip_busy_accum_);
  w.pod_vec(channel_busy_accum_);
  w.u64(counters_.reads_full);
  w.u64(counters_.reads_sub);
  w.u64(counters_.progs_full);
  w.u64(counters_.progs_sub);
  w.u64(counters_.erases);
  w.u64(counters_.uncorrectable_reads);
  w.u64(counters_.corrupted_reads);
  w.u64(synthetic_erases_);
  w.u32(max_pe_cycles_);
  w.f64(fault_prob_);
  const util::Xoshiro256::State rs = fault_rng_.state();
  w.raw(&rs, sizeof rs);
  w.u8(static_cast<std::uint8_t>(reliability_mode_));
}

void NandDevice::load_state(util::StateReader& r) {
  r.tag("NAND");
  if (r.u64() != blocks_.size())
    throw std::runtime_error("NandDevice::load_state: geometry mismatch");
  for (Block& blk : blocks_) blk.load_state(r);
  r.pod_vec(channel_busy_until_);
  r.pod_vec(chip_busy_until_);
  r.pod_vec(chip_busy_accum_);
  r.pod_vec(channel_busy_accum_);
  if (channel_busy_until_.size() != geo_.channels ||
      chip_busy_until_.size() != geo_.total_chips() ||
      chip_busy_accum_.size() != geo_.total_chips() ||
      channel_busy_accum_.size() != geo_.channels)
    throw std::runtime_error("NandDevice::load_state: corrupt busy clocks");
  counters_.reads_full = r.u64();
  counters_.reads_sub = r.u64();
  counters_.progs_full = r.u64();
  counters_.progs_sub = r.u64();
  counters_.erases = r.u64();
  counters_.uncorrectable_reads = r.u64();
  counters_.corrupted_reads = r.u64();
  synthetic_erases_ = r.u64();
  max_pe_cycles_ = r.u32();
  fault_prob_ = r.f64();
  util::Xoshiro256::State rs;
  r.raw(&rs, sizeof rs);
  fault_rng_.set_state(rs);
  reliability_mode_ = static_cast<ReliabilityMode>(r.u8());
}

void NandDevice::set_read_fault_injection(double probability,
                                          std::uint64_t seed) {
  fault_prob_ = std::clamp(probability, 0.0, 1.0);
  fault_rng_ = util::Xoshiro256(seed);
}

void NandDevice::set_reliability_mode(ReliabilityMode mode,
                                      std::uint64_t seed) {
  reliability_mode_ = mode;
  fault_rng_ = util::Xoshiro256(seed);
}

}  // namespace esp::nand
