// Subpage-aware NAND retention model (paper Sec. 3.3, Fig. 5).
//
// The paper characterizes 2x-nm TLC chips and finds that the retention BER
// of a subpage grows with (a) the number k of program operations the word
// line saw *before* this subpage was programmed (its Npp^k type), (b) the
// elapsed retention time, and (c) accumulated P/E wear. This behavioral
// model reproduces the published calibration points:
//
//   * BER(Npp^3) / BER(Npp^0) = 1.41 right after 1K P/E cycles (t = 0)
//   * every Npp type satisfies a 1-month retention requirement
//   * Npp^3 exceeds the ECC limit before 2 months
//   * normal full-page data meets the JEDEC 1-year requirement
//
// All BER values are *normalized to the endurance BER* (the BER of an
// Npp^0 subpage right after the rated 1K P/E cycles), matching Fig. 5's
// y-axis, so the ECC limit is likewise a normalized ratio.
#pragma once

#include <cstdint>

#include "util/sim_time.h"

namespace esp::nand {

struct RetentionModelParams {
  double npp_base_slope = 0.1367;   ///< base(k) = 1 + slope*k  (k=3 -> 1.41)
  double time_slope = 0.18;         ///< per-month growth scale
  double npp_time_factor = 1.0;     ///< growth multiplier = 1 + factor*k ... see ber()
  double ecc_limit = 2.4;           ///< normalized max correctable BER (Fig. 5 line)
  std::uint32_t rated_pe_cycles = 1000;  ///< TLC endurance requirement
  /// Retention specs are qualified AT rated endurance (JEDEC style): the
  /// BER surface is flat in wear up to rated_pe_cycles and degrades beyond.
  double overwear_slope = 1.0;
  double wear_exponent = 0.85;
  double fullpage_rated_months = 12.0;   ///< JEDEC commercial requirement
};

/// Deterministic retention-BER surface + derived safety horizons.
class RetentionModel {
 public:
  RetentionModel() : RetentionModel(RetentionModelParams{}) {}
  explicit RetentionModel(const RetentionModelParams& params);

  /// Normalized retention BER of an Npp^k subpage after `months` of
  /// retention with `pe_cycles` of prior wear.
  double subpage_ber(std::uint32_t npp, double months,
                     std::uint32_t pe_cycles) const;

  /// Normalized retention BER of full-page-programmed data. Calibrated so
  /// the rated-P/E page hits the ECC limit exactly at the JEDEC horizon.
  double fullpage_ber(double months, std::uint32_t pe_cycles) const;

  /// True when data with the given BER is still ECC-correctable.
  bool correctable(double normalized_ber) const {
    return normalized_ber <= params_.ecc_limit;
  }

  /// Longest retention (simulated time) an Npp^k subpage can guarantee at
  /// the given wear. Solves subpage_ber == ecc_limit.
  SimTime subpage_horizon(std::uint32_t npp, std::uint32_t pe_cycles) const;

  /// Longest retention for full-page data at the given wear.
  SimTime fullpage_horizon(std::uint32_t pe_cycles) const;

  /// The paper's conservative FTL-facing bound: "each subpage can hold its
  /// data properly for one month only" -- the horizon of the worst Npp type
  /// at rated wear, floored at one month.
  SimTime conservative_subpage_horizon() const;

  const RetentionModelParams& params() const { return params_; }

 private:
  double wear_factor(std::uint32_t pe_cycles) const;

  RetentionModelParams params_;
  std::uint32_t max_npp_;
  double fullpage_time_slope_;
};

}  // namespace esp::nand
