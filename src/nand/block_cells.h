// Multi-word-line cell model: a block's worth of word lines with
// inter-word-line coupling, as a thin view over the SoA CellArray kernel.
//
// The paper's Fig. 4 attributes subpage-program damage to "cell-to-cell
// coupling effect from neighboring cells and program disturbance". The
// WordLine model covers the within-WL part (inhibited cells of the SAME
// word line); this model adds the across-WL part: programming word line k
// up-shifts cells of word lines k-1 and k+1 (floating-gate capacitive
// coupling), which is why real NAND mandates sequential page programming
// within a block and why ESP's extra program pulses also tax neighbors.
//
// Used by characterization tests/benches; the behavioral simulator's
// retention model already absorbs the aggregate effect.
#pragma once

#include <cstdint>

#include "nand/cell_array.h"

namespace esp::nand {

struct BlockCellParams {
  CellModelParams cell;          ///< per-WL physics
  /// Mean/std of the Vth up-shift a programmed neighbor cell receives per
  /// program operation on an adjacent word line (the residual after the
  /// controller's read-reference compensation). Small relative to the
  /// within-WL disturb: one neighbor program is budgeted-for by the ECC
  /// margin; ESP's repeated programs consume more of it.
  double neighbor_shift_mean = 0.008;
  double neighbor_shift_sigma = 0.008;
};

/// A column of word lines with adjacent-WL coupling on every program.
class BlockCells {
 public:
  BlockCells(std::uint32_t wordlines, std::uint32_t subpages,
             std::uint32_t cells_per_subpage, const BlockCellParams& params,
             util::Xoshiro256 rng);

  /// Programs the next subpage slot of word line `wl` with random data and
  /// applies coupling to the adjacent word lines.
  void program_subpage_random(std::uint32_t wl);

  /// Programs all slots of word line `wl` (a full-page program).
  void program_full_random(std::uint32_t wl);

  /// Raw BER of (wl, slot) after `months` of retention.
  double raw_ber(std::uint32_t wl, std::uint32_t slot, double months);

  std::uint32_t wordlines() const { return cells_.wordlines(); }
  std::uint32_t slots_programmed(std::uint32_t wl) const {
    return cells_.slots_programmed(wl);
  }
  double mean_vth(std::uint32_t wl, std::uint32_t slot) const {
    return cells_.mean_vth(wl, slot);
  }

 private:
  void couple_neighbors(std::uint32_t wl);

  BlockCellParams params_;
  CellArray cells_;
};

}  // namespace esp::nand
