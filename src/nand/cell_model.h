// Monte-Carlo threshold-voltage model of one TLC word line.
//
// This substitutes for the paper's characterization of real 2x-nm TLC
// chips (81,920 pages from 20 chips). It models, per cell:
//
//   * an 8-level TLC Vth layout with Gray-coded bit mapping (adjacent
//     levels differ in one bit);
//   * program noise (ISPP placement spread), widened by P/E wear and by
//     the high-Vpgm stress a cell absorbed while INHIBITED during earlier
//     subpage programs on the same word line (this produces the Npp^k
//     t=0 BER ordering of Fig. 5);
//   * program disturbance: every program operation on the word line
//     up-shifts inhibited cells -- mildly for still-erased cells (soft
//     programming), destructively for already-programmed cells, which is
//     exactly the asymmetry that makes ESP viable (Fig. 4);
//   * retention: programmed cells drift down ~ log(1 + t/tau), faster for
//     cells with more pre-program stress (higher Npp) and for worn blocks.
//
// The FTL-facing simulator never touches this model (it uses the
// calibrated behavioral RetentionModel); only the characterization benches
// (fig4/fig5) and their tests do.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace esp::nand {

struct CellModelParams {
  std::uint32_t levels = 8;        ///< TLC: 3 bits/cell
  double level_step = 0.8;         ///< Vth spacing between program levels
  double erased_mean = -3.0;
  double erased_sigma = 0.45;
  double pgm_sigma = 0.145;        ///< ISPP placement spread at rated wear
  double stress_sigma_per_npp = 0.014;  ///< widening per inhibited program
  // Disturb shifts applied to inhibited cells per program operation.
  double disturb_programmed_mean = 0.18;
  double disturb_programmed_sigma = 0.12;
  double disturb_erased_mean = 0.05;
  double disturb_erased_sigma = 0.03;
  // Retention drift: mu(t) = rate * (1 + kappa*npp) * wear * log1p(t/tau).
  double retention_rate = 0.0296;
  double retention_kappa = 0.35;
  double retention_tau_months = 0.5;
  double retention_noise_frac = 0.4;  ///< per-cell drift spread / mean drift
  // Wear scaling, relative to the rated 1K P/E cycles.
  std::uint32_t rated_pe_cycles = 1000;
  double wear_sigma_slope = 0.3;      ///< pgm_sigma *= 1 + slope*(pe/rated-1)
  double wear_retention_slope = 0.6;  ///< drift rate *= 1 + slope*(pe/rated-1)
};

/// One word line of `subpages * cells_per_subpage` TLC cells.
class WordLine {
 public:
  WordLine(std::uint32_t subpages, std::uint32_t cells_per_subpage,
           const CellModelParams& params, util::Xoshiro256 rng);

  /// Applies P/E wear (the paper pre-cycles to 1K before measuring).
  void set_pe_cycles(std::uint32_t pe);

  /// Erases the word line (all cells back to the erased distribution).
  void erase();

  /// Programs one subpage with the given per-cell target levels
  /// (values in [0, levels)). Must be the next unprogrammed slot.
  /// All other cells on the word line receive disturb shifts.
  void program_subpage(std::uint32_t slot,
                       std::span<const std::uint8_t> levels);

  /// Convenience: program a subpage with uniform-random data.
  void program_subpage_random(std::uint32_t slot);

  /// External disturbance: every cell receives a clipped-Gaussian Vth
  /// up-shift (used by BlockCells to model coupling from programs on
  /// ADJACENT word lines).
  void disturb_all(double shift_mean, double shift_sigma);

  /// Counts raw bit errors in the given subpage after `months` of
  /// retention since that subpage was programmed. Monte-Carlo: each call
  /// draws fresh per-cell retention noise.
  std::uint64_t count_bit_errors(std::uint32_t slot, double months);

  /// Raw BER = bit errors / (cells * bits_per_cell).
  double raw_ber(std::uint32_t slot, double months);

  std::uint32_t npp_of(std::uint32_t slot) const;
  /// Mean threshold voltage of a subpage's cells (characterization aid).
  double mean_vth(std::uint32_t slot) const;
  std::uint32_t subpages() const { return subpages_; }
  std::uint32_t cells_per_subpage() const { return cells_; }
  std::uint32_t bits_per_cell() const { return bits_per_cell_; }
  std::uint32_t slots_programmed() const { return programmed_; }

 private:
  struct Cell {
    double vth = 0.0;
    std::uint8_t target = 0;       ///< written level (valid if programmed)
    bool programmed = false;
    std::uint8_t npp = 0;          ///< WL programs before this cell's program
  };

  double level_mean(std::uint32_t level) const;
  std::uint32_t read_level(double vth) const;
  static std::uint32_t gray_distance_bits(std::uint32_t a, std::uint32_t b);

  std::uint32_t subpages_;
  std::uint32_t cells_;
  std::uint32_t bits_per_cell_;
  CellModelParams params_;
  util::Xoshiro256 rng_;
  std::uint32_t pe_cycles_;
  std::uint32_t programmed_ = 0;  ///< program ops on this WL this cycle
  std::vector<Cell> wl_;          ///< [slot * cells + i]
};

}  // namespace esp::nand
