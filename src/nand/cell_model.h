// Monte-Carlo threshold-voltage model of one TLC word line.
//
// This substitutes for the paper's characterization of real 2x-nm TLC
// chips (81,920 pages from 20 chips). It models, per cell:
//
//   * an 8-level TLC Vth layout with Gray-coded bit mapping (adjacent
//     levels differ in one bit);
//   * program noise (ISPP placement spread), widened by P/E wear and by
//     the high-Vpgm stress a cell absorbed while INHIBITED during earlier
//     subpage programs on the same word line (this produces the Npp^k
//     t=0 BER ordering of Fig. 5);
//   * program disturbance: every program operation on the word line
//     up-shifts inhibited cells -- mildly for still-erased cells (soft
//     programming), destructively for already-programmed cells, which is
//     exactly the asymmetry that makes ESP viable (Fig. 4);
//   * retention: programmed cells drift down ~ log(1 + t/tau), faster for
//     cells with more pre-program stress (higher Npp) and for worn blocks.
//
// WordLine is a single-word-line view over the batched SoA CellArray
// kernel (nand/cell_array.h); the physics and public API are unchanged
// from the original scalar model, only the compute path is batched.
//
// The FTL-facing simulator never touches this model (it uses the
// calibrated behavioral RetentionModel); only the characterization benches
// (fig4/fig5) and their tests do.
#pragma once

#include <cstdint>
#include <span>

#include "nand/cell_array.h"
#include "util/rng.h"

namespace esp::nand {

/// One word line of `subpages * cells_per_subpage` TLC cells.
class WordLine {
 public:
  WordLine(std::uint32_t subpages, std::uint32_t cells_per_subpage,
           const CellModelParams& params, util::Xoshiro256 rng)
      : cells_(1, subpages, cells_per_subpage, params, rng) {}

  /// Applies P/E wear (the paper pre-cycles to 1K before measuring).
  void set_pe_cycles(std::uint32_t pe) { cells_.set_pe_cycles(pe); }

  /// Erases the word line (all cells back to the erased distribution).
  void erase() { cells_.erase(0); }

  /// Programs one subpage with the given per-cell target levels
  /// (values in [0, levels)). Must be the next unprogrammed slot.
  /// All other cells on the word line receive disturb shifts.
  void program_subpage(std::uint32_t slot,
                       std::span<const std::uint8_t> levels) {
    cells_.program_subpage(0, slot, levels);
  }

  /// Convenience: program a subpage with uniform-random data.
  void program_subpage_random(std::uint32_t slot) {
    cells_.program_subpage_random(0, slot);
  }

  /// External disturbance: every cell receives a clipped-Gaussian Vth
  /// up-shift (used by BlockCells to model coupling from programs on
  /// ADJACENT word lines).
  void disturb_all(double shift_mean, double shift_sigma) {
    cells_.disturb_all(0, shift_mean, shift_sigma);
  }

  /// Counts raw bit errors in the given subpage after `months` of
  /// retention since that subpage was programmed. Monte-Carlo: each call
  /// draws fresh per-cell retention noise.
  std::uint64_t count_bit_errors(std::uint32_t slot, double months) {
    return cells_.count_bit_errors(0, slot, months);
  }

  /// Raw BER = bit errors / (cells * bits_per_cell).
  double raw_ber(std::uint32_t slot, double months) {
    return cells_.raw_ber(0, slot, months);
  }

  std::uint32_t npp_of(std::uint32_t slot) const {
    return cells_.npp_of(0, slot);
  }
  /// Mean threshold voltage of a subpage's cells (characterization aid).
  double mean_vth(std::uint32_t slot) const { return cells_.mean_vth(0, slot); }
  std::uint32_t subpages() const { return cells_.subpages(); }
  std::uint32_t cells_per_subpage() const {
    return cells_.cells_per_subpage();
  }
  std::uint32_t bits_per_cell() const { return cells_.bits_per_cell(); }
  std::uint32_t slots_programmed() const { return cells_.slots_programmed(0); }

 private:
  CellArray cells_;
};

}  // namespace esp::nand
