#include "nand/cell_array.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/batch_math.h"

namespace esp::nand {

CellArray::CellArray(std::uint32_t wordlines, std::uint32_t subpages,
                     std::uint32_t cells_per_subpage,
                     const CellModelParams& params, util::Xoshiro256 rng)
    : wordlines_(wordlines),
      subpages_(subpages),
      cells_(cells_per_subpage),
      bits_per_cell_(std::bit_width(params.levels) - 1),
      params_(params),
      pe_cycles_(params.rated_pe_cycles) {
  if (wordlines == 0 || subpages == 0 || cells_per_subpage == 0)
    throw std::invalid_argument("CellArray: empty geometry");
  if (params.levels < 2 || params.levels > 256 ||
      (params.levels & (params.levels - 1)) != 0)
    throw std::invalid_argument(
        "CellArray: levels must be a power of two in [2, 256]");

  const std::size_t slots = static_cast<std::size_t>(wordlines) * subpages;
  const std::size_t total = slots * cells_;
  vth_.resize(total);
  target_.resize(total);
  target_gray_.resize(total);
  npp_.resize(slots);
  programmed_.resize(slots);
  slots_programmed_.resize(wordlines);

  rng_.reserve(wordlines);
  for (std::uint32_t wl = 0; wl < wordlines; ++wl)
    rng_.push_back(rng.fork());

  // Level 0 is the erased state; program levels sit at 0, step, 2*step, ...
  // Read thresholds at midpoints between adjacent level means.
  level_mean_.resize(params.levels);
  for (std::uint32_t l = 0; l < params.levels; ++l)
    level_mean_[l] =
        l == 0 ? params.erased_mean
               : static_cast<double>(l - 1) * params.level_step;
  boundaries_.resize(params.levels - 1);
  for (std::uint32_t l = 0; l + 1 < params.levels; ++l)
    boundaries_[l] =
        static_cast<float>(0.5 * (level_mean_[l] + level_mean_[l + 1]));

  z_scratch_.resize(cells_);
  vth_scratch_.resize(cells_);
  levels_scratch_.resize(cells_);
  gray_scratch_.resize(cells_);

  for (std::uint32_t wl = 0; wl < wordlines; ++wl) erase(wl);
}

void CellArray::check_slot(std::uint32_t wl, std::uint32_t slot,
                           const char* what) const {
  if (wl >= wordlines_)
    throw std::out_of_range(std::string(what) + ": word line out of range");
  if (slot >= subpages_)
    throw std::out_of_range(std::string(what) + ": slot out of range");
}

void CellArray::set_pe_cycles(std::uint32_t pe) { pe_cycles_ = pe; }

std::uint32_t CellArray::slots_programmed(std::uint32_t wl) const {
  if (wl >= wordlines_)
    throw std::out_of_range("CellArray::slots_programmed: wl out of range");
  return slots_programmed_[wl];
}

void CellArray::erase(std::uint32_t wl) {
  if (wl >= wordlines_)
    throw std::out_of_range("CellArray::erase: word line out of range");
  slots_programmed_[wl] = 0;
  const std::size_t slot0 = slot_index(wl, 0);
  std::fill_n(npp_.begin() + slot0, subpages_, std::uint8_t{0});
  std::fill_n(programmed_.begin() + slot0, subpages_, std::uint8_t{0});
  const std::size_t base = cell_base(wl, 0);
  const std::size_t span = static_cast<std::size_t>(subpages_) * cells_;
  util::gaussian_fill(rng_[wl], std::span(vth_).subspan(base, span),
                      params_.erased_mean, params_.erased_sigma);
  std::fill_n(target_.begin() + base, span, std::uint8_t{0});
  std::fill_n(target_gray_.begin() + base, span, std::uint8_t{0});
}

void CellArray::program_subpage(std::uint32_t wl, std::uint32_t slot,
                                std::span<const std::uint8_t> levels) {
  check_slot(wl, slot, "CellArray::program_subpage");
  if (slot != slots_programmed_[wl])
    throw std::logic_error(
        "CellArray::program_subpage: slots must be programmed sequentially");
  if (levels.size() != cells_)
    throw std::logic_error("CellArray::program_subpage: level count mismatch");

  const double wear_ratio = static_cast<double>(pe_cycles_) /
                            static_cast<double>(params_.rated_pe_cycles);
  const double sigma_wear =
      params_.pgm_sigma *
      (1.0 + params_.wear_sigma_slope * std::max(0.0, wear_ratio - 1.0));

  // The cells being programmed absorbed `slots_programmed` prior high-Vpgm
  // operations while inhibited; that stress widens their final placement.
  const double sigma =
      std::hypot(sigma_wear, params_.stress_sigma_per_npp *
                                 static_cast<double>(slots_programmed_[wl]));

  // 1. Disturb every *other* subpage on the word line (inhibited while
  //    this subpage's ISPP pulses run). The programmed/erased asymmetry is
  //    per-slot state, so each slot is one fused clipped-Gaussian sweep.
  for (std::uint32_t sp = 0; sp < subpages_; ++sp) {
    if (sp == slot) continue;
    const bool prog = programmed_[slot_index(wl, sp)] != 0;
    util::add_clipped_gaussian(
        rng_[wl], std::span(vth_).subspan(cell_base(wl, sp), cells_),
        prog ? params_.disturb_programmed_mean : params_.disturb_erased_mean,
        prog ? params_.disturb_programmed_sigma
             : params_.disturb_erased_sigma);
  }

  // 2. Program the target cells. Cells whose target is the erased level
  //    stay inhibited (they keep their current, possibly soft-programmed,
  //    Vth) -- the SBPI scheme of Fig. 3. One deviate per cell, applied
  //    through a branch-free select; level means are affine in the level,
  //    so no table gather is needed.
  util::gaussian_fill(rng_[wl], std::span(z_scratch_).first(cells_));
  const std::size_t base = cell_base(wl, slot);
  float* v = vth_.data() + base;
  std::uint8_t* tgt = target_.data() + base;
  std::uint8_t* gry = target_gray_.data() + base;
  const auto step = static_cast<float>(params_.level_step);
  const auto fsigma = static_cast<float>(sigma);
  // Two passes so each loop keeps uniform lane widths: a byte pass for the
  // target/Gray planes, then a float pass for the placement select.
  for (std::uint32_t i = 0; i < cells_; ++i) {
    const std::uint8_t t = levels[i];
    tgt[i] = t;
    gry[i] = static_cast<std::uint8_t>(t ^ (t >> 1));
  }
  for (std::uint32_t i = 0; i < cells_; ++i) {
    const auto t = static_cast<std::int32_t>(levels[i]);
    const float placed =
        static_cast<float>(t - 1) * step + fsigma * z_scratch_[i];
    v[i] = t != 0 ? placed : v[i];
  }

  const std::size_t si = slot_index(wl, slot);
  npp_[si] = static_cast<std::uint8_t>(slots_programmed_[wl]);
  programmed_[si] = 1;
  ++slots_programmed_[wl];
}

void CellArray::program_subpage_random(std::uint32_t wl, std::uint32_t slot) {
  check_slot(wl, slot, "CellArray::program_subpage_random");
  util::uniform_levels_fill(rng_[wl], std::span(levels_scratch_).first(cells_),
                            params_.levels);
  program_subpage(wl, slot, std::span(levels_scratch_).first(cells_));
}

void CellArray::disturb_all(std::uint32_t wl, double shift_mean,
                            double shift_sigma) {
  if (wl >= wordlines_)
    throw std::out_of_range("CellArray::disturb_all: word line out of range");
  const std::size_t span = static_cast<std::size_t>(subpages_) * cells_;
  util::add_clipped_gaussian(rng_[wl],
                             std::span(vth_).subspan(cell_base(wl, 0), span),
                             shift_mean, shift_sigma);
}

std::uint64_t CellArray::count_bit_errors(std::uint32_t wl, std::uint32_t slot,
                                          double months) {
  check_slot(wl, slot, "CellArray::count_bit_errors");
  const std::size_t si = slot_index(wl, slot);
  if (!programmed_[si]) return 0;

  const std::size_t base = cell_base(wl, slot);
  const float* v = vth_.data() + base;
  const std::uint8_t* tgt = target_.data() + base;
  std::span<const float> read_vth(v, cells_);

  if (months > 0.0) {
    // Retention drift: charge loss pulls programmed (non-erased) cells
    // down; stress absorbed while inhibited accelerates detrapping. npp is
    // uniform across the subpage, so the drift mean is a per-call scalar
    // and the per-cell noise is one batched fill.
    const double wear_ratio = static_cast<double>(pe_cycles_) /
                              static_cast<double>(params_.rated_pe_cycles);
    const double wear = 1.0 + params_.wear_retention_slope *
                                  std::max(0.0, wear_ratio - 1.0);
    const double mu = params_.retention_rate *
                      (1.0 + params_.retention_kappa *
                                 static_cast<double>(npp_[si])) *
                      wear * std::log1p(months / params_.retention_tau_months);
    util::gaussian_fill(rng_[wl], std::span(z_scratch_).first(cells_), mu,
                        params_.retention_noise_frac * mu);
    for (std::uint32_t i = 0; i < cells_; ++i) {
      const float drift = std::max(0.0f, z_scratch_[i]);
      vth_scratch_[i] = tgt[i] != 0 ? v[i] - drift : v[i];
    }
    read_vth = std::span<const float>(vth_scratch_.data(), cells_);
  }

  util::quantize_to_gray(read_vth, boundaries_,
                         std::span(gray_scratch_).first(cells_));
  return util::gray_bit_errors(
      std::span(gray_scratch_).first(cells_),
      std::span<const std::uint8_t>(target_gray_.data() + base, cells_));
}

double CellArray::raw_ber(std::uint32_t wl, std::uint32_t slot,
                          double months) {
  const auto errors = count_bit_errors(wl, slot, months);
  return static_cast<double>(errors) /
         (static_cast<double>(cells_) * bits_per_cell_);
}

double CellArray::mean_vth(std::uint32_t wl, std::uint32_t slot) const {
  check_slot(wl, slot, "CellArray::mean_vth");
  const float* v = vth_.data() + cell_base(wl, slot);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < cells_; ++i) sum += v[i];
  return sum / cells_;
}

std::uint32_t CellArray::npp_of(std::uint32_t wl, std::uint32_t slot) const {
  check_slot(wl, slot, "CellArray::npp_of");
  const std::size_t si = slot_index(wl, slot);
  if (!programmed_[si])
    throw std::logic_error("CellArray::npp_of: slot not programmed");
  return npp_[si];
}

}  // namespace esp::nand
