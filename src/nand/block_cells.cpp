#include "nand/block_cells.h"

#include <stdexcept>

namespace esp::nand {

BlockCells::BlockCells(std::uint32_t wordlines, std::uint32_t subpages,
                       std::uint32_t cells_per_subpage,
                       const BlockCellParams& params, util::Xoshiro256 rng)
    : params_(params), rng_(rng) {
  if (wordlines == 0)
    throw std::invalid_argument("BlockCells: need at least one word line");
  wls_.reserve(wordlines);
  for (std::uint32_t wl = 0; wl < wordlines; ++wl)
    wls_.emplace_back(subpages, cells_per_subpage, params.cell, rng_.fork());
}

void BlockCells::couple_neighbors(std::uint32_t wl) {
  if (wl > 0)
    wls_[wl - 1].disturb_all(params_.neighbor_shift_mean,
                             params_.neighbor_shift_sigma);
  if (wl + 1 < wls_.size())
    wls_[wl + 1].disturb_all(params_.neighbor_shift_mean,
                             params_.neighbor_shift_sigma);
}

void BlockCells::program_subpage_random(std::uint32_t wl) {
  wls_.at(wl).program_subpage_random(wls_[wl].slots_programmed());
  couple_neighbors(wl);
}

void BlockCells::program_full_random(std::uint32_t wl) {
  WordLine& line = wls_.at(wl);
  while (line.slots_programmed() < line.subpages())
    line.program_subpage_random(line.slots_programmed());
  // One aggregate coupling event: a real full-page program is one ISPP
  // sequence, not Nsub separate ones.
  couple_neighbors(wl);
}

double BlockCells::raw_ber(std::uint32_t wl, std::uint32_t slot,
                           double months) {
  return wls_.at(wl).raw_ber(slot, months);
}

}  // namespace esp::nand
