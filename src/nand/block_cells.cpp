#include "nand/block_cells.h"

namespace esp::nand {

BlockCells::BlockCells(std::uint32_t wordlines, std::uint32_t subpages,
                       std::uint32_t cells_per_subpage,
                       const BlockCellParams& params, util::Xoshiro256 rng)
    : params_(params),
      cells_(wordlines, subpages, cells_per_subpage, params.cell, rng) {}

void BlockCells::couple_neighbors(std::uint32_t wl) {
  if (wl > 0)
    cells_.disturb_all(wl - 1, params_.neighbor_shift_mean,
                       params_.neighbor_shift_sigma);
  if (wl + 1 < cells_.wordlines())
    cells_.disturb_all(wl + 1, params_.neighbor_shift_mean,
                       params_.neighbor_shift_sigma);
}

void BlockCells::program_subpage_random(std::uint32_t wl) {
  cells_.program_subpage_random(wl, cells_.slots_programmed(wl));
  couple_neighbors(wl);
}

void BlockCells::program_full_random(std::uint32_t wl) {
  while (cells_.slots_programmed(wl) < cells_.subpages())
    cells_.program_subpage_random(wl, cells_.slots_programmed(wl));
  // One aggregate coupling event: a real full-page program is one ISPP
  // sequence, not Nsub separate ones.
  couple_neighbors(wl);
}

double BlockCells::raw_ber(std::uint32_t wl, std::uint32_t slot,
                           double months) {
  return cells_.raw_ber(wl, slot, months);
}

}  // namespace esp::nand
