// Multi-channel NAND device: command set, timing, and read reliability.
//
// The device composes:
//   * Block state machines (ESP semantics, Npp tracking) per chip;
//   * a resource-reservation timing model -- each operation occupies its
//     channel for the data transfer and its chip for the array operation,
//     so independent chips/channels overlap exactly as on the paper's
//     8-channel x 4-chip platform;
//   * the RetentionModel + ECC verdict: a read returns kUncorrectable when
//     the stored data has outlived its Npp-dependent retention horizon.
//
// The device is single-threaded by design: the simulation driver serializes
// calls and carries simulated time explicitly (`now` in, completion out).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "ecc/ecc_model.h"
#include "nand/address.h"
#include "nand/block.h"
#include "nand/geometry.h"
#include "nand/retention_model.h"
#include "nand/timing.h"
#include "telemetry/health.h"
#include "telemetry/sink.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/sim_time.h"

namespace esp::nand {

enum class ReadStatus : std::uint8_t {
  kOk,             ///< data returned, ECC-correctable
  kEmpty,          ///< slot never programmed this erase cycle
  kCorrupted,      ///< destroyed by a later subpage program (ESP physics)
  kUncorrectable,  ///< retention horizon exceeded (or injected fault)
};

/// Completion acknowledgement for writes/erases.
struct OpAck {
  SimTime done = 0.0;  ///< simulated completion time
};

/// Result of a subpage read.
struct ReadAck {
  ReadStatus status = ReadStatus::kEmpty;
  std::uint64_t token = 0;
  SimTime done = 0.0;
};

/// Result of a full-page read: one verdict per subpage slot.
struct PageReadAck {
  std::array<ReadStatus, kMaxSubpagesPerPage> status{};
  std::array<std::uint64_t, kMaxSubpagesPerPage> token{};
  SimTime done = 0.0;
};

/// Monotonic operation counters (device lifetime bookkeeping).
struct DeviceCounters {
  std::uint64_t reads_full = 0;
  std::uint64_t reads_sub = 0;
  std::uint64_t progs_full = 0;
  std::uint64_t progs_sub = 0;
  std::uint64_t erases = 0;
  std::uint64_t uncorrectable_reads = 0;
  std::uint64_t corrupted_reads = 0;
};

class NandDevice {
 public:
  explicit NandDevice(const Geometry& geo, const TimingSpec& timing = {},
                      const RetentionModel& retention = {});

  // ---- command set -------------------------------------------------------
  /// Programs a whole page (tokens.size() == subpages_per_page).
  OpAck program_full(const PageAddr& addr,
                     std::span<const std::uint64_t> tokens, SimTime now);

  /// ESP subpage program (sequential slot, destroys earlier slots).
  OpAck program_subpage(const SubpageAddr& addr, std::uint64_t token,
                        SimTime now);

  /// Reads one subpage slot, applying the retention/ECC verdict.
  ReadAck read_subpage(const SubpageAddr& addr, SimTime now);

  /// Reads a full page (all slots, one array operation).
  PageReadAck read_page(const PageAddr& addr, SimTime now);

  OpAck erase_block(std::uint32_t chip, std::uint32_t block, SimTime now);

  /// On-chip copyback (standard NAND "copy-back program"): the page is
  /// sensed into the chip's internal page buffer and programmed to another
  /// erased page of the SAME chip without crossing the channel. GC copies
  /// become cheaper by both transfer times. Note: real copyback bypasses
  /// the controller's ECC, so firmware alternates it with read-verify
  /// passes; the model copies tokens as stored (including corrupted ones).
  OpAck copyback(const PageAddr& src, const PageAddr& dst, SimTime now);

  // ---- introspection ------------------------------------------------------
  const Geometry& geometry() const { return geo_; }
  const TimingSpec& timing() const { return timing_; }
  const RetentionModel& retention() const { return retention_; }
  const DeviceCounters& counters() const { return counters_; }
  const Block& block(std::uint32_t chip, std::uint32_t blk) const;

  std::uint32_t pe_cycles(std::uint32_t chip, std::uint32_t blk) const {
    return block(chip, blk).pe_cycles();
  }
  std::uint64_t total_erases() const { return counters_.erases; }

  /// Highest P/E count of any block on the device (monotone, updated at
  /// erase time) -- lets wear levelers find the device-wide maximum without
  /// scanning every block.
  std::uint32_t max_pe_cycles() const { return max_pe_cycles_; }

  /// Fault injection: each otherwise-OK read independently fails as
  /// uncorrectable with probability p (deterministic stream from `seed`).
  void set_read_fault_injection(double probability, std::uint64_t seed = 1);

  /// Reliability verdict mode for reads.
  ///   * kDeterministic (default): data is correctable exactly until its
  ///     retention horizon -- reproducible, used by the FTL benches;
  ///   * kProbabilistic: each codeword of the read fails with the binomial
  ///     tail probability implied by the RetentionModel's BER and the ECC
  ///     spec, so near-horizon reads fail stochastically as on silicon.
  enum class ReliabilityMode : std::uint8_t { kDeterministic, kProbabilistic };
  void set_reliability_mode(ReliabilityMode mode, std::uint64_t seed = 1);

  /// Accumulated busy time of one chip (array + transfer occupancy) --
  /// divide by elapsed simulated time for utilization.
  SimTime chip_busy_us(std::uint32_t chip) const {
    return chip_busy_accum_.at(chip);
  }

  /// Accumulated transfer occupancy of one channel (the data-movement
  /// window only; array time the channel merely reserves is not counted).
  /// Divide by elapsed simulated time for channel utilization.
  SimTime channel_busy_us(std::uint32_t channel) const {
    return channel_busy_accum_.at(channel);
  }

  /// Attaches a telemetry sink (nullptr detaches). Binds the device
  /// counters under "nand/" and records one op event per flash command.
  void set_telemetry(telemetry::Sink* sink);

  /// Fills the physical fields (P/E cycles, programmed pages, first-program
  /// time) of a health snapshot; `out` must hold one row per block, indexed
  /// chip * blocks_per_chip + block. Ownership/validity fields are the
  /// FTL's to fill.
  void fill_block_health(std::span<telemetry::BlockHealth> out) const;

  /// Epoch fast-forward support: accrues `cycles` P/E cycles on one block
  /// without issuing erase commands or touching page contents. The cycles
  /// are tracked in `synthetic_erases()` (NOT in counters().erases, which
  /// stays a faithful command count so delta-based WAF sampling in the
  /// next measurement window is undistorted).
  void apply_synthetic_wear(std::uint32_t chip, std::uint32_t block,
                            std::uint32_t cycles);

  /// Total P/E cycles accrued via apply_synthetic_wear across all blocks.
  std::uint64_t synthetic_erases() const { return synthetic_erases_; }

  /// Snapshot support: all block state, timing-reservation clocks, op
  /// counters, and the fault-injection RNG. Geometry must match on load.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  Block& block_ref(std::uint32_t chip, std::uint32_t blk);
  ReadStatus verdict(const Block& blk, std::uint32_t page, std::uint32_t slot,
                     SimTime now);

  /// Reserves channel + chip time for one operation; returns completion.
  SimTime schedule(std::uint32_t chip, SimTime array_us,
                   std::uint64_t xfer_bytes, bool transfer_first, SimTime now);

  Geometry geo_;
  TimingSpec timing_;
  RetentionModel retention_;
  std::vector<Block> blocks_;  ///< [chip * blocks_per_chip + block]
  std::vector<SimTime> channel_busy_until_;
  std::vector<SimTime> chip_busy_until_;
  std::vector<SimTime> chip_busy_accum_;
  std::vector<SimTime> channel_busy_accum_;
  DeviceCounters counters_;
  std::uint64_t synthetic_erases_ = 0;
  std::uint32_t max_pe_cycles_ = 0;
  double fault_prob_ = 0.0;
  util::Xoshiro256 fault_rng_{1};
  ReliabilityMode reliability_mode_ = ReliabilityMode::kDeterministic;
  ecc::EccModel ecc_;
  telemetry::Sink* sink_ = nullptr;
};

}  // namespace esp::nand
